package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"paragraph/internal/experiments"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
	"paragraph/internal/registry"
	"paragraph/internal/serve"
)

// startService trains micro models for a CPU and a GPU profile and serves
// them on a real loopback listener, as main's run path does.
func startService(t *testing.T) string {
	t.Helper()
	srv, _, err := buildServer([]string{
		"-scale", "tiny",
		"-epochs", "1",
		"-points", "24",
		"-platforms", "IBM POWER9 (CPU),NVIDIA V100 (GPU)",
		"-addr", "127.0.0.1:0",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return "http://" + ln.Addr().String()
}

func post(t *testing.T, url string, body any, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// TestServeEndToEnd is the acceptance check: the trained service answers
// /v1/advise for a CPU and a GPU profile over real HTTP, and a repeated
// identical request is a cache hit visible in /v1/stats.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models in -short mode")
	}
	base := startService(t)

	for _, machine := range []string{"IBM POWER9 (CPU)", "NVIDIA V100 (GPU)"} {
		req := serve.AdviseRequest{
			Kernel:   "matmul",
			Machine:  machine,
			Bindings: map[string]float64{"n": 256},
			Space: &serve.SpaceSpec{
				CPUThreads: []int{2, 8},
				GPUTeams:   []int{64, 128},
				GPUThreads: []int{128},
			},
		}
		var cold serve.AdviseResponse
		post(t, base+"/v1/advise", req, &cold)
		if cold.Cached || len(cold.Recommendations) == 0 {
			t.Fatalf("%s: cold response = %+v", machine, cold)
		}
		for _, r := range cold.Recommendations {
			if r.PredictedUS <= 0 {
				t.Errorf("%s: non-positive prediction %+v", machine, r)
			}
		}
		var warm serve.AdviseResponse
		post(t, base+"/v1/advise", req, &warm)
		if !warm.Cached {
			t.Errorf("%s: repeat request not cached", machine)
		}
		for i := range cold.Recommendations {
			if warm.Recommendations[i] != cold.Recommendations[i] {
				t.Errorf("%s: cached ranking differs at %d", machine, i)
			}
		}
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.AdviseCacheHits < 2 {
		t.Errorf("advise cache hits = %d, want >= 2", st.AdviseCacheHits)
	}
	if st.Requests.Advise != 4 {
		t.Errorf("advise requests = %d, want 4", st.Requests.Advise)
	}
	if len(st.Machines) != 2 {
		t.Errorf("machines = %v", st.Machines)
	}

	hresp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("healthz status = %q", h.Status)
	}
}

// trainCheckpoints writes two micro checkpoints for one platform and
// returns the registry root.
func trainCheckpoints(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	runner := experiments.NewRunner(microScale(1))
	tr, err := runner.Trained(hw.V100(), paragraph.LevelParaGraph)
	if err != nil {
		t.Fatal(err)
	}
	for _, save := range []struct {
		name   string
		epochs int
	}{{"default", 1}, {"exp", 1}} {
		if _, err := registry.Save(dir, hw.V100(), save.name, paragraph.LevelParaGraph,
			tr.Model, tr.Prep, registry.TrainInfo{Scale: "tiny", Epochs: save.epochs,
				TrainSamples: len(tr.Prep.Train), ValSamples: len(tr.Prep.Val),
				FinalValRMSE: tr.Hist.FinalValRMSE()}); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func microScale(epochs int) experiments.Scale {
	s := experiments.Tiny()
	s.Epochs = epochs
	s.MaxPerPlatform = 24
	return s
}

// TestModelDirServesCheckpointsWithoutTraining is the train-free startup
// acceptance check: boot from -model-dir, list two named versions, advise
// through a non-default one.
func TestModelDirServesCheckpointsWithoutTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the checkpoint fixture in -short mode")
	}
	dir := trainCheckpoints(t)
	var out strings.Builder
	srv, _, err := buildServer([]string{"-model-dir", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if strings.Contains(out.String(), "training") {
		t.Errorf("-model-dir startup trained anyway:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `msg="loaded checkpoint"`) ||
		!strings.Contains(out.String(), `model="NVIDIA V100 (GPU)/default"`) ||
		!strings.Contains(out.String(), `model="NVIDIA V100 (GPU)/exp"`) {
		t.Errorf("startup log missing checkpoints:\n%s", out.String())
	}

	models := srv.Models()
	if len(models.Models) != 2 {
		t.Fatalf("serving %d models, want 2", len(models.Models))
	}
	for _, m := range models.Models {
		if m.Source != "checkpoint" {
			t.Errorf("model %s source = %q, want checkpoint", m.Name, m.Source)
		}
		if m.Default != (m.Name == "default") {
			t.Errorf("model %s default flag = %v", m.Name, m.Default)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	base := "http://" + ln.Addr().String()

	req := serve.AdviseRequest{
		Kernel:   "matmul",
		Machine:  "NVIDIA V100 (GPU)",
		Model:    "exp",
		Bindings: map[string]float64{"n": 256},
		Space:    &serve.SpaceSpec{GPUTeams: []int{64, 128}, GPUThreads: []int{128}},
	}
	var resp serve.AdviseResponse
	post(t, base+"/v1/advise", req, &resp)
	if resp.Model != "exp" || len(resp.Recommendations) == 0 {
		t.Errorf("checkpoint advise = %+v", resp)
	}
	for _, r := range resp.Recommendations {
		if r.PredictedUS <= 0 {
			t.Errorf("non-positive prediction %+v", r)
		}
	}
}

// TestCacheFileSurvivesRestart is the warm-restart acceptance check: a
// request cached by one server instance, snapshotted to -cache-file, is a
// cache hit on a freshly built instance after restore — the kill/restart
// path cmd/serve runs through run().
func TestCacheFileSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the checkpoint fixture in -short mode")
	}
	dir := trainCheckpoints(t)
	cacheFile := filepath.Join(t.TempDir(), "cache.json")
	args := []string{"-model-dir", dir, "-cache-file", cacheFile}

	req := serve.AdviseRequest{
		Kernel:   "matmul",
		Machine:  "NVIDIA V100 (GPU)",
		Bindings: map[string]float64{"n": 256},
		Space:    &serve.SpaceSpec{GPUTeams: []int{64, 128}, GPUThreads: []int{128}},
	}

	// First process lifetime: cold advise, then flush the snapshot (what
	// run() does on SIGTERM after draining).
	srv1, cfg, err := buildServer(args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var cold serve.AdviseResponse
	doLocal(t, srv1, req, &cold)
	if cold.Cached {
		t.Fatal("first-ever request claims cached")
	}
	srv1.Close()
	if err := srv1.SaveCacheFile(cfg.cacheFile); err != nil {
		t.Fatal(err)
	}

	// Second process lifetime: restore, and the same request must hit.
	srv2, cfg2, err := buildServer(args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	n, err := srv2.LoadCacheFile(cfg2.cacheFile)
	if err != nil || n == 0 {
		t.Fatalf("LoadCacheFile = %d, %v", n, err)
	}
	var warm serve.AdviseResponse
	doLocal(t, srv2, req, &warm)
	if !warm.Cached {
		t.Error("restarted server missed the restored cache entry")
	}
	if len(warm.Recommendations) != len(cold.Recommendations) {
		t.Fatal("restored ranking differs in length")
	}
	for i := range cold.Recommendations {
		if warm.Recommendations[i] != cold.Recommendations[i] {
			t.Errorf("restored rec %d differs", i)
		}
	}
}

// doLocal posts an advise request straight at the handler.
func doLocal(t *testing.T, srv *serve.Server, req serve.AdviseRequest, out *serve.AdviseResponse) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	hreq := httptest.NewRequest(http.MethodPost, "/v1/advise", &buf)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, hreq)
	if rec.Code != http.StatusOK {
		t.Fatalf("advise: %d %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatal(err)
	}
}

func TestBuildServerFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-scale", "huge"},
		{"-platforms", "Cray-1"},
		{"-platforms", ""},
		{"-badflag"},
		{"-model-dir", "/nonexistent/registry"},
		// Cluster flags fail before any model training.
		{"-peers", "http://127.0.0.1:1"},
		{"-self", "http://127.0.0.1:1"},
		{"-self", "not-a-url", "-peers", "http://127.0.0.1:1"},
		{"-self", "http://127.0.0.1:1", "-peers", "ftp://127.0.0.1:2"},
		{"-self", "http://127.0.0.1:1", "-peers", "http://127.0.0.1:2/suffix"},
		{"-self", "http://127.0.0.1:1", "-peers", "http://127.0.0.1:2", "-replication", "0"},
		{"-self", "http://127.0.0.1:1", "-peers", "http://127.0.0.1:2", "-replication", "-3"},
		// Observability flags are validated before any model training too.
		{"-log-level", "loud"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if _, _, err := buildServer(args, io.Discard); err == nil {
				t.Errorf("buildServer(%v) accepted", args)
			}
		})
	}
}

// TestClusterFlagsFormWorkingTier is the cmd-level acceptance check for
// -self/-peers: two buildServer instances booted from the same checkpoints
// forward over the ring, answer with identical rankings regardless of the
// receiving peer, and losing a peer degrades to local serving without
// failures.
func TestClusterFlagsFormWorkingTier(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the checkpoint fixture in -short mode")
	}
	dir := trainCheckpoints(t)

	// Listeners first: -self must carry each process's real address.
	lns := make([]net.Listener, 2)
	urls := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	peers := strings.Join(urls, ",")
	srvs := make([]*serve.Server, 2)
	hss := make([]*http.Server, 2)
	for i := range srvs {
		srv, _, err := buildServer([]string{
			"-model-dir", dir, "-self", urls[i], "-peers", peers, "-replication", "2",
		}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		srvs[i] = srv
		hss[i] = &http.Server{Handler: srv.Handler()}
		hs := hss[i]
		go hs.Serve(lns[i])
		t.Cleanup(func() { hs.Close() })
	}

	forwarded := false
	for i := 0; i < 8; i++ {
		req := serve.AdviseRequest{
			Kernel:   "matmul",
			Machine:  "NVIDIA V100 (GPU)",
			Bindings: map[string]float64{"n": float64(128 + 32*i)},
			Space:    &serve.SpaceSpec{GPUTeams: []int{64, 128}, GPUThreads: []int{128}},
		}
		var viaA, viaB serve.AdviseResponse
		post(t, urls[0]+"/v1/advise", req, &viaA)
		post(t, urls[1]+"/v1/advise", req, &viaB)
		aj, _ := json.Marshal(viaA.Recommendations)
		bj, _ := json.Marshal(viaB.Recommendations)
		if !bytes.Equal(aj, bj) {
			t.Fatalf("n=%v: rankings differ by receiving peer:\n%s\n%s", req.Bindings["n"], aj, bj)
		}
		if viaA.ServedBy != urls[0] {
			forwarded = true
		}
	}
	if !forwarded {
		t.Error("no request was forwarded between the two peers")
	}
	ring := srvs[0].Ring()
	if !ring.Enabled || len(ring.Members) != 2 {
		t.Fatalf("ring = %+v", ring)
	}
	if ring.Replication == nil || ring.Replication.Factor != 2 {
		t.Fatalf("-replication 2 not reflected in the ring view: %+v", ring.Replication)
	}

	// Degraded mode: kill peer B outright (listener and every open
	// connection); peer A keeps answering B-owned keys itself. With rf=2
	// on two peers A is every key's primary or sole surviving replica, so
	// fresh B-primary keys count local fallbacks.
	hss[1].Close()
	for i := 0; i < 16; i++ {
		var resp serve.AdviseResponse
		post(t, urls[0]+"/v1/advise", serve.AdviseRequest{
			Kernel:   "matmul",
			Machine:  "NVIDIA V100 (GPU)",
			Bindings: map[string]float64{"n": float64(4096 + 32*i)},
			Space:    &serve.SpaceSpec{GPUTeams: []int{64, 128}, GPUThreads: []int{128}},
		}, &resp)
		if resp.ServedBy != urls[0] {
			t.Fatalf("request after peer loss served by %q, want the surviving peer %q", resp.ServedBy, urls[0])
		}
	}
	if srvs[0].Ring().LocalFallbacks == 0 {
		t.Error("16 fresh keys after peer loss and no local fallback recorded")
	}
}

func TestBuildServerDefaultsAllPlatforms(t *testing.T) {
	names := allPlatformNames()
	if got := len(strings.Split(names, ",")); got != 4 {
		t.Errorf("default platforms = %q (%d entries)", names, got)
	}
	for _, frag := range []string{"POWER9", "V100", "EPYC", "MI50"} {
		if !strings.Contains(names, frag) {
			t.Errorf("default platforms missing %s", frag)
		}
	}
}
