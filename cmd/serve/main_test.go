package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"paragraph/internal/serve"
)

// startService trains micro models for a CPU and a GPU profile and serves
// them on a real loopback listener, as main's run path does.
func startService(t *testing.T) string {
	t.Helper()
	srv, _, err := buildServer([]string{
		"-scale", "tiny",
		"-epochs", "1",
		"-points", "24",
		"-platforms", "IBM POWER9 (CPU),NVIDIA V100 (GPU)",
		"-addr", "127.0.0.1:0",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return "http://" + ln.Addr().String()
}

func post(t *testing.T, url string, body any, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// TestServeEndToEnd is the acceptance check: the trained service answers
// /v1/advise for a CPU and a GPU profile over real HTTP, and a repeated
// identical request is a cache hit visible in /v1/stats.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models in -short mode")
	}
	base := startService(t)

	for _, machine := range []string{"IBM POWER9 (CPU)", "NVIDIA V100 (GPU)"} {
		req := serve.AdviseRequest{
			Kernel:   "matmul",
			Machine:  machine,
			Bindings: map[string]float64{"n": 256},
			Space: &serve.SpaceSpec{
				CPUThreads: []int{2, 8},
				GPUTeams:   []int{64, 128},
				GPUThreads: []int{128},
			},
		}
		var cold serve.AdviseResponse
		post(t, base+"/v1/advise", req, &cold)
		if cold.Cached || len(cold.Recommendations) == 0 {
			t.Fatalf("%s: cold response = %+v", machine, cold)
		}
		for _, r := range cold.Recommendations {
			if r.PredictedUS <= 0 {
				t.Errorf("%s: non-positive prediction %+v", machine, r)
			}
		}
		var warm serve.AdviseResponse
		post(t, base+"/v1/advise", req, &warm)
		if !warm.Cached {
			t.Errorf("%s: repeat request not cached", machine)
		}
		for i := range cold.Recommendations {
			if warm.Recommendations[i] != cold.Recommendations[i] {
				t.Errorf("%s: cached ranking differs at %d", machine, i)
			}
		}
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.AdviseCacheHits < 2 {
		t.Errorf("advise cache hits = %d, want >= 2", st.AdviseCacheHits)
	}
	if st.Requests.Advise != 4 {
		t.Errorf("advise requests = %d, want 4", st.Requests.Advise)
	}
	if len(st.Machines) != 2 {
		t.Errorf("machines = %v", st.Machines)
	}

	hresp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("healthz status = %q", h.Status)
	}
}

func TestBuildServerFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-scale", "huge"},
		{"-platforms", "Cray-1"},
		{"-platforms", ""},
		{"-badflag"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if _, _, err := buildServer(args, io.Discard); err == nil {
				t.Errorf("buildServer(%v) accepted", args)
			}
		})
	}
}

func TestBuildServerDefaultsAllPlatforms(t *testing.T) {
	names := allPlatformNames()
	if got := len(strings.Split(names, ",")); got != 4 {
		t.Errorf("default platforms = %q (%d entries)", names, got)
	}
	for _, frag := range []string{"POWER9", "V100", "EPYC", "MI50"} {
		if !strings.Contains(names, frag) {
			t.Errorf("default platforms missing %s", frag)
		}
	}
}
