// Command serve runs the ParaGraph advisor as a long-running HTTP/JSON
// service: it trains one cost model per requested platform at startup, then
// answers kernel-advice requests from the shared models — batched, cached
// and bounded (internal/serve).
//
// Usage:
//
//	serve [-addr :8080] [-scale tiny|small|full]
//	      [-platforms "IBM POWER9 (CPU),NVIDIA V100 (GPU)"]
//	      [-epochs N] [-points N]
//
// Endpoints:
//
//	POST /v1/advise   rank variant grid for a kernel on one machine
//	POST /v1/predict  predict one variant's runtime
//	GET  /v1/healthz  liveness and served machines
//	GET  /v1/stats    cache/batcher/pool counters
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"paragraph/internal/experiments"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
	"paragraph/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	srv, addr, err := buildServer(args, w)
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "serving on http://%s\n", ln.Addr())
	return http.Serve(ln, srv.Handler())
}

// buildServer parses flags, trains the per-platform models and assembles
// the service; the caller decides how to listen (main serves TCP, tests
// mount the handler directly).
func buildServer(args []string, w io.Writer) (*serve.Server, string, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(w)
	addr := fs.String("addr", ":8080", "listen address")
	scaleName := fs.String("scale", "tiny", "training scale: tiny, small, or full")
	platforms := fs.String("platforms", allPlatformNames(), "comma-separated machine names to serve")
	epochs := fs.Int("epochs", 0, "override training epochs (0 = scale default)")
	points := fs.Int("points", 0, "override dataset points per platform (0 = scale default)")
	adviseCache := fs.Int("advise-cache", 0, "advise/prediction cache entries (0 = default)")
	encodeCache := fs.Int("encode-cache", 0, "encoded-graph cache entries (0 = default)")
	maxBatch := fs.Int("batch", 0, "max samples per batched forward pass (0 = default)")
	batchWait := fs.Duration("batch-wait", 0, "micro-batching window (0 = default)")
	poolSize := fs.Int("pool", 0, "max evaluations in flight (0 = GOMAXPROCS)")
	gridWorkers := fs.Int("grid-workers", 0, "per-advise grid fan-out (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}

	var scale experiments.Scale
	switch strings.ToLower(*scaleName) {
	case "tiny":
		scale = experiments.Tiny()
	case "small":
		scale = experiments.Small()
	case "full":
		scale = experiments.Full()
	default:
		return nil, "", fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *epochs > 0 {
		scale.Epochs = *epochs
	}
	if *points > 0 {
		scale.MaxPerPlatform = *points
	}

	var machines []hw.Machine
	for _, name := range strings.Split(*platforms, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, err := hw.ByName(name)
		if err != nil {
			return nil, "", err
		}
		machines = append(machines, m)
	}
	if len(machines) == 0 {
		return nil, "", fmt.Errorf("no platforms requested")
	}

	runner := experiments.NewRunner(scale)
	var backends []serve.Backend
	for _, m := range machines {
		start := time.Now()
		fmt.Fprintf(w, "training %s model (scale %s, %d epochs)...\n", m.Name, scale.Name, scale.Epochs)
		tr, err := runner.Trained(m, paragraph.LevelParaGraph)
		if err != nil {
			return nil, "", fmt.Errorf("training %s: %w", m.Name, err)
		}
		fmt.Fprintf(w, "  %s ready in %.1fs (val RMSE %.4f scaled)\n",
			m.Name, time.Since(start).Seconds(), tr.Hist.FinalValRMSE())
		backends = append(backends, serve.Backend{Machine: m, Model: tr.Model, Prep: tr.Prep})
	}

	srv, err := serve.NewServer(backends, serve.Options{
		AdviseCacheSize: *adviseCache,
		EncodeCacheSize: *encodeCache,
		MaxBatch:        *maxBatch,
		BatchWait:       *batchWait,
		PoolSize:        *poolSize,
		GridWorkers:     *gridWorkers,
	})
	if err != nil {
		return nil, "", err
	}
	return srv, *addr, nil
}

func allPlatformNames() string {
	var names []string
	for _, m := range hw.All() {
		names = append(names, m.Name)
	}
	return strings.Join(names, ",")
}
