// Command serve runs the ParaGraph advisor as a long-running HTTP/JSON
// service. With -model-dir it boots from registry checkpoints written by
// `train -save-dir` — no training at startup, and a platform can serve
// several named model versions; without it, it falls back to training one
// model per requested platform. Requests are answered batched, cached and
// bounded (internal/serve); with -cache-file the advise-response cache is
// snapshotted periodically and on shutdown, so a restarted process answers
// repeat traffic warm.
//
// With -self and -peers, N serve processes form a consistent-hash sharded
// tier (internal/shard): each advise/predict cache key is owned by its
// first -replication ring successors (default 2), non-owners proxy misses
// to the primary owner, evaluated entries are written through to the
// replicas, and an unreachable primary fails over to its replicas — so one
// peer death costs a forwarding detour, never recomputation — before
// degrading to local serving. Membership is elastic: a new peer starts
// with -self and -seed pointing at any live member and joins at runtime
// (no restarts, no synchronized -peers lists); every member gossips a
// versioned membership view each -heartbeat, evicts peers silent past
// -evict-after, and swaps the ring under a new epoch on every change. A
// leaving peer drains first — POST /v1/cluster/leave or plain SIGTERM
// streams its owned cache entries to the new owners (bounded by
// -drain-timeout) before the process exits — and a background
// anti-entropy sweep every -anti-entropy diffs local warmth against ring
// ownership and refills missing replica entries from peers, so a
// rejoined or freshly added peer converges to full warmth without
// client traffic. All peers must serve the same checkpoints and agree
// on -replication.
//
// With -feedback-dir the serving loop closes (docs/OPERATIONS.md, "Staged
// Rollouts"): POST /v1/feedback accepts measured runtimes for served
// predictions, appends them to a durable per-platform log, and — when
// -model-dir is also set — enough accumulated measurements trigger a
// background incremental retrain whose output serves as a *candidate* on
// -rollout-split percent of unpinned traffic. Sustained measured
// non-inferiority promotes the candidate to stable (pruning superseded
// checkpoints under -gc-keep); sustained regression rolls it back. The
// stable version never stops serving either way, and the rollout state
// persists in the registry so restarts resume where the process left off.
//
// Usage:
//
//	serve [-addr :8080] [-model-dir DIR | -scale tiny|small|full]
//	      [-platforms "IBM POWER9 (CPU),NVIDIA V100 (GPU)"]
//	      [-epochs N] [-points N]
//	      [-cache-file PATH] [-cache-snapshot 5m]
//	      [-admit-queue N] [-admit-per-client N]
//	      [-jobs-max N] [-jobs-ttl 5m]
//	      [-feedback-dir DIR] [-rollout-split 10] [-retrain-after 100]
//	      [-retrain-epochs N] [-quality-window 512] [-quality-min 30]
//	      [-promote-after 3] [-rollback-after 3] [-gc-keep 2]
//	      [-self http://host:8080 -peers http://host:8080,http://host2:8080]
//	      [-seed http://host:8080] [-replication 2]
//	      [-heartbeat 1s] [-suspect-after 3s] [-evict-after 10s]
//	      [-drain-timeout 30s] [-anti-entropy 30s]
//	      [-log-level info] [-trace-slow 250ms] [-trace-ring 128]
//	      [-pprof-addr 127.0.0.1:6060]
//
// Endpoints:
//
//	POST /v1/advise     rank variant grid for a kernel on one machine
//	                    (?async=1 submits a job, answered 202 + job id)
//	POST /v1/predict    predict one variant's runtime
//	POST /v1/feedback   report a measured runtime for a served prediction
//	GET  /v1/jobs/{id}  poll an async advise job (?stream=1 for NDJSON)
//	GET  /v1/healthz    liveness and served machines
//	GET  /v1/models     served model versions per platform (+ rollout roles)
//	GET  /v1/stats      cache/batcher/pool/per-model/cluster/rollout counters
//	GET  /v1/ring       cluster membership, ownership, forward counters
//	GET  /v1/trace      recent request traces (?id= for one, ?n= to bound)
//	GET  /metrics       Prometheus text exposition of every serve_* series
//	POST /v1/replicate  peer-internal cache write-through (cluster mode)
//	POST /v1/cluster/join   admit a new peer into the ring (cluster mode)
//	POST /v1/cluster/gossip peer-internal heartbeat view exchange
//	POST /v1/cluster/leave  drain this peer's keys to their new owners
//	GET  /v1/cluster/keys   peer-internal cache key list (anti-entropy)
//	GET  /v1/cluster/entry  peer-internal single-entry fetch (?key=K)
//
// Overload behaviour (docs/OPERATIONS.md, "Overload & Admission Control"):
// requests beyond the pool queue per client under deficit-round-robin
// fairness up to -admit-queue/-admit-per-client, then shed with 503 +
// Retry-After; an X-Paragraph-Deadline request header sheds eagerly when
// the estimated drain exceeds the budget, and the remaining budget
// propagates across cluster forwards. -jobs-max/-jobs-ttl bound the async
// job store.
//
// Observability (docs/OPERATIONS.md, "Monitoring & Profiling"): GET
// /metrics serves Prometheus text exposition, GET /v1/trace the recent
// request traces; requests slower than -trace-slow are logged. All process
// output is structured log/slog (-log-level picks the floor), and
// -pprof-addr mounts net/http/pprof on a separate listener so profiling
// never shares the serving port.
//
// On SIGINT/SIGTERM the server first drains its cluster role (tombstones
// itself in the gossip view and streams owned cache entries to the new
// owners, bounded by -drain-timeout; a no-op outside cluster mode or after
// an explicit /v1/cluster/leave), then stops accepting requests, drains
// in-flight batches, flushes the cache snapshot, and exits. docs/API.md
// documents the wire format; docs/OPERATIONS.md covers running it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"paragraph/internal/experiments"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
	"paragraph/internal/registry"
	"paragraph/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// serveConfig is what buildServer resolves beyond the assembled Server.
type serveConfig struct {
	addr          string
	cacheFile     string        // "" = no cache persistence
	snapshotEvery time.Duration // periodic snapshot interval; <= 0 disables
	pprofAddr     string        // "" = no pprof listener
	logger        *slog.Logger  // process-wide structured logger
	cluster       bool          // cluster mode: drain membership on shutdown
	drainTimeout  time.Duration // bound on the departure drain
}

func run(args []string, w io.Writer) error {
	srv, cfg, err := buildServer(args, w)
	if err != nil {
		return err
	}
	defer srv.Close()
	logger := cfg.logger

	if cfg.cacheFile != "" {
		n, err := srv.LoadCacheFile(cfg.cacheFile)
		if err != nil {
			return fmt.Errorf("restoring cache from %s: %w", cfg.cacheFile, err)
		}
		if n > 0 {
			logger.Info("restored cache snapshot", "entries", n, "file", cfg.cacheFile)
		}
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	logger.Info("serving", "url", "http://"+ln.Addr().String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The profiling listener is separate from the serving port so operators
	// can firewall it independently and a heap dump never competes with
	// request traffic for the serving listener's accept queue.
	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		logger.Info("pprof listening", "url", "http://"+pln.Addr().String()+"/debug/pprof/")
		go func() {
			ps := &http.Server{Handler: pprofMux()}
			go func() { <-ctx.Done(); ps.Close() }()
			if err := ps.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof server", "err", err)
			}
		}()
	}

	// Periodic cache snapshots so even a hard kill loses at most one
	// interval of warmth.
	if cfg.cacheFile != "" && cfg.snapshotEvery > 0 {
		go func() {
			tick := time.NewTicker(cfg.snapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := srv.SaveCacheFile(cfg.cacheFile); err != nil {
						logger.Warn("cache snapshot", "err", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")

	// Cluster departure comes first, while the listener still answers: the
	// drain tombstones this peer in the gossip view and streams its owned
	// cache entries to the new owners, so the tier loses no warmth when
	// this process exits. Idempotent — an operator who already POSTed
	// /v1/cluster/leave gets a no-op here.
	if cfg.cluster {
		drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		report := srv.DrainCluster(drainCtx)
		cancel()
		if !report.AlreadyDraining {
			logger.Info("cluster drain complete",
				"owned", report.OwnedKeys, "streamed", report.Streamed,
				"batches", report.Batches, "errors", report.Errors,
				"elapsed_ms", report.ElapsedMS)
		}
	}

	// Stop accepting and let in-flight requests finish, then drain the
	// batchers (srv.Close) before the final snapshot so every completed
	// response is eligible for persistence.
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	srv.Close()
	if cfg.cacheFile != "" {
		if err := srv.SaveCacheFile(cfg.cacheFile); err != nil {
			return fmt.Errorf("final cache snapshot: %w", err)
		}
		logger.Info("cache snapshot flushed", "file", cfg.cacheFile)
	}
	return nil
}

// pprofMux mounts the net/http/pprof handlers on a dedicated mux instead of
// http.DefaultServeMux, so the profiling listener exposes exactly the
// /debug/pprof/ tree and nothing else.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// parseLogLevel maps the -log-level flag to a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q: want debug, info, warn or error", s)
}

// buildServer parses flags and assembles the service — from registry
// checkpoints when -model-dir is set, else by training per-platform models;
// the caller decides how to listen (main serves TCP, tests mount the
// handler directly).
func buildServer(args []string, w io.Writer) (*serve.Server, serveConfig, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(w)
	addr := fs.String("addr", ":8080", "listen address")
	modelDir := fs.String("model-dir", "", "boot from registry checkpoints under this directory instead of training")
	maxLoaded := fs.Int("model-max-loaded", 0, "max checkpoint models resident in memory (0 = registry default)")
	scaleName := fs.String("scale", "tiny", "training scale when not using -model-dir: tiny, small, or full")
	platforms := fs.String("platforms", allPlatformNames(), "comma-separated machine names to serve")
	epochs := fs.Int("epochs", 0, "override training epochs (0 = scale default)")
	points := fs.Int("points", 0, "override dataset points per platform (0 = scale default)")
	cacheFile := fs.String("cache-file", "", "persist the advise-response cache to this file across restarts")
	snapshotEvery := fs.Duration("cache-snapshot", 5*time.Minute, "periodic cache snapshot interval (0 = only on shutdown)")
	adviseCache := fs.Int("advise-cache", 0, "advise/prediction cache entries (0 = default)")
	encodeCache := fs.Int("encode-cache", 0, "encoded-graph cache entries (0 = default)")
	maxBatch := fs.Int("batch", 0, "max samples per batched forward pass (0 = default)")
	batchWait := fs.Duration("batch-wait", 0, "micro-batching window (0 = default)")
	poolSize := fs.Int("pool", 0, "max evaluations in flight (0 = GOMAXPROCS)")
	gridWorkers := fs.Int("grid-workers", 0, "per-advise grid fan-out (0 = GOMAXPROCS)")
	admitQueue := fs.Int("admit-queue", 0, "admission queue depth beyond the pool before 503 shedding (0 = default)")
	admitPerClient := fs.Int("admit-per-client", 0, "per-client cap on queued+running work (0 = default)")
	jobsMax := fs.Int("jobs-max", 0, "async advise jobs retained before submissions shed (0 = default)")
	jobsTTL := fs.Duration("jobs-ttl", 0, "finished async jobs retained this long for polling (0 = default)")
	logLevel := fs.String("log-level", "info", "log floor: debug, info, warn or error")
	traceSlow := fs.Duration("trace-slow", 0, "log traced requests at or above this latency (0 = default 250ms, negative = disable)")
	traceRing := fs.Int("trace-ring", 0, "finished request traces retained for GET /v1/trace (0 = default)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
	feedbackDir := fs.String("feedback-dir", "", "accept POST /v1/feedback and append measured runtimes under this directory (empty = lifecycle disabled)")
	rolloutSplit := fs.Float64("rollout-split", 0, "percentage of unpinned traffic a fresh candidate serves (0 = default 10)")
	retrainAfter := fs.Int("retrain-after", 0, "accepted measurements per platform between background retrains (0 = default 100, negative = never retrain)")
	retrainEpochs := fs.Int("retrain-epochs", 0, "epochs per incremental retrain (0 = trainer default)")
	qualityWindow := fs.Int("quality-window", 0, "per-model (predicted, measured) pairs kept in the quality window (0 = default 512)")
	qualityMin := fs.Int("quality-min", 0, "pairs both windows need before promote/rollback decisions (0 = default 30)")
	promoteAfter := fs.Int("promote-after", 0, "consecutive non-inferior evaluations before a candidate promotes (0 = default 3)")
	rollbackAfter := fs.Int("rollback-after", 0, "consecutive regressing evaluations before a candidate rolls back (0 = default 3)")
	gcKeep := fs.Int("gc-keep", 0, "superseded checkpoint versions kept after a promotion (0 = default 2, -1 = keep none, -2 = disable GC)")
	self := fs.String("self", "", "cluster mode: this process's base URL as peers reach it (http://host:port)")
	peersFlag := fs.String("peers", "", "cluster mode: comma-separated base URLs of the initial members (including -self)")
	seedFlag := fs.String("seed", "", "cluster mode: comma-separated URLs of live members to join through at startup (alternative to -peers)")
	vnodes := fs.Int("ring-vnodes", 0, "cluster mode: virtual nodes per peer on the hash ring (0 = default)")
	forwardTimeout := fs.Duration("forward-timeout", 0, "cluster mode: per-forwarded-request timeout (0 = default)")
	replication := fs.Int("replication", 2, "cluster mode: ring successors owning each key (1 = single-owner, no replication; clamped to cluster size)")
	heartbeat := fs.Duration("heartbeat", 0, "cluster mode: membership gossip interval (0 = default 1s)")
	suspectAfter := fs.Duration("suspect-after", 0, "cluster mode: mark a silent member suspect after this long (0 = 3x heartbeat)")
	evictAfter := fs.Duration("evict-after", 0, "cluster mode: declare a silent member dead after this long (0 = 10x heartbeat)")
	drainTimeout := fs.Duration("drain-timeout", 0, "cluster mode: bound on streaming owned keys to new owners at departure (0 = default 30s)")
	antiEntropy := fs.Duration("anti-entropy", 0, "cluster mode: self-healing replica refill sweep interval (0 = default 30s, negative = disabled)")
	if err := fs.Parse(args); err != nil {
		return nil, serveConfig{}, err
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return nil, serveConfig{}, err
	}
	logger := slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
	cfg := serveConfig{
		addr: *addr, cacheFile: *cacheFile, snapshotEvery: *snapshotEvery,
		pprofAddr: *pprofAddr, logger: logger,
	}

	// Cluster flags are validated before the (possibly expensive) backend
	// build so a bad invocation fails fast instead of after training.
	clusterMode := *peersFlag != "" || *self != "" || *seedFlag != ""
	var peers, seeds []string
	if clusterMode {
		if *self == "" {
			return nil, serveConfig{}, fmt.Errorf("cluster mode needs -self")
		}
		if *peersFlag == "" && *seedFlag == "" {
			return nil, serveConfig{}, fmt.Errorf("cluster mode needs -peers (static bootstrap) or -seed (join a live member)")
		}
		if *replication < 1 {
			return nil, serveConfig{}, fmt.Errorf("-replication must be >= 1 (got %d)", *replication)
		}
		if _, err := serve.NormalizePeerURL(*self); err != nil {
			return nil, serveConfig{}, fmt.Errorf("-self: %w", err)
		}
		if peers, err = splitPeerURLs(*peersFlag, "-peers"); err != nil {
			return nil, serveConfig{}, err
		}
		if seeds, err = splitPeerURLs(*seedFlag, "-seed"); err != nil {
			return nil, serveConfig{}, err
		}
	}

	wanted, err := platformSet(*platforms)
	if err != nil {
		return nil, serveConfig{}, err
	}

	var backends []serve.Backend
	if *modelDir != "" {
		backends, err = checkpointBackends(*modelDir, *maxLoaded, wanted, logger)
	} else {
		backends, err = trainedBackends(*scaleName, *epochs, *points, wanted, logger)
	}
	if err != nil {
		return nil, serveConfig{}, err
	}

	srv, err := serve.NewServer(backends, serve.Options{
		AdviseCacheSize: *adviseCache,
		EncodeCacheSize: *encodeCache,
		MaxBatch:        *maxBatch,
		BatchWait:       *batchWait,
		PoolSize:        *poolSize,
		GridWorkers:     *gridWorkers,
		QueueLimit:      *admitQueue,
		QueuePerClient:  *admitPerClient,
		JobLimit:        *jobsMax,
		JobTTL:          *jobsTTL,
		TraceSlow:       *traceSlow,
		TraceRing:       *traceRing,
		Logger:          logger,

		FeedbackDir:       *feedbackDir,
		RegistryRoot:      *modelDir,
		RolloutSplit:      *rolloutSplit,
		RetrainAfter:      *retrainAfter,
		RetrainEpochs:     *retrainEpochs,
		QualityWindow:     *qualityWindow,
		MinQualitySamples: *qualityMin,
		PromoteAfter:      *promoteAfter,
		RollbackAfter:     *rollbackAfter,
		GCKeep:            *gcKeep,
	})
	if err != nil {
		return nil, serveConfig{}, err
	}
	if *feedbackDir != "" {
		logger.Info("feedback lifecycle enabled",
			"dir", *feedbackDir, "registry", *modelDir, "retrain", *modelDir != "" && *retrainAfter >= 0)
	}
	if clusterMode {
		if err := srv.EnableCluster(serve.ClusterConfig{
			Self:           *self,
			Peers:          peers,
			Seeds:          seeds,
			VNodes:         *vnodes,
			ForwardTimeout: *forwardTimeout,
			Replication:    *replication,
			Heartbeat:      *heartbeat,
			SuspectAfter:   *suspectAfter,
			EvictAfter:     *evictAfter,
			AntiEntropy:    *antiEntropy,
			DrainTimeout:   *drainTimeout,
		}); err != nil {
			srv.Close()
			return nil, serveConfig{}, err
		}
		cfg.cluster = true
		cfg.drainTimeout = *drainTimeout
		if cfg.drainTimeout <= 0 {
			cfg.drainTimeout = 30 * time.Second
		}
		ring := srv.Ring()
		rf := 1
		if ring.Replication != nil {
			rf = ring.Replication.Factor
		}
		logger.Info("cluster mode",
			"peers", len(ring.Members), "seeds", len(seeds), "vnodes", ring.VNodes,
			"rf", rf, "epoch", ring.Epoch, "self", ring.Self,
			"ownership", selfOwnership(ring))
	}
	return srv, cfg, nil
}

// splitPeerURLs parses a comma-separated URL flag, validating each entry.
func splitPeerURLs(flagValue, flagName string) ([]string, error) {
	var urls []string
	for _, p := range strings.Split(flagValue, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		if _, err := serve.NormalizePeerURL(p); err != nil {
			return nil, fmt.Errorf("%s: %w", flagName, err)
		}
		urls = append(urls, p)
	}
	return urls, nil
}

// selfOwnership extracts this peer's key-space fraction from the ring view.
func selfOwnership(ring serve.RingResponse) float64 {
	for _, m := range ring.Members {
		if m.Self {
			return m.Ownership
		}
	}
	return 0
}

// platformSet parses the -platforms flag into a validated name set.
func platformSet(flagValue string) (map[string]bool, error) {
	set := map[string]bool{}
	for _, name := range strings.Split(flagValue, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := hw.ByName(name); err != nil {
			return nil, err
		}
		set[name] = true
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("no platforms requested")
	}
	return set, nil
}

// checkpointBackends opens a registry and turns its checkpoints (restricted
// to the requested platforms) into serving backends — train-free startup.
func checkpointBackends(dir string, maxLoaded int, wanted map[string]bool, logger *slog.Logger) ([]serve.Backend, error) {
	reg, err := registry.Open(dir, registry.Options{MaxLoaded: maxLoaded})
	if err != nil {
		return nil, err
	}
	var backends []serve.Backend
	for _, e := range reg.Entries() {
		if !wanted[e.Manifest.Platform] {
			continue
		}
		logger.Info("loaded checkpoint",
			"model", e.Manifest.Platform+"/"+e.Manifest.Name,
			"level", e.Manifest.Level, "val_rmse", e.Manifest.Train.FinalValRMSE)
		backends = append(backends, serve.Backend{
			Machine: e.Machine,
			Model:   e,
			Prep:    e.Prep,
			Name:    e.Manifest.Name,
			Default: reg.Default(e),
			Info: &serve.ModelInfo{
				Level:     e.Level,
				Source:    "checkpoint",
				Hidden:    e.Manifest.Config.Hidden,
				Layers:    e.Manifest.Config.Layers,
				Params:    e.Manifest.Params,
				Epochs:    e.Manifest.Train.Epochs,
				ValRMSE:   e.Manifest.Train.FinalValRMSE,
				CreatedAt: e.Manifest.CreatedAt,
			},
		})
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("no checkpoints under %s match the requested platforms", dir)
	}
	return backends, nil
}

// trainedBackends is the fallback path: train one model per requested
// platform at startup, as before checkpoints existed.
func trainedBackends(scaleName string, epochs, points int, wanted map[string]bool, logger *slog.Logger) ([]serve.Backend, error) {
	var scale experiments.Scale
	switch strings.ToLower(scaleName) {
	case "tiny":
		scale = experiments.Tiny()
	case "small":
		scale = experiments.Small()
	case "full":
		scale = experiments.Full()
	default:
		return nil, fmt.Errorf("unknown scale %q", scaleName)
	}
	if epochs > 0 {
		scale.Epochs = epochs
	}
	if points > 0 {
		scale.MaxPerPlatform = points
	}

	var machines []hw.Machine
	for _, m := range hw.All() {
		if wanted[m.Name] {
			machines = append(machines, m)
		}
	}

	runner := experiments.NewRunner(scale)
	var backends []serve.Backend
	for _, m := range machines {
		start := time.Now()
		logger.Info("training model", "platform", m.Name, "scale", scale.Name, "epochs", scale.Epochs)
		tr, err := runner.Trained(m, paragraph.LevelParaGraph)
		if err != nil {
			return nil, fmt.Errorf("training %s: %w", m.Name, err)
		}
		logger.Info("model ready", "platform", m.Name,
			"seconds", time.Since(start).Seconds(), "val_rmse", tr.Hist.FinalValRMSE())
		backends = append(backends, serve.Backend{
			Machine: m, Model: tr.Model, Prep: tr.Prep,
			Info: &serve.ModelInfo{
				Level:   paragraph.LevelParaGraph,
				Source:  "trained",
				Hidden:  tr.Model.Config().Hidden,
				Layers:  tr.Model.Config().Layers,
				Params:  tr.Model.NumParams(),
				Epochs:  scale.Epochs,
				ValRMSE: tr.Hist.FinalValRMSE(),
			},
		})
	}
	return backends, nil
}

func allPlatformNames() string {
	var names []string
	for _, m := range hw.All() {
		names = append(names, m.Name)
	}
	return strings.Join(names, ",")
}
