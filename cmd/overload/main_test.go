package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// stubServe fakes the serve overload surface: deadline-less requests past
// a fixed admitted budget shed with the documented 503 contract,
// deadline-carrying (interactive) requests always answer 200.
func stubServe(t *testing.T, goodShed bool) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var admitted atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/advise", func(w http.ResponseWriter, r *http.Request) {
		interactive := r.Header.Get("X-Paragraph-Deadline") != ""
		if !interactive && admitted.Add(1) > 3 {
			if goodShed {
				w.Header().Set("Retry-After", "1")
			} else {
				w.Header().Set("Retry-After", "soonish")
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "overloaded: queue_full (retry after 1s)"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"kernel": "matmul", "recommendations": []any{}})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"shed": map[string]int{"queue_full": 1}})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &admitted
}

// TestRunAgainstSheddingServer: a compliant server passes the gates and
// the report carries both classes, sheds, and the server's own stats.
func TestRunAgainstSheddingServer(t *testing.T) {
	srv, _ := stubServe(t, true)
	out := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	code, err := run([]string{
		"-target", srv.URL, "-duration", "300ms",
		"-bulk", "4", "-interactive", "1", "-interactive-pace", "5ms",
		"-require-shed", "-max-interactive-p99", "5s",
		"-out", out,
	}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v\n%s", code, err, buf.String())
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, blob)
	}
	if rep.Bulk.Shed == 0 || rep.Bulk.OK == 0 {
		t.Errorf("bulk class = %+v, want both admitted and shed requests", rep.Bulk)
	}
	if rep.Interactive.OK == 0 || rep.Interactive.Shed != 0 {
		t.Errorf("interactive class = %+v, want only 200s", rep.Interactive)
	}
	if rep.Interactive.P99MS <= 0 || rep.Interactive.P99MS < rep.Interactive.P50MS {
		t.Errorf("quantiles p50=%v p99=%v", rep.Interactive.P50MS, rep.Interactive.P99MS)
	}
	if rep.Bulk.GoodputRPS <= 0 || rep.Interactive.GoodputRPS <= 0 {
		t.Errorf("goodput bulk=%v interactive=%v, want > 0 for classes with OKs",
			rep.Bulk.GoodputRPS, rep.Interactive.GoodputRPS)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("violations on a compliant server: %v", rep.Violations)
	}
	if !strings.Contains(string(rep.ServerStats), "queue_full") {
		t.Errorf("report did not capture /v1/stats: %s", rep.ServerStats)
	}
}

// TestRunFlagsBrokenRetryAfter: a server shedding without a valid
// Retry-After is a contract violation and a non-zero exit.
func TestRunFlagsBrokenRetryAfter(t *testing.T) {
	srv, _ := stubServe(t, false)
	var buf bytes.Buffer
	code, err := run([]string{
		"-target", srv.URL, "-duration", "200ms", "-bulk", "4", "-interactive", "0",
	}, &buf)
	if code != 1 || err == nil {
		t.Fatalf("run against a non-compliant server = %d, %v", code, err)
	}
	var rep report
	if jerr := json.Unmarshal(buf.Bytes(), &rep); jerr != nil {
		t.Fatalf("stdout not a JSON report: %v\n%s", jerr, buf.String())
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "Retry-After") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations = %v, want a Retry-After complaint", rep.Violations)
	}
}

// TestRunRequireShedFails: -require-shed against a server that never
// sheds (all requests under budget) exits 1 with the reason recorded.
func TestRunRequireShedFails(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/advise", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"recommendations": []any{}})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	var buf bytes.Buffer
	code, err := run([]string{
		"-target", srv.URL, "-duration", "100ms", "-bulk", "1", "-interactive", "0",
		"-require-shed",
	}, &buf)
	if code != 1 || err == nil {
		t.Fatalf("run = %d, %v; want required-shed failure", code, err)
	}
	if !strings.Contains(buf.String(), "required at least one bulk shed") {
		t.Errorf("report missing the require-shed violation:\n%s", buf.String())
	}
}

// TestBulkHonorsRetryAfter: a polite bulk worker sleeps out a shed's
// Retry-After (capped at -backoff-cap) instead of hammering straight back
// — against a server that always sheds, one worker completes only a
// handful of requests per window, not hundreds.
func TestBulkHonorsRetryAfter(t *testing.T) {
	var requests atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/advise", func(w http.ResponseWriter, r *http.Request) {
		// The warm-up (interactive-shaped: no deadline header either, so
		// key it off the body's fixed binding) must succeed once.
		if requests.Add(1) == 1 {
			json.NewEncoder(w).Encode(map[string]any{"recommendations": []any{}})
			return
		}
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "overloaded"})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	var buf bytes.Buffer
	code, _ := run([]string{
		"-target", srv.URL, "-duration", "300ms", "-bulk", "1", "-interactive", "0",
		"-backoff-cap", "100ms",
	}, &buf)
	if code != 0 {
		t.Fatalf("run = %d\n%s", code, buf.String())
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	// 300ms window / 100ms capped backoff ≈ 3-4 requests; without backoff a
	// local stub absorbs hundreds. Allow generous slack for slow CI.
	if rep.Bulk.Requests > 20 {
		t.Errorf("bulk sent %d requests into a shedding server, backoff not honored", rep.Bulk.Requests)
	}
	if rep.Bulk.Shed == 0 {
		t.Error("stub never shed")
	}
	if rep.Bulk.GoodputRPS != 0 {
		t.Errorf("goodput = %v for a class with no OKs, want 0", rep.Bulk.GoodputRPS)
	}
}

// TestRunUsageErrors: missing target and zero workers are usage errors.
func TestRunUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if code, err := run(nil, &buf); code != 2 || err == nil {
		t.Errorf("run without -target = %d, %v", code, err)
	}
	if code, err := run([]string{"-target", "http://x", "-bulk", "0", "-interactive", "0"}, &buf); code != 2 || err == nil {
		t.Errorf("run without workers = %d, %v", code, err)
	}
}

// TestQuantile: nearest-rank behaviour on small slices.
func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.99); q != 0 {
		t.Errorf("quantile(nil) = %v", q)
	}
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {0.1, 1}} {
		if got := quantile(data, tc.q); got != tc.want {
			t.Errorf("quantile(1..10, %v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}
