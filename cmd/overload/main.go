// Command overload drives a running serve instance past its evaluation
// capacity and checks the admission-control contract from the outside: a
// bulk class floods cold advise evaluations (distinct cache keys, no
// deadline, one client identity per worker), while an interactive class
// repeats a warm key under a deadline header and measures its latency.
//
// The generator validates every response against the published overload
// surface — sheds must be 503 with an integral Retry-After >= 1 and a
// JSON error body, everything else must be 200 — and aggregates per-class
// latency quantiles and goodput (successful responses per second). Bulk
// workers are polite clients: a shed's Retry-After is honored, capped at
// -backoff-cap so a server asking for long waits cannot idle the probe
// (0 disables backoff and hammers through sheds, the old behaviour).
// Assertions are opt-in flags so the same binary works as a chaos probe
// (just observe) or a CI gate (fail the build):
//
//	overload -target http://host:8080 -duration 10s \
//	         -bulk 16 -interactive 2 -deadline 2s -backoff-cap 1s \
//	         -require-shed -max-interactive-p99 500ms -out report.json
//
// Exit codes: 0 pass, 1 contract violation or failed assertion, 2 usage
// or transport failure.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overload:", err)
	}
	os.Exit(code)
}

// adviseRequest mirrors the serve wire format; the generator speaks plain
// JSON over HTTP like any external client, so a drifted contract fails
// here instead of being papered over by shared types.
type adviseRequest struct {
	Kernel   string             `json:"kernel"`
	Machine  string             `json:"machine"`
	Bindings map[string]float64 `json:"bindings,omitempty"`
	Space    *spaceSpec         `json:"space,omitempty"`
	Top      int                `json:"top,omitempty"`
}

type spaceSpec struct {
	GPUTeams   []int `json:"gpu_teams,omitempty"`
	GPUThreads []int `json:"gpu_threads,omitempty"`
	CPUThreads []int `json:"cpu_threads,omitempty"`
}

// classReport is the aggregated outcome of one request class.
type classReport struct {
	Requests int `json:"requests"`
	OK       int `json:"ok"`
	Shed     int `json:"shed"`
	Other    int `json:"other"`
	// GoodputRPS is successful (200) responses per second of wall clock —
	// the number that matters under overload: sheds and retries are free,
	// completed work is not.
	GoodputRPS float64 `json:"goodput_rps"`
	P50MS      float64 `json:"p50_ms"`
	P90MS      float64 `json:"p90_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
}

// report is the JSON document written by -out and summarized on stdout.
type report struct {
	Target      string          `json:"target"`
	DurationS   float64         `json:"duration_s"`
	Bulk        classReport     `json:"bulk"`
	Interactive classReport     `json:"interactive"`
	Violations  []string        `json:"violations,omitempty"`
	ServerStats json.RawMessage `json:"server_stats,omitempty"`
}

// sample is one completed request as a worker saw it.
type sample struct {
	status     int
	elapsed    time.Duration
	retryAfter time.Duration // from a valid shed's Retry-After; 0 otherwise
	violation  string        // "" = contract held
}

func run(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("overload", flag.ContinueOnError)
	fs.SetOutput(w)
	target := fs.String("target", "", "base URL of the serve instance (required)")
	duration := fs.Duration("duration", 10*time.Second, "how long to sustain the load")
	bulk := fs.Int("bulk", 8, "bulk workers flooding cold evaluations without deadlines")
	interactive := fs.Int("interactive", 2, "interactive workers repeating a warm key under a deadline")
	deadline := fs.Duration("deadline", 2*time.Second, "X-Paragraph-Deadline sent by interactive workers")
	pace := fs.Duration("interactive-pace", 10*time.Millisecond, "gap between interactive requests per worker")
	kernel := fs.String("kernel", "matmul", "kernel name sent in advise requests")
	machine := fs.String("machine", "NVIDIA V100 (GPU)", "machine name sent in advise requests")
	backoffCap := fs.Duration("backoff-cap", time.Second, "cap on honoring a shed's Retry-After before the next bulk request (0 = no backoff)")
	requireShed := fs.Bool("require-shed", false, "fail unless the bulk class saw at least one 503 shed")
	maxP99 := fs.Duration("max-interactive-p99", 0, "fail if the interactive p99 exceeds this (0 = no gate)")
	outPath := fs.String("out", "", "also write the JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if *target == "" {
		fs.Usage()
		return 2, fmt.Errorf("-target is required")
	}
	if *bulk < 0 || *interactive < 0 || *bulk+*interactive == 0 {
		return 2, fmt.Errorf("need at least one worker (-bulk %d -interactive %d)", *bulk, *interactive)
	}

	client := &http.Client{Timeout: *duration + 30*time.Second}

	// Warm the interactive key once so that class measures the cache-hit
	// path the admission layer promises to keep shed-free.
	warmKey := adviseRequest{
		Kernel: *kernel, Machine: *machine,
		Bindings: map[string]float64{"n": 64},
		Space:    &spaceSpec{GPUTeams: []int{64}, GPUThreads: []int{128}},
	}
	if st, _, _, err := post(client, *target, warmKey, nil); err != nil {
		return 2, fmt.Errorf("warm-up request: %w", err)
	} else if st != http.StatusOK {
		return 2, fmt.Errorf("warm-up request answered %d", st)
	}

	stop := time.Now().Add(*duration)
	var seq atomic.Int64
	bulkSamples := make([][]sample, *bulk)
	interSamples := make([][]sample, *interactive)
	var wg sync.WaitGroup
	for i := 0; i < *bulk; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			headers := map[string]string{"X-Paragraph-Client": fmt.Sprintf("bulk-%d", i)}
			for time.Now().Before(stop) {
				// A fresh binding per request defeats the cache: every bulk
				// request is a real evaluation competing for the pool.
				req := adviseRequest{
					Kernel: *kernel, Machine: *machine,
					Bindings: map[string]float64{"n": float64(1000 + seq.Add(1))},
					Space:    &spaceSpec{GPUTeams: []int{64}, GPUThreads: []int{128}},
				}
				s := doOne(client, *target, req, headers)
				bulkSamples[i] = append(bulkSamples[i], s)
				// A shed is the server saying "come back later" — honor it
				// (capped, and never past the test window) instead of
				// hammering straight back into the queue it just shed from.
				if s.retryAfter > 0 && *backoffCap > 0 {
					wait := s.retryAfter
					if wait > *backoffCap {
						wait = *backoffCap
					}
					if until := time.Until(stop); wait > until {
						wait = until
					}
					if wait > 0 {
						time.Sleep(wait)
					}
				}
			}
		}(i)
	}
	for i := 0; i < *interactive; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			headers := map[string]string{
				"X-Paragraph-Client":   fmt.Sprintf("interactive-%d", i),
				"X-Paragraph-Deadline": deadline.String(),
			}
			for time.Now().Before(stop) {
				interSamples[i] = append(interSamples[i], doOne(client, *target, warmKey, headers))
				time.Sleep(*pace)
			}
		}(i)
	}
	wg.Wait()

	rep := report{Target: *target, DurationS: duration.Seconds()}
	rep.Bulk = aggregate(flatten(bulkSamples), *duration, &rep.Violations)
	rep.Interactive = aggregate(flatten(interSamples), *duration, &rep.Violations)
	if body, err := get(client, *target+"/v1/stats"); err == nil && json.Valid(body) {
		rep.ServerStats = body
	}

	failed := len(rep.Violations) > 0
	if *requireShed && rep.Bulk.Shed == 0 {
		rep.Violations = append(rep.Violations, "required at least one bulk shed, saw none")
		failed = true
	}
	if *maxP99 > 0 && rep.Interactive.P99MS > float64(maxP99.Milliseconds()) {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("interactive p99 %.1fms exceeds gate %v", rep.Interactive.P99MS, *maxP99))
		failed = true
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return 2, err
	}
	if *outPath != "" {
		blob, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			return 2, err
		}
	}
	if failed {
		return 1, fmt.Errorf("%d violation(s)", len(rep.Violations))
	}
	return 0, nil
}

// doOne sends one advise request and classifies the response against the
// overload contract.
func doOne(client *http.Client, target string, req adviseRequest, headers map[string]string) sample {
	start := time.Now()
	status, hdr, body, err := post(client, target, req, headers)
	s := sample{status: status, elapsed: time.Since(start)}
	switch {
	case err != nil:
		s.status = 0
		s.violation = fmt.Sprintf("transport: %v", err)
	case status == http.StatusServiceUnavailable:
		if v := checkShed(hdr, body); v != "" {
			s.violation = v
		} else if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err == nil {
			s.retryAfter = time.Duration(secs) * time.Second
		}
	case status != http.StatusOK:
		s.violation = fmt.Sprintf("unexpected status %d", status)
	}
	return s
}

// checkShed validates the 503 surface: integral Retry-After >= 1 and a
// JSON error body. Returns "" when the contract holds.
func checkShed(hdr http.Header, body []byte) string {
	ra := hdr.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		return fmt.Sprintf("shed Retry-After = %q, want integer >= 1", ra)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		return fmt.Sprintf("shed body not a JSON error: %.100s", body)
	}
	return ""
}

func post(client *http.Client, target string, req adviseRequest, headers map[string]string) (int, http.Header, []byte, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return 0, nil, nil, err
	}
	hreq, err := http.NewRequest(http.MethodPost, target+"/v1/advise", bytes.NewReader(blob))
	if err != nil {
		return 0, nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hreq.Header.Set(k, v)
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

func get(client *http.Client, url string) (json.RawMessage, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

func flatten(perWorker [][]sample) []sample {
	var all []sample
	for _, ss := range perWorker {
		all = append(all, ss...)
	}
	return all
}

// aggregate folds a class's samples into counts, goodput over the load
// window, and OK-latency quantiles, appending at most a handful of
// distinct contract violations.
func aggregate(samples []sample, window time.Duration, violations *[]string) classReport {
	var rep classReport
	var okMS []float64
	seen := map[string]bool{}
	for _, s := range samples {
		rep.Requests++
		switch {
		case s.violation != "" && s.status != http.StatusServiceUnavailable:
			rep.Other++
		case s.status == http.StatusServiceUnavailable:
			rep.Shed++
		default:
			rep.OK++
			okMS = append(okMS, float64(s.elapsed.Nanoseconds())/1e6)
		}
		if s.violation != "" && !seen[s.violation] && len(seen) < 8 {
			seen[s.violation] = true
			*violations = append(*violations, s.violation)
		}
	}
	if window > 0 {
		rep.GoodputRPS = float64(rep.OK) / window.Seconds()
	}
	sort.Float64s(okMS)
	rep.P50MS = quantile(okMS, 0.50)
	rep.P90MS = quantile(okMS, 0.90)
	rep.P99MS = quantile(okMS, 0.99)
	if n := len(okMS); n > 0 {
		rep.MaxMS = okMS[n-1]
	}
	return rep
}

// quantile reads q from an ascending-sorted slice (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
