// Command experiments regenerates the paper's tables and figures against
// the simulated substrate; internal/experiments holds one function per
// reproduced artifact.
//
// Usage:
//
//	experiments -all [-scale tiny|small|full]
//	experiments -table 3
//	experiments -figure 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"paragraph/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(w)
	scaleName := fs.String("scale", "small", "scale: tiny, small, or full")
	table := fs.Int("table", 0, "regenerate one table (1-4)")
	figure := fs.Int("figure", 0, "regenerate one figure (4-9)")
	all := fs.Bool("all", false, "regenerate everything")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale experiments.Scale
	switch strings.ToLower(*scaleName) {
	case "tiny":
		scale = experiments.Tiny()
	case "small":
		scale = experiments.Small()
	case "full":
		scale = experiments.Full()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	r := experiments.NewRunner(scale)

	if *all || (*table == 0 && *figure == 0) {
		fmt.Fprintf(w, "== ParaGraph experiment suite (scale %s) ==\n\n", scale.Name)
		return r.RunAll(w)
	}
	switch *table {
	case 0:
	case 1:
		experiments.RenderTable1(w)
		return nil
	case 2:
		return r.RenderTable2(w)
	case 3:
		return r.RenderTable3(w)
	case 4:
		return r.RenderTable4(w)
	default:
		return fmt.Errorf("no table %d in the paper", *table)
	}
	switch *figure {
	case 4:
		return r.RenderFigure4(w)
	case 5:
		return r.RenderFigure5(w)
	case 6:
		return r.RenderFigure6(w)
	case 7:
		return r.RenderFigure7(w)
	case 8:
		return r.RenderFigure8(w)
	case 9:
		return r.RenderFigure9(w)
	default:
		return fmt.Errorf("no figure %d in the paper's evaluation", *figure)
	}
}
