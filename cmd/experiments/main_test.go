package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-scale", "huge"},
		{"-table", "7"},
		{"-figure", "1"},
		{"-badflag"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args, io.Discard); err == nil {
				t.Errorf("run(%v) accepted", args)
			}
		})
	}
}

// TestRunTable1 renders the training-free artifact through the CLI path.
func TestRunTable1(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Application", "Matrix-Matrix Multiplication", "Total"} {
		if !strings.Contains(got, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, got)
		}
	}
}

// TestRunTable2 exercises one simulated-collection artifact end to end at
// tiny scale (no model training involved).
func TestRunTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset collection in -short mode")
	}
	var out strings.Builder
	if err := run([]string{"-scale", "tiny", "-table", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "V100") {
		t.Errorf("Table 2 output missing platforms:\n%s", out.String())
	}
}
