// Command paragraph builds the ParaGraph representation of a C kernel and
// emits it as Graphviz DOT, JSON, or a summary.
//
// Usage:
//
//	paragraph -in kernel.c [-func name] [-level raw|aug|para]
//	          [-threads N] [-bind "n=1024,m=64"] [-format dot|json|stats]
//
// With no -in flag the source is read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"paragraph/internal/analysis"
	"paragraph/internal/cast"
	"paragraph/internal/cparse"
	"paragraph/internal/paragraph"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paragraph:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("paragraph", flag.ContinueOnError)
	in := fs.String("in", "", "input C file (default: stdin)")
	fn := fs.String("func", "", "function to build (default: first function)")
	levelName := fs.String("level", "para", "representation level: raw, aug, or para")
	threads := fs.Int("threads", 0, "parallelism dividing annotated loop iterations")
	bind := fs.String("bind", "", "parameter bindings, e.g. \"n=1024,m=64\"")
	format := fs.String("format", "dot", "output format: dot, json, or stats")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src, err := readSource(*in, stdin)
	if err != nil {
		return err
	}
	level, err := parseLevel(*levelName)
	if err != nil {
		return err
	}
	bindings, err := parseBindings(*bind)
	if err != nil {
		return err
	}

	root, err := cparse.Parse(src)
	if err != nil {
		return err
	}
	target := cast.FindAll(root, cast.KindFunctionDecl)
	if len(target) == 0 {
		return fmt.Errorf("no function in input")
	}
	node := target[0]
	if *fn != "" {
		if node = cast.FindFunction(root, *fn); node == nil {
			return fmt.Errorf("function %q not found", *fn)
		}
	}

	g, err := paragraph.Build(node, paragraph.Options{
		Level:    level,
		Threads:  *threads,
		Bindings: bindings,
	})
	if err != nil {
		return err
	}

	switch *format {
	case "dot":
		return g.WriteDOT(stdout, node.Name)
	case "json":
		return g.WriteJSON(stdout)
	case "stats":
		s := g.Summary()
		fmt.Fprintf(stdout, "function: %s\nlevel: %s\nnodes: %d\nedges: %d\n",
			node.Name, level, s.Nodes, s.Edges)
		var types []string
		for ty := range s.EdgesByType {
			types = append(types, ty)
		}
		sort.Strings(types)
		for _, ty := range types {
			fmt.Fprintf(stdout, "  %-10s %d\n", ty, s.EdgesByType[ty])
		}
		fmt.Fprintf(stdout, "total child-edge weight: %g\nmax in-degree: %d\n",
			s.TotalWeight, s.MaxInDeg)
		return nil
	}
	return fmt.Errorf("unknown format %q", *format)
}

func readSource(path string, stdin io.Reader) (string, error) {
	if path == "" {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func parseLevel(s string) (paragraph.Level, error) {
	switch strings.ToLower(s) {
	case "raw":
		return paragraph.LevelRawAST, nil
	case "aug":
		return paragraph.LevelAugmentedAST, nil
	case "para", "paragraph":
		return paragraph.LevelParaGraph, nil
	}
	return 0, fmt.Errorf("unknown level %q (want raw, aug, or para)", s)
}

func parseBindings(s string) (analysis.Env, error) {
	env := analysis.Env{}
	if s == "" {
		return env, nil
	}
	for _, pair := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad binding %q (want name=value)", pair)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad binding value %q: %v", kv[1], err)
		}
		env[strings.TrimSpace(kv[0])] = v
	}
	return env, nil
}
