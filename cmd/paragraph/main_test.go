package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paragraph/internal/paragraph"
)

const testKernel = `
void axpy(double *x, double *y, double a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
    }
}
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "kernel.c")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDOTOutput(t *testing.T) {
	path := writeTemp(t, testKernel)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-format", "dot", "-threads", "4", "-bind", "n=1000"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"digraph", "ForStmt", "Child", "ForExec"} {
		if !strings.Contains(s, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestRunStatsOutput(t *testing.T) {
	path := writeTemp(t, testKernel)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-format", "stats", "-level", "para", "-bind", "n=100", "-threads", "4"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"function: axpy", "nodes:", "edges:", "total child-edge weight"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats output missing %q:\n%s", want, s)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeTemp(t, testKernel)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-format", "json"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"nodes\"") {
		t.Error("json output missing nodes")
	}
}

func TestRunReadsStdin(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-format", "stats"}, strings.NewReader(testKernel), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "axpy") {
		t.Error("stdin input not processed")
	}
}

func TestRunSelectsFunction(t *testing.T) {
	two := testKernel + "\nvoid other(int n) { n++; }\n"
	path := writeTemp(t, two)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-func", "other", "-format", "stats"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "function: other") {
		t.Errorf("wrong function:\n%s", out.String())
	}
	if err := run([]string{"-in", path, "-func", "missing"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing function accepted")
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTemp(t, testKernel)
	cases := [][]string{
		{"-in", path, "-level", "bogus"},
		{"-in", path, "-format", "bogus"},
		{"-in", path, "-bind", "n"},
		{"-in", path, "-bind", "n=abc"},
		{"-in", "/nonexistent/file.c"},
	}
	for _, args := range cases {
		if err := run(args, strings.NewReader(""), &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	if err := run(nil, strings.NewReader("int broken("), &bytes.Buffer{}); err == nil {
		t.Error("broken source accepted")
	}
	if err := run(nil, strings.NewReader("int g = 1;"), &bytes.Buffer{}); err == nil {
		t.Error("source without functions accepted")
	}
}

func TestParseLevelAndBindings(t *testing.T) {
	for name, want := range map[string]paragraph.Level{
		"raw": paragraph.LevelRawAST, "aug": paragraph.LevelAugmentedAST,
		"para": paragraph.LevelParaGraph, "paragraph": paragraph.LevelParaGraph,
		"PARA": paragraph.LevelParaGraph,
	} {
		got, err := parseLevel(name)
		if err != nil || got != want {
			t.Errorf("parseLevel(%q) = %v, %v", name, got, err)
		}
	}
	env, err := parseBindings("n=10, m = 2.5")
	if err != nil {
		t.Fatal(err)
	}
	if env["n"] != 10 || env["m"] != 2.5 {
		t.Errorf("bindings = %v", env)
	}
	if env, err := parseBindings(""); err != nil || len(env) != 0 {
		t.Errorf("empty bindings = %v, %v", env, err)
	}
}
