package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchData is one parsed `go test -bench` run: the CPU line and every
// observed value per (benchmark, unit), in output order.
type benchData struct {
	CPU     string
	Samples map[string][]float64 // "name|unit" → values across -count reps
}

// comparison binds one tracked benchmark metric to its key in a
// BENCH_INFERENCE.json results object.
type comparison struct {
	Bench string // benchmark name as printed, minus the -GOMAXPROCS suffix
	Unit  string
	Key   string // results key in the baseline entry
}

// comparisons is the gate's tracked set. GNNForward and engine-single
// measure the same operation (one fused engine forward) from two harnesses;
// both gate against the recorded engine single-sample time.
var comparisons = []comparison{
	{"BenchmarkPredictFastPath/tape-single", "ns/op", "tape_single_ns_op"},
	{"BenchmarkPredictFastPath/engine-single", "ns/op", "engine_single_ns_op"},
	{"BenchmarkGNNForward", "ns/op", "engine_single_ns_op"},
	{"BenchmarkPredictFastPath/engine32-single", "ns/op", "engine32_single_ns_op"},
	{"BenchmarkPredictFastPath/tape-batch-32", "ns/sample", "tape_batch32_ns_sample"},
	{"BenchmarkPredictFastPath/engine-batch-32", "ns/sample", "engine_batch32_ns_sample"},
	{"BenchmarkPredictFastPath/engine32-batch-32", "ns/sample", "engine32_batch32_ns_sample"},
}

// parseBench reads raw `go test -bench` output. Each benchmark result line
// looks like
//
//	BenchmarkGNNForward-4   6788   488010 ns/op   30 B/op   0 allocs/op
//
// with value/unit pairs after the iteration count; custom metrics
// (ReportMetric, e.g. ns/sample) appear as extra pairs. The trailing
// -GOMAXPROCS suffix is stripped so names are stable across runners.
func parseBench(r io.Reader) (*benchData, error) {
	data := &benchData{Samples: map[string][]float64{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			data.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		// Benchmarks print a -GOMAXPROCS suffix on multi-proc runs and none
		// on single-proc ones, and names like "engine-batch-32" end in a
		// number themselves — so record each sample under both the raw name
		// and the suffix-stripped one; lookups hit whichever matches the
		// tracked name.
		names := []string{f[0]}
		if i := strings.LastIndex(f[0], "-"); i > 0 {
			if _, err := strconv.Atoi(f[0][i+1:]); err == nil {
				names = append(names, f[0][:i])
			}
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break // benchmark lines end at the first non-numeric pair
			}
			for _, name := range names {
				data.Samples[name+"|"+f[i+1]] = append(data.Samples[name+"|"+f[i+1]], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(data.Samples) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return data, nil
}

// baselineEntry mirrors one element of BENCH_INFERENCE.json's benchmarks
// array; unknown fields are ignored so the schema can grow.
type baselineEntry struct {
	Date    string             `json:"date"`
	PR      int                `json:"pr"`
	CPU     string             `json:"cpu"`
	Results map[string]float64 `json:"results"`
}

type baselineFile struct {
	Benchmarks []baselineEntry `json:"benchmarks"`
}

// loadBaseline returns the latest (last appended) entry of the trajectory.
func loadBaseline(path string) (*baselineEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no baseline entries", path)
	}
	return &f.Benchmarks[len(f.Benchmarks)-1], nil
}

// median returns the middle value (mean of the middle two for even counts).
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// gate compares the run against the baseline entry and returns a
// human-readable report plus the pass verdict.
func gate(data *benchData, base *baselineEntry, threshold float64) (string, bool) {
	var b strings.Builder
	pass := true
	fmt.Fprintf(&b, "benchgate: baseline PR %d (%s) on %q, threshold %.0f%%\n",
		base.PR, base.Date, base.CPU, threshold*100)

	if data.CPU == base.CPU && base.CPU != "" {
		fmt.Fprintf(&b, "mode: absolute (benchmark CPU matches baseline)\n")
		compared := 0
		for _, c := range comparisons {
			vals := data.Samples[c.Bench+"|"+c.Unit]
			want, ok := base.Results[c.Key]
			if len(vals) == 0 || !ok || want <= 0 {
				continue
			}
			med := median(vals)
			delta := med/want - 1
			verdict := "ok"
			if delta > threshold {
				verdict = "REGRESSION"
				pass = false
			}
			fmt.Fprintf(&b, "  %-46s median %12.0f %s vs baseline %12.0f (%+.1f%%) %s\n",
				c.Bench, med, c.Unit, want, delta*100, verdict)
			compared++
		}
		if compared == 0 {
			fmt.Fprintf(&b, "  no tracked benchmarks found in input\n")
			pass = false
		}
	} else {
		fmt.Fprintf(&b, "mode: speedup ratio (benchmark CPU %q differs from baseline)\n", data.CPU)
		tape := data.Samples["BenchmarkPredictFastPath/tape-single|ns/op"]
		engine := data.Samples["BenchmarkPredictFastPath/engine-single|ns/op"]
		baseSpeedup := base.Results["single_speedup"]
		if len(tape) == 0 || len(engine) == 0 || baseSpeedup <= 0 {
			fmt.Fprintf(&b, "  missing tape/engine samples or baseline single_speedup; cannot gate\n")
			return b.String(), false
		}
		speedup := median(tape) / median(engine)
		verdict := "ok"
		if speedup < baseSpeedup*(1-threshold) {
			verdict = "REGRESSION"
			pass = false
		}
		fmt.Fprintf(&b, "  tape/engine speedup %.2fx vs baseline %.2fx %s\n", speedup, baseSpeedup, verdict)
	}

	if pass {
		fmt.Fprintf(&b, "verdict: PASS\n")
	} else {
		fmt.Fprintf(&b, "verdict: FAIL\n")
	}
	return b.String(), pass
}
