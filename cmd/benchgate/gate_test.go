package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: paragraph
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGNNForward-4      	    6788	    488010 ns/op	      30 B/op	       0 allocs/op
BenchmarkGNNForward-4      	    6500	    501000 ns/op	      30 B/op	       0 allocs/op
BenchmarkGNNForward-4      	    6900	    479000 ns/op	      30 B/op	       0 allocs/op
BenchmarkPredictFastPath/tape-single-4         	     810	   2647854 ns/op	 3016627 B/op	    1401 allocs/op
BenchmarkPredictFastPath/engine-single-4       	    4215	    490776 ns/op	       0 B/op	       0 allocs/op
BenchmarkPredictFastPath/tape-batch-32-4       	      26	  96020912 ns/op	   3000652 ns/sample	96532120 B/op	   44849 allocs/op
BenchmarkPredictFastPath/engine-batch-32-4     	     128	  18457302 ns/op	    476790 ns/sample	     257 B/op	       1 allocs/op
PASS
`

func sampleBaseline() *baselineEntry {
	return &baselineEntry{
		Date: "2026-08-08", PR: 7,
		CPU: "Intel(R) Xeon(R) Processor @ 2.10GHz",
		Results: map[string]float64{
			"tape_single_ns_op":        2650000,
			"engine_single_ns_op":      490000,
			"tape_batch32_ns_sample":   3000000,
			"engine_batch32_ns_sample": 480000,
			"single_speedup":           5.4,
		},
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := median([]float64{7}); got != 7 {
		t.Errorf("single median = %v", got)
	}
}

func TestParseBench(t *testing.T) {
	data, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if data.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", data.CPU)
	}
	if got := data.Samples["BenchmarkGNNForward|ns/op"]; len(got) != 3 {
		t.Errorf("GNNForward samples = %v, want 3 reps", got)
	}
	// The -GOMAXPROCS suffix is stripped; custom ns/sample metrics are kept
	// separately from ns/op.
	if got := data.Samples["BenchmarkPredictFastPath/engine-batch-32|ns/sample"]; len(got) != 1 || got[0] != 476790 {
		t.Errorf("engine-batch-32 ns/sample = %v", got)
	}
	if got := data.Samples["BenchmarkPredictFastPath/engine-single|ns/op"]; len(got) != 1 || got[0] != 490776 {
		t.Errorf("engine-single ns/op = %v", got)
	}

	if _, err := parseBench(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("empty input did not error")
	}
}

// TestParseBenchNoSuffix covers single-proc runs, where Go prints no
// -GOMAXPROCS suffix: a name whose own tail is numeric (engine-batch-32)
// must still be found under its printed name.
func TestParseBenchNoSuffix(t *testing.T) {
	out := `cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPredictFastPath/engine-batch-32         	      78	  15144228 ns/op	    473256 ns/sample	     257 B/op	       1 allocs/op
`
	data, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	got := data.Samples["BenchmarkPredictFastPath/engine-batch-32|ns/sample"]
	if len(got) != 1 || got[0] != 473256 {
		t.Errorf("no-suffix engine-batch-32 ns/sample = %v", got)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	data, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	report, ok := gate(data, sampleBaseline(), 0.20)
	if !ok {
		t.Fatalf("gate failed on in-threshold run:\n%s", report)
	}
	if !strings.Contains(report, "mode: absolute") || !strings.Contains(report, "verdict: PASS") {
		t.Errorf("report:\n%s", report)
	}
}

// TestGateFailsOnSyntheticRegression is the acceptance check for the gate
// itself: a >20% engine slowdown must flip the verdict.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	slower := strings.ReplaceAll(sampleOutput,
		"4215	    490776 ns/op",
		"3000	    650000 ns/op") // engine-single +33%
	data, err := parseBench(strings.NewReader(slower))
	if err != nil {
		t.Fatal(err)
	}
	report, ok := gate(data, sampleBaseline(), 0.20)
	if ok {
		t.Fatalf("gate passed a 33%% regression:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") || !strings.Contains(report, "verdict: FAIL") {
		t.Errorf("report:\n%s", report)
	}
}

func TestGateIgnoresFasterRuns(t *testing.T) {
	faster := strings.ReplaceAll(sampleOutput,
		"4215	    490776 ns/op",
		"9000	    240000 ns/op")
	data, err := parseBench(strings.NewReader(faster))
	if err != nil {
		t.Fatal(err)
	}
	if report, ok := gate(data, sampleBaseline(), 0.20); !ok {
		t.Fatalf("gate failed an improvement:\n%s", report)
	}
}

func TestGateCrossCPUUsesSpeedupRatio(t *testing.T) {
	base := sampleBaseline()
	base.CPU = "Apple M2"
	data, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	// Run speedup is 2647854/490776 ≈ 5.40 vs baseline 5.4: pass.
	report, ok := gate(data, base, 0.20)
	if !ok {
		t.Fatalf("ratio mode failed a matching speedup:\n%s", report)
	}
	if !strings.Contains(report, "mode: speedup ratio") {
		t.Errorf("report:\n%s", report)
	}

	// Engine 2× slower halves the speedup: fail even cross-hardware.
	slower := strings.ReplaceAll(sampleOutput,
		"4215	    490776 ns/op",
		"2000	    990000 ns/op")
	data, err = parseBench(strings.NewReader(slower))
	if err != nil {
		t.Fatal(err)
	}
	if report, ok := gate(data, base, 0.20); ok {
		t.Fatalf("ratio mode passed a halved speedup:\n%s", report)
	}
}

func TestGateMissingDataFails(t *testing.T) {
	data, err := parseBench(strings.NewReader("BenchmarkUnrelated-4 10 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if report, ok := gate(data, sampleBaseline(), 0.20); ok {
		t.Fatalf("gate passed with no tracked benchmarks:\n%s", report)
	}
	base := sampleBaseline()
	base.CPU = "other"
	if report, ok := gate(data, base, 0.20); ok {
		t.Fatalf("ratio mode passed with no tape/engine samples:\n%s", report)
	}
}
