// Command benchgate compares fresh predict-benchmark output against the
// recorded trajectory in BENCH_INFERENCE.json and fails (exit 1) on a
// regression beyond the threshold. CI runs it after the bench job:
//
//	go test -run='^$' -bench='PredictFastPath|GNNForward$' -benchmem -count=5 . > bench-predict.txt
//	benchgate -bench bench-predict.txt -baseline BENCH_INFERENCE.json
//
// Benchmarks repeated via -count collapse to their median, which is what
// the gate compares — single outlier iterations on noisy shared runners do
// not fail the build.
//
// The gate is hardware-aware. When the benchmark ran on the same CPU model
// the baseline entry records, medians are compared absolutely: each tracked
// benchmark must stay within threshold of its recorded value. On any other
// CPU absolute nanoseconds are meaningless, so the gate falls back to the
// hardware-normalized ratio: the tape-vs-engine speedup measured in the
// same run must stay within threshold of the recorded single_speedup (both
// paths run on the same machine, so the ratio transfers across hardware).
//
// Exit codes: 0 pass, 1 regression, 2 usage or parse failure.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "raw `go test -bench` output (required)")
		basePath  = flag.String("baseline", "", "BENCH_INFERENCE.json to gate against (required)")
		threshold = flag.Float64("threshold", 0.20, "allowed relative regression (0.20 = 20%)")
		outPath   = flag.String("out", "", "also write the verdict report to this file")
	)
	flag.Parse()
	if *benchPath == "" || *basePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -bench and -baseline are required")
		flag.Usage()
		os.Exit(2)
	}

	bf, err := os.Open(*benchPath)
	if err != nil {
		fatal(err)
	}
	data, err := parseBench(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}
	base, err := loadBaseline(*basePath)
	if err != nil {
		fatal(err)
	}

	report, ok := gate(data, base, *threshold)
	fmt.Print(report)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report), 0o644); err != nil {
			fatal(err)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}
