// Command train trains the ParaGraph GNN cost model (and optionally the
// COMPOFF baseline) for one platform and reports validation metrics. With
// -save-dir it also writes the trained model as a registry checkpoint
// (internal/registry: weights + manifest) that cmd/serve -model-dir can
// boot from without retraining.
//
// Usage:
//
//	train [-scale tiny|small|full] [-platform "NVIDIA V100 (GPU)"]
//	      [-level raw|aug|para] [-compoff] [-epochs N] [-points N]
//	      [-save-dir DIR] [-save-name NAME]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"paragraph/internal/experiments"
	"paragraph/internal/hw"
	"paragraph/internal/metrics"
	"paragraph/internal/paragraph"
	"paragraph/internal/registry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	fs.SetOutput(w)
	scaleName := fs.String("scale", "small", "scale: tiny, small, or full")
	platform := fs.String("platform", "NVIDIA V100 (GPU)", "platform name")
	levelName := fs.String("level", "para", "representation: raw, aug, or para")
	withCompoff := fs.Bool("compoff", false, "also train the COMPOFF baseline (GPU platforms)")
	epochs := fs.Int("epochs", 0, "override training epochs (0 = scale default)")
	points := fs.Int("points", 0, "override dataset points per platform (0 = scale default)")
	saveDir := fs.String("save-dir", "", "write the trained model as a registry checkpoint under this directory")
	saveName := fs.String("save-name", "default", "checkpoint version name within -save-dir")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *saveDir != "" {
		// Reject a bad version name now, not after the training run.
		if err := registry.CheckName(*saveName); err != nil {
			return err
		}
	}

	var scale experiments.Scale
	switch strings.ToLower(*scaleName) {
	case "tiny":
		scale = experiments.Tiny()
	case "small":
		scale = experiments.Small()
	case "full":
		scale = experiments.Full()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *epochs > 0 {
		scale.Epochs = *epochs
	}
	if *points > 0 {
		scale.MaxPerPlatform = *points
	}
	var level paragraph.Level
	switch strings.ToLower(*levelName) {
	case "raw":
		level = paragraph.LevelRawAST
	case "aug":
		level = paragraph.LevelAugmentedAST
	case "para":
		level = paragraph.LevelParaGraph
	default:
		return fmt.Errorf("unknown level %q", *levelName)
	}
	m, err := hw.ByName(*platform)
	if err != nil {
		return err
	}

	runner := experiments.NewRunner(scale)
	fmt.Fprintf(w, "training %s model on %s at scale %q\n", level, m.Name, scale.Name)
	tr, err := runner.Trained(m, level)
	if err != nil {
		return err
	}
	for epoch, v := range tr.Hist.ValRMSE {
		fmt.Fprintf(w, "epoch %3d: train loss %.5f, val RMSE (scaled) %.5f\n",
			epoch+1, tr.Hist.TrainLoss[epoch], v)
	}
	actual, pred := tr.ValActualPredMS()
	fmt.Fprintf(w, "\nvalidation (n=%d): RMSE %.4g ms, Norm-RMSE %.3e, Pearson(log) %.4f\n",
		len(actual), metrics.RMSE(pred, actual), metrics.NormRMSE(pred, actual),
		logPearson(pred, actual))

	if *saveDir != "" {
		dir, err := registry.Save(*saveDir, m, *saveName, level, tr.Model, tr.Prep, registry.TrainInfo{
			Scale:        scale.Name,
			Epochs:       scale.Epochs,
			TrainSamples: len(tr.Prep.Train),
			ValSamples:   len(tr.Prep.Val),
			FinalValRMSE: tr.Hist.FinalValRMSE(),
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint %s/%s saved to %s\n", m.Name, *saveName, dir)
	}

	if *withCompoff {
		res, err := runner.Figure8()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "COMPOFF comparison: mean rel err ParaGraph %.4f vs COMPOFF %.4f (ParaGraph wins %.1f%%)\n",
			res.ParaGraphMeanErr, res.CompoffMeanErr, 100*res.WinFraction)
	}
	return nil
}

func logPearson(pred, actual []float64) float64 {
	lp := make([]float64, len(pred))
	la := make([]float64, len(actual))
	for i := range pred {
		lp[i] = safeLog(pred[i])
		la[i] = safeLog(actual[i])
	}
	return metrics.Pearson(lp, la)
}

func safeLog(v float64) float64 {
	if v < 1e-9 {
		v = 1e-9
	}
	return math.Log(v)
}
