// Command train trains the ParaGraph GNN cost model (and optionally the
// COMPOFF baseline) for one platform and reports validation metrics. With
// -save-dir it also writes the trained model as a registry checkpoint
// (internal/registry: weights + manifest) that cmd/serve -model-dir can
// boot from without retraining.
//
// With -from-feedback it retrains incrementally instead: measured runtimes
// collected by `serve -feedback-dir` (POST /v1/feedback) are read from the
// given log directory, the platform's stable checkpoint under -save-dir is
// fine-tuned on them, and the result is saved as a *candidate* version with
// the platform's rollout state pointing at it — the same path a serving
// process takes on its own when started with both -feedback-dir and
// -model-dir, available offline for operators who retrain out of band.
//
// Usage:
//
//	train [-scale tiny|small|full] [-platform "NVIDIA V100 (GPU)"]
//	      [-level raw|aug|para] [-compoff] [-epochs N] [-points N]
//	      [-save-dir DIR] [-save-name NAME]
//	train -from-feedback DIR -save-dir DIR [-platform NAME]
//	      [-epochs N] [-rollout-split 10] [-min-records 20] [-save-name NAME]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"paragraph/internal/experiments"
	"paragraph/internal/feedback"
	"paragraph/internal/hw"
	"paragraph/internal/metrics"
	"paragraph/internal/paragraph"
	"paragraph/internal/registry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	fs.SetOutput(w)
	scaleName := fs.String("scale", "small", "scale: tiny, small, or full")
	platform := fs.String("platform", "NVIDIA V100 (GPU)", "platform name")
	levelName := fs.String("level", "para", "representation: raw, aug, or para")
	withCompoff := fs.Bool("compoff", false, "also train the COMPOFF baseline (GPU platforms)")
	epochs := fs.Int("epochs", 0, "override training epochs (0 = scale default)")
	points := fs.Int("points", 0, "override dataset points per platform (0 = scale default)")
	saveDir := fs.String("save-dir", "", "write the trained model as a registry checkpoint under this directory")
	saveName := fs.String("save-name", "default", "checkpoint version name within -save-dir")
	fromFeedback := fs.String("from-feedback", "", "incremental retrain: fine-tune the stable checkpoint under -save-dir on measured feedback from this log directory")
	rolloutSplit := fs.Float64("rollout-split", 0, "canary traffic percentage recorded for the retrained candidate (0 = default 10)")
	minRecords := fs.Int("min-records", 0, "feedback records required before retraining (0 = default 20)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *saveDir != "" {
		// Reject a bad version name now, not after the training run.
		if err := registry.CheckName(*saveName); err != nil {
			return err
		}
	}
	if *fromFeedback != "" {
		// The candidate name is derived ("fb-<timestamp>") unless the
		// operator explicitly chose one.
		candName := ""
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "save-name" {
				candName = *saveName
			}
		})
		return retrainFromFeedback(w, *fromFeedback, *saveDir, candName, *platform,
			*rolloutSplit, *epochs, *minRecords)
	}

	var scale experiments.Scale
	switch strings.ToLower(*scaleName) {
	case "tiny":
		scale = experiments.Tiny()
	case "small":
		scale = experiments.Small()
	case "full":
		scale = experiments.Full()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *epochs > 0 {
		scale.Epochs = *epochs
	}
	if *points > 0 {
		scale.MaxPerPlatform = *points
	}
	var level paragraph.Level
	switch strings.ToLower(*levelName) {
	case "raw":
		level = paragraph.LevelRawAST
	case "aug":
		level = paragraph.LevelAugmentedAST
	case "para":
		level = paragraph.LevelParaGraph
	default:
		return fmt.Errorf("unknown level %q", *levelName)
	}
	m, err := hw.ByName(*platform)
	if err != nil {
		return err
	}

	runner := experiments.NewRunner(scale)
	fmt.Fprintf(w, "training %s model on %s at scale %q\n", level, m.Name, scale.Name)
	tr, err := runner.Trained(m, level)
	if err != nil {
		return err
	}
	for epoch, v := range tr.Hist.ValRMSE {
		fmt.Fprintf(w, "epoch %3d: train loss %.5f, val RMSE (scaled) %.5f\n",
			epoch+1, tr.Hist.TrainLoss[epoch], v)
	}
	actual, pred := tr.ValActualPredMS()
	fmt.Fprintf(w, "\nvalidation (n=%d): RMSE %.4g ms, Norm-RMSE %.3e, Pearson(log) %.4f\n",
		len(actual), metrics.RMSE(pred, actual), metrics.NormRMSE(pred, actual),
		logPearson(pred, actual))

	if *saveDir != "" {
		dir, err := registry.Save(*saveDir, m, *saveName, level, tr.Model, tr.Prep, registry.TrainInfo{
			Scale:        scale.Name,
			Epochs:       scale.Epochs,
			TrainSamples: len(tr.Prep.Train),
			ValSamples:   len(tr.Prep.Val),
			FinalValRMSE: tr.Hist.FinalValRMSE(),
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint %s/%s saved to %s\n", m.Name, *saveName, dir)
	}

	if *withCompoff {
		res, err := runner.Figure8()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "COMPOFF comparison: mean rel err ParaGraph %.4f vs COMPOFF %.4f (ParaGraph wins %.1f%%)\n",
			res.ParaGraphMeanErr, res.CompoffMeanErr, 100*res.WinFraction)
	}
	return nil
}

// retrainFromFeedback is the -from-feedback mode: read the measured-runtime
// log, fine-tune the platform's stable checkpoint, save the candidate and
// report the rollout state the serving tier will pick up.
func retrainFromFeedback(w io.Writer, logDir, root, candName, platform string,
	splitPct float64, epochs, minRecords int) error {
	if root == "" {
		return fmt.Errorf("-from-feedback requires -save-dir (the registry root holding the stable checkpoint)")
	}
	m, err := hw.ByName(platform)
	if err != nil {
		return err
	}
	lg, err := feedback.Open(logDir)
	if err != nil {
		return err
	}
	recs, skipped, err := lg.Read(m.Name)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(w, "warning: skipped %d torn or malformed feedback lines\n", skipped)
	}
	fmt.Fprintf(w, "retraining %s incrementally on %d measured records from %s\n",
		m.Name, len(recs), logDir)
	res, err := registry.RetrainFromFeedback(root, m.Name, recs, registry.RetrainOptions{
		CandidateName: candName,
		SplitPct:      splitPct,
		Epochs:        epochs,
		Seed:          time.Now().UnixNano(),
		MinRecords:    minRecords,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "candidate %s/%s saved to %s (fine-tuned from stable %q)\n",
		m.Name, res.Candidate.Manifest.Name, res.Candidate.Dir, res.Stable)
	fmt.Fprintf(w, "train %d, val %d, unusable %d, final val RMSE (scaled) %.5f\n",
		res.TrainSamples, res.ValSamples, res.Skipped, res.FinalValRMSE)
	if st, err := registry.LoadRollout(root, m.Name); err == nil && st != nil {
		fmt.Fprintf(w, "rollout: stable %s, candidate %s at %.0f%% of unpinned traffic\n",
			st.Stable, st.Candidate, st.SplitPct)
	}
	return nil
}

func logPearson(pred, actual []float64) float64 {
	lp := make([]float64, len(pred))
	la := make([]float64, len(actual))
	for i := range pred {
		lp[i] = safeLog(pred[i])
		la[i] = safeLog(actual[i])
	}
	return metrics.Pearson(lp, la)
}

func safeLog(v float64) float64 {
	if v < 1e-9 {
		v = 1e-9
	}
	return math.Log(v)
}
