package main

import (
	"io"
	"math"
	"strings"
	"testing"

	"paragraph/internal/registry"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-scale", "huge"},
		{"-platform", "Cray-1"},
		{"-level", "mega"},
		{"-badflag"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args, io.Discard); err == nil {
				t.Errorf("run(%v) accepted", args)
			}
		})
	}
}

// TestRunTinyEndToEnd trains a micro model end to end through the CLI path
// and checks the reported metrics are present and sane.
func TestRunTinyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	var out strings.Builder
	err := run([]string{
		"-scale", "tiny",
		"-epochs", "1",
		"-points", "24",
		"-platform", "IBM POWER9 (CPU)",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"training", "epoch   1", "validation (n="} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestSaveDirWritesLoadableCheckpoint trains a micro model with -save-dir
// and verifies the checkpoint opens through the registry with the trained
// platform, name and level.
func TestSaveDirWritesLoadableCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{
		"-scale", "tiny",
		"-epochs", "1",
		"-points", "24",
		"-platform", "IBM POWER9 (CPU)",
		"-save-dir", dir,
		"-save-name", "smoke",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "checkpoint IBM POWER9 (CPU)/smoke saved to") {
		t.Errorf("output missing checkpoint line:\n%s", out.String())
	}
	reg, err := registry.Open(dir, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.Lookup("IBM POWER9 (CPU)", "smoke")
	if err != nil {
		t.Fatal(err)
	}
	if e.Manifest.Level != "ParaGraph" || e.Manifest.Train.Epochs != 1 {
		t.Errorf("manifest = %+v", e.Manifest)
	}
	if e.Manifest.Train.TrainSamples == 0 || e.Manifest.Train.ValSamples == 0 {
		t.Errorf("train info lacks sample counts: %+v", e.Manifest.Train)
	}
}

func TestSaveDirRejectsBadNameEarly(t *testing.T) {
	// The name is validated before training starts, so this is fast.
	err := run([]string{
		"-platform", "IBM POWER9 (CPU)",
		"-save-dir", t.TempDir(), "-save-name", "bad name",
	}, io.Discard)
	if err == nil {
		t.Error("invalid -save-name accepted")
	}
}

func TestSafeLogClamps(t *testing.T) {
	if v := safeLog(0); math.IsInf(v, -1) || math.IsNaN(v) {
		t.Errorf("safeLog(0) = %v", v)
	}
	if safeLog(math.E) != 1 {
		t.Errorf("safeLog(e) = %v", safeLog(math.E))
	}
}

func TestLogPearsonPerfectCorrelation(t *testing.T) {
	pred := []float64{10, 100, 1000, 10000}
	if r := logPearson(pred, pred); math.Abs(r-1) > 1e-12 {
		t.Errorf("logPearson(x, x) = %v, want 1", r)
	}
}
