package main

import (
	"io"
	"math"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-scale", "huge"},
		{"-platform", "Cray-1"},
		{"-level", "mega"},
		{"-badflag"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args, io.Discard); err == nil {
				t.Errorf("run(%v) accepted", args)
			}
		})
	}
}

// TestRunTinyEndToEnd trains a micro model end to end through the CLI path
// and checks the reported metrics are present and sane.
func TestRunTinyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	var out strings.Builder
	err := run([]string{
		"-scale", "tiny",
		"-epochs", "1",
		"-points", "24",
		"-platform", "IBM POWER9 (CPU)",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"training", "epoch   1", "validation (n="} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestSafeLogClamps(t *testing.T) {
	if v := safeLog(0); math.IsInf(v, -1) || math.IsNaN(v) {
		t.Errorf("safeLog(0) = %v", v)
	}
	if safeLog(math.E) != 1 {
		t.Errorf("safeLog(e) = %v", safeLog(math.E))
	}
}

func TestLogPearsonPerfectCorrelation(t *testing.T) {
	pred := []float64{10, 100, 1000, 10000}
	if r := logPearson(pred, pred); math.Abs(r-1) > 1e-12 {
		t.Errorf("logPearson(x, x) = %v, want 1", r)
	}
}
