package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paragraph/internal/dataset"
)

func TestParseScale(t *testing.T) {
	for _, name := range []string{"tiny", "small", "full", "TINY"} {
		s, err := parseScale(name)
		if err != nil {
			t.Errorf("parseScale(%q): %v", name, err)
		}
		if s.Name != strings.ToLower(name) {
			t.Errorf("parseScale(%q).Name = %q", name, s.Name)
		}
	}
	if _, err := parseScale("enormous"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunCollectsAndWritesPlatform(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-scale", "tiny", "-platform", "NVIDIA V100 (GPU)", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("wrote %d files, want 1", len(entries))
	}
	path := filepath.Join(dir, entries[0].Name())
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	points, err := dataset.LoadPoints(f)
	if err != nil {
		t.Fatalf("written dataset does not load: %v", err)
	}
	if len(points) == 0 {
		t.Error("empty dataset written")
	}
	for _, p := range points {
		if !p.Instance.Kind.IsGPU() {
			t.Errorf("CPU variant %v in V100 dataset", p.Instance.Kind)
		}
		if p.RuntimeUS <= 0 {
			t.Errorf("non-positive runtime %v", p.RuntimeUS)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-scale", "tiny", "-platform", "Cray XT5"}); err == nil {
		t.Error("unknown platform accepted")
	}
}
