// Command datagen runs the data-collection pipeline of Figure 3: it sweeps
// kernel variants, measures them on the simulated accelerators through the
// cluster substrate, prints the Table II statistics, and optionally writes
// the per-platform datasets as JSON.
//
// Usage:
//
//	datagen [-scale tiny|small|full] [-platform "NVIDIA V100 (GPU)"] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"paragraph/internal/dataset"
	"paragraph/internal/experiments"
	"paragraph/internal/hw"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	scaleName := fs.String("scale", "small", "dataset scale: tiny, small, or full")
	platform := fs.String("platform", "", "collect a single platform by name (default: all four)")
	outDir := fs.String("out", "", "directory to write per-platform JSON datasets")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	runner := experiments.NewRunner(scale)

	machines := hw.All()
	if *platform != "" {
		m, err := hw.ByName(*platform)
		if err != nil {
			return err
		}
		machines = []hw.Machine{m}
	}

	fmt.Printf("collecting at scale %q\n", scale.Name)
	for _, m := range machines {
		p, err := runner.Platform(m)
		if err != nil {
			return err
		}
		s := p.Stats()
		fmt.Printf("%-22s %8d points, runtime [%.3g - %.6g] ms, stddev %.4g ms, %d lost\n",
			m.Name, s.NumPoints, s.MinRuntimeMS, s.MaxRuntimeMS, s.StdDevMS, p.Failed)
		if *outDir != "" {
			if err := writePlatform(*outDir, p); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePlatform(dir string, p *dataset.Platform) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		}
		return '_'
	}, p.Machine.Name)
	path := filepath.Join(dir, name+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataset.SavePoints(f, p.Points); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

func parseScale(s string) (experiments.Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return experiments.Tiny(), nil
	case "small":
		return experiments.Small(), nil
	case "full":
		return experiments.Full(), nil
	}
	return experiments.Scale{}, fmt.Errorf("unknown scale %q", s)
}
