module paragraph

go 1.22
