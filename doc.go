// Package paragraph is a from-scratch Go reproduction of "ParaGraph:
// Weighted Graph Representation for Performance Optimization of HPC
// Kernels" (TehraniJamsaz et al., arXiv:2304.03487): a weighted, typed
// graph representation of OpenMP C kernels plus a relational graph
// attention network that predicts kernel runtime across CPUs and GPUs.
//
// The module root holds only the benchmark harness (bench_test.go), with
// one benchmark per table and figure of the paper's evaluation plus
// serving-path benchmarks. The implementation lives under internal/ — see
// DESIGN.md for the system inventory and README.md for the tour. Entry
// points are under cmd/ (paragraph, datagen, train, experiments, serve)
// and examples/.
//
// # Serving
//
// Because the cost model predicts variant runtimes statically, it can run
// as an always-on advisory service rather than a one-shot CLI. cmd/serve
// trains one model per requested platform at startup and exposes them over
// HTTP/JSON (internal/serve):
//
//	POST /v1/advise   rank a kernel's variant grid on one machine
//	POST /v1/predict  predict one variant's runtime
//	GET  /v1/healthz  liveness and served machines
//	GET  /v1/stats    cache/batcher/pool counters
//
// A request flows through three layers. A content-addressed sharded LRU
// cache first answers exact repeats (whole advise responses and single
// predictions) and memoizes the parse→BuildKernel→Encode pipeline behind
// them (keyed by hash of kernel source, level, threads and bindings). On a
// miss, a bounded worker pool admits the evaluation and the advisor fans
// the variant grid across goroutines (internal/advisor). Each variant's
// prediction finally lands on a micro-batching queue that coalesces
// concurrently-arriving samples into gnn.Model.PredictBatch forward passes.
// Rankings are bit-identical to the serial pipeline; only throughput and
// latency change. examples/serveclient shows the client side.
package paragraph
