// Package paragraph is a from-scratch Go reproduction of "ParaGraph:
// Weighted Graph Representation for Performance Optimization of HPC
// Kernels" (TehraniJamsaz et al., arXiv:2304.03487): a weighted, typed
// graph representation of OpenMP C kernels plus a relational graph
// attention network that predicts kernel runtime across CPUs and GPUs.
//
// The module root holds only the benchmark harness (bench_test.go), with
// one benchmark per table and figure of the paper's evaluation plus
// serving-path benchmarks. README.md is the tour; docs/ARCHITECTURE.md is
// the serving design doc (request lifecycle, sharding, replication), and
// docs/API.md and docs/OPERATIONS.md document the HTTP service. Entry
// points are under cmd/ (paragraph, datagen, train, experiments, serve)
// and examples/.
//
// # Package tree
//
//	internal/
//	  clex, cparse, cast     C subset lexer, parser, Clang-style AST
//	  omp                    OpenMP directive and clause model
//	  analysis               static analyses (constant folding, array sizes)
//	  graph                  typed, weighted multigraph structure
//	  paragraph              the paper's representation: AST → ParaGraph
//	  apps, progen           Table I benchmark suite; random kernel generator
//	  variants               OpenMP code transformations (the variant grid)
//	  hw, sim, cluster       machine models, analytical runtime simulator,
//	                         batch-scheduled measurement substrate
//	  dataset                Figure 3 data assembly, scalers, splits
//	  tensor, autodiff, nn   dense kernels, reverse-mode tapes, NN blocks
//	  gnn                    the RGAT cost model (train + batched inference)
//	  compoff, metrics       COMPOFF baseline; evaluation measures
//	  experiments            regenerates the paper's tables and figures
//	  advisor                variant generation → prediction → ranking
//	  registry               versioned model checkpoints (weights + manifest)
//	  serve                  the HTTP service: caches, batching, pool,
//	                         singleflight, snapshots, cluster routing
//	                         with replicated ownership
//	  shard                  consistent-hash ring (successor-list owners)
//	                         + peer forwarder (sync + async write-through)
//	                         backing serve's cluster mode
//	  obs                    metrics registry (Prometheus exposition) +
//	                         request tracing (spans, ring, slow log)
//
// # Serving
//
// Because the cost model predicts variant runtimes statically, it can run
// as an always-on advisory service rather than a one-shot CLI. cmd/serve
// exposes trained models over HTTP/JSON (internal/serve):
//
//	POST /v1/advise     rank a kernel's variant grid on one machine
//	POST /v1/predict    predict one variant's runtime
//	GET  /v1/healthz    liveness and served machines
//	GET  /v1/models     served model versions per platform
//	GET  /v1/stats      cache/batcher/pool/per-model/cluster counters
//	GET  /v1/ring       cluster membership, ownership, replication counters
//	GET  /v1/trace      recent request traces with per-stage spans
//	GET  /metrics       Prometheus text exposition of every serve series
//	POST /v1/replicate  peer-internal cache write-through (cluster mode)
//
// Models come from a checkpoint registry (internal/registry): `train
// -save-dir DIR` persists each trained model as weights plus a JSON
// manifest (architecture, platform, representation level, feature/target
// scalers, weights checksum, training stats) under
// DIR/<platform-slug>/<version>/, and `serve -model-dir DIR` boots from
// those checkpoints without retraining — several named versions per
// platform (levels, scales, A/B candidates), resolved through a "default"
// alias unless a request's optional "model" field picks one. The registry
// verifies every checkpoint at startup and keeps at most -model-max-loaded
// models resident, evicting least-recently-used weights and reloading them
// on demand. Without -model-dir, cmd/serve falls back to training at
// startup.
//
// A request flows through three layers. A content-addressed sharded LRU
// cache first answers exact repeats (whole advise responses and single
// predictions) and memoizes the parse→BuildKernel→Encode pipeline behind
// them (keyed by hash of kernel source, level, threads, bindings and model
// version). On a miss, identical concurrent requests are collapsed into a
// single evaluation (singleflight), a bounded worker pool admits it, and
// the advisor fans the variant grid across goroutines (internal/advisor).
// Each variant's prediction finally lands on a per-model micro-batching
// queue that coalesces concurrently-arriving samples into
// gnn.Model.PredictBatch forward passes. Rankings are bit-identical to the
// serial pipeline; only throughput and latency change.
//
// With -cache-file the advise-response cache is snapshotted periodically
// (-cache-snapshot) and on SIGTERM/SIGINT — shutdown stops the listener,
// drains in-flight batches, then flushes — so a restarted process answers
// previously-cached requests as hits immediately. examples/serveclient
// shows the client side end to end.
//
// # Cluster mode
//
// Because the cache keys are content-addressed, N serve processes started
// with -self and -peers form a consistent-hash sharded tier
// (internal/shard): each key is owned by its first -replication ring
// successors (default 2) — the primary first, replicas in failover order.
// Non-owners proxy misses to the primary (so its cache and singleflight
// absorb all traffic for its keys and aggregate cache capacity scales
// with N), the primary writes each evaluated entry through to the
// replicas (POST /v1/replicate: asynchronous, bounded, fire-and-forget),
// and when the primary is unreachable requests fail over to the replicas'
// warm copies before degrading to local serving — one peer death costs a
// forwarding detour, never recomputation. GET /v1/ring reports
// membership, exact ownership fractions, forward and replication
// counters, and per-key owner lists (?key=); adding or removing a peer
// changes only the owner lists it was on. docs/ARCHITECTURE.md documents
// the full design.
package paragraph
