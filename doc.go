// Package paragraph is a from-scratch Go reproduction of "ParaGraph:
// Weighted Graph Representation for Performance Optimization of HPC
// Kernels" (TehraniJamsaz et al., arXiv:2304.03487): a weighted, typed
// graph representation of OpenMP C kernels plus a relational graph
// attention network that predicts kernel runtime across CPUs and GPUs.
//
// The module root holds only the benchmark harness (bench_test.go), with
// one benchmark per table and figure of the paper's evaluation. The
// implementation lives under internal/ — see DESIGN.md for the system
// inventory and README.md for the tour. Entry points are under cmd/
// (paragraph, datagen, train, experiments) and examples/.
package paragraph
