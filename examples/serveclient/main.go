// Serveclient: talk to the advisor service over HTTP/JSON — the paper's
// static cost model as an always-on endpoint instead of a one-shot CLI.
//
// With no flags it is self-contained and walks the whole checkpoint
// lifecycle: it trains a micro model, saves it to a temporary registry
// under two version names ("default" and "exp"), boots the service from
// those checkpoints exactly as `serve -model-dir` would — no retraining —
// and then acts as a client: listing GET /v1/models, POSTing a kernel to
// /v1/advise three times (cold, cache-hit, and routed to the "exp" version
// with the request's "model" field), snapshotting the response cache to a
// file and restoring it into a second service instance to show a warm
// restart, and finally printing the /v1/stats counters.
//
// It closes with the multi-peer walkthrough: two service instances booted
// from the same checkpoints join a consistent-hash ring with replicated
// ownership (what `serve -self -peers -replication 2` does). Requests
// sent to one peer are forwarded to whichever peer primarily owns their
// cache key — each response's served_by names the answering peer — and
// every evaluated entry is written through to the key's replica. The demo
// then kills one peer and replays every request through the survivor: all
// of them come back as cache hits, showing that a peer death loses no
// cache warmth under RF=2.
//
// The registry layout mirrors what `train -save-dir DIR` writes and
// `serve -model-dir DIR -cache-file CACHE` consumes:
//
//	DIR/<platform-slug>/<version>/manifest.json   config, scalers, stats
//	DIR/<platform-slug>/<version>/weights.json    gnn.Model.Save output
//
// Point it at an already running `go run ./cmd/serve` with -url.
//
//	go run ./examples/serveclient
//	go run ./examples/serveclient -url http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"paragraph/internal/experiments"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
	"paragraph/internal/registry"
	"paragraph/internal/serve"
)

func main() {
	url := flag.String("url", "", "advisor service base URL (empty = start one in-process)")
	flag.Parse()

	base := *url
	local := base == ""
	var warmRestart, clusterDemo func(serve.AdviseRequest) error
	if local {
		var stop func()
		var err error
		base, stop, warmRestart, clusterDemo, err = startLocalService()
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}

	// What model versions is the service holding? (GET /v1/models)
	var models serve.ModelsResponse
	if err := getJSON(base+"/v1/models", &models); err != nil {
		log.Fatal(err)
	}
	fmt.Println("served models:")
	for _, m := range models.Models {
		def := " "
		if m.Default {
			def = "*"
		}
		fmt.Printf("  %s %s/%s (level %s, source %s, val RMSE %.3f)\n",
			def, m.Platform, m.Name, m.Level, m.Source, m.ValRMSE)
	}
	fmt.Println()

	req := serve.AdviseRequest{
		Kernel:   "matmul",
		Machine:  hw.V100().Name,
		Bindings: map[string]float64{"n": 512},
		Space: &serve.SpaceSpec{
			GPUTeams:   []int{16, 64, 128, 256},
			GPUThreads: []int{64, 128, 256},
		},
		Top: 5,
	}
	fmt.Printf("asking %s for the 5 best matmul variants on %s (n=512)\n\n", base, req.Machine)

	// Cold, then repeated (cache hit), then routed to a named version with
	// the request's "model" field.
	passes := []struct {
		label string
		model string
	}{{"cold", ""}, {"repeat", ""}, {"model=exp", "exp"}}
	for _, pass := range passes {
		req.Model = pass.model
		resp, err := advise(base, req)
		if err != nil {
			if pass.model != "" {
				// A remote service may not serve an "exp" version; skip.
				fmt.Printf("[%s] skipped: %v\n\n", pass.label, err)
				continue
			}
			log.Fatal(err)
		}
		fmt.Printf("[%s] model=%s cached=%v elapsed=%.2fms\n",
			pass.label, resp.Model, resp.Cached, resp.ElapsedMS)
		for i, r := range resp.Recommendations {
			teams := "-"
			if r.Teams > 0 {
				teams = fmt.Sprint(r.Teams)
			}
			fmt.Printf("  #%d %-18s teams=%-4s threads=%-4d predicted %8.1f µs\n",
				i+1, r.Variant, teams, r.Threads, r.PredictedUS)
		}
		fmt.Println()
	}

	var st serve.Stats
	if err := getJSON(base+"/v1/stats", &st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service stats: %d advise requests, %d response-cache hits, %d coalesced, encode cache %d/%d hit/miss\n",
		st.Requests.Advise, st.AdviseCacheHits, st.Coalesced, st.EncodeCache.Hits, st.EncodeCache.Misses)
	for _, m := range st.Models {
		fmt.Printf("  model %s/%s: %d advise, batcher %d samples in %d batches\n",
			m.Platform, m.Name, m.Advise, m.Batcher.Samples, m.Batcher.Batches)
	}

	if local {
		req.Model = ""
		if err := warmRestart(req); err != nil {
			log.Fatal(err)
		}
		if err := clusterDemo(req); err != nil {
			log.Fatal(err)
		}
	}
}

// startLocalService walks the checkpoint lifecycle in-process: train a
// micro V100 model, save it as two registry versions, and boot the service
// from the registry (train-free, as `serve -model-dir` does). The returned
// warmRestart runs the `-cache-file` kill/restart drill: snapshot the first
// instance's response cache, build a second instance from the same
// checkpoints, restore the snapshot into it, and replay a request to show
// it answers as a cache hit. clusterDemo runs the `serve -self -peers`
// walkthrough: a two-peer consistent-hash tier over the same checkpoints.
func startLocalService() (base string, stop func(), warmRestart, clusterDemo func(serve.AdviseRequest) error, err error) {
	scale := experiments.Tiny()
	scale.Epochs = 2
	scale.MaxPerPlatform = 60
	fmt.Println("training a micro V100 cost model...")
	tr, err := experiments.NewRunner(scale).Trained(hw.V100(), paragraph.LevelParaGraph)
	if err != nil {
		return "", nil, nil, nil, err
	}

	// Persist it under two version names — in production these would be
	// separate training runs (scales, levels, A/B candidates).
	dir, err := os.MkdirTemp("", "paragraph-registry-*")
	if err != nil {
		return "", nil, nil, nil, err
	}
	fail := func(err error) (string, func(), func(serve.AdviseRequest) error, func(serve.AdviseRequest) error, error) {
		os.RemoveAll(dir)
		return "", nil, nil, nil, err
	}
	info := registry.TrainInfo{
		Scale: scale.Name, Epochs: scale.Epochs,
		TrainSamples: len(tr.Prep.Train), ValSamples: len(tr.Prep.Val),
		FinalValRMSE: tr.Hist.FinalValRMSE(),
	}
	for _, name := range []string{"default", "exp"} {
		if _, err := registry.Save(dir, hw.V100(), name, paragraph.LevelParaGraph, tr.Model, tr.Prep, info); err != nil {
			return fail(err)
		}
	}
	fmt.Printf("saved checkpoints under %s, booting train-free from the registry...\n\n", dir)

	reg, err := registry.Open(dir, registry.Options{})
	if err != nil {
		return fail(err)
	}
	var backends []serve.Backend
	for _, e := range reg.Entries() {
		backends = append(backends, serve.Backend{
			Machine: e.Machine, Model: e, Prep: e.Prep,
			Name: e.Manifest.Name, Default: reg.Default(e),
			Info: &serve.ModelInfo{
				Level: e.Level, Source: "checkpoint",
				Hidden: e.Manifest.Config.Hidden, Layers: e.Manifest.Config.Layers,
				Params: e.Manifest.Params, Epochs: e.Manifest.Train.Epochs,
				ValRMSE: e.Manifest.Train.FinalValRMSE, CreatedAt: e.Manifest.CreatedAt,
			},
		})
	}
	srv, err := serve.NewServer(backends, serve.Options{})
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return fail(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop = func() {
		hs.Close()
		srv.Close()
		os.RemoveAll(dir)
	}

	// The kill/restart drill: flush instance one's cache (what cmd/serve
	// does on SIGTERM), boot instance two from the same checkpoints, restore
	// the snapshot, replay the request — it must answer as a cache hit.
	warmRestart = func(req serve.AdviseRequest) error {
		cacheFile := filepath.Join(dir, "cache.json")
		if err := srv.SaveCacheFile(cacheFile); err != nil {
			return err
		}
		srv2, err := serve.NewServer(backends, serve.Options{})
		if err != nil {
			return err
		}
		defer srv2.Close()
		n, err := srv2.LoadCacheFile(cacheFile)
		if err != nil {
			return err
		}
		ln2, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs2 := &http.Server{Handler: srv2.Handler()}
		go hs2.Serve(ln2)
		defer hs2.Close()
		resp, err := advise("http://"+ln2.Addr().String(), req)
		if err != nil {
			return err
		}
		fmt.Printf("\nwarm restart (`serve -cache-file`): second instance restored %d responses; replayed advise cached=%v\n",
			n, resp.Cached)
		return nil
	}

	// The multi-peer walkthrough: boot two instances from the same
	// checkpoints, join them on a consistent-hash ring with replicated
	// ownership (`serve -self -peers -replication 2`), and watch requests
	// route to whichever peer primarily owns their cache key — then kill a
	// peer and watch its cache warmth survive on the replica: the replayed
	// requests come back as cache hits, not recomputations.
	clusterDemo = func(req serve.AdviseRequest) error {
		fmt.Println("\ncluster mode (`serve -self -peers -replication 2`): two peers, one hash ring, every key on both")
		var urls [2]string
		var srvs [2]*serve.Server
		var listeners [2]*http.Server
		for i := range srvs {
			srv, err := serve.NewServer(backends, serve.Options{})
			if err != nil {
				return err
			}
			defer srv.Close()
			pln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			phs := &http.Server{Handler: srv.Handler()}
			go phs.Serve(pln)
			defer phs.Close()
			srvs[i] = srv
			listeners[i] = phs
			urls[i] = "http://" + pln.Addr().String()
		}
		for i := range srvs {
			if err := srvs[i].EnableCluster(serve.ClusterConfig{
				Self: urls[i], Peers: urls[:], Replication: 2,
			}); err != nil {
				return err
			}
		}
		fmt.Printf("peer A = %s\npeer B = %s\nall requests go to peer A:\n", urls[0], urls[1])
		forwarded := 0
		ns := []float64{256, 384, 512, 640, 768, 896}
		for _, n := range ns {
			req.Bindings = map[string]float64{"n": n}
			resp, err := advise(urls[0], req)
			if err != nil {
				return err
			}
			routed := "evaluated locally (peer A is the primary owner)"
			if resp.ServedBy != urls[0] {
				routed = "forwarded to the primary owner"
				forwarded++
			}
			fmt.Printf("  n=%-5.0f served_by=%s — %s\n", n, resp.ServedBy, routed)
		}

		// Every evaluation was written through to the key's replica
		// (fire-and-forget), so wait for peer A to have absorbed the
		// entries peer B evaluated.
		deadline := time.Now().Add(10 * time.Second)
		for {
			var ring serve.RingResponse
			if err := getJSON(urls[0]+"/v1/ring", &ring); err != nil {
				return err
			}
			if ring.Replication != nil && ring.Replication.ReplicatedIn >= uint64(forwarded) {
				fmt.Printf("\npeer A's replication counters: %d writes out, %d entries replicated in, %d replica hits\n",
					ring.Replication.Writes, ring.Replication.ReplicatedIn, ring.Replication.ReplicaHits)
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("write-throughs never landed on peer A")
			}
			time.Sleep(5 * time.Millisecond)
		}

		// Kill peer B outright and replay everything through peer A: with
		// RF=2 each answer comes from A's cache (its own entries plus B's
		// replicated ones) — one peer death loses no warmth.
		fmt.Println("killing peer B and replaying all requests through peer A:")
		listeners[1].Close()
		for _, n := range ns {
			req.Bindings = map[string]float64{"n": n}
			resp, err := advise(urls[0], req)
			if err != nil {
				return err
			}
			fmt.Printf("  n=%-5.0f served_by=%s cached=%v\n", n, resp.ServedBy, resp.Cached)
			if !resp.Cached {
				return fmt.Errorf("n=%.0f recomputed after peer death; replication failed", n)
			}
		}
		fmt.Println("every replayed request was a cache hit — peer B's warmth survived on its replica")
		return nil
	}
	return "http://" + ln.Addr().String(), stop, warmRestart, clusterDemo, nil
}

func advise(base string, req serve.AdviseRequest) (*serve.AdviseResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/advise", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("advise: %s: %s", resp.Status, e.Error)
	}
	var out serve.AdviseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
