// Serveclient: talk to the advisor service over HTTP/JSON — the paper's
// static cost model as an always-on endpoint instead of a one-shot CLI.
//
// With no flags it is self-contained: it trains a micro model, starts the
// service on a loopback port, then acts as a client — POSTing a kernel to
// /v1/advise twice (cold, then cache-hit) and printing the ranked
// recommendations plus the /v1/stats counters. Point it at an already
// running `go run ./cmd/serve` with -url.
//
//	go run ./examples/serveclient
//	go run ./examples/serveclient -url http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"paragraph/internal/experiments"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
	"paragraph/internal/serve"
)

func main() {
	url := flag.String("url", "", "advisor service base URL (empty = start one in-process)")
	flag.Parse()

	base := *url
	if base == "" {
		var stop func()
		var err error
		base, stop, err = startLocalService()
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}

	req := serve.AdviseRequest{
		Kernel:   "matmul",
		Machine:  hw.V100().Name,
		Bindings: map[string]float64{"n": 512},
		Space: &serve.SpaceSpec{
			GPUTeams:   []int{16, 64, 128, 256},
			GPUThreads: []int{64, 128, 256},
		},
		Top: 5,
	}
	fmt.Printf("asking %s for the 5 best matmul variants on %s (n=512)\n\n", base, req.Machine)

	for _, pass := range []string{"cold", "repeat"} {
		resp, err := advise(base, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] cached=%v elapsed=%.2fms\n", pass, resp.Cached, resp.ElapsedMS)
		for i, r := range resp.Recommendations {
			teams := "-"
			if r.Teams > 0 {
				teams = fmt.Sprint(r.Teams)
			}
			fmt.Printf("  #%d %-18s teams=%-4s threads=%-4d predicted %8.1f µs\n",
				i+1, r.Variant, teams, r.Threads, r.PredictedUS)
		}
		fmt.Println()
	}

	var st serve.Stats
	if err := getJSON(base+"/v1/stats", &st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service stats: %d advise requests, %d response-cache hits, encode cache %d/%d hit/miss\n",
		st.Requests.Advise, st.AdviseCacheHits, st.EncodeCache.Hits, st.EncodeCache.Misses)
}

// startLocalService trains a micro V100 model and serves it on a loopback
// port, returning the base URL and a shutdown function.
func startLocalService() (string, func(), error) {
	scale := experiments.Tiny()
	scale.Epochs = 2
	scale.MaxPerPlatform = 60
	fmt.Println("training a micro V100 cost model for the local service...")
	tr, err := experiments.NewRunner(scale).Trained(hw.V100(), paragraph.LevelParaGraph)
	if err != nil {
		return "", nil, err
	}
	srv, err := serve.NewServer([]serve.Backend{
		{Machine: hw.V100(), Model: tr.Model, Prep: tr.Prep},
	}, serve.Options{})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		hs.Close()
		srv.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func advise(base string, req serve.AdviseRequest) (*serve.AdviseResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/advise", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("advise: %s: %s", resp.Status, e.Error)
	}
	var out serve.AdviseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
