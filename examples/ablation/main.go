// Ablation: quantify what each layer of ParaGraph adds (paper §V-C, Table
// IV and Figure 7). Trains three models on the MI50 dataset — Raw AST,
// Augmented AST, full ParaGraph — and prints their validation RMSE and
// training curves.
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"paragraph/internal/experiments"
	"paragraph/internal/hw"
	"paragraph/internal/metrics"
	"paragraph/internal/paragraph"
)

func main() {
	runner := experiments.NewRunner(experiments.Tiny()) // Small() for fidelity
	machine := hw.MI50()

	levels := []paragraph.Level{
		paragraph.LevelRawAST,
		paragraph.LevelAugmentedAST,
		paragraph.LevelParaGraph,
	}
	fmt.Printf("ablation on %s\n\n", machine.Name)
	fmt.Printf("%-14s %12s %12s\n", "Level", "RMSE (ms)", "Norm-RMSE")
	for _, level := range levels {
		tr, err := runner.Trained(machine, level)
		if err != nil {
			log.Fatal(err)
		}
		actual, pred := tr.ValActualPredMS()
		fmt.Printf("%-14s %12.4g %12.2e\n",
			level, metrics.RMSE(pred, actual), metrics.NormRMSE(pred, actual))
	}

	fmt.Println("\nvalidation RMSE per epoch (Figure 7):")
	for _, level := range levels {
		tr, _ := runner.Trained(machine, level)
		fmt.Printf("%-14s:", level)
		for _, v := range tr.Hist.ValRMSE {
			fmt.Printf(" %.4f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape: ParaGraph converges below Augmented AST below Raw AST.")
}
