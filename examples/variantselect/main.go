// Variant selection: the paper's motivating use case (§I). Train the
// ParaGraph cost model on simulated V100 measurements, then — statically,
// without running anything — rank all matmul variants through the advisor
// (the OpenMP Advisor role of §II-D) and compare the model's pick against
// the simulator's ground-truth oracle.
//
//	go run ./examples/variantselect
package main

import (
	"fmt"
	"log"

	"paragraph/internal/advisor"
	"paragraph/internal/apps"
	"paragraph/internal/experiments"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
	"paragraph/internal/sim"
	"paragraph/internal/variants"
)

func main() {
	machine := hw.V100()
	scale := experiments.Tiny() // keep the example snappy; use Small() for fidelity
	runner := experiments.NewRunner(scale)

	fmt.Printf("training cost model on %s (scale %s)...\n", machine.Name, scale.Name)
	tr, err := runner.Trained(machine, paragraph.LevelParaGraph)
	if err != nil {
		log.Fatal(err)
	}

	adv := advisor.New(tr.Model, tr.Prep, machine)
	k, _ := apps.ByName("matmul")
	bindings := map[string]float64{"n": 512}
	space := advisor.SearchSpace{GPUTeams: []int{64, 256}, GPUThreads: []int{128}}

	recs, err := adv.Advise(k, bindings, space)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth from the simulator (what the paper measured on the real
	// cluster) for each recommendation.
	fmt.Printf("\n%-22s %8s %14s %14s\n", "variant", "teams", "predicted(ms)", "actual(ms)")
	bestActual := -1
	var bestActualMS float64
	for i, r := range recs {
		in := variants.Instance{
			Kernel: k, Kind: r.Kind, Teams: r.Teams, Threads: r.Threads,
			Bindings: bindings, Source: r.Source,
		}
		res, err := sim.Simulate(in, machine, sim.Config{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		actualMS := res.Milliseconds()
		if bestActual < 0 || actualMS < bestActualMS {
			bestActual, bestActualMS = i, actualMS
		}
		fmt.Printf("%-22s %8d %14.4g %14.4g\n", r.Kind, r.Teams, r.PredictedUS/1000, actualMS)
	}

	model := recs[0]
	oracle := recs[bestActual]
	fmt.Printf("\nmodel selects:  %s teams=%d\n", model.Kind, model.Teams)
	fmt.Printf("oracle selects: %s teams=%d\n", oracle.Kind, oracle.Teams)
}
