// Cross-platform prediction: the paper's headline advantage over COMPOFF is
// that ParaGraph models CPUs as well as GPUs (§V-D). This example trains
// one cost model per accelerator — IBM POWER9, NVIDIA V100, AMD EPYC 7401,
// AMD MI50 — and reports Table III's metrics side by side.
//
//	go run ./examples/crossplatform
package main

import (
	"fmt"
	"log"

	"paragraph/internal/experiments"
	"paragraph/internal/hw"
	"paragraph/internal/metrics"
	"paragraph/internal/paragraph"
)

func main() {
	runner := experiments.NewRunner(experiments.Tiny()) // Small() for fidelity

	fmt.Printf("%-22s %8s %12s %12s %10s\n", "Platform", "#val", "RMSE (ms)", "Norm-RMSE", "rel.err")
	for _, m := range hw.All() {
		tr, err := runner.Trained(m, paragraph.LevelParaGraph)
		if err != nil {
			log.Fatal(err)
		}
		actual, pred := tr.ValActualPredMS()
		rel := metrics.Mean(metrics.RelErrors(pred, actual))
		fmt.Printf("%-22s %8d %12.4g %12.2e %10.4f\n",
			m.Name, len(actual), metrics.RMSE(pred, actual), metrics.NormRMSE(pred, actual), rel)
	}
	fmt.Println("\nOne representation, four accelerators — no per-architecture features needed.")
}
