// Quickstart: parse an OpenMP kernel, build its ParaGraph, and inspect the
// representation — the paper's Figure 2 pipeline in a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"paragraph/internal/paragraph"
)

// kernel is the paper's running example shape: a parallel loop with an if
// inside, so the graph shows loop weights, halved branch weights, and the
// ForExec/ForNext/ConTrue/ConFalse control edges.
const kernel = `
void saxpy_thresholded(double *x, double *y, double a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < 1000; i++) {
        if (x[i] > 0.0) {
            y[i] = a * x[i] + y[i];
        } else {
            y[i] = 0.0;
        }
    }
}
`

func main() {
	// Build at all three levels to see what each adds (Table IV's ablation).
	for _, level := range []paragraph.Level{
		paragraph.LevelRawAST,
		paragraph.LevelAugmentedAST,
		paragraph.LevelParaGraph,
	} {
		g, err := paragraph.BuildKernel(kernel, paragraph.Options{
			Level:   level,
			Threads: 4, // paper: 100 iterations / 4 threads → weight 25
		})
		if err != nil {
			log.Fatal(err)
		}
		s := g.Summary()
		fmt.Printf("%-14s nodes=%-4d edges=%-4d total-child-weight=%-10g types=%v\n",
			level, s.Nodes, s.Edges, s.TotalWeight, sortedKeys(s.EdgesByType))
	}

	// Emit the full ParaGraph as DOT for visualization.
	g, err := paragraph.BuildKernel(kernel, paragraph.Options{
		Level:   paragraph.LevelParaGraph,
		Threads: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGraphviz DOT of the ParaGraph (pipe into `dot -Tsvg`):")
	if err := g.WriteDOT(os.Stdout, "saxpy_thresholded"); err != nil {
		log.Fatal(err)
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
