// Package paragraph_test is the benchmark harness: one benchmark per table and
// figure of the paper's evaluation (regenerating the artifact end to end at
// benchmark scale), plus micro-benchmarks for the pipeline stages (parse,
// build, encode, simulate, forward, train step).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The table/figure benchmarks print their regenerated artifact once (first
// iteration) so `bench_output.txt` doubles as an experiment record.
package paragraph_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"

	"paragraph/internal/apps"
	"paragraph/internal/cparse"
	"paragraph/internal/dataset"
	"paragraph/internal/experiments"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/nn"
	"paragraph/internal/paragraph"
	"paragraph/internal/registry"
	"paragraph/internal/serve"
	"paragraph/internal/sim"
	"paragraph/internal/tensor"
	"paragraph/internal/variants"
)

// benchRunner is shared across the table/figure benchmarks so dataset
// collection and model training are paid once and the artifacts stay
// consistent with each other (the same sharing cmd/experiments does).
var (
	benchRunner     *experiments.Runner
	benchRunnerOnce sync.Once
)

func runner() *experiments.Runner {
	benchRunnerOnce.Do(func() {
		benchRunner = experiments.NewRunner(experiments.Tiny())
	})
	return benchRunner
}

// printOnce emits the regenerated artifact on the first benchmark iteration.
func printOnce(b *testing.B, i int, render func(io.Writer) error) {
	if i != 0 {
		return
	}
	b.StopTimer()
	if err := render(os.Stdout); err != nil {
		b.Fatal(err)
	}
	b.StartTimer()
}

// --- one benchmark per paper table ---

// BenchmarkTable1AppInventory regenerates Table I (benchmark applications).
func BenchmarkTable1AppInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
		printOnce(b, i, func(w io.Writer) error { experiments.RenderTable1(w); return nil })
	}
}

// BenchmarkTable2DataCollection regenerates Table II (data points per
// accelerator): full sweep → cluster jobs → simulated runtimes → stats.
func BenchmarkTable2DataCollection(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
		printOnce(b, i, r.RenderTable2)
	}
}

// BenchmarkTable3RuntimePrediction regenerates Table III (RMSE and
// normalized RMSE of the trained ParaGraph model on all four platforms).
func BenchmarkTable3RuntimePrediction(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.NormRMSE <= 0 {
				b.Fatalf("degenerate NormRMSE for %s", row.Platform)
			}
		}
		printOnce(b, i, r.RenderTable3)
	}
}

// BenchmarkTable4Ablation regenerates Table IV (Raw AST vs Augmented AST vs
// ParaGraph RMSE per platform).
func BenchmarkTable4Ablation(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
		printOnce(b, i, r.RenderTable4)
	}
}

// --- one benchmark per paper figure ---

// BenchmarkFigure4ErrorBins regenerates Figure 4 (relative error per
// runtime bin, four platforms).
func BenchmarkFigure4ErrorBins(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		series, err := r.Figure4(10)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 4 {
			b.Fatalf("series = %d", len(series))
		}
		printOnce(b, i, r.RenderFigure4)
	}
}

// BenchmarkFigure5TrainingCurves regenerates Figure 5 (validation
// normalized RMSE per epoch for the four accelerators).
func BenchmarkFigure5TrainingCurves(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		series, err := r.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 4 {
			b.Fatalf("series = %d", len(series))
		}
		printOnce(b, i, r.RenderFigure5)
	}
}

// BenchmarkFigure6PerApplication regenerates Figure 6 (error rate per
// application).
func BenchmarkFigure6PerApplication(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		printOnce(b, i, r.RenderFigure6)
	}
}

// BenchmarkFigure7AblationCurves regenerates Figure 7 (per-epoch validation
// RMSE of the three representations on MI50).
func BenchmarkFigure7AblationCurves(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		series, err := r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 3 {
			b.Fatalf("series = %d", len(series))
		}
		printOnce(b, i, r.RenderFigure7)
	}
}

// BenchmarkFigure8VsCompoff regenerates Figure 8 (per-point error of
// ParaGraph vs COMPOFF on the V100).
func BenchmarkFigure8VsCompoff(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		if res.N == 0 {
			b.Fatal("no comparison points")
		}
		printOnce(b, i, r.RenderFigure8)
	}
}

// BenchmarkFigure9Scatter regenerates Figure 9 (predicted vs actual for
// both models, with log-space correlation).
func BenchmarkFigure9Scatter(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := r.Figure9(12)
		if err != nil {
			b.Fatal(err)
		}
		if res.ParaGraphPearson == 0 {
			b.Fatal("no correlation computed")
		}
		printOnce(b, i, r.RenderFigure9)
	}
}

// --- pipeline micro-benchmarks ---

var benchKernelSrc = func() string {
	k, _ := apps.ByName("matmul")
	src, err := variants.Generate(k, variants.GPUCollapseMem, 128, 128)
	if err != nil {
		panic(err)
	}
	return src
}()

// BenchmarkParseKernel measures the C frontend on a full kernel.
func BenchmarkParseKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := cparse.ParseFunction(benchKernelSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildParaGraph measures AST→ParaGraph construction.
func BenchmarkBuildParaGraph(b *testing.B) {
	bindings := map[string]float64{"n": 512}
	for i := 0; i < b.N; i++ {
		_, err := paragraph.BuildKernel(benchKernelSrc, paragraph.Options{
			Level:    paragraph.LevelParaGraph,
			Threads:  1024,
			Bindings: bindings,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeGraph measures graph→tensor encoding.
func BenchmarkEncodeGraph(b *testing.B) {
	g, err := paragraph.BuildKernel(benchKernelSrc, paragraph.Options{
		Level: paragraph.LevelParaGraph, Bindings: map[string]float64{"n": 512},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gnn.Encode(g, int(paragraph.NumEdgeTypes)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateKernel measures one simulated runtime measurement.
func BenchmarkSimulateKernel(b *testing.B) {
	k, _ := apps.ByName("matmul")
	in := variants.Instance{
		Kernel: k, Kind: variants.GPUCollapseMem, Teams: 128, Threads: 128,
		Bindings: map[string]float64{"n": 512}, Source: benchKernelSrc,
	}
	m := hw.V100()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(in, m, sim.Config{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSample builds one model-ready sample for forward/backward benches.
func benchSample(b *testing.B) *gnn.Sample {
	b.Helper()
	g, err := paragraph.BuildKernel(benchKernelSrc, paragraph.Options{
		Level: paragraph.LevelParaGraph, Threads: 1024,
		Bindings: map[string]float64{"n": 512},
	})
	if err != nil {
		b.Fatal(err)
	}
	eg, err := gnn.Encode(g, int(paragraph.NumEdgeTypes))
	if err != nil {
		b.Fatal(err)
	}
	eg.WScale = 10
	return &gnn.Sample{G: eg, Feats: [2]float64{0.5, 0.5}, Target: 0.4}
}

// BenchmarkGNNForward measures one inference pass of the RGAT model
// (engine path; steady state reports 0 allocs/op).
func BenchmarkGNNForward(b *testing.B) {
	s := benchSample(b)
	m := gnn.NewModel(gnn.Config{Seed: 1, Relations: int(paragraph.NumEdgeTypes)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(s)
	}
}

// BenchmarkPredictFastPath compares the tape path (the pre-engine Predict:
// a fresh inference tape and a fresh matrix per op) against the pooled
// fused engine, single-sample and across a 32-sample batch. The engine
// batch path additionally fans across cores; tape-batch mirrors the old
// serial PredictBatch loop.
func BenchmarkPredictFastPath(b *testing.B) {
	s := benchSample(b)
	m := gnn.NewModel(gnn.Config{Seed: 1, Relations: int(paragraph.NumEdgeTypes)})
	batch := make([]*gnn.Sample, 32)
	for i := range batch {
		clone := *s
		clone.Feats = [2]float64{float64(i) / 32, 0.5}
		batch[i] = &clone
	}
	b.Run("tape-single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.PredictTape(s)
		}
	})
	b.Run("engine-single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.Predict(s)
		}
	})
	b.Run("tape-batch-32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, bs := range batch {
				_ = m.PredictTape(bs)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*32), "ns/sample")
	})
	b.Run("engine-batch-32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.PredictBatch(batch)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*32), "ns/sample")
	})
	// The float32 inference-weights path (what registry-served models run by
	// default). Enabled last so the float64 sub-benchmarks above measure the
	// default engine.
	m.SetFloat32Inference(true)
	m.PrecomputeInference()
	b.Run("engine32-single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.Predict(s)
		}
	})
	b.Run("engine32-batch-32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.PredictBatch(batch)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*32), "ns/sample")
	})
}

// BenchmarkGNNTrainStep measures one forward+backward+accumulate pass.
func BenchmarkGNNTrainStep(b *testing.B) {
	s := benchSample(b)
	m := gnn.NewModel(gnn.Config{Seed: 1, Relations: int(paragraph.NumEdgeTypes)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := nn.NewForward()
		pred := m.Forward(f, s)
		loss := f.Tape.MSE(pred, tensor.Scalar(s.Target))
		f.Backward(loss)
		f.Accumulate(1)
		nn.ZeroGrads(m.Params())
	}
}

// --- design-choice ablation benchmarks ---

// BenchmarkAblationGraphLevels compares forward-pass cost across the three
// representation levels: the augmentation's edges cost compute; weights are
// free (same edge count).
func BenchmarkAblationGraphLevels(b *testing.B) {
	for _, level := range []paragraph.Level{
		paragraph.LevelRawAST, paragraph.LevelAugmentedAST, paragraph.LevelParaGraph,
	} {
		b.Run(level.String(), func(b *testing.B) {
			g, err := paragraph.BuildKernel(benchKernelSrc, paragraph.Options{
				Level: level, Threads: 128, Bindings: map[string]float64{"n": 512},
			})
			if err != nil {
				b.Fatal(err)
			}
			eg, err := gnn.Encode(g, int(paragraph.NumEdgeTypes))
			if err != nil {
				b.Fatal(err)
			}
			eg.WScale = 10
			s := &gnn.Sample{G: eg, Feats: [2]float64{0.5, 0.5}}
			m := gnn.NewModel(gnn.Config{Seed: 1, Relations: int(paragraph.NumEdgeTypes)})
			b.ReportMetric(float64(eg.NumEdges()), "edges")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.Predict(s)
			}
		})
	}
}

// BenchmarkAblationWeightPath compares the RGAT layer with and without the
// edge-weight message-scaling path (the design choice that lets ParaGraph's
// W reach the embedding even on tree-shaped relations).
func BenchmarkAblationWeightPath(b *testing.B) {
	s := benchSample(b)
	for _, disabled := range []bool{false, true} {
		name := "with-weights"
		if disabled {
			name = "without-weights"
		}
		b.Run(name, func(b *testing.B) {
			m := gnn.NewModel(gnn.Config{
				Seed: 1, Relations: int(paragraph.NumEdgeTypes),
				DisableEdgeWeights: disabled,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.Predict(s)
			}
		})
	}
}

// --- serving benchmarks (internal/serve) ---

// benchServePrep carries plausible training scalers without a training run.
func benchServePrep() *dataset.Prepared {
	return &dataset.Prepared{
		TargetScaler: dataset.Scaler{Min: math.Log(10), Max: math.Log(1e6)},
		TeamScaler:   dataset.Scaler{Min: 0, Max: 256},
		ThreadScaler: dataset.Scaler{Min: 1, Max: 256},
		WScale:       10,
	}
}

// benchServer builds an advisor service over a real (untrained) GNN for the
// V100 profile — the full serving stack minus model fitting.
func benchServer(b *testing.B) *serve.Server {
	b.Helper()
	model := gnn.NewModel(gnn.Config{Seed: 1, Hidden: 12, Layers: 2,
		Relations: int(paragraph.NumEdgeTypes)})
	s, err := serve.NewServer([]serve.Backend{
		{Machine: hw.V100(), Model: model, Prep: benchServePrep()},
	}, serve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

func benchAdvise(b *testing.B, s *serve.Server, n float64) *httptest.ResponseRecorder {
	b.Helper()
	body, err := json.Marshal(serve.AdviseRequest{
		Kernel:   "matmul",
		Machine:  "NVIDIA V100 (GPU)",
		Bindings: map[string]float64{"n": n},
		Space:    &serve.SpaceSpec{GPUTeams: []int{64, 128}, GPUThreads: []int{128}},
	})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/advise", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("advise: %d %s", rec.Code, rec.Body.String())
	}
	return rec
}

// BenchmarkServeAdviseCold measures a full advise request whose bindings
// never repeat: every iteration pays parse→build→encode→predict for the
// whole variant grid (the serial-CLI cost, now under the service).
func BenchmarkServeAdviseCold(b *testing.B) {
	s := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchAdvise(b, s, float64(64+i))
	}
}

// BenchmarkServeAdviseCached measures the same request answered from the
// content-addressed response cache — the steady-state cost of repeated
// identical traffic.
func BenchmarkServeAdviseCached(b *testing.B) {
	s := benchServer(b)
	benchAdvise(b, s, 256) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := benchAdvise(b, s, 256)
		if i == 0 {
			var resp serve.AdviseResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || !resp.Cached {
				b.Fatalf("warm request not cached: %s", rec.Body.String())
			}
		}
	}
}

// benchCluster boots a two-peer consistent-hash tier over loopback HTTP
// (identical model seeds, so the peers are interchangeable) and returns the
// peer base URLs. Single-owner (rf=1), so the forwarded benchmark below
// keeps paying its hop.
func benchCluster(b *testing.B) [2]string {
	return benchClusterRF(b, 1)
}

// benchClusterRF is benchCluster with a replication factor.
func benchClusterRF(b *testing.B, rf int) [2]string {
	b.Helper()
	var urls [2]string
	var srvs [2]*serve.Server
	for i := range srvs {
		srvs[i] = benchServer(b)
		hs := httptest.NewServer(srvs[i].Handler())
		b.Cleanup(hs.Close)
		urls[i] = hs.URL
	}
	for i := range srvs {
		if err := srvs[i].EnableCluster(serve.ClusterConfig{Self: urls[i], Peers: urls[:], Replication: rf}); err != nil {
			b.Fatal(err)
		}
	}
	return urls
}

// benchClusterAdvise posts one advise over real HTTP (cluster benchmarks
// must pay the wire, unlike the httptest.Recorder path).
func benchClusterAdvise(b *testing.B, base string, n float64) serve.AdviseResponse {
	b.Helper()
	body, err := json.Marshal(serve.AdviseRequest{
		Kernel:   "matmul",
		Machine:  "NVIDIA V100 (GPU)",
		Bindings: map[string]float64{"n": n},
		Space:    &serve.SpaceSpec{GPUTeams: []int{64, 128}, GPUThreads: []int{128}},
	})
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/advise", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.AdviseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("advise: %d", resp.StatusCode)
	}
	return out
}

// benchClusterFindKeys probes the tier for one binding owned by the first
// peer and one owned by the second, so the local and forwarded benchmarks
// measure a deliberately-routed request rather than a coin flip.
func benchClusterFindKeys(b *testing.B, urls [2]string) (localN, forwardedN float64) {
	b.Helper()
	localN, forwardedN = -1, -1
	for n := 64.0; n < 64+512; n++ {
		owner := benchClusterAdvise(b, urls[0], n).ServedBy
		switch owner {
		case urls[0]:
			if localN < 0 {
				localN = n
			}
		case urls[1]:
			if forwardedN < 0 {
				forwardedN = n
			}
		}
		if localN >= 0 && forwardedN >= 0 {
			return localN, forwardedN
		}
	}
	b.Fatal("no binding found for both owners in 512 probes")
	return 0, 0
}

// BenchmarkServeAdviseClusterLocal measures a warm advise answered by the
// peer that received it (ring owner == receiver): one HTTP round trip plus
// a response-cache hit. Baseline for the forwarded variant below.
func BenchmarkServeAdviseClusterLocal(b *testing.B) {
	urls := benchCluster(b)
	localN, _ := benchClusterFindKeys(b, urls)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchClusterAdvise(b, urls[0], localN)
	}
}

// BenchmarkServeAdviseClusterForwarded measures the same warm advise when
// the receiving peer does not own the key: receiver HTTP round trip, ring
// lookup, proxy hop to the owner, owner's cache hit. The delta against
// ClusterLocal is the price of cache coherence across the tier.
func BenchmarkServeAdviseClusterForwarded(b *testing.B) {
	urls := benchCluster(b)
	_, forwardedN := benchClusterFindKeys(b, urls)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := benchClusterAdvise(b, urls[0], forwardedN); i == 0 && out.ServedBy != urls[1] {
			b.Fatalf("probe said peer B owns n=%v but served_by=%s", forwardedN, out.ServedBy)
		}
	}
}

// BenchmarkServeAdviseClusterReplicated measures the warm advise of
// BenchmarkServeAdviseClusterForwarded on an RF=2 tier: the owner's
// write-through has landed the entry on the receiving replica, so the
// request that previously paid a proxy hop per call is now a local cache
// hit. The delta against ClusterForwarded is what replication buys warm
// traffic (and what failover costs nothing extra to keep).
func BenchmarkServeAdviseClusterReplicated(b *testing.B) {
	urls := benchClusterRF(b, 2)
	_, forwardedN := benchClusterFindKeys(b, urls)
	// The probe warmed the key on its primary (peer B); wait for the
	// asynchronous write-through to land on peer A, after which A answers
	// it locally.
	for i := 0; ; i++ {
		out := benchClusterAdvise(b, urls[0], forwardedN)
		if out.Cached && out.ServedBy == urls[0] {
			break
		}
		if i > 1000 {
			b.Fatalf("replica copy never landed on peer A (served_by=%s)", out.ServedBy)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchClusterAdvise(b, urls[0], forwardedN)
	}
}

// BenchmarkRegistryOpen measures checkpoint discovery + verified model
// loading (the cost of a train-free `serve -model-dir` boot per checkpoint).
func BenchmarkRegistryOpen(b *testing.B) {
	dir := b.TempDir()
	model := gnn.NewModel(gnn.Config{Seed: 1, Hidden: 12, Layers: 2,
		Relations: int(paragraph.NumEdgeTypes)})
	if _, err := registry.Save(dir, hw.V100(), "default", paragraph.LevelParaGraph,
		model, benchServePrep(), registry.TrainInfo{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := registry.Open(dir, registry.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSnapshotRestore measures one advise-cache persistence
// round-trip (what each periodic -cache-file snapshot and warm boot costs).
func BenchmarkCacheSnapshotRestore(b *testing.B) {
	src := benchServer(b)
	for i := 0; i < 16; i++ {
		benchAdvise(b, src, float64(64+i))
	}
	dst := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := src.SnapshotCache(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := dst.RestoreCache(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatch compares the batched forward path against
// per-sample prediction at several batch sizes; ns/sample is the number the
// micro-batching queue banks on.
func BenchmarkPredictBatch(b *testing.B) {
	m := gnn.NewModel(gnn.Config{Seed: 1, Relations: int(paragraph.NumEdgeTypes)})
	s := benchSample(b)
	for _, size := range []int{1, 8, 32} {
		batch := make([]*gnn.Sample, size)
		for i := range batch {
			clone := *s
			clone.Feats = [2]float64{float64(i) / float64(size), 0.5}
			batch[i] = &clone
		}
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = m.PredictBatch(batch)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
		})
	}
	b.Run("unbatched-32", func(b *testing.B) {
		b.ReportAllocs()
		clone := *s
		for i := 0; i < b.N; i++ {
			for j := 0; j < 32; j++ {
				_ = m.Predict(&clone)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*32), "ns/sample")
	})
}

// BenchmarkMatMulParallel measures the parallel dense kernel that dominates
// training time.
func BenchmarkMatMulParallel(b *testing.B) {
	a := tensor.New(256, 256)
	c := tensor.New(256, 256)
	a.Fill(1.5)
	c.Fill(0.5)
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMul(a, c)
	}
}

// BenchmarkVariantSweep measures full instance enumeration for the suite.
func BenchmarkVariantSweep(b *testing.B) {
	cfg := variants.SweepConfig{
		CPUThreads: []int{4, 8}, GPUTeams: []int{64}, GPUThreads: []int{128},
		MaxSizesPerKernel: 2,
	}
	for i := 0; i < b.N; i++ {
		ins, err := variants.SweepAll(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(ins) == 0 {
			b.Fatal("no instances")
		}
	}
}
