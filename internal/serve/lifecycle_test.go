package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"paragraph/internal/feedback"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
	"paragraph/internal/registry"
)

// newFeedbackServer serves the oracle backends with the feedback loop
// enabled but no registry root: measurements are accepted and windowed, but
// nothing retrains. Returns the feedback directory for log inspection.
func newFeedbackServer(t *testing.T) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := NewServer([]Backend{
		{Machine: hw.Power9(), Model: oracleModel{}, Prep: testPrep()},
		{Machine: hw.V100(), Model: oracleModel{}, Prep: testPrep()},
	}, Options{FeedbackDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, dir
}

// saveLCCheckpoint writes one real (tiny) GNN checkpoint into the registry.
func saveLCCheckpoint(t *testing.T, root, name string, seed int64) {
	t.Helper()
	model := gnn.NewModel(gnn.Config{
		Hidden: 8, FeatHidden: 8, Layers: 1,
		Relations: int(paragraph.NumEdgeTypes), Seed: seed,
	})
	if _, err := registry.Save(root, hw.V100(), name, paragraph.LevelParaGraph,
		model, testPrep(), registry.TrainInfo{Epochs: 1}); err != nil {
		t.Fatal(err)
	}
}

// registryBackends loads saved checkpoints back resident (float32 inference,
// like cmd/serve does) as serving backends; the first name is the default.
func registryBackends(t *testing.T, root string, names ...string) []Backend {
	t.Helper()
	var bs []Backend
	for i, name := range names {
		dir := filepath.Join(root, registry.PlatformSlug(hw.V100().Name), name)
		model, cp, err := registry.LoadCheckpoint(dir, true)
		if err != nil {
			t.Fatal(err)
		}
		level, err := registry.ParseLevel(cp.Manifest.Level)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, Backend{
			Machine: hw.V100(), Model: model, Prep: testPrep(), Name: name,
			Default: i == 0,
			Info:    &ModelInfo{Level: level, Source: "checkpoint"},
		})
	}
	return bs
}

func lcPredictReq(n float64) PredictRequest {
	return PredictRequest{
		Kernel: "matmul", Machine: hw.V100().Name,
		Variant: "gpu", Teams: 64, Threads: 128,
		Bindings: map[string]float64{"n": n},
	}
}

func lcPredict(t *testing.T, s *Server, n float64) PredictResponse {
	t.Helper()
	var pr PredictResponse
	if rec := do(t, s, http.MethodPost, "/v1/predict", lcPredictReq(n), &pr); rec.Code != http.StatusOK {
		t.Fatalf("predict(n=%g): %d %s", n, rec.Code, rec.Body.String())
	}
	if len(pr.Key) != 64 {
		t.Fatalf("predict response key = %q, want 64-char hash", pr.Key)
	}
	return pr
}

func postFeedback(t *testing.T, s *Server, freq FeedbackRequest) (FeedbackResponse, *httptest.ResponseRecorder) {
	t.Helper()
	var resp FeedbackResponse
	rec := do(t, s, http.MethodPost, "/v1/feedback", freq, &resp)
	return resp, rec
}

func postFeedbackRaw(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/feedback", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func lcStats(t *testing.T, s *Server) Stats {
	t.Helper()
	var st Stats
	if rec := do(t, s, http.MethodGet, "/v1/stats", nil, &st); rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	return st
}

func lcModels(t *testing.T, s *Server) map[string]ModelDesc {
	t.Helper()
	var mr ModelsResponse
	if rec := do(t, s, http.MethodGet, "/v1/models", nil, &mr); rec.Code != http.StatusOK {
		t.Fatalf("models: %d", rec.Code)
	}
	out := map[string]ModelDesc{}
	for _, d := range mr.Models {
		out[d.Name] = d
	}
	return out
}

func TestFeedbackPredictRoundTrip(t *testing.T) {
	s, dir := newFeedbackServer(t)

	var preds []PredictResponse
	for _, n := range []float64{256, 300, 400} {
		preds = append(preds, lcPredict(t, s, n))
	}
	for i, pr := range preds {
		resp, rec := postFeedback(t, s, FeedbackRequest{Key: pr.Key, MeasuredUS: pr.PredictedUS * 1.05})
		if rec.Code != http.StatusOK {
			t.Fatalf("feedback %d: %d %s", i, rec.Code, rec.Body.String())
		}
		if resp.Status != "accepted" || resp.Platform != hw.V100().Name ||
			resp.Model != "default" || resp.Kernel != "matmul" ||
			resp.Variant != "gpu" || resp.Teams != 64 || resp.Threads != 128 {
			t.Errorf("feedback %d echo = %+v", i, resp)
		}
		if resp.PredictedUS != pr.PredictedUS {
			t.Errorf("feedback %d predicted = %g, want the served %g", i, resp.PredictedUS, pr.PredictedUS)
		}
		if resp.Pairs != i+1 {
			t.Errorf("feedback %d pairs = %d, want %d", i, resp.Pairs, i+1)
		}
	}

	// The loop's view: /v1/stats counts and windows the measurements.
	st := lcStats(t, s)
	if st.Requests.Feedback != 3 {
		t.Errorf("feedback requests = %d, want 3", st.Requests.Feedback)
	}
	if st.Lifecycle == nil {
		t.Fatal("stats carry no lifecycle section")
	}
	if st.Lifecycle.FeedbackAccepted != 3 || st.Lifecycle.FeedbackRejected != 0 {
		t.Errorf("accepted/rejected = %d/%d, want 3/0",
			st.Lifecycle.FeedbackAccepted, st.Lifecycle.FeedbackRejected)
	}
	if len(st.Lifecycle.Rollouts) != 1 || st.Lifecycle.Rollouts[0].Platform != hw.V100().Name {
		t.Fatalf("rollouts = %+v", st.Lifecycle.Rollouts)
	}
	ro := st.Lifecycle.Rollouts[0]
	if ro.Stable != "default" || ro.Candidate != "" {
		t.Errorf("rollout = %+v, want stable default and no candidate", ro)
	}
	if len(ro.Models) != 1 || ro.Models[0].Pairs != 3 {
		t.Fatalf("windowed models = %+v", ro.Models)
	}
	// measured = 1.05×predicted is a perfect ranking.
	if ro.Models[0].RankCorr == nil || math.Abs(*ro.Models[0].RankCorr-1) > 1e-12 {
		t.Errorf("rank corr = %v, want 1", ro.Models[0].RankCorr)
	}

	// /v1/models carries the same quality view.
	d := lcModels(t, s)["default"]
	if d.FeedbackPairs != 3 || d.RankCorr == nil {
		t.Errorf("models annotation = %+v", d)
	}

	// The measurements are durable: a fresh reader sees all three records
	// with the rebuilt variant source a retrain needs.
	lg, err := feedback.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := lg.Read(hw.V100().Name)
	if err != nil || skipped != 0 || len(recs) != 3 {
		t.Fatalf("log read = %d recs, %d skipped, err %v", len(recs), skipped, err)
	}
	for _, rec := range recs {
		if rec.Source == "" || rec.Bindings["n"] == 0 || rec.MeasuredUS <= 0 {
			t.Errorf("log record incomplete: %+v", rec)
		}
	}

	// And /metrics exposes the outcome counter and quality gauges.
	out := scrapeMetrics(t, s)
	for _, want := range []string{
		`serve_feedback_total{outcome="accepted"} 3`,
		`serve_feedback_total{outcome="invalid"} 0`,
		`serve_rollout_stage{platform="NVIDIA V100 (GPU)"} 0`,
		`serve_model_feedback_pairs{platform="NVIDIA V100 (GPU)",model="default"} 3`,
		`serve_model_rank_corr{platform="NVIDIA V100 (GPU)",model="default"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestFeedbackValidation(t *testing.T) {
	s, _ := newFeedbackServer(t)
	goodKey := strings.Repeat("ab", 32)

	if rec := do(t, s, http.MethodGet, "/v1/feedback", nil, nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET feedback = %d, want 405", rec.Code)
	}

	invalid := []struct {
		name, body string
	}{
		{"malformed json", `{`},
		{"unknown field", `{"key":"` + goodKey + `","measured_us":1,"extra":2}`},
		{"trailing data", `{"key":"` + goodKey + `","measured_us":1}{}`},
		{"short key", `{"key":"abc","measured_us":1}`},
		{"uppercase key", `{"key":"` + strings.Repeat("AB", 32) + `","measured_us":1}`},
		{"zero runtime", `{"key":"` + goodKey + `","measured_us":0}`},
		{"negative runtime", `{"key":"` + goodKey + `","measured_us":-5}`},
		{"negative teams", `{"key":"` + goodKey + `","teams":-1,"measured_us":1}`},
		{"oversized body", `{"pad":"` + strings.Repeat("x", maxFeedbackBody) + `"}`},
	}
	for _, tc := range invalid {
		if rec := postFeedbackRaw(t, s, tc.body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", tc.name, rec.Code)
		}
	}

	// Well-formed but never served: rejected against the journal.
	if _, rec := postFeedback(t, s, FeedbackRequest{Key: goodKey, MeasuredUS: 10}); rec.Code != http.StatusNotFound {
		t.Errorf("unknown key = %d, want 404", rec.Code)
	}

	// An advise ranking journals a grid of points: feedback must name one
	// point unambiguously.
	var ar AdviseResponse
	if rec := do(t, s, http.MethodPost, "/v1/advise", adviseReq("NVIDIA V100 (GPU)"), &ar); rec.Code != http.StatusOK {
		t.Fatalf("advise: %d", rec.Code)
	}
	if len(ar.Key) != 64 {
		t.Fatalf("advise response key = %q", ar.Key)
	}
	if _, rec := postFeedback(t, s, FeedbackRequest{Key: ar.Key, MeasuredUS: 10}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("8-point ambiguity = %d, want 422", rec.Code)
	}
	if _, rec := postFeedback(t, s, FeedbackRequest{Key: ar.Key, Variant: "gpu", MeasuredUS: 10}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("2-point ambiguity = %d, want 422", rec.Code)
	}
	if _, rec := postFeedback(t, s, FeedbackRequest{Key: ar.Key, Variant: "gpu", Teams: 64, Threads: 999, MeasuredUS: 10}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unserved point = %d, want 422", rec.Code)
	}
	resp, rec := postFeedback(t, s, FeedbackRequest{Key: ar.Key, Variant: "gpu", Teams: 64, Threads: 128, MeasuredUS: 10})
	if rec.Code != http.StatusOK {
		t.Fatalf("exact point = %d %s", rec.Code, rec.Body.String())
	}
	if resp.Variant != "gpu" || resp.Teams != 64 || resp.Threads != 128 || resp.PredictedUS <= 0 {
		t.Errorf("matched point = %+v", resp)
	}

	st := lcStats(t, s)
	if st.Lifecycle.FeedbackAccepted != 1 || st.Lifecycle.FeedbackRejected != 13 {
		t.Errorf("accepted/rejected = %d/%d, want 1/13",
			st.Lifecycle.FeedbackAccepted, st.Lifecycle.FeedbackRejected)
	}
	out := scrapeMetrics(t, s)
	for _, want := range []string{
		`serve_feedback_total{outcome="accepted"} 1`,
		`serve_feedback_total{outcome="invalid"} 9`,
		`serve_feedback_total{outcome="unknown_key"} 1`,
		`serve_feedback_total{outcome="mismatch"} 3`,
		`serve_feedback_total{outcome="error"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Without -feedback-dir the loop is off: the endpoint refuses and
	// /v1/stats keeps its exact prior shape (no lifecycle section).
	off := newTestServer(t)
	if rec := do(t, off, http.MethodPost, "/v1/feedback", FeedbackRequest{Key: goodKey, MeasuredUS: 1}, nil); rec.Code != http.StatusConflict {
		t.Errorf("disabled feedback = %d, want 409", rec.Code)
	}
	if st := lcStats(t, off); st.Lifecycle != nil {
		t.Error("disabled lifecycle still appears in stats")
	}
}

// TestLifecyclePromoteE2E drives the whole loop against real checkpoints:
// serve → measured feedback → background incremental retrain → candidate
// serving its configured split → sustained non-inferiority → promotion →
// superseded checkpoint pruned under keep-none retention.
func TestLifecyclePromoteE2E(t *testing.T) {
	root := t.TempDir()
	saveLCCheckpoint(t, root, "v1", 7)
	s, err := NewServer(registryBackends(t, root, "v1"), Options{
		FeedbackDir:       t.TempDir(),
		RegistryRoot:      root,
		RolloutSplit:      50,
		RetrainAfter:      40,
		RetrainEpochs:     1,
		MinQualitySamples: 5,
		PromoteAfter:      3,
		RollbackAfter:     3,
		GCKeep:            -1, // keep nothing beyond stable/candidate
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Phase 1: enough measured traffic to trigger a retrain. Measurements
	// match predictions exactly, so the stable's rank correlation is 1.
	for i := 0; i < 40; i++ {
		pr := lcPredict(t, s, float64(100+25*i))
		if pr.Model != "v1" {
			t.Fatalf("pre-candidate predict served by %q, want v1", pr.Model)
		}
		if _, rec := postFeedback(t, s, FeedbackRequest{Key: pr.Key, MeasuredUS: pr.PredictedUS}); rec.Code != http.StatusOK {
			t.Fatalf("feedback %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}

	// The retrain runs in the background; wait for candidate adoption.
	var cand string
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if n := s.lifecycle.retrainErrors.Load(); n > 0 {
			t.Fatal("background retrain failed (see log)")
		}
		st := lcStats(t, s)
		if len(st.Lifecycle.Rollouts) == 1 && st.Lifecycle.Rollouts[0].Candidate != "" {
			cand = st.Lifecycle.Rollouts[0].Candidate
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if cand == "" {
		t.Fatal("no candidate adopted within the deadline")
	}
	if !strings.HasPrefix(cand, "fb-") {
		t.Errorf("candidate name = %q, want fb-* (feedback retrain)", cand)
	}

	descs := lcModels(t, s)
	if d := descs["v1"]; d.Role != "stable" || !d.Default {
		t.Errorf("v1 desc = %+v, want default stable", d)
	}
	if d, ok := descs[cand]; !ok || d.Role != "candidate" || d.RolloutSplit != 50 || d.Source != "feedback" {
		t.Errorf("candidate desc = %+v", d)
	}
	out := scrapeMetrics(t, s)
	for _, want := range []string{
		"serve_retrains_total 1",
		`serve_rollout_stage{platform="NVIDIA V100 (GPU)"} 1`,
		`serve_rollout_split{platform="NVIDIA V100 (GPU)"} 50`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Phase 2: measured traffic across the split. The candidate also
	// predicts its own measurements perfectly → non-inferior → promote.
	candServed, promoted := 0, false
	for i := 0; i < 35 && !promoted; i++ {
		pr := lcPredict(t, s, float64(5000+i))
		if pr.Model == cand {
			candServed++
		}
		if _, rec := postFeedback(t, s, FeedbackRequest{Key: pr.Key, MeasuredUS: pr.PredictedUS}); rec.Code != http.StatusOK {
			t.Fatalf("phase-2 feedback %d: %d %s", i, rec.Code, rec.Body.String())
		}
		promoted = s.lifecycle.promotions.Load() > 0
	}
	if !promoted {
		t.Fatalf("candidate never promoted (served %d of 35 measured requests)", candServed)
	}
	if candServed == 0 {
		t.Fatal("candidate promoted without serving any traffic")
	}

	// The promoted candidate is the new stable and serving default; the
	// superseded v1 is unregistered and its checkpoint pruned (keep-none).
	st := lcStats(t, s)
	ro := st.Lifecycle.Rollouts[0]
	if ro.Stable != cand || ro.Candidate != "" {
		t.Errorf("post-promote rollout = %+v", ro)
	}
	if st.Lifecycle.Promotions != 1 || st.Lifecycle.Rollbacks != 0 || st.Lifecycle.GCRemoved != 1 {
		t.Errorf("promotions/rollbacks/gc = %d/%d/%d, want 1/0/1",
			st.Lifecycle.Promotions, st.Lifecycle.Rollbacks, st.Lifecycle.GCRemoved)
	}
	descs = lcModels(t, s)
	if _, ok := descs["v1"]; ok {
		t.Error("superseded v1 still served after promotion under keep-none retention")
	}
	if d := descs[cand]; d.Role != "stable" || !d.Default {
		t.Errorf("promoted desc = %+v, want default stable", d)
	}
	if _, err := os.Stat(filepath.Join(root, registry.PlatformSlug(hw.V100().Name), "v1")); !os.IsNotExist(err) {
		t.Errorf("superseded checkpoint still on disk (err=%v)", err)
	}
	if pr := lcPredict(t, s, 99999); pr.Model != cand {
		t.Errorf("post-promote default predict served by %q, want %q", pr.Model, cand)
	}

	// The transition is durable: a restart would resume from the promoted
	// stable.
	rs, err := registry.LoadRollout(root, hw.V100().Name)
	if err != nil || rs == nil {
		t.Fatalf("load rollout: %+v, %v", rs, err)
	}
	if rs.Stable != cand || rs.Candidate != "" || rs.Promotions != 1 {
		t.Errorf("persisted rollout = %+v", rs)
	}
	if len(rs.History) == 0 || rs.History[len(rs.History)-1].Event != "promote" {
		t.Errorf("rollout history = %+v, want promote last", rs.History)
	}

	out = scrapeMetrics(t, s)
	for _, want := range []string{
		"serve_promotions_total 1",
		"serve_rollbacks_total 0",
		"serve_gc_removed_total 1",
		`serve_rollout_stage{platform="NVIDIA V100 (GPU)"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestLifecycleRollbackE2E poisons a candidate (measurements anti-correlate
// with its predictions) and asserts the automatic rollback: unpinned traffic
// snaps back to stable, the stable version never stops serving, and no
// request fails at any point.
func TestLifecycleRollbackE2E(t *testing.T) {
	root := t.TempDir()
	saveLCCheckpoint(t, root, "v1", 5)
	saveLCCheckpoint(t, root, "v2", 6)
	if err := registry.SaveRollout(root, &registry.RolloutState{
		Platform: hw.V100().Name, Stable: "v1", Candidate: "v2", SplitPct: 40,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(registryBackends(t, root, "v1", "v2"), Options{
		FeedbackDir:       t.TempDir(),
		RegistryRoot:      root,
		RetrainAfter:      1 << 30, // keep the retrain path out of this test
		MinQualitySamples: 5,
		PromoteAfter:      3,
		RollbackAfter:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	served := map[string]int{}
	rolledAt := -1
	for i := 0; i < 80; i++ {
		pr := lcPredict(t, s, float64(4000+i)) // lcPredict fails the test on any non-200
		served[pr.Model]++
		if rolledAt >= 0 && pr.Model != "v1" {
			t.Errorf("request %d served by %q after rollback, want v1", i, pr.Model)
		}
		meas := pr.PredictedUS
		if pr.Model == "v2" {
			meas = 1e9 / pr.PredictedUS // inverts the ranking: corr → -1
		}
		if _, rec := postFeedback(t, s, FeedbackRequest{Key: pr.Key, MeasuredUS: meas}); rec.Code != http.StatusOK {
			t.Fatalf("feedback %d: %d %s", i, rec.Code, rec.Body.String())
		}
		if rolledAt < 0 && s.lifecycle.rollbacks.Load() > 0 {
			rolledAt = i
		}
	}
	if rolledAt < 0 {
		t.Fatalf("poisoned candidate never rolled back (served %d requests)", served["v2"])
	}
	if served["v2"] < 5 {
		t.Fatalf("candidate served %d requests before rollback, want >= MinQualitySamples", served["v2"])
	}
	if served["v1"] == 0 {
		t.Fatal("stable served nothing during the canary")
	}

	st := lcStats(t, s)
	ro := st.Lifecycle.Rollouts[0]
	if ro.Stable != "v1" || ro.Candidate != "" || st.Lifecycle.Rollbacks != 1 || st.Lifecycle.Promotions != 0 {
		t.Errorf("post-rollback state = %+v (rollbacks %d)", ro, st.Lifecycle.Rollbacks)
	}
	// The rolled-back candidate stays registered (pinnable for postmortem)
	// and its checkpoint stays on disk — only promotion prunes.
	descs := lcModels(t, s)
	if d, ok := descs["v2"]; !ok || d.Role != "" {
		t.Errorf("rolled-back candidate desc = %+v (present %v)", d, ok)
	}
	if d := descs["v1"]; d.Role != "stable" || !d.Default {
		t.Errorf("stable desc = %+v", d)
	}
	if _, err := os.Stat(filepath.Join(root, registry.PlatformSlug(hw.V100().Name), "v2")); err != nil {
		t.Errorf("rolled-back checkpoint missing: %v", err)
	}
	var pinned PredictResponse
	req := lcPredictReq(4000)
	req.Model = "v2"
	if rec := do(t, s, http.MethodPost, "/v1/predict", req, &pinned); rec.Code != http.StatusOK || pinned.Model != "v2" {
		t.Errorf("pinned postmortem predict = %d model %q", rec.Code, pinned.Model)
	}

	rs, err := registry.LoadRollout(root, hw.V100().Name)
	if err != nil || rs == nil {
		t.Fatalf("load rollout: %+v, %v", rs, err)
	}
	if rs.Stable != "v1" || rs.Candidate != "" || rs.Rollbacks != 1 {
		t.Errorf("persisted rollout = %+v", rs)
	}
	if len(rs.History) == 0 || rs.History[len(rs.History)-1].Event != "rollback" {
		t.Errorf("rollout history = %+v, want rollback last", rs.History)
	}

	out := scrapeMetrics(t, s)
	for _, want := range []string{
		"serve_rollbacks_total 1",
		"serve_promotions_total 0",
		`serve_rollout_stage{platform="NVIDIA V100 (GPU)"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestLifecycleRoutingDeterminism restores the same persisted rollout state
// into two independent server processes and asserts they route every request
// to the same version: the A/B verdict is a pure function of (key, split),
// so restarts (and cluster peers) agree with no coordination.
func TestLifecycleRoutingDeterminism(t *testing.T) {
	root := t.TempDir()
	saveLCCheckpoint(t, root, "v1", 3)
	saveLCCheckpoint(t, root, "v2", 4)
	if err := registry.SaveRollout(root, &registry.RolloutState{
		Platform: hw.V100().Name, Stable: "v1", Candidate: "v2", SplitPct: 50,
	}); err != nil {
		t.Fatal(err)
	}
	opts := Options{
		FeedbackDir:  t.TempDir(),
		RegistryRoot: root,
		RetrainAfter: 1 << 30,
	}
	serveAll := func(s *Server) map[int]string {
		t.Helper()
		got := map[int]string{}
		for i := 0; i < 40; i++ {
			got[i] = lcPredict(t, s, float64(3000+i)).Model
		}
		return got
	}

	sA, err := NewServer(registryBackends(t, root, "v1", "v2"), opts)
	if err != nil {
		t.Fatal(err)
	}
	descs := lcModels(t, sA)
	if d := descs["v1"]; d.Role != "stable" || !d.Default || d.RolloutSplit != 50 {
		t.Errorf("restored v1 desc = %+v", d)
	}
	if d := descs["v2"]; d.Role != "candidate" || d.RolloutSplit != 50 {
		t.Errorf("restored v2 desc = %+v", d)
	}
	first := serveAll(sA)
	sA.Close()

	seen := map[string]int{}
	for _, m := range first {
		seen[m]++
	}
	if seen["v1"] == 0 || seen["v2"] == 0 {
		t.Fatalf("split routed nothing to one side: %v", seen)
	}

	sB, err := NewServer(registryBackends(t, root, "v1", "v2"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sB.Close)
	for i, m := range serveAll(sB) {
		if m != first[i] {
			t.Errorf("request %d routed to %q after restart, was %q", i, m, first[i])
		}
	}

	// Pinning overrides the split both ways.
	for _, want := range []string{"v1", "v2"} {
		req := lcPredictReq(3000)
		req.Model = want
		var pr PredictResponse
		if rec := do(t, sB, http.MethodPost, "/v1/predict", req, &pr); rec.Code != http.StatusOK || pr.Model != want {
			t.Errorf("pinned %s predict = %d model %q", want, rec.Code, pr.Model)
		}
	}
}

// FuzzFeedbackDecode asserts the strict decoder never accepts a submission
// violating its documented invariants (and never panics).
func FuzzFeedbackDecode(f *testing.F) {
	f.Add([]byte(`{"key":"` + strings.Repeat("ab", 32) + `","measured_us":12.5}`))
	f.Add([]byte(`{"key":"` + strings.Repeat("0", 64) + `","variant":"gpu","teams":64,"threads":128,"measured_us":1e3}`))
	f.Add([]byte(`{"key":"xyz","measured_us":-1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"key":"` + strings.Repeat("ab", 32) + `","measured_us":1,"extra":2}`))
	f.Add([]byte(`{"key":"` + strings.Repeat("ab", 32) + `","measured_us":1}{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeFeedback(data)
		if err != nil {
			return
		}
		if len(req.Key) != 64 {
			t.Fatalf("accepted key of length %d", len(req.Key))
		}
		for _, c := range req.Key {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("accepted non-hex key %q", req.Key)
			}
		}
		if !(req.MeasuredUS > 0) || math.IsInf(req.MeasuredUS, 0) {
			t.Fatalf("accepted measured_us %v", req.MeasuredUS)
		}
		if req.Teams < 0 || req.Threads < 0 {
			t.Fatalf("accepted negative grid point %d/%d", req.Teams, req.Threads)
		}
		// A decoded request must survive a decode round-trip: encoding it
		// back and decoding again yields the same value.
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		round, err := decodeFeedback(b)
		if err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		if round != req {
			t.Fatalf("round-trip drift: %+v vs %+v", round, req)
		}
	})
}
