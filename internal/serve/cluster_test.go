package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"paragraph/internal/advisor"
	"paragraph/internal/apps"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/obs"
	"paragraph/internal/shard"
)

// clusterPeer is one live peer: a Server with identical oracle backends on
// a real listener (forwarding needs real HTTP), in cluster mode.
type clusterPeer struct {
	srv  *Server
	http *httptest.Server
}

// startCluster boots n peers serving identical backends and enables
// cluster mode on each with the full member list (single-owner, rf=1).
func startCluster(t *testing.T, n int) []*clusterPeer {
	t.Helper()
	return startClusterRF(t, n, 1)
}

// startClusterRF is startCluster with a replication factor.
func startClusterRF(t *testing.T, n, rf int) []*clusterPeer {
	t.Helper()
	peers := make([]*clusterPeer, n)
	var urls []string
	for i := range peers {
		s := newTestServer(t)
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(hs.Close)
		peers[i] = &clusterPeer{srv: s, http: hs}
		urls = append(urls, hs.URL)
	}
	for i, p := range peers {
		if err := p.srv.EnableCluster(ClusterConfig{Self: urls[i], Peers: urls, Replication: rf}); err != nil {
			t.Fatal(err)
		}
	}
	return peers
}

// peerByURL maps a base URL back to its peer.
func peerByURL(t *testing.T, peers []*clusterPeer, url string) *clusterPeer {
	t.Helper()
	for _, p := range peers {
		if p.http.URL == url {
			return p
		}
	}
	t.Fatalf("no peer serves %s", url)
	return nil
}

// postAdviseErr sends one advise request over real HTTP and decodes the
// reply; safe to call from any goroutine.
func postAdviseErr(base string, req AdviseRequest) (AdviseResponse, error) {
	var out AdviseResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	resp, err := http.Post(base+"/v1/advise", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("advise at %s: %d", base, resp.StatusCode)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// postAdvise is postAdviseErr for the test goroutine: failures are fatal.
func postAdvise(t *testing.T, base string, req AdviseRequest) AdviseResponse {
	t.Helper()
	out, err := postAdviseErr(base, req)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func bindN(n float64) AdviseRequest {
	req := adviseReq("NVIDIA V100 (GPU)")
	req.Bindings = map[string]float64{"n": n}
	return req
}

// TestClusterForwardsToOwner is the tier's acceptance test: across a
// spread of requests sent to one peer, keys owned by the other peer are
// forwarded (nonzero forward counters, responses attributed to the owner),
// and sending the same request to either peer yields byte-identical
// rankings.
func TestClusterForwardsToOwner(t *testing.T) {
	peers := startCluster(t, 2)
	a, b := peers[0], peers[1]

	forwarded := 0
	for i := 0; i < 16; i++ {
		req := bindN(float64(64 + 16*i))
		fromA := postAdvise(t, a.http.URL, req)
		if fromA.ServedBy == "" {
			t.Fatal("cluster-mode response has no served_by")
		}
		if fromA.ServedBy == b.http.URL {
			forwarded++
		}
		// The same request through the other peer must carry the identical
		// ranking (and the same owner), no matter who received it.
		fromB := postAdvise(t, b.http.URL, req)
		aj, _ := json.Marshal(fromA.Recommendations)
		bj, _ := json.Marshal(fromB.Recommendations)
		if !bytes.Equal(aj, bj) {
			t.Fatalf("rankings differ across receiving peers for n=%v:\n%s\n%s",
				req.Bindings["n"], aj, bj)
		}
		if fromA.ServedBy != fromB.ServedBy {
			t.Errorf("n=%v attributed to %s via A but %s via B",
				req.Bindings["n"], fromA.ServedBy, fromB.ServedBy)
		}
	}
	if forwarded == 0 {
		t.Fatal("no request sent to peer A was owned by peer B; ring partitioning broken")
	}

	ringA := a.srv.Ring()
	if !ringA.Enabled || len(ringA.Members) != 2 {
		t.Fatalf("ring view = %+v", ringA)
	}
	var fwdToB uint64
	for _, m := range ringA.Members {
		if m.Peer == b.http.URL {
			fwdToB = m.Forwards
		}
	}
	if fwdToB == 0 {
		t.Error("peer A's ring stats show no forwards to peer B")
	}
	if b.srv.Ring().ForwardedIn == 0 {
		t.Error("peer B never observed a forwarded-in request")
	}
	// The tier is cache-coherent: replaying a request through the non-owner
	// is a cache hit on the owner.
	req := bindN(64)
	replay := postAdvise(t, a.http.URL, req)
	if !replay.Cached && replay.ServedBy != a.http.URL {
		t.Errorf("replayed forwarded request not served from the owner's cache: %+v", replay)
	}
}

// TestClusterDegradesWhenPeerDies: with the owner gone, the surviving peer
// answers everything itself — fallback counters move, requests never fail.
func TestClusterDegradesWhenPeerDies(t *testing.T) {
	peers := startCluster(t, 2)
	a, b := peers[0], peers[1]
	b.http.Close() // peer B vanishes (crash, deploy, partition)

	for i := 0; i < 16; i++ {
		resp := postAdvise(t, a.http.URL, bindN(float64(1000+16*i)))
		if resp.ServedBy != a.http.URL {
			t.Fatalf("with the only other peer dead, served_by = %q", resp.ServedBy)
		}
		if len(resp.Recommendations) == 0 {
			t.Fatal("degraded serving returned an empty ranking")
		}
	}
	ring := a.srv.Ring()
	if ring.LocalFallbacks == 0 {
		t.Error("peer A served everything without recording any local fallback")
	}
}

// TestClusterLoopGuard: a request already forwarded once is answered
// locally even by a non-owner, so disagreeing rings cannot cycle requests.
func TestClusterLoopGuard(t *testing.T) {
	peers := startCluster(t, 2)
	a, b := peers[0], peers[1]

	// Find a request owned by B, then send it to A pre-marked as forwarded:
	// A must serve it itself instead of bouncing it onward.
	for i := 0; i < 32; i++ {
		req := bindN(float64(5000 + 16*i))
		probe := postAdvise(t, b.http.URL, req)
		if probe.ServedBy != b.http.URL {
			continue // B forwarded it to A; want a B-owned key
		}
		body, _ := json.Marshal(req)
		hreq, _ := http.NewRequest(http.MethodPost, a.http.URL+"/v1/advise", bytes.NewReader(body))
		hreq.Header.Set(shard.ForwardedByHeader, "http://third-party:1")
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		var out AdviseResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.ServedBy != a.http.URL {
			t.Fatalf("pre-forwarded request was re-forwarded to %q", out.ServedBy)
		}
		if a.srv.Ring().ForwardedIn == 0 {
			t.Error("forwarded-in counter did not move")
		}
		return
	}
	t.Skip("no B-owned key found in 32 probes (astronomically unlikely)")
}

// TestClusterPredictForwards: /v1/predict routes over the same ring.
func TestClusterPredictForwards(t *testing.T) {
	peers := startCluster(t, 2)
	a, b := peers[0], peers[1]

	sawOther := false
	for i := 0; i < 16; i++ {
		req := PredictRequest{
			Kernel: "matmul", Machine: hw.V100().Name, Variant: "gpu_collapse",
			Teams: 64, Threads: 128, Bindings: map[string]float64{"n": float64(128 + i)},
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(a.http.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: %d", resp.StatusCode)
		}
		if out.ServedBy == b.http.URL {
			sawOther = true
		}
	}
	if !sawOther {
		t.Error("no predict request was forwarded to the owning peer")
	}
}

// adviseKeyFor replicates handleAdvise's cache-key derivation so tests can
// pick bindings with a known ring owner without sending probe traffic.
func adviseKeyFor(t *testing.T, req AdviseRequest) string {
	t.Helper()
	k, ok := apps.ByName(req.Kernel)
	if !ok {
		t.Fatalf("unknown kernel %q", req.Kernel)
	}
	space := req.Space.space()
	return Key("advise", req.Machine, "default", kernelKey(k), advisor.BindingsKey(req.Bindings),
		fmtInts(space.CPUThreads), fmtInts(space.GPUTeams), fmtInts(space.GPUThreads))
}

// findOwnedBinding returns an advise request whose cache key is owned by
// the wanted peer, found by key computation alone (no traffic, no cache
// warming).
func findOwnedBinding(t *testing.T, ring *shard.Ring, owner string, from float64) AdviseRequest {
	t.Helper()
	for n := from; n < from+512; n++ {
		req := bindN(n)
		if ring.Owner(adviseKeyFor(t, req)) == owner {
			return req
		}
	}
	t.Fatalf("no binding owned by %s in 512 candidates", owner)
	return AdviseRequest{}
}

// TestClusterForwardedInCountsCacheHits: a forwarded request answered from
// the owner's cache still counts in the owner's forwarded_in — the counter
// tracks forwarded arrivals, not just forwarded misses.
func TestClusterForwardedInCountsCacheHits(t *testing.T) {
	peers := startCluster(t, 2)
	a, b := peers[0], peers[1]
	req := findOwnedBinding(t, b.srv.cluster.ring(), b.http.URL, 9000)

	// Warm the owner directly (no forwarding involved)...
	if warm := postAdvise(t, b.http.URL, req); warm.ServedBy != b.http.URL {
		t.Fatalf("B-owned key served by %q", warm.ServedBy)
	}
	before := b.srv.Ring().ForwardedIn
	// ...then reach the warm key through the non-owner: the forward lands as
	// a cache hit on B and must still move B's forwarded_in.
	via := postAdvise(t, a.http.URL, req)
	if !via.Cached || via.ServedBy != b.http.URL {
		t.Fatalf("forwarded warm request = cached:%v served_by:%q, want owner cache hit",
			via.Cached, via.ServedBy)
	}
	if got := b.srv.Ring().ForwardedIn; got != before+1 {
		t.Errorf("owner forwarded_in = %d, want %d (cache-hit forwards must count)", got, before+1)
	}
}

// slowOracle is oracleModel with a per-batch delay, stretching the owner's
// evaluation window so concurrent misses at the non-owner demonstrably
// overlap one in-flight forward.
type slowOracle struct{ d time.Duration }

func (m slowOracle) PredictBatch(ss []*gnn.Sample) []float64 {
	time.Sleep(m.d)
	return oracleModel{}.PredictBatch(ss)
}

// TestClusterForwardCollapsesConcurrentMisses: identical concurrent misses
// at a non-owner share one proxied hop (forward-or-evaluate runs inside
// the singleflight), instead of each holding a connection to the owner.
func TestClusterForwardCollapsesConcurrentMisses(t *testing.T) {
	build := func(model BatchPredictor) *Server {
		s, err := NewServer([]Backend{{Machine: hw.V100(), Model: model, Prep: testPrep()}}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	a := build(oracleModel{})
	b := build(slowOracle{d: 30 * time.Millisecond})
	ha, hb := httptest.NewServer(a.Handler()), httptest.NewServer(b.Handler())
	t.Cleanup(ha.Close)
	t.Cleanup(hb.Close)
	urls := []string{ha.URL, hb.URL}
	for _, s := range []*Server{a, b} {
		self := urls[0]
		if s == b {
			self = urls[1]
		}
		if err := s.EnableCluster(ClusterConfig{Self: self, Peers: urls}); err != nil {
			t.Fatal(err)
		}
	}

	req := findOwnedBinding(t, a.cluster.ring(), hb.URL, 7000)
	const clients = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	var bodies [][]byte
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := postAdviseErr(ha.URL, req)
			if err != nil {
				t.Error(err)
				return
			}
			j, _ := json.Marshal(resp.Recommendations)
			mu.Lock()
			bodies = append(bodies, j)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("concurrent responses diverge:\n%s\n%s", bodies[0], bodies[i])
		}
	}
	var fwd uint64
	for _, m := range a.Ring().Members {
		if m.Peer == hb.URL {
			fwd = m.Forwards
		}
	}
	if fwd == 0 {
		t.Fatal("no forward reached the owner")
	}
	if fwd == clients {
		t.Errorf("all %d concurrent identical misses forwarded separately; singleflight did not collapse them", clients)
	}
	t.Logf("%d concurrent identical misses -> %d forwards to the owner", clients, fwd)
}

// waitReplicated polls until the peer has accepted at least want entries
// via /v1/replicate — write-through is asynchronous, so tests must wait
// for it to land before acting on it.
func waitReplicated(t *testing.T, p *clusterPeer, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if p.srv.cluster.replicatedIn.Load() >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer %s never accepted %d replicated entries (have %d)",
				p.http.URL, want, p.srv.cluster.replicatedIn.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterReplicationSurvivesPrimaryDeath is the RF=2 acceptance test:
// warming a key on its primary writes the entry through to the replica, so
// after the primary is killed the same request — sent to a peer that owns
// nothing of it — is answered from the replica's cache (a replica hit, not
// a recomputation). One peer death loses no warmth.
func TestClusterReplicationSurvivesPrimaryDeath(t *testing.T) {
	peers := startClusterRF(t, 3, 2)
	ring := peers[0].srv.cluster.ring()

	// Pick a request whose full owner list we know up front.
	req := findOwnedBinding(t, ring, peers[0].http.URL, 20000)
	owners := ring.Owners(adviseKeyFor(t, req), 2)
	primary := peerByURL(t, peers, owners[0])
	replica := peerByURL(t, peers, owners[1])
	var third *clusterPeer
	for _, p := range peers {
		if p != primary && p != replica {
			third = p
		}
	}

	// Warm the primary directly: it evaluates, caches, and write-throughs.
	warm := postAdvise(t, primary.http.URL, req)
	if warm.Cached || warm.ServedBy != primary.http.URL {
		t.Fatalf("warm request = cached:%v served_by:%q, want a primary evaluation",
			warm.Cached, warm.ServedBy)
	}
	waitReplicated(t, replica, 1)
	if pr := primary.srv.Ring().Replication; pr == nil || pr.Writes == 0 {
		t.Fatalf("primary recorded no replication writes: %+v", pr)
	}
	if rr := replica.srv.Ring().Replication; rr == nil || rr.ReplicatedIn == 0 {
		t.Fatalf("replica recorded no replicated-in entries: %+v", rr)
	}

	// The primary dies. A non-owner must now get the warmed answer through
	// the replica — cached, attributed to the replica, counted as a
	// replica hit, with no local_fallback (the tier never degraded).
	primary.http.Close()
	resp := postAdvise(t, third.http.URL, req)
	if !resp.Cached {
		t.Fatalf("post-death request recomputed (cached=false): %+v", resp)
	}
	if resp.ServedBy != replica.http.URL {
		t.Fatalf("post-death request served by %q, want the replica %q",
			resp.ServedBy, replica.http.URL)
	}
	tr := third.srv.Ring()
	if tr.Replication == nil || tr.Replication.ReplicaHits == 0 {
		t.Errorf("forwarding peer recorded no replica hit: %+v", tr.Replication)
	}
	if tr.LocalFallbacks != 0 {
		t.Errorf("replica failover counted %d local fallbacks, want 0", tr.LocalFallbacks)
	}

	// Asked directly, the replica serves its copy as a plain local hit.
	direct := postAdvise(t, replica.http.URL, req)
	if !direct.Cached || direct.ServedBy != replica.http.URL {
		t.Errorf("replica direct hit = cached:%v served_by:%q", direct.Cached, direct.ServedBy)
	}
}

// TestClusterReplicaMissForwardsToPrimary: a replica that misses still
// routes the request to the primary — the primary's cache and singleflight
// keep absorbing all of the key's traffic, and the write-through then
// lands the entry on the replica for failover.
func TestClusterReplicaMissForwardsToPrimary(t *testing.T) {
	peers := startClusterRF(t, 3, 2)
	ring := peers[0].srv.cluster.ring()

	req := findOwnedBinding(t, ring, peers[0].http.URL, 30000)
	owners := ring.Owners(adviseKeyFor(t, req), 2)
	primary := peerByURL(t, peers, owners[0])
	replica := peerByURL(t, peers, owners[1])

	resp := postAdvise(t, replica.http.URL, req)
	if resp.ServedBy != primary.http.URL {
		t.Fatalf("replica miss served by %q, want forwarded to the primary %q",
			resp.ServedBy, primary.http.URL)
	}
	// The primary's evaluation is written through to the replica, which
	// then answers the same request from its own cache.
	waitReplicated(t, replica, 1)
	direct := postAdvise(t, replica.http.URL, req)
	if !direct.Cached || direct.ServedBy != replica.http.URL {
		t.Errorf("replicated key on the replica = cached:%v served_by:%q, want a local hit",
			direct.Cached, direct.ServedBy)
	}
}

// TestClusterReplicationFactorClamp: rf above the cluster size is clamped
// to it, and rf=1 reports no replication section at all — the RF=1 wire
// format stays byte-identical to the pre-replication tier.
func TestClusterReplicationFactorClamp(t *testing.T) {
	clamped := startClusterRF(t, 2, 99)
	if rep := clamped[0].srv.Ring().Replication; rep == nil || rep.Factor != 2 {
		t.Errorf("rf=99 on 2 peers reports %+v, want factor clamped to 2", rep)
	}

	plain := startCluster(t, 2)
	ring := plain[0].srv.Ring()
	if ring.Replication != nil {
		t.Errorf("rf=1 tier reports a replication section: %+v", ring.Replication)
	}
	raw, err := json.Marshal(ring)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"replication", "key_owners"} {
		if bytes.Contains(raw, []byte(field)) {
			t.Errorf("rf=1 ring payload leaks %q: %s", field, raw)
		}
	}

	s := newTestServer(t)
	if err := s.EnableCluster(ClusterConfig{Self: "http://a:1", Peers: []string{"http://b:2"}, Replication: -1}); err == nil {
		t.Error("negative replication factor accepted")
	}
}

// TestReplicateEndpoint covers the write-through receiver: it rejects
// non-cluster servers and malformed bodies, and an accepted entry becomes
// a local cache hit.
func TestReplicateEndpoint(t *testing.T) {
	plain := newTestServer(t)
	var e errorResponse
	if rec := do(t, plain, http.MethodPost, "/v1/replicate", map[string]int{"version": 1}, &e); rec.Code != http.StatusConflict {
		t.Errorf("replicate outside cluster mode: %d %q", rec.Code, e.Error)
	}

	peers := startClusterRF(t, 2, 2)
	a := peers[0]

	// A valid single-entry snapshot from a ring member is accepted and
	// immediately servable.
	req := bindN(40000)
	key := adviseKeyFor(t, req)
	body, err := marshalReplicate(key, []advisor.Recommendation{{Threads: 8, PredictedUS: 123}})
	if err != nil {
		t.Fatal(err)
	}
	rec := doRaw(t, a.srv, http.MethodPost, "/v1/replicate", body, peers[1].http.URL)
	var accepted struct {
		Accepted int `json:"accepted"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &accepted); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || accepted.Accepted != 1 {
		t.Fatalf("replicate = %d %+v, want one accepted entry", rec.Code, accepted)
	}
	if rep := a.srv.Ring().Replication; rep == nil || rep.ReplicatedIn != 1 {
		t.Errorf("replicated_in after accepted write = %+v", rep)
	}
	if _, ok := a.srv.adviseCache.Get(key); !ok {
		t.Error("accepted replicate entry not in the cache")
	}

	// Writes without a ring-member identity, from a non-member, malformed,
	// or with the wrong method are rejected without side effects.
	if rec := doRaw(t, a.srv, http.MethodPost, "/v1/replicate", body, ""); rec.Code != http.StatusForbidden {
		t.Errorf("replicate without a member identity: %d", rec.Code)
	}
	if rec := doRaw(t, a.srv, http.MethodPost, "/v1/replicate", body, "http://outsider:1"); rec.Code != http.StatusForbidden {
		t.Errorf("replicate from a non-member: %d", rec.Code)
	}
	if rec := doRaw(t, a.srv, http.MethodPost, "/v1/replicate", []byte("{not json"), peers[1].http.URL); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed replicate body: %d", rec.Code)
	}
	if rec := doRaw(t, a.srv, http.MethodGet, "/v1/replicate", nil, peers[1].http.URL); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/replicate: %d", rec.Code)
	}
}

// TestWrongTypedCacheEntryIsAMiss: a cache entry whose value type does not
// match its key's endpoint — reachable via a confused or hostile
// /v1/replicate write, since keys are opaque hashes the handler cannot
// type-check — must be recomputed and overwritten, never panic the
// handler or be served.
func TestWrongTypedCacheEntryIsAMiss(t *testing.T) {
	peers := startClusterRF(t, 2, 2)
	a := peers[0]
	req := findOwnedBinding(t, a.srv.cluster.ring(), a.http.URL, 50000)
	key := adviseKeyFor(t, req)

	// Poison the advise key with a predict-typed value, as a bad peer
	// write would.
	a.srv.adviseCache.Add(key, float64(42))
	resp := postAdvise(t, a.http.URL, req)
	if resp.Cached {
		t.Fatal("wrong-typed entry served as a cache hit")
	}
	if len(resp.Recommendations) == 0 {
		t.Fatal("recomputation after a poisoned entry returned no ranking")
	}
	if v, ok := a.srv.adviseCache.Get(key); !ok {
		t.Fatal("recomputed entry not cached")
	} else if _, ok := v.([]advisor.Recommendation); !ok {
		t.Fatalf("poisoned entry not overwritten: %T", v)
	}
}

// doRaw sends raw bytes through the handler, optionally identifying the
// sender via the forwarded-by header ("" leaves it unset).
func doRaw(t *testing.T, s *Server, method, path string, body []byte, forwardedBy string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	if forwardedBy != "" {
		req.Header.Set(shard.ForwardedByHeader, forwardedBy)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// TestRingKeyOwnersQuery: GET /v1/ring?key=K reports the key's owner list
// (primary first) straight off the ring.
func TestRingKeyOwnersQuery(t *testing.T) {
	peers := startClusterRF(t, 3, 2)
	a := peers[0]
	var ring RingResponse
	if rec := do(t, a.srv, http.MethodGet, "/v1/ring?key=somekey", nil, &ring); rec.Code != http.StatusOK {
		t.Fatalf("/v1/ring?key=: %d", rec.Code)
	}
	if ring.KeyOwners == nil || ring.KeyOwners.Key != "somekey" || len(ring.KeyOwners.Owners) != 2 {
		t.Fatalf("key_owners = %+v, want 2 owners for somekey", ring.KeyOwners)
	}
	if want := a.srv.cluster.ring().Owners("somekey", 2); ring.KeyOwners.Owners[0] != want[0] || ring.KeyOwners.Owners[1] != want[1] {
		t.Errorf("key_owners = %v, ring says %v", ring.KeyOwners.Owners, want)
	}
}

// TestRingEndpointOutsideCluster: a plain server answers /v1/ring with
// enabled=false and keeps stats clusterless.
func TestRingEndpointOutsideCluster(t *testing.T) {
	s := newTestServer(t)
	var ring RingResponse
	if rec := do(t, s, http.MethodGet, "/v1/ring", nil, &ring); rec.Code != http.StatusOK {
		t.Fatalf("/v1/ring: %d", rec.Code)
	}
	if ring.Enabled || ring.Self != "" || len(ring.Members) != 0 {
		t.Errorf("clusterless ring view = %+v", ring)
	}
	var st Stats
	do(t, s, http.MethodGet, "/v1/stats", nil, &st)
	if st.Cluster != nil {
		t.Errorf("clusterless stats carry a cluster section: %+v", st.Cluster)
	}
	if st.Requests.Ring != 1 {
		t.Errorf("ring request counter = %d, want 1", st.Requests.Ring)
	}
}

// TestEnableClusterValidation covers config rejection and the self-healing
// member list (self absent from peers is added).
func TestEnableClusterValidation(t *testing.T) {
	bad := []ClusterConfig{
		{Self: "", Peers: []string{"http://a:1"}},
		{Self: "not-a-url", Peers: []string{"http://a:1"}},
		{Self: "ftp://a:1", Peers: []string{"http://b:2"}},
		{Self: "http://a:1", Peers: []string{"http://b:2/path"}},
	}
	for i, cfg := range bad {
		s := newTestServer(t)
		if err := s.EnableCluster(cfg); err == nil {
			t.Errorf("case %d: EnableCluster(%+v) accepted", i, cfg)
		}
	}

	s := newTestServer(t)
	if err := s.EnableCluster(ClusterConfig{
		Self:  "http://a:1",
		Peers: []string{"http://b:2/", "http://c:3"}, // self omitted, trailing slash
	}); err != nil {
		t.Fatal(err)
	}
	ring := s.Ring()
	if len(ring.Members) != 3 {
		t.Fatalf("members = %+v, want self added for 3 total", ring.Members)
	}
	sum := 0.0
	for _, m := range ring.Members {
		if m.Peer != "http://a:1" && m.Peer != "http://b:2" && m.Peer != "http://c:3" {
			t.Errorf("unexpected member %q", m.Peer)
		}
		sum += m.Ownership
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("ownership fractions sum to %v", sum)
	}
	if err := s.EnableCluster(ClusterConfig{Self: "http://a:1"}); err == nil {
		t.Error("second EnableCluster accepted")
	}
}

// TestClusterStatsSection: in cluster mode /v1/stats embeds the ring view.
func TestClusterStatsSection(t *testing.T) {
	peers := startCluster(t, 2)
	var st Stats
	resp, err := http.Get(peers[0].http.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || !st.Cluster.Enabled || st.Cluster.Self != peers[0].http.URL {
		t.Fatalf("stats cluster section = %+v", st.Cluster)
	}
	if len(st.Cluster.Members) != 2 {
		t.Errorf("stats cluster members = %+v", st.Cluster.Members)
	}
}

// postAdviseTraced is postAdvise with an explicit trace id on the request,
// for asserting cross-peer trace propagation.
func postAdviseTraced(t *testing.T, base string, req AdviseRequest, traceID string) AdviseResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/advise", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced advise at %s: %d", base, resp.StatusCode)
	}
	var out AdviseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// findTrace returns the retained trace with the given id AND endpoint —
// several endpoints (advise, replicate) finish traces under one
// distributed id, so an id-only lookup is ambiguous.
func findTrace(tr *obs.Tracer, id, endpoint string) (obs.FinishedTrace, bool) {
	for _, ft := range tr.Recent(0) {
		if ft.ID == id && ft.Endpoint == endpoint {
			return ft, true
		}
	}
	return obs.FinishedTrace{}, false
}

// TestClusterTracePropagation: one trace id, sent with the request to a
// non-owning peer, must stitch the whole distributed path together — the
// origin's trace records the forwarded hop, the owner finishes a trace
// under the same id for the evaluation, and the async replica
// write-through arrives at a third peer still carrying the id.
func TestClusterTracePropagation(t *testing.T) {
	peers := startClusterRF(t, 3, 2)
	origin := peers[0]

	var traceID string
	var resp AdviseResponse
	for i := 0; i < 64 && traceID == ""; i++ {
		id := fmt.Sprintf("prop-%d", i)
		out := postAdviseTraced(t, origin.http.URL, bindN(float64(64+16*i)), id)
		if out.ServedBy != "" && out.ServedBy != origin.http.URL {
			traceID, resp = id, out
		}
	}
	if traceID == "" {
		t.Fatal("no request sent to the origin peer was owned elsewhere; ring partitioning broken")
	}

	// Origin: an advise trace under the ingress id whose forward span names
	// the peer that answered. Find returns the newest trace per id, and at
	// RF=2 the origin may itself be the replica — the owner's async
	// write-through lands a /v1/replicate trace under the same id — so scan
	// for the advise trace instead of trusting recency.
	ft, ok := findTrace(origin.srv.tracer, traceID, "advise")
	if !ok {
		t.Fatalf("origin retained no advise trace %q", traceID)
	}
	if ft.Status != http.StatusOK {
		t.Fatalf("origin trace status = %d, want 200", ft.Status)
	}
	forwarded := false
	for _, sp := range ft.Spans {
		if sp.Name == "forward" {
			forwarded = true
			if sp.Detail != resp.ServedBy {
				t.Errorf("forward span names %q, but %q served the request", sp.Detail, resp.ServedBy)
			}
		}
	}
	if !forwarded {
		t.Errorf("origin trace has no forward span: %+v", ft.Spans)
	}

	// Owner: the same id covers the actual evaluation on the serving peer.
	owner := peerByURL(t, peers, resp.ServedBy)
	oft, ok := findTrace(owner.srv.tracer, traceID, "advise")
	if !ok {
		t.Fatalf("serving peer retained no advise trace %q", traceID)
	}
	names := map[string]bool{}
	for _, sp := range oft.Spans {
		names[sp.Name] = true
	}
	if !names["predict"] {
		t.Errorf("owner trace spans %v, want a predict span", names)
	}

	// Replica: the write-through is fire-and-forget, so poll for a
	// /v1/replicate trace under the same id somewhere in the cluster.
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, p := range peers {
			for _, rt := range p.srv.tracer.Recent(0) {
				if rt.ID == traceID && rt.Endpoint == "replicate" {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no peer recorded a /v1/replicate trace under the forwarded request's id")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
