package serve

import (
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paragraph/internal/gnn"
	"paragraph/internal/hw"
)

func TestFlightGroupSequential(t *testing.T) {
	var g flightGroup
	calls := 0
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do("k", func() (any, error) {
			calls++
			return calls, nil
		})
		if err != nil || shared {
			t.Fatalf("iteration %d: shared=%v err=%v", i, shared, err)
		}
		if v.(int) != i+1 {
			t.Fatalf("iteration %d: v=%v", i, v)
		}
	}
	if calls != 3 {
		t.Errorf("sequential calls collapsed: %d", calls)
	}
}

func TestFlightGroupCollapsesConcurrent(t *testing.T) {
	var g flightGroup
	const followers = 7
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32

	results := make(chan int, followers+1)
	go func() {
		v, _, _ := g.Do("k", func() (any, error) {
			close(started)
			<-release
			calls.Add(1)
			return 42, nil
		})
		results <- v.(int)
	}()
	<-started
	for i := 0; i < followers; i++ {
		go func() {
			v, shared, _ := g.Do("k", func() (any, error) {
				calls.Add(1)
				return 42, nil
			})
			if !shared {
				t.Error("follower was not shared")
			}
			results <- v.(int)
		}()
	}
	waitFor(t, func() bool { return g.waiting() == followers })
	close(release)
	for i := 0; i < followers+1; i++ {
		if v := <-results; v != 42 {
			t.Errorf("result = %d", v)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("evaluations = %d, want 1", n)
	}
}

func TestFlightGroupPropagatesErrors(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	errc := make(chan error, 2)
	go func() {
		_, _, err := g.Do("k", func() (any, error) {
			close(started)
			<-release
			return nil, boom
		})
		errc <- err
	}()
	<-started
	go func() {
		_, _, err := g.Do("k", func() (any, error) { return nil, nil })
		errc <- err
	}()
	waitFor(t, func() bool { return g.waiting() == 1 })
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errc; !errors.Is(err, boom) {
			t.Errorf("err = %v, want boom", err)
		}
	}
	// A failed flight is forgotten: the next call runs afresh.
	if _, shared, err := g.Do("k", func() (any, error) { return 1, nil }); shared || err != nil {
		t.Errorf("post-failure call: shared=%v err=%v", shared, err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// gateModel blocks every prediction until released, so tests can pile up
// concurrent identical requests behind one evaluation deterministically.
type gateModel struct {
	startOnce sync.Once
	started   chan struct{}
	release   chan struct{}
	samples   atomic.Int64
}

func newGateModel() *gateModel {
	return &gateModel{started: make(chan struct{}), release: make(chan struct{})}
}

func (m *gateModel) PredictBatch(ss []*gnn.Sample) []float64 {
	m.startOnce.Do(func() { close(m.started) })
	<-m.release
	m.samples.Add(int64(len(ss)))
	return oracleModel{}.PredictBatch(ss)
}

// TestAdviseSingleflightCollapse is the end-to-end collapse check: N
// concurrent identical cache misses perform exactly one grid evaluation,
// and the followers are marked coalesced (or cached, if they arrived after
// the leader landed).
func TestAdviseSingleflightCollapse(t *testing.T) {
	gm := newGateModel()
	s, err := NewServer([]Backend{
		{Machine: hw.V100(), Model: gm, Prep: testPrep()},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	const followers = 7
	req := adviseReq("NVIDIA V100 (GPU)")
	responses := make([]AdviseResponse, followers+1)
	codes := make([]int, followers+1)
	var wg sync.WaitGroup
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := do(t, s, http.MethodPost, "/v1/advise", req, &responses[i])
			codes[i] = rec.Code
		}()
	}
	launch(0)
	<-gm.started // the leader is mid-evaluation
	for i := 1; i <= followers; i++ {
		launch(i)
	}
	// Every follower must block on the leader's flight: the cache is still
	// empty and the key is identical.
	waitFor(t, func() bool { return s.flights.waiting() == followers })
	close(gm.release)
	wg.Wait()

	var leaders, coalesced, cached int
	for i, resp := range responses {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d failed: %d", i, codes[i])
		}
		switch {
		case resp.Coalesced:
			coalesced++
		case resp.Cached:
			cached++
		default:
			leaders++
		}
		if len(resp.Recommendations) != len(responses[0].Recommendations) {
			t.Errorf("request %d ranking length differs", i)
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d (coalesced %d, cached %d), want exactly 1", leaders, coalesced, cached)
	}
	if coalesced != followers {
		t.Errorf("coalesced = %d, want %d", coalesced, followers)
	}
	// The strong guarantee: one evaluation's worth of samples total (the
	// V100 matmul grid: 4 kinds × 2 teams × 1 thread count).
	if n := gm.samples.Load(); n != 8 {
		t.Errorf("model evaluated %d samples, want 8 (one grid)", n)
	}
	st := s.Stats()
	if st.Coalesced != uint64(followers) {
		t.Errorf("stats coalesced = %d, want %d", st.Coalesced, followers)
	}
}

// TestPredictSingleflightCollapse covers the single-prediction path.
func TestPredictSingleflightCollapse(t *testing.T) {
	gm := newGateModel()
	s, err := NewServer([]Backend{
		{Machine: hw.V100(), Model: gm, Prep: testPrep()},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	req := PredictRequest{
		Kernel: "matmul", Machine: "NVIDIA V100 (GPU)",
		Variant: "gpu", Teams: 64, Threads: 128,
		Bindings: map[string]float64{"n": 256},
	}
	const followers = 4
	var wg sync.WaitGroup
	resps := make([]PredictResponse, followers+1)
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rec := do(t, s, http.MethodPost, "/v1/predict", req, &resps[i]); rec.Code != http.StatusOK {
				t.Errorf("request %d: %d %s", i, rec.Code, rec.Body.String())
			}
		}()
	}
	launch(0)
	<-gm.started
	for i := 1; i <= followers; i++ {
		launch(i)
	}
	waitFor(t, func() bool { return s.flights.waiting() == followers })
	close(gm.release)
	wg.Wait()

	if n := gm.samples.Load(); n != 1 {
		t.Errorf("model evaluated %d samples, want 1", n)
	}
	for i := 1; i <= followers; i++ {
		if resps[i].PredictedUS != resps[0].PredictedUS {
			t.Errorf("request %d prediction %v differs from %v", i, resps[i].PredictedUS, resps[0].PredictedUS)
		}
	}
}
