package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"paragraph/internal/gnn"
)

// echoModel predicts each sample's first feature, optionally sleeping to
// widen the batching window under test.
type echoModel struct {
	delay time.Duration
	mu    sync.Mutex
	calls int
}

func (m *echoModel) PredictBatch(ss []*gnn.Sample) []float64 {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	m.mu.Lock()
	m.calls++
	m.mu.Unlock()
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = s.Feats[0]
	}
	return out
}

func (m *echoModel) callCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

func TestBatcherPredictRoundTrips(t *testing.T) {
	model := &echoModel{}
	b := NewBatcher(model, 4, time.Millisecond)
	defer b.Close()
	for i := 0; i < 5; i++ {
		want := float64(i) / 10
		if got := b.Predict(&gnn.Sample{Feats: [2]float64{want, 0}}); got != want {
			t.Errorf("Predict = %v, want %v", got, want)
		}
	}
	st := b.Stats()
	if st.Samples != 5 {
		t.Errorf("samples = %d, want 5", st.Samples)
	}
}

func TestBatcherCoalescesConcurrentRequests(t *testing.T) {
	// With a sluggish model and many concurrent callers, requests arriving
	// while a batch window is open must share forward passes: far fewer
	// model calls than samples.
	model := &echoModel{delay: 2 * time.Millisecond}
	b := NewBatcher(model, 8, 20*time.Millisecond)
	defer b.Close()

	const n = 64
	var wg sync.WaitGroup
	results := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = b.Predict(&gnn.Sample{Feats: [2]float64{float64(i), 0}})
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if got != float64(i) {
			t.Errorf("request %d: got %v", i, got)
		}
	}
	st := b.Stats()
	if st.Samples != n {
		t.Fatalf("samples = %d, want %d", st.Samples, n)
	}
	if calls := model.callCount(); calls >= n {
		t.Errorf("no coalescing: %d model calls for %d samples", calls, n)
	}
	if st.MaxBatch < 2 {
		t.Errorf("max batch %d, expected >= 2", st.MaxBatch)
	}
	if st.CoalescedShare == 0 {
		t.Error("no samples shared a batch")
	}
}

func TestBatcherRespectsMaxBatch(t *testing.T) {
	model := &echoModel{delay: time.Millisecond}
	const maxBatch = 4
	b := NewBatcher(model, maxBatch, 50*time.Millisecond)
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Predict(&gnn.Sample{Feats: [2]float64{float64(i), 0}})
		}(i)
	}
	wg.Wait()
	if st := b.Stats(); st.MaxBatch > maxBatch {
		t.Errorf("batch of %d exceeds cap %d", st.MaxBatch, maxBatch)
	}
}

func TestBatcherCloseDrains(t *testing.T) {
	model := &echoModel{delay: time.Millisecond}
	b := NewBatcher(model, 8, 5*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Predict(&gnn.Sample{Feats: [2]float64{float64(i), 0}})
		}(i)
	}
	wg.Wait() // all results delivered
	b.Close() // must not hang
	b.Close() // idempotent
	if st := b.Stats(); st.Samples != 8 {
		t.Errorf("samples = %d, want 8", st.Samples)
	}
}

func TestBatcherPredictAfterCloseDegradesGracefully(t *testing.T) {
	// A handler racing shutdown must still get a correct answer — directly
	// evaluated, not a panic or a hang.
	model := &echoModel{}
	b := NewBatcher(model, 4, time.Millisecond)
	b.Close()
	if got := b.Predict(&gnn.Sample{Feats: [2]float64{0.75, 0}}); got != 0.75 {
		t.Errorf("post-Close Predict = %v, want 0.75", got)
	}
	if st := b.Stats(); st.Samples != 0 {
		t.Errorf("direct evaluation counted as batched: %+v", st)
	}
}

func TestBatcherLatencyQuantiles(t *testing.T) {
	model := &echoModel{delay: time.Millisecond}
	b := NewBatcher(model, 4, time.Millisecond)
	defer b.Close()
	for i := 0; i < 20; i++ {
		b.Predict(&gnn.Sample{Feats: [2]float64{0.5, 0}})
	}
	lat := b.Stats().Latency
	if lat.Count != 20 {
		t.Errorf("latency count = %d, want 20", lat.Count)
	}
	// The model sleeps 1ms per batch, so every observed latency is >= 1ms
	// and the quantiles must reflect that (and be ordered).
	if lat.P50MS < 0.5 {
		t.Errorf("p50 = %vms, implausibly below the model's 1ms floor", lat.P50MS)
	}
	if lat.P99MS < lat.P50MS {
		t.Errorf("p99 %v < p50 %v", lat.P99MS, lat.P50MS)
	}
}

func TestBatcherEmptyLatencyStats(t *testing.T) {
	b := NewBatcher(&echoModel{}, 4, time.Millisecond)
	defer b.Close()
	if lat := b.Stats().Latency; lat.Count != 0 || lat.P50MS != 0 || lat.P99MS != 0 {
		t.Errorf("latency stats before any prediction = %+v", lat)
	}
}

// blockingModel parks every PredictBatch call until released, counting the
// samples it was actually asked to evaluate.
type blockingModel struct {
	release chan struct{}
	mu      sync.Mutex
	seen    int
}

func (m *blockingModel) PredictBatch(ss []*gnn.Sample) []float64 {
	<-m.release
	m.mu.Lock()
	m.seen += len(ss)
	m.mu.Unlock()
	return make([]float64, len(ss))
}

func (m *blockingModel) seenSamples() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seen
}

func TestBatcherPredictCtxAlreadyCancelled(t *testing.T) {
	// Regression: Predict used to block until its batch evaluated even when
	// the caller's context was already dead. Now it must return immediately,
	// without ever touching the model.
	model := &echoModel{}
	b := NewBatcher(model, 4, time.Hour) // window would block for an hour
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := b.PredictCtx(ctx, &gnn.Sample{Feats: [2]float64{1, 0}})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PredictCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PredictCtx blocked on a cancelled context")
	}
	if model.callCount() != 0 {
		t.Error("cancelled request reached the model")
	}
	if c := b.Stats().Cancelled; c != 1 {
		t.Errorf("cancelled counter = %d, want 1", c)
	}
}

func TestBatcherCancelDuringQueueWaitAbortsWork(t *testing.T) {
	// A request sitting in an open batch window whose caller gives up must
	// (a) unblock the caller immediately and (b) be dropped from the batch
	// before the model runs — cancellation aborts queued work, not just the
	// wait for it.
	model := &blockingModel{release: make(chan struct{})}
	// maxBatch 2: the live request below fills the batch and forces the
	// flush; the window alone would hold it open past the test's life.
	b := NewBatcher(model, 2, 30*time.Minute)
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.PredictCtx(ctx, &gnn.Sample{Feats: [2]float64{1, 0}})
		errc <- err
	}()
	// Wait for the request to reach the collector's open batch.
	deadline := time.Now().Add(5 * time.Second)
	for b.queued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PredictCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PredictCtx still blocked after cancel: ctx not honored during queue wait")
	}
	// A live request fills the batch, forcing the flush; the cancelled one
	// must be filtered out of it before the model runs.
	live := make(chan float64, 1)
	go func() {
		v, err := b.PredictCtx(context.Background(), &gnn.Sample{Feats: [2]float64{2, 0}})
		if err != nil {
			t.Errorf("live request failed: %v", err)
		}
		live <- v
	}()
	close(model.release) // let evaluations proceed from here on
	select {
	case <-live:
	case <-time.After(10 * time.Second):
		t.Fatal("live request starved after a cancellation in the same window")
	}
	if n := model.seenSamples(); n != 1 {
		t.Errorf("model evaluated %d samples, want only the live one", n)
	}
}

func TestBatcherCancelLeaksNoGoroutines(t *testing.T) {
	// After a storm of cancelled predictions drains, no collector-side or
	// caller-side goroutines may linger (run under -race in CI).
	model := &echoModel{delay: time.Millisecond}
	b := NewBatcher(model, 4, time.Millisecond)

	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
			defer cancel()
			_, _ = b.PredictCtx(ctx, &gnn.Sample{Feats: [2]float64{float64(i), 0}})
		}(i)
	}
	wg.Wait()
	b.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+2 {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines: %d before, %d after cancellation storm\n%s",
			before, now, buf[:runtime.Stack(buf, true)])
	}
	if b.queued.Load() != 0 {
		t.Errorf("queued gauge = %d after drain, want 0", b.queued.Load())
	}
}
