package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"paragraph/internal/admit"
	"paragraph/internal/advisor"
	"paragraph/internal/apps"
	"paragraph/internal/dataset"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/obs"
	"paragraph/internal/paragraph"
	"paragraph/internal/variants"
)

// Backend is one servable model: a machine profile plus a cost model for
// it and the Prepared dataset (or manifest scalers) carrying that
// training's normalization. A platform may register several Backends under
// distinct Names — training scales, representation levels, A/B candidates —
// and requests pick one with the "model" field; one of them is the
// platform's default alias.
type Backend struct {
	Machine hw.Machine
	Model   BatchPredictor
	Prep    *dataset.Prepared

	// Name is the model's version name within its platform ("" = "default").
	Name string
	// Default forces this backend to be the platform's default alias. At
	// most one backend per platform may set it; with none set, a backend
	// named "default" wins, else the lexicographically first name.
	Default bool
	// Info describes the model for /v1/models and selects the advisor's
	// representation level. nil means a freshly trained LevelParaGraph model.
	Info *ModelInfo
}

// ModelInfo is per-model metadata surfaced through /v1/models.
type ModelInfo struct {
	Level     paragraph.Level
	Source    string // "trained", "checkpoint", ...
	Hidden    int
	Layers    int
	Params    int // scalar parameter count
	Epochs    int
	ValRMSE   float64 // final validation RMSE (scaled)
	CreatedAt time.Time
}

// Options tunes the service layers. Zero values pick sensible defaults.
type Options struct {
	AdviseCacheSize int           // whole-response + prediction cache entries (default 512)
	EncodeCacheSize int           // encoded-graph cache entries (default 2048)
	MaxBatch        int           // batcher: max samples per forward pass (default 16)
	BatchWait       time.Duration // batcher: batch window (default 2ms)
	PoolSize        int           // max advise/predict evaluations in flight (default GOMAXPROCS)
	GridWorkers     int           // per-advise grid fan-out (default GOMAXPROCS)

	// QueueLimit bounds the total requests waiting for an evaluation slot
	// across all clients; arrivals beyond it are shed with 503 queue_full
	// (default 1024).
	QueueLimit int
	// QueuePerClient bounds one client's waiting requests; beyond it that
	// client sheds 503 lane_full while others keep queueing (default 256).
	QueuePerClient int
	// JobLimit bounds the async job store; submissions beyond it are shed
	// with 503 jobs_full (default 256).
	JobLimit int
	// JobTTL is how long finished async jobs stay fetchable before GC
	// (default 10m).
	JobTTL time.Duration

	// TraceSlow is the latency at or above which a traced request is
	// logged as a structured slow-request record (default 250ms; negative
	// disables slow logging — traces are still recorded and served).
	TraceSlow time.Duration
	// TraceRing bounds the in-memory ring of finished traces served at
	// GET /v1/trace (default 128).
	TraceRing int
	// Logger receives slow-trace and per-request debug records (default
	// slog.Default()).
	Logger *slog.Logger

	// FeedbackDir enables the feedback→retrain→rollout lifecycle: POST
	// /v1/feedback accepts measured runtimes and appends them to per-platform
	// logs under this directory. Empty disables the loop (the endpoint then
	// answers 409).
	FeedbackDir string
	// RegistryRoot is the checkpoint directory retrains write candidates to
	// and rollout state persists under (normally the -model-dir the server
	// booted from). Empty keeps rollout state in memory and disables
	// retraining and GC.
	RegistryRoot string
	// RolloutSplit is the percentage of unpinned traffic a fresh candidate
	// takes (default 10).
	RolloutSplit float64
	// RetrainAfter is how many accepted measurements a platform accumulates
	// between retrains (default 100; negative disables auto-retrain).
	RetrainAfter int
	// RetrainEpochs bounds each incremental retrain (0 = the trainer's
	// incremental default).
	RetrainEpochs int
	// QualityWindow is the per-model ring of (predicted, measured) pairs the
	// rank correlation is computed over (default 512).
	QualityWindow int
	// MinQualitySamples gates promote/rollback decisions until both windows
	// hold this many pairs (0 = registry default 30).
	MinQualitySamples int
	// PromoteAfter / RollbackAfter are the consecutive-evaluation hysteresis
	// thresholds (0 = registry defaults, 3 each).
	PromoteAfter  int
	RollbackAfter int
	// PromoteMargin / RollbackMargin are the rank-correlation margins around
	// the stable's quality (0 = registry defaults 0.02 / 0.10).
	PromoteMargin  float64
	RollbackMargin float64
	// GCKeep bounds how many superseded checkpoint versions survive a
	// promotion beyond the protected set (stable, candidate, default alias):
	// 0 defaults to 2, -1 keeps none, any other negative disables GC.
	GCKeep int
	// FeedbackJournal bounds the journal of recently served responses that
	// feedback submissions are validated against (default 4096).
	FeedbackJournal int
}

func (o Options) withDefaults() Options {
	if o.AdviseCacheSize <= 0 {
		o.AdviseCacheSize = 512
	}
	if o.EncodeCacheSize <= 0 {
		o.EncodeCacheSize = 2048
	}
	if o.PoolSize <= 0 {
		o.PoolSize = runtime.GOMAXPROCS(0)
	}
	if o.GridWorkers <= 0 {
		o.GridWorkers = runtime.GOMAXPROCS(0)
	}
	if o.TraceSlow == 0 {
		o.TraceSlow = 250 * time.Millisecond
	}
	if o.TraceSlow < 0 {
		o.TraceSlow = 0 // tracer: <= 0 disables slow logging
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.RolloutSplit <= 0 {
		o.RolloutSplit = 10
	}
	if o.RolloutSplit > 100 {
		o.RolloutSplit = 100
	}
	if o.RetrainAfter == 0 {
		o.RetrainAfter = 100
	}
	if o.QualityWindow <= 0 {
		o.QualityWindow = 512
	}
	switch {
	case o.GCKeep == 0:
		o.GCKeep = 2
	case o.GCKeep == -1:
		o.GCKeep = 0
	case o.GCKeep < -1:
		o.GCKeep = -1 // registry.GCPolicy: negative disables
	}
	if o.FeedbackJournal <= 0 {
		o.FeedbackJournal = 4096
	}
	return o
}

// backendState is one served platform: its machine profile and the named
// models serving it. mu guards models and defaultName — both mutate at
// runtime once the lifecycle adopts, promotes or prunes versions. The
// backends map itself is immutable after NewServer.
type backendState struct {
	machine hw.Machine

	mu          sync.RWMutex
	models      map[string]*modelState
	defaultName string
}

// modelState wires one model version into the service: its batcher (the
// advisor's Predictor), the advisor built on top of it, and per-model
// traffic counters.
type modelState struct {
	name    string
	info    ModelInfo
	advisor *advisor.Advisor
	batcher *Batcher

	advise   atomic.Uint64
	predict  atomic.Uint64
	lastUsed atomic.Int64 // unix seconds; 0 = never
}

func (ms *modelState) touch() { ms.lastUsed.Store(time.Now().Unix()) }

// Server is the advisor service. Build one with NewServer, mount Handler on
// an http.Server, and Close it on shutdown.
type Server struct {
	start       time.Time
	opts        Options
	mux         *http.ServeMux
	backends    map[string]*backendState
	adviseCache *Cache // whole advise responses and single predictions
	encodeCache *Cache // encoded graphs, shared across backends
	pool        *Pool
	flights     flightGroup // collapses identical concurrent cache misses

	// admit fronts the eval pool with per-client fair queueing and bounded
	// backlogs; jobs backs the async advise path. jobsCtx is the lifetime
	// of async evaluations (cancelled in Close, then jobsWG drained).
	admit      *admit.Queue
	jobs       *admit.Store
	jobsCtx    context.Context
	jobsCancel context.CancelFunc
	jobsWG     sync.WaitGroup

	metrics *serveMetrics // every /metrics series; /v1/stats reads the same instruments
	tracer  *obs.Tracer   // request traces: slow logging + the /v1/trace ring
	logger  *slog.Logger

	// lifecycle is non-nil when Options.FeedbackDir enabled the
	// feedback→retrain→rollout loop.
	lifecycle *lifecycle
	// retired holds batchers of versions unregistered at runtime (pruned by
	// GC): requests that already resolved them must still finish, so they
	// close only in Close.
	retiredMu sync.Mutex
	retired   []*Batcher

	// cluster is non-nil once EnableCluster put the server into a
	// consistent-hash sharded tier; nil means every request serves locally.
	cluster *cluster
}

// encodeCacheAdapter exposes a *Cache as the advisor's EncodeCache.
type encodeCacheAdapter struct{ c *Cache }

func (a encodeCacheAdapter) Get(key string) (*gnn.Graph, bool) {
	v, ok := a.c.Get(key)
	if !ok {
		return nil, false
	}
	g, ok := v.(*gnn.Graph)
	return g, ok
}

func (a encodeCacheAdapter) Add(key string, g *gnn.Graph) { a.c.Add(key, g) }

// NewServer assembles the service from trained backends.
func NewServer(backends []Backend, opts Options) (*Server, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("serve: no backends")
	}
	opts = opts.withDefaults()
	s := &Server{
		start:       time.Now(),
		opts:        opts,
		mux:         http.NewServeMux(),
		backends:    map[string]*backendState{},
		adviseCache: NewCache(opts.AdviseCacheSize),
		encodeCache: NewCache(opts.EncodeCacheSize),
		pool:        NewPool(opts.PoolSize),
		// The fair queue's concurrency equals the pool size, so the pool
		// itself never develops a FIFO backlog: ordering policy lives in
		// the queue, capacity accounting in the pool.
		admit: admit.NewQueue(admit.QueueConfig{
			Concurrency:  opts.PoolSize,
			MaxQueued:    opts.QueueLimit,
			MaxPerClient: opts.QueuePerClient,
		}),
		jobs: admit.NewStore(opts.JobLimit, opts.JobTTL),
	}
	s.jobsCtx, s.jobsCancel = context.WithCancel(context.Background())
	for _, b := range backends {
		if b.Model == nil || b.Prep == nil {
			return nil, fmt.Errorf("serve: backend %q missing model or prepared dataset", b.Machine.Name)
		}
		name := b.Name
		if name == "" {
			name = "default"
		}
		be, ok := s.backends[b.Machine.Name]
		if !ok {
			be = &backendState{machine: b.Machine, models: map[string]*modelState{}}
			s.backends[b.Machine.Name] = be
		}
		if _, dup := be.models[name]; dup {
			return nil, fmt.Errorf("serve: duplicate backend %s/%s", b.Machine.Name, name)
		}
		info := ModelInfo{Level: paragraph.LevelParaGraph, Source: "trained"}
		if b.Info != nil {
			info = *b.Info
		}
		be.models[name] = s.newModelState(b.Machine, name, b.Model, b.Prep, info)
		if b.Default {
			if be.defaultName != "" && be.defaultName != name {
				return nil, fmt.Errorf("serve: platform %q declares two default models (%s, %s)",
					b.Machine.Name, be.defaultName, name)
			}
			be.defaultName = name
		}
	}
	// Resolve each platform's default alias: an explicit Default wins, then
	// a model literally named "default", then the lexicographically first.
	for _, be := range s.backends {
		if be.defaultName != "" {
			// An explicit default must not shadow a model named "default":
			// the alias rewrite would make that model unreachable by name.
			if _, ok := be.models["default"]; ok && be.defaultName != "default" {
				return nil, fmt.Errorf("serve: platform %q: model named \"default\" would be shadowed by explicit default %q",
					be.machine.Name, be.defaultName)
			}
			continue
		}
		if _, ok := be.models["default"]; ok {
			be.defaultName = "default"
			continue
		}
		for _, name := range be.modelNames() {
			be.defaultName = name
			break
		}
	}
	s.logger = opts.Logger
	s.tracer = obs.NewTracer(obs.TracerOptions{
		Slow:     opts.TraceSlow,
		RingSize: opts.TraceRing,
		Logger:   opts.Logger,
	})
	s.metrics = newServeMetrics(s)
	// Advise, predict and replicate are traced (they carry the expensive
	// work and cross-peer hops); the read-only introspection endpoints only
	// get request/latency/error accounting.
	s.mux.HandleFunc("/v1/advise", s.instrument("advise", true, s.handleAdvise))
	s.mux.HandleFunc("/v1/predict", s.instrument("predict", true, s.handlePredict))
	s.mux.HandleFunc("/v1/feedback", s.instrument("feedback", true, s.handleFeedback))
	s.mux.HandleFunc("/v1/healthz", s.instrument("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("/v1/stats", s.instrument("stats", false, s.handleStats))
	s.mux.HandleFunc("/v1/models", s.instrument("models", false, s.handleModels))
	s.mux.HandleFunc("/v1/ring", s.instrument("ring", false, s.handleRing))
	s.mux.HandleFunc("/v1/replicate", s.instrument("replicate", true, s.handleReplicate))
	s.mux.HandleFunc("/v1/cluster/", s.instrument("cluster", false, s.handleCluster))
	s.mux.HandleFunc("/v1/trace", s.instrument("trace", false, s.handleTrace))
	s.mux.HandleFunc("/v1/jobs/", s.instrument("jobs", false, s.handleJobs))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", false, s.handleMetrics))
	if err := s.initLifecycle(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// newModelState wires one model version into the serving plumbing: its
// micro-batcher, the advisor on top, and the shared encode cache.
func (s *Server) newModelState(machine hw.Machine, name string, model BatchPredictor, prep *dataset.Prepared, info ModelInfo) *modelState {
	batcher := NewBatcher(model, s.opts.MaxBatch, s.opts.BatchWait)
	adv := advisor.New(batcher, prep, machine)
	adv.SetLevel(info.Level)
	adv.SetWorkers(s.opts.GridWorkers)
	adv.SetEncodeCache(encodeCacheAdapter{s.encodeCache})
	return &modelState{name: name, info: info, advisor: adv, batcher: batcher}
}

// addModel registers a new model version on a live server (candidate
// adoption). The version name must be fresh and not an alias.
func (s *Server) addModel(platform, name string, model BatchPredictor, prep *dataset.Prepared, info ModelInfo) (*modelState, error) {
	be, err := s.resolveBackend(platform)
	if err != nil {
		return nil, err
	}
	if name == "" || name == "default" {
		return nil, fmt.Errorf("serve: invalid live model name %q", name)
	}
	ms := s.newModelState(be.machine, name, model, prep, info)
	be.mu.Lock()
	defer be.mu.Unlock()
	if _, dup := be.models[name]; dup {
		ms.batcher.Close()
		return nil, fmt.Errorf("serve: model %s/%s already registered", platform, name)
	}
	be.models[name] = ms
	return ms, nil
}

// removeModel unregisters a version (checkpoint pruned by GC). The
// platform's default is never removed; the retired batcher closes in Close
// so in-flight requests that already resolved the version still finish.
func (s *Server) removeModel(platform, name string) {
	be, ok := s.backends[platform]
	if !ok {
		return
	}
	be.mu.Lock()
	ms, ok := be.models[name]
	if !ok || name == be.defaultName {
		be.mu.Unlock()
		return
	}
	delete(be.models, name)
	be.mu.Unlock()
	s.retiredMu.Lock()
	s.retired = append(s.retired, ms.batcher)
	s.retiredMu.Unlock()
}

// setDefault re-points a platform's default alias (promotion, restart
// restore). Reports whether the named version exists.
func (s *Server) setDefault(platform, name string) bool {
	be, ok := s.backends[platform]
	if !ok {
		return false
	}
	be.mu.Lock()
	defer be.mu.Unlock()
	if _, ok := be.models[name]; !ok {
		return false
	}
	be.defaultName = name
	return true
}

// hasModel reports whether a platform serves the named version.
func (s *Server) hasModel(platform, name string) bool {
	be, ok := s.backends[platform]
	if !ok {
		return false
	}
	be.mu.RLock()
	defer be.mu.RUnlock()
	_, ok = be.models[name]
	return ok
}

// defaultModel returns a platform's current default version name.
func (s *Server) defaultModel(platform string) string {
	be, ok := s.backends[platform]
	if !ok {
		return ""
	}
	be.mu.RLock()
	defer be.mu.RUnlock()
	return be.defaultName
}

// modelNames lists a platform's model versions, sorted.
func (be *backendState) modelNames() []string {
	be.mu.RLock()
	defer be.mu.RUnlock()
	return be.modelNamesLocked()
}

// modelNamesLocked is modelNames for callers already holding be.mu.
func (be *backendState) modelNamesLocked() []string {
	names := make([]string, 0, len(be.models))
	for name := range be.models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the async-job workers (cancelling their evaluations and
// waiting them out), the job store's sweeper, the per-model batchers
// (after draining in-flight batches) and, in cluster mode, the membership
// background loops and the forwarder's async replication workers.
func (s *Server) Close() {
	s.jobsCancel()
	s.jobsWG.Wait()
	// Background retrains register new batchers; wait them out before the
	// batcher sweep so nothing is created after it.
	if s.lifecycle != nil {
		s.lifecycle.wg.Wait()
	}
	s.jobs.Close()
	for _, be := range s.backends {
		be.mu.RLock()
		batchers := make([]*Batcher, 0, len(be.models))
		for _, ms := range be.models {
			batchers = append(batchers, ms.batcher)
		}
		be.mu.RUnlock()
		for _, b := range batchers {
			b.Close()
		}
	}
	s.retiredMu.Lock()
	retired := s.retired
	s.retired = nil
	s.retiredMu.Unlock()
	for _, b := range retired {
		b.Close()
	}
	if s.cluster != nil {
		s.cluster.stop()
	}
}

// Stats snapshots the service counters (the same payload /v1/stats serves).
func (s *Server) Stats() Stats { return s.snapshot() }

func (s *Server) machineNames() []string {
	names := make([]string, 0, len(s.backends))
	for name := range s.backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// --- request/response types ---

// ParamSpec mirrors apps.Param for custom kernels.
type ParamSpec struct {
	Name   string `json:"name"`
	Values []int  `json:"values"`
}

// ArraySpec mirrors apps.Array for custom kernels.
type ArraySpec struct {
	Name     string `json:"name"`
	SizeExpr string `json:"size_expr"`
}

// KernelSpec is an inline kernel template for requests about code outside
// the built-in suite. Source must contain exactly one __PRAGMA__ marker
// line where the variant directive goes.
type KernelSpec struct {
	App         string      `json:"app,omitempty"`
	Name        string      `json:"name"`
	FuncName    string      `json:"func_name"`
	Source      string      `json:"source"`
	Collapsible bool        `json:"collapsible,omitempty"`
	Params      []ParamSpec `json:"params"`
	Arrays      []ArraySpec `json:"arrays,omitempty"`
}

func (ks *KernelSpec) kernel() apps.Kernel {
	k := apps.Kernel{
		App:         ks.App,
		Name:        ks.Name,
		FuncName:    ks.FuncName,
		Source:      ks.Source,
		Collapsible: ks.Collapsible,
	}
	if k.App == "" {
		k.App = "custom"
	}
	for _, p := range ks.Params {
		k.Params = append(k.Params, apps.Param{Name: p.Name, Values: p.Values})
	}
	for _, a := range ks.Arrays {
		k.Arrays = append(k.Arrays, apps.Array{Name: a.Name, SizeExpr: a.SizeExpr})
	}
	return k
}

// SpaceSpec is the JSON form of advisor.SearchSpace.
type SpaceSpec struct {
	CPUThreads []int `json:"cpu_threads,omitempty"`
	GPUTeams   []int `json:"gpu_teams,omitempty"`
	GPUThreads []int `json:"gpu_threads,omitempty"`
}

func (sp *SpaceSpec) space() advisor.SearchSpace {
	if sp == nil {
		return advisor.DefaultSearchSpace()
	}
	return advisor.SearchSpace{
		CPUThreads: sp.CPUThreads,
		GPUTeams:   sp.GPUTeams,
		GPUThreads: sp.GPUThreads,
	}
}

// AdviseRequest asks for a ranked variant grid on one machine. Exactly one
// of Kernel (a suite kernel name) or Custom must be set.
type AdviseRequest struct {
	Kernel        string             `json:"kernel,omitempty"`
	Custom        *KernelSpec        `json:"custom,omitempty"`
	Machine       string             `json:"machine"`
	Model         string             `json:"model,omitempty"` // version name; "" = platform default
	Bindings      map[string]float64 `json:"bindings,omitempty"`
	Space         *SpaceSpec         `json:"space,omitempty"`
	Top           int                `json:"top,omitempty"`            // 0 = all
	IncludeSource bool               `json:"include_source,omitempty"` // return transformed kernels
}

// Recommendation is one ranked candidate in a response.
type Recommendation struct {
	Variant     string  `json:"variant"`
	Teams       int     `json:"teams,omitempty"`
	Threads     int     `json:"threads"`
	PredictedUS float64 `json:"predicted_us"`
	Source      string  `json:"source,omitempty"`
}

// AdviseResponse is the ranked answer, fastest first. Model is the
// resolved version name. Coalesced marks a response that piggybacked on an
// identical concurrent request's evaluation (singleflight) instead of
// computing or hitting the cache itself. ServedBy names the cluster peer
// that answered (empty outside cluster mode): when it differs from the
// peer the client contacted, the request was forwarded to the key's owner
// on the consistent-hash ring.
type AdviseResponse struct {
	Machine string `json:"machine"`
	Model   string `json:"model"`
	Kernel  string `json:"kernel"`
	// Key is the content-addressed request hash; POST /v1/feedback reports
	// measured runtimes against it.
	Key             string           `json:"key,omitempty"`
	Cached          bool             `json:"cached"`
	Coalesced       bool             `json:"coalesced,omitempty"`
	ServedBy        string           `json:"served_by,omitempty"`
	ElapsedMS       float64          `json:"elapsed_ms"`
	Recommendations []Recommendation `json:"recommendations"`
}

// PredictRequest asks for one variant's predicted runtime.
type PredictRequest struct {
	Kernel   string             `json:"kernel,omitempty"`
	Custom   *KernelSpec        `json:"custom,omitempty"`
	Machine  string             `json:"machine"`
	Model    string             `json:"model,omitempty"` // version name; "" = platform default
	Variant  string             `json:"variant"`         // e.g. "gpu_collapse_mem"
	Teams    int                `json:"teams,omitempty"`
	Threads  int                `json:"threads"`
	Bindings map[string]float64 `json:"bindings,omitempty"`
}

// PredictResponse is one static runtime prediction. ServedBy is as in
// AdviseResponse: the cluster peer that answered, empty outside cluster
// mode.
type PredictResponse struct {
	Machine string `json:"machine"`
	Model   string `json:"model"`
	Kernel  string `json:"kernel"`
	// Key is the content-addressed request hash; POST /v1/feedback reports
	// measured runtimes against it.
	Key         string  `json:"key,omitempty"`
	Variant     string  `json:"variant"`
	Teams       int     `json:"teams,omitempty"`
	Threads     int     `json:"threads"`
	PredictedUS float64 `json:"predicted_us"`
	Cached      bool    `json:"cached"`
	ServedBy    string  `json:"served_by,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// fail writes the JSON error envelope. Error accounting happens in the
// instrument middleware off the response status, so every error response —
// including ones relayed verbatim from a peer — is counted per endpoint
// and status class.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// resolveBackend finds the backend for a machine name.
func (s *Server) resolveBackend(machine string) (*backendState, error) {
	be, ok := s.backends[machine]
	if !ok {
		return nil, fmt.Errorf("unknown machine %q (serving: %s)",
			machine, strings.Join(s.machineNames(), ", "))
	}
	return be, nil
}

// pickModel resolves the model version serving one request. An explicit
// version name is honored verbatim; an empty or "default" name follows the
// platform's default alias — unless a staged rollout is live, in which
// case the deterministic A/B split over the request's route key decides,
// so a fixed request always lands on the same version at a given split
// (across restarts and peers alike). Responses and cache keys carry the
// resolved name, so an alias and its target share cache entries.
func (s *Server) pickModel(be *backendState, requested, routeKey string) (*modelState, error) {
	name := requested
	routed := false
	if name == "" || name == "default" {
		name = ""
		if s.lifecycle != nil {
			name = s.lifecycle.routedModel(be.machine.Name, routeKey)
			routed = name != ""
		}
	}
	be.mu.RLock()
	defer be.mu.RUnlock()
	if name == "" {
		name = be.defaultName
	}
	ms, ok := be.models[name]
	if !ok {
		if routed {
			// The routed version vanished between the routing decision and
			// this lookup (a rollback or GC racing the request): the stable
			// default serves it rather than failing it.
			if ms, ok = be.models[be.defaultName]; ok {
				return ms, nil
			}
		}
		return nil, fmt.Errorf("unknown model %q for machine %q (serving: %s)",
			name, be.machine.Name, strings.Join(be.modelNamesLocked(), ", "))
	}
	return ms, nil
}

// resolveKernel materializes the requested kernel template.
func resolveKernel(name string, custom *KernelSpec) (apps.Kernel, error) {
	switch {
	case name != "" && custom != nil:
		return apps.Kernel{}, fmt.Errorf("set either kernel or custom, not both")
	case name != "":
		k, ok := apps.ByName(name)
		if !ok {
			return apps.Kernel{}, fmt.Errorf("unknown kernel %q", name)
		}
		return k, nil
	case custom != nil:
		k := custom.kernel()
		if err := k.Validate(); err != nil {
			return apps.Kernel{}, err
		}
		return k, nil
	default:
		return apps.Kernel{}, fmt.Errorf("missing kernel")
	}
}

// kernelKey canonically serializes everything variant generation reads from
// a kernel template — identity, collapsibility, params and arrays (arrays
// shape the map clauses of transfer variants) — so two custom kernels
// differing in any of them cannot collide in the response caches.
func kernelKey(k apps.Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\x00%s\x00%s\x00%v\x00", k.App, k.Name, k.FuncName, k.Collapsible)
	for _, p := range k.Params {
		fmt.Fprintf(&b, "p:%s=%v\x00", p.Name, p.Values)
	}
	for _, a := range k.Arrays {
		fmt.Fprintf(&b, "a:%s=%s\x00", a.Name, a.SizeExpr)
	}
	b.WriteString(k.Source)
	return b.String()
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	s.noteForwarded(r)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	tr := obs.TraceFrom(r.Context())
	dec := tr.StartSpan("decode")
	var req AdviseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	dec.End()
	be, err := s.resolveBackend(req.Machine)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	k, err := resolveKernel(req.Kernel, req.Custom)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	space := req.Space.space()

	// Route key: the request's content *without* the model version — A/B
	// routing assigns a fixed request to a version, so the version cannot be
	// part of the identity being routed.
	routeKey := Key("route", be.machine.Name, kernelKey(k), advisor.BindingsKey(req.Bindings),
		fmtInts(space.CPUThreads), fmtInts(space.GPUTeams), fmtInts(space.GPUThreads))
	ms, err := s.pickModel(be, req.Model, routeKey)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}

	// Content-addressed response key: everything the ranking depends on,
	// including the resolved model version (two versions of one platform
	// rank differently). Top and IncludeSource shape only the rendering, so
	// they stay out of the key and a hit can serve any truncation.
	key := Key("advise", be.machine.Name, ms.name, kernelKey(k), advisor.BindingsKey(req.Bindings),
		fmtInts(space.CPUThreads), fmtInts(space.GPUTeams), fmtInts(space.GPUThreads))

	p := adviseParams{
		req: req, be: be, ms: ms, k: k, space: space, key: key,
		client:    clientKey(r),
		forwarded: s.isForwarded(r),
	}

	if async := r.URL.Query().Get("async"); async == "1" || async == "true" {
		s.startAdviseJob(w, r, p)
		return
	}

	ctx, cancel, err := requestContext(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()

	startReq := time.Now()
	recs, pr, cached, coalesced, err := s.adviseRecs(ctx, tr, p)
	if err != nil {
		if shed, ok := asShed(err); ok {
			s.writeShed(w, shed, s.adviseCost(be, ms, k, space))
			return
		}
		s.fail(w, http.StatusUnprocessableEntity, "advise %s on %s/%s: %v", k.Name, be.machine.Name, ms.name, err)
		return
	}
	if coalesced {
		s.metrics.coalesced.Inc()
	}
	if pr != nil {
		s.writeProxied(w, *pr)
		return
	}
	ms.advise.Add(1)
	ms.touch()
	if s.lifecycle != nil {
		s.lifecycle.noteAdvise(p, recs)
	}
	resp := s.renderAdvise(p, recs, cached, coalesced)
	resp.ElapsedMS = float64(time.Since(startReq).Microseconds()) / 1000
	s.writeJSON(w, http.StatusOK, resp)
}

// adviseParams is one advise evaluation's resolved inputs, shared by the
// synchronous handler and the async job path.
type adviseParams struct {
	req       AdviseRequest
	be        *backendState
	ms        *modelState
	k         apps.Kernel
	space     advisor.SearchSpace
	key       string
	client    string
	forwarded bool
}

// adviseRecs serves one advise evaluation: response cache, then the
// deadline shed check, then forward-or-evaluate inside the singleflight
// with the evaluation admitted through the per-client fair queue. Exactly
// one of recs and pr is set on success. Cache hits are never shed — they
// cost microseconds and always beat any deadline.
func (s *Server) adviseRecs(ctx context.Context, tr *obs.Trace, p adviseParams) (recs []advisor.Recommendation, pr *proxiedResponse, cached, coalesced bool, err error) {
	lookup := tr.StartSpan("cache_lookup")
	v, hit := s.adviseCache.Get(p.key)
	lookup.End()
	if hit {
		// A local hit is served locally even if a peer owns the key: the
		// entry is content-addressed and immutable, so it is byte-identical
		// to whatever the owner holds, and the hop is free to skip. The
		// comma-ok guard treats a wrong-typed entry (a malformed or hostile
		// /v1/replicate write — keys are opaque hashes, so the handler
		// cannot tell advise from predict values) as a miss to recompute
		// and overwrite, never a value to trust.
		if r2, ok := v.([]advisor.Recommendation); ok {
			s.metrics.adviseHits.Inc()
			return r2, nil, true, false, nil
		}
	}
	// Deadline-aware shedding: a request that predictably cannot finish
	// inside its budget is rejected before it holds anything — each caller
	// applies its own deadline even when it would coalesce into a flight.
	if shed := s.shedCheck(ctx, s.adviseCost(p.be, p.ms, p.k, p.space)); shed != nil {
		return nil, nil, false, false, shed
	}
	// The miss may belong to a peer: in cluster mode it is forwarded to
	// the key's owners in successor order — primary first, replicas when
	// the primary is unreachable — so the owner's cache and singleflight
	// absorb all traffic for the key; with every owner unreachable it
	// falls back to local evaluation — degraded (a duplicate
	// evaluation), never failing. An owner evaluating the miss itself
	// writes the entry through to the key's replicas (fire-and-forget),
	// so one peer death loses no warmth. Forward-or-evaluate runs inside
	// the singleflight so a burst of identical misses at a non-owner
	// shares one proxied hop instead of each holding a connection to the
	// owner. Top and IncludeSource are not in the cache key (a cached
	// ranking serves any rendering), but a proxied response is already
	// rendered, so they join the flight key — requests differing only in
	// rendering must not share proxied bytes.
	targets, owners, owned := s.route(p.forwarded, p.key)
	flightKey := fmt.Sprintf("%s|t%d_s%v", p.key, p.req.Top, p.req.IncludeSource)
	flightStart := time.Now()
	v, shared, err := s.flights.Do(flightKey, func() (any, error) {
		if len(targets) > 0 {
			if fr, ok := s.tryForward(ctx, tr, targets, "/v1/advise", p.req); ok {
				return fr, nil
			}
		}
		// Owned miss with live co-owners: before paying an evaluation, try
		// pulling the entry from a replica's cache (read repair). The case
		// this serves is a peer that just rejoined — it owns its old keys
		// again but holds none of them until the next anti-entropy sweep,
		// while its co-owners still do.
		if v, ok := s.tryRepair(ctx, tr, p.key, owners, owned); ok {
			if r2, ok := v.([]advisor.Recommendation); ok {
				return repairedEntry{val: r2}, nil
			}
		}
		poolWait := tr.StartSpan("pool_wait")
		var out []advisor.Recommendation
		err := s.admitRun(ctx, p.client, func() error {
			poolWait.End()
			var err error
			out, err = p.ms.advisor.AdviseCtx(ctx, p.k, p.req.Bindings, p.space)
			return err
		})
		if err != nil {
			return nil, err
		}
		if err := checkFinite(out); err != nil {
			return nil, err
		}
		s.adviseCache.Add(p.key, out)
		s.replicate(p.key, out, owners, owned, tr.ID())
		return out, nil
	})
	if err != nil {
		return nil, nil, false, false, err
	}
	if shared {
		coalesced = true
		// Recorded retroactively: a waiter only learns it waited — and
		// for how long — once the leader's flight lands.
		tr.AddSpan("singleflight_wait", "", flightStart, time.Since(flightStart))
	}
	if fr, ok := v.(proxiedResponse); ok {
		return nil, &fr, false, coalesced, nil
	}
	if re, ok := v.(repairedEntry); ok {
		// A repaired entry is a cache hit from the tier's point of view:
		// the warmth existed, just on a co-owner.
		s.metrics.adviseHits.Inc()
		return re.val.([]advisor.Recommendation), nil, true, coalesced, nil
	}
	return v.([]advisor.Recommendation), nil, false, coalesced, nil
}

// renderAdvise shapes the ranked grid into the response envelope,
// applying the request's Top truncation and IncludeSource rendering.
// ElapsedMS is the caller's to fill (the sync path measures the request,
// the async path the evaluation).
func (s *Server) renderAdvise(p adviseParams, recs []advisor.Recommendation, cached, coalesced bool) AdviseResponse {
	resp := AdviseResponse{
		Machine:   p.be.machine.Name,
		Model:     p.ms.name,
		Kernel:    p.k.Name,
		Key:       p.key,
		Cached:    cached,
		Coalesced: coalesced,
		ServedBy:  s.servedBy(),
	}
	n := len(recs)
	if p.req.Top > 0 && p.req.Top < n {
		n = p.req.Top
	}
	for _, rec := range recs[:n] {
		out := Recommendation{
			Variant:     rec.Kind.String(),
			Teams:       rec.Teams,
			Threads:     rec.Threads,
			PredictedUS: rec.PredictedUS,
		}
		if p.req.IncludeSource {
			out.Source = rec.Source
		}
		resp.Recommendations = append(resp.Recommendations, out)
	}
	return resp
}

// checkFinite rejects rankings carrying non-finite predictions — the
// signature of a registry model whose checkpoint vanished or corrupted
// under a live server (registry entries answer NaN rather than crash the
// batcher). Failing the request keeps poisoned rankings out of the cache.
func checkFinite(recs []advisor.Recommendation) error {
	for _, r := range recs {
		if math.IsNaN(r.PredictedUS) || math.IsInf(r.PredictedUS, 0) {
			return fmt.Errorf("model produced a non-finite prediction (checkpoint unavailable?)")
		}
	}
	return nil
}

// kindByName parses a variant name ("cpu", "gpu_collapse_mem", ...).
func kindByName(name string) (variants.Kind, error) {
	for _, k := range variants.Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown variant %q", name)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.noteForwarded(r)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	tr := obs.TraceFrom(r.Context())
	dec := tr.StartSpan("decode")
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	dec.End()
	be, err := s.resolveBackend(req.Machine)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	k, err := resolveKernel(req.Kernel, req.Custom)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	kind, err := kindByName(req.Variant)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if kind.IsGPU() != be.machine.IsGPU {
		s.fail(w, http.StatusBadRequest, "variant %s incompatible with machine %s",
			kind, be.machine.Name)
		return
	}
	if req.Threads <= 0 {
		s.fail(w, http.StatusBadRequest, "threads must be positive")
		return
	}
	// Model-less route key, as in handleAdvise: the A/B split must route the
	// request's content, not the version it resolves to.
	routeKey := Key("route", be.machine.Name, kernelKey(k), req.Variant,
		fmt.Sprintf("g%d_t%d", req.Teams, req.Threads), advisor.BindingsKey(req.Bindings))
	ms, err := s.pickModel(be, req.Model, routeKey)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()

	key := Key("predict", be.machine.Name, ms.name, kernelKey(k), req.Variant,
		fmt.Sprintf("g%d_t%d", req.Teams, req.Threads), advisor.BindingsKey(req.Bindings))
	resp := PredictResponse{
		Machine: be.machine.Name, Model: ms.name, Kernel: k.Name, Key: key,
		Variant: req.Variant, Teams: req.Teams, Threads: req.Threads, ServedBy: s.servedBy(),
	}
	lookup := tr.StartSpan("cache_lookup")
	v, hit := s.adviseCache.Get(key)
	lookup.End()
	if hit {
		// Comma-ok for the same reason as handleAdvise: a wrong-typed
		// entry is a miss to overwrite, not a panic.
		if us, ok := v.(float64); ok {
			ms.predict.Add(1)
			ms.touch()
			resp.PredictedUS = us
			resp.Cached = true
			if s.lifecycle != nil {
				s.lifecycle.notePredict(key, be.machine.Name, ms.name, k, req, us)
			}
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	// Deadline-aware shedding before any work is held: one prediction
	// costs one batcher unit, and a backlog that cannot drain inside the
	// request's budget is rejected with Retry-After (cache hits above are
	// never shed — they always beat any deadline).
	if shed := s.shedCheck(ctx, evalUnit(ms)); shed != nil {
		s.writeShed(w, shed, evalUnit(ms))
		return
	}
	// Cluster mode: a missed key owned by a peer is forwarded there — the
	// primary owner first, replicas in successor order when it is down —
	// with local evaluation as the fallback when every owner is unreachable
	// (same degraded-never-failing contract as handleAdvise), and the same
	// write-through to the key's replicas after an owner evaluates. As
	// there, the forward runs inside the singleflight so identical
	// concurrent misses share one hop; predict responses have no rendering
	// options, so the flight key is the cache key.
	targets, owners, owned := s.route(s.isForwarded(r), key)
	flightStart := time.Now()
	v, shared, err := s.flights.Do(key, func() (any, error) {
		if len(targets) > 0 {
			if pr, ok := s.tryForward(ctx, tr, targets, "/v1/predict", req); ok {
				return pr, nil
			}
		}
		// Read repair, as in adviseRecs: an owned miss may exist on a
		// co-owner's cache (this peer just rejoined and is not yet warm).
		if rv, ok := s.tryRepair(ctx, tr, key, owners, owned); ok {
			if us, ok := rv.(float64); ok {
				return repairedEntry{val: us}, nil
			}
		}
		poolWait := tr.StartSpan("pool_wait")
		var us float64
		err := s.admitRun(ctx, clientKey(r), func() error {
			poolWait.End()
			src, err := variants.Generate(k, kind, req.Teams, req.Threads)
			if err != nil {
				return err
			}
			in := variants.Instance{
				Kernel: k, Kind: kind, Teams: req.Teams, Threads: req.Threads,
				Bindings: req.Bindings, Source: src,
			}
			us, err = ms.advisor.PredictInstanceUSCtx(ctx, in)
			return err
		})
		if err != nil {
			return nil, err
		}
		if math.IsNaN(us) || math.IsInf(us, 0) {
			return nil, fmt.Errorf("model produced a non-finite prediction (checkpoint unavailable?)")
		}
		s.adviseCache.Add(key, us)
		s.replicate(key, us, owners, owned, tr.ID())
		return us, nil
	})
	if err != nil {
		if shed, ok := asShed(err); ok {
			s.writeShed(w, shed, evalUnit(ms))
			return
		}
		s.fail(w, http.StatusUnprocessableEntity, "predict %s on %s/%s: %v", k.Name, be.machine.Name, ms.name, err)
		return
	}
	if shared {
		s.metrics.coalesced.Inc()
		tr.AddSpan("singleflight_wait", "", flightStart, time.Since(flightStart))
	}
	if pr, ok := v.(proxiedResponse); ok {
		s.writeProxied(w, pr)
		return
	}
	if re, ok := v.(repairedEntry); ok {
		resp.Cached = true
		v = re.val
	}
	ms.predict.Add(1)
	ms.touch()
	resp.PredictedUS = v.(float64)
	if s.lifecycle != nil {
		s.lifecycle.notePredict(key, be.machine.Name, ms.name, k, req, resp.PredictedUS)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"machines":       s.machineNames(),
		"level":          paragraph.LevelParaGraph.String(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.writeJSON(w, http.StatusOK, s.snapshot())
}

// ModelDesc is one entry of the /v1/models listing. The rollout fields are
// only set while the feedback lifecycle is enabled: Role marks the
// platform's stable or candidate, RolloutSplit the percentage of unpinned
// traffic the version takes during a staged rollout, and RankCorr /
// FeedbackPairs its online measured quality.
type ModelDesc struct {
	Platform  string  `json:"platform"`
	Name      string  `json:"name"`
	Default   bool    `json:"default"`
	Level     string  `json:"level"`
	Source    string  `json:"source,omitempty"`
	Hidden    int     `json:"hidden,omitempty"`
	Layers    int     `json:"layers,omitempty"`
	Params    int     `json:"params,omitempty"`
	Epochs    int     `json:"epochs,omitempty"`
	ValRMSE   float64 `json:"val_rmse,omitempty"`
	CreatedAt string  `json:"created_at,omitempty"` // RFC 3339

	Role          string   `json:"role,omitempty"` // "stable" | "candidate"
	RolloutSplit  float64  `json:"rollout_split,omitempty"`
	RankCorr      *float64 `json:"rank_corr,omitempty"`
	FeedbackPairs int      `json:"feedback_pairs,omitempty"`
}

// ModelsResponse is the /v1/models payload.
type ModelsResponse struct {
	Models []ModelDesc `json:"models"`
}

// Models lists every served model version (the /v1/models payload), sorted
// by (platform, name).
func (s *Server) Models() ModelsResponse {
	var resp ModelsResponse
	for _, machine := range s.machineNames() {
		be := s.backends[machine]
		be.mu.RLock()
		var descs []ModelDesc
		for _, name := range be.modelNamesLocked() {
			ms := be.models[name]
			d := ModelDesc{
				Platform: machine,
				Name:     name,
				Default:  name == be.defaultName,
				Level:    ms.info.Level.String(),
				Source:   ms.info.Source,
				Hidden:   ms.info.Hidden,
				Layers:   ms.info.Layers,
				Params:   ms.info.Params,
				Epochs:   ms.info.Epochs,
				ValRMSE:  ms.info.ValRMSE,
			}
			if !ms.info.CreatedAt.IsZero() {
				d.CreatedAt = ms.info.CreatedAt.UTC().Format(time.RFC3339)
			}
			descs = append(descs, d)
		}
		be.mu.RUnlock()
		// Rollout annotations happen outside be.mu: the lifecycle lock
		// orders strictly before the backend lock.
		if s.lifecycle != nil {
			for i := range descs {
				s.lifecycle.annotate(machine, descs[i].Name, &descs[i])
			}
		}
		resp.Models = append(resp.Models, descs...)
	}
	return resp
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.writeJSON(w, http.StatusOK, s.Models())
}
