package serve

import (
	"sync"
	"sync/atomic"
)

// flightGroup collapses concurrent calls that share a key into one
// execution: the first caller (the leader) runs fn, every caller that
// arrives while it is in flight blocks and receives the leader's result.
// Under a traffic spike of identical cache misses this turns N expensive
// grid evaluations into one — the classic singleflight pattern, local so
// the module stays dependency-free.
//
// Results are not retained after the flight lands; the response caches own
// memoization, the group only dedupes the in-flight window.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{} // closed when val/err are final
	waiters atomic.Int32  // callers blocked on this flight (tests use it to sequence)
	val     any
	err     error
}

// Do runs fn for key unless an identical call is already in flight, in
// which case it waits for that call instead. shared reports whether the
// result came from another caller's execution.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	// Deregister before publishing: a caller arriving after close must
	// start a fresh flight (or hit the cache), never read a stale entry.
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// waiting sums the callers currently blocked on in-flight calls.
func (g *flightGroup) waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, c := range g.calls {
		n += int(c.waiters.Load())
	}
	return n
}
