package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"paragraph/internal/advisor"
	"paragraph/internal/apps"
	"paragraph/internal/dataset"
	"paragraph/internal/feedback"
	"paragraph/internal/obs"
	"paragraph/internal/registry"
	"paragraph/internal/variants"
)

// The lifecycle closes the loop between serving and training: POST
// /v1/feedback accepts measured runtimes for predictions this process
// served (validated against a journal of recent responses), appends them to
// the durable feedback log, and feeds per-model online rank-correlation
// windows. Enough feedback triggers an incremental retrain whose output
// becomes a *candidate* version taking a deterministic percentage of
// unpinned traffic; sustained non-inferiority promotes it to stable,
// sustained regression rolls it back — the stable version never stops
// serving either way. Promotion also prunes superseded checkpoints under
// the configured retention.
//
// Lock ordering: lifecycle.mu is always taken before backendState.mu, and
// never while holding the metrics registry's lock (scrape-time collectors
// take lifecycle.mu, so registering series under it would deadlock).

// maxFeedbackBody bounds one feedback submission; real payloads are a few
// hundred bytes.
const maxFeedbackBody = 1 << 16

// FeedbackRequest reports one measured runtime for a previously served
// request, identified by the content-addressed Key the advise/predict
// response carried. Variant/Teams/Threads select the measured point of an
// advise grid; they may be omitted when the key identifies a single
// prediction (or to disambiguate, partially).
type FeedbackRequest struct {
	Key        string  `json:"key"`
	Variant    string  `json:"variant,omitempty"`
	Teams      int     `json:"teams,omitempty"`
	Threads    int     `json:"threads,omitempty"`
	MeasuredUS float64 `json:"measured_us"`
}

// FeedbackResponse acknowledges an accepted measurement with the point it
// was matched to and the prediction it is judged against.
type FeedbackResponse struct {
	Status      string  `json:"status"`
	Platform    string  `json:"platform"`
	Model       string  `json:"model"`
	Kernel      string  `json:"kernel"`
	Variant     string  `json:"variant"`
	Teams       int     `json:"teams,omitempty"`
	Threads     int     `json:"threads"`
	PredictedUS float64 `json:"predicted_us"`
	MeasuredUS  float64 `json:"measured_us"`
	Pairs       int     `json:"pairs"` // quality pairs windowed for this model
	ServedBy    string  `json:"served_by,omitempty"`
}

// decodeFeedback strictly decodes one feedback submission: unknown fields,
// trailing data, malformed keys and non-positive measurements are all
// rejected before any state is touched. (Also the FuzzFeedbackDecode
// target.)
func decodeFeedback(raw []byte) (FeedbackRequest, error) {
	var req FeedbackRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %v", err)
	}
	if dec.More() {
		return req, fmt.Errorf("trailing data after the request object")
	}
	if len(req.Key) != 64 {
		return req, fmt.Errorf("key must be the 64-char hex request hash from the response")
	}
	for _, c := range req.Key {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return req, fmt.Errorf("key must be lowercase hex")
		}
	}
	if req.Teams < 0 || req.Threads < 0 {
		return req, fmt.Errorf("teams and threads must not be negative")
	}
	if !(req.MeasuredUS > 0) || math.IsInf(req.MeasuredUS, 0) {
		return req, fmt.Errorf("measured_us must be a positive finite runtime")
	}
	return req, nil
}

// journalPoint is one (variant, grid point) a served response predicted.
type journalPoint struct {
	variant string
	teams   int
	threads int
}

// journalEntry is everything needed to validate a feedback submission
// against the request it measures and rebuild its training sample: the
// resolved platform and model version, the kernel template, the bindings,
// and every predicted point. Entries live in an LRU keyed by the response
// key, so feedback is only accepted for requests this process served
// recently.
type journalEntry struct {
	machine  string
	model    string
	kernel   apps.Kernel
	bindings map[string]float64
	points   map[journalPoint]float64 // predicted µs per served point
}

// platRollout is one platform's live rollout state: the persisted
// stable/candidate pointer plus the in-memory quality windows and retrain
// pacing.
type platRollout struct {
	st           *registry.RolloutState
	windows      map[string]*registry.QualityWindow // by model version
	sinceRetrain int
	retraining   bool
}

// lifecycle owns the feedback→retrain→rollout loop for a server. nil on
// servers started without a feedback directory.
type lifecycle struct {
	s       *Server
	log     *feedback.Log
	root    string // registry root; "" disables retrain, GC and persistence
	journal *Cache

	split         float64
	retrainAfter  int // accepted measurements per platform between retrains; <= 0 disables
	retrainEpochs int
	windowSize    int
	gcKeep        int // registry.GCPolicy.KeepLast; negative disables GC
	hcfg          registry.HysteresisConfig

	mu    sync.Mutex
	plats map[string]*platRollout
	wg    sync.WaitGroup

	accepted      atomic.Uint64
	rejected      atomic.Uint64
	retrains      atomic.Uint64
	retrainErrors atomic.Uint64
	promotions    atomic.Uint64
	rollbacks     atomic.Uint64
	gcRemoved     atomic.Uint64

	outcomes map[string]*obs.Counter // serve_feedback_total{outcome}
}

// feedbackOutcomes are the serve_feedback_total label values,
// pre-registered so every outcome series exists at zero.
var feedbackOutcomes = []string{"accepted", "unknown_key", "mismatch", "invalid", "error"}

// initLifecycle assembles the lifecycle when Options enable it (FeedbackDir
// set) and restores each platform's rollout state from the registry root,
// so a restart resumes exactly where the previous process left off — in
// particular, a restart after a rollback serves the rolled-back-to stable,
// not the newest (bad) checkpoint.
func (s *Server) initLifecycle() error {
	if s.opts.FeedbackDir == "" {
		return nil
	}
	lg, err := feedback.Open(s.opts.FeedbackDir)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	lc := &lifecycle{
		s:             s,
		log:           lg,
		root:          s.opts.RegistryRoot,
		journal:       NewCache(s.opts.FeedbackJournal),
		split:         s.opts.RolloutSplit,
		retrainAfter:  s.opts.RetrainAfter,
		retrainEpochs: s.opts.RetrainEpochs,
		windowSize:    s.opts.QualityWindow,
		gcKeep:        s.opts.GCKeep,
		hcfg: registry.HysteresisConfig{
			MinSamples:     s.opts.MinQualitySamples,
			PromoteMargin:  s.opts.PromoteMargin,
			RollbackMargin: s.opts.RollbackMargin,
			PromoteAfter:   s.opts.PromoteAfter,
			RollbackAfter:  s.opts.RollbackAfter,
		},
		plats: map[string]*platRollout{},
	}
	s.lifecycle = lc
	s.metrics.registerLifecycle(lc)
	lc.restore()
	return nil
}

// restore loads persisted rollout state for every served platform and
// re-anchors the serving defaults to it.
func (lc *lifecycle) restore() {
	if lc.root == "" {
		return
	}
	for _, platform := range lc.s.machineNames() {
		st, err := registry.LoadRollout(lc.root, platform)
		if err != nil {
			lc.s.logger.Warn("rollout: state unreadable, starting fresh", "platform", platform, "err", err)
			continue
		}
		if st == nil {
			continue
		}
		changed := false
		if st.Stable != "" && !lc.s.setDefault(platform, st.Stable) {
			// The recorded stable is not among the served models (pruned or
			// renamed out from under us): re-anchor to the current default.
			lc.s.logger.Warn("rollout: recorded stable not served, re-anchoring",
				"platform", platform, "stable", st.Stable)
			st.Stable = lc.s.defaultModel(platform)
			changed = true
		}
		if st.Candidate != "" && !lc.s.hasModel(platform, st.Candidate) {
			lc.s.logger.Warn("rollout: recorded candidate not served, clearing",
				"platform", platform, "candidate", st.Candidate)
			st.Candidate = ""
			st.Better, st.Worse = 0, 0
			changed = true
		}
		if changed {
			if err := registry.SaveRollout(lc.root, st); err != nil {
				lc.s.logger.Warn("rollout: persist state", "platform", platform, "err", err)
			}
		}
		p := &platRollout{st: st, windows: map[string]*registry.QualityWindow{}}
		lc.plats[platform] = p
		lc.s.logger.Info("rollout: state restored", "platform", platform,
			"stable", st.Stable, "candidate", st.Candidate, "split_pct", st.SplitPct)
	}
}

// plat returns (creating if needed) a platform's rollout state. Callers
// hold lc.mu.
func (lc *lifecycle) platLocked(platform string) *platRollout {
	p, ok := lc.plats[platform]
	if !ok {
		p = &platRollout{
			st:      &registry.RolloutState{Platform: platform, Stable: lc.s.defaultModel(platform)},
			windows: map[string]*registry.QualityWindow{},
		}
		lc.plats[platform] = p
	}
	return p
}

func (lc *lifecycle) count(outcome string) {
	if c, ok := lc.outcomes[outcome]; ok {
		c.Inc()
	}
}

// routedModel resolves the version an unpinned request routes to: "" when
// the platform has no live candidate (the default alias decides), else the
// deterministic A/B verdict for the request's route key — a pure function
// of (key, split), identical across restarts and peers.
func (lc *lifecycle) routedModel(platform, routeKey string) string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	p, ok := lc.plats[platform]
	if !ok || p.st.Candidate == "" {
		return ""
	}
	if registry.RouteCandidate(routeKey, p.st.SplitPct) {
		return p.st.Candidate
	}
	return p.st.Stable
}

// noteAdvise journals a served advise ranking so its points can later be
// measured via /v1/feedback.
func (lc *lifecycle) noteAdvise(p adviseParams, recs []advisor.Recommendation) {
	pts := make(map[journalPoint]float64, len(recs))
	for _, r := range recs {
		pts[journalPoint{r.Kind.String(), r.Teams, r.Threads}] = r.PredictedUS
	}
	lc.journal.Add(p.key, &journalEntry{
		machine:  p.be.machine.Name,
		model:    p.ms.name,
		kernel:   p.k,
		bindings: p.req.Bindings,
		points:   pts,
	})
}

// notePredict journals one served prediction.
func (lc *lifecycle) notePredict(key, machine, model string, k apps.Kernel, req PredictRequest, us float64) {
	lc.journal.Add(key, &journalEntry{
		machine:  machine,
		model:    model,
		kernel:   k,
		bindings: req.Bindings,
		points:   map[journalPoint]float64{{req.Variant, req.Teams, req.Threads}: us},
	})
}

// handleFeedback serves POST /v1/feedback. In cluster mode a submission for
// a key owned by a peer is forwarded there like any keyed write — the owner
// served (and journaled) the original request.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	s.noteForwarded(r)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	lc := s.lifecycle
	if lc == nil {
		s.fail(w, http.StatusConflict, "feedback is disabled (start serve with -feedback-dir)")
		return
	}
	tr := obs.TraceFrom(r.Context())
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFeedbackBody))
	if err != nil {
		lc.count("invalid")
		lc.rejected.Add(1)
		s.fail(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	freq, err := decodeFeedback(raw)
	if err != nil {
		lc.count("invalid")
		lc.rejected.Add(1)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	if targets, _, _ := s.route(s.isForwarded(r), freq.Key); len(targets) > 0 {
		if pr, ok := s.tryForward(ctx, tr, targets, "/v1/feedback", freq); ok {
			s.writeProxied(w, pr)
			return
		}
	}
	resp, status, err := lc.accept(freq)
	if err != nil {
		s.fail(w, status, "%v", err)
		return
	}
	s.writeJSON(w, status, resp)
}

// accept validates one measurement against the journal, appends it to the
// durable log, and runs the rollout evaluation it feeds.
func (lc *lifecycle) accept(freq FeedbackRequest) (FeedbackResponse, int, error) {
	var resp FeedbackResponse
	v, ok := lc.journal.Get(freq.Key)
	if !ok {
		lc.count("unknown_key")
		lc.rejected.Add(1)
		return resp, http.StatusNotFound,
			fmt.Errorf("unknown request key %s (not served recently by this process)", freq.Key)
	}
	je, ok := v.(*journalEntry)
	if !ok {
		lc.count("unknown_key")
		lc.rejected.Add(1)
		return resp, http.StatusNotFound, fmt.Errorf("unknown request key %s", freq.Key)
	}
	var matches []journalPoint
	for pt := range je.points {
		if freq.Variant != "" && pt.variant != freq.Variant {
			continue
		}
		if freq.Teams != 0 && pt.teams != freq.Teams {
			continue
		}
		if freq.Threads != 0 && pt.threads != freq.Threads {
			continue
		}
		matches = append(matches, pt)
	}
	switch {
	case len(matches) == 0:
		lc.count("mismatch")
		lc.rejected.Add(1)
		return resp, http.StatusUnprocessableEntity,
			fmt.Errorf("measured point does not match any point of the original request")
	case len(matches) > 1:
		lc.count("mismatch")
		lc.rejected.Add(1)
		return resp, http.StatusUnprocessableEntity,
			fmt.Errorf("ambiguous point: the original request has %d matching points — specify variant, teams and threads", len(matches))
	}
	pt := matches[0]
	pred := je.points[pt]

	kind, err := kindByName(pt.variant)
	if err != nil {
		lc.count("error")
		lc.rejected.Add(1)
		return resp, http.StatusInternalServerError, fmt.Errorf("rebuild variant: %v", err)
	}
	src, err := variants.Generate(je.kernel, kind, pt.teams, pt.threads)
	if err != nil {
		lc.count("error")
		lc.rejected.Add(1)
		return resp, http.StatusInternalServerError, fmt.Errorf("rebuild variant source: %v", err)
	}
	rec := feedback.Record{
		Key:         freq.Key,
		Platform:    je.machine,
		Model:       je.model,
		Kernel:      je.kernel.Name,
		Variant:     pt.variant,
		Teams:       pt.teams,
		Threads:     pt.threads,
		Bindings:    je.bindings,
		Source:      src,
		PredictedUS: pred,
		MeasuredUS:  freq.MeasuredUS,
		UnixNano:    time.Now().UnixNano(),
	}
	if err := lc.log.Append(rec); err != nil {
		lc.count("error")
		lc.rejected.Add(1)
		return resp, http.StatusInternalServerError, fmt.Errorf("append feedback: %v", err)
	}
	lc.count("accepted")
	lc.accepted.Add(1)

	pairs := lc.observe(je.machine, je.model, pred, freq.MeasuredUS)
	resp = FeedbackResponse{
		Status:      "accepted",
		Platform:    je.machine,
		Model:       je.model,
		Kernel:      je.kernel.Name,
		Variant:     pt.variant,
		Teams:       pt.teams,
		Threads:     pt.threads,
		PredictedUS: pred,
		MeasuredUS:  freq.MeasuredUS,
		Pairs:       pairs,
		ServedBy:    lc.s.servedBy(),
	}
	return resp, http.StatusOK, nil
}

func windowSnapshot(w *registry.QualityWindow) (float64, int) {
	if w == nil {
		return math.NaN(), 0
	}
	corr, n, _ := w.Snapshot()
	return corr, n
}

// observe feeds one (predicted, measured) pair into the serving model's
// quality window, evaluates the promote/rollback hysteresis when a
// candidate is live, and paces the background retrain. Returns the model's
// windowed pair count.
func (lc *lifecycle) observe(platform, model string, pred, meas float64) int {
	lc.mu.Lock()
	p := lc.platLocked(platform)
	w := p.windows[model]
	if w == nil {
		w = registry.NewQualityWindow(lc.windowSize)
		p.windows[model] = w
	}
	w.Add(pred, meas)
	_, pairs := windowSnapshot(w)
	p.sinceRetrain++

	if p.st.Candidate != "" {
		stableCorr, stableN := windowSnapshot(p.windows[p.st.Stable])
		candCorr, candN := windowSnapshot(p.windows[p.st.Candidate])
		switch registry.Observe(p.st, stableCorr, candCorr, stableN, candN, lc.hcfg) {
		case registry.Promote:
			lc.promoteLocked(p, stableCorr, candCorr)
		case registry.Rollback:
			lc.rollbackLocked(p, stableCorr, candCorr)
		}
	}

	startRetrain := false
	if p.st.Candidate == "" && !p.retraining && lc.root != "" &&
		lc.retrainAfter > 0 && p.sinceRetrain >= lc.retrainAfter {
		p.retraining = true
		p.sinceRetrain = 0
		startRetrain = true
	}
	lc.mu.Unlock()

	if startRetrain {
		lc.wg.Add(1)
		go lc.retrain(platform)
	}
	return pairs
}

// promoteLocked makes the candidate the platform's stable and serving
// default, persists the transition, and prunes superseded checkpoints
// under the retention policy. Caller holds lc.mu.
func (lc *lifecycle) promoteLocked(p *platRollout, stableCorr, candCorr float64) {
	old := p.st.Stable
	cand := p.st.Candidate
	p.st.Stable, p.st.Candidate = cand, ""
	p.st.Promotions++
	p.st.Note(registry.RolloutEvent{
		Event: "promote", Stable: cand, Candidate: "",
		StableCorr: stableCorr, CandCorr: candCorr,
	})
	lc.promotions.Add(1)
	lc.s.setDefault(p.st.Platform, cand)
	lc.persistLocked(p)
	lc.gcLocked(p)
	lc.s.logger.Info("rollout: candidate promoted", "platform", p.st.Platform,
		"stable", cand, "superseded", old,
		"stable_corr", stableCorr, "cand_corr", candCorr)
}

// rollbackLocked retires a regressing candidate: unpinned traffic snaps
// back to the stable version, which never stopped serving its share. The
// candidate model stays registered (pinnable for postmortem) and its
// checkpoint stays on disk. Caller holds lc.mu.
func (lc *lifecycle) rollbackLocked(p *platRollout, stableCorr, candCorr float64) {
	cand := p.st.Candidate
	p.st.Candidate = ""
	p.st.Rollbacks++
	p.st.Note(registry.RolloutEvent{
		Event: "rollback", Stable: p.st.Stable, Candidate: cand,
		StableCorr: stableCorr, CandCorr: candCorr,
	})
	lc.rollbacks.Add(1)
	lc.persistLocked(p)
	lc.s.logger.Warn("rollout: candidate rolled back", "platform", p.st.Platform,
		"stable", p.st.Stable, "candidate", cand,
		"stable_corr", stableCorr, "cand_corr", candCorr)
}

// persistLocked writes the platform's rollout state through to disk (a
// no-op without a registry root). Caller holds lc.mu.
func (lc *lifecycle) persistLocked(p *platRollout) {
	if lc.root == "" {
		return
	}
	if err := registry.SaveRollout(lc.root, p.st); err != nil {
		lc.s.logger.Warn("rollout: persist state", "platform", p.st.Platform, "err", err)
	}
}

// gcLocked prunes the platform's superseded checkpoints, unregistering
// pruned versions from serving (their predictions would go non-finite once
// the weights files are gone). Caller holds lc.mu.
func (lc *lifecycle) gcLocked(p *platRollout) {
	if lc.root == "" || lc.gcKeep < 0 {
		return
	}
	res, err := registry.GC(lc.root, p.st.Platform,
		[]string{p.st.Stable, p.st.Candidate}, registry.GCPolicy{KeepLast: lc.gcKeep})
	if err != nil {
		lc.s.logger.Warn("rollout: checkpoint gc", "platform", p.st.Platform, "err", err)
	}
	for _, name := range res.Removed {
		lc.s.removeModel(p.st.Platform, name)
		delete(p.windows, name)
		lc.gcRemoved.Add(1)
	}
	if len(res.Removed) > 0 {
		lc.s.logger.Info("rollout: checkpoints pruned", "platform", p.st.Platform,
			"removed", res.Removed, "kept", res.Kept)
	}
}

// retrain runs one background retrain for a platform and adopts the result
// as the live candidate.
func (lc *lifecycle) retrain(platform string) {
	defer lc.wg.Done()
	lc.retrains.Add(1)
	if err := lc.runRetrain(platform); err != nil {
		lc.retrainErrors.Add(1)
		lc.s.logger.Warn("rollout: retrain failed", "platform", platform, "err", err)
	}
	lc.mu.Lock()
	if p, ok := lc.plats[platform]; ok {
		p.retraining = false
	}
	lc.mu.Unlock()
}

func (lc *lifecycle) runRetrain(platform string) error {
	recs, skipped, err := lc.log.Read(platform)
	if err != nil {
		return err
	}
	if skipped > 0 {
		lc.s.logger.Warn("rollout: torn/malformed feedback lines skipped",
			"platform", platform, "skipped", skipped)
	}
	// MinRecords follows the retrain pacing so small thresholds (tests,
	// low-traffic tiers) are honored, capped at the registry default.
	minRecords := lc.retrainAfter
	if minRecords > 20 {
		minRecords = 20
	}
	res, err := registry.RetrainFromFeedback(lc.root, platform, recs, registry.RetrainOptions{
		SplitPct:   lc.split,
		Epochs:     lc.retrainEpochs,
		Seed:       time.Now().UnixNano(),
		MinRecords: minRecords,
	})
	if err != nil {
		return err
	}

	// Adopt the candidate: load it resident (float32 inference, like the
	// serving default) and register it before flipping the rollout pointer,
	// so routing never names a version that is not yet servable. Metric
	// registration happens outside lc.mu (lock-ordering contract above).
	model, cp, err := registry.LoadCheckpoint(res.Candidate.Dir, true)
	if err != nil {
		return err
	}
	man := cp.Manifest
	level, err := registry.ParseLevel(man.Level)
	if err != nil {
		return err
	}
	prep := &dataset.Prepared{
		TargetScaler: man.Scalers.Target,
		TeamScaler:   man.Scalers.Team,
		ThreadScaler: man.Scalers.Thread,
		WScale:       man.Scalers.WScale,
	}
	ms, err := lc.s.addModel(platform, man.Name, model, prep, ModelInfo{
		Level:     level,
		Source:    "feedback",
		Hidden:    man.Config.Hidden,
		Layers:    man.Config.Layers,
		Params:    man.Params,
		Epochs:    man.Train.Epochs,
		ValRMSE:   man.Train.FinalValRMSE,
		CreatedAt: man.CreatedAt,
	})
	if err != nil {
		return err
	}
	lc.s.metrics.registerModel(platform, man.Name, ms)

	lc.mu.Lock()
	p := lc.platLocked(platform)
	// RetrainFromFeedback already wrote the authoritative rollout state;
	// mirror it in memory (preserving history) rather than re-deriving.
	if st, err := registry.LoadRollout(lc.root, platform); err == nil && st != nil {
		p.st = st
	} else {
		p.st.Stable = res.Stable
		p.st.Candidate = man.Name
		p.st.SplitPct = lc.split
		p.st.Better, p.st.Worse = 0, 0
	}
	if p.windows[man.Name] == nil {
		p.windows[man.Name] = registry.NewQualityWindow(lc.windowSize)
	}
	lc.mu.Unlock()

	lc.s.logger.Info("rollout: candidate adopted", "platform", platform,
		"stable", res.Stable, "candidate", man.Name, "split_pct", lc.split,
		"train_samples", res.TrainSamples, "val_samples", res.ValSamples,
		"val_rmse", res.FinalValRMSE)
	return nil
}

// ModelQuality is one model version's online quality view in /v1/stats.
type ModelQuality struct {
	Name string `json:"name"`
	// RankCorr is the windowed Spearman correlation between predicted and
	// measured runtimes; nil until computable (fewer than 3 pairs, or a
	// constant series).
	RankCorr *float64 `json:"rank_corr,omitempty"`
	Pairs    int      `json:"pairs"`
	Total    uint64   `json:"total"`
}

// RolloutStats is one platform's rollout view in /v1/stats.
type RolloutStats struct {
	Platform     string         `json:"platform"`
	Stable       string         `json:"stable"`
	Candidate    string         `json:"candidate,omitempty"`
	SplitPct     float64        `json:"split_pct,omitempty"`
	Better       int            `json:"better,omitempty"`
	Worse        int            `json:"worse,omitempty"`
	Promotions   uint64         `json:"promotions,omitempty"`
	Rollbacks    uint64         `json:"rollbacks,omitempty"`
	SinceRetrain int            `json:"since_retrain,omitempty"`
	Retraining   bool           `json:"retraining,omitempty"`
	Models       []ModelQuality `json:"models,omitempty"`
}

// LifecycleStats is the /v1/stats lifecycle section; nil when the loop is
// disabled, keeping the prior payload byte-identical.
type LifecycleStats struct {
	FeedbackAccepted uint64         `json:"feedback_accepted"`
	FeedbackRejected uint64         `json:"feedback_rejected"`
	Retrains         uint64         `json:"retrains"`
	RetrainErrors    uint64         `json:"retrain_errors,omitempty"`
	Promotions       uint64         `json:"promotions"`
	Rollbacks        uint64         `json:"rollbacks"`
	GCRemoved        uint64         `json:"gc_removed,omitempty"`
	Rollouts         []RolloutStats `json:"rollouts,omitempty"`
}

func (lc *lifecycle) stats() *LifecycleStats {
	out := &LifecycleStats{
		FeedbackAccepted: lc.accepted.Load(),
		FeedbackRejected: lc.rejected.Load(),
		Retrains:         lc.retrains.Load(),
		RetrainErrors:    lc.retrainErrors.Load(),
		Promotions:       lc.promotions.Load(),
		Rollbacks:        lc.rollbacks.Load(),
		GCRemoved:        lc.gcRemoved.Load(),
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, platform := range lc.s.machineNames() {
		p, ok := lc.plats[platform]
		if !ok {
			continue
		}
		rs := RolloutStats{
			Platform:     platform,
			Stable:       p.st.Stable,
			Candidate:    p.st.Candidate,
			SplitPct:     p.st.SplitPct,
			Better:       p.st.Better,
			Worse:        p.st.Worse,
			Promotions:   p.st.Promotions,
			Rollbacks:    p.st.Rollbacks,
			SinceRetrain: p.sinceRetrain,
			Retraining:   p.retraining,
		}
		for _, name := range sortedWindowNames(p.windows) {
			corr, n, total := p.windows[name].Snapshot()
			mq := ModelQuality{Name: name, Pairs: n, Total: total}
			if !math.IsNaN(corr) {
				c := corr
				mq.RankCorr = &c
			}
			rs.Models = append(rs.Models, mq)
		}
		out.Rollouts = append(out.Rollouts, rs)
	}
	return out
}

// annotate fills a /v1/models entry's rollout fields for one version.
func (lc *lifecycle) annotate(platform, name string, d *ModelDesc) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	p, ok := lc.plats[platform]
	if !ok {
		return
	}
	switch name {
	case p.st.Candidate:
		d.Role = "candidate"
		d.RolloutSplit = p.st.SplitPct
	case p.st.Stable:
		d.Role = "stable"
		if p.st.Candidate != "" {
			d.RolloutSplit = 100 - p.st.SplitPct
		}
	}
	if w := p.windows[name]; w != nil {
		corr, n, _ := w.Snapshot()
		d.FeedbackPairs = n
		if !math.IsNaN(corr) {
			c := corr
			d.RankCorr = &c
		}
	}
}

// collectRollout feeds the scrape-time rollout gauges (stage, split, rank
// correlation, pair counts) under lc.mu.
func (lc *lifecycle) collectRollout(visit func(platform string, p *platRollout)) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, platform := range lc.s.machineNames() {
		if p, ok := lc.plats[platform]; ok {
			visit(platform, p)
		}
	}
}

func sortedWindowNames(ws map[string]*registry.QualityWindow) []string {
	names := make([]string, 0, len(ws))
	for name := range ws {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
