package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"paragraph/internal/shard"
)

// Cluster mode: N serve processes share one consistent-hash ring over the
// content-addressed request keys (internal/shard), so every advise/predict
// key has exactly one owning peer. A request landing on a non-owner is
// proxied to its owner — the owner's cache and singleflight see all traffic
// for its keys, which makes the tier's aggregate cache capacity scale with
// N instead of every peer re-earning every entry. Forwarding is strictly
// best-effort: if the owner is unreachable the receiving peer serves the
// request locally (degraded — a duplicate evaluation, never a failure),
// and a loop-guard header caps any request at one forwarding hop even
// while peers' member lists disagree mid-rollout.

// ClusterConfig puts a Server into cluster mode. Self and Peers are peer
// base URLs ("http://host:port"); every peer of a cluster must be started
// with the same Peers list (order does not matter — the ring sorts) and
// its own Self.
type ClusterConfig struct {
	// Self is this process's base URL as the other peers reach it. It is
	// added to the member set if Peers omits it.
	Self string
	// Peers is the full member list, normally including Self.
	Peers []string
	// VNodes is the virtual-node count per member (<= 0 = shard.DefaultVNodes).
	VNodes int
	// ForwardTimeout bounds one proxied request (<= 0 = shard default).
	ForwardTimeout time.Duration
	// MaxPeerConns caps connections per peer (<= 0 = shard default).
	MaxPeerConns int
}

// cluster is the Server's live cluster state.
type cluster struct {
	self string
	ring *shard.Ring
	fwd  *shard.Forwarder

	forwardedIn atomic.Uint64 // requests received already forwarded by a peer
	fallbacks   atomic.Uint64 // owner unreachable, served locally instead
}

// NormalizePeerURL validates a peer base URL and strips the trailing slash
// so ring membership comparison is exact. cmd/serve calls it during flag
// validation to reject bad -self/-peers before the expensive backend build;
// EnableCluster applies it again so programmatic callers get the same
// normalization.
func NormalizePeerURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("serve: peer URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("serve: peer URL %q must be http(s)://host:port", raw)
	}
	if u.Host == "" || u.Path != "" || u.RawQuery != "" {
		return "", fmt.Errorf("serve: peer URL %q must be a bare base URL", raw)
	}
	return raw, nil
}

// EnableCluster switches the server into cluster mode. Call it after
// NewServer and before serving traffic; a server without it behaves
// exactly as before (every request served locally, /v1/ring reports
// enabled=false).
func (s *Server) EnableCluster(cfg ClusterConfig) error {
	if s.cluster != nil {
		return fmt.Errorf("serve: cluster mode already enabled")
	}
	self, err := NormalizePeerURL(cfg.Self)
	if err != nil {
		return fmt.Errorf("serve: -self: %w", err)
	}
	members := make([]string, 0, len(cfg.Peers)+1)
	for _, p := range cfg.Peers {
		m, err := NormalizePeerURL(p)
		if err != nil {
			return err
		}
		members = append(members, m)
	}
	ring, err := shard.NewRing(append(members, self), cfg.VNodes)
	if err != nil {
		return err
	}
	s.cluster = &cluster{
		self: self,
		ring: ring,
		fwd: shard.NewForwarder(self, shard.ForwardOptions{
			Timeout:         cfg.ForwardTimeout,
			MaxConnsPerPeer: cfg.MaxPeerConns,
		}),
	}
	return nil
}

// noteForwarded counts an incoming peer-forwarded request. Called at
// handler entry so the counter reflects every forwarded arrival, cache hit
// or miss, matching its documented "requests received already forwarded"
// semantics.
func (s *Server) noteForwarded(r *http.Request) {
	if c := s.cluster; c != nil && r.Header.Get(shard.ForwardedByHeader) != "" {
		c.forwardedIn.Add(1)
	}
}

// route decides where a request with the given content-addressed key is
// served. It returns ("", false) for local serving; (owner, true) means the
// caller should try forwarding to owner first. A request that already
// carries the loop-guard header is always local — that is what breaks
// forwarding cycles when two peers' rings disagree.
func (s *Server) route(r *http.Request, key string) (string, bool) {
	c := s.cluster
	if c == nil {
		return "", false
	}
	if r.Header.Get(shard.ForwardedByHeader) != "" {
		return "", false
	}
	owner := c.ring.Owner(key)
	if owner == c.self {
		return "", false
	}
	return owner, true
}

// proxiedResponse is a peer's verbatim answer, carried through the
// singleflight so every request sharing the flight relays the same bytes.
type proxiedResponse struct {
	status int
	body   []byte
}

// tryForward marshals req and forwards it to owner. ok=false means the
// owner was unreachable (the fallback is counted) and the caller must
// evaluate locally — degraded, never failing. The owner's HTTP errors are
// authoritative answers and come back ok=true, relayed not retried.
func (s *Server) tryForward(owner, path string, req any) (proxiedResponse, bool) {
	body, err := json.Marshal(req)
	if err != nil {
		return proxiedResponse{}, false
	}
	status, respBody, err := s.cluster.fwd.Forward(owner, path, body)
	if err != nil {
		s.cluster.fallbacks.Add(1)
		return proxiedResponse{}, false
	}
	return proxiedResponse{status: status, body: respBody}, true
}

// writeProxied relays a peer's response verbatim.
func (s *Server) writeProxied(w http.ResponseWriter, pr proxiedResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(pr.status)
	_, _ = w.Write(pr.body)
}

// servedBy names this process in responses it computed (or answered from
// its own cache); "" outside cluster mode keeps the field omitted.
func (s *Server) servedBy() string {
	if s.cluster == nil {
		return ""
	}
	return s.cluster.self
}

// RingMember is one peer's row in the /v1/ring payload.
type RingMember struct {
	Peer string `json:"peer"`
	Self bool   `json:"self,omitempty"`
	// Ownership is the exact fraction of the key space this peer owns.
	Ownership float64 `json:"ownership"`
	// Forwards counts requests this process proxied to the peer and got an
	// answer for; Errors counts failed proxy attempts (each one fell back
	// to local serving). Both are zero for Self.
	Forwards uint64 `json:"forwards,omitempty"`
	Errors   uint64 `json:"errors,omitempty"`
}

// RingResponse is the GET /v1/ring payload (also embedded in /v1/stats as
// "cluster"). Outside cluster mode only Enabled=false is meaningful.
type RingResponse struct {
	Enabled bool         `json:"enabled"`
	Self    string       `json:"self,omitempty"`
	VNodes  int          `json:"vnodes,omitempty"`
	Members []RingMember `json:"members,omitempty"`
	// ForwardedIn counts requests that arrived already forwarded by a peer
	// (this process answered them as owner). Deliberately not omitempty:
	// operators and the CI smoke read these as plain numbers even at zero.
	ForwardedIn uint64 `json:"forwarded_in"`
	// LocalFallbacks counts requests this process owned out to a peer that
	// was unreachable and served locally instead.
	LocalFallbacks uint64 `json:"local_fallbacks"`
}

// Ring snapshots the cluster view (the /v1/ring payload).
func (s *Server) Ring() RingResponse {
	c := s.cluster
	if c == nil {
		return RingResponse{Enabled: false}
	}
	resp := RingResponse{
		Enabled:        true,
		Self:           c.self,
		VNodes:         c.ring.VNodes(),
		ForwardedIn:    c.forwardedIn.Load(),
		LocalFallbacks: c.fallbacks.Load(),
	}
	ownership := c.ring.Ownership()
	peerStats := map[string]shard.PeerStats{}
	for _, ps := range c.fwd.Stats() {
		peerStats[ps.Peer] = ps
	}
	for _, m := range c.ring.Members() {
		resp.Members = append(resp.Members, RingMember{
			Peer:      m,
			Self:      m == c.self,
			Ownership: ownership[m],
			Forwards:  peerStats[m].Forwards,
			Errors:    peerStats[m].Errors,
		})
	}
	return resp
}

func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	s.counters.ring.Add(1)
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.writeJSON(w, http.StatusOK, s.Ring())
}
