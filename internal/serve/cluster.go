package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"paragraph/internal/advisor"
	"paragraph/internal/obs"
	"paragraph/internal/shard"
)

// Cluster mode: N serve processes share one consistent-hash ring over the
// content-addressed request keys (internal/shard), so every advise/predict
// key has a deterministic owner list — the first `rf` distinct peers
// clockwise from the key's hash (Ring.Owners). Owners[0] is the primary:
// a request landing elsewhere is proxied to it, so the primary's cache and
// singleflight see all traffic for its keys and the tier's aggregate cache
// capacity scales with N instead of every peer re-earning every entry.
//
// With Replication > 1 the remaining owners are replicas: when the primary
// evaluates a miss it writes the finished entry through to them via the
// bounded fire-and-forget POST /v1/replicate path, and when the primary is
// unreachable a forwarding peer tries the replicas in successor order
// before degrading to local evaluation. One peer death therefore costs a
// forwarding detour, never the recomputation of that peer's cache.
// Forwarding stays strictly best-effort: if every owner is unreachable the
// receiving peer serves the request locally (degraded — a duplicate
// evaluation, never a failure), and a loop-guard header caps any request
// at one forwarding hop even while peers' member lists disagree
// mid-rollout. docs/ARCHITECTURE.md walks the full state machine.

// ClusterConfig puts a Server into cluster mode. Self and Peers are peer
// base URLs ("http://host:port"); every peer of a cluster must be started
// with the same Peers list (order does not matter — the ring sorts) and
// its own Self.
type ClusterConfig struct {
	// Self is this process's base URL as the other peers reach it. It is
	// added to the member set if Peers omits it.
	Self string
	// Peers is the static member bootstrap, normally including Self. It
	// seeds the dynamic membership — peers listed here but never started
	// are evicted by the failure detector like any other silent member.
	// May be empty when Seeds is set.
	Peers []string
	// Seeds are existing cluster members to join through instead of (or in
	// addition to) a static Peers list: the server starts as a
	// single-member ring and a background loop POSTs /v1/cluster/join to
	// each seed in turn until one admits it.
	Seeds []string
	// VNodes is the virtual-node count per member (<= 0 = shard.DefaultVNodes).
	VNodes int
	// ForwardTimeout bounds one proxied request (<= 0 = shard default).
	ForwardTimeout time.Duration
	// MaxPeerConns caps connections per peer (<= 0 = shard default).
	MaxPeerConns int
	// Replication is how many ring successors own each key (the tier's
	// RF). 1 — or 0, the zero value — keeps the original single-owner
	// behavior with no replication traffic at all; values above the
	// current ring size are clamped to it at use time. Every peer must use
	// the same value.
	Replication int
	// ReplicationQueue bounds the async write-through queue; posts beyond
	// it are dropped, never blocked on (<= 0 = shard default).
	ReplicationQueue int
	// Heartbeat is the gossip interval (0 = 1s default; < 0 disables the
	// background gossip/join/anti-entropy loops entirely — tests drive the
	// state machine by hand).
	Heartbeat time.Duration
	// SuspectAfter marks a silent member suspect in /v1/ring health
	// (0 = 3× Heartbeat).
	SuspectAfter time.Duration
	// EvictAfter declares a silent member dead and drops it from the ring
	// (0 = 10× Heartbeat). It must dominate the heartbeat by a comfortable
	// multiple or healthy peers evict each other on jitter.
	EvictAfter time.Duration
	// AntiEntropy is the self-healing sweep interval: how often this peer
	// diffs the ring's owner lists against its local cache and pulls the
	// replica entries it should hold but does not (0 = 30s default; < 0
	// disables the sweep).
	AntiEntropy time.Duration
	// DrainTimeout bounds a planned departure's key handoff
	// (0 = 30s default).
	DrainTimeout time.Duration
	// RefillConcurrency caps concurrent anti-entropy entry fetches
	// (0 = 4) so a refill never starves the serving path.
	RefillConcurrency int
}

// cluster is the Server's live cluster state. The ring is no longer a
// fixed field: membership owns it and swaps in a new epoch-stamped ring on
// every join, departure or eviction — the request path reads the current
// snapshot through ring().
type cluster struct {
	self string
	mem  *shard.Membership
	fwd  *shard.Forwarder
	rf   int // configured replication factor, >= 1; clamped per-use by Owners

	seeds         []string
	heartbeat     time.Duration
	antiEntropy   time.Duration
	drainTimeout  time.Duration
	refillWorkers int

	quit     chan struct{}
	bg       sync.WaitGroup
	stopOnce sync.Once
	joined   atomic.Bool // a seed admitted us (or no seeds were needed)
	draining atomic.Bool // a planned departure started

	forwardedIn  atomic.Uint64 // requests received already forwarded by a peer
	fallbacks    atomic.Uint64 // every owner unreachable, served locally instead
	replicaHits  atomic.Uint64 // forwards answered by a replica after the primary failed
	repWrites    atomic.Uint64 // cache entries enqueued for write-through to replicas
	repDrops     atomic.Uint64 // write-throughs dropped (queue full)
	replicatedIn atomic.Uint64 // cache entries accepted via POST /v1/replicate

	joinsIn    atomic.Uint64 // join requests admitted by this peer
	gossipIn   atomic.Uint64 // gossip exchanges received
	gossipOut  atomic.Uint64 // gossip exchanges sent and answered
	gossipErrs atomic.Uint64 // gossip/join sends that reached no peer
	pruned     atomic.Uint64 // peer clients dropped on ring rebuilds

	aeSweeps      atomic.Uint64 // anti-entropy sweeps completed
	aeRefills     atomic.Uint64 // cache entries pulled in by anti-entropy
	aeErrs        atomic.Uint64 // anti-entropy key-list or entry fetches that failed
	lastSweepUnix atomic.Int64  // when the last sweep finished

	readRepairs  atomic.Uint64 // owned misses answered by pulling a co-owner's copy
	repairMisses atomic.Uint64 // read-repair attempts no co-owner could answer
	drainedOut   atomic.Uint64 // cache entries streamed to new owners during drain
}

// ring returns the current ring snapshot — nil only after this peer
// departed a single-member cluster. Hold the returned pointer across
// related calls for a consistent view.
func (c *cluster) ring() *shard.Ring { return c.mem.Ring() }

// NormalizePeerURL validates a peer base URL and strips the trailing slash
// so ring membership comparison is exact. cmd/serve calls it during flag
// validation to reject bad -self/-peers before the expensive backend build;
// EnableCluster applies it again so programmatic callers get the same
// normalization.
func NormalizePeerURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("serve: peer URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("serve: peer URL %q must be http(s)://host:port", raw)
	}
	if u.Host == "" || u.Path != "" || u.RawQuery != "" {
		return "", fmt.Errorf("serve: peer URL %q must be a bare base URL", raw)
	}
	return raw, nil
}

// EnableCluster switches the server into cluster mode. Call it after
// NewServer and before serving traffic; a server without it behaves
// exactly as before (every request served locally, /v1/ring reports
// enabled=false).
func (s *Server) EnableCluster(cfg ClusterConfig) error {
	if s.cluster != nil {
		return fmt.Errorf("serve: cluster mode already enabled")
	}
	self, err := NormalizePeerURL(cfg.Self)
	if err != nil {
		return fmt.Errorf("serve: -self: %w", err)
	}
	members := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		m, err := NormalizePeerURL(p)
		if err != nil {
			return err
		}
		members = append(members, m)
	}
	seeds := make([]string, 0, len(cfg.Seeds))
	for _, p := range cfg.Seeds {
		m, err := NormalizePeerURL(p)
		if err != nil {
			return fmt.Errorf("serve: -seed: %w", err)
		}
		if m != self {
			seeds = append(seeds, m)
		}
	}
	if cfg.Replication < 0 {
		return fmt.Errorf("serve: replication factor %d must be >= 1", cfg.Replication)
	}
	rf := cfg.Replication
	if rf < 1 {
		rf = 1
	}
	heartbeat := cfg.Heartbeat
	loops := heartbeat >= 0
	if heartbeat <= 0 {
		// Negative disables the loops but keeps a sane interval for the
		// per-exchange timeouts of hand-driven rounds (tests).
		heartbeat = time.Second
	}
	suspectAfter := cfg.SuspectAfter
	if suspectAfter <= 0 {
		suspectAfter = 3 * heartbeat
	}
	evictAfter := cfg.EvictAfter
	if evictAfter <= 0 {
		evictAfter = 10 * heartbeat
	}
	antiEntropy := cfg.AntiEntropy
	if antiEntropy == 0 {
		antiEntropy = 30 * time.Second
	}
	drainTimeout := cfg.DrainTimeout
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	refill := cfg.RefillConcurrency
	if refill <= 0 {
		refill = 4
	}
	c := &cluster{
		self:          self,
		rf:            rf,
		seeds:         seeds,
		heartbeat:     heartbeat,
		antiEntropy:   antiEntropy,
		drainTimeout:  drainTimeout,
		refillWorkers: refill,
		quit:          make(chan struct{}),
		fwd: shard.NewForwarder(self, shard.ForwardOptions{
			Timeout:         cfg.ForwardTimeout,
			MaxConnsPerPeer: cfg.MaxPeerConns,
			AsyncQueue:      cfg.ReplicationQueue,
		}),
	}
	mem, err := shard.NewMembership(shard.MembershipConfig{
		Self:         self,
		Peers:        members,
		VNodes:       cfg.VNodes,
		SuspectAfter: suspectAfter,
		EvictAfter:   evictAfter,
		// Every ring swap prunes the forwarder's peer clients down to the
		// new member set, closing departed peers' idle connections — the
		// membership-shrink counterpart of the lazily created clients.
		OnChange: func(ring *shard.Ring, _ uint64) {
			var keep []string
			if ring != nil {
				keep = ring.Members()
			}
			if n := c.fwd.Prune(keep); n > 0 {
				c.pruned.Add(uint64(n))
			}
		},
	})
	if err != nil {
		return err
	}
	c.mem = mem
	c.joined.Store(len(seeds) == 0)
	s.cluster = c
	s.metrics.registerCluster(c)
	if loops {
		s.startClusterLoops()
	}
	return nil
}

// noteForwarded counts an incoming peer-forwarded request. Called at
// handler entry so the counter reflects every forwarded arrival, cache hit
// or miss, matching its documented "requests received already forwarded"
// semantics.
func (s *Server) noteForwarded(r *http.Request) {
	if c := s.cluster; c != nil && r.Header.Get(shard.ForwardedByHeader) != "" {
		c.forwardedIn.Add(1)
	}
}

// isForwarded reports whether r already carries the loop-guard header (it
// was forwarded here by a peer and must be served locally).
func (s *Server) isForwarded(r *http.Request) bool {
	return r.Header.Get(shard.ForwardedByHeader) != ""
}

// route decides where a request with the given content-addressed key is
// served. targets is the ordered list of peers to try — the key's primary
// owner first, then its replicas in successor order, self excluded; empty
// targets means serve locally without trying anyone, because cluster mode
// is off, the request already carries the loop-guard header (that is what
// breaks forwarding cycles when two peers' rings disagree — forwarded
// reports it), or this process is the key's primary owner. owners is the
// key's full owner list (nil at rf=1, when no write-through can happen)
// and owned reports whether this process is on it: an owned miss that
// ends up evaluated locally is written through to the other owners
// afterwards (replicate, which reuses the list rather than re-walking the
// ring).
func (s *Server) route(forwarded bool, key string) (targets, owners []string, owned bool) {
	c := s.cluster
	if c == nil {
		return nil, nil, false
	}
	// One ring snapshot per request: membership may swap the ring between
	// statements, but a single request must route against one epoch.
	ring := c.ring()
	if ring == nil {
		// Self departed and no other member remains: serve locally.
		return nil, nil, false
	}
	if c.rf == 1 {
		// Single-owner fast path: no successor list to build (Owner is an
		// allocation-free binary search), and with no replicas owned only
		// gates a write-through that can never happen.
		owner := ring.Owner(key)
		if owner == c.self || forwarded {
			return nil, nil, owner == c.self
		}
		return []string{owner}, nil, false
	}
	owners = ring.Owners(key, c.rf)
	if forwarded {
		// Forced local: still report ownership so a primary evaluating a
		// forwarded-in miss replicates the result.
		for _, o := range owners {
			if o == c.self {
				return nil, owners, true
			}
		}
		return nil, owners, false
	}
	if owners[0] == c.self {
		return nil, owners, true
	}
	targets = make([]string, 0, len(owners))
	for _, o := range owners {
		if o == c.self {
			owned = true
			continue
		}
		targets = append(targets, o)
	}
	return targets, owners, owned
}

// proxiedResponse is a peer's verbatim answer, carried through the
// singleflight so every request sharing the flight relays the same bytes.
type proxiedResponse struct {
	status int
	body   []byte
}

// tryForward marshals req and forwards it to the targets in successor
// order — the primary owner first, then the replicas — relaying the first
// answer it gets. ok=false means every target was unreachable (one local
// fallback is counted) and the caller must evaluate locally — degraded,
// never failing. An answer from any target after the first is counted as a
// replica hit: the primary was down but the tier's warmth survived on a
// successor. A target's HTTP errors are authoritative answers and come
// back ok=true, relayed not retried. The hop is recorded as a "forward"
// span on tr, annotated with the answering peer (or "unreachable"), and
// carries tr's id so the answering peer's trace joins this request's, and
// ctx's remaining deadline budget so the peer sheds by the same clock the
// origin would.
func (s *Server) tryForward(ctx context.Context, tr *obs.Trace, targets []string, path string, req any) (proxiedResponse, bool) {
	body, err := json.Marshal(req)
	if err != nil {
		return proxiedResponse{}, false
	}
	meta := shard.Meta{TraceID: tr.ID(), Deadline: remainingBudget(ctx)}
	sp := tr.StartSpan("forward")
	for i, t := range targets {
		status, respBody, err := s.cluster.fwd.Forward(ctx, t, path, body, meta)
		if err != nil {
			continue
		}
		if i > 0 {
			s.cluster.replicaHits.Add(1)
		}
		sp.Annotate(t)
		sp.End()
		return proxiedResponse{status: status, body: respBody}, true
	}
	s.cluster.fallbacks.Add(1)
	sp.Annotate("unreachable")
	sp.End()
	return proxiedResponse{}, false
}

// replicate writes a freshly evaluated cache entry through to the key's
// other owners, fire-and-forget: each write rides the forwarder's bounded
// async queue (dropped under backpressure, never blocking the request that
// produced the entry) and the receiving peer's /v1/replicate handler only
// inserts into its local cache — it never forwards or re-replicates, so
// replication traffic cannot cycle. owners and owned come from route for
// the same request (one ring walk serves both routing and write-through);
// only an owner replicates — a non-owner that evaluated a key because
// every owner was down has nowhere useful to write. traceID ("" =
// untraced) attributes the write-through to the request that produced the
// entry on the receiving peer's trace ring.
func (s *Server) replicate(key string, val any, owners []string, owned bool, traceID string) {
	c := s.cluster
	if c == nil || c.rf < 2 || !owned || len(owners) == 0 {
		return
	}
	body, err := marshalReplicate(key, val)
	if err != nil {
		return
	}
	for _, o := range owners {
		if o == c.self {
			continue
		}
		if c.fwd.ForwardAsync(o, "/v1/replicate", body, traceID) {
			c.repWrites.Add(1)
		} else {
			c.repDrops.Add(1)
		}
	}
}

// maxReplicateBytes bounds one /v1/replicate body. Entries are ranked
// grids (at most a few hundred recommendations, plus transformed sources),
// far below this; the cap exists so a confused or hostile peer cannot make
// the handler buffer arbitrary payloads.
const maxReplicateBytes = 4 << 20

// handleReplicate accepts a write-through from a peer that just evaluated
// a key this process replicates. The body is the cache-snapshot schema
// (snapshot.go) holding one entry; it is inserted into the local
// advise-response cache and nothing else happens — no forwarding, no
// re-replication, no evaluation — which is the loop guard that keeps
// replication traffic acyclic by construction.
//
// The sender must identify itself as a known member via the forwarded-by
// header (the forwarder's async path sets it). This is trust-model
// consistency, not authentication — the tier has none anywhere — but it
// keeps the only cache-writing endpoint from accepting writes from
// clients that know nothing about the cluster. Known deliberately includes
// tombstoned members, not just current ring members: a draining peer's
// final key handoff arrives after its departure tombstone, and an evicted
// peer's in-flight write-throughs race its eviction — both carry entries
// worth keeping.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	c := s.cluster
	if c == nil {
		s.fail(w, http.StatusConflict, "replication requires cluster mode")
		return
	}
	if from := r.Header.Get(shard.ForwardedByHeader); !c.mem.Knows(from) {
		s.fail(w, http.StatusForbidden, "replicate writes must come from a known cluster member")
		return
	}
	n, err := s.RestoreCache(http.MaxBytesReader(w, r.Body, maxReplicateBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad replicate body: %v", err)
		return
	}
	c.replicatedIn.Add(uint64(n))
	s.writeJSON(w, http.StatusOK, map[string]int{"accepted": n})
}

// marshalReplicate renders one cache entry in the snapshot schema, the
// wire format of POST /v1/replicate.
func marshalReplicate(key string, val any) ([]byte, error) {
	snap := cacheSnapshot{Version: snapshotVersion}
	switch v := val.(type) {
	case []advisor.Recommendation:
		snap.Advise = []adviseSnap{adviseSnapOf(key, v)}
	case float64:
		snap.Predict = []predictSnap{{Key: key, US: v}}
	default:
		return nil, fmt.Errorf("serve: unreplicatable cache value %T", val)
	}
	return json.Marshal(snap)
}

// writeProxied relays a peer's response verbatim.
func (s *Server) writeProxied(w http.ResponseWriter, pr proxiedResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(pr.status)
	_, _ = w.Write(pr.body)
}

// servedBy names this process in responses it computed (or answered from
// its own cache); "" outside cluster mode keeps the field omitted.
func (s *Server) servedBy() string {
	if s.cluster == nil {
		return ""
	}
	return s.cluster.self
}

// RingMember is one peer's row in the /v1/ring payload.
type RingMember struct {
	Peer string `json:"peer"`
	Self bool   `json:"self,omitempty"`
	// Ownership is the exact fraction of the key space this peer owns.
	Ownership float64 `json:"ownership"`
	// Forwards counts requests this process proxied to the peer and got an
	// answer for; Errors counts failed proxy attempts (each one fell back
	// to local serving). Both are zero for Self.
	Forwards uint64 `json:"forwards,omitempty"`
	Errors   uint64 `json:"errors,omitempty"`
	// Status is the member's gossip state ("alive"; ring members are
	// always alive) and Suspect this observer's staleness judgment: the
	// member's record has stopped advancing but has not yet crossed the
	// eviction deadline.
	Status  string `json:"status,omitempty"`
	Suspect bool   `json:"suspect,omitempty"`
	// AgeSeconds is how long ago this observer last saw the member's
	// gossip record advance (0 for Self between heartbeats).
	AgeSeconds float64 `json:"age_seconds,omitempty"`
}

// DepartedMember is a tombstoned peer in the membership section: "left"
// for a planned departure, "dead" for an eviction verdict.
type DepartedMember struct {
	Peer   string `json:"peer"`
	Status string `json:"status"`
}

// MembershipStats is the gossip-membership section of /v1/ring, present
// whenever cluster mode is on.
type MembershipStats struct {
	// Joined reports whether this peer is past its seed join (always true
	// without -seed).
	Joined bool `json:"joined"`
	// Draining reports a planned departure in progress (or completed).
	Draining bool `json:"draining,omitempty"`
	// JoinsIn counts join requests this peer admitted.
	JoinsIn uint64 `json:"joins_in"`
	// GossipSent counts heartbeat exchanges this peer initiated and got
	// answered; GossipReceived counts exchanges it answered;
	// GossipErrors counts sends that reached no peer.
	GossipSent     uint64 `json:"gossip_sent"`
	GossipReceived uint64 `json:"gossip_received"`
	GossipErrors   uint64 `json:"gossip_errors"`
	// Evictions counts dead verdicts this peer issued itself;
	// Refutations counts tombstones about itself it overrode.
	Evictions   uint64 `json:"evictions"`
	Refutations uint64 `json:"refutations"`
	// PrunedClients counts peer HTTP clients dropped on ring rebuilds.
	PrunedClients uint64 `json:"pruned_clients,omitempty"`
	// DrainedOut counts cache entries streamed to their new owners during
	// this peer's planned departure.
	DrainedOut uint64 `json:"drained_out,omitempty"`
	// Departed lists tombstoned peers, sorted by name.
	Departed []DepartedMember `json:"departed,omitempty"`
}

// AntiEntropyStats is the self-healing section of /v1/ring: the background
// sweep that pulls replica entries this peer should hold but does not,
// plus the read-repair counters from the request path.
type AntiEntropyStats struct {
	// Sweeps counts completed sweeps; LastSweepUnix is when the latest
	// finished (0 = never).
	Sweeps        uint64 `json:"sweeps"`
	LastSweepUnix int64  `json:"last_sweep_unix,omitempty"`
	// Refilled counts cache entries pulled from peers by sweeps; Errors
	// counts key-list or entry fetches that failed.
	Refilled uint64 `json:"refilled"`
	Errors   uint64 `json:"errors"`
	// ReadRepairs counts owned misses answered by pulling a co-owner's
	// copy instead of re-evaluating; RepairMisses counts attempts where no
	// co-owner had the entry (a genuinely cold key).
	ReadRepairs  uint64 `json:"read_repairs"`
	RepairMisses uint64 `json:"repair_misses"`
}

// ReplicationStats is the replication section of /v1/ring and
// /v1/stats.cluster, present only when the replication factor is above 1
// (an RF=1 tier keeps the exact pre-replication payload).
type ReplicationStats struct {
	// Factor is how many ring successors own each key.
	Factor int `json:"factor"`
	// Writes counts cache entries this process enqueued for write-through
	// to replica peers after evaluating a key it owns.
	Writes uint64 `json:"writes"`
	// WriteDrops counts write-throughs dropped because the bounded async
	// queue was full — backpressure sheds replication, never requests.
	WriteDrops uint64 `json:"write_drops"`
	// WriteErrors counts write-throughs that reached no replica (the peer
	// was unreachable or rejected the write).
	WriteErrors uint64 `json:"write_errors"`
	// ReplicatedIn counts entries this process accepted into its cache via
	// POST /v1/replicate.
	ReplicatedIn uint64 `json:"replicated_in"`
	// ReplicaHits counts forwards this process had answered by a replica
	// after the key's primary owner was unreachable — cache warmth that
	// survived a peer death.
	ReplicaHits uint64 `json:"replica_hits"`
}

// KeyOwners reports one key's owner list (GET /v1/ring?key=K): the
// primary owner first, replicas in failover order after it.
type KeyOwners struct {
	Key    string   `json:"key"`
	Owners []string `json:"owners"`
}

// RingResponse is the GET /v1/ring payload (also embedded in /v1/stats as
// "cluster"). Outside cluster mode only Enabled=false is meaningful.
type RingResponse struct {
	Enabled bool   `json:"enabled"`
	Self    string `json:"self,omitempty"`
	VNodes  int    `json:"vnodes,omitempty"`
	// Epoch is the ring version: it increments exactly when the ring
	// member set changes, and stamps which membership view the counters
	// below were read against.
	Epoch   uint64       `json:"epoch,omitempty"`
	Members []RingMember `json:"members,omitempty"`
	// ForwardedIn counts requests that arrived already forwarded by a peer
	// (this process answered them as owner). Deliberately not omitempty:
	// operators and the CI smoke read these as plain numbers even at zero.
	ForwardedIn uint64 `json:"forwarded_in"`
	// LocalFallbacks counts requests whose every owner was unreachable,
	// served locally instead.
	LocalFallbacks uint64 `json:"local_fallbacks"`
	// Replication is the replicated-ownership view; nil when the factor
	// is 1 (no replication configured).
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Membership is the gossip view: join/gossip/eviction counters and
	// tombstoned peers.
	Membership *MembershipStats `json:"membership,omitempty"`
	// AntiEntropy is the self-healing view: background refill sweeps and
	// request-path read repairs.
	AntiEntropy *AntiEntropyStats `json:"anti_entropy,omitempty"`
	// KeyOwners answers a ?key= query with that key's owner list; nil
	// otherwise.
	KeyOwners *KeyOwners `json:"key_owners,omitempty"`
}

// Ring snapshots the cluster view (the /v1/ring payload).
func (s *Server) Ring() RingResponse {
	c := s.cluster
	if c == nil {
		return RingResponse{Enabled: false}
	}
	ring := c.ring()
	resp := RingResponse{
		Enabled:        true,
		Self:           c.self,
		Epoch:          c.mem.Epoch(),
		ForwardedIn:    c.forwardedIn.Load(),
		LocalFallbacks: c.fallbacks.Load(),
	}
	if c.rf > 1 {
		// Report the effective factor: the configured rf clamped to the
		// live member count, since Owners clamps the same way per key.
		// Under elastic membership the configured value cannot be clamped
		// at enable time — the cluster may grow into it later.
		factor := c.rf
		if ring != nil && len(ring.Members()) < factor {
			factor = len(ring.Members())
		}
		async := c.fwd.Async()
		resp.Replication = &ReplicationStats{
			Factor:       factor,
			Writes:       c.repWrites.Load(),
			WriteDrops:   c.repDrops.Load(),
			WriteErrors:  async.Errors,
			ReplicatedIn: c.replicatedIn.Load(),
			ReplicaHits:  c.replicaHits.Load(),
		}
	}
	counters := c.mem.Counters()
	ms := &MembershipStats{
		Joined:         c.joined.Load(),
		Draining:       c.draining.Load(),
		JoinsIn:        c.joinsIn.Load(),
		GossipSent:     c.gossipOut.Load(),
		GossipReceived: c.gossipIn.Load(),
		GossipErrors:   c.gossipErrs.Load(),
		Evictions:      counters.Evictions,
		Refutations:    counters.Refutations,
		PrunedClients:  c.pruned.Load(),
		DrainedOut:     c.drainedOut.Load(),
	}
	resp.AntiEntropy = &AntiEntropyStats{
		Sweeps:        c.aeSweeps.Load(),
		LastSweepUnix: c.lastSweepUnix.Load(),
		Refilled:      c.aeRefills.Load(),
		Errors:        c.aeErrs.Load(),
		ReadRepairs:   c.readRepairs.Load(),
		RepairMisses:  c.repairMisses.Load(),
	}
	health := map[string]shard.MemberHealth{}
	for _, h := range c.mem.Health() {
		health[h.Name] = h
		if h.Status != shard.StatusAlive {
			ms.Departed = append(ms.Departed, DepartedMember{Peer: h.Name, Status: string(h.Status)})
		}
	}
	resp.Membership = ms
	if ring == nil {
		return resp
	}
	resp.VNodes = ring.VNodes()
	ownership := ring.Ownership()
	peerStats := map[string]shard.PeerStats{}
	for _, ps := range c.fwd.Stats() {
		peerStats[ps.Peer] = ps
	}
	for _, m := range ring.Members() {
		h := health[m]
		resp.Members = append(resp.Members, RingMember{
			Peer:       m,
			Self:       m == c.self,
			Ownership:  ownership[m],
			Forwards:   peerStats[m].Forwards,
			Errors:     peerStats[m].Errors,
			Status:     string(h.Status),
			Suspect:    h.Suspect,
			AgeSeconds: h.AgeSeconds,
		})
	}
	return resp
}

func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := s.Ring()
	if key := r.URL.Query().Get("key"); key != "" && s.cluster != nil {
		if ring := s.cluster.ring(); ring != nil {
			resp.KeyOwners = &KeyOwners{
				Key:    key,
				Owners: ring.Owners(key, s.cluster.rf),
			}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}
