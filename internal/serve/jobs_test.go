package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"paragraph/internal/hw"
)

// jobPoll is the client-side view of one GET /v1/jobs/{id} response,
// with the result kept raw for per-test re-decoding.
type jobPoll struct {
	JobID     string          `json:"job_id"`
	Status    string          `json:"status"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Error     string          `json:"error"`
	Result    json.RawMessage `json:"result"`
}

// submitAsync posts an advise request with ?async=1 and decodes the 202.
func submitAsync(t *testing.T, s *Server, req AdviseRequest) JobSubmitResponse {
	t.Helper()
	rec := do(t, s, http.MethodPost, "/v1/advise?async=1", req, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async submit = %d, want 202: %s", rec.Code, rec.Body.String())
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatalf("decoding submit response: %v\n%s", err, rec.Body.String())
	}
	if sub.JobID == "" || sub.Status != "pending" || sub.Poll != "/v1/jobs/"+sub.JobID {
		t.Fatalf("submit response = %+v", sub)
	}
	return sub
}

// waitJob polls a job until it reaches wantStatus (within 10s).
func waitJob(t *testing.T, s *Server, poll, wantStatus string) jobPoll {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := do(t, s, http.MethodGet, poll, nil, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", poll, rec.Code, rec.Body.String())
		}
		var jp jobPoll
		if err := json.Unmarshal(rec.Body.Bytes(), &jp); err != nil {
			t.Fatalf("decoding job poll: %v\n%s", err, rec.Body.String())
		}
		if jp.Status == wantStatus {
			return jp
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached %q: %+v", wantStatus, jp)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAsyncJobRoundTrip: submit → poll → result, and the async ranking is
// byte-equal to what the synchronous path serves for the same request.
func TestAsyncJobRoundTrip(t *testing.T) {
	s := newTestServer(t)

	var sync AdviseResponse
	if rec := do(t, s, http.MethodPost, "/v1/advise", adviseReq("NVIDIA V100 (GPU)"), &sync); rec.Code != http.StatusOK {
		t.Fatalf("sync advise: %d %s", rec.Code, rec.Body.String())
	}

	sub := submitAsync(t, s, adviseReq("NVIDIA V100 (GPU)"))
	jp := waitJob(t, s, sub.Poll, "done")
	if jp.Error != "" {
		t.Fatalf("job error = %q", jp.Error)
	}
	var async AdviseResponse
	if err := json.Unmarshal(jp.Result, &async); err != nil {
		t.Fatalf("decoding job result: %v\n%s", err, jp.Result)
	}
	if !async.Cached {
		t.Error("async repeat of a warm key not served from cache")
	}
	if len(async.Recommendations) != len(sync.Recommendations) {
		t.Fatalf("async ranking has %d recommendations, sync %d",
			len(async.Recommendations), len(sync.Recommendations))
	}
	for i := range sync.Recommendations {
		if async.Recommendations[i] != sync.Recommendations[i] {
			t.Errorf("rec %d differs: async %+v vs sync %+v",
				i, async.Recommendations[i], sync.Recommendations[i])
		}
	}
}

// TestAsyncJobStream: a finished job streams as NDJSON — a header line
// with the ranking metadata, then one line per recommendation.
func TestAsyncJobStream(t *testing.T) {
	s := newTestServer(t)
	sub := submitAsync(t, s, adviseReq("NVIDIA V100 (GPU)"))
	waitJob(t, s, sub.Poll, "done")

	rec := do(t, s, http.MethodGet, sub.Poll+"?stream=1", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	if len(lines) != 9 { // header + 8 recommendations (4 kinds × 2 teams)
		t.Fatalf("stream has %d lines, want 9:\n%s", len(lines), rec.Body.String())
	}
	var head jobPoll
	if err := json.Unmarshal([]byte(lines[0]), &head); err != nil || head.Status != "done" {
		t.Fatalf("stream header = %q (%v)", lines[0], err)
	}
	var headResp AdviseResponse
	if err := json.Unmarshal(head.Result, &headResp); err != nil {
		t.Fatalf("stream header result: %v", err)
	}
	if len(headResp.Recommendations) != 0 {
		t.Error("stream header repeats the recommendation rows")
	}
	prev := -1.0
	for _, line := range lines[1:] {
		var r Recommendation
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("stream row %q: %v", line, err)
		}
		if r.PredictedUS < prev {
			t.Error("streamed rows not sorted fastest-first")
		}
		prev = r.PredictedUS
	}
}

// TestAsyncJobStoreBounds: the job store sheds at capacity with the same
// 503 + Retry-After surface as the queue, and recovers once jobs expire
// or finish being consumed.
func TestAsyncJobStoreBounds(t *testing.T) {
	model := &blockingModel{release: make(chan struct{})}
	s, err := NewServer([]Backend{
		{Machine: hw.V100(), Model: model, Prep: testPrep()},
	}, Options{JobLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	released := false
	release := func() {
		if !released {
			released = true
			close(model.release)
		}
	}
	defer s.Close() // runs after release: Close waits out the running job
	defer release()

	sub := submitAsync(t, s, overloadReq(1))

	rec := do(t, s, http.MethodPost, "/v1/advise?async=1", overloadReq(2), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit beyond capacity = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	checkRetryAfter(t, rec)

	release()
	jp := waitJob(t, s, sub.Poll, "done")
	if jp.Error != "" {
		t.Errorf("job failed: %q", jp.Error)
	}
	if st := s.jobs.Stats(); st.Rejected != 1 || st.Submitted != 1 {
		t.Errorf("job store stats = %+v", st)
	}
}

// TestAsyncJobDeadline: a deadline header bounds the background
// evaluation — the job fails at its budget instead of running forever.
func TestAsyncJobDeadline(t *testing.T) {
	model := &blockingModel{release: make(chan struct{})}
	s, err := NewServer([]Backend{
		{Machine: hw.V100(), Model: model, Prep: testPrep()},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	released := false
	release := func() {
		if !released {
			released = true
			close(model.release)
		}
	}
	defer s.Close()
	defer release()

	rec := doH(t, s, http.MethodPost, "/v1/advise?async=1", overloadReq(1),
		map[string]string{"X-Paragraph-Deadline": "30ms"})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async submit = %d: %s", rec.Code, rec.Body.String())
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	jp := waitJob(t, s, sub.Poll, "failed")
	if jp.Error == "" {
		t.Error("failed job carries no error")
	}

	// A malformed deadline rejects the submission itself.
	if rec := doH(t, s, http.MethodPost, "/v1/advise?async=1", overloadReq(3),
		map[string]string{"X-Paragraph-Deadline": "whenever"}); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed async deadline = %d, want 400", rec.Code)
	}
}

// TestAsyncJobExpires: finished jobs are reclaimed TTL after completion;
// a poll past that is an honest 404, not unbounded memory.
func TestAsyncJobExpires(t *testing.T) {
	s, err := NewServer([]Backend{
		{Machine: hw.V100(), Model: oracleModel{}, Prep: testPrep()},
	}, Options{JobTTL: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	sub := submitAsync(t, s, overloadReq(1))
	waitJob(t, s, sub.Poll, "done")

	// The sweeper runs at max(ttl/4, 1s); well within 10s the job is gone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := do(t, s, http.MethodGet, sub.Poll, nil, nil)
		if rec.Code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never expired: still %d", rec.Code)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st := s.jobs.Stats(); st.Expired != 1 {
		t.Errorf("expired = %d, want 1", st.Expired)
	}
}

// TestJobsEndpointErrors: the poll endpoint's error surface.
func TestJobsEndpointErrors(t *testing.T) {
	s := newTestServer(t)
	if rec := do(t, s, http.MethodGet, "/v1/jobs/no-such-job", nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/v1/jobs/", nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("missing id = %d, want 404", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/v1/jobs/x", nil, nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST jobs = %d, want 405", rec.Code)
	}
}
