package serve

import (
	"bytes"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
)

// warmAndSnapshot runs one advise and one predict through a fresh server
// and returns the snapshot plus the responses that produced it.
func warmAndSnapshot(t *testing.T) (snap []byte, advise AdviseResponse, predict PredictResponse) {
	t.Helper()
	s := newTestServer(t)
	if rec := do(t, s, http.MethodPost, "/v1/advise", adviseReq("NVIDIA V100 (GPU)"), &advise); rec.Code != http.StatusOK {
		t.Fatalf("advise: %d %s", rec.Code, rec.Body.String())
	}
	preq := PredictRequest{
		Kernel: "matmul", Machine: "NVIDIA V100 (GPU)",
		Variant: "gpu", Teams: 64, Threads: 128,
		Bindings: map[string]float64{"n": 256},
	}
	if rec := do(t, s, http.MethodPost, "/v1/predict", preq, &predict); rec.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
	}
	var buf bytes.Buffer
	if err := s.SnapshotCache(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), advise, predict
}

func TestCacheSnapshotRestoreRoundTrip(t *testing.T) {
	snap, advise, predict := warmAndSnapshot(t)

	// A second process: same backends, fresh caches, restored snapshot.
	s2 := newTestServer(t)
	n, err := s2.RestoreCache(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("restored %d entries, want 2", n)
	}

	var warm AdviseResponse
	do(t, s2, http.MethodPost, "/v1/advise", adviseReq("NVIDIA V100 (GPU)"), &warm)
	if !warm.Cached {
		t.Error("restored advise entry missed")
	}
	if len(warm.Recommendations) != len(advise.Recommendations) {
		t.Fatalf("restored ranking has %d recs, want %d", len(warm.Recommendations), len(advise.Recommendations))
	}
	for i := range advise.Recommendations {
		if warm.Recommendations[i] != advise.Recommendations[i] {
			t.Errorf("restored rec %d = %+v, want %+v", i, warm.Recommendations[i], advise.Recommendations[i])
		}
	}

	var warmP PredictResponse
	do(t, s2, http.MethodPost, "/v1/predict", PredictRequest{
		Kernel: "matmul", Machine: "NVIDIA V100 (GPU)",
		Variant: "gpu", Teams: 64, Threads: 128,
		Bindings: map[string]float64{"n": 256},
	}, &warmP)
	if !warmP.Cached || warmP.PredictedUS != predict.PredictedUS {
		t.Errorf("restored predict = %+v, want cached %v", warmP, predict.PredictedUS)
	}
}

func TestCacheSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	s := newTestServer(t)
	var advise AdviseResponse
	do(t, s, http.MethodPost, "/v1/advise", adviseReq("IBM POWER9 (CPU)"), &advise)
	if err := s.SaveCacheFile(path); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t)
	n, err := s2.LoadCacheFile(path)
	if err != nil || n != 1 {
		t.Fatalf("LoadCacheFile = %d, %v, want 1 entry", n, err)
	}
	var warm AdviseResponse
	do(t, s2, http.MethodPost, "/v1/advise", adviseReq("IBM POWER9 (CPU)"), &warm)
	if !warm.Cached {
		t.Error("file-restored advise entry missed")
	}
}

func TestLoadCacheFileMissingIsFine(t *testing.T) {
	s := newTestServer(t)
	n, err := s.LoadCacheFile(filepath.Join(t.TempDir(), "absent.json"))
	if n != 0 || err != nil {
		t.Errorf("missing file: n=%d err=%v, want 0, nil", n, err)
	}
}

func TestRestoreCacheRejectsGarbage(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.RestoreCache(strings.NewReader("not json")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, err := s.RestoreCache(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future snapshot version accepted")
	}
}

func TestRestoreCacheDropsUnknownVariants(t *testing.T) {
	s := newTestServer(t)
	snap := `{"version":1,"advise":[{"key":"k1","recs":[{"kind":"warp_simd","threads":8,"predicted_us":1}]}],"predict":[{"key":"k2","us":5}]}`
	n, err := s.RestoreCache(strings.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // the predict entry survives; the alien advise entry is dropped
		t.Errorf("restored %d entries, want 1", n)
	}
}

// TestSnapshotItemsOrder sanity-checks the Items walk the snapshot is
// built from: every live entry appears, before and after recency updates.
func TestSnapshotItemsOrder(t *testing.T) {
	c := NewCache(64)
	c.Add(Key("a"), 1)
	c.Add(Key("b"), 2)
	items := c.Items()
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	// Touch "a" so it becomes most recent in its shard; a fresh Items walk
	// must reflect that when both landed in the same shard, and in any case
	// must still list both.
	c.Get(Key("a"))
	items = c.Items()
	seen := map[string]bool{}
	for _, it := range items {
		seen[it.Key] = true
	}
	if !seen[Key("a")] || !seen[Key("b")] {
		t.Errorf("items missing keys: %+v", items)
	}
}
