package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"paragraph/internal/advisor"
	"paragraph/internal/obs"
	"paragraph/internal/shard"
)

// Elastic membership wiring: this file connects the shard.Membership state
// machine to the serving tier. Three background loops run per cluster-mode
// process — a join loop that announces the peer to a seed until admitted,
// a heartbeat loop that gossips the epoch-stamped view (and sweeps silent
// members into eviction), and an anti-entropy loop that diffs Ring.Owners
// against the local cache and pulls the replica entries this peer should
// hold but does not, so a rejoined or freshly added peer converges to full
// warmth without waiting on traffic. The /v1/cluster/* endpoints are the
// wire surface: join and gossip carry membership views, leave triggers a
// planned-departure drain, and keys/entry serve the anti-entropy pulls
// (entry doubles as the request path's read-repair source).

// maxGossipBytes bounds one gossip or join body; views are a few hundred
// bytes per member.
const maxGossipBytes = 1 << 20

// handleCluster routes the /v1/cluster/* surface. Every endpoint requires
// cluster mode; the sub-routes are dispatched here rather than registered
// individually so non-cluster servers keep a single 409 surface.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.fail(w, http.StatusConflict, "cluster endpoints require cluster mode")
		return
	}
	switch strings.TrimPrefix(r.URL.Path, "/v1/cluster/") {
	case "join":
		s.handleClusterJoin(w, r)
	case "gossip":
		s.handleClusterGossip(w, r)
	case "leave":
		s.handleClusterLeave(w, r)
	case "keys":
		s.handleClusterKeys(w, r)
	case "entry":
		s.handleClusterEntry(w, r)
	default:
		s.fail(w, http.StatusNotFound, "unknown cluster endpoint")
	}
}

// joinRequest is the POST /v1/cluster/join body.
type joinRequest struct {
	// Peer is the joining process's base URL as the cluster reaches it.
	Peer string `json:"peer"`
}

// handleClusterJoin admits a peer: its record enters the view at an
// incarnation above any tombstone it left behind, the ring rebuilds under
// a new epoch, and the merged view goes back so the joiner adopts the
// cluster's full record set in one round trip. Any member can admit —
// "seed" is a role the joiner picks, not a special node.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req joinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxGossipBytes)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad join body: %v", err)
		return
	}
	peer, err := NormalizePeerURL(req.Peer)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	c := s.cluster
	if peer != c.self {
		c.joinsIn.Add(1)
	}
	view := c.mem.Join(peer)
	s.writeJSON(w, http.StatusOK, view)
}

// handleClusterGossip answers one heartbeat exchange: merge the sender's
// view, note the contact as proof of life, and reply with the local view
// so the exchange converges both directions (push-pull).
func (s *Server) handleClusterGossip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var view shard.View
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxGossipBytes)).Decode(&view); err != nil {
		s.fail(w, http.StatusBadRequest, "bad gossip body: %v", err)
		return
	}
	if view.From == "" {
		s.fail(w, http.StatusBadRequest, "gossip view missing sender")
		return
	}
	c := s.cluster
	c.gossipIn.Add(1)
	c.mem.Observe(view.From)
	c.mem.Merge(view)
	s.writeJSON(w, http.StatusOK, c.mem.View())
}

// handleClusterLeave starts this peer's planned departure: announce the
// departure tombstone, stream owned keys to their new owners, and report
// what moved. The process keeps serving (local-only) afterwards — exiting
// is the operator's next step, or SIGTERM's, which runs the same drain
// and finds it already done.
func (s *Server) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cluster.drainTimeout)
	defer cancel()
	report := s.DrainCluster(ctx)
	s.writeJSON(w, http.StatusOK, report)
}

// clusterKeysResponse is the GET /v1/cluster/keys payload: the local
// advise-response cache's key list, the anti-entropy diff source.
type clusterKeysResponse struct {
	Epoch uint64   `json:"epoch"`
	Keys  []string `json:"keys"`
}

// handleClusterKeys lists the local cache's keys. Keys are content hashes
// — cheap to ship and meaningless without the entries — and the list is
// what a sweeping peer diffs against Ring.Owners to find entries it
// should hold.
func (s *Server) handleClusterKeys(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	items := s.adviseCache.Items()
	resp := clusterKeysResponse{Epoch: s.cluster.mem.Epoch(), Keys: make([]string, 0, len(items))}
	for _, it := range items {
		resp.Keys = append(resp.Keys, it.Key)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleClusterEntry serves one cache entry (?key=K) in the replicate wire
// schema, feeding anti-entropy refills and read repairs. It reads through
// Peek so peer probes distort neither recency nor the hit/miss counters,
// and 404s on a miss — the puller tries the next holder.
func (s *Server) handleClusterEntry(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		s.fail(w, http.StatusBadRequest, "key required")
		return
	}
	v, ok := s.adviseCache.Peek(key)
	if !ok {
		s.fail(w, http.StatusNotFound, "no entry for key")
		return
	}
	body, err := marshalReplicate(key, v)
	if err != nil {
		s.fail(w, http.StatusNotFound, "entry not servable: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// --- background loops ---

// startClusterLoops launches the join, gossip and anti-entropy loops.
// Called by EnableCluster when Heartbeat >= 0; Server.Close stops them.
func (s *Server) startClusterLoops() {
	c := s.cluster
	if len(c.seeds) > 0 {
		c.bg.Add(1)
		go s.joinLoop()
	}
	c.bg.Add(1)
	go s.gossipLoop()
	if c.antiEntropy > 0 {
		c.bg.Add(1)
		go s.antiEntropyLoop()
	}
}

// stop terminates the background loops and the forwarder's async workers.
func (c *cluster) stop() {
	c.stopOnce.Do(func() { close(c.quit) })
	c.bg.Wait()
	c.fwd.Close()
}

// joinLoop announces this peer to its seeds until one admits it: POST
// /v1/cluster/join, merge the returned view, done. Retries every
// heartbeat — a seed that is itself still starting is the normal case
// during a fleet boot.
func (s *Server) joinLoop() {
	c := s.cluster
	defer c.bg.Done()
	ticker := time.NewTicker(c.heartbeat)
	defer ticker.Stop()
	for {
		if s.tryJoin() {
			return
		}
		select {
		case <-c.quit:
			return
		case <-ticker.C:
		}
	}
}

// tryJoin attempts one join round over the seeds, returning success.
func (s *Server) tryJoin() bool {
	c := s.cluster
	body, err := json.Marshal(joinRequest{Peer: c.self})
	if err != nil {
		return false
	}
	for _, seed := range c.seeds {
		ctx, cancel := context.WithTimeout(context.Background(), c.heartbeat)
		status, resp, err := c.fwd.Control(ctx, http.MethodPost, seed, "/v1/cluster/join", body)
		cancel()
		if err != nil || status/100 != 2 {
			c.gossipErrs.Add(1)
			continue
		}
		var view shard.View
		if err := json.Unmarshal(resp, &view); err != nil {
			c.gossipErrs.Add(1)
			continue
		}
		c.mem.Merge(view)
		c.joined.Store(true)
		return true
	}
	return false
}

// gossipLoop is the heartbeat: every interval it sweeps the failure
// detector and pushes the local view to every other ring member, merging
// each answer back (push-pull, so one exchange converges both sides).
func (s *Server) gossipLoop() {
	c := s.cluster
	defer c.bg.Done()
	ticker := time.NewTicker(c.heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-ticker.C:
			s.gossipOnce(context.Background())
		}
	}
}

// gossipOnce runs one heartbeat round: sweep, beat, exchange with every
// other ring member concurrently. Each exchange is bounded by the
// heartbeat interval so a hung peer cannot stall the round past one tick.
func (s *Server) gossipOnce(ctx context.Context) {
	c := s.cluster
	c.mem.Sweep()
	view := c.mem.Beat()
	ring := c.ring()
	if ring == nil {
		return
	}
	body, err := json.Marshal(view)
	if err != nil {
		return
	}
	var wg sync.WaitGroup
	for _, peer := range ring.Members() {
		if peer == c.self {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			hopCtx, cancel := context.WithTimeout(ctx, c.heartbeat)
			defer cancel()
			status, resp, err := c.fwd.Control(hopCtx, http.MethodPost, peer, "/v1/cluster/gossip", body)
			if err != nil || status/100 != 2 {
				c.gossipErrs.Add(1)
				return
			}
			var remote shard.View
			if err := json.Unmarshal(resp, &remote); err != nil {
				c.gossipErrs.Add(1)
				return
			}
			c.mem.Observe(peer)
			c.mem.Merge(remote)
			c.gossipOut.Add(1)
		}(peer)
	}
	wg.Wait()
}

// antiEntropyLoop periodically runs the self-healing sweep.
func (s *Server) antiEntropyLoop() {
	c := s.cluster
	defer c.bg.Done()
	ticker := time.NewTicker(c.antiEntropy)
	defer ticker.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-ticker.C:
			s.antiEntropyOnce(context.Background())
		}
	}
}

// antiEntropyOnce is one self-healing sweep: fetch every other ring
// member's key list, keep the keys this peer owns (Ring.Owners) but does
// not hold, and pull the missing entries with bounded concurrency. This is
// how a rejoined or freshly added peer converges to full replica warmth
// without client traffic — the cache-tier analogue of loading exactly the
// missing shard slices in parallel instead of recomputing them. The sweep
// runs entirely off the request path: fetches are capped at
// RefillConcurrency and every pull is a cheap cache-to-cache copy.
func (s *Server) antiEntropyOnce(ctx context.Context) {
	c := s.cluster
	ring := c.ring()
	if ring == nil || len(ring.Members()) < 2 || c.mem.Left() {
		return
	}
	local := map[string]bool{}
	for _, it := range s.adviseCache.Items() {
		local[it.Key] = true
	}
	// missing maps each absent owned key to the peers advertising it.
	missing := map[string][]string{}
	for _, peer := range ring.Members() {
		if peer == c.self {
			continue
		}
		hopCtx, cancel := context.WithTimeout(ctx, c.heartbeat+5*time.Second)
		status, body, err := c.fwd.Control(hopCtx, http.MethodGet, peer, "/v1/cluster/keys", nil)
		cancel()
		if err != nil || status/100 != 2 {
			c.aeErrs.Add(1)
			continue
		}
		var resp clusterKeysResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			c.aeErrs.Add(1)
			continue
		}
		for _, key := range resp.Keys {
			if local[key] {
				continue
			}
			if !ownersContain(ring.Owners(key, c.rf), c.self) {
				continue
			}
			missing[key] = append(missing[key], peer)
		}
	}
	if len(missing) > 0 {
		keys := make([]string, 0, len(missing))
		for k := range missing {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sem := make(chan struct{}, c.refillWorkers)
		var wg sync.WaitGroup
		for _, key := range keys {
			wg.Add(1)
			sem <- struct{}{}
			go func(key string, holders []string) {
				defer wg.Done()
				defer func() { <-sem }()
				if s.pullEntry(ctx, key, holders) {
					c.aeRefills.Add(1)
				} else {
					c.aeErrs.Add(1)
				}
			}(key, missing[key])
		}
		wg.Wait()
	}
	c.aeSweeps.Add(1)
	c.lastSweepUnix.Store(time.Now().Unix())
}

// pullEntry fetches one cache entry from the first holder that still has
// it and inserts it locally.
func (s *Server) pullEntry(ctx context.Context, key string, holders []string) bool {
	c := s.cluster
	for _, peer := range holders {
		hopCtx, cancel := context.WithTimeout(ctx, c.heartbeat+5*time.Second)
		status, body, err := c.fwd.Control(hopCtx, http.MethodGet, peer,
			"/v1/cluster/entry?key="+url.QueryEscape(key), nil)
		cancel()
		if err != nil || status != http.StatusOK {
			continue
		}
		gotKey, val, err := unmarshalReplicateEntry(body)
		if err != nil || gotKey != key {
			continue
		}
		s.adviseCache.Add(key, val)
		return true
	}
	return false
}

// ownersContain reports whether owners includes name.
func ownersContain(owners []string, name string) bool {
	for _, o := range owners {
		if o == name {
			return true
		}
	}
	return false
}

// --- read repair ---

// repairedEntry marks a singleflight value that was pulled from a
// co-owner's cache instead of evaluated: the handlers render it as a cache
// hit, because it is one — the tier had the entry, just not this process.
type repairedEntry struct{ val any }

// tryRepair attempts to answer an owned miss from a co-owner's cache
// before paying a local evaluation. The window it exists for: a peer that
// just rejoined owns its old keys again but holds none of them until the
// next anti-entropy sweep; its co-owners (who replicated the entries, or
// inherited them from the departed peer's drain) still do. One bounded GET
// per co-owner is noise next to a full grid evaluation, and on a genuinely
// cold key every probe 404s fast. Returns the repaired value and whether
// repair succeeded.
func (s *Server) tryRepair(ctx context.Context, tr *obs.Trace, key string, owners []string, owned bool) (any, bool) {
	c := s.cluster
	if c == nil || !owned || len(owners) < 2 {
		return nil, false
	}
	sp := tr.StartSpan("read_repair")
	for _, peer := range owners {
		if peer == c.self {
			continue
		}
		hopCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
		status, body, err := c.fwd.Control(hopCtx, http.MethodGet, peer,
			"/v1/cluster/entry?key="+url.QueryEscape(key), nil)
		cancel()
		if err != nil || status != http.StatusOK {
			continue
		}
		gotKey, val, err := unmarshalReplicateEntry(body)
		if err != nil || gotKey != key {
			continue
		}
		s.adviseCache.Add(key, val)
		c.readRepairs.Add(1)
		sp.Annotate(peer)
		sp.End()
		return val, true
	}
	c.repairMisses.Add(1)
	sp.Annotate("miss")
	sp.End()
	return nil, false
}

// unmarshalReplicateEntry decodes a single-entry replicate body (the
// /v1/cluster/entry response) into its key and typed value.
func unmarshalReplicateEntry(body []byte) (string, any, error) {
	var snap cacheSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return "", nil, fmt.Errorf("serve: decoding entry: %w", err)
	}
	if snap.Version != snapshotVersion {
		return "", nil, fmt.Errorf("serve: unsupported entry version %d", snap.Version)
	}
	switch {
	case len(snap.Advise) == 1 && len(snap.Predict) == 0:
		as := snap.Advise[0]
		recs := make([]advisor.Recommendation, len(as.Recs))
		for i, rs := range as.Recs {
			kind, err := kindByName(rs.Kind)
			if err != nil {
				return "", nil, err
			}
			recs[i] = advisor.Recommendation{
				Kind: kind, Teams: rs.Teams, Threads: rs.Threads,
				PredictedUS: rs.PredictedUS, Source: rs.Source,
			}
		}
		return as.Key, recs, nil
	case len(snap.Predict) == 1 && len(snap.Advise) == 0:
		return snap.Predict[0].Key, snap.Predict[0].US, nil
	default:
		return "", nil, fmt.Errorf("serve: entry body must hold exactly one entry")
	}
}

// --- planned departure ---

// DrainReport summarizes a planned departure: what the leaving peer owned
// and what it managed to stream to the new owners before the deadline.
type DrainReport struct {
	// AlreadyDraining reports a second drain request: the first one's
	// handoff already ran (or is running) and this call did nothing.
	AlreadyDraining bool `json:"already_draining,omitempty"`
	// Epoch is the ring version after the departure tombstone.
	Epoch uint64 `json:"epoch"`
	// OwnedKeys is how many local cache entries this peer owned under the
	// pre-departure ring; Streamed how many were delivered to at least
	// one new owner; Errors how many batch posts failed.
	OwnedKeys int `json:"owned_keys"`
	Streamed  int `json:"streamed"`
	Batches   int `json:"batches"`
	Errors    int `json:"errors"`
	// Targets are the peers that received handoff batches, sorted.
	Targets   []string `json:"targets,omitempty"`
	ElapsedMS float64  `json:"elapsed_ms"`
}

// drainBatchLimit caps entries per handoff POST; drainBatchBytes caps the
// marshaled payload well under maxReplicateBytes so a receiver never
// rejects a batch for size.
const (
	drainBatchLimit = 128
	drainBatchBytes = 1 << 20
)

// DrainCluster executes this peer's planned departure: tombstone self in
// the membership view, push the new view to every old ring member
// synchronously (so the tier re-rings before the handoff lands), then
// stream every owned cache entry to its new owners over the /v1/replicate
// wire schema in bounded batches. Idempotent — the second caller (POST
// /v1/cluster/leave followed by SIGTERM is the normal pair) gets
// AlreadyDraining and no work. Outside cluster mode it reports an empty
// drain. The process keeps serving afterwards, local-only; exiting is the
// caller's decision.
func (s *Server) DrainCluster(ctx context.Context) DrainReport {
	c := s.cluster
	if c == nil {
		return DrainReport{}
	}
	if !c.draining.CompareAndSwap(false, true) {
		return DrainReport{AlreadyDraining: true, Epoch: c.mem.Epoch()}
	}
	start := time.Now()
	oldRing := c.ring()
	c.mem.Leave(c.self)
	report := DrainReport{Epoch: c.mem.Epoch()}
	if oldRing == nil {
		report.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		return report
	}

	// Announce first: peers that re-ring before the handoff arrives accept
	// the writes anyway (the tombstone keeps us a known member), and
	// announcing early stops them forwarding fresh misses to a peer that
	// is about to vanish.
	view, err := json.Marshal(c.mem.View())
	if err == nil {
		var wg sync.WaitGroup
		for _, peer := range oldRing.Members() {
			if peer == c.self {
				continue
			}
			wg.Add(1)
			go func(peer string) {
				defer wg.Done()
				hopCtx, cancel := context.WithTimeout(ctx, c.heartbeat+5*time.Second)
				defer cancel()
				if _, _, err := c.fwd.Control(hopCtx, http.MethodPost, peer, "/v1/cluster/gossip", view); err != nil {
					c.gossipErrs.Add(1)
				}
			}(peer)
		}
		wg.Wait()
	}

	newRing := c.ring()
	if newRing == nil {
		// Single-member cluster: nowhere to hand keys to.
		report.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		return report
	}

	// Partition the owned entries by new owner. Every new owner gets a
	// copy (not just the ones that lack it): re-adding an existing key is
	// a cheap overwrite with identical bytes, and pushing to all owners
	// restores full replica fan-out in one pass.
	perTarget := map[string][]CacheItem{}
	for _, it := range s.adviseCache.Items() {
		if !ownersContain(oldRing.Owners(it.Key, c.rf), c.self) {
			continue
		}
		report.OwnedKeys++
		for _, owner := range newRing.Owners(it.Key, c.rf) {
			perTarget[owner] = append(perTarget[owner], it)
		}
	}
	targets := make([]string, 0, len(perTarget))
	for t := range perTarget {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	report.Targets = targets

	streamed := map[string]bool{}
	for _, target := range targets {
		s.drainTo(ctx, target, perTarget[target], &report, streamed)
		if ctx.Err() != nil {
			break
		}
	}
	report.Streamed = len(streamed)
	c.drainedOut.Add(uint64(report.Streamed))
	report.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return report
}

// drainTo streams one target's entries in bounded batches over the
// replicate wire schema, marking delivered keys in streamed.
func (s *Server) drainTo(ctx context.Context, target string, items []CacheItem, report *DrainReport, streamed map[string]bool) {
	c := s.cluster
	var (
		snap  cacheSnapshot
		keys  []string
		bytes int
	)
	flush := func() {
		if len(keys) == 0 {
			return
		}
		snap.Version = snapshotVersion
		body, err := json.Marshal(snap)
		if err == nil {
			status, _, ferr := c.fwd.Forward(ctx, target, "/v1/replicate", body, shard.Meta{})
			if ferr == nil && status/100 == 2 {
				for _, k := range keys {
					streamed[k] = true
				}
			} else {
				report.Errors++
			}
			report.Batches++
		}
		snap = cacheSnapshot{}
		keys = keys[:0]
		bytes = 0
	}
	for _, it := range items {
		if ctx.Err() != nil {
			break
		}
		var size int
		switch v := it.Val.(type) {
		case []advisor.Recommendation:
			as := adviseSnapOf(it.Key, v)
			b, err := json.Marshal(as)
			if err != nil {
				continue
			}
			size = len(b)
			snap.Advise = append(snap.Advise, as)
		case float64:
			ps := predictSnap{Key: it.Key, US: v}
			size = len(it.Key) + 32
			snap.Predict = append(snap.Predict, ps)
		default:
			continue
		}
		keys = append(keys, it.Key)
		bytes += size
		if len(keys) >= drainBatchLimit || bytes >= drainBatchBytes {
			flush()
		}
	}
	flush()
}
