// Package serve turns the one-shot advisor pipeline into a long-running
// service: an HTTP/JSON API (POST /v1/advise, POST /v1/predict, GET
// /v1/healthz, /v1/stats, /v1/models, /v1/ring) answered from shared cost
// models — trained at startup or loaded as registry checkpoints
// (internal/registry), several named versions per platform behind a
// "default" alias.
//
// The scaling layers, in request order: a content-addressed sharded LRU
// cache memoizes whole advise responses and the parse→build→encode
// pipeline behind them; identical concurrent misses collapse into one
// evaluation (singleflight); a bounded worker pool caps evaluations in
// flight while each fans its variant grid across goroutines
// (internal/advisor); and a per-model micro-batching queue coalesces
// concurrently-arriving samples into gnn.Model.PredictBatch calls. The
// advise-response cache can be snapshotted and restored across restarts
// (snapshot.go), and EnableCluster shards the whole tier across processes
// with a consistent-hash ring over the cache keys — each key owned by its
// first rf ring successors, with asynchronous write-through to replicas
// and failover in successor order (cluster.go, internal/shard).
//
// Every layer is instrumented through internal/obs: the same counters and
// histograms that assemble /v1/stats render as Prometheus exposition at
// GET /metrics (metrics.go), and traced requests record per-stage spans
// into a bounded ring served at GET /v1/trace, with trace ids propagated
// across cluster hops (trace.go). docs/API.md documents the wire format;
// docs/ARCHITECTURE.md the design.
package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
)

// cacheShards is the shard count of every Cache: small enough that a cache
// of a few hundred entries still gets useful per-shard capacity, large
// enough that concurrent request goroutines rarely contend on one mutex.
const cacheShards = 16

// Cache is a content-addressed, sharded LRU cache. Keys are content hashes
// (see Key), so a hit is a proof the expensive computation it memoizes was
// already done for identical inputs. Values are treated as immutable by
// convention. All methods are safe for concurrent use.
type Cache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns a cache holding at most capacity entries in total,
// split evenly across shards (each shard holds at least one entry).
// capacity <= 0 defaults to 1024.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1024
	}
	perShard := capacity / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].capacity = perShard
		c.shards[i].ll = list.New()
		c.shards[i].items = map[string]*list.Element{}
	}
	return c
}

// shardFor picks a shard by FNV-1a over the key. Keys are usually hex
// digests, whose byte values cover only 16 of 256 codes — a naive
// first-byte mod would leave shards empty — so rehashing spreads them
// evenly regardless of alphabet.
func (c *Cache) shardFor(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Peek returns the cached value for key without touching recency or the
// hit/miss counters. Cluster-internal probes (anti-entropy pulls, read
// repairs) read through Peek so peer traffic neither skews the cache
// statistics nor keeps entries warm that no client is asking for.
func (c *Cache) Peek(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).val, true
}

// Add stores val under key, evicting the least recently used entry of the
// key's shard when the shard is full. Re-adding an existing key replaces
// its value and refreshes its recency.
func (c *Cache) Add(key string, val any) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	if s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		s.evictions++
	}
}

// CacheItem is one entry of an Items snapshot.
type CacheItem struct {
	Key string
	Val any
}

// Items snapshots every entry, most-recently-used first within each shard
// (shards are concatenated in index order). The snapshot layer feeds
// persisted caches back through Add in reverse, so restore approximately
// preserves recency.
func (c *Cache) Items() []CacheItem {
	var out []CacheItem
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*cacheEntry)
			out = append(out, CacheItem{Key: e.key, Val: e.val})
		}
		s.mu.Unlock()
	}
	return out
}

// Len returns the total entry count across shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// CacheStats aggregates the per-shard counters.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns a consistent-enough snapshot of the cache counters (each
// shard is read atomically; shards are read in sequence).
func (c *Cache) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.ll.Len()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		s.mu.Unlock()
	}
	return st
}

// Key builds a content-addressed cache key: the hex SHA-256 over the parts,
// NUL-separated so part boundaries cannot collide.
func Key(parts ...string) string {
	sum := sha256.Sum256([]byte(strings.Join(parts, "\x00")))
	return hex.EncodeToString(sum[:])
}

// fmtInts renders an int slice into a key part.
func fmtInts(vs []int) string {
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}
