package serve

import (
	"time"

	"paragraph/internal/admit"
)

// ModelStats is the per-model-version slice of /v1/stats: traffic routed to
// one (platform, version) pair and its batcher's counters.
type ModelStats struct {
	Platform     string       `json:"platform"`
	Name         string       `json:"name"`
	Default      bool         `json:"default"`
	Advise       uint64       `json:"advise"`
	Predict      uint64       `json:"predict"`
	LastUsedUnix int64        `json:"last_used_unix,omitempty"` // 0 = never
	Batcher      BatcherStats `json:"batcher"`
}

// Stats is the /v1/stats payload: a full snapshot of the service's caches,
// batching, pooling, singleflight and traffic counters, plus the per-model
// breakdown. It is assembled from the same instruments /metrics exposes
// (internal/obs via metrics.go), so the two endpoints cannot drift; the
// JSON shape predates the metrics registry and is kept byte-compatible.
type Stats struct {
	UptimeSeconds float64  `json:"uptime_seconds"`
	Machines      []string `json:"machines"`

	Requests struct {
		Advise  uint64 `json:"advise"`
		Predict uint64 `json:"predict"`
		Healthz uint64 `json:"healthz"`
		Stats   uint64 `json:"stats"`
		Models  uint64 `json:"models"`
		Ring    uint64 `json:"ring"`
		// Replicate counts POST /v1/replicate arrivals (peer write-
		// throughs); omitted at zero so non-replicated tiers keep their
		// exact pre-replication stats payload.
		Replicate uint64 `json:"replicate,omitempty"`
		// Jobs counts GET /v1/jobs/{id} polls; omitted at zero so tiers
		// that never use the async path keep their exact prior payload.
		Jobs uint64 `json:"jobs,omitempty"`
		// Feedback counts POST /v1/feedback arrivals; omitted at zero so
		// tiers without the lifecycle keep their exact prior payload.
		Feedback uint64 `json:"feedback,omitempty"`
		// Cluster counts /v1/cluster/* arrivals (join, gossip, leave and
		// anti-entropy pulls); omitted at zero outside cluster mode.
		Cluster uint64 `json:"cluster,omitempty"`
		Errors  uint64 `json:"errors"`
	} `json:"requests"`

	AdviseCacheHits uint64 `json:"advise_cache_hits"`
	// Coalesced counts requests answered by an identical concurrent
	// request's evaluation (singleflight) instead of their own.
	Coalesced   uint64     `json:"coalesced"`
	AdviseCache CacheStats `json:"advise_cache"`
	EncodeCache CacheStats `json:"encode_cache"`

	Models []ModelStats `json:"models"`
	Pool   PoolStats    `json:"pool"`

	// Admit is the fair-queue admission view: per-client lanes, queue
	// depth, and shed counters (the overload-control surface).
	Admit admit.QueueStats `json:"admit"`
	// Shed breaks admission rejections down by reason, mirroring
	// serve_shed_total{reason} in /metrics.
	Shed map[string]uint64 `json:"shed"`
	// Jobs is the async job store: submissions, live states, expiries.
	Jobs admit.StoreStats `json:"jobs"`

	// Cluster is the consistent-hash tier view (ring membership, ownership
	// fractions, per-peer forward/fallback counters); nil outside cluster
	// mode. GET /v1/ring serves the same payload on its own.
	Cluster *RingResponse `json:"cluster,omitempty"`

	// Lifecycle is the feedback→retrain→rollout view (accepted
	// measurements, per-platform rollout stage, per-model measured
	// quality); nil when the loop is disabled.
	Lifecycle *LifecycleStats `json:"lifecycle,omitempty"`
}

// snapshot assembles the stats payload from the server's live components.
func (s *Server) snapshot() Stats {
	st := Stats{UptimeSeconds: time.Since(s.start).Seconds()}
	st.Machines = s.machineNames()
	st.Requests.Advise = s.metrics.requests("advise")
	st.Requests.Predict = s.metrics.requests("predict")
	st.Requests.Healthz = s.metrics.requests("healthz")
	st.Requests.Stats = s.metrics.requests("stats")
	st.Requests.Models = s.metrics.requests("models")
	st.Requests.Ring = s.metrics.requests("ring")
	st.Requests.Replicate = s.metrics.requests("replicate")
	st.Requests.Jobs = s.metrics.requests("jobs")
	st.Requests.Feedback = s.metrics.requests("feedback")
	st.Requests.Cluster = s.metrics.requests("cluster")
	st.Requests.Errors = s.metrics.totalErrors()
	st.AdviseCacheHits = s.metrics.adviseHits.Value()
	st.Coalesced = s.metrics.coalesced.Value()
	st.AdviseCache = s.adviseCache.Stats()
	st.EncodeCache = s.encodeCache.Stats()
	for _, machine := range st.Machines {
		be := s.backends[machine]
		be.mu.RLock()
		for _, name := range be.modelNamesLocked() {
			ms := be.models[name]
			st.Models = append(st.Models, ModelStats{
				Platform:     machine,
				Name:         name,
				Default:      name == be.defaultName,
				Advise:       ms.advise.Load(),
				Predict:      ms.predict.Load(),
				LastUsedUnix: ms.lastUsed.Load(),
				Batcher:      ms.batcher.Stats(),
			})
		}
		be.mu.RUnlock()
	}
	st.Pool = s.pool.Stats()
	st.Admit = s.admit.Stats()
	st.Shed = make(map[string]uint64, len(admit.Reasons()))
	for _, reason := range admit.Reasons() {
		st.Shed[string(reason)] = s.metrics.shed[reason].Value()
	}
	st.Jobs = s.jobs.Stats()
	if s.cluster != nil {
		ring := s.Ring()
		st.Cluster = &ring
	}
	if s.lifecycle != nil {
		st.Lifecycle = s.lifecycle.stats()
	}
	return st
}
