package serve

import (
	"sync/atomic"
	"time"
)

// requestCounters tracks per-endpoint traffic with atomic counters.
type requestCounters struct {
	advise     atomic.Uint64
	predict    atomic.Uint64
	health     atomic.Uint64
	stats      atomic.Uint64
	errors     atomic.Uint64
	adviseHits atomic.Uint64 // advise responses answered from cache
}

// Stats is the /v1/stats payload: a full snapshot of the service's caches,
// batching, pooling and traffic counters.
type Stats struct {
	UptimeSeconds float64  `json:"uptime_seconds"`
	Machines      []string `json:"machines"`

	Requests struct {
		Advise  uint64 `json:"advise"`
		Predict uint64 `json:"predict"`
		Healthz uint64 `json:"healthz"`
		Stats   uint64 `json:"stats"`
		Errors  uint64 `json:"errors"`
	} `json:"requests"`

	AdviseCacheHits uint64     `json:"advise_cache_hits"`
	AdviseCache     CacheStats `json:"advise_cache"`
	EncodeCache     CacheStats `json:"encode_cache"`

	Batchers map[string]BatcherStats `json:"batchers"`
	Pool     PoolStats               `json:"pool"`
}

// snapshot assembles the stats payload from the server's live components.
func (s *Server) snapshot() Stats {
	st := Stats{UptimeSeconds: time.Since(s.start).Seconds()}
	st.Machines = s.machineNames()
	st.Requests.Advise = s.counters.advise.Load()
	st.Requests.Predict = s.counters.predict.Load()
	st.Requests.Healthz = s.counters.health.Load()
	st.Requests.Stats = s.counters.stats.Load()
	st.Requests.Errors = s.counters.errors.Load()
	st.AdviseCacheHits = s.counters.adviseHits.Load()
	st.AdviseCache = s.adviseCache.Stats()
	st.EncodeCache = s.encodeCache.Stats()
	st.Batchers = map[string]BatcherStats{}
	for name, be := range s.backends {
		st.Batchers[name] = be.batcher.Stats()
	}
	st.Pool = s.pool.Stats()
	return st
}
