package serve

import (
	"fmt"
	"math"
	"sync"
	"time"

	"paragraph/internal/admit"
	"paragraph/internal/obs"
)

// serveEndpoints are the per-endpoint metric label values, one per mux
// route. /v1/stats reads most of them back for its requests section;
// metrics and trace exist only in the exposition (adding them to the
// stats JSON would break its byte-compatibility contract).
var serveEndpoints = []string{
	"advise", "predict", "feedback", "healthz", "stats", "models", "ring",
	"replicate", "cluster", "jobs", "metrics", "trace",
}

// endpointInstruments are one endpoint's request counter and latency
// histogram, incremented by the instrument middleware.
type endpointInstruments struct {
	requests *obs.Counter
	duration *obs.Histogram
}

// serveMetrics is the server's metric surface: every series /metrics
// exposes, built on the same instruments /v1/stats snapshots — one source
// of truth, two renderings. Instruments the request path writes are
// registry-owned (lock-free); everything else (caches, pool, batchers,
// cluster) is read from its owning component at scrape time.
type serveMetrics struct {
	reg       *obs.Registry
	endpoints map[string]*endpointInstruments

	adviseHits *obs.Counter
	coalesced  *obs.Counter

	// shed counts admission rejections by reason (serve_shed_total).
	// Pre-registered for every reason so the series exist at zero —
	// operators alert on rate() over them, which needs a baseline.
	shed map[admit.Reason]*obs.Counter

	mu       sync.Mutex
	errors   map[string]*obs.Counter // endpoint "\x00" status class
	perModel map[string]bool         // platform "\x00" model: series registered
}

// newServeMetrics builds the registry over a fully assembled server (its
// caches, pool and per-model batchers must exist; cluster series join
// later via registerCluster).
func newServeMetrics(s *Server) *serveMetrics {
	m := &serveMetrics{
		reg:       obs.NewRegistry(),
		endpoints: map[string]*endpointInstruments{},
		shed:      map[admit.Reason]*obs.Counter{},
		errors:    map[string]*obs.Counter{},
		perModel:  map[string]bool{},
	}
	for _, reason := range admit.Reasons() {
		m.shed[reason] = m.reg.Counter("serve_shed_total",
			"Requests rejected by admission control, by reason.",
			obs.L("reason", string(reason)))
	}
	for _, ep := range serveEndpoints {
		m.endpoints[ep] = &endpointInstruments{
			requests: m.reg.Counter("serve_requests_total",
				"Requests received, by endpoint.", obs.L("endpoint", ep)),
			duration: m.reg.Histogram("serve_request_duration_seconds",
				"End-to-end request latency, by endpoint.", obs.L("endpoint", ep),
				obs.DefLatencyBuckets),
		}
	}
	m.adviseHits = m.reg.Counter("serve_advise_cache_hits_total",
		"Advise/predict responses answered from the response cache.", nil)
	m.coalesced = m.reg.Counter("serve_coalesced_total",
		"Responses that shared an identical concurrent request's evaluation (singleflight).", nil)

	m.reg.GaugeFunc("serve_uptime_seconds", "Seconds since the server started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })

	for name, c := range map[string]*Cache{"advise": s.adviseCache, "encode": s.encodeCache} {
		c, labels := c, obs.L("cache", name)
		m.reg.GaugeFunc("serve_cache_entries", "Entries resident, by cache.", labels,
			func() float64 { return float64(c.Stats().Entries) })
		m.reg.CounterFunc("serve_cache_hits_total", "Cache hits, by cache.", labels,
			func() float64 { return float64(c.Stats().Hits) })
		m.reg.CounterFunc("serve_cache_misses_total", "Cache misses, by cache.", labels,
			func() float64 { return float64(c.Stats().Misses) })
		m.reg.CounterFunc("serve_cache_evictions_total", "LRU evictions, by cache.", labels,
			func() float64 { return float64(c.Stats().Evictions) })
	}

	m.reg.GaugeFunc("serve_pool_size", "Evaluation pool slot count.", nil,
		func() float64 { return float64(s.pool.Stats().Size) })
	m.reg.GaugeFunc("serve_pool_in_flight", "Evaluations holding a pool slot.", nil,
		func() float64 { return float64(s.pool.inFlight.Load()) })
	m.reg.GaugeFunc("serve_pool_waiting", "Requests blocked waiting for a pool slot.", nil,
		func() float64 { return float64(s.pool.waiting.Load()) })
	m.reg.CounterFunc("serve_pool_evaluations_total", "Evaluations the pool has run.", nil,
		func() float64 { return float64(s.pool.total.Load()) })

	// Admission fair queue: aggregate depth and per-client lanes. Lanes
	// come and go with traffic, so the per-client series are discovered at
	// scrape time (CollectFunc) rather than pre-registered.
	m.reg.GaugeFunc("serve_admit_queued", "Requests waiting in the admission fair queue.", nil,
		func() float64 { return float64(s.admit.Stats().Queued) })
	m.reg.GaugeFunc("serve_admit_running", "Admitted evaluations currently holding a slot.", nil,
		func() float64 { return float64(s.admit.Stats().Running) })
	m.reg.GaugeFunc("serve_admit_lanes", "Per-client lanes currently tracked by the fair queue.", nil,
		func() float64 { return float64(s.admit.Stats().Lanes) })
	m.reg.CounterFunc("serve_admit_admitted_total", "Requests granted an evaluation slot.", nil,
		func() float64 { return float64(s.admit.Stats().Admitted) })
	m.reg.CollectFunc("serve_admit_lane_depth",
		"Requests queued per client lane.", "gauge",
		func(emit func(obs.Labels, float64)) {
			for _, l := range s.admit.Stats().LaneStats {
				emit(obs.L("client", l.Client), float64(l.Queued))
			}
		})
	m.reg.CollectFunc("serve_admit_client_admitted_total",
		"Requests admitted, by client.", "counter",
		func(emit func(obs.Labels, float64)) {
			for _, c := range s.admit.Stats().Clients {
				emit(obs.L("client", c.Client), float64(c.Admitted))
			}
		})
	m.reg.CollectFunc("serve_admit_client_shed_total",
		"Requests shed at the fair queue, by client.", "counter",
		func(emit func(obs.Labels, float64)) {
			for _, c := range s.admit.Stats().Clients {
				emit(obs.L("client", c.Client), float64(c.Shed))
			}
		})

	// Async job store.
	m.reg.CollectFunc("serve_jobs", "Async jobs resident in the store, by state.", "gauge",
		func(emit func(obs.Labels, float64)) {
			st := s.jobs.Stats()
			emit(obs.L("state", "pending"), float64(st.Pending))
			emit(obs.L("state", "running"), float64(st.Running))
			emit(obs.L("state", "done"), float64(st.Done))
			emit(obs.L("state", "failed"), float64(st.Failed))
		})
	m.reg.CounterFunc("serve_jobs_submitted_total", "Async jobs accepted.", nil,
		func() float64 { return float64(s.jobs.Stats().Submitted) })
	m.reg.CounterFunc("serve_jobs_rejected_total", "Async jobs rejected (store at capacity).", nil,
		func() float64 { return float64(s.jobs.Stats().Rejected) })
	m.reg.CounterFunc("serve_jobs_expired_total", "Finished async jobs reclaimed by TTL.", nil,
		func() float64 { return float64(s.jobs.Stats().Expired) })

	for machine, be := range s.backends {
		for name, ms := range be.models {
			m.registerModel(machine, name, ms)
		}
	}

	m.reg.CounterFunc("serve_traces_started_total", "Request traces started.", nil,
		func() float64 { return float64(s.tracer.Started()) })
	m.reg.CounterFunc("serve_traces_slow_total", "Traces logged as slow requests.", nil,
		func() float64 { return float64(s.tracer.SlowCount()) })
	return m
}

// registerModel adds one model version's series. Safe to call for a
// version adopted at runtime; a (platform, model) pair is registered at
// most once per process — duplicate registrations would panic the registry.
// A pruned-then-readopted name would keep scraping the first registration's
// instruments; candidate names are timestamped, so names never recur.
func (m *serveMetrics) registerModel(machine, name string, ms *modelState) {
	key := machine + "\x00" + name
	m.mu.Lock()
	if m.perModel[key] {
		m.mu.Unlock()
		return
	}
	m.perModel[key] = true
	m.mu.Unlock()

	labels := obs.L("platform", machine, "model", name)
	m.reg.RegisterHistogram("serve_batcher_latency_seconds",
		"Per-prediction latency through the micro-batcher (enqueue to result), by model.",
		labels, ms.batcher.latency)
	m.reg.RegisterHistogram("serve_batch_size",
		"Samples per evaluated micro-batch, by model.", labels, ms.batcher.sizes)
	m.reg.GaugeFunc("serve_batcher_queue_depth",
		"Samples enqueued but not yet in a model evaluation, by model.", labels,
		func() float64 { return float64(ms.batcher.queued.Load()) })
	m.reg.CounterFunc("serve_batcher_batches_total",
		"Batches evaluated, by model.", labels,
		func() float64 { return float64(ms.batcher.Stats().Batches) })
	m.reg.CounterFunc("serve_batcher_cancelled_total",
		"Predictions abandoned by their context before evaluation, by model.", labels,
		func() float64 { return float64(ms.batcher.cancelled.Load()) })
	m.reg.CounterFunc("serve_model_advise_total",
		"Advise responses computed or served, by model.", labels,
		func() float64 { return float64(ms.advise.Load()) })
	m.reg.CounterFunc("serve_model_predict_total",
		"Predict responses computed or served, by model.", labels,
		func() float64 { return float64(ms.predict.Load()) })
}

// registerLifecycle adds the feedback→retrain→rollout series. Per-platform
// and per-model rollout gauges are discovered at scrape time (CollectFunc):
// candidates come and go with retrains.
func (m *serveMetrics) registerLifecycle(lc *lifecycle) {
	lc.outcomes = map[string]*obs.Counter{}
	for _, oc := range feedbackOutcomes {
		lc.outcomes[oc] = m.reg.Counter("serve_feedback_total",
			"Feedback submissions, by outcome.", obs.L("outcome", oc))
	}
	m.reg.CounterFunc("serve_retrains_total",
		"Background retrains started from accumulated feedback.", nil,
		func() float64 { return float64(lc.retrains.Load()) })
	m.reg.CounterFunc("serve_retrain_errors_total",
		"Background retrains that failed.", nil,
		func() float64 { return float64(lc.retrainErrors.Load()) })
	m.reg.CounterFunc("serve_promotions_total",
		"Candidates promoted to stable.", nil,
		func() float64 { return float64(lc.promotions.Load()) })
	m.reg.CounterFunc("serve_rollbacks_total",
		"Candidates rolled back for regressing measured quality.", nil,
		func() float64 { return float64(lc.rollbacks.Load()) })
	m.reg.CounterFunc("serve_gc_removed_total",
		"Superseded checkpoint versions pruned after promotion.", nil,
		func() float64 { return float64(lc.gcRemoved.Load()) })
	m.reg.CollectFunc("serve_rollout_stage",
		"Rollout stage, by platform: 0 stable-only, 1 candidate taking traffic.", "gauge",
		func(emit func(obs.Labels, float64)) {
			lc.collectRollout(func(platform string, p *platRollout) {
				stage := 0.0
				if p.st.Candidate != "" {
					stage = 1
				}
				emit(obs.L("platform", platform), stage)
			})
		})
	m.reg.CollectFunc("serve_rollout_split",
		"Percentage of unpinned traffic routed to the candidate, by platform.", "gauge",
		func(emit func(obs.Labels, float64)) {
			lc.collectRollout(func(platform string, p *platRollout) {
				split := 0.0
				if p.st.Candidate != "" {
					split = p.st.SplitPct
				}
				emit(obs.L("platform", platform), split)
			})
		})
	m.reg.CollectFunc("serve_model_rank_corr",
		"Windowed Spearman rank correlation between predicted and measured runtimes, by model.", "gauge",
		func(emit func(obs.Labels, float64)) {
			lc.collectRollout(func(platform string, p *platRollout) {
				for _, name := range sortedWindowNames(p.windows) {
					corr, _, _ := p.windows[name].Snapshot()
					if !math.IsNaN(corr) {
						emit(obs.L("platform", platform, "model", name), corr)
					}
				}
			})
		})
	m.reg.CollectFunc("serve_model_feedback_pairs",
		"Measured (predicted, measured) pairs in the quality window, by model.", "gauge",
		func(emit func(obs.Labels, float64)) {
			lc.collectRollout(func(platform string, p *platRollout) {
				for _, name := range sortedWindowNames(p.windows) {
					_, n, _ := p.windows[name].Snapshot()
					emit(obs.L("platform", platform, "model", name), float64(n))
				}
			})
		})
}

// registerCluster adds the cluster-mode series. Per-peer forward counters
// are discovered at scrape time (peers appear once traffic reaches them),
// hence CollectFunc rather than fixed series.
func (m *serveMetrics) registerCluster(c *cluster) {
	m.reg.CounterFunc("serve_cluster_forwarded_in_total",
		"Requests received already forwarded by a peer.", nil,
		func() float64 { return float64(c.forwardedIn.Load()) })
	m.reg.CounterFunc("serve_cluster_local_fallbacks_total",
		"Requests served locally because every owner was unreachable.", nil,
		func() float64 { return float64(c.fallbacks.Load()) })
	m.reg.CounterFunc("serve_cluster_replica_hits_total",
		"Forwards answered by a replica after the primary owner failed.", nil,
		func() float64 { return float64(c.replicaHits.Load()) })
	m.reg.CounterFunc("serve_cluster_replication_writes_total",
		"Cache entries enqueued for write-through to replicas.", nil,
		func() float64 { return float64(c.repWrites.Load()) })
	m.reg.CounterFunc("serve_cluster_replication_drops_total",
		"Write-throughs dropped because the async queue was full.", nil,
		func() float64 { return float64(c.repDrops.Load()) })
	m.reg.CounterFunc("serve_cluster_replicated_in_total",
		"Cache entries accepted via POST /v1/replicate.", nil,
		func() float64 { return float64(c.replicatedIn.Load()) })
	m.reg.GaugeFunc("serve_cluster_replication_queue_depth",
		"Write-throughs waiting in the async queue.", nil,
		func() float64 { return float64(c.fwd.Async().Queued) })
	m.reg.CollectFunc("serve_cluster_forwards_total",
		"Requests this process forwarded and had answered, by peer.", "counter",
		func(emit func(obs.Labels, float64)) {
			for _, ps := range c.fwd.Stats() {
				emit(obs.L("peer", ps.Peer), float64(ps.Forwards))
			}
		})
	m.reg.CollectFunc("serve_cluster_forward_errors_total",
		"Failed forward attempts (peer unreachable), by peer.", "counter",
		func(emit func(obs.Labels, float64)) {
			for _, ps := range c.fwd.Stats() {
				emit(obs.L("peer", ps.Peer), float64(ps.Errors))
			}
		})

	// Elastic membership: the gossip/join/eviction surface and the
	// self-healing (anti-entropy, read-repair, drain) counters.
	m.reg.GaugeFunc("serve_cluster_epoch",
		"Ring version; increments on every membership change.", nil,
		func() float64 { return float64(c.mem.Epoch()) })
	m.reg.GaugeFunc("serve_cluster_members",
		"Live members in the current ring.", nil,
		func() float64 {
			ring := c.ring()
			if ring == nil {
				return 0
			}
			return float64(len(ring.Members()))
		})
	m.reg.GaugeFunc("serve_cluster_joined",
		"1 once this peer has been admitted by a seed (always 1 without seeds).", nil,
		func() float64 {
			if c.joined.Load() {
				return 1
			}
			return 0
		})
	m.reg.CounterFunc("serve_cluster_joins_total",
		"Join requests admitted by this peer.", nil,
		func() float64 { return float64(c.joinsIn.Load()) })
	m.reg.CounterFunc("serve_cluster_gossip_sent_total",
		"Gossip exchanges this peer initiated and completed.", nil,
		func() float64 { return float64(c.gossipOut.Load()) })
	m.reg.CounterFunc("serve_cluster_gossip_received_total",
		"Gossip exchanges answered.", nil,
		func() float64 { return float64(c.gossipIn.Load()) })
	m.reg.CounterFunc("serve_cluster_gossip_errors_total",
		"Failed gossip or join exchanges.", nil,
		func() float64 { return float64(c.gossipErrs.Load()) })
	m.reg.CounterFunc("serve_cluster_evictions_total",
		"Members this peer declared dead after missed heartbeats.", nil,
		func() float64 { return float64(c.mem.Counters().Evictions) })
	m.reg.CounterFunc("serve_cluster_refutations_total",
		"Times this peer refuted its own death or departure.", nil,
		func() float64 { return float64(c.mem.Counters().Refutations) })
	m.reg.CounterFunc("serve_cluster_pruned_clients_total",
		"Idle peer HTTP clients closed after members left the ring.", nil,
		func() float64 { return float64(c.pruned.Load()) })
	m.reg.CounterFunc("serve_cluster_anti_entropy_sweeps_total",
		"Anti-entropy sweeps completed.", nil,
		func() float64 { return float64(c.aeSweeps.Load()) })
	m.reg.CounterFunc("serve_cluster_anti_entropy_refills_total",
		"Missing owned entries refilled from peer caches by anti-entropy.", nil,
		func() float64 { return float64(c.aeRefills.Load()) })
	m.reg.CounterFunc("serve_cluster_anti_entropy_errors_total",
		"Failed anti-entropy fetches.", nil,
		func() float64 { return float64(c.aeErrs.Load()) })
	m.reg.CounterFunc("serve_cluster_read_repairs_total",
		"Owned misses answered from a co-owner's cache on the request path.", nil,
		func() float64 { return float64(c.readRepairs.Load()) })
	m.reg.CounterFunc("serve_cluster_read_repair_misses_total",
		"Read-repair attempts where no co-owner held the entry.", nil,
		func() float64 { return float64(c.repairMisses.Load()) })
	m.reg.CounterFunc("serve_cluster_drained_out_total",
		"Cache entries streamed to new owners during planned departure.", nil,
		func() float64 { return float64(c.drainedOut.Load()) })
}

// statusClass folds an HTTP status into its class label ("4xx", "5xx").
func statusClass(status int) string {
	switch status / 100 {
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	case 5:
		return "5xx"
	default:
		return fmt.Sprintf("%dxx", status/100)
	}
}

// errorCounter returns (creating on first use) the serve_errors_total
// series for one endpoint and status class. Lazy because the full
// endpoint × class product would be mostly dead series.
func (m *serveMetrics) errorCounter(endpoint string, status int) *obs.Counter {
	class := statusClass(status)
	key := endpoint + "\x00" + class
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.errors[key]
	if !ok {
		c = m.reg.Counter("serve_errors_total",
			"Error responses, by endpoint and status class.",
			obs.L("endpoint", endpoint, "code", class))
		m.errors[key] = c
	}
	return c
}

// requests reads one endpoint's request count (the /v1/stats source).
func (m *serveMetrics) requests(endpoint string) uint64 {
	return m.endpoints[endpoint].requests.Value()
}

// totalErrors sums the per-endpoint-per-class error counters, preserving
// the /v1/stats requests.errors field's original "all errors" semantics.
func (m *serveMetrics) totalErrors() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, c := range m.errors {
		n += c.Value()
	}
	return n
}
