package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"paragraph/internal/gnn"
	"paragraph/internal/hw"
)

// The overload harness: these tests drive the server well past its
// evaluation capacity and assert the admission-control contract — bounded
// queues shed with 503 + Retry-After instead of queueing without limit,
// deadline-carrying requests never hang past their budget, cache hits
// stay fast for interactive traffic throughout, and the whole system
// drains back to idle when the flood stops.

// slowModel evaluates like the oracle but costs a fixed wall-clock delay
// per batch, so latency histograms — and the drain estimates built on
// them — have real signal.
type slowModel struct{ delay time.Duration }

func (m slowModel) PredictBatch(ss []*gnn.Sample) []float64 {
	time.Sleep(m.delay)
	return oracleModel{}.PredictBatch(ss)
}

// newOverloadServer serves the V100 profile from model under opts.
func newOverloadServer(t *testing.T, model BatchPredictor, opts Options) *Server {
	t.Helper()
	s, err := NewServer([]Backend{
		{Machine: hw.V100(), Model: model, Prep: testPrep()},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// doH is do with request headers.
func doH(t *testing.T, s *Server, method, path string, body any, headers map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// overloadReq is an advise request over a single-point GPU space whose
// cache key varies with n, so each call is a distinct cold evaluation.
func overloadReq(n int) AdviseRequest {
	return AdviseRequest{
		Kernel:   "matmul",
		Machine:  "NVIDIA V100 (GPU)",
		Bindings: map[string]float64{"n": float64(n)},
		Space:    &SpaceSpec{GPUTeams: []int{64}, GPUThreads: []int{128}},
	}
}

// checkRetryAfter asserts a shed response carries a positive integral
// Retry-After and a JSON error body.
func checkRetryAfter(t *testing.T, rec *httptest.ResponseRecorder) {
	t.Helper()
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Errorf("shed Retry-After = %q, want an integer >= 1", ra)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("shed body not a JSON error: %s", rec.Body.String())
	}
}

// TestOverloadShedsAtQueueBounds floods a wedged server far past its
// bounded backlog: the excess sheds immediately with 503 + Retry-After,
// health stays green throughout, and once the flood drains the queue
// returns to exactly zero.
func TestOverloadShedsAtQueueBounds(t *testing.T) {
	model := &blockingModel{release: make(chan struct{})}
	s := newOverloadServer(t, model, Options{
		PoolSize: 2, QueueLimit: 2, QueuePerClient: 2,
	})
	released := false
	release := func() {
		if !released {
			released = true
			close(model.release)
		}
	}
	defer release()

	const flood = 10
	codes := make([]int, flood)
	recs := make([]*httptest.ResponseRecorder, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := do(t, s, http.MethodPost, "/v1/advise", overloadReq(i), nil)
			codes[i] = rec.Code
			recs[i] = rec
		}(i)
	}

	// With the model wedged, the system must settle at exactly capacity:
	// PoolSize running, QueueLimit queued, everything else shed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.admit.Stats()
		if st.Running == 2 && st.Queued == 2 && st.ShedQueueFull+st.ShedLaneFull == flood-4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never settled at capacity: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// A wedged evaluation path must not take health down with it.
	if rec := do(t, s, http.MethodGet, "/v1/healthz", nil, nil); rec.Code != http.StatusOK {
		t.Errorf("healthz under overload = %d, want 200", rec.Code)
	}

	release()
	wg.Wait()

	ok, shed := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			checkRetryAfter(t, recs[i])
		default:
			t.Errorf("request %d: unexpected status %d: %s", i, code, recs[i].Body.String())
		}
	}
	if ok != 4 || shed != flood-4 {
		t.Errorf("ok/shed = %d/%d, want 4/%d", ok, shed, flood-4)
	}

	st := s.admit.Stats()
	if st.Running != 0 || st.Queued != 0 || st.Lanes != 0 {
		t.Errorf("queue did not drain to idle: %+v", st)
	}
	if st.Admitted != 4 {
		t.Errorf("admitted = %d, want 4", st.Admitted)
	}
	if st.PeakQueued != 2 {
		t.Errorf("peak queued = %d, want the configured bound 2", st.PeakQueued)
	}

	var stats Stats
	do(t, s, http.MethodGet, "/v1/stats", nil, &stats)
	var total uint64
	for _, n := range stats.Shed {
		total += n
	}
	if total != flood-4 {
		t.Errorf("/v1/stats shed total = %d, want %d (%v)", total, flood-4, stats.Shed)
	}
}

// TestOverloadDeadlineShedding: once the latency histograms carry signal,
// a request whose budget cannot cover the predicted drain is rejected up
// front — instantly, with a Retry-After — while budget-less bulk traffic
// keeps queueing and cache hits keep serving interactive traffic fast.
func TestOverloadDeadlineShedding(t *testing.T) {
	s := newOverloadServer(t, slowModel{delay: 30 * time.Millisecond}, Options{
		PoolSize: 1, GridWorkers: 1,
	})

	// Warm-up: a cold server never sheds on a guess, so this must succeed
	// and seed the per-prediction latency histogram (~30ms median).
	if rec := do(t, s, http.MethodPost, "/v1/advise", overloadReq(0), nil); rec.Code != http.StatusOK {
		t.Fatalf("warm-up advise: %d %s", rec.Code, rec.Body.String())
	}

	// Bulk flood: budget-less cold evaluations that occupy the single slot
	// and build a backlog.
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if rec := do(t, s, http.MethodPost, "/v1/advise", overloadReq(i), nil); rec.Code != http.StatusOK {
				t.Errorf("bulk request %d: %d %s", i, rec.Code, rec.Body.String())
			}
		}(i)
	}

	// Interactive misses with a 5ms budget: the drain estimate (>= one
	// 4-point evaluation at ~30ms/point) dwarfs it, so they shed now, not
	// after blocking through the backlog.
	for i := 0; i < 5; i++ {
		start := time.Now()
		rec := doH(t, s, http.MethodPost, "/v1/advise", overloadReq(100+i),
			map[string]string{"X-Paragraph-Deadline": "5ms"})
		elapsed := time.Since(start)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("deadlined miss %d = %d, want 503: %s", i, rec.Code, rec.Body.String())
		}
		checkRetryAfter(t, rec)
		if elapsed > 3*time.Second {
			t.Errorf("deadlined miss %d took %v; shedding must not wait through the backlog", i, elapsed)
		}
	}

	// An already-expired budget sheds as "expired", same surface.
	rec := doH(t, s, http.MethodPost, "/v1/advise", overloadReq(200),
		map[string]string{"X-Paragraph-Deadline": "1ns"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	checkRetryAfter(t, rec)

	// A malformed deadline is the client's error, not a shed.
	if rec := doH(t, s, http.MethodPost, "/v1/advise", overloadReq(201),
		map[string]string{"X-Paragraph-Deadline": "soon"}); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed deadline = %d, want 400", rec.Code)
	}

	// Interactive traffic on warm keys rides the cache and is never shed,
	// whatever its budget — the p99 bound under flood comes from here.
	var worst time.Duration
	for i := 0; i < 20; i++ {
		start := time.Now()
		rec := doH(t, s, http.MethodPost, "/v1/advise", overloadReq(0),
			map[string]string{"X-Paragraph-Deadline": "50ms"})
		if rec.Code != http.StatusOK {
			t.Fatalf("interactive cache hit %d = %d: %s", i, rec.Code, rec.Body.String())
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	if worst > 2*time.Second {
		t.Errorf("interactive worst-case latency %v under flood; cache hits must bypass admission", worst)
	}

	wg.Wait()

	var stats Stats
	do(t, s, http.MethodGet, "/v1/stats", nil, &stats)
	if stats.Shed["deadline"] < 5 {
		t.Errorf("shed[deadline] = %d, want >= 5", stats.Shed["deadline"])
	}
	if stats.Shed["expired"] < 1 {
		t.Errorf("shed[expired] = %d, want >= 1", stats.Shed["expired"])
	}
}

// TestOverloadDeadlineHonoredInQueue: a request that passes the up-front
// check (cold histograms estimate zero drain) but whose budget expires
// while it waits in the fair queue is released at its deadline with a
// 503 — queued work is abandoned, not hung.
func TestOverloadDeadlineHonoredInQueue(t *testing.T) {
	model := &blockingModel{release: make(chan struct{})}
	s := newOverloadServer(t, model, Options{PoolSize: 1})
	defer close(model.release)

	// Wedge the single slot with a budget-less request.
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		do(t, s, http.MethodPost, "/v1/advise", overloadReq(0), nil)
	}()
	<-started
	deadline := time.Now().Add(10 * time.Second)
	for s.admit.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wedge request never acquired the slot")
		}
		time.Sleep(time.Millisecond)
	}

	const budget = 150 * time.Millisecond
	start := time.Now()
	rec := doH(t, s, http.MethodPost, "/v1/advise", overloadReq(1),
		map[string]string{"X-Paragraph-Deadline": budget.String()})
	elapsed := time.Since(start)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued deadlined request = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	checkRetryAfter(t, rec)
	if elapsed < budget {
		t.Errorf("request returned in %v, before its %v budget — shed up front with cold histograms?", elapsed, budget)
	}
	if slack := 5 * time.Second; elapsed > budget+slack {
		t.Errorf("request hung %v past its %v budget", elapsed-budget, budget)
	}

	var stats Stats
	do(t, s, http.MethodGet, "/v1/stats", nil, &stats)
	if stats.Shed["expired"] != 1 {
		t.Errorf("shed[expired] = %d, want 1", stats.Shed["expired"])
	}
}

// TestAdmissionMetricsExposition: the overload-control series — shed
// counters by reason, queue gauges, per-client counters, job-store
// states — appear in /metrics, and /v1/stats carries the same numbers.
func TestAdmissionMetricsExposition(t *testing.T) {
	s := newOverloadServer(t, slowModel{delay: 20 * time.Millisecond}, Options{
		PoolSize: 1, GridWorkers: 1,
	})

	// One successful evaluation (seeds histograms), one deadline shed, one
	// finished async job.
	if rec := do(t, s, http.MethodPost, "/v1/advise", overloadReq(0), nil); rec.Code != http.StatusOK {
		t.Fatalf("warm-up: %d %s", rec.Code, rec.Body.String())
	}
	if rec := doH(t, s, http.MethodPost, "/v1/advise", overloadReq(1),
		map[string]string{"X-Paragraph-Deadline": "1ms"}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("deadline shed: %d", rec.Code)
	}
	sub := submitAsync(t, s, overloadReq(2))
	waitJob(t, s, sub.Poll, "done")

	out := scrapeMetrics(t, s)
	for _, want := range []string{
		"# TYPE serve_shed_total counter",
		`serve_shed_total{reason="deadline"} 1`,
		`serve_shed_total{reason="queue_full"} 0`,
		`serve_shed_total{reason="lane_full"} 0`,
		`serve_shed_total{reason="expired"} 0`,
		`serve_shed_total{reason="jobs_full"} 0`,
		"serve_admit_queued 0",
		"serve_admit_running 0",
		"serve_admit_lanes 0",
		"serve_admit_admitted_total 2",
		`serve_admit_client_admitted_total{client="192.0.2.1"} 2`,
		`serve_jobs{state="done"} 1`,
		`serve_jobs{state="pending"} 0`,
		"serve_jobs_submitted_total 1",
		"serve_jobs_rejected_total 0",
		"serve_jobs_expired_total 0",
		`serve_batcher_cancelled_total{platform="NVIDIA V100 (GPU)",model="default"}`,
		`serve_requests_total{endpoint="jobs"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	var st Stats
	do(t, s, http.MethodGet, "/v1/stats", nil, &st)
	if st.Admit.Concurrency != 1 || st.Admit.Admitted != 2 {
		t.Errorf("stats admit = %+v", st.Admit)
	}
	for _, reason := range []string{"queue_full", "lane_full", "deadline", "expired", "jobs_full"} {
		if _, ok := st.Shed[reason]; !ok {
			t.Errorf("stats shed map missing reason %q: %v", reason, st.Shed)
		}
	}
	if st.Shed["deadline"] != 1 {
		t.Errorf("stats shed[deadline] = %d, want 1", st.Shed["deadline"])
	}
	if st.Jobs.Submitted != 1 || st.Jobs.Done != 1 {
		t.Errorf("stats jobs = %+v", st.Jobs)
	}
	if st.Requests.Jobs == 0 {
		t.Error("stats requests.jobs = 0, want the poll counted")
	}
}
