package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"strconv"
	"time"

	"paragraph/internal/admit"
	"paragraph/internal/advisor"
	"paragraph/internal/apps"
	"paragraph/internal/variants"
)

// This file is the glue between internal/admit (pure policy) and the HTTP
// layer: client identity, deadline extraction, evaluation-cost estimation
// from the batcher's live latency histograms, and the single place a
// ShedError becomes a 503 with a Retry-After header.

// clientKey identifies the requester for fair queueing: the
// X-Paragraph-Client header when present, else the remote host (port
// stripped, so one busy client cannot widen its share by opening
// connections), else a shared bucket.
func clientKey(r *http.Request) string {
	if c := r.Header.Get(admit.ClientHeader); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && host != "" {
		return host
	}
	if r.RemoteAddr != "" {
		return r.RemoteAddr
	}
	return "unknown"
}

// requestContext derives the request's evaluation context: the base
// context plus, when the X-Paragraph-Deadline header is present, a
// deadline that bounds the whole evaluation (queue wait included). The
// returned cancel must always be called. A malformed header is a client
// error, reported before any work starts.
func requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	h := r.Header.Get(admit.DeadlineHeader)
	if h == "" {
		return r.Context(), func() {}, nil
	}
	d, err := admit.ParseDeadline(h)
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// evalUnit is the live per-evaluation cost estimate for one model: the
// median per-prediction latency through its batcher. Zero until the model
// has served traffic — a cold server never sheds on a guess.
func evalUnit(ms *modelState) time.Duration {
	return time.Duration(ms.batcher.latency.Quantile(0.5) * float64(time.Second))
}

// adviseGridPoints counts the predictions one advise request will fan
// out, mirroring AdviseCtx's enumeration (machine-compatible variant
// kinds × the search space) without generating anything.
func adviseGridPoints(be *backendState, k apps.Kernel, space advisor.SearchSpace) int {
	points := 0
	for _, kind := range variants.Kinds() {
		if kind.IsGPU() != be.machine.IsGPU {
			continue
		}
		if kind.IsCollapse() && !k.Collapsible {
			continue
		}
		if kind.IsGPU() {
			points += len(space.GPUTeams) * len(space.GPUThreads)
		} else {
			points += len(space.CPUThreads)
		}
	}
	return points
}

// adviseCost estimates one advise evaluation end to end: grid points
// spread over the advisor's workers, each wave costing the model's live
// per-prediction unit.
func (s *Server) adviseCost(be *backendState, ms *modelState, k apps.Kernel, space advisor.SearchSpace) time.Duration {
	unit := evalUnit(ms)
	if unit <= 0 {
		return 0
	}
	points := adviseGridPoints(be, k, space)
	workers := s.opts.GridWorkers
	if workers < 1 {
		workers = 1
	}
	waves := (points + workers - 1) / workers
	if waves < 1 {
		waves = 1
	}
	return time.Duration(waves) * unit
}

// shedCheck decides up front whether a deadline-carrying request should
// be rejected: the admission backlog (queued waiters plus evaluations in
// flight ahead of it), drained cost-sized waves at a time, must fit the
// request's remaining budget. Requests without a deadline never shed
// here — they queue like before. Returns nil to admit.
func (s *Server) shedCheck(ctx context.Context, cost time.Duration) *admit.ShedError {
	dl, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	st := s.admit.Stats()
	drain := admit.EstimateDrain(st.Queued+st.Running, st.Concurrency, cost)
	return admit.CheckDeadline(time.Until(dl), drain)
}

// asShed extracts a ShedError, translating context expiry — the deadline
// fired while queued or mid-evaluation — into ReasonExpired so callers
// get one uniform 503 + Retry-After surface and zero requests hang past
// their deadline.
func asShed(err error) (*admit.ShedError, bool) {
	var shed *admit.ShedError
	if errors.As(err, &shed) {
		return shed, true
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return &admit.ShedError{Reason: admit.ReasonExpired}, true
	}
	return nil, false
}

// writeShed maps a ShedError to 503 Service Unavailable with a
// Retry-After header and counts it under serve_shed_total{reason}. A
// shed with no back-off estimate gets the queue's own drain guess so the
// header is never absent.
func (s *Server) writeShed(w http.ResponseWriter, shed *admit.ShedError, cost time.Duration) {
	retry := shed.RetryAfter
	if retry <= 0 {
		st := s.admit.Stats()
		retry = admit.EstimateDrain(st.Queued+st.Running, st.Concurrency, cost)
	}
	secs := admit.RetryAfterSeconds(retry)
	if c, ok := s.metrics.shed[shed.Reason]; ok {
		c.Inc()
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.fail(w, http.StatusServiceUnavailable, "overloaded: %s (retry after %ds)", shed.Reason, secs)
}

// remainingBudget reports how much of ctx's deadline is left; zero when
// ctx has none. Forwards propagate it so a peer applies the same budget.
func remainingBudget(ctx context.Context) time.Duration {
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			return rem
		}
		return time.Nanosecond // expired; the peer will shed it honestly
	}
	return 0
}

// admitRun wraps an evaluation in the fair queue and the eval pool: the
// queue grants slots per-client fair (its concurrency equals the pool
// size, so the pool itself never queues and its stats stay meaningful),
// the pool keeps its oversubscription accounting.
func (s *Server) admitRun(ctx context.Context, client string, fn func() error) error {
	return s.admit.Run(ctx, client, func() error {
		return s.pool.Run(fn)
	})
}
