package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"paragraph/internal/admit"
)

// Async advise: POST /v1/advise?async=1 returns 202 with a job id
// immediately and evaluates in the background; the client polls
// GET /v1/jobs/{id} (or streams the finished ranking with ?stream=1).
// The job store is bounded and TTL-evicted, so a client that never polls
// cannot grow server memory, and submissions beyond capacity shed with
// the same 503 + Retry-After surface as the synchronous path.

// JobSubmitResponse is the 202 Accepted payload of an async submission.
type JobSubmitResponse struct {
	JobID  string `json:"job_id"`
	Status string `json:"status"`
	// Poll is the URL to fetch the job's state and, once done, its result.
	Poll string `json:"poll"`
}

// JobResponse is the GET /v1/jobs/{id} payload. Result is the job's
// AdviseResponse once done (or the owning peer's verbatim answer when the
// evaluation was forwarded in cluster mode).
type JobResponse struct {
	JobID       string  `json:"job_id"`
	Status      string  `json:"status"`
	CreatedUnix int64   `json:"created_unix"`
	ElapsedMS   float64 `json:"elapsed_ms,omitempty"` // start → finish, finished jobs only
	Error       string  `json:"error,omitempty"`
	Result      any     `json:"result,omitempty"`
}

// startAdviseJob is the async branch of handleAdvise: register a job,
// evaluate in the background under the server's lifetime (not the
// request's — the submitting connection is gone by then), answer 202.
// A deadline header bounds the background evaluation the same way it
// would bound a synchronous request.
func (s *Server) startAdviseJob(w http.ResponseWriter, r *http.Request, p adviseParams) {
	var budget time.Duration
	if h := r.Header.Get(admit.DeadlineHeader); h != "" {
		d, err := admit.ParseDeadline(h)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		budget = d
	}
	id, err := s.jobs.Submit()
	if err != nil {
		if shed, ok := asShed(err); ok {
			s.writeShed(w, shed, s.adviseCost(p.be, p.ms, p.k, p.space))
			return
		}
		s.fail(w, http.StatusInternalServerError, "submit job: %v", err)
		return
	}
	s.jobsWG.Add(1)
	go func() {
		defer s.jobsWG.Done()
		s.runAdviseJob(id, p, budget)
	}()
	s.writeJSON(w, http.StatusAccepted, JobSubmitResponse{
		JobID:  id,
		Status: string(admit.JobPending),
		Poll:   "/v1/jobs/" + id,
	})
}

// runAdviseJob evaluates one async job through the same admission, cache,
// cluster and singleflight path the synchronous handler uses. budget > 0
// bounds the evaluation; jobsCtx bounds it to the server's life either
// way, so Close never strands a running job.
func (s *Server) runAdviseJob(id string, p adviseParams, budget time.Duration) {
	ctx := s.jobsCtx
	if budget > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	s.jobs.Start(id)
	start := time.Now()
	recs, pr, cached, coalesced, err := s.adviseRecs(ctx, nil, p)
	if err != nil {
		if shed, ok := asShed(err); ok {
			if c, ok := s.metrics.shed[shed.Reason]; ok {
				c.Inc()
			}
			err = shed
		}
		s.jobs.Finish(id, nil, err)
		return
	}
	if coalesced {
		s.metrics.coalesced.Inc()
	}
	if pr != nil {
		// A peer answered. Its 2xx body is a rendered AdviseResponse and
		// becomes the result verbatim; anything else is the evaluation's
		// authoritative failure.
		if pr.status/100 == 2 {
			s.jobs.Finish(id, json.RawMessage(pr.body), nil)
		} else {
			s.jobs.Finish(id, nil, fmt.Errorf("peer answered %d: %s", pr.status, strings.TrimSpace(string(pr.body))))
		}
		return
	}
	p.ms.advise.Add(1)
	p.ms.touch()
	if s.lifecycle != nil {
		s.lifecycle.noteAdvise(p, recs)
	}
	resp := s.renderAdvise(p, recs, cached, coalesced)
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.jobs.Finish(id, resp, nil)
}

// handleJobs serves GET /v1/jobs/{id}: the job's state while it runs, its
// result (or error) once finished. ?stream=1 renders a finished ranking
// as NDJSON — one header line, then one line per recommendation, flushed
// as written — for clients that consume rankings incrementally.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		s.fail(w, http.StatusNotFound, "job id required: GET /v1/jobs/{id}")
		return
	}
	j, ok := s.jobs.Get(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown or expired job %q", id)
		return
	}
	if stream := r.URL.Query().Get("stream"); stream == "1" || stream == "true" {
		s.streamJob(w, j)
		return
	}
	resp := JobResponse{
		JobID:       j.ID,
		Status:      string(j.State),
		CreatedUnix: j.Created.Unix(),
		Error:       j.Error,
		Result:      j.Result,
	}
	if !j.Finished.IsZero() && !j.Started.IsZero() {
		resp.ElapsedMS = float64(j.Finished.Sub(j.Started).Microseconds()) / 1000
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// streamJob renders one finished job as NDJSON: a header object first,
// then each recommendation on its own flushed line. A job that is still
// pending/running streams just its header (poll again later); a forwarded
// job's result is a peer-rendered response and streams as one line.
func (s *Server) streamJob(w http.ResponseWriter, j admit.Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	head := JobResponse{
		JobID:       j.ID,
		Status:      string(j.State),
		CreatedUnix: j.Created.Unix(),
		Error:       j.Error,
	}
	if !j.Finished.IsZero() && !j.Started.IsZero() {
		head.ElapsedMS = float64(j.Finished.Sub(j.Started).Microseconds()) / 1000
	}
	if resp, ok := j.Result.(AdviseResponse); ok {
		recs := resp.Recommendations
		resp.Recommendations = nil
		head.Result = resp // ranking metadata without the rows; they follow
		_ = enc.Encode(head)
		flush()
		for _, rec := range recs {
			_ = enc.Encode(rec)
			flush()
		}
		return
	}
	head.Result = j.Result
	_ = enc.Encode(head)
	flush()
}
