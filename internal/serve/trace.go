package serve

import (
	"net/http"
	"strconv"
	"time"

	"paragraph/internal/obs"
)

// statusWriter captures the response status code for the instrument
// middleware (the stdlib ResponseWriter does not expose it).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the observability layer: request and
// latency accounting for every endpoint, error accounting by status
// class, and — for traced endpoints — a request-scoped trace carried in
// the context, correlated across processes by the trace header (accepted
// sanitized at ingress, minted otherwise, echoed on the response).
func (s *Server) instrument(endpoint string, traced bool, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		ep.requests.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		var t *obs.Trace
		if traced {
			t = s.tracer.Start(obs.SanitizeTraceID(r.Header.Get(obs.TraceHeader)), endpoint)
			sw.Header().Set(obs.TraceHeader, t.ID())
			r = r.WithContext(obs.WithTrace(r.Context(), t))
		}
		h(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		d := time.Since(start)
		ep.duration.Observe(d.Seconds())
		if status >= 400 {
			s.metrics.errorCounter(endpoint, status).Inc()
		}
		s.tracer.Finish(t, status)
		if t != nil {
			s.logger.Debug("request",
				"endpoint", endpoint,
				"status", status,
				"duration_ms", float64(d.Microseconds())/1000,
				"trace_id", t.ID(),
			)
		}
	}
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}

// TraceListResponse is the GET /v1/trace payload: retained traces, newest
// first.
type TraceListResponse struct {
	Traces []obs.FinishedTrace `json:"traces"`
}

// handleTrace serves the tracer's bounded ring of finished traces:
// ?id=<trace_id> returns that one trace (404 if it aged out of the ring),
// ?n=<limit> bounds the listing.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		ft, ok := s.tracer.Find(id)
		if !ok {
			s.fail(w, http.StatusNotFound, "no retained trace %q", id)
			return
		}
		s.writeJSON(w, http.StatusOK, ft)
		return
	}
	limit := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			s.fail(w, http.StatusBadRequest, "bad n %q: want a positive integer", raw)
			return
		}
		limit = n
	}
	s.writeJSON(w, http.StatusOK, TraceListResponse{Traces: s.tracer.Recent(limit)})
}
