package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMissEvict(t *testing.T) {
	// Capacity below the shard count still gives each shard one slot.
	c := NewCache(cacheShards)
	if _, ok := c.Get(Key("absent")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add(Key("a"), 1)
	v, ok := c.Get(Key("a"))
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Overflow every shard: with one slot per shard, inserting many keys
	// must evict and never grow beyond capacity.
	for i := 0; i < 10*cacheShards; i++ {
		c.Add(Key(fmt.Sprint("k", i)), i)
	}
	if got := c.Len(); got > cacheShards {
		t.Errorf("Len = %d, capacity %d", got, cacheShards)
	}
	if c.Stats().Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// Two entries per shard, three keys in one shard: a Get must refresh
	// recency so the untouched middle key is the one evicted.
	c2 := NewCache(2 * cacheShards)
	shardOf := func(key string) int {
		s := c2.shardFor(key)
		for i := range c2.shards {
			if s == &c2.shards[i] {
				return i
			}
		}
		return -1
	}
	// Find three keys landing in one shard.
	var keys []string
	target := -1
	for i := 0; len(keys) < 3; i++ {
		k := Key(fmt.Sprint("lru", i))
		if target == -1 {
			target = shardOf(k)
		}
		if shardOf(k) == target {
			keys = append(keys, k)
		}
	}
	c2.Add(keys[0], 0)
	c2.Add(keys[1], 1)
	if _, ok := c2.Get(keys[0]); !ok { // refresh keys[0]
		t.Fatal("key 0 missing")
	}
	c2.Add(keys[2], 2) // evicts keys[1], the least recently used
	if _, ok := c2.Get(keys[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c2.Get(keys[0]); !ok {
		t.Error("recently used entry evicted")
	}
}

func TestCacheReplaceExisting(t *testing.T) {
	c := NewCache(64)
	k := Key("dup")
	c.Add(k, "old")
	c.Add(k, "new")
	v, ok := c.Get(k)
	if !ok || v.(string) != "new" {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if c.Stats().Entries != 1 {
		t.Errorf("duplicate key grew the cache: %+v", c.Stats())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key(fmt.Sprint("key", i%50))
				c.Add(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no traffic recorded")
	}
}

func TestCacheShardingCoversAllShards(t *testing.T) {
	// Hex-digest keys only use 16 byte values; the shard hash must still
	// reach every shard or capacity silently shrinks.
	c := NewCache(16 * cacheShards)
	seen := map[*cacheShard]bool{}
	for i := 0; i < 4*cacheShards; i++ {
		seen[c.shardFor(Key(fmt.Sprint("spread", i)))] = true
	}
	if len(seen) != cacheShards {
		t.Errorf("keys reached %d/%d shards", len(seen), cacheShards)
	}
}

func TestKeyIsContentAddressed(t *testing.T) {
	if Key("a", "b") != Key("a", "b") {
		t.Error("key not deterministic")
	}
	if Key("a", "b") == Key("ab") {
		t.Error("part boundaries collide")
	}
	if Key("a", "b") == Key("b", "a") {
		t.Error("key ignores part order")
	}
	if len(Key("x")) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(Key("x")))
	}
}
