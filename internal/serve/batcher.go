package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"paragraph/internal/gnn"
	"paragraph/internal/obs"
)

// BatchPredictor is the batched cost-model interface the batcher drives.
// *gnn.Model satisfies it via PredictBatch. Implementations must be safe
// for concurrent use: batches are evaluated in parallel goroutines.
type BatchPredictor interface {
	PredictBatch([]*gnn.Sample) []float64
}

// Batcher coalesces concurrently-arriving Predict calls into PredictBatch
// calls, amortizing forward-pass setup across requests. It implements
// advisor.Predictor, so an Advisor wired to a Batcher transparently batches
// the predictions its grid workers fan out. Predictions are identical to
// unbatched ones (see gnn.Model.PredictBatch); only latency and throughput
// change.
//
// A background collector goroutine gathers requests until either MaxBatch
// samples are waiting or MaxWait has passed since the batch opened, then
// hands the batch to its own evaluation goroutine — collection continues
// while earlier batches are still in the model, so inference is not
// serialized behind the collector. Concurrent evaluations are bounded by
// the number of blocked callers (the server's pool and grid workers).
type Batcher struct {
	model    BatchPredictor
	maxBatch int
	maxWait  time.Duration

	reqs chan batchRequest

	closeOnce sync.Once
	quit      chan struct{} // closed by Close; unblocks senders and the collector
	done      chan struct{} // closed when the collector and all flushes finished
	flushes   sync.WaitGroup

	mu         sync.Mutex
	batches    uint64
	samples    uint64
	maxSeen    int
	sumBatched uint64 // total samples that shared a batch with at least one other

	latency   *obs.Histogram // per-Predict latency (enqueue → result), seconds
	sizes     *obs.Histogram // samples per evaluated batch
	queued    atomic.Int64   // requests enqueued but not yet in a model evaluation
	cancelled atomic.Uint64  // PredictCtx calls abandoned by their context
}

type batchRequest struct {
	ctx context.Context // caller's context; flush skips dead requests
	s   *gnn.Sample
	out chan float64
	tr  *obs.Trace // originating request's trace; nil = untraced
	enq time.Time  // enqueue instant, the queue_wait span's start
}

// NewBatcher starts a batcher over model. maxBatch <= 0 defaults to 16;
// maxWait <= 0 defaults to 2ms. Close releases the collector goroutine.
func NewBatcher(model BatchPredictor, maxBatch int, maxWait time.Duration) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 16
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	b := &Batcher{
		model:    model,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		reqs:     make(chan batchRequest),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		latency:  obs.NewHistogram(obs.DefLatencyBuckets),
		sizes:    obs.NewHistogram(obs.BatchSizeBuckets),
	}
	go b.collect()
	return b
}

// Predict enqueues one sample and blocks until its batch is evaluated.
// Safe for concurrent use, including racing Close: a request that misses
// the collector is answered by a direct (unbatched) forward pass instead
// of panicking or hanging. Each call's end-to-end latency (batch wait
// included — it is what callers experience) feeds the model's latency
// histogram, surfaced per model in /v1/stats and /metrics.
func (b *Batcher) Predict(s *gnn.Sample) float64 {
	// Background context: never cancelled, so the error path is dead.
	v, _ := b.PredictCtx(context.Background(), s)
	return v
}

// PredictCtx is Predict with a request context (the batcher implements
// advisor.ContextPredictor). A trace attached to ctx receives queue_wait
// and predict spans for this sample; an untraced context adds no work to
// the fast path.
//
// A context that ends returns ctx.Err() immediately — before enqueueing,
// while blocked on a busy collector, or while waiting for the batch to
// evaluate. A request abandoned after enqueue is not orphaned work: flush
// drops dead-context requests from the batch before the model runs, and
// the buffered result channel means a flush racing the abandonment leaks
// nothing.
func (b *Batcher) PredictCtx(ctx context.Context, s *gnn.Sample) (float64, error) {
	if err := ctx.Err(); err != nil {
		b.cancelled.Add(1)
		return 0, err
	}
	tr := obs.TraceFrom(ctx)
	start := time.Now()
	out := make(chan float64, 1)
	b.queued.Add(1)
	select {
	case b.reqs <- batchRequest{ctx: ctx, s: s, out: out, tr: tr, enq: start}:
		select {
		case v := <-out:
			b.latency.Observe(time.Since(start).Seconds())
			return v, nil
		case <-ctx.Done():
			// The request is in the collector's hands; flush sees the dead
			// context and skips it. queued is reconciled there, not here.
			b.cancelled.Add(1)
			return 0, ctx.Err()
		}
	case <-ctx.Done():
		b.queued.Add(-1)
		b.cancelled.Add(1)
		return 0, ctx.Err()
	case <-b.quit:
		b.queued.Add(-1)
		pstart := time.Now()
		v := b.model.PredictBatch([]*gnn.Sample{s})[0]
		tr.AddSpan("queue_wait", "", start, pstart.Sub(start))
		tr.AddSpan("predict", "direct", pstart, time.Since(pstart))
		b.latency.Observe(time.Since(start).Seconds())
		return v, nil
	}
}

// Close stops the collector and waits for in-flight batches to finish.
// Predict calls that already enqueued still receive their results; later
// calls degrade to direct evaluation. Idempotent.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() { close(b.quit) })
	<-b.done
}

// collect is the batching loop: block for the first request, top the batch
// up until it is full or the window expires, then evaluate asynchronously.
func (b *Batcher) collect() {
	defer close(b.done)
	defer b.flushes.Wait()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first batchRequest
		select {
		case first = <-b.reqs:
		case <-b.quit:
			return
		}
		batch := []batchRequest{first}
		timer.Reset(b.maxWait)
		timerFired := false
	fill:
		for len(batch) < b.maxBatch {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			case <-timer.C:
				timerFired = true
				break fill
			case <-b.quit:
				break fill
			}
		}
		if !timerFired && !timer.Stop() {
			<-timer.C
		}
		b.flushes.Add(1)
		go func(batch []batchRequest) {
			defer b.flushes.Done()
			b.flush(batch)
		}(batch)
	}
}

// flush evaluates one batch and fans results back to the waiters.
func (b *Batcher) flush(batch []batchRequest) {
	b.queued.Add(-int64(len(batch)))
	// Drop requests whose caller already gave up: cancellation aborts work
	// sitting in the queue, not just the wait for it. No send on their out
	// channels — the waiters are gone, and the buffer makes the skip safe
	// even if one is mid-race on its ctx.Done select.
	live := batch[:0]
	for _, r := range batch {
		if r.ctx != nil && r.ctx.Err() != nil {
			continue
		}
		live = append(live, r)
	}
	batch = live
	if len(batch) == 0 {
		return
	}
	samples := make([]*gnn.Sample, len(batch))
	for i, r := range batch {
		samples[i] = r.s
	}
	pstart := time.Now()
	preds := b.model.PredictBatch(samples)
	pdur := time.Since(pstart)
	// Count before delivering: a caller's Predict returns the moment its
	// result lands, and Stats() observed right after must include it.
	b.sizes.Observe(float64(len(batch)))
	b.mu.Lock()
	b.batches++
	b.samples += uint64(len(batch))
	if len(batch) > b.maxSeen {
		b.maxSeen = len(batch)
	}
	if len(batch) > 1 {
		b.sumBatched += uint64(len(batch))
	}
	b.mu.Unlock()
	// Spans land on each traced request before its result is delivered, so
	// the caller's trace is complete by the time its handler finishes.
	var detail string
	for i, r := range batch {
		if r.tr != nil {
			if detail == "" {
				detail = fmt.Sprintf("batch=%d", len(batch))
			}
			r.tr.AddSpan("queue_wait", "", r.enq, pstart.Sub(r.enq))
			r.tr.AddSpan("predict", detail, pstart, pdur)
		}
		r.out <- preds[i]
	}
}

// LatencyStats is the quantile snapshot exposed through /v1/stats: total
// observation count plus p50/p99 in milliseconds, estimated from the same
// log-bucketed histogram /metrics exposes as
// serve_batcher_latency_seconds — one instrument, two renderings.
type LatencyStats struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// BatcherStats snapshots the batching counters and the per-prediction
// latency quantiles (the model's observable serving latency).
type BatcherStats struct {
	Batches        uint64       `json:"batches"`
	Samples        uint64       `json:"samples"`
	MaxBatch       int          `json:"max_batch"`
	MeanBatch      float64      `json:"mean_batch"`
	CoalescedShare float64      `json:"coalesced_share"`     // fraction of samples that shared a batch
	Cancelled      uint64       `json:"cancelled,omitempty"` // predictions abandoned by their context
	Latency        LatencyStats `json:"latency"`
}

// Stats returns a snapshot of the batcher counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	st := BatcherStats{Batches: b.batches, Samples: b.samples, MaxBatch: b.maxSeen, Cancelled: b.cancelled.Load()}
	if b.batches > 0 {
		st.MeanBatch = float64(b.samples) / float64(b.batches)
	}
	if b.samples > 0 {
		st.CoalescedShare = float64(b.sumBatched) / float64(b.samples)
	}
	b.mu.Unlock()
	st.Latency = LatencyStats{
		Count: b.latency.Count(),
		P50MS: b.latency.Quantile(0.50) * 1000,
		P99MS: b.latency.Quantile(0.99) * 1000,
	}
	return st
}
