package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"paragraph/internal/advisor"
)

// elasticHeartbeat is the gossip interval for the elastic-membership tests:
// fast enough that joins, evictions and anti-entropy sweeps land within a
// test's patience, slow enough that loaded CI machines don't false-evict
// (EvictAfter defaults to 10x this).
const elasticHeartbeat = 25 * time.Millisecond

// elasticPeer is one live peer of an elastic cluster: unlike clusterPeer,
// its listener address can be re-bound after kill so a "restarted" process
// keeps its ring identity.
type elasticPeer struct {
	srv *Server
	hs  *httptest.Server
	url string
}

// kill fully stops the peer: listener first (no new requests), then the
// server (loops, batchers, forwarder). Safe to call twice — the
// cleanup-driven second closes are no-ops.
func (p *elasticPeer) kill() {
	p.hs.Close()
	p.srv.Close()
}

// listenOn binds addr ("" = fresh ephemeral port), retrying briefly: a
// just-killed peer's port can take a moment to become bindable again.
func listenOn(t *testing.T, addr string) net.Listener {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-binding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// bootElasticPeer starts one peer on the given address (or a fresh one
// when addr is ""). The caller sets bootstrap Peers or Seeds in cfg; Self
// and (unless overridden) the fast heartbeat are wired here.
func bootElasticPeer(t *testing.T, addr string, cfg ClusterConfig) *elasticPeer {
	t.Helper()
	ln := listenOn(t, addr)
	s := newTestServer(t)
	hs := &httptest.Server{Listener: ln, Config: &http.Server{Handler: s.Handler()}}
	hs.Start()
	t.Cleanup(hs.Close)
	cfg.Self = "http://" + ln.Addr().String()
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = elasticHeartbeat
	}
	if err := s.EnableCluster(cfg); err != nil {
		t.Fatal(err)
	}
	return &elasticPeer{srv: s, hs: hs, url: cfg.Self}
}

// startElasticCluster boots n statically bootstrapped peers (each knows
// the full member list up front, as with cmd/serve -peers).
func startElasticCluster(t *testing.T, n, rf int, cfg ClusterConfig) []*elasticPeer {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		lns[i] = listenOn(t, "")
		urls[i] = "http://" + lns[i].Addr().String()
	}
	peers := make([]*elasticPeer, n)
	for i := range peers {
		s := newTestServer(t)
		hs := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: s.Handler()}}
		hs.Start()
		t.Cleanup(hs.Close)
		c := cfg
		c.Self = urls[i]
		c.Peers = urls
		c.Replication = rf
		if c.Heartbeat == 0 {
			c.Heartbeat = elasticHeartbeat
		}
		if err := s.EnableCluster(c); err != nil {
			t.Fatal(err)
		}
		peers[i] = &elasticPeer{srv: s, hs: hs, url: urls[i]}
	}
	return peers
}

// waitFor polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitRingSize waits until every listed peer's ring holds exactly want
// members.
func waitRingSize(t *testing.T, peers []*elasticPeer, want int) {
	t.Helper()
	waitCond(t, 10*time.Second, fmt.Sprintf("all rings to reach %d members", want), func() bool {
		for _, p := range peers {
			ring := p.srv.cluster.ring()
			if ring == nil || len(ring.Members()) != want {
				return false
			}
		}
		return true
	})
}

// totalReplicatedIn sums the entries the peers accepted via /v1/replicate.
func totalReplicatedIn(peers []*elasticPeer) uint64 {
	var n uint64
	for _, p := range peers {
		n += p.srv.cluster.replicatedIn.Load()
	}
	return n
}

// TestClusterJoinViaSeed: a peer started with only -seed joins the ring at
// runtime — no restarts, no synchronized member lists — and both sides
// converge on the same two-member ring under a bumped epoch.
func TestClusterJoinViaSeed(t *testing.T) {
	seed := bootElasticPeer(t, "", ClusterConfig{})
	joiner := bootElasticPeer(t, "", ClusterConfig{Seeds: []string{seed.url}})
	both := []*elasticPeer{seed, joiner}
	waitRingSize(t, both, 2)

	if !joiner.srv.cluster.joined.Load() {
		t.Error("joiner never marked itself admitted")
	}
	if seed.srv.cluster.joinsIn.Load() == 0 {
		t.Error("seed admitted nobody")
	}
	sr, jr := seed.srv.Ring(), joiner.srv.Ring()
	if sr.Epoch < 2 {
		t.Errorf("seed epoch = %d after a join, want >= 2", sr.Epoch)
	}
	if len(sr.Members) != 2 || len(jr.Members) != 2 {
		t.Fatalf("ring views: seed %d members, joiner %d", len(sr.Members), len(jr.Members))
	}
	for i := range sr.Members {
		if sr.Members[i].Peer != jr.Members[i].Peer {
			t.Errorf("member %d differs: %q vs %q", i, sr.Members[i].Peer, jr.Members[i].Peer)
		}
	}

	// The joined tier routes: both peers answer, and keys spread across the
	// two members.
	served := map[string]bool{}
	for i := 0; i < 8; i++ {
		resp := postAdvise(t, joiner.url, bindN(float64(60000+16*i)))
		served[resp.ServedBy] = true
	}
	if len(served) != 2 {
		t.Errorf("8 spread keys served by %d peers, want both", len(served))
	}
}

// TestClusterGossipRejectsGarbage: the gossip and join endpoints validate
// their methods and bodies, and the whole surface 409s outside cluster mode.
func TestClusterGossipRejectsGarbage(t *testing.T) {
	peers := startElasticCluster(t, 1, 1, ClusterConfig{Heartbeat: -1})
	s := peers[0].srv
	if rec := doRaw(t, s, http.MethodPost, "/v1/cluster/gossip", []byte("{nope"), ""); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage gossip: %d, want 400", rec.Code)
	}
	if rec := doRaw(t, s, http.MethodPost, "/v1/cluster/gossip", []byte(`{"members":[]}`), ""); rec.Code != http.StatusBadRequest {
		t.Errorf("gossip without sender: %d, want 400", rec.Code)
	}
	if rec := doRaw(t, s, http.MethodGet, "/v1/cluster/join", nil, ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET join: %d, want 405", rec.Code)
	}
	if rec := doRaw(t, s, http.MethodPost, "/v1/cluster/join", []byte(`{"peer":"ftp://nope"}`), ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad join peer URL: %d, want 400", rec.Code)
	}
	if rec := doRaw(t, s, http.MethodGet, "/v1/cluster/what", nil, ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown cluster endpoint: %d, want 404", rec.Code)
	}
	plain := newTestServer(t)
	if rec := doRaw(t, plain, http.MethodPost, "/v1/cluster/join", []byte(`{}`), ""); rec.Code != http.StatusConflict {
		t.Errorf("cluster endpoint outside cluster mode: %d, want 409", rec.Code)
	}
}

// TestClusterKeysAndEntryEndpoints: the anti-entropy wire surface serves
// the local key list and single entries in the replicate snapshot schema.
func TestClusterKeysAndEntryEndpoints(t *testing.T) {
	peers := startElasticCluster(t, 1, 1, ClusterConfig{Heartbeat: -1})
	p := peers[0]
	req := bindN(42)
	postAdvise(t, p.url, req)
	key := adviseKeyFor(t, req)

	var keys clusterKeysResponse
	if rec := do(t, p.srv, http.MethodGet, "/v1/cluster/keys", nil, &keys); rec.Code != http.StatusOK {
		t.Fatalf("keys: %d", rec.Code)
	}
	if len(keys.Keys) != 1 || keys.Keys[0] != key {
		t.Fatalf("keys = %v, want [%s]", keys.Keys, key)
	}
	if keys.Epoch == 0 {
		t.Error("keys response carries no epoch")
	}

	rec := doRaw(t, p.srv, http.MethodGet, "/v1/cluster/entry?key="+key, nil, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("entry: %d", rec.Code)
	}
	gotKey, val, err := unmarshalReplicateEntry(rec.Body.Bytes())
	if err != nil || gotKey != key {
		t.Fatalf("entry decode: key=%q err=%v", gotKey, err)
	}
	if _, ok := val.([]advisor.Recommendation); !ok {
		t.Fatalf("entry value type %T, want recommendations", val)
	}
	if rec := doRaw(t, p.srv, http.MethodGet, "/v1/cluster/entry?key=deadbeef", nil, ""); rec.Code != http.StatusNotFound {
		t.Errorf("missing entry: %d, want 404", rec.Code)
	}
	if rec := doRaw(t, p.srv, http.MethodGet, "/v1/cluster/entry", nil, ""); rec.Code != http.StatusBadRequest {
		t.Errorf("entry without key: %d, want 400", rec.Code)
	}
}

// TestClusterLeaveDrainsToNewOwners: a planned departure tombstones the
// leaving peer in every survivor's view and streams its owned entries to
// the new owners before it exits, so no warmth is lost. Loops are disabled
// — the drain's own synchronous announce must be enough.
func TestClusterLeaveDrainsToNewOwners(t *testing.T) {
	peers := startElasticCluster(t, 2, 1, ClusterConfig{Heartbeat: -1})
	a, b := peers[0], peers[1]

	var reqs []AdviseRequest
	aOwned := 0
	ring := a.srv.cluster.ring()
	for i := 0; i < 8; i++ {
		req := bindN(float64(70000 + 16*i))
		if ring.Owner(adviseKeyFor(t, req)) == a.url {
			aOwned++
		}
		reqs = append(reqs, req)
		postAdvise(t, a.url, req)
	}
	if aOwned == 0 {
		t.Fatal("no key owned by peer A in 8 probes")
	}

	var report DrainReport
	if rec := do(t, a.srv, http.MethodPost, "/v1/cluster/leave", nil, &report); rec.Code != http.StatusOK {
		t.Fatalf("leave: %d", rec.Code)
	}
	if report.OwnedKeys != aOwned || report.Streamed != aOwned || report.Errors != 0 {
		t.Fatalf("drain report %+v, want owned=streamed=%d with no errors", report, aOwned)
	}

	// The survivor re-ringed on the drain's synchronous announce...
	bRing := b.srv.cluster.ring()
	if bRing == nil || len(bRing.Members()) != 1 || bRing.Members()[0] != b.url {
		t.Fatalf("survivor ring = %v, want just itself", bRing.Members())
	}
	view := b.srv.Ring()
	if len(view.Membership.Departed) != 1 || view.Membership.Departed[0].Status != "left" {
		t.Fatalf("survivor departed view = %+v, want A left", view.Membership.Departed)
	}
	// ...and answers every key warm, including the handed-off ones.
	for _, req := range reqs {
		if resp := postAdvise(t, b.url, req); !resp.Cached {
			t.Fatalf("n=%v cold on the survivor after drain", req.Bindings["n"])
		}
	}

	// A second drain (the SIGTERM after an explicit leave) is a no-op.
	second := a.srv.DrainCluster(context.Background())
	if !second.AlreadyDraining {
		t.Errorf("second drain = %+v, want AlreadyDraining", second)
	}
}

// TestClusterEvictsSilentPeer: a crashed peer (no drain, no goodbye) is
// declared dead after EvictAfter and drops out of the survivors' rings; the
// tier keeps serving its keys by fallback.
func TestClusterEvictsSilentPeer(t *testing.T) {
	peers := startElasticCluster(t, 3, 1, ClusterConfig{})
	peers[2].kill()
	survivors := peers[:2]
	waitRingSize(t, survivors, 2)

	evictions := survivors[0].srv.cluster.mem.Counters().Evictions +
		survivors[1].srv.cluster.mem.Counters().Evictions
	if evictions == 0 {
		t.Error("no survivor recorded an eviction")
	}
	for _, p := range survivors {
		view := p.srv.Ring()
		if len(view.Membership.Departed) != 1 || view.Membership.Departed[0].Status != "dead" {
			t.Fatalf("departed view = %+v, want the crashed peer dead", view.Membership.Departed)
		}
		if view.Epoch < 2 {
			t.Errorf("epoch = %d after an eviction, want >= 2", view.Epoch)
		}
	}
	// The dead peer's keys are served by the survivors (re-evaluated — it
	// crashed with its cache; rf=1 means no replica held copies).
	for i := 0; i < 4; i++ {
		if resp := postAdvise(t, survivors[0].url, bindN(float64(80000+16*i))); len(resp.Recommendations) == 0 {
			t.Fatal("post-eviction request returned an empty ranking")
		}
	}
}

// TestClusterReadRepairServesOwnedMiss: an owned miss whose co-owner holds
// the entry is answered from the co-owner's cache — reported cached, no
// local evaluation — and the repaired entry sticks locally.
func TestClusterReadRepairServesOwnedMiss(t *testing.T) {
	peers := startElasticCluster(t, 2, 2, ClusterConfig{Heartbeat: -1})
	a, b := peers[0], peers[1]

	// A key whose primary is A, planted only in B's cache (the co-owner):
	// exactly the state a just-rejoined A would be in.
	req := findOwnedBinding(t, a.srv.cluster.ring(), a.url, 90000)
	key := adviseKeyFor(t, req)
	kind, err := kindByName("gpu_collapse")
	if err != nil {
		t.Fatal(err)
	}
	planted := []advisor.Recommendation{{Kind: kind, Teams: 64, Threads: 128, PredictedUS: 123.5}}
	body, err := marshalReplicate(key, planted)
	if err != nil {
		t.Fatal(err)
	}
	if rec := doRaw(t, b.srv, http.MethodPost, "/v1/replicate", body, a.url); rec.Code != http.StatusOK {
		t.Fatalf("planting entry on B: %d", rec.Code)
	}

	resp := postAdvise(t, a.url, req)
	if !resp.Cached {
		t.Error("read-repaired response not reported cached")
	}
	if len(resp.Recommendations) != 1 || resp.Recommendations[0].PredictedUS != 123.5 {
		t.Fatalf("response %+v did not come from the planted co-owner entry", resp.Recommendations)
	}
	if got := a.srv.cluster.readRepairs.Load(); got != 1 {
		t.Errorf("read repairs = %d, want 1", got)
	}
	// The repair warmed A: the replay is a plain local hit.
	if again := postAdvise(t, a.url, req); !again.Cached {
		t.Error("repaired entry did not stick in the local cache")
	}
	if got := a.srv.cluster.readRepairs.Load(); got != 1 {
		t.Errorf("replay repaired again (%d), want the local cache to answer", got)
	}
}

// TestClusterAntiEntropyWarmsJoinedPeer is the self-healing acceptance
// test: a fresh peer joins a warm RF=2 tier and reaches full replica
// warmth — every owned key resident locally — through the anti-entropy
// sweep alone, no client traffic to it.
func TestClusterAntiEntropyWarmsJoinedPeer(t *testing.T) {
	cfg := ClusterConfig{AntiEntropy: 150 * time.Millisecond}
	peers := startElasticCluster(t, 3, 2, cfg)

	var keys []string
	for i := 0; i < 10; i++ {
		req := bindN(float64(100000 + 16*i))
		keys = append(keys, adviseKeyFor(t, req))
		postAdvise(t, peers[0].url, req)
	}
	waitCond(t, 10*time.Second, "write-through replication", func() bool {
		return totalReplicatedIn(peers) >= 10
	})

	joiner := bootElasticPeer(t, "", ClusterConfig{
		Seeds:       []string{peers[0].url},
		Replication: 2,
		AntiEntropy: 150 * time.Millisecond,
	})
	all := append(append([]*elasticPeer{}, peers...), joiner)
	waitRingSize(t, all, 4)

	// Every warmed key the joiner now owns must appear in its local cache
	// without a single client request reaching it.
	owned := func() []string {
		ring := joiner.srv.cluster.ring()
		var mine []string
		for _, k := range keys {
			for _, o := range ring.Owners(k, 2) {
				if o == joiner.url {
					mine = append(mine, k)
				}
			}
		}
		return mine
	}()
	if len(owned) == 0 {
		t.Skip("joiner owns none of the warmed keys (unlucky ring); nothing to heal")
	}
	waitCond(t, 10*time.Second, "anti-entropy to refill the joiner's owned keys", func() bool {
		for _, k := range owned {
			if _, ok := joiner.srv.adviseCache.Peek(k); !ok {
				return false
			}
		}
		return true
	})
	if got := joiner.srv.cluster.aeRefills.Load(); got < uint64(len(owned)) {
		t.Errorf("anti-entropy refills = %d, want >= %d", got, len(owned))
	}
	view := joiner.srv.Ring()
	if view.AntiEntropy == nil || view.AntiEntropy.Sweeps == 0 {
		t.Error("ring view reports no anti-entropy sweeps")
	}
}

// TestClusterRollingRestartZeroMisses is the tentpole acceptance test: a
// 3-peer RF=2 tier warmed with a key set survives draining, killing and
// rejoining each peer in turn — every replay throughout the roll is
// answered from cache (drain hands keys off, read repair and anti-entropy
// re-warm the rejoined peer), so the roll costs zero evaluations.
func TestClusterRollingRestartZeroMisses(t *testing.T) {
	cfg := ClusterConfig{AntiEntropy: 150 * time.Millisecond}
	peers := startElasticCluster(t, 3, 2, cfg)

	var reqs []AdviseRequest
	for i := 0; i < 12; i++ {
		req := bindN(float64(110000 + 16*i))
		reqs = append(reqs, req)
		postAdvise(t, peers[0].url, req)
	}
	waitCond(t, 10*time.Second, "write-through replication", func() bool {
		return totalReplicatedIn(peers) >= 12
	})

	for i := range peers {
		victim := peers[i]
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		report := victim.srv.DrainCluster(ctx)
		cancel()
		if report.Errors != 0 {
			t.Fatalf("round %d: drain errors: %+v", i, report)
		}
		addr := victim.url[len("http://"):]
		victim.kill()

		survivors := []*elasticPeer{peers[(i+1)%3], peers[(i+2)%3]}
		waitRingSize(t, survivors, 2)
		for _, req := range reqs {
			if resp := postAdvise(t, survivors[0].url, req); !resp.Cached {
				t.Fatalf("round %d: n=%v cold on the survivors after drain", i, req.Bindings["n"])
			}
		}

		// Restart on the same address — same ring identity, empty cache —
		// joining through a survivor.
		peers[i] = bootElasticPeer(t, addr, ClusterConfig{
			Seeds:       []string{survivors[0].url},
			Replication: 2,
			AntiEntropy: 150 * time.Millisecond,
		})
		waitRingSize(t, peers, 3)
		for _, req := range reqs {
			if resp := postAdvise(t, peers[i].url, req); !resp.Cached {
				t.Fatalf("round %d: n=%v recomputed after the restart (warmth lost)", i, req.Bindings["n"])
			}
		}
	}
}
