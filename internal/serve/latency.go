package serve

import (
	"math"
	"sort"
	"sync"
	"time"
)

// latencySampleSize bounds the sampler's memory; 512 recent observations
// give stable p50/p99 estimates at serving rates without unbounded growth.
const latencySampleSize = 512

// latencySampler keeps the most recent prediction latencies in a fixed ring
// buffer and reports order-statistic quantiles over them. One sampler per
// model batcher makes the inference fast path's speedup observable in
// production (/v1/stats) instead of only in benchmarks.
type latencySampler struct {
	mu    sync.Mutex
	ring  [latencySampleSize]float64 // milliseconds
	n     int                        // filled entries, <= latencySampleSize
	next  int                        // ring write cursor
	count uint64                     // total observations ever
}

// observe records one latency.
func (l *latencySampler) observe(d time.Duration) {
	ms := float64(d.Microseconds()) / 1000
	l.mu.Lock()
	l.ring[l.next] = ms
	l.next = (l.next + 1) % latencySampleSize
	if l.n < latencySampleSize {
		l.n++
	}
	l.count++
	l.mu.Unlock()
}

// LatencyStats is the quantile snapshot exposed through /v1/stats: total
// observation count plus p50/p99 over the most recent window, in
// milliseconds.
type LatencyStats struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// snapshot copies the window, sorts it, and reads the quantiles. The
// nearest-rank method (ceil(q*n)-1) keeps the values actual observations.
func (l *latencySampler) snapshot() LatencyStats {
	l.mu.Lock()
	st := LatencyStats{Count: l.count}
	window := make([]float64, l.n)
	copy(window, l.ring[:l.n])
	l.mu.Unlock()
	if len(window) == 0 {
		return st
	}
	sort.Float64s(window)
	st.P50MS = quantile(window, 0.50)
	st.P99MS = quantile(window, 0.99)
	return st
}

// quantile reads the nearest-rank q-quantile (rank ⌈q·n⌉) from a sorted
// slice.
func quantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
