package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"paragraph/internal/dataset"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
)

// oracleModel is a deterministic stand-in for a trained GNN: it predicts
// from the graph's total log-weight and the scaled thread feature, so
// rankings are stable without training.
type oracleModel struct{}

func (oracleModel) PredictBatch(ss []*gnn.Sample) []float64 {
	out := make([]float64, len(ss))
	for i, s := range ss {
		var total float64
		for _, rel := range s.G.Rels {
			for _, w := range rel.LogW {
				total += w
			}
		}
		out[i] = total/1e4 - 0.1*s.Feats[1]
	}
	return out
}

func testPrep() *dataset.Prepared {
	return &dataset.Prepared{
		TargetScaler: dataset.Scaler{Min: math.Log(10), Max: math.Log(1e6)},
		TeamScaler:   dataset.Scaler{Min: 0, Max: 256},
		ThreadScaler: dataset.Scaler{Min: 1, Max: 256},
		WScale:       10,
	}
}

// newTestServer serves a CPU and a GPU profile from oracle models.
func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer([]Backend{
		{Machine: hw.Power9(), Model: oracleModel{}, Prep: testPrep()},
		{Machine: hw.V100(), Model: oracleModel{}, Prep: testPrep()},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// do posts (or gets) one request against the handler and decodes the reply.
func do(t *testing.T, s *Server, method, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s response: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec
}

func adviseReq(machine string) AdviseRequest {
	return AdviseRequest{
		Kernel:   "matmul",
		Machine:  machine,
		Bindings: map[string]float64{"n": 256},
		Space: &SpaceSpec{
			CPUThreads: []int{2, 8},
			GPUTeams:   []int{64, 128},
			GPUThreads: []int{128},
		},
	}
}

func TestAdviseColdThenCached(t *testing.T) {
	s := newTestServer(t)

	var cold AdviseResponse
	if rec := do(t, s, http.MethodPost, "/v1/advise", adviseReq("NVIDIA V100 (GPU)"), &cold); rec.Code != http.StatusOK {
		t.Fatalf("cold advise: %d %s", rec.Code, rec.Body.String())
	}
	if cold.Cached {
		t.Error("first request claims cached")
	}
	if len(cold.Recommendations) != 8 { // 4 GPU kinds × 2 teams × 1 threads
		t.Fatalf("recommendations = %d, want 8", len(cold.Recommendations))
	}
	for i := 1; i < len(cold.Recommendations); i++ {
		if cold.Recommendations[i-1].PredictedUS > cold.Recommendations[i].PredictedUS {
			t.Error("recommendations not sorted fastest-first")
		}
	}

	var warm AdviseResponse
	do(t, s, http.MethodPost, "/v1/advise", adviseReq("NVIDIA V100 (GPU)"), &warm)
	if !warm.Cached {
		t.Error("identical repeat request not served from cache")
	}
	if len(warm.Recommendations) != len(cold.Recommendations) {
		t.Fatal("cached ranking differs in length")
	}
	for i := range cold.Recommendations {
		if warm.Recommendations[i] != cold.Recommendations[i] {
			t.Errorf("cached rec %d differs: %+v vs %+v",
				i, warm.Recommendations[i], cold.Recommendations[i])
		}
	}

	// The hit must be visible in /v1/stats.
	var st Stats
	do(t, s, http.MethodGet, "/v1/stats", nil, &st)
	if st.AdviseCacheHits == 0 {
		t.Error("stats report zero advise cache hits")
	}
	if st.AdviseCache.Hits == 0 {
		t.Error("response cache recorded no hits")
	}
	if st.Requests.Advise != 2 {
		t.Errorf("advise requests = %d, want 2", st.Requests.Advise)
	}
	if st.EncodeCache.Misses == 0 {
		t.Error("encode cache saw no traffic")
	}
}

func TestAdviseCPUAndGPUProfiles(t *testing.T) {
	s := newTestServer(t)
	var cpu, gpu AdviseResponse
	if rec := do(t, s, http.MethodPost, "/v1/advise", adviseReq("IBM POWER9 (CPU)"), &cpu); rec.Code != http.StatusOK {
		t.Fatalf("CPU advise: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, http.MethodPost, "/v1/advise", adviseReq("NVIDIA V100 (GPU)"), &gpu); rec.Code != http.StatusOK {
		t.Fatalf("GPU advise: %d %s", rec.Code, rec.Body.String())
	}
	// matmul is collapsible: CPU = {cpu, cpu_collapse} × 2 threads.
	if len(cpu.Recommendations) != 4 {
		t.Errorf("CPU recommendations = %d, want 4", len(cpu.Recommendations))
	}
	for _, r := range cpu.Recommendations {
		if r.Teams != 0 {
			t.Errorf("CPU recommendation carries teams: %+v", r)
		}
	}
	for _, r := range gpu.Recommendations {
		if r.Teams == 0 {
			t.Errorf("GPU recommendation missing teams: %+v", r)
		}
	}
}

func TestAdviseTopAndSource(t *testing.T) {
	s := newTestServer(t)
	req := adviseReq("NVIDIA V100 (GPU)")
	req.Top = 1
	req.IncludeSource = true
	var resp AdviseResponse
	do(t, s, http.MethodPost, "/v1/advise", req, &resp)
	if len(resp.Recommendations) != 1 {
		t.Fatalf("top=1 returned %d recommendations", len(resp.Recommendations))
	}
	if resp.Recommendations[0].Source == "" {
		t.Error("include_source returned empty source")
	}
	// A full request after the truncated one still sees the cached ranking.
	full := adviseReq("NVIDIA V100 (GPU)")
	var resp2 AdviseResponse
	do(t, s, http.MethodPost, "/v1/advise", full, &resp2)
	if !resp2.Cached {
		t.Error("top and include_source leaked into the cache key")
	}
	if len(resp2.Recommendations) != 8 {
		t.Errorf("full request got %d recommendations", len(resp2.Recommendations))
	}
	if resp2.Recommendations[0].Source != "" {
		t.Error("source returned without include_source")
	}
}

func TestAdviseCustomKernel(t *testing.T) {
	s := newTestServer(t)
	req := AdviseRequest{
		Custom: &KernelSpec{
			Name:     "scale",
			FuncName: "scale",
			Source: `
void scale(double *a, int n) {
__PRAGMA__
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * 2.0;
    }
}
`,
			Params: []ParamSpec{{Name: "n", Values: []int{1024}}},
		},
		Machine:  "NVIDIA V100 (GPU)",
		Bindings: map[string]float64{"n": 1024},
		Space:    &SpaceSpec{GPUTeams: []int{64}, GPUThreads: []int{128}},
	}
	var resp AdviseResponse
	if rec := do(t, s, http.MethodPost, "/v1/advise", req, &resp); rec.Code != http.StatusOK {
		t.Fatalf("custom advise: %d %s", rec.Code, rec.Body.String())
	}
	// Non-collapsible custom kernel: gpu + gpu_mem.
	if len(resp.Recommendations) != 2 {
		t.Errorf("recommendations = %d, want 2", len(resp.Recommendations))
	}
	if resp.Kernel != "scale" {
		t.Errorf("kernel = %q", resp.Kernel)
	}
}

func TestPredictEndpoint(t *testing.T) {
	s := newTestServer(t)
	req := PredictRequest{
		Kernel: "matmul", Machine: "NVIDIA V100 (GPU)",
		Variant: "gpu_collapse", Teams: 64, Threads: 128,
		Bindings: map[string]float64{"n": 256},
	}
	var cold PredictResponse
	if rec := do(t, s, http.MethodPost, "/v1/predict", req, &cold); rec.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
	}
	if cold.PredictedUS <= 0 || cold.Cached {
		t.Errorf("cold predict = %+v", cold)
	}
	var warm PredictResponse
	do(t, s, http.MethodPost, "/v1/predict", req, &warm)
	if !warm.Cached || warm.PredictedUS != cold.PredictedUS {
		t.Errorf("warm predict = %+v, cold %v", warm, cold.PredictedUS)
	}

	// The predicted value must agree with the advise ranking's entry.
	areq := adviseReq("NVIDIA V100 (GPU)")
	var advise AdviseResponse
	do(t, s, http.MethodPost, "/v1/advise", areq, &advise)
	found := false
	for _, r := range advise.Recommendations {
		if r.Variant == "gpu_collapse" && r.Teams == 64 && r.Threads == 128 {
			found = true
			if math.Abs(r.PredictedUS-cold.PredictedUS) > 1e-9 {
				t.Errorf("advise %v vs predict %v for same instance", r.PredictedUS, cold.PredictedUS)
			}
		}
	}
	if !found {
		t.Error("instance absent from advise grid")
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t)
	var h struct {
		Status   string   `json:"status"`
		Machines []string `json:"machines"`
	}
	if rec := do(t, s, http.MethodGet, "/v1/healthz", nil, &h); rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	if h.Status != "ok" || len(h.Machines) != 2 {
		t.Errorf("healthz = %+v", h)
	}
}

func TestRequestErrors(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   any
		code   int
	}{
		{"advise GET", http.MethodGet, "/v1/advise", nil, http.StatusMethodNotAllowed},
		{"stats POST", http.MethodPost, "/v1/stats", nil, http.StatusMethodNotAllowed},
		{"unknown machine", http.MethodPost, "/v1/advise",
			AdviseRequest{Kernel: "matmul", Machine: "TPU"}, http.StatusNotFound},
		{"unknown kernel", http.MethodPost, "/v1/advise",
			AdviseRequest{Kernel: "nope", Machine: "NVIDIA V100 (GPU)"}, http.StatusBadRequest},
		{"kernel and custom", http.MethodPost, "/v1/advise",
			AdviseRequest{Kernel: "matmul", Custom: &KernelSpec{}, Machine: "NVIDIA V100 (GPU)"},
			http.StatusBadRequest},
		{"missing kernel", http.MethodPost, "/v1/advise",
			AdviseRequest{Machine: "NVIDIA V100 (GPU)"}, http.StatusBadRequest},
		{"unknown variant", http.MethodPost, "/v1/predict",
			PredictRequest{Kernel: "matmul", Machine: "NVIDIA V100 (GPU)", Variant: "simd", Threads: 8},
			http.StatusBadRequest},
		{"variant/machine mismatch", http.MethodPost, "/v1/predict",
			PredictRequest{Kernel: "matmul", Machine: "IBM POWER9 (CPU)", Variant: "gpu", Teams: 64, Threads: 128},
			http.StatusBadRequest},
		{"non-positive threads", http.MethodPost, "/v1/predict",
			PredictRequest{Kernel: "matmul", Machine: "NVIDIA V100 (GPU)", Variant: "gpu", Teams: 64},
			http.StatusBadRequest},
		{"empty grid", http.MethodPost, "/v1/advise",
			AdviseRequest{Kernel: "matmul", Machine: "NVIDIA V100 (GPU)",
				Space: &SpaceSpec{CPUThreads: []int{4}}}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, tc.method, tc.path, tc.body, nil)
			if rec.Code != tc.code {
				t.Errorf("%s %s = %d, want %d (%s)", tc.method, tc.path, rec.Code, tc.code, rec.Body.String())
			}
			var e errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Errorf("error body not JSON: %s", rec.Body.String())
			}
		})
	}
	var st Stats
	do(t, s, http.MethodGet, "/v1/stats", nil, &st)
	if st.Requests.Errors == 0 {
		t.Error("errors not counted")
	}
}

func TestConcurrentAdviseTraffic(t *testing.T) {
	// A burst of concurrent requests across both profiles must all succeed,
	// stay within the pool bound, and exercise the batcher.
	s := newTestServer(t)
	machines := []string{"IBM POWER9 (CPU)", "NVIDIA V100 (GPU)"}
	kernels := []string{"matmul", "transpose", "matvec"}
	var wg sync.WaitGroup
	errc := make(chan string, 64)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := adviseReq(machines[i%2])
			req.Kernel = kernels[i%3]
			if req.Kernel == "matvec" {
				req.Bindings = map[string]float64{"n": 512, "m": 256}
			}
			if req.Kernel == "transpose" {
				req.Bindings = map[string]float64{"n": 512, "m": 512}
			}
			var resp AdviseResponse
			rec := do(t, s, http.MethodPost, "/v1/advise", req, &resp)
			if rec.Code != http.StatusOK {
				errc <- rec.Body.String()
				return
			}
			if len(resp.Recommendations) == 0 {
				errc <- "empty recommendations"
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for e := range errc {
		t.Error(e)
	}
	st := s.Stats()
	if st.Pool.Peak > int64(st.Pool.Size) {
		t.Errorf("pool peak %d exceeds size %d", st.Pool.Peak, st.Pool.Size)
	}
	var batched uint64
	for _, m := range st.Models {
		batched += m.Batcher.Samples
	}
	if batched == 0 {
		t.Error("no samples flowed through the batchers")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, Options{}); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewServer([]Backend{{Machine: hw.V100()}}, Options{}); err == nil {
		t.Error("backend without model accepted")
	}
	b := Backend{Machine: hw.V100(), Model: oracleModel{}, Prep: testPrep()}
	if _, err := NewServer([]Backend{b, b}, Options{}); err == nil {
		t.Error("duplicate backend accepted")
	}
	d1 := Backend{Machine: hw.V100(), Model: oracleModel{}, Prep: testPrep(), Name: "a", Default: true}
	d2 := Backend{Machine: hw.V100(), Model: oracleModel{}, Prep: testPrep(), Name: "b", Default: true}
	if _, err := NewServer([]Backend{d1, d2}, Options{}); err == nil {
		t.Error("two defaults for one platform accepted")
	}
	named := Backend{Machine: hw.V100(), Model: oracleModel{}, Prep: testPrep(), Name: "default"}
	if _, err := NewServer([]Backend{named, d1}, Options{}); err == nil {
		t.Error("explicit default shadowing a model named \"default\" accepted")
	}
}

// biasedModel shifts the oracle's predictions so two versions of one
// platform rank observably differently.
type biasedModel struct{ bias float64 }

func (m biasedModel) PredictBatch(ss []*gnn.Sample) []float64 {
	out := oracleModel{}.PredictBatch(ss)
	for i := range out {
		out[i] += m.bias
	}
	return out
}

// newMultiModelServer serves one platform under two named versions.
func newMultiModelServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer([]Backend{
		{Machine: hw.V100(), Model: oracleModel{}, Prep: testPrep(), Name: "default"},
		{Machine: hw.V100(), Model: biasedModel{bias: 0.05}, Prep: testPrep(), Name: "exp",
			Info: &ModelInfo{Level: paragraph.LevelParaGraph, Source: "checkpoint",
				Hidden: 24, Layers: 3, Epochs: 9, ValRMSE: 0.2}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestMultiModelRouting(t *testing.T) {
	s := newMultiModelServer(t)

	req := adviseReq("NVIDIA V100 (GPU)")
	var def AdviseResponse
	do(t, s, http.MethodPost, "/v1/advise", req, &def)
	if def.Model != "default" {
		t.Errorf("default request resolved to %q", def.Model)
	}

	req.Model = "exp"
	var exp AdviseResponse
	do(t, s, http.MethodPost, "/v1/advise", req, &exp)
	if exp.Model != "exp" {
		t.Errorf("exp request resolved to %q", exp.Model)
	}
	if exp.Cached {
		t.Error("exp request hit the default model's cache entry")
	}
	// Same ranking order (a constant bias preserves order) but different
	// predicted values: proof the request reached the other model.
	if exp.Recommendations[0].PredictedUS == def.Recommendations[0].PredictedUS {
		t.Error("exp and default predictions identical; routing broken")
	}

	// The alias and its resolved name share a cache entry.
	req.Model = "default"
	var aliased AdviseResponse
	do(t, s, http.MethodPost, "/v1/advise", req, &aliased)
	if !aliased.Cached {
		t.Error("explicit default name missed the alias's cache entry")
	}

	req.Model = "nope"
	if rec := do(t, s, http.MethodPost, "/v1/advise", req, nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown model = %d, want 404", rec.Code)
	}
}

func TestModelsEndpoint(t *testing.T) {
	s := newMultiModelServer(t)
	var resp ModelsResponse
	if rec := do(t, s, http.MethodGet, "/v1/models", nil, &resp); rec.Code != http.StatusOK {
		t.Fatalf("models: %d", rec.Code)
	}
	if len(resp.Models) != 2 {
		t.Fatalf("models = %d, want 2", len(resp.Models))
	}
	byName := map[string]ModelDesc{}
	for _, m := range resp.Models {
		byName[m.Name] = m
	}
	if !byName["default"].Default || byName["exp"].Default {
		t.Errorf("default flags wrong: %+v", resp.Models)
	}
	if byName["exp"].Source != "checkpoint" || byName["exp"].Hidden != 24 || byName["exp"].Level != "ParaGraph" {
		t.Errorf("exp metadata = %+v", byName["exp"])
	}
	if rec := do(t, s, http.MethodPost, "/v1/models", nil, nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/models = %d", rec.Code)
	}
}

func TestPerModelStats(t *testing.T) {
	s := newMultiModelServer(t)
	req := adviseReq("NVIDIA V100 (GPU)")
	do(t, s, http.MethodPost, "/v1/advise", req, nil)
	req.Model = "exp"
	do(t, s, http.MethodPost, "/v1/advise", req, nil)
	do(t, s, http.MethodPost, "/v1/advise", req, nil) // cache hit, still counted

	st := s.Stats()
	if len(st.Models) != 2 {
		t.Fatalf("stats models = %d, want 2", len(st.Models))
	}
	byName := map[string]ModelStats{}
	for _, m := range st.Models {
		byName[m.Name] = m
	}
	if byName["default"].Advise != 1 || byName["exp"].Advise != 2 {
		t.Errorf("per-model advise counts = %d/%d, want 1/2",
			byName["default"].Advise, byName["exp"].Advise)
	}
	if byName["exp"].LastUsedUnix == 0 {
		t.Error("exp last-used not recorded")
	}
	if byName["default"].Batcher.Samples == 0 || byName["exp"].Batcher.Samples == 0 {
		t.Error("per-model batcher stats empty")
	}
	// Every evaluated sample feeds the per-model latency sampler, so the
	// quantiles the speedup is observed through must be populated.
	for _, name := range []string{"default", "exp"} {
		lat := byName[name].Batcher.Latency
		if lat.Count == 0 {
			t.Errorf("%s: no latency observations", name)
		}
		if lat.P50MS < 0 || lat.P99MS < lat.P50MS {
			t.Errorf("%s: malformed quantiles %+v", name, lat)
		}
	}
}
