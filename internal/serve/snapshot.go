package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"paragraph/internal/advisor"
)

// Cache persistence: the advise-response cache (ranked grids and single
// predictions) is the service's hottest artifact — every entry stands for a
// full parse→encode→predict sweep — so SnapshotCache serializes it and
// RestoreCache refills it, letting a restarted process answer repeat
// traffic as cache hits immediately instead of re-earning its cache. Keys
// are the content-addressed request hashes, which are stable across
// processes by construction. The encode cache is deliberately not
// persisted: encoded graphs are big, rebuildable, and refill quickly once
// responses are warm.

// snapshotVersion guards the snapshot schema; bump on incompatible change.
const snapshotVersion = 1

// recSnap is the persisted form of one advisor.Recommendation. Kind travels
// by name so snapshots survive resorderings of the variants.Kind enum.
type recSnap struct {
	Kind        string  `json:"kind"`
	Teams       int     `json:"teams,omitempty"`
	Threads     int     `json:"threads"`
	PredictedUS float64 `json:"predicted_us"`
	Source      string  `json:"source,omitempty"`
}

type adviseSnap struct {
	Key  string    `json:"key"`
	Recs []recSnap `json:"recs"`
}

type predictSnap struct {
	Key string  `json:"key"`
	US  float64 `json:"us"`
}

type cacheSnapshot struct {
	Version int           `json:"version"`
	Advise  []adviseSnap  `json:"advise"`
	Predict []predictSnap `json:"predict"`
}

// adviseSnapOf renders one cached ranking in the snapshot schema. Shared
// by cache persistence and the /v1/replicate wire format (cluster.go),
// which is the same schema carrying a single entry.
func adviseSnapOf(key string, recs []advisor.Recommendation) adviseSnap {
	as := adviseSnap{Key: key, Recs: make([]recSnap, len(recs))}
	for i, r := range recs {
		as.Recs[i] = recSnap{
			Kind: r.Kind.String(), Teams: r.Teams, Threads: r.Threads,
			PredictedUS: r.PredictedUS, Source: r.Source,
		}
	}
	return as
}

// SnapshotCache writes the advise-response cache to w. Concurrent requests
// keep running; the snapshot is a consistent-enough point-in-time copy
// (each shard is walked under its lock).
func (s *Server) SnapshotCache(w io.Writer) error {
	snap := cacheSnapshot{Version: snapshotVersion}
	for _, item := range s.adviseCache.Items() {
		switch v := item.Val.(type) {
		case []advisor.Recommendation:
			snap.Advise = append(snap.Advise, adviseSnapOf(item.Key, v))
		case float64:
			snap.Predict = append(snap.Predict, predictSnap{Key: item.Key, US: v})
		}
	}
	return json.NewEncoder(w).Encode(snap)
}

// RestoreCache refills the advise-response cache from a SnapshotCache
// stream, returning how many entries were restored. Entries are re-added
// oldest-first so the snapshot's recency order survives the LRU. Restoring
// on top of a warm cache is safe: keys are content hashes, so collisions
// are identical answers.
func (s *Server) RestoreCache(r io.Reader) (int, error) {
	var snap cacheSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return 0, fmt.Errorf("serve: decoding cache snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("serve: unsupported cache snapshot version %d", snap.Version)
	}
	n := 0
	for i := len(snap.Advise) - 1; i >= 0; i-- {
		as := snap.Advise[i]
		recs := make([]advisor.Recommendation, len(as.Recs))
		ok := true
		for j, rs := range as.Recs {
			kind, err := kindByName(rs.Kind)
			if err != nil {
				ok = false // unknown variant from a future build: drop entry
				break
			}
			recs[j] = advisor.Recommendation{
				Kind: kind, Teams: rs.Teams, Threads: rs.Threads,
				PredictedUS: rs.PredictedUS, Source: rs.Source,
			}
		}
		if !ok {
			continue
		}
		s.adviseCache.Add(as.Key, recs)
		n++
	}
	for i := len(snap.Predict) - 1; i >= 0; i-- {
		s.adviseCache.Add(snap.Predict[i].Key, snap.Predict[i].US)
		n++
	}
	return n, nil
}

// SaveCacheFile snapshots the cache to path atomically (temp file in the
// same directory, then rename), so a crash mid-snapshot never truncates the
// previous good snapshot.
func (s *Server) SaveCacheFile(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if err := s.SnapshotCache(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

// LoadCacheFile restores the cache from a SaveCacheFile snapshot. A missing
// file is not an error (first boot): it returns (0, nil).
func (s *Server) LoadCacheFile(path string) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return s.RestoreCache(f)
}
