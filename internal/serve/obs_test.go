package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"paragraph/internal/obs"
)

// metricsLine matches one sample line of the Prometheus text exposition
// format (comment lines are matched separately).
var metricsLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// scrapeMetrics GETs /metrics and validates every line of the exposition.
func scrapeMetrics(t *testing.T, s *Server) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want text exposition 0.0.4", ct)
	}
	out := rec.Body.String()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !metricsLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
	return out
}

func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t)
	// One cold advise (evaluates through pool and batcher) and one warm
	// repeat (response-cache hit) give every request-path series a value.
	do(t, s, http.MethodPost, "/v1/advise", adviseReq("NVIDIA V100 (GPU)"), nil)
	do(t, s, http.MethodPost, "/v1/advise", adviseReq("NVIDIA V100 (GPU)"), nil)

	out := scrapeMetrics(t, s)
	for _, want := range []string{
		"# TYPE serve_requests_total counter",
		`serve_requests_total{endpoint="advise"} 2`,
		`serve_request_duration_seconds_bucket{endpoint="advise",le="+Inf"} 2`,
		`serve_request_duration_seconds_count{endpoint="advise"} 2`,
		"serve_advise_cache_hits_total 1",
		`serve_cache_entries{cache="advise"} 1`,
		`serve_cache_hits_total{cache="advise"} 1`,
		"serve_pool_size ", // value is GOMAXPROCS-dependent

		"serve_pool_evaluations_total 1",
		"# TYPE serve_batcher_latency_seconds histogram",
		`serve_batcher_latency_seconds_count{platform="NVIDIA V100 (GPU)",model="default"}`,
		`serve_batch_size_bucket{platform="NVIDIA V100 (GPU)",model="default",le="+Inf"}`,
		`serve_batcher_queue_depth{platform="NVIDIA V100 (GPU)",model="default"} 0`,
		`serve_model_advise_total{platform="NVIDIA V100 (GPU)",model="default"} 2`,
		"serve_traces_started_total 2",
		"serve_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// A non-cluster server must not advertise cluster series.
	if strings.Contains(out, "serve_cluster_") {
		t.Error("cluster series exposed outside cluster mode")
	}
}

func TestMetricsRejectsPost(t *testing.T) {
	s := newTestServer(t)
	if rec := do(t, s, http.MethodPost, "/metrics", nil, nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

// doTraced posts one request carrying an explicit trace id and returns the
// recorder.
func doTraced(t *testing.T, s *Server, path string, body any, traceID string) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	req.Header.Set(obs.TraceHeader, traceID)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func TestTraceCapturesRequestSpans(t *testing.T) {
	s := newTestServer(t)
	rec := doTraced(t, s, "/v1/advise", adviseReq("NVIDIA V100 (GPU)"), "trace-advise-1")
	if rec.Code != http.StatusOK {
		t.Fatalf("advise: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(obs.TraceHeader); got != "trace-advise-1" {
		t.Errorf("response trace header = %q, want the ingress id echoed", got)
	}

	var ft obs.FinishedTrace
	if r := do(t, s, http.MethodGet, "/v1/trace?id=trace-advise-1", nil, &ft); r.Code != http.StatusOK {
		t.Fatalf("GET /v1/trace?id=: %d %s", r.Code, r.Body.String())
	}
	if ft.Endpoint != "advise" || ft.Status != http.StatusOK {
		t.Errorf("trace = endpoint %q status %d, want advise/200", ft.Endpoint, ft.Status)
	}
	names := map[string]bool{}
	for _, sp := range ft.Spans {
		names[sp.Name] = true
		if sp.DurUS < 0 {
			t.Errorf("span %q has negative duration %d", sp.Name, sp.DurUS)
		}
	}
	// A cold advise runs the full path: decode, response-cache lookup,
	// pool admission, batcher queue wait, model predict and the final rank.
	for _, want := range []string{"decode", "cache_lookup", "pool_wait", "queue_wait", "predict", "rank"} {
		if !names[want] {
			t.Errorf("trace missing span %q (got %v)", want, names)
		}
	}
}

func TestTraceListingAndErrors(t *testing.T) {
	s := newTestServer(t)
	doTraced(t, s, "/v1/advise", adviseReq("NVIDIA V100 (GPU)"), "list-a")
	doTraced(t, s, "/v1/predict", PredictRequest{
		Kernel: "matmul", Machine: "NVIDIA V100 (GPU)",
		Variant: "gpu_collapse", Teams: 64, Threads: 128,
		Bindings: map[string]float64{"n": 256},
	}, "list-b")

	var list TraceListResponse
	do(t, s, http.MethodGet, "/v1/trace", nil, &list)
	if len(list.Traces) != 2 {
		t.Fatalf("retained %d traces, want 2", len(list.Traces))
	}
	if list.Traces[0].ID != "list-b" || list.Traces[1].ID != "list-a" {
		t.Errorf("traces not newest-first: %q then %q", list.Traces[0].ID, list.Traces[1].ID)
	}

	var one TraceListResponse
	do(t, s, http.MethodGet, "/v1/trace?n=1", nil, &one)
	if len(one.Traces) != 1 || one.Traces[0].ID != "list-b" {
		t.Errorf("?n=1 returned %d traces, want the newest only", len(one.Traces))
	}

	if rec := do(t, s, http.MethodGet, "/v1/trace?n=zero", nil, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad ?n= returned %d, want 400", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/v1/trace?id=never-seen", nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown ?id= returned %d, want 404", rec.Code)
	}
}

func TestErrorAccountingByEndpointAndClass(t *testing.T) {
	s := newTestServer(t)
	// Two distinct 4xx failures against /v1/advise: a malformed body and a
	// wrong method.
	req := httptest.NewRequest(http.MethodPost, "/v1/advise", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed advise = %d, want 400", rec.Code)
	}
	if r := do(t, s, http.MethodGet, "/v1/advise", nil, nil); r.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET advise = %d, want 405", r.Code)
	}

	out := scrapeMetrics(t, s)
	if want := `serve_errors_total{endpoint="advise",code="4xx"} 2`; !strings.Contains(out, want) {
		t.Errorf("exposition missing %q", want)
	}

	var st Stats
	do(t, s, http.MethodGet, "/v1/stats", nil, &st)
	if st.Requests.Errors != 2 {
		t.Errorf("stats errors = %d, want 2", st.Requests.Errors)
	}
	if st.Requests.Advise != 2 {
		t.Errorf("stats advise requests = %d, want 2 (failed requests count as received)", st.Requests.Advise)
	}
}
