package serve

import "sync/atomic"

// Pool bounds the number of advise/predict evaluations in flight across all
// HTTP requests: each evaluation holds one slot for its duration, so a
// traffic burst queues at the pool instead of oversubscribing the CPU with
// grid fan-outs (each Advise already parallelizes internally). The zero
// Pool is not usable; call NewPool.
type Pool struct {
	slots chan struct{}

	inFlight atomic.Int64
	waiting  atomic.Int64 // callers blocked on a slot (the /metrics queue-depth gauge)
	peak     atomic.Int64
	total    atomic.Uint64
}

// NewPool returns a pool with size slots. size <= 0 defaults to 4.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = 4
	}
	return &Pool{slots: make(chan struct{}, size)}
}

// Run executes fn while holding one slot, blocking until a slot frees up.
func (p *Pool) Run(fn func() error) error {
	p.waiting.Add(1)
	p.slots <- struct{}{}
	p.waiting.Add(-1)
	n := p.inFlight.Add(1)
	for {
		old := p.peak.Load()
		if n <= old || p.peak.CompareAndSwap(old, n) {
			break
		}
	}
	p.total.Add(1)
	defer func() {
		p.inFlight.Add(-1)
		<-p.slots
	}()
	return fn()
}

// PoolStats snapshots the pool counters.
type PoolStats struct {
	Size     int    `json:"size"`
	InFlight int64  `json:"in_flight"`
	Peak     int64  `json:"peak"`
	Total    uint64 `json:"total"`
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Size:     cap(p.slots),
		InFlight: p.inFlight.Load(),
		Peak:     p.peak.Load(),
		Total:    p.total.Load(),
	}
}
