package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	const size = 3
	p := NewPool(size)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Run(func() error {
				n := inFlight.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				<-gate
				inFlight.Add(-1)
				return nil
			})
		}()
	}
	// Release everyone; the pool must never have admitted more than size.
	close(gate)
	wg.Wait()
	if got := peak.Load(); got > size {
		t.Errorf("observed %d concurrent runs, pool size %d", got, size)
	}
	st := p.Stats()
	if st.Total != 20 {
		t.Errorf("total = %d, want 20", st.Total)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight = %d after drain", st.InFlight)
	}
	if st.Peak > size || st.Peak < 1 {
		t.Errorf("peak = %d, want in [1,%d]", st.Peak, size)
	}
	if st.Size != size {
		t.Errorf("size = %d", st.Size)
	}
}

func TestPoolPropagatesErrors(t *testing.T) {
	p := NewPool(1)
	want := errors.New("boom")
	if got := p.Run(func() error { return want }); !errors.Is(got, want) {
		t.Errorf("Run error = %v, want %v", got, want)
	}
	// The slot must be released after an error.
	if err := p.Run(func() error { return nil }); err != nil {
		t.Errorf("pool wedged after error: %v", err)
	}
}
