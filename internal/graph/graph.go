// Package graph provides the typed, weighted multigraph structure that
// ParaGraph representations are built on. It is deliberately generic: edge
// types are small integers with caller-supplied names, so the package knows
// nothing about ASTs or OpenMP. Exports include DOT and JSON renderings and
// CSR-style adjacency views used by the GNN layers.
package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Node is a graph vertex. Kind and SubKind are small integers interpreted by
// the producer (for ParaGraph: the AST node kind and, where meaningful, an
// operator or directive code). Feature is an optional scalar payload
// (ParaGraph uses log1p of literal magnitudes).
type Node struct {
	ID      int     `json:"id"`
	Kind    int     `json:"kind"`
	SubKind int     `json:"subkind,omitempty"`
	Feature float64 `json:"feature,omitempty"`
	Label   string  `json:"label,omitempty"`
}

// Edge is a directed, typed, weighted edge.
type Edge struct {
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Type   int     `json:"type"`
	Weight float64 `json:"weight"`
}

// Graph is a directed multigraph with typed, weighted edges.
type Graph struct {
	Nodes     []Node   `json:"nodes"`
	Edges     []Edge   `json:"edges"`
	TypeNames []string `json:"type_names,omitempty"` // edge-type names, indexed by Edge.Type
	KindNames []string `json:"kind_names,omitempty"` // node-kind names, indexed by Node.Kind
}

// New returns an empty graph with the given edge-type names.
func New(typeNames []string) *Graph {
	return &Graph{TypeNames: typeNames}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// NumTypes returns the number of declared edge types.
func (g *Graph) NumTypes() int { return len(g.TypeNames) }

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(n Node) int {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n.ID
}

// AddEdge appends an edge.
func (g *Graph) AddEdge(src, dst, typ int, weight float64) {
	g.Edges = append(g.Edges, Edge{Src: src, Dst: dst, Type: typ, Weight: weight})
}

// Validate checks structural invariants: endpoints and types in range,
// finite non-negative weights, node IDs dense and in order.
func (g *Graph) Validate() error {
	for i, n := range g.Nodes {
		if n.ID != i {
			return fmt.Errorf("graph: node %d has ID %d (IDs must be dense)", i, n.ID)
		}
	}
	for i, e := range g.Edges {
		if e.Src < 0 || e.Src >= len(g.Nodes) {
			return fmt.Errorf("graph: edge %d src %d out of range [0,%d)", i, e.Src, len(g.Nodes))
		}
		if e.Dst < 0 || e.Dst >= len(g.Nodes) {
			return fmt.Errorf("graph: edge %d dst %d out of range [0,%d)", i, e.Dst, len(g.Nodes))
		}
		if len(g.TypeNames) > 0 && (e.Type < 0 || e.Type >= len(g.TypeNames)) {
			return fmt.Errorf("graph: edge %d type %d out of range [0,%d)", i, e.Type, len(g.TypeNames))
		}
		if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight < 0 {
			return fmt.Errorf("graph: edge %d has invalid weight %v", i, e.Weight)
		}
	}
	return nil
}

// EdgesOfType returns the edges with the given type, in insertion order.
func (g *Graph) EdgesOfType(typ int) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// CountByType returns the number of edges of each type.
func (g *Graph) CountByType() []int {
	counts := make([]int, g.NumTypes())
	for _, e := range g.Edges {
		if e.Type >= 0 && e.Type < len(counts) {
			counts[e.Type]++
		}
	}
	return counts
}

// InDegrees returns the in-degree of every node.
func (g *Graph) InDegrees() []int {
	deg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		deg[e.Dst]++
	}
	return deg
}

// OutDegrees returns the out-degree of every node.
func (g *Graph) OutDegrees() []int {
	deg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		deg[e.Src]++
	}
	return deg
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var w float64
	for _, e := range g.Edges {
		w += e.Weight
	}
	return w
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Nodes:     append([]Node(nil), g.Nodes...),
		Edges:     append([]Edge(nil), g.Edges...),
		TypeNames: append([]string(nil), g.TypeNames...),
		KindNames: append([]string(nil), g.KindNames...),
	}
	return c
}

// Adjacency is a CSR-style view of incoming edges grouped by destination
// node, as required by attention softmax over each node's in-neighborhood.
// For node v, incoming edge indices are Index[Start[v]:Start[v+1]].
type Adjacency struct {
	Start []int // len NumNodes+1
	Index []int // edge indices sorted by Dst
}

// InAdjacency builds the incoming-edge CSR view.
func (g *Graph) InAdjacency() Adjacency {
	idx := make([]int, len(g.Edges))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return g.Edges[idx[a]].Dst < g.Edges[idx[b]].Dst })
	start := make([]int, len(g.Nodes)+1)
	for _, ei := range idx {
		start[g.Edges[ei].Dst+1]++
	}
	for v := 0; v < len(g.Nodes); v++ {
		start[v+1] += start[v]
	}
	return Adjacency{Start: start, Index: idx}
}

// typeName returns a printable name for an edge type.
func (g *Graph) typeName(t int) string {
	if t >= 0 && t < len(g.TypeNames) {
		return g.TypeNames[t]
	}
	return fmt.Sprintf("type%d", t)
}

// kindName returns a printable name for a node kind.
func (g *Graph) kindName(k int) string {
	if k >= 0 && k < len(g.KindNames) {
		return g.KindNames[k]
	}
	return fmt.Sprintf("kind%d", k)
}

// dotColors maps edge types to Graphviz colors, cycling when there are more
// types than colors. The first type (Child in ParaGraph) renders black.
var dotColors = []string{
	"black", "orange", "blue", "deeppink", "forestgreen",
	"red", "purple", "brown", "cadetblue", "goldenrod",
}

// WriteDOT renders the graph in Graphviz DOT format.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "paragraph"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box, fontname=\"monospace\"];\n", name)
	for _, n := range g.Nodes {
		label := n.Label
		if label == "" {
			label = g.kindName(n.Kind)
		}
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", n.ID, label)
	}
	for _, e := range g.Edges {
		color := dotColors[e.Type%len(dotColors)]
		if e.Weight != 0 {
			fmt.Fprintf(&sb, "  n%d -> n%d [color=%s, label=%q];\n",
				e.Src, e.Dst, color, fmt.Sprintf("%s w=%g", g.typeName(e.Type), e.Weight))
		} else {
			fmt.Fprintf(&sb, "  n%d -> n%d [color=%s, label=%q];\n",
				e.Src, e.Dst, color, g.typeName(e.Type))
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteJSON renders the graph as JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON parses a graph from JSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("graph: decoding JSON: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// Stats summarizes a graph for reporting.
type Stats struct {
	Nodes       int
	Edges       int
	EdgesByType map[string]int
	MaxInDeg    int
	MaxOutDeg   int
	TotalWeight float64
}

// Summary computes Stats for the graph.
func (g *Graph) Summary() Stats {
	s := Stats{
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		EdgesByType: map[string]int{},
		TotalWeight: g.TotalWeight(),
	}
	for t, c := range g.CountByType() {
		if c > 0 {
			s.EdgesByType[g.typeName(t)] = c
		}
	}
	for _, d := range g.InDegrees() {
		if d > s.MaxInDeg {
			s.MaxInDeg = d
		}
	}
	for _, d := range g.OutDegrees() {
		if d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
	}
	return s
}
