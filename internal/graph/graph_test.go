package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func smallGraph() *Graph {
	g := New([]string{"Child", "Ref"})
	g.KindNames = []string{"A", "B", "C"}
	a := g.AddNode(Node{Kind: 0, Label: "root"})
	b := g.AddNode(Node{Kind: 1})
	c := g.AddNode(Node{Kind: 2})
	g.AddEdge(a, b, 0, 1)
	g.AddEdge(a, c, 0, 2.5)
	g.AddEdge(c, b, 1, 0)
	return g
}

func TestAddAndValidate(t *testing.T) {
	g := smallGraph()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 || g.NumTypes() != 2 {
		t.Errorf("counts = %d/%d/%d", g.NumNodes(), g.NumEdges(), g.NumTypes())
	}
}

func TestValidateCatchesBadEdges(t *testing.T) {
	cases := []func(*Graph){
		func(g *Graph) { g.AddEdge(-1, 0, 0, 1) },
		func(g *Graph) { g.AddEdge(0, 99, 0, 1) },
		func(g *Graph) { g.AddEdge(0, 1, 7, 1) },
		func(g *Graph) { g.AddEdge(0, 1, 0, -1) },
		func(g *Graph) { g.AddEdge(0, 1, 0, math.NaN()) },
		func(g *Graph) { g.AddEdge(0, 1, 0, math.Inf(1)) },
	}
	for i, corrupt := range cases {
		g := smallGraph()
		corrupt(g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted corrupt graph", i)
		}
	}
	g := smallGraph()
	g.Nodes[1].ID = 7
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted non-dense IDs")
	}
}

func TestDegreesAndCounts(t *testing.T) {
	g := smallGraph()
	in := g.InDegrees()
	out := g.OutDegrees()
	if in[1] != 2 || in[0] != 0 || in[2] != 1 {
		t.Errorf("in degrees = %v", in)
	}
	if out[0] != 2 || out[2] != 1 || out[1] != 0 {
		t.Errorf("out degrees = %v", out)
	}
	counts := g.CountByType()
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts by type = %v", counts)
	}
	if got := g.TotalWeight(); got != 3.5 {
		t.Errorf("TotalWeight = %v, want 3.5", got)
	}
}

func TestEdgesOfType(t *testing.T) {
	g := smallGraph()
	child := g.EdgesOfType(0)
	if len(child) != 2 {
		t.Fatalf("child edges = %d, want 2", len(child))
	}
	ref := g.EdgesOfType(1)
	if len(ref) != 1 || ref[0].Src != 2 {
		t.Errorf("ref edges = %v", ref)
	}
	if got := g.EdgesOfType(9); got != nil {
		t.Errorf("unknown type edges = %v", got)
	}
}

func TestInAdjacencyGroupsByDst(t *testing.T) {
	g := New([]string{"t"})
	for i := 0; i < 4; i++ {
		g.AddNode(Node{})
	}
	g.AddEdge(0, 2, 0, 1)
	g.AddEdge(1, 2, 0, 1)
	g.AddEdge(3, 0, 0, 1)
	g.AddEdge(2, 3, 0, 1)
	adj := g.InAdjacency()
	if len(adj.Start) != 5 {
		t.Fatalf("Start len = %d", len(adj.Start))
	}
	// Node 2 has incoming edges 0 and 1.
	in2 := adj.Index[adj.Start[2]:adj.Start[3]]
	if len(in2) != 2 {
		t.Fatalf("node 2 in-edges = %v", in2)
	}
	for _, ei := range in2 {
		if g.Edges[ei].Dst != 2 {
			t.Errorf("edge %d has dst %d, want 2", ei, g.Edges[ei].Dst)
		}
	}
	// Node 1 has no incoming edges.
	if adj.Start[1] != adj.Start[2]-2 && adj.Start[2]-adj.Start[1] != 0 {
		in1 := adj.Index[adj.Start[1]:adj.Start[2]]
		if len(in1) != 0 {
			t.Errorf("node 1 in-edges = %v, want none", in1)
		}
	}
}

func TestInAdjacencyCoversAllEdges(t *testing.T) {
	f := func(raw []byte) bool {
		n := 5
		g := New([]string{"t"})
		for i := 0; i < n; i++ {
			g.AddNode(Node{})
		}
		for i := 0; i+1 < len(raw); i += 2 {
			g.AddEdge(int(raw[i])%n, int(raw[i+1])%n, 0, 1)
		}
		adj := g.InAdjacency()
		if adj.Start[len(adj.Start)-1] != len(g.Edges) {
			return false
		}
		seen := map[int]bool{}
		for v := 0; v < n; v++ {
			for _, ei := range adj.Index[adj.Start[v]:adj.Start[v+1]] {
				if g.Edges[ei].Dst != v || seen[ei] {
					return false
				}
				seen[ei] = true
			}
		}
		return len(seen) == len(g.Edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := smallGraph()
	c := g.Clone()
	c.AddNode(Node{})
	c.AddEdge(0, 1, 1, 9)
	c.Nodes[0].Label = "changed"
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Error("clone mutation leaked into original")
	}
	if g.Nodes[0].Label != "root" {
		t.Error("clone node mutation leaked")
	}
}

func TestDOTOutput(t *testing.T) {
	g := smallGraph()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph", "n0 -> n1", "Child", "Ref", "w=2.5", "root"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT missing %q:\n%s", want, s)
		}
	}
	var buf2 bytes.Buffer
	if err := g.WriteDOT(&buf2, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "paragraph") {
		t.Error("default DOT name missing")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := smallGraph()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d vs %d/%d", g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := range g.Edges {
		if g2.Edges[i] != g.Edges[i] {
			t.Errorf("edge %d: %v vs %v", i, g2.Edges[i], g.Edges[i])
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad json")); err == nil {
		t.Error("accepted malformed JSON")
	}
	// Structurally invalid graph: edge out of range.
	bad := `{"nodes":[{"id":0}],"edges":[{"src":0,"dst":5,"type":0,"weight":1}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("accepted out-of-range edge")
	}
}

func TestSummary(t *testing.T) {
	g := smallGraph()
	s := g.Summary()
	if s.Nodes != 3 || s.Edges != 3 {
		t.Errorf("summary counts = %+v", s)
	}
	if s.EdgesByType["Child"] != 2 || s.EdgesByType["Ref"] != 1 {
		t.Errorf("by type = %v", s.EdgesByType)
	}
	if s.MaxInDeg != 2 || s.MaxOutDeg != 2 {
		t.Errorf("degrees = %d/%d", s.MaxInDeg, s.MaxOutDeg)
	}
	if s.TotalWeight != 3.5 {
		t.Errorf("weight = %v", s.TotalWeight)
	}
}

func TestTypeNameFallbacks(t *testing.T) {
	g := New(nil)
	g.AddNode(Node{Kind: 4})
	g.AddNode(Node{})
	g.AddEdge(0, 1, 3, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("untyped graph should validate: %v", err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "x"); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "type3") || !strings.Contains(s, "kind4") {
		t.Errorf("fallback names missing:\n%s", s)
	}
}
