package hw

import (
	"strings"
	"testing"
)

func TestAllPlatformsPresent(t *testing.T) {
	ms := All()
	if len(ms) != 4 {
		t.Fatalf("machines = %d, want 4", len(ms))
	}
	wantClusters := map[string]string{
		"IBM POWER9 (CPU)":   "Summit",
		"NVIDIA V100 (GPU)":  "Summit",
		"AMD EPYC7401 (CPU)": "Corona",
		"AMD MI50 (GPU)":     "Corona",
	}
	for _, m := range ms {
		want, ok := wantClusters[m.Name]
		if !ok {
			t.Errorf("unexpected machine %q", m.Name)
			continue
		}
		if m.Cluster != want {
			t.Errorf("%s cluster = %q, want %q", m.Name, m.Cluster, want)
		}
	}
}

func TestCoreCountsMatchPaper(t *testing.T) {
	// Table III: POWER9 with 22 cores, EPYC 7401 with 24 cores.
	if Power9().Cores != 22 {
		t.Errorf("POWER9 cores = %d, want 22", Power9().Cores)
	}
	if EPYC7401().Cores != 24 {
		t.Errorf("EPYC cores = %d, want 24", EPYC7401().Cores)
	}
	// Public specs: V100 has 80 SMs, MI50 has 60 CUs.
	if V100().Cores != 80 {
		t.Errorf("V100 SMs = %d, want 80", V100().Cores)
	}
	if MI50().Cores != 60 {
		t.Errorf("MI50 CUs = %d, want 60", MI50().Cores)
	}
}

func TestPeaksAreOrderedSanely(t *testing.T) {
	// DP peak ordering: V100 ≳ MI50 ≫ POWER9 > EPYC.
	v, mi := V100().PeakGFLOPS(), MI50().PeakGFLOPS()
	p9, ep := Power9().PeakGFLOPS(), EPYC7401().PeakGFLOPS()
	if v < mi {
		t.Errorf("V100 peak %v < MI50 peak %v", v, mi)
	}
	if mi < 5*p9 {
		t.Errorf("MI50 peak %v should dwarf POWER9 %v", mi, p9)
	}
	if p9 < ep {
		t.Errorf("POWER9 peak %v < EPYC %v", p9, ep)
	}
	// V100 DP peak is ~7.8 TFLOPS; the model must land in that decade.
	if v < 3000 || v > 20000 {
		t.Errorf("V100 peak %v GFLOPS implausible", v)
	}
}

func TestGPUMemoryBandwidthExceedsCPUs(t *testing.T) {
	for _, g := range GPUs() {
		for _, c := range CPUs() {
			if g.MemBWGBs <= c.MemBWGBs {
				t.Errorf("%s BW %v should exceed %s BW %v", g.Name, g.MemBWGBs, c.Name, c.MemBWGBs)
			}
		}
	}
}

func TestGPULinkFields(t *testing.T) {
	for _, g := range GPUs() {
		if g.LinkBWGBs <= 0 || g.LinkLatencyUS <= 0 {
			t.Errorf("%s: missing link model", g.Name)
		}
		if g.ThreadsPerCore <= 0 {
			t.Errorf("%s: missing occupancy shape", g.Name)
		}
		if !g.IsGPU {
			t.Errorf("%s: not marked GPU", g.Name)
		}
	}
	for _, c := range CPUs() {
		if c.SingleCoreBWFrac <= 0 || c.SingleCoreBWFrac > 1 {
			t.Errorf("%s: SingleCoreBWFrac = %v", c.Name, c.SingleCoreBWFrac)
		}
	}
}

func TestMaxParallelism(t *testing.T) {
	if got := Power9().MaxParallelism(); got != 22 {
		t.Errorf("POWER9 parallelism = %d", got)
	}
	if got := V100().MaxParallelism(); got != 80*V100().ThreadsPerCore {
		t.Errorf("V100 parallelism = %d", got)
	}
}

func TestByName(t *testing.T) {
	for _, m := range All() {
		got, err := ByName(m.Name)
		if err != nil {
			t.Errorf("ByName(%q): %v", m.Name, err)
		}
		if got.Name != m.Name {
			t.Errorf("ByName returned %q", got.Name)
		}
	}
	if _, err := ByName("Cray XT5"); err == nil {
		t.Error("unknown machine accepted")
	}
	if s := V100().String(); !strings.Contains(s, "V100") {
		t.Errorf("String = %q", s)
	}
}

func TestSummitFasterLinkThanCorona(t *testing.T) {
	// Summit's NVLink host connection outruns Corona's PCIe gen3 — the
	// asymmetry that makes gpu_mem variants relatively cheaper on Summit.
	if V100().LinkBWGBs <= MI50().LinkBWGBs {
		t.Error("V100 link should be faster than MI50's")
	}
}
