// Package hw defines analytical machine models for the four accelerators the
// paper evaluates on: IBM POWER9 and NVIDIA V100 (ORNL Summit), and AMD EPYC
// 7401 and AMD MI50 (LLNL Corona). The models are calibrated from public
// datasheets; they stand in for the real clusters, which this reproduction
// cannot access (internal/sim consumes them as the measurement substrate).
package hw

import "fmt"

// Machine is an analytical accelerator model consumed by the runtime
// simulator (package sim). Units: GHz, GB/s, microseconds.
type Machine struct {
	Name    string
	Cluster string // "Summit" or "Corona"
	IsGPU   bool

	// Compute.
	Cores         int     // CPU cores, or GPU SMs/CUs
	ClockGHz      float64 // sustained clock
	FlopsPerCycle float64 // double-precision flops per core (or per SM) per cycle

	// Memory.
	MemBWGBs float64 // sustained main-memory bandwidth

	// Parallel runtime overheads.
	RegionOverheadUS float64 // entering a parallel region / launching a kernel
	PerWorkerUS      float64 // additional cost per thread/team activated

	// GPU-only: host<->device link.
	LinkBWGBs     float64 // PCIe/NVLink sustained bandwidth
	LinkLatencyUS float64 // per-transfer latency

	// GPU-only: occupancy shape.
	ThreadsPerCore int // hardware threads per SM needed to saturate (GPU)

	// CPU-only: memory bandwidth saturation — fraction of peak a single
	// core can draw.
	SingleCoreBWFrac float64
}

// PeakGFLOPS returns the whole-machine double-precision peak in GFLOP/s.
func (m Machine) PeakGFLOPS() float64 {
	return float64(m.Cores) * m.ClockGHz * m.FlopsPerCycle
}

// MaxParallelism returns the hardware worker count that saturates compute.
func (m Machine) MaxParallelism() int {
	if m.IsGPU {
		return m.Cores * m.ThreadsPerCore
	}
	return m.Cores
}

// String returns the machine name.
func (m Machine) String() string { return m.Name }

// Power9 models one socket of Summit's IBM POWER9 (22 cores used, as in the
// paper's Table III).
func Power9() Machine {
	return Machine{
		Name:             "IBM POWER9 (CPU)",
		Cluster:          "Summit",
		IsGPU:            false,
		Cores:            22,
		ClockGHz:         3.45,
		FlopsPerCycle:    8, // 2×128-bit VSX FMA
		MemBWGBs:         140,
		RegionOverheadUS: 4,
		PerWorkerUS:      0.6,
		SingleCoreBWFrac: 0.18,
	}
}

// V100 models Summit's NVIDIA Tesla V100 (SXM2).
func V100() Machine {
	return Machine{
		Name:             "NVIDIA V100 (GPU)",
		Cluster:          "Summit",
		IsGPU:            true,
		Cores:            80, // SMs
		ClockGHz:         1.53,
		FlopsPerCycle:    64, // 32 DP cores × FMA per SM
		MemBWGBs:         900,
		RegionOverheadUS: 8,
		PerWorkerUS:      0.002,
		LinkBWGBs:        45, // NVLink2 host link on Summit
		LinkLatencyUS:    10,
		ThreadsPerCore:   2048 / 32, // resident warps' lanes per DP pipe
	}
}

// EPYC7401 models Corona's AMD EPYC 7401 (24 cores).
func EPYC7401() Machine {
	return Machine{
		Name:             "AMD EPYC7401 (CPU)",
		Cluster:          "Corona",
		IsGPU:            false,
		Cores:            24,
		ClockGHz:         2.0,
		FlopsPerCycle:    8,
		MemBWGBs:         120,
		RegionOverheadUS: 5,
		PerWorkerUS:      0.8,
		SingleCoreBWFrac: 0.15,
	}
}

// MI50 models Corona's AMD Radeon Instinct MI50.
func MI50() Machine {
	return Machine{
		Name:             "AMD MI50 (GPU)",
		Cluster:          "Corona",
		IsGPU:            true,
		Cores:            60, // CUs
		ClockGHz:         1.725,
		FlopsPerCycle:    32, // 16 DP ops × FMA per CU
		MemBWGBs:         1024,
		RegionOverheadUS: 14, // ROCm launch overhead is higher than CUDA's
		PerWorkerUS:      0.004,
		LinkBWGBs:        14, // PCIe gen3 x16 sustained
		LinkLatencyUS:    16,
		ThreadsPerCore:   2560 / 16,
	}
}

// All returns the four paper platforms in Table II/III order.
func All() []Machine {
	return []Machine{Power9(), V100(), EPYC7401(), MI50()}
}

// ByName returns the machine with the given name.
func ByName(name string) (Machine, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("hw: unknown machine %q", name)
}

// CPUs returns the CPU platforms.
func CPUs() []Machine { return []Machine{Power9(), EPYC7401()} }

// GPUs returns the GPU platforms.
func GPUs() []Machine { return []Machine{V100(), MI50()} }
