package sim

import (
	"math"
	"testing"

	"paragraph/internal/apps"
	"paragraph/internal/hw"
	"paragraph/internal/variants"
)

func instance(t *testing.T, kernelName string, kind variants.Kind, teams, threads int, bindings map[string]float64) variants.Instance {
	t.Helper()
	k, ok := apps.ByName(kernelName)
	if !ok {
		t.Fatalf("kernel %q not found", kernelName)
	}
	src, err := variants.Generate(k, kind, teams, threads)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]float64{}
	for name, v := range bindings {
		env[name] = v
	}
	return variants.Instance{Kernel: k, Kind: kind, Teams: teams, Threads: threads, Bindings: env, Source: src}
}

func simulate(t *testing.T, in variants.Instance, m hw.Machine) Result {
	t.Helper()
	r, err := Simulate(in, m, Config{Seed: 1})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if r.MicroSec <= 0 || math.IsNaN(r.MicroSec) || math.IsInf(r.MicroSec, 0) {
		t.Fatalf("invalid runtime %v", r.MicroSec)
	}
	return r
}

func TestSimulateDeterministic(t *testing.T) {
	in := instance(t, "matmul", variants.GPU, 128, 128, map[string]float64{"n": 256})
	r1 := simulate(t, in, hw.V100())
	r2 := simulate(t, in, hw.V100())
	if r1.MicroSec != r2.MicroSec {
		t.Errorf("non-deterministic: %v vs %v", r1.MicroSec, r2.MicroSec)
	}
	// Different seed changes the noise.
	r3, err := Simulate(in, hw.V100(), Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if r3.MicroSec == r1.MicroSec {
		t.Error("seed has no effect")
	}
}

func TestSimulatePlatformMismatch(t *testing.T) {
	in := instance(t, "matmul", variants.GPU, 64, 64, map[string]float64{"n": 128})
	if _, err := Simulate(in, hw.Power9(), Config{}); err == nil {
		t.Error("gpu variant on CPU accepted")
	}
	in2 := instance(t, "matmul", variants.CPU, 0, 8, map[string]float64{"n": 128})
	if _, err := Simulate(in2, hw.V100(), Config{}); err == nil {
		t.Error("cpu variant on GPU accepted")
	}
}

func TestRuntimeGrowsWithProblemSize(t *testing.T) {
	for _, m := range hw.CPUs() {
		small := simulate(t, instance(t, "matmul", variants.CPU, 0, 8, map[string]float64{"n": 128}), m)
		big := simulate(t, instance(t, "matmul", variants.CPU, 0, 8, map[string]float64{"n": 512}), m)
		if big.MicroSec <= small.MicroSec {
			t.Errorf("%s: runtime did not grow with n: %v vs %v", m.Name, small.MicroSec, big.MicroSec)
		}
		// n scales cubically; runtime should grow by far more than 2x.
		if big.MicroSec < 8*small.MicroSec {
			t.Errorf("%s: weak scaling with size: %v -> %v", m.Name, small.MicroSec, big.MicroSec)
		}
	}
}

func TestMoreThreadsHelpOnCPU(t *testing.T) {
	for _, m := range hw.CPUs() {
		t1 := simulate(t, instance(t, "matmul", variants.CPU, 0, 1, map[string]float64{"n": 512}), m)
		t16 := simulate(t, instance(t, "matmul", variants.CPU, 0, 16, map[string]float64{"n": 512}), m)
		if t16.MicroSec >= t1.MicroSec {
			t.Errorf("%s: 16 threads not faster than 1: %v vs %v", m.Name, t16.MicroSec, t1.MicroSec)
		}
		speedup := t1.MicroSec / t16.MicroSec
		if speedup < 2 || speedup > 16 {
			t.Errorf("%s: implausible 16-thread speedup %v", m.Name, speedup)
		}
	}
}

func TestGPUWinsAtScaleLosesAtSmall(t *testing.T) {
	// Large matmul: V100 should beat 8-thread POWER9 clearly.
	big := map[string]float64{"n": 1024}
	gpuBig := simulate(t, instance(t, "matmul", variants.GPUCollapse, 256, 256, big), hw.V100())
	cpuBig := simulate(t, instance(t, "matmul", variants.CPU, 0, 8, big), hw.Power9())
	if gpuBig.MicroSec >= cpuBig.MicroSec {
		t.Errorf("V100 (%v us) should beat POWER9/8t (%v us) on n=1024 matmul",
			gpuBig.MicroSec, cpuBig.MicroSec)
	}
	// Tiny kernel with data transfer: CPU should win (launch+transfer tolls).
	small := map[string]float64{"n": 4096}
	gpuSmall := simulate(t, instance(t, "pf_motion", variants.GPUMem, 64, 64, small), hw.V100())
	cpuSmall := simulate(t, instance(t, "pf_motion", variants.CPU, 0, 8, small), hw.Power9())
	if cpuSmall.MicroSec >= gpuSmall.MicroSec {
		t.Errorf("POWER9 (%v us) should beat V100+transfer (%v us) on tiny kernel",
			cpuSmall.MicroSec, gpuSmall.MicroSec)
	}
}

func TestTransferTollOnMemVariants(t *testing.T) {
	bind := map[string]float64{"n": 512}
	resident := simulate(t, instance(t, "matmul", variants.GPU, 128, 128, bind), hw.V100())
	withMem := simulate(t, instance(t, "matmul", variants.GPUMem, 128, 128, bind), hw.V100())
	if withMem.MicroSec <= resident.MicroSec {
		t.Errorf("gpu_mem (%v) should cost more than gpu (%v)", withMem.MicroSec, resident.MicroSec)
	}
	if withMem.Breakdown.TransferUS <= 0 {
		t.Error("gpu_mem has zero transfer time")
	}
	if resident.Breakdown.TransferUS != 0 {
		t.Errorf("resident gpu has transfer time %v", resident.Breakdown.TransferUS)
	}
}

func TestCollapseHelpsThinOuterLoops(t *testing.T) {
	// cov_matrix: outer loops m×m with inner reduction over n. With m=64 the
	// uncollapsed outer loop (64 iterations) cannot fill a GPU; collapse(2)
	// exposes 4096.
	bind := map[string]float64{"n": 1024, "m": 64}
	plain := simulate(t, instance(t, "covariance_matrix", variants.GPU, 256, 64, bind), hw.V100())
	collapsed := simulate(t, instance(t, "covariance_matrix", variants.GPUCollapse, 256, 64, bind), hw.V100())
	if collapsed.MicroSec >= plain.MicroSec {
		t.Errorf("collapse (%v us) should beat plain (%v us) on thin outer loop",
			collapsed.MicroSec, plain.MicroSec)
	}
	if collapsed.Breakdown.EffParallelism <= plain.Breakdown.EffParallelism {
		t.Errorf("collapse parallelism %v should exceed plain %v",
			collapsed.Breakdown.EffParallelism, plain.Breakdown.EffParallelism)
	}
}

func TestNoiseIsBoundedAndDisablable(t *testing.T) {
	in := instance(t, "transpose", variants.CPU, 0, 4, map[string]float64{"n": 512, "m": 512})
	r, err := Simulate(in, hw.EPYC7401(), Config{Seed: 7, NoiseSigma: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if r.Breakdown.NoiseFactor < 0.7 || r.Breakdown.NoiseFactor > 1.4 {
		t.Errorf("noise factor %v outside plausible range", r.Breakdown.NoiseFactor)
	}
	rNo, err := Simulate(in, hw.EPYC7401(), Config{Seed: 7, NoiseSigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rNo.Breakdown.NoiseFactor != 1 {
		t.Errorf("disabled noise factor = %v", rNo.Breakdown.NoiseFactor)
	}
}

func TestSimulateBadSource(t *testing.T) {
	in := variants.Instance{Source: "void broken( {", Kind: variants.CPU, Threads: 1}
	if _, err := Simulate(in, hw.Power9(), Config{}); err == nil {
		t.Error("bad source accepted")
	}
}

func TestBreakdownComponentsNonNegative(t *testing.T) {
	for _, k := range apps.Kernels() {
		bind := map[string]float64{}
		for _, p := range k.Params {
			bind[p.Name] = float64(p.Values[0])
		}
		for _, kind := range variants.Kinds() {
			if kind.IsCollapse() && !k.Collapsible {
				continue
			}
			var machines []hw.Machine
			if kind.IsGPU() {
				machines = hw.GPUs()
			} else {
				machines = hw.CPUs()
			}
			for _, m := range machines {
				in := instance(t, k.Name, kind, 64, 64, bind)
				r := simulate(t, in, m)
				b := r.Breakdown
				for name, v := range map[string]float64{
					"compute": b.ComputeUS, "memory": b.MemoryUS,
					"transfer": b.TransferUS, "overhead": b.OverheadUS,
					"reduction": b.ReductionUS,
				} {
					if v < 0 || math.IsNaN(v) {
						t.Errorf("%s/%v on %s: %s = %v", k.Name, kind, m.Name, name, v)
					}
				}
				if b.EffParallelism < 1 {
					t.Errorf("%s/%v on %s: parallelism %v < 1", k.Name, kind, m.Name, b.EffParallelism)
				}
			}
		}
	}
}

func TestMillisecondsConversion(t *testing.T) {
	r := Result{MicroSec: 2500}
	if r.Milliseconds() != 2.5 {
		t.Errorf("Milliseconds = %v", r.Milliseconds())
	}
}

func TestMachineModels(t *testing.T) {
	ms := hw.All()
	if len(ms) != 4 {
		t.Fatalf("machines = %d, want 4", len(ms))
	}
	for _, m := range ms {
		if m.PeakGFLOPS() <= 0 {
			t.Errorf("%s: no peak", m.Name)
		}
		if m.MaxParallelism() <= 0 {
			t.Errorf("%s: no parallelism", m.Name)
		}
	}
	// GPUs should have order-of-magnitude higher peak than CPUs.
	if hw.V100().PeakGFLOPS() < 5*hw.Power9().PeakGFLOPS() {
		t.Error("V100 peak implausibly low vs POWER9")
	}
	if _, err := hw.ByName("IBM POWER9 (CPU)"); err != nil {
		t.Errorf("ByName: %v", err)
	}
	if _, err := hw.ByName("nonsense"); err == nil {
		t.Error("ByName(nonsense) should fail")
	}
	if len(hw.CPUs()) != 2 || len(hw.GPUs()) != 2 {
		t.Error("CPU/GPU split wrong")
	}
	for _, m := range hw.CPUs() {
		if m.IsGPU {
			t.Errorf("%s in CPUs but IsGPU", m.Name)
		}
	}
}
