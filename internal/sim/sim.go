// Package sim is the runtime-measurement substrate: an analytical
// performance simulator standing in for the paper's Summit and Corona runs
// (the "Runtime Measurement Module" of Figure 3).
//
// The model is a roofline with parallel-efficiency and overhead terms:
//
//	time = region/launch overhead
//	     + host<->device transfer (map clauses)
//	     + max(compute time, memory time) at the achieved parallelism
//	     + reduction tree cost
//
// multiplied by deterministic, seeded lognormal noise so repeated
// measurements of the same configuration scatter like real runs. Absolute
// numbers are not meant to match the paper's clusters; the qualitative
// structure (GPU wins at scale, transfer-heavy variants pay a fixed toll,
// collapse recovers occupancy on thin outer loops, wide dynamic range per
// platform) is what the cost model learns and is preserved.
package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"paragraph/internal/analysis"
	"paragraph/internal/cparse"
	"paragraph/internal/hw"
	"paragraph/internal/variants"
)

// Config controls simulation.
type Config struct {
	// Seed feeds the deterministic noise; two simulations with the same
	// seed, instance and machine return identical results.
	Seed int64
	// NoiseSigma is the lognormal sigma of run-to-run variation. Zero
	// selects the default 0.04; negative disables noise.
	NoiseSigma float64
	// DefaultTrip is assumed for statically unresolvable loop bounds.
	// Zero selects 100.
	DefaultTrip float64
	// CacheHitRate is the fraction of loads/stores served by caches and
	// never reaching DRAM. Zero selects 0.7 (CPU) / 0.8 (GPU).
	CacheHitRate float64
}

func (c Config) noiseSigma() float64 {
	if c.NoiseSigma == 0 {
		return 0.04
	}
	if c.NoiseSigma < 0 {
		return 0
	}
	return c.NoiseSigma
}

func (c Config) defaultTrip() float64 {
	if c.DefaultTrip <= 0 {
		return 100
	}
	return c.DefaultTrip
}

func (c Config) cacheHit(isGPU bool) float64 {
	if c.CacheHitRate > 0 {
		return math.Min(c.CacheHitRate, 0.999)
	}
	if isGPU {
		return 0.8
	}
	return 0.7
}

// Breakdown itemizes a simulated runtime (microseconds).
type Breakdown struct {
	ComputeUS   float64
	MemoryUS    float64
	TransferUS  float64
	OverheadUS  float64
	ReductionUS float64
	// EffParallelism is the achieved worker count after occupancy limits.
	EffParallelism float64
	// NoiseFactor is the multiplicative noise applied to the total.
	NoiseFactor float64
}

// Result is one simulated measurement.
type Result struct {
	MicroSec  float64
	Breakdown Breakdown
}

// Milliseconds returns the runtime in ms (the unit of the paper's tables).
func (r Result) Milliseconds() float64 { return r.MicroSec / 1000 }

// Simulate parses the instance's source, analyzes it, and models its
// runtime on machine m. CPU variants must be paired with CPU machines and
// GPU variants with GPU machines, mirroring the paper's data collection.
func Simulate(in variants.Instance, m hw.Machine, cfg Config) (Result, error) {
	fn, err := cparse.ParseFunction(in.Source)
	if err != nil {
		return Result{}, fmt.Errorf("sim: parsing instance %s: %w", in.Name(), err)
	}
	kc := analysis.AnalyzeKernel(fn, in.Bindings, cfg.defaultTrip())
	return SimulateCost(kc, in, m, cfg)
}

// SimulateCost models the runtime of an already-analyzed kernel.
func SimulateCost(kc analysis.KernelCost, in variants.Instance, m hw.Machine, cfg Config) (Result, error) {
	if in.Kind.IsGPU() != m.IsGPU {
		return Result{}, fmt.Errorf("sim: variant %v cannot run on %s", in.Kind, m.Name)
	}
	var b Breakdown
	if m.IsGPU {
		b = gpuBreakdown(kc, in, m, cfg)
	} else {
		b = cpuBreakdown(kc, in, m, cfg)
	}
	// Roofline: compute and memory overlap; take the max rather than sum.
	total := math.Max(b.ComputeUS, b.MemoryUS)
	total += b.TransferUS + b.OverheadUS + b.ReductionUS
	b.NoiseFactor = noiseFactor(in, m, cfg)
	total *= b.NoiseFactor
	return Result{MicroSec: total, Breakdown: b}, nil
}

// cpuBreakdown models a parallel-for region on a multicore CPU.
func cpuBreakdown(kc analysis.KernelCost, in variants.Instance, m hw.Machine, cfg Config) Breakdown {
	var b Breakdown
	threads := float64(in.Threads)
	if threads < 1 {
		threads = 1
	}
	cores := float64(m.Cores)

	// Effective speedup: linear with a per-thread efficiency tax, capped at
	// the core count (oversubscription gains nothing, costs a little).
	p := math.Min(threads, cores)
	eff := p / (1 + 0.015*(p-1))
	if threads > cores {
		eff *= 0.95
	}
	// The iteration space bounds usable parallelism: a 4-iteration loop on
	// 22 cores uses 4.
	if kc.ParallelIters > 0 && kc.ParallelIters < eff {
		eff = math.Max(kc.ParallelIters, 1)
	}
	b.EffParallelism = eff

	clockHz := m.ClockGHz * 1e9
	// Scalar pipelines: flops at FlopsPerCycle per core only with perfect
	// vectorization; benchmark kernels reach about a third of that.
	flopRate := clockHz * m.FlopsPerCycle * 0.35 // per core
	intRate := clockHz * 2                       // per core
	mathCycles := 40.0

	serialComputeSec := kc.Flops/flopRate + kc.IntOps/intRate +
		kc.MathCalls*mathCycles/clockHz + kc.Branches*3/clockHz
	b.ComputeUS = serialComputeSec / eff * 1e6

	missBytes := (kc.Loads + kc.Stores) * 8 * (1 - cfg.cacheHit(false))
	// Bandwidth saturates after a handful of cores.
	bwFrac := math.Min(1, m.SingleCoreBWFrac*math.Max(eff, 1))
	b.MemoryUS = missBytes / (m.MemBWGBs * 1e9 * bwFrac) * 1e6

	b.OverheadUS = m.RegionOverheadUS + threads*m.PerWorkerUS
	if kc.ReductionOps > 0 {
		b.ReductionUS = float64(kc.ReductionOps) * math.Log2(math.Max(threads, 2)) * 0.5
	}
	return b
}

// gpuBreakdown models an offloaded target-teams region on a GPU.
func gpuBreakdown(kc analysis.KernelCost, in variants.Instance, m hw.Machine, cfg Config) Breakdown {
	var b Breakdown
	teams := float64(in.Teams)
	if teams < 1 {
		teams = 1
	}
	threads := float64(in.Threads)
	if threads < 1 {
		threads = 1
	}
	hwLanes := float64(m.MaxParallelism())

	// Achieved parallelism: configured teams×threads, bounded by the
	// distributed iteration space (collapse(2) multiplies it) and by the
	// hardware.
	pCfg := teams * threads
	pIter := kc.ParallelIters
	if pIter <= 0 {
		pIter = pCfg
	}
	pAvail := math.Min(pCfg, pIter)
	pEff := math.Min(pAvail, hwLanes)
	b.EffParallelism = pEff

	clockHz := m.ClockGHz * 1e9
	occupancy := math.Max(pEff/hwLanes, 1e-4)

	// Compute: the whole-device rate scaled by occupancy, but never faster
	// than the per-lane rate times available lanes (few-thread kernels run
	// at scalar speed).
	peak := m.PeakGFLOPS() * 1e9 * 0.5 // sustained fraction of DP peak
	deviceRate := peak * occupancy
	laneRate := clockHz * math.Max(pEff, 1)
	rate := math.Min(deviceRate, laneRate)
	if rate <= 0 {
		rate = clockHz
	}
	mathCycles := 25.0 // GPUs have fast special-function units
	computeSec := (kc.Flops+kc.IntOps*0.5)/rate +
		kc.MathCalls*mathCycles/(clockHz*math.Max(pEff/32, 1)) +
		kc.Branches*8/(clockHz*math.Max(pEff/32, 1)) // divergence tax
	b.ComputeUS = computeSec * 1e6

	missBytes := (kc.Loads + kc.Stores) * 8 * (1 - cfg.cacheHit(true))
	// Memory bandwidth needs high occupancy to saturate (latency hiding).
	bwFrac := math.Min(1, math.Max(pEff/(hwLanes*0.25), 0.02))
	b.MemoryUS = missBytes / (m.MemBWGBs * 1e9 * bwFrac) * 1e6

	b.TransferUS = kc.TransferBytes/(m.LinkBWGBs*1e9)*1e6 +
		float64(kc.MappedArrays)*m.LinkLatencyUS
	b.OverheadUS = m.RegionOverheadUS + teams*m.PerWorkerUS
	if kc.ReductionOps > 0 {
		b.ReductionUS = float64(kc.ReductionOps) * math.Log2(math.Max(pEff, 2)) * 0.8
	}
	return b
}

// noiseFactor derives a deterministic lognormal factor from the instance and
// machine identity.
func noiseFactor(in variants.Instance, m hw.Machine, cfg Config) float64 {
	sigma := cfg.noiseSigma()
	if sigma == 0 {
		return 1
	}
	h := fnv.New64a()
	h.Write([]byte(in.Name()))
	h.Write([]byte{0})
	h.Write([]byte(m.Name))
	seed := int64(h.Sum64()) ^ cfg.Seed
	rng := rand.New(rand.NewSource(seed))
	return math.Exp(sigma * rng.NormFloat64())
}
