// Package tensor implements the dense float64 matrix kernels underpinning
// the neural-network stack: allocation, element access, BLAS-like products
// (with goroutine parallelism for large operands), and seeded random
// initialization. It is the lowest layer of the substitute for the paper's
// PyTorch-Geometric stack.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromData wraps data (not copied) as a rows×cols matrix.
func FromData(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix copying the given rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Scalar wraps a single value as a 1×1 matrix.
func Scalar(v float64) *Matrix { return FromData(1, 1, []float64{v}) }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable slice view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether two matrices have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// shapeCheck panics on mismatched shapes; internal fail-fast for programmer
// errors (mismatches are bugs, not runtime conditions).
func shapeCheck(cond bool, format string, args ...any) {
	if !cond {
		panic("tensor: " + fmt.Sprintf(format, args...))
	}
}

// AddInPlace adds o into m element-wise.
func (m *Matrix) AddInPlace(o *Matrix) {
	shapeCheck(m.SameShape(o), "AddInPlace %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AxpyInPlace adds s*o into m.
func (m *Matrix) AxpyInPlace(s float64, o *Matrix) {
	shapeCheck(m.SameShape(o), "AxpyInPlace %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	for i, v := range o.Data {
		m.Data[i] += s * v
	}
}

// Add returns m + o.
func Add(m, o *Matrix) *Matrix {
	out := m.Clone()
	out.AddInPlace(o)
	return out
}

// Sub returns m - o.
func Sub(m, o *Matrix) *Matrix {
	shapeCheck(m.SameShape(o), "Sub %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	out := New(m.Rows, m.Cols)
	for i := range out.Data {
		out.Data[i] = m.Data[i] - o.Data[i]
	}
	return out
}

// Hadamard returns the element-wise product.
func Hadamard(m, o *Matrix) *Matrix {
	shapeCheck(m.SameShape(o), "Hadamard %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	out := New(m.Rows, m.Cols)
	for i := range out.Data {
		out.Data[i] = m.Data[i] * o.Data[i]
	}
	return out
}

// Transpose returns mᵀ.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// parallelThresholdFlops is the approximate work above which MatMul fans out
// across cores.
const parallelThresholdFlops = 1 << 17

// MatMul returns a×b, parallelizing across rows of a when the product is
// large enough to amortize goroutine startup. The serial kernel is shared
// with MatMulInto, so the two (and any worker split) are bit-identical.
func MatMul(a, b *Matrix) *Matrix {
	shapeCheck(a.Cols == b.Rows, "MatMul %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	out := New(a.Rows, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThresholdFlops || a.Rows < 2 {
		matMulRange(a, b, out, 0, a.Rows)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// matMulRange computes rows [lo,hi) of out = a×b with an ikj loop order that
// streams b row-wise (cache friendly).
func matMulRange(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		oi := out.Row(i)
		for k, av := range ai {
			if av == 0 {
				continue
			}
			bk := b.Row(k)
			for j, bv := range bk {
				oi[j] += av * bv
			}
		}
	}
}

// MatVec returns a×x for a column vector x given as a slice.
func MatVec(a *Matrix, x []float64) []float64 {
	shapeCheck(a.Cols == len(x), "MatVec %dx%d × %d", a.Rows, a.Cols, len(x))
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		var acc float64
		for j, v := range a.Row(i) {
			acc += v * x[j]
		}
		out[i] = acc
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements (0 for empty).
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// MaxAbs returns the largest absolute element (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// HasNaN reports whether any element is NaN or infinite.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Glorot fills the matrix with Glorot/Xavier-uniform values using rng.
func (m *Matrix) Glorot(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// RandN fills the matrix with N(0, std) values using rng.
func (m *Matrix) RandN(rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// String renders small matrices for diagnostics.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}
