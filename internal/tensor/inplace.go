package tensor

import "math"

// This file holds the destination-passing kernels behind the inference fast
// path (internal/gnn): each op writes into a caller-owned matrix instead of
// allocating a fresh one, so a whole forward pass can run out of a pooled
// workspace with zero heap traffic. The elementwise kernels reuse the exact
// loop body of their allocating counterparts (or the matching autodiff tape
// op) and produce bit-identical values; MatMulInto instead runs the tiled
// kernel (tiled.go), which preserves per-element accumulation order and so
// agrees with the naive MatMul to the last ulp.
//
// The engine calls MatMulInto, AddBiasInto, LeakyReLUInto and MeanRowsInto
// directly; the message-path ops (GatherRowsInto, ScatterAddRowsInto,
// MulColBroadcastInto, SegmentSoftmaxInto, AddInto) are the unfused op-level
// API — gnn's fused RGAT loop nest (gnn/infer.go) inlines their loop bodies
// into one pass over each relation's edges, so editing one of them does NOT
// change the fused path. Each kernel's test pins it to the allocating op,
// and the gnn equivalence fuzz pins the fused nest to the tape, so drift on
// either side fails loudly.
//
// The kernels are single-goroutine by design: parallelism belongs to the
// caller, which fans out across samples (gnn.Model.PredictBatch), not across
// rows of one product. dst is reshaped from its existing capacity,
// allocating only when it must grow — pre-size it (see Arena) to stay
// allocation-free.

// reshape points dst at a rows×cols view of its backing array, growing the
// array only when capacity is insufficient.
func (m *Matrix) reshape(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic("tensor: reshape to negative dimensions")
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:n]
}

// MatMulInto computes dst = a×b. dst must not alias a or b; it is reshaped
// to a.Rows×b.Cols and fully overwritten. Unlike the allocating MatMul
// (which stays the naive reference kernel the autodiff tape is defined by),
// MatMulInto runs the register-blocked tiled kernel (tiled.go): each output
// element still accumulates its k products in index order, so results agree
// with MatMul to the last ulp (they can differ only where MatMul's
// skip-zero branch changes a signed zero).
func MatMulInto(a, b, dst *Matrix) {
	shapeCheck(a.Cols == b.Rows, "MatMulInto %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	dst.reshape(a.Rows, b.Cols)
	matMulTiled(a.Data, a.Rows, a.Cols, b.Data, b.Cols, dst.Data)
}

// MatMulSparseInto is MatMulInto through the skip-zero row kernel: a zero
// element of a skips its whole b-row pass, so the cost scales with a's
// non-zero count. Worth it for operands whose rows are zero-heavy —
// post-ReLU activations, typically — where skipped inner loops beat the
// tiled kernel's register blocking; the inference engine dispatches between
// the two on measured density.
func MatMulSparseInto(a, b, dst *Matrix) {
	shapeCheck(a.Cols == b.Rows, "MatMulSparseInto %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	dst.reshape(a.Rows, b.Cols)
	matMulSparseRows(a.Data, a.Rows, a.Cols, b.Data, b.Cols, dst.Data)
}

// AddInto computes dst = a + b. dst may alias a or b.
func AddInto(a, b, dst *Matrix) {
	shapeCheck(a.SameShape(b), "AddInto %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	dst.reshape(a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
}

// AddBiasInto computes dst = a + bias, broadcasting the 1×C bias over a's
// rows. dst may alias a.
func AddBiasInto(a, bias, dst *Matrix) {
	shapeCheck(bias.Rows == 1 && bias.Cols == a.Cols,
		"AddBiasInto %dx%d + %dx%d", a.Rows, a.Cols, bias.Rows, bias.Cols)
	dst.reshape(a.Rows, a.Cols)
	brow := bias.Row(0)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j, v := range arow {
			drow[j] = v + brow[j]
		}
	}
}

// GatherRowsInto computes dst[i] = a[idx[i]]. dst must not alias a.
func GatherRowsInto(a *Matrix, idx []int, dst *Matrix) {
	dst.reshape(len(idx), a.Cols)
	for i, src := range idx {
		copy(dst.Row(i), a.Row(src))
	}
}

// ScatterAddRowsInto accumulates dst[idx[i]] += a[i] over numRows
// destination rows, first clearing dst. dst must not alias a. The
// accumulation visits rows in index order, matching the tape op.
func ScatterAddRowsInto(a *Matrix, idx []int, numRows int, dst *Matrix) {
	shapeCheck(len(idx) == a.Rows, "ScatterAddRowsInto idx %d vs rows %d", len(idx), a.Rows)
	dst.reshape(numRows, a.Cols)
	dst.Zero()
	for i, d := range idx {
		drow := dst.Row(d)
		for j, v := range a.Row(i) {
			drow[j] += v
		}
	}
}

// MulColBroadcastInto computes dst[i] = a[i] * c[i][0], scaling each row of
// a by the matching entry of the column vector c. dst may alias a.
func MulColBroadcastInto(a, c, dst *Matrix) {
	shapeCheck(c.Cols == 1 && c.Rows == a.Rows,
		"MulColBroadcastInto %dx%d × %dx%d", a.Rows, a.Cols, c.Rows, c.Cols)
	dst.reshape(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		f := c.Data[i]
		arow := a.Row(i)
		drow := dst.Row(i)
		for j, v := range arow {
			drow[j] = v * f
		}
	}
}

// LeakyReLUInto computes dst = max(x, alpha*x) element-wise, using the same
// formula as the tape op (negative values map to alpha*x, so alpha == 0
// yields the same signed zeros as the tape's ReLU). dst may alias a.
func LeakyReLUInto(a *Matrix, alpha float64, dst *Matrix) {
	dst.reshape(a.Rows, a.Cols)
	for i, v := range a.Data {
		if v < 0 {
			v = alpha * v
		}
		dst.Data[i] = v
	}
}

// SegmentSoftmaxInto normalizes the E×1 logits within each segment, exactly
// as the tape op does (max-subtraction, accumulation in row order, segments
// whose sum underflows to zero left unnormalized). scratch provides the
// per-segment max/sum storage and must hold at least 2*numSegments values;
// pass nil to allocate. dst may alias logits.
func SegmentSoftmaxInto(logits *Matrix, segments []int, numSegments int, scratch []float64, dst *Matrix) {
	shapeCheck(logits.Cols == 1 && len(segments) == logits.Rows,
		"SegmentSoftmaxInto %dx%d with %d segments", logits.Rows, logits.Cols, len(segments))
	if cap(scratch) < 2*numSegments {
		scratch = make([]float64, 2*numSegments)
	}
	scratch = scratch[:2*numSegments]
	maxes := scratch[:numSegments]
	sums := scratch[numSegments:]
	for i := range maxes {
		maxes[i] = math.Inf(-1)
		sums[i] = 0
	}
	for e, s := range segments {
		if v := logits.Data[e]; v > maxes[s] {
			maxes[s] = v
		}
	}
	dst.reshape(logits.Rows, 1)
	for e, s := range segments {
		v := math.Exp(logits.Data[e] - maxes[s])
		dst.Data[e] = v
		sums[s] += v
	}
	for e, s := range segments {
		if sums[s] > 0 {
			dst.Data[e] /= sums[s]
		}
	}
}

// MeanRowsInto computes the 1×C mean over a's rows, accumulating in row
// order and scaling by 1/rows exactly as the tape op does. dst must not
// alias a.
func MeanRowsInto(a, dst *Matrix) {
	shapeCheck(a.Rows > 0, "MeanRowsInto of empty matrix")
	dst.reshape(1, a.Cols)
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		for j, v := range a.Row(i) {
			dst.Data[j] += v
		}
	}
	dst.ScaleInPlace(1 / float64(a.Rows))
}
