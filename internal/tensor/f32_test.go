package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randMat32(rng *rand.Rand, rows, cols int) *Matrix32 {
	m := NewMatrix32(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// naiveMatMul32 is the float32 reference product: plain ijk with the k loop
// innermost and in order — the same per-element accumulation order as the
// tiled kernel.
func naiveMatMul32(a, b *Matrix32) *Matrix32 {
	out := NewMatrix32(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow, orow := a.Row(i), out.Row(i)
		for j := 0; j < b.Cols; j++ {
			var s float32
			for t := 0; t < a.Cols; t++ {
				s += arow[t] * b.Data[t*b.Cols+j]
			}
			orow[j] = s
		}
	}
	return out
}

func assertExact32(t *testing.T, name string, got, want *Matrix32) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestMatMul32MatchesNaive fuzzes the float32 tiled and sparse kernels
// against the in-order naive product across tile-edge geometries. Identical
// accumulation order makes the comparison bit-exact (the float32 operands
// contain no negative zeros for the skip-zero branch to flip).
func TestMatMul32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dst := &Matrix32{}
	for trial := 0; trial < 200; trial++ {
		m, k, n := rng.Intn(20), rng.Intn(20), rng.Intn(140)
		a, b := randMat32(rng, m, k), randMat32(rng, k, n)
		for i := range a.Data {
			if rng.Float64() < 0.3 {
				a.Data[i] = 0
			}
		}
		want := naiveMatMul32(a, b)
		MatMulInto32(a, b, dst)
		assertExact32(t, "MatMulInto32", dst, want)
		MatMulSparseInto32(a, b, dst)
		assertExact32(t, "MatMulSparseInto32", dst, want)
	}
}

// TestF32KernelsMatchFloat64 pins each float32 elementwise kernel to its
// float64 counterpart run on the converted operands: the same formula at
// lower precision, so results agree to float32 rounding of the float64
// result.
func TestF32KernelsMatchFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a64 := randMat(rng, 7, 5)
	a32 := Convert32(a64)

	bias64 := randMat(rng, 1, 5)
	bias32 := Convert32(bias64)
	got, want := &Matrix32{}, New(0, 0)
	AddBiasInto32(a32, bias32, got)
	AddBiasInto(a64, bias64, want)
	for i := range want.Data {
		if math.Abs(float64(got.Data[i])-want.Data[i]) > 1e-6*math.Max(1, math.Abs(want.Data[i])) {
			t.Fatalf("AddBiasInto32 element %d = %v, want ≈%v", i, got.Data[i], want.Data[i])
		}
	}

	LeakyReLUInto32(a32, 0.2, got)
	LeakyReLUInto(a64, 0.2, want)
	for i := range want.Data {
		if math.Abs(float64(got.Data[i])-want.Data[i]) > 1e-6 {
			t.Fatalf("LeakyReLUInto32 element %d = %v, want ≈%v", i, got.Data[i], want.Data[i])
		}
	}
	// Exact zeros and signs must survive the float32 ReLU.
	z := &Matrix32{Rows: 1, Cols: 3, Data: []float32{0, -1, 2}}
	LeakyReLUInto32(z, 0, z)
	if z.Data[0] != 0 || z.Data[1] != 0 || z.Data[2] != 2 {
		t.Fatalf("LeakyReLUInto32 alpha=0 = %v", z.Data)
	}

	MeanRowsInto32(a32, got)
	MeanRowsInto(a64, want)
	for i := range want.Data {
		if math.Abs(float64(got.Data[i])-want.Data[i]) > 1e-6 {
			t.Fatalf("MeanRowsInto32 element %d = %v, want ≈%v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestConvert32 pins the conversion helpers: shape preserved, elements
// rounded to nearest float32.
func TestConvert32(t *testing.T) {
	src := FromData(2, 3, []float64{1, -2.5, 1e-300, math.Pi, -0.0, 3e38})
	m := Convert32(src)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	for i, v := range src.Data {
		if m.Data[i] != float32(v) {
			t.Errorf("element %d = %v, want %v", i, m.Data[i], float32(v))
		}
	}
	s := Convert32Slice(src.Data)
	for i, v := range src.Data {
		if s[i] != float32(v) {
			t.Errorf("slice element %d = %v, want %v", i, s[i], float32(v))
		}
	}
	if got := m.At(1, 0); got != float32(math.Pi) {
		t.Errorf("At(1,0) = %v", got)
	}
}

// TestArena32Recycles mirrors the float64 arena tests: steady-state
// GetMatrix/GetSlice calls on stable shapes must not allocate, and grown
// buffers must flow back through the free lists.
func TestArena32Recycles(t *testing.T) {
	var ar Arena32
	var m Matrix32
	ar.GetMatrix(&m, 8, 8)
	prev := &m.Data[0]
	if allocs := testing.AllocsPerRun(50, func() { ar.GetMatrix(&m, 8, 8) }); allocs != 0 {
		t.Errorf("steady-state GetMatrix allocates %v/run", allocs)
	}
	if &m.Data[0] != prev {
		t.Error("steady-state GetMatrix moved the backing array")
	}

	buf := ar.Get(100)
	ar.Put(buf)
	buf2 := ar.Get(100)
	if &buf[0] != &buf2[0] {
		t.Error("Put/Get did not recycle the buffer")
	}

	s := ar.GetSlice(nil, 16)
	if len(s) != 16 {
		t.Fatalf("GetSlice len %d", len(s))
	}
	if allocs := testing.AllocsPerRun(50, func() { s = ar.GetSlice(s, 16) }); allocs != 0 {
		t.Errorf("steady-state GetSlice allocates %v/run", allocs)
	}
}
