package tensor

import "math/bits"

// freelist recycles buffers in power-of-two size classes; it is the shared
// engine behind Arena (float64) and Arena32 (float32). A forward workspace
// (internal/gnn) sizes its scratch matrices through one arena, so when
// request graph shapes vary the outgrown buffers are reused for the next
// shape instead of becoming garbage — the whole pass keeps riding one flat
// set of allocations.
type freelist[F Float] struct {
	classes map[int][][]F
}

// sizeClass rounds n up to the next power of two (minimum 8, so tiny
// vectors share a class instead of fragmenting the free lists).
func sizeClass(n int) int {
	if n <= 8 {
		return 8
	}
	return 1 << bits.Len(uint(n-1))
}

// get returns a length-n buffer, reusing a recycled one from n's size class
// when available. Contents are unspecified; callers overwrite.
func (a *freelist[F]) get(n int) []F {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if bufs := a.classes[c]; len(bufs) > 0 {
		buf := bufs[len(bufs)-1]
		a.classes[c] = bufs[:len(bufs)-1]
		return buf[:n]
	}
	return make([]F, n, c)
}

// put recycles buf into its size class for a later get. Buffers whose
// capacity is not a power-of-two class (built outside the arena) are filed
// under the largest class they can fully serve.
func (a *freelist[F]) put(buf []F) {
	c := cap(buf)
	if c < 8 {
		return
	}
	class := 1 << (bits.Len(uint(c)) - 1) // largest power of two <= cap
	if class < 8 {
		return
	}
	if a.classes == nil {
		a.classes = map[int][][]F{}
	}
	a.classes[class] = append(a.classes[class], buf[:0])
}

// getSlice returns a length-n slice, recycling prev through the free lists.
// A steady-state call (cap(prev) >= n) reslices without touching them.
func (a *freelist[F]) getSlice(prev []F, n int) []F {
	if cap(prev) >= n {
		return prev[:n]
	}
	a.put(prev)
	return a.get(n)
}

// Arena recycles float64 buffers in power-of-two size classes.
//
// An Arena is not safe for concurrent use; each workspace owns its own.
type Arena struct {
	freelist[float64]
}

// Get returns a length-n buffer, reusing a recycled one from n's size class
// when available. Contents are unspecified; callers overwrite.
func (a *Arena) Get(n int) []float64 { return a.get(n) }

// Put recycles buf into its size class for a later Get.
func (a *Arena) Put(buf []float64) { a.put(buf) }

// GetMatrix shapes m as rows×cols backed by an arena buffer, recycling m's
// previous backing array first. Use it to (re)size workspace matrices: in
// steady state (same shape as the last call) it touches nothing.
func (a *Arena) GetMatrix(m *Matrix, rows, cols int) {
	n := rows * cols
	if cap(m.Data) >= n {
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
		return
	}
	a.put(m.Data)
	m.Rows, m.Cols = rows, cols
	m.Data = a.get(n)
}

// GetSlice returns a length-n slice, recycling prev through the arena. Like
// GetMatrix, a steady-state call (cap(prev) >= n) reslices without touching
// the free lists.
func (a *Arena) GetSlice(prev []float64, n int) []float64 { return a.getSlice(prev, n) }

// Arena32 is the float32 arena behind the inference-weights fast path's
// workspaces. Like Arena, it is single-goroutine by design.
type Arena32 struct {
	freelist[float32]
}

// Get returns a length-n buffer, reusing a recycled one from n's size class
// when available. Contents are unspecified; callers overwrite.
func (a *Arena32) Get(n int) []float32 { return a.get(n) }

// Put recycles buf into its size class for a later Get.
func (a *Arena32) Put(buf []float32) { a.put(buf) }

// GetMatrix shapes m as rows×cols backed by an arena buffer, recycling m's
// previous backing array first.
func (a *Arena32) GetMatrix(m *Matrix32, rows, cols int) {
	n := rows * cols
	if cap(m.Data) >= n {
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
		return
	}
	a.put(m.Data)
	m.Rows, m.Cols = rows, cols
	m.Data = a.get(n)
}

// GetSlice returns a length-n slice, recycling prev through the arena.
func (a *Arena32) GetSlice(prev []float32, n int) []float32 { return a.getSlice(prev, n) }
