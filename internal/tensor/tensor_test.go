package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("shape = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At = %v", m.At(1, 2))
	}
	row := m.Row(1)
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Error("Row is not a view")
	}
}

func TestFromRowsAndData(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows content wrong: %v", m)
	}
	d := FromData(2, 2, []float64{1, 2, 3, 4})
	if d.At(1, 1) != 4 {
		t.Error("FromData content wrong")
	}
	if s := Scalar(3.5); s.Rows != 1 || s.Cols != 1 || s.At(0, 0) != 3.5 {
		t.Error("Scalar wrong")
	}
	if e := FromRows(nil); e.Rows != 0 {
		t.Error("empty FromRows wrong")
	}
}

func TestPanicsOnBadShapes(t *testing.T) {
	cases := []func(){
		func() { New(-1, 2) },
		func() { FromData(2, 2, []float64{1}) },
		func() { FromRows([][]float64{{1, 2}, {3}}) },
		func() { MatMul(New(2, 3), New(2, 3)) },
		func() { New(2, 2).AddInPlace(New(3, 3)) },
		func() { Sub(New(1, 2), New(2, 1)) },
		func() { Hadamard(New(1, 2), New(2, 1)) },
		func() { MatVec(New(2, 3), []float64{1}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("MatMul = %v, want %v", c, want)
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Big enough to trigger the parallel path.
	a := New(128, 96)
	b := New(96, 64)
	a.RandN(rng, 1)
	b.RandN(rng, 1)
	got := MatMul(a, b)
	want := New(128, 64)
	matMulRange(a, b, want, 0, a.Rows)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("parallel mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := New(n, n)
		a.RandN(rng, 1)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		prod := MatMul(a, id)
		for i := range a.Data {
			if math.Abs(prod.Data[i]-a.Data[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(7, 3)
	m.RandN(rng, 1)
	tt := Transpose(Transpose(m))
	for i := range m.Data {
		if tt.Data[i] != m.Data[i] {
			t.Fatal("transpose not involutive")
		}
	}
	tr := Transpose(m)
	if tr.Rows != 3 || tr.Cols != 7 {
		t.Errorf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 5) != m.At(5, 2) {
		t.Error("transpose content wrong")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	if s := Add(a, b); s.At(1, 1) != 44 {
		t.Errorf("Add = %v", s)
	}
	if d := Sub(b, a); d.At(0, 0) != 9 {
		t.Errorf("Sub = %v", d)
	}
	if h := Hadamard(a, b); h.At(1, 0) != 90 {
		t.Errorf("Hadamard = %v", h)
	}
	c := a.Clone()
	c.ScaleInPlace(2)
	if c.At(0, 1) != 4 || a.At(0, 1) != 2 {
		t.Error("ScaleInPlace/Clone broken")
	}
	c.AxpyInPlace(0.5, b)
	if c.At(0, 0) != 2+5 {
		t.Errorf("Axpy = %v", c)
	}
	c.Zero()
	if c.Sum() != 0 {
		t.Error("Zero broken")
	}
	c.Fill(3)
	if c.Sum() != 12 {
		t.Error("Fill broken")
	}
}

func TestMatVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := MatVec(a, []float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MatVec = %v", y)
	}
}

func TestReductions(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {3, -4}})
	if m.Sum() != -2 {
		t.Errorf("Sum = %v", m.Sum())
	}
	if m.Mean() != -0.5 {
		t.Errorf("Mean = %v", m.Mean())
	}
	if m.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v", m.MaxAbs())
	}
	if math.Abs(m.Norm2()-math.Sqrt(30)) > 1e-12 {
		t.Errorf("Norm2 = %v", m.Norm2())
	}
	empty := New(0, 0)
	if empty.Mean() != 0 || empty.MaxAbs() != 0 {
		t.Error("empty reductions nonzero")
	}
}

func TestHasNaN(t *testing.T) {
	m := New(2, 2)
	if m.HasNaN() {
		t.Error("zero matrix has NaN?")
	}
	m.Set(1, 1, math.NaN())
	if !m.HasNaN() {
		t.Error("NaN not detected")
	}
	m.Set(1, 1, math.Inf(1))
	if !m.HasNaN() {
		t.Error("Inf not detected")
	}
}

func TestGlorotAndRandNDeterministic(t *testing.T) {
	a := New(10, 10)
	b := New(10, 10)
	a.Glorot(rand.New(rand.NewSource(7)))
	b.Glorot(rand.New(rand.NewSource(7)))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Glorot not deterministic per seed")
		}
	}
	limit := math.Sqrt(6.0 / 20)
	if a.MaxAbs() > limit {
		t.Errorf("Glorot out of range: %v > %v", a.MaxAbs(), limit)
	}
	c := New(4, 4)
	c.RandN(rand.New(rand.NewSource(3)), 0.1)
	if c.Sum() == 0 {
		t.Error("RandN produced all zeros")
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Error("same shapes reported different")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Error("different shapes reported same")
	}
}

func TestStringRendering(t *testing.T) {
	small := FromRows([][]float64{{1, 2}})
	if s := small.String(); s == "" {
		t.Error("empty String")
	}
	big := New(100, 100)
	if s := big.String(); s != "Matrix(100x100)" {
		t.Errorf("big String = %q", s)
	}
}
