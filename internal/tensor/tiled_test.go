package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// ulpDiff64 returns the distance in representable float64 values between a
// and b. Equal values (including +0 vs −0) are distance 0; NaNs and
// opposite-sign pairs are reported as a huge distance so they always fail a
// ≤1-ulp gate.
func ulpDiff64(a, b float64) uint64 {
	if a == b {
		return 0
	}
	if math.IsNaN(a) || math.IsNaN(b) || (a < 0) != (b < 0) {
		return math.MaxUint64
	}
	ai, bi := math.Float64bits(math.Abs(a)), math.Float64bits(math.Abs(b))
	if ai > bi {
		return ai - bi
	}
	return bi - ai
}

// assertWithinOneUlp checks got against want element-wise under the tiled
// kernel's ordering guarantee: identical accumulation order means any
// difference from the naive kernel can come only from its skip-zero branch
// (signed-zero placement), never exceed 1 ulp.
func assertWithinOneUlp(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if d := ulpDiff64(got.Data[i], want.Data[i]); d > 1 {
			t.Fatalf("%s: element %d = %v, want %v (%d ulps apart)",
				name, i, got.Data[i], want.Data[i], d)
		}
	}
}

// randSparseMat fills a matrix with normal values, zeroing a fraction of
// them exactly — the shape of post-ReLU activations, and the input class
// where the naive kernel's skip-zero branch diverges from the tiled kernel
// by a signed zero.
func randSparseMat(rng *rand.Rand, rows, cols int, zeroFrac float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if rng.Float64() >= zeroFrac {
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

// TestTiledMatchesNaive sweeps the tile-geometry edge cases: dimensions off
// every tile boundary (odd rows for the 2-row micro-kernel, columns around
// the 4-wide register block and the 64-wide panel), single-row and
// single-column operands, and empty matrices on each side. The tiled result
// must match the naive reference kernel exactly or within 1 ulp.
func TestTiledMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dims := func(edges ...int) []int { return edges }
	ms := dims(0, 1, 2, 3, 5, 8, 33)
	ns := dims(0, 1, 3, 4, 5, 63, 64, 65, 130)
	ks := dims(0, 1, 2, 7, 32)
	dst := New(0, 0)
	for _, m := range ms {
		for _, n := range ns {
			for _, k := range ks {
				a := randSparseMat(rng, m, k, 0.3)
				b := randMat(rng, k, n)
				MatMulInto(a, b, dst)
				want := MatMul(a, b)
				assertWithinOneUlp(t, "MatMulInto", dst, want)
			}
		}
	}
}

// TestTiledMatchesNaiveFuzz hammers random geometries and zero densities
// through both matmul entry points. The sparse kernel shares the naive
// kernel's exact loop structure, so it must agree bit for bit; the tiled
// kernel is held to the exact-or-1-ulp gate.
func TestTiledMatchesNaiveFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dst := New(0, 0)
	for trial := 0; trial < 300; trial++ {
		m, k, n := rng.Intn(40), rng.Intn(40), rng.Intn(140)
		a := randSparseMat(rng, m, k, []float64{0, 0.2, 0.5, 0.9}[rng.Intn(4)])
		b := randMat(rng, k, n)
		want := MatMul(a, b)

		MatMulInto(a, b, dst)
		assertWithinOneUlp(t, "MatMulInto", dst, want)

		MatMulSparseInto(a, b, dst)
		assertExact(t, "MatMulSparseInto", dst, want)
	}
}

// TestTiledOverwritesStaleDst pins that MatMulInto fully overwrites a
// recycled destination — including the k == 0 product, which must clear
// rather than keep stale values.
func TestTiledOverwritesStaleDst(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dst := New(0, 0)
	MatMulInto(randMat(rng, 6, 5), randMat(rng, 5, 70), dst) // dirty the buffer
	a, b := New(6, 0), New(0, 70)
	MatMulInto(a, b, dst)
	for i, v := range dst.Data {
		if v != 0 {
			t.Fatalf("k=0 product element %d = %v, want 0", i, v)
		}
	}
	// Shrinking reuse: a smaller product into the same buffer must reshape
	// and not read stale tail values.
	a2, b2 := randMat(rng, 3, 4), randMat(rng, 4, 2)
	MatMulInto(a2, b2, dst)
	assertWithinOneUlp(t, "shrunk dst", dst, MatMul(a2, b2))
}

// TestDot pins the in-order dot product against a plain loop, including
// empty and single-element vectors.
func TestDot(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{0, 1, 2, 7, 33} {
		a, b := make([]float64, n), make([]float64, n)
		var want float64
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		for i := range a {
			want += a[i] * b[i]
		}
		if got := Dot(a, b); got != want {
			t.Errorf("Dot(len %d) = %v, want %v", n, got, want)
		}
	}
	if got := Dot([]float64{1, 2}, []float64{3, 4, 5}); got != 11 {
		t.Errorf("Dot with longer b = %v, want 11", got)
	}
}
