package tensor

// Matrix32 is the float32 mirror of Matrix: the element type of the
// inference-weights fast path. Only the kernels the inference engine needs
// exist in float32 — training, the autodiff tape, and checkpoint
// serialization stay float64, and a Matrix32 is always derived from a
// float64 source at load time (see gnn's precomputed inference weights).
// Halving the element size halves the memory traffic of every matmul and
// doubles the rows of a weight panel that fit in one cache line.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len Rows*Cols, row-major
}

// NewMatrix32 returns a zeroed Rows×Cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimensions")
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Convert32 returns a freshly allocated float32 copy of a float64 matrix,
// rounding each element to nearest.
func Convert32(src *Matrix) *Matrix32 {
	m := NewMatrix32(src.Rows, src.Cols)
	for i, v := range src.Data {
		m.Data[i] = float32(v)
	}
	return m
}

// Convert32Slice rounds a float64 slice to a fresh float32 slice.
func Convert32Slice(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

// Row returns a mutable slice view of row i.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns element (i, j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// SameShape reports whether two matrices have identical dimensions.
func (m *Matrix32) SameShape(o *Matrix32) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// reshape points m at a rows×cols view of its backing array, growing the
// array only when capacity is insufficient (the float32 twin of
// Matrix.reshape).
func (m *Matrix32) reshape(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic("tensor: reshape to negative dimensions")
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float32, n)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:n]
}

// MatMulInto32 computes dst = a×b through the register-blocked tiled kernel
// (tiled.go). dst must not alias a or b; it is reshaped to a.Rows×b.Cols
// and fully overwritten.
func MatMulInto32(a, b, dst *Matrix32) {
	shapeCheck(a.Cols == b.Rows, "MatMulInto32 %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	dst.reshape(a.Rows, b.Cols)
	matMulTiled(a.Data, a.Rows, a.Cols, b.Data, b.Cols, dst.Data)
}

// MatMulSparseInto32 is MatMulInto32 through the skip-zero row kernel, for
// operands whose rows are zero-heavy (post-ReLU activations).
func MatMulSparseInto32(a, b, dst *Matrix32) {
	shapeCheck(a.Cols == b.Rows, "MatMulSparseInto32 %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	dst.reshape(a.Rows, b.Cols)
	matMulSparseRows(a.Data, a.Rows, a.Cols, b.Data, b.Cols, dst.Data)
}

// AddBiasInto32 computes dst = a + bias, broadcasting the 1×C bias over a's
// rows. dst may alias a.
func AddBiasInto32(a, bias, dst *Matrix32) {
	shapeCheck(bias.Rows == 1 && bias.Cols == a.Cols,
		"AddBiasInto32 %dx%d + %dx%d", a.Rows, a.Cols, bias.Rows, bias.Cols)
	dst.reshape(a.Rows, a.Cols)
	brow := bias.Row(0)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j, v := range arow {
			drow[j] = v + brow[j]
		}
	}
}

// LeakyReLUInto32 computes dst = max(x, alpha*x) element-wise. dst may
// alias a.
func LeakyReLUInto32(a *Matrix32, alpha float32, dst *Matrix32) {
	dst.reshape(a.Rows, a.Cols)
	for i, v := range a.Data {
		if v < 0 {
			v = alpha * v
		}
		dst.Data[i] = v
	}
}

// MeanRowsInto32 computes the 1×C mean over a's rows, accumulating in row
// order. dst must not alias a.
func MeanRowsInto32(a, dst *Matrix32) {
	shapeCheck(a.Rows > 0, "MeanRowsInto32 of empty matrix")
	dst.reshape(1, a.Cols)
	clear(dst.Data)
	for i := 0; i < a.Rows; i++ {
		for j, v := range a.Row(i) {
			dst.Data[j] += v
		}
	}
	inv := 1 / float32(a.Rows)
	for j := range dst.Data {
		dst.Data[j] *= inv
	}
}
