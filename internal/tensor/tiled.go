package tensor

// This file holds the cache-blocked matrix-multiply kernels behind
// MatMulInto (and the float32 mirror in f32.go). The kernels are generic
// over the element type so the float64 inference path and the float32
// inference-weights path compile from one implementation.
//
// Blocking strategy, sized for the inference workload (k = Hidden ≤ 128,
// m up to a few hundred graph nodes):
//
//   - Column panels: b is walked in panels of ncPanel columns, so the
//     k×ncPanel working set of b (≤ 64 KiB at k = 128, float64) stays
//     L1/L2-resident while a's rows stream through it once per panel.
//   - Register blocking: a 2×4 micro-kernel keeps 8 partial sums in
//     registers across the whole k loop; each loaded a-value feeds four
//     multiply-adds and each b-value two, so the inner loop retires
//     8 FMAs per 6 loads instead of 1 per 2. 2×4 is the empirical
//     sweet spot for gc on amd64 — wider blocks (4×4, 2×8) need more
//     than the 16 vector registers and spill accumulators to the stack,
//     measuring slower than the naive kernel's working set.
//   - No k blocking: the k loop runs innermost and in order, so every
//     dst element accumulates its products in the same sequence as the
//     naive kernel. Sums can therefore differ from matMulRange only
//     through the latter's skip-zero branch (signed-zero placement),
//     never by reassociation — TestTiledMatchesNaive pins this to
//     ≤ 1 ulp. At the depths the model uses (k ≤ 128) a micro-kernel's
//     a-strip is ≤ 2 KiB and needs no further blocking to stay
//     cache-resident.
//
// The remainder row (m odd) and columns (panel width mod 4) fall back to
// narrower unrolled kernels with identical k ordering.

// Float constrains the element types the tiled kernels are compiled for.
type Float interface{ ~float32 | ~float64 }

const (
	mrTile  = 2  // micro-kernel rows: accumulator block height
	nrTile  = 4  // micro-kernel cols: accumulator block width
	ncPanel = 64 // b-panel width; k×ncPanel elements kept hot per panel
)

// matMulTiled computes dst = a×b over raw row-major slices: a is m×k, b is
// k×n, dst is m×n and fully overwritten. dst must not alias a or b.
func matMulTiled[F Float](a []F, m, k int, b []F, n int, dst []F) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(dst[:m*n])
		return
	}
	for jc := 0; jc < n; jc += ncPanel {
		nc := n - jc
		if nc > ncPanel {
			nc = ncPanel
		}
		i := 0
		for ; i+mrTile <= m; i += mrTile {
			tiledRows2(a[i*k:(i+2)*k], k, b, n, jc, nc, dst[i*n:(i+2)*n])
		}
		for ; i < m; i++ {
			tiledRows1(a[i*k:(i+1)*k], b, n, jc, nc, dst[i*n:(i+1)*n])
		}
	}
}

// tiledRows2 computes two output rows across one column panel: the dst rows
// hold a(2×k) × b[:, jc:jc+nc]. a is the 2×k row block, dst the 2×n row
// block.
func tiledRows2[F Float](a []F, k int, b []F, n, jc, nc int, dst []F) {
	a0, a1 := a[:k], a[k:2*k]
	d0, d1 := dst[:n], dst[n:2*n]
	j := jc
	for ; j+nrTile <= jc+nc; j += nrTile {
		var c00, c01, c02, c03 F
		var c10, c11, c12, c13 F
		for t := 0; t < k; t++ {
			bt := b[t*n+j : t*n+j+4 : t*n+j+4]
			b0, b1, b2, b3 := bt[0], bt[1], bt[2], bt[3]
			av := a0[t]
			c00 += av * b0
			c01 += av * b1
			c02 += av * b2
			c03 += av * b3
			av = a1[t]
			c10 += av * b0
			c11 += av * b1
			c12 += av * b2
			c13 += av * b3
		}
		d0[j], d0[j+1], d0[j+2], d0[j+3] = c00, c01, c02, c03
		d1[j], d1[j+1], d1[j+2], d1[j+3] = c10, c11, c12, c13
	}
	for ; j < jc+nc; j++ {
		var c0, c1 F
		for t := 0; t < k; t++ {
			bv := b[t*n+j]
			c0 += a0[t] * bv
			c1 += a1[t] * bv
		}
		d0[j], d1[j] = c0, c1
	}
}

// tiledRows1 is the single-row remainder kernel: dst row = a(1×k) ×
// b[:, jc:jc+nc], with four-column unrolling where the panel allows.
func tiledRows1[F Float](a []F, b []F, n, jc, nc int, dst []F) {
	k := len(a)
	j := jc
	for ; j+nrTile <= jc+nc; j += nrTile {
		var c0, c1, c2, c3 F
		for t := 0; t < k; t++ {
			bt := b[t*n+j : t*n+j+4 : t*n+j+4]
			av := a[t]
			c0 += av * bt[0]
			c1 += av * bt[1]
			c2 += av * bt[2]
			c3 += av * bt[3]
		}
		dst[j], dst[j+1], dst[j+2], dst[j+3] = c0, c1, c2, c3
	}
	for ; j < jc+nc; j++ {
		var c F
		for t := 0; t < k; t++ {
			c += a[t] * b[t*n+j]
		}
		dst[j] = c
	}
}

// matMulSparseRows computes dst = a×b like matMulTiled but with the naive
// kernel's skip-zero row walk: a row's zero entries skip their whole b-row
// pass. The inference engine routes h-consuming products through it when a
// ReLU layer output is zero-heavy enough that skipped work beats the tiled
// kernel's register blocking (see gnn's density dispatch).
func matMulSparseRows[F Float](a []F, m, k int, b []F, n int, dst []F) {
	clear(dst[:m*n])
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		di := dst[i*n : (i+1)*n]
		for t, av := range ai {
			if av == 0 {
				continue
			}
			bt := b[t*n : t*n+n]
			for j, bv := range bt {
				di[j] += av * bv
			}
		}
	}
}

// Dot returns the inner product of two equal-length vectors, accumulating
// in index order (the order the attention-score dots are specified in).
func Dot[F Float](a, b []F) F {
	if len(a) == 0 {
		return 0
	}
	b = b[:len(a)]
	var s F
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
