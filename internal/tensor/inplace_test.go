package tensor

import (
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func assertExact(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestIntoKernelsMatchAllocating pins every destination-passing kernel to
// its allocating counterpart bit for bit — the property the inference
// engine's equivalence guarantee is built on.
func TestIntoKernelsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 9, 5)
	b := randMat(rng, 5, 7)
	dst := New(0, 0)

	MatMulInto(a, b, dst)
	assertExact(t, "MatMulInto", dst, MatMul(a, b))

	c := randMat(rng, 9, 5)
	AddInto(a, c, dst)
	assertExact(t, "AddInto", dst, Add(a, c))

	bias := randMat(rng, 1, 5)
	want := a.Clone()
	for i := 0; i < want.Rows; i++ {
		row := want.Row(i)
		for j, v := range bias.Row(0) {
			row[j] += v
		}
	}
	AddBiasInto(a, bias, dst)
	assertExact(t, "AddBiasInto", dst, want)

	idx := []int{3, 0, 8, 3, 1}
	GatherRowsInto(a, idx, dst)
	for i, src := range idx {
		for j, v := range dst.Row(i) {
			if v != a.At(src, j) {
				t.Fatalf("GatherRowsInto row %d col %d = %v, want %v", i, j, v, a.At(src, j))
			}
		}
	}

	rows := randMat(rng, 5, 4)
	scattered := New(9, 4)
	for i, d := range idx {
		row := scattered.Row(d)
		for j, v := range rows.Row(i) {
			row[j] += v
		}
	}
	ScatterAddRowsInto(rows, idx, 9, dst)
	assertExact(t, "ScatterAddRowsInto", dst, scattered)

	col := randMat(rng, 9, 1)
	want = a.Clone()
	for i := 0; i < want.Rows; i++ {
		f := col.Data[i]
		row := want.Row(i)
		for j := range row {
			row[j] *= f
		}
	}
	MulColBroadcastInto(a, col, dst)
	assertExact(t, "MulColBroadcastInto", dst, want)

	want = a.Clone()
	for i, v := range want.Data {
		if v < 0 {
			want.Data[i] = 0.1 * v
		}
	}
	LeakyReLUInto(a, 0.1, dst)
	assertExact(t, "LeakyReLUInto", dst, want)

	want = New(1, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j, v := range a.Row(i) {
			want.Data[j] += v
		}
	}
	want.ScaleInPlace(1 / float64(a.Rows))
	MeanRowsInto(a, dst)
	assertExact(t, "MeanRowsInto", dst, want)
}

// TestIntoKernelsAlias exercises the documented aliasing contracts
// (dst == a for the element-wise kernels).
func TestIntoKernelsAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 4, 3)
	b := randMat(rng, 4, 3)
	want := Add(a, b)
	aCopy := a.Clone()
	AddInto(aCopy, b, aCopy)
	assertExact(t, "AddInto aliased", aCopy, want)

	bias := randMat(rng, 1, 3)
	ref := New(0, 0)
	AddBiasInto(a, bias, ref)
	aCopy = a.Clone()
	AddBiasInto(aCopy, bias, aCopy)
	assertExact(t, "AddBiasInto aliased", aCopy, ref)

	LeakyReLUInto(a, 0.2, ref)
	aCopy = a.Clone()
	LeakyReLUInto(aCopy, 0.2, aCopy)
	assertExact(t, "LeakyReLUInto aliased", aCopy, ref)
}

// TestSegmentSoftmaxInto checks normalization within segments, empty
// segments, the nil-scratch path, and in-place operation.
func TestSegmentSoftmaxInto(t *testing.T) {
	logits := FromData(5, 1, []float64{1, 2, 3, -1, 100})
	segments := []int{0, 0, 2, 2, 3} // segment 1 empty
	dst := New(0, 0)
	SegmentSoftmaxInto(logits, segments, 4, nil, dst)
	sums := map[int]float64{}
	for e, s := range segments {
		sums[s] += dst.Data[e]
	}
	for s, sum := range sums {
		if sum < 0.999999 || sum > 1.000001 {
			t.Errorf("segment %d sums to %v", s, sum)
		}
	}
	if dst.Data[4] != 1 {
		t.Errorf("singleton segment attention = %v, want 1", dst.Data[4])
	}
	// In-place with caller scratch must agree.
	scratch := make([]float64, 8)
	inPlace := logits.Clone()
	SegmentSoftmaxInto(inPlace, segments, 4, scratch, inPlace)
	assertExact(t, "SegmentSoftmaxInto aliased", inPlace, dst)
}

func TestMatMulIntoRejectsBadShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched MatMulInto did not panic")
		}
	}()
	MatMulInto(New(2, 3), New(2, 3), New(0, 0))
}

// TestIntoKernelsReuseCapacity verifies the steady-state contract: a dst
// with sufficient capacity is resliced, never reallocated.
func TestIntoKernelsReuseCapacity(t *testing.T) {
	a := New(4, 4)
	a.Fill(1)
	dst := New(8, 8) // 64 capacity, plenty for 4×4
	data := &dst.Data[0]
	MatMulInto(a, a, dst)
	if &dst.Data[0] != data {
		t.Error("MatMulInto reallocated despite sufficient capacity")
	}
	if dst.Rows != 4 || dst.Cols != 4 {
		t.Errorf("dst reshaped to %dx%d", dst.Rows, dst.Cols)
	}
	if dst.At(0, 0) != 4 {
		t.Errorf("product wrong: %v", dst.At(0, 0))
	}
}

func TestArenaRecycles(t *testing.T) {
	var a Arena
	b1 := a.Get(100) // class 128
	if len(b1) != 100 {
		t.Fatalf("len = %d", len(b1))
	}
	b1[0] = 42
	a.Put(b1)
	b2 := a.Get(120) // same class → same backing array
	if cap(b2) != cap(b1) || &b2[0] != &b1[0] {
		t.Error("arena did not recycle the buffer within its size class")
	}
	if got := a.Get(120); &got[0] == &b2[0] {
		t.Error("arena handed out the same buffer twice")
	}
	if a.Get(0) != nil {
		t.Error("Get(0) should be nil")
	}
	a.Put(nil) // must not panic
}

func TestArenaGetMatrixSteadyState(t *testing.T) {
	var a Arena
	var m Matrix
	a.GetMatrix(&m, 6, 7)
	if m.Rows != 6 || m.Cols != 7 || len(m.Data) != 42 {
		t.Fatalf("shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	ptr := &m.Data[0]
	a.GetMatrix(&m, 6, 7) // same shape: no movement
	if &m.Data[0] != ptr {
		t.Error("steady-state GetMatrix moved the buffer")
	}
	a.GetMatrix(&m, 3, 2) // shrink: reslice in place
	if &m.Data[0] != ptr || m.Rows != 3 {
		t.Error("shrink should reslice in place")
	}
	a.GetMatrix(&m, 30, 30) // grow: old buffer recycled into the arena
	if got := a.Get(40); &got[0] != ptr {
		t.Error("outgrown buffer was not recycled")
	}
}

func TestArenaGetSlice(t *testing.T) {
	var a Arena
	s := a.GetSlice(nil, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	ptr := &s[0]
	s2 := a.GetSlice(s, 5)
	if &s2[0] != ptr {
		t.Error("shrinking GetSlice moved the buffer")
	}
	s3 := a.GetSlice(s2, 1000)
	if len(s3) != 1000 {
		t.Fatalf("len = %d", len(s3))
	}
}
