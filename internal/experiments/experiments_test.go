package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"paragraph/internal/hw"
	"paragraph/internal/metrics"
	"paragraph/internal/paragraph"
)

// tinyRunner shares one Runner across the test file: experiments reuse its
// cached datasets and models exactly as cmd/experiments does.
var tinyRunner = NewRunner(Tiny())

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 9 {
		t.Fatalf("applications = %d, want 9", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.NumKernels
	}
	if total != 17 {
		t.Errorf("kernels = %d, want 17", total)
	}
	var buf bytes.Buffer
	RenderTable1(&buf)
	for _, want := range []string{"Particle Filter", "Linear Algebra", "Total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := tinyRunner.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("platforms = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.NumPoints == 0 {
			t.Errorf("%s: no points", r.Platform)
		}
		if r.MaxRuntimeMS <= r.MinRuntimeMS {
			t.Errorf("%s: degenerate range", r.Platform)
		}
		if r.StdDevMS <= 0 {
			t.Errorf("%s: no dispersion", r.Platform)
		}
	}
	var buf bytes.Buffer
	if err := tinyRunner.RenderTable2(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Summit") || !strings.Contains(buf.String(), "Corona") {
		t.Error("render missing cluster names")
	}
}

func TestTable3AndFigure5(t *testing.T) {
	rows, err := tinyRunner.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RMSEms <= 0 || math.IsNaN(r.RMSEms) {
			t.Errorf("%s: RMSE = %v", r.Platform, r.RMSEms)
		}
		// Tiny scale is noisy; still, normalized RMSE must be a sane
		// fraction of the range.
		if r.NormRMSE <= 0 || r.NormRMSE > 0.5 {
			t.Errorf("%s: NormRMSE = %v outside (0, 0.5]", r.Platform, r.NormRMSE)
		}
	}
	series, err := tinyRunner.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.ValRMSE) != tinyRunner.Scale.Epochs {
			t.Errorf("%s: %d epochs, want %d", s.Platform, len(s.ValRMSE), tinyRunner.Scale.Epochs)
		}
		// Training must improve on the first epoch.
		if s.ValRMSE[len(s.ValRMSE)-1] >= s.ValRMSE[0]*1.5 {
			t.Errorf("%s: training diverged: %v", s.Platform, s.ValRMSE)
		}
	}
}

func TestFigure4BinsAreSmallError(t *testing.T) {
	series, err := tinyRunner.Figure4(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		// At tiny scale the sparse top bins (single huge-runtime points)
		// are noisy; the paper's <10% per-bin claim is a full-scale
		// property. Here we assert the structural shape: bins exist, the
		// most populated bin has modest error, and errors are weighted-mean
		// bounded.
		best := metricsBinMax(s.Bins)
		if best.Count == 0 {
			t.Errorf("%s: no occupied bins", s.Platform)
			continue
		}
		if best.MeanErr > 0.4 {
			t.Errorf("%s: most-populated bin %s err %v too high", s.Platform, best.Label, best.MeanErr)
		}
		var wsum, n float64
		for _, b := range s.Bins {
			wsum += b.MeanErr * float64(b.Count)
			n += float64(b.Count)
		}
		if n > 0 && wsum/n > 0.5 {
			t.Errorf("%s: weighted mean rel err %v too high", s.Platform, wsum/n)
		}
	}
}

// metricsBinMax returns the bin with the largest population.
func metricsBinMax(bins []metrics.Bin) metrics.Bin {
	var best metrics.Bin
	for _, b := range bins {
		if b.Count > best.Count {
			best = b
		}
	}
	return best
}

func TestFigure6CoversApplications(t *testing.T) {
	rows, err := tinyRunner.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	apps := map[string]bool{}
	for _, r := range rows {
		apps[r.Application] = true
		if r.ErrorRate < 0 {
			t.Errorf("negative error rate: %+v", r)
		}
	}
	// The tiny validation split cannot cover all nine apps on every
	// platform, but several must appear.
	if len(apps) < 3 {
		t.Errorf("only %d applications in Figure 6 at tiny scale", len(apps))
	}
}

func TestRenderAllTinyPieces(t *testing.T) {
	var buf bytes.Buffer
	if err := tinyRunner.RenderTable3(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tinyRunner.RenderFigure4(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tinyRunner.RenderFigure5(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tinyRunner.RenderFigure6(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table III", "Figure 4", "Figure 5", "Figure 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in render", want)
		}
	}
}

func TestCompoffRequiresGPU(t *testing.T) {
	if _, err := tinyRunner.Compoff(hw.Power9()); err == nil {
		t.Error("COMPOFF on CPU accepted; paper restricts it to GPUs")
	}
}

func TestRunnerCaching(t *testing.T) {
	p1, err := tinyRunner.Platform(hw.V100())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := tinyRunner.Platform(hw.V100())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("platform not cached")
	}
	t1, err := tinyRunner.Trained(hw.V100(), paragraph.LevelParaGraph)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := tinyRunner.Trained(hw.V100(), paragraph.LevelParaGraph)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("model not cached")
	}
}

func TestTable4AndFigure7Ablation(t *testing.T) {
	rows, err := tinyRunner.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for name, v := range map[string]float64{
			"raw": r.RawAST, "aug": r.AugAST, "para": r.ParaGraph,
		} {
			if v <= 0 || math.IsNaN(v) {
				t.Errorf("%s %s RMSE = %v", r.Platform, name, v)
			}
		}
	}
	series, err := tinyRunner.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("figure 7 series = %d", len(series))
	}
	names := []string{"Raw AST", "Augmented AST", "ParaGraph"}
	for i, s := range series {
		if s.Level != names[i] {
			t.Errorf("series %d level = %q, want %q", i, s.Level, names[i])
		}
		if len(s.ValRMSE) != tinyRunner.Scale.Epochs {
			t.Errorf("%s: %d epochs", s.Level, len(s.ValRMSE))
		}
	}
}

func TestFigure8And9Comparison(t *testing.T) {
	res, err := tinyRunner.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 {
		t.Fatal("no comparison points")
	}
	if res.ParaGraphMeanErr < 0 || res.CompoffMeanErr < 0 {
		t.Errorf("negative errors: %+v", res)
	}
	if res.WinFraction < 0 || res.WinFraction > 1 {
		t.Errorf("win fraction = %v", res.WinFraction)
	}
	f9, err := tinyRunner.Figure9(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Points) == 0 || len(f9.Points) > 5 {
		t.Errorf("points = %d", len(f9.Points))
	}
	// Both models should correlate positively with actual runtimes even at
	// tiny scale.
	if f9.ParaGraphPearson <= 0 {
		t.Errorf("ParaGraph correlation = %v", f9.ParaGraphPearson)
	}
	var buf bytes.Buffer
	if err := tinyRunner.RenderTable4(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tinyRunner.RenderFigure7(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tinyRunner.RenderFigure8(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tinyRunner.RenderFigure9(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table IV", "Figure 7", "Figure 8", "Figure 9"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestScalesAreOrdered(t *testing.T) {
	tiny, small, full := Tiny(), Small(), Full()
	if tiny.Epochs >= small.Epochs || small.Epochs >= full.Epochs {
		t.Error("epochs not increasing across scales")
	}
	if tiny.MaxPerPlatform >= small.MaxPerPlatform {
		t.Error("dataset sizes not increasing")
	}
	if full.MaxPerPlatform != 0 {
		t.Error("full scale should not subsample")
	}
	for _, s := range []Scale{tiny, small, full} {
		if s.Name == "" || s.Hidden <= 0 || s.BatchSize <= 0 || s.LR <= 0 {
			t.Errorf("scale %+v incomplete", s)
		}
	}
}
