// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV–V). A Runner caches the expensive shared artifacts —
// collected platform datasets, prepared samples, trained models — so the
// table/figure functions compose without repeating work. Each exported
// table/figure function names the paper artifact it reproduces.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"paragraph/internal/cluster"
	"paragraph/internal/compoff"
	"paragraph/internal/dataset"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
	"paragraph/internal/sim"
	"paragraph/internal/variants"
)

// Scale sizes an experiment run. The paper's full protocol (~26k points per
// platform pair, 100+ epochs) is reachable with Full(); Small() keeps the
// whole suite in CI/laptop territory while preserving every qualitative
// conclusion; Tiny() is for benchmarks and smoke tests.
type Scale struct {
	Name           string
	MaxPerPlatform int // dataset points per platform (0 = everything)
	Epochs         int // GNN training epochs
	CompoffEpochs  int
	Hidden         int // GNN width
	Layers         int // RGAT layers (paper: 3)
	BatchSize      int
	LR             float64
	Seed           int64
}

// Tiny is the smoke-test scale.
func Tiny() Scale {
	return Scale{Name: "tiny", MaxPerPlatform: 120, Epochs: 8, CompoffEpochs: 15,
		Hidden: 12, Layers: 2, BatchSize: 16, LR: 5e-3, Seed: 1}
}

// Small is the default scale: minutes on a laptop, same conclusions.
func Small() Scale {
	return Scale{Name: "small", MaxPerPlatform: 640, Epochs: 36, CompoffEpochs: 60,
		Hidden: 24, Layers: 3, BatchSize: 32, LR: 3e-3, Seed: 1}
}

// Full approximates the paper's protocol. Hours of CPU time.
func Full() Scale {
	return Scale{Name: "full", MaxPerPlatform: 0, Epochs: 100, CompoffEpochs: 100,
		Hidden: 32, Layers: 3, BatchSize: 64, LR: 3e-3, Seed: 1}
}

// Trained bundles a trained cost model with its data and training history.
type Trained struct {
	Model *gnn.Model
	Prep  *dataset.Prepared
	Hist  gnn.History
	Level paragraph.Level
}

// ValActualPredUS returns (actual, predicted) runtimes in milliseconds over
// the validation split.
func (t *Trained) ValActualPredMS() (actual, pred []float64) {
	preds := t.Model.PredictAll(t.Prep.Val, runtime.GOMAXPROCS(0))
	actual = make([]float64, len(t.Prep.Val))
	pred = make([]float64, len(t.Prep.Val))
	for i, s := range t.Prep.Val {
		actual[i] = s.RawUS / 1000
		pred[i] = t.Prep.DescaleUS(preds[i]) / 1000
	}
	return actual, pred
}

// ValApps returns the application name of each validation sample.
func (t *Trained) ValApps() []string {
	apps := make([]string, len(t.Prep.Val))
	for i, s := range t.Prep.Val {
		apps[i] = s.App
	}
	return apps
}

// Runner caches datasets and models across experiments.
type Runner struct {
	Scale Scale

	mu        sync.Mutex
	platforms map[string]*dataset.Platform
	prepared  map[string]*dataset.Prepared
	trained   map[string]*Trained
	compoffs  map[string]*trainedCompoff
}

type trainedCompoff struct {
	model   *compoff.Model
	samples []*compoff.Sample // validation split, aligned with GNN val set
	prep    *dataset.Prepared
	hist    compoff.History
}

// NewRunner returns a Runner at the given scale.
func NewRunner(scale Scale) *Runner {
	return &Runner{
		Scale:     scale,
		platforms: map[string]*dataset.Platform{},
		prepared:  map[string]*dataset.Prepared{},
		trained:   map[string]*Trained{},
		compoffs:  map[string]*trainedCompoff{},
	}
}

// datasetConfig derives the collection configuration from the scale.
func (r *Runner) datasetConfig() dataset.Config {
	return dataset.Config{
		Sweep:          variants.DefaultSweep(),
		Sim:            sim.Config{Seed: r.Scale.Seed},
		Cluster:        cluster.Config{Nodes: runtime.GOMAXPROCS(0), FailureRate: 0.01, MaxRetries: 3, Seed: r.Scale.Seed},
		MaxPerPlatform: r.Scale.MaxPerPlatform,
		Seed:           r.Scale.Seed,
	}
}

// Platform returns (collecting on first use) the dataset slice for machine m.
func (r *Runner) Platform(m hw.Machine) (*dataset.Platform, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.platforms[m.Name]; ok {
		return p, nil
	}
	p, err := dataset.Collect(m, r.datasetConfig())
	if err != nil {
		return nil, err
	}
	r.platforms[m.Name] = p
	return p, nil
}

// Prepared returns (building on first use) the prepared samples for machine
// m at a representation level.
func (r *Runner) Prepared(m hw.Machine, level paragraph.Level) (*dataset.Prepared, error) {
	p, err := r.Platform(m)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s/%d", m.Name, level)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prep, ok := r.prepared[key]; ok {
		return prep, nil
	}
	prep, err := dataset.Prepare(p.Points, dataset.PrepConfig{
		Level: level,
		Seed:  r.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	r.prepared[key] = prep
	return prep, nil
}

// Trained returns (training on first use) the GNN model for machine m at a
// representation level.
func (r *Runner) Trained(m hw.Machine, level paragraph.Level) (*Trained, error) {
	prep, err := r.Prepared(m, level)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s/%d", m.Name, level)
	r.mu.Lock()
	if tr, ok := r.trained[key]; ok {
		r.mu.Unlock()
		return tr, nil
	}
	r.mu.Unlock()

	model := gnn.NewModel(gnn.Config{
		Hidden:    r.Scale.Hidden,
		Layers:    r.Scale.Layers,
		Relations: int(paragraph.NumEdgeTypes),
		Seed:      r.Scale.Seed,
	})
	hist, err := model.Train(prep.Train, prep.Val, gnn.TrainConfig{
		Epochs:    r.Scale.Epochs,
		BatchSize: r.Scale.BatchSize,
		LR:        r.Scale.LR,
		Seed:      r.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	tr := &Trained{Model: model, Prep: prep, Hist: hist, Level: level}
	r.mu.Lock()
	r.trained[key] = tr
	r.mu.Unlock()
	return tr, nil
}

// Compoff returns (training on first use) the COMPOFF baseline for a GPU
// machine. Its samples share the GNN's target scaling and 9:1 split so the
// two models are compared on identical validation points (Figures 8–9).
func (r *Runner) Compoff(m hw.Machine) (*trainedCompoff, error) {
	if !m.IsGPU {
		return nil, fmt.Errorf("experiments: COMPOFF supports GPU platforms only (got %s)", m.Name)
	}
	r.mu.Lock()
	if tc, ok := r.compoffs[m.Name]; ok {
		r.mu.Unlock()
		return tc, nil
	}
	r.mu.Unlock()

	p, err := r.Platform(m)
	if err != nil {
		return nil, err
	}
	prep, err := r.Prepared(m, paragraph.LevelParaGraph)
	if err != nil {
		return nil, err
	}
	// Index points by instance name to align COMPOFF samples with the
	// GNN's split.
	byName := map[string]dataset.Point{}
	for _, pt := range p.Points {
		byName[pt.Instance.Name()] = pt
	}
	build := func(gs []*gnn.Sample) ([]*compoff.Sample, error) {
		out := make([]*compoff.Sample, len(gs))
		for i, s := range gs {
			pt, ok := byName[s.Name]
			if !ok {
				return nil, fmt.Errorf("experiments: point %s missing", s.Name)
			}
			feats, err := compoff.Extract(pt.Instance, 0)
			if err != nil {
				return nil, err
			}
			out[i] = &compoff.Sample{Feats: feats, Target: s.Target, RawUS: s.RawUS, Name: s.Name}
		}
		return out, nil
	}
	trainS, err := build(prep.Train)
	if err != nil {
		return nil, err
	}
	valS, err := build(prep.Val)
	if err != nil {
		return nil, err
	}
	model := compoff.NewModel(compoff.Config{Hidden: 32, Seed: r.Scale.Seed})
	hist, err := model.Train(trainS, valS, compoff.TrainConfig{
		Epochs: r.Scale.CompoffEpochs,
		Seed:   r.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	tc := &trainedCompoff{model: model, samples: valS, prep: prep, hist: hist}
	r.mu.Lock()
	r.compoffs[m.Name] = tc
	r.mu.Unlock()
	return tc, nil
}

// compoffValActualPredMS mirrors Trained.ValActualPredMS for the baseline.
func (tc *trainedCompoff) valActualPredMS() (actual, pred []float64) {
	actual = make([]float64, len(tc.samples))
	pred = make([]float64, len(tc.samples))
	for i, s := range tc.samples {
		actual[i] = s.RawUS / 1000
		pred[i] = tc.prep.DescaleUS(tc.model.Predict(s)) / 1000
	}
	return actual, pred
}
