package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"paragraph/internal/apps"
	"paragraph/internal/hw"
	"paragraph/internal/metrics"
	"paragraph/internal/paragraph"
)

// levels are the ablation treatments of Table IV, in paper order.
var levels = []paragraph.Level{
	paragraph.LevelRawAST,
	paragraph.LevelAugmentedAST,
	paragraph.LevelParaGraph,
}

// Table1Row is one row of Table I (benchmark applications).
type Table1Row struct {
	Application string
	NumKernels  int
	Domain      string
}

// Table1 reproduces Table I: the benchmark application inventory.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, a := range apps.Apps() {
		rows = append(rows, Table1Row{Application: a.Name, NumKernels: a.NumKernels, Domain: a.Domain})
	}
	return rows
}

// RenderTable1 prints Table I.
func RenderTable1(w io.Writer) {
	fmt.Fprintf(w, "Table I: Benchmark Applications\n")
	fmt.Fprintf(w, "%-32s %8s  %s\n", "Application", "Kernels", "Domain")
	total := 0
	for _, r := range Table1() {
		fmt.Fprintf(w, "%-32s %8d  %s\n", r.Application, r.NumKernels, r.Domain)
		total += r.NumKernels
	}
	fmt.Fprintf(w, "%-32s %8d\n", "Total", total)
}

// Table2Row is one row of Table II (data points per accelerator).
type Table2Row struct {
	Platform     string
	Cluster      string
	NumPoints    int
	MinRuntimeMS float64
	MaxRuntimeMS float64
	StdDevMS     float64
	LostToFaults int
}

// Table2 reproduces Table II: per-platform dataset statistics.
func (r *Runner) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, m := range hw.All() {
		p, err := r.Platform(m)
		if err != nil {
			return nil, err
		}
		s := p.Stats()
		rows = append(rows, Table2Row{
			Platform:     m.Name,
			Cluster:      m.Cluster,
			NumPoints:    s.NumPoints,
			MinRuntimeMS: s.MinRuntimeMS,
			MaxRuntimeMS: s.MaxRuntimeMS,
			StdDevMS:     s.StdDevMS,
			LostToFaults: p.Failed,
		})
	}
	return rows, nil
}

// RenderTable2 prints Table II.
func (r *Runner) RenderTable2(w io.Writer) error {
	rows, err := r.Table2()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table II: Data points collected on each accelerator (simulated substrate)\n")
	fmt.Fprintf(w, "%-22s %-8s %8s  %-26s %12s %6s\n",
		"Platform", "Cluster", "#Points", "Runtime Range (ms)", "Std. Dev.", "Lost")
	for _, row := range rows {
		fmt.Fprintf(w, "%-22s %-8s %8d  [%.3g - %.6g] %12.4g %6d\n",
			row.Platform, row.Cluster, row.NumPoints,
			row.MinRuntimeMS, row.MaxRuntimeMS, row.StdDevMS, row.LostToFaults)
	}
	return nil
}

// Table3Row is one row of Table III (runtime-prediction error).
type Table3Row struct {
	Platform string
	RMSEms   float64
	NormRMSE float64
}

// Table3 reproduces Table III: validation RMSE and normalized RMSE of the
// ParaGraph model per platform.
func (r *Runner) Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, m := range hw.All() {
		tr, err := r.Trained(m, paragraph.LevelParaGraph)
		if err != nil {
			return nil, err
		}
		actual, pred := tr.ValActualPredMS()
		rows = append(rows, Table3Row{
			Platform: m.Name,
			RMSEms:   metrics.RMSE(pred, actual),
			NormRMSE: metrics.NormRMSE(pred, actual),
		})
	}
	return rows, nil
}

// RenderTable3 prints Table III.
func (r *Runner) RenderTable3(w io.Writer) error {
	rows, err := r.Table3()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table III: Experimental results (validation split)\n")
	fmt.Fprintf(w, "%-22s %12s %12s\n", "Platform", "RMSE (ms)", "Norm-RMSE")
	for _, row := range rows {
		fmt.Fprintf(w, "%-22s %12.4g %12.2e\n", row.Platform, row.RMSEms, row.NormRMSE)
	}
	return nil
}

// Table4Row is one row of Table IV (ablation RMSE in ms).
type Table4Row struct {
	Platform  string
	RawAST    float64
	AugAST    float64
	ParaGraph float64
}

// Table4 reproduces Table IV: the representation ablation. The expected
// shape: ParaGraph < Augmented AST < Raw AST on every platform.
func (r *Runner) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, m := range hw.All() {
		var rmse [3]float64
		for li, level := range levels {
			tr, err := r.Trained(m, level)
			if err != nil {
				return nil, err
			}
			actual, pred := tr.ValActualPredMS()
			rmse[li] = metrics.RMSE(pred, actual)
		}
		rows = append(rows, Table4Row{
			Platform:  m.Name,
			RawAST:    rmse[0],
			AugAST:    rmse[1],
			ParaGraph: rmse[2],
		})
	}
	return rows, nil
}

// RenderTable4 prints Table IV.
func (r *Runner) RenderTable4(w io.Writer) error {
	rows, err := r.Table4()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table IV: RMSE (ms) of training with and without edges/weights (ablation)\n")
	fmt.Fprintf(w, "%-22s %12s %12s %12s\n", "Platform", "Raw AST", "Aug AST", "ParaGraph")
	for _, row := range rows {
		fmt.Fprintf(w, "%-22s %12.4g %12.4g %12.4g\n", row.Platform, row.RawAST, row.AugAST, row.ParaGraph)
	}
	return nil
}

// Figure4Series is the binned relative error of one platform.
type Figure4Series struct {
	Platform string
	Bins     []metrics.Bin
}

// Figure4 reproduces Figure 4: relative error per runtime bin. The paper
// bins by 10-second ranges over runtimes reaching hundreds of seconds; the
// simulated substrate spans a smaller absolute range, so bins are
// range/numBins wide — same layout, same expected shape (small error in
// every occupied bin).
func (r *Runner) Figure4(numBins int) ([]Figure4Series, error) {
	if numBins <= 0 {
		numBins = 10
	}
	var out []Figure4Series
	for _, m := range hw.All() {
		tr, err := r.Trained(m, paragraph.LevelParaGraph)
		if err != nil {
			return nil, err
		}
		actual, pred := tr.ValActualPredMS()
		width := metrics.Range(actual) / float64(numBins)
		if width <= 0 {
			width = 1
		}
		out = append(out, Figure4Series{
			Platform: m.Name,
			Bins:     metrics.BinnedRelError(pred, actual, width, numBins),
		})
	}
	return out, nil
}

// RenderFigure4 prints Figure 4's data.
func (r *Runner) RenderFigure4(w io.Writer) error {
	series, err := r.Figure4(10)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4: Prediction relative error per runtime bin (bin unit: ms)\n")
	for _, s := range series {
		fmt.Fprintf(w, "%s\n", s.Platform)
		for _, b := range s.Bins {
			if b.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  bin %-18s n=%-5d rel.err=%.4f\n", b.Label, b.Count, b.MeanErr)
		}
	}
	return nil
}

// Figure5Series is one platform's per-epoch validation curve.
type Figure5Series struct {
	Platform string
	ValRMSE  []float64 // normalized (scaled-target space) per epoch
}

// Figure5 reproduces Figure 5: normalized validation RMSE per epoch for all
// four accelerators. The curves are in the MinMax-scaled target space, the
// same normalization the paper plots.
func (r *Runner) Figure5() ([]Figure5Series, error) {
	var out []Figure5Series
	for _, m := range hw.All() {
		tr, err := r.Trained(m, paragraph.LevelParaGraph)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure5Series{Platform: m.Name, ValRMSE: tr.Hist.ValRMSE})
	}
	return out, nil
}

// RenderFigure5 prints Figure 5's data.
func (r *Runner) RenderFigure5(w io.Writer) error {
	series, err := r.Figure5()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5: Normalized RMSE per epoch (validation)\n")
	for _, s := range series {
		fmt.Fprintf(w, "%s:", s.Platform)
		for _, v := range s.ValRMSE {
			fmt.Fprintf(w, " %.4f", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure6Row is one (application, platform) error-rate cell.
type Figure6Row struct {
	Application string
	Platform    string
	Count       int
	ErrorRate   float64
}

// Figure6 reproduces Figure 6: average relative error per application.
func (r *Runner) Figure6() ([]Figure6Row, error) {
	var out []Figure6Row
	for _, m := range hw.All() {
		tr, err := r.Trained(m, paragraph.LevelParaGraph)
		if err != nil {
			return nil, err
		}
		actual, pred := tr.ValActualPredMS()
		for _, g := range metrics.GroupedRelError(pred, actual, tr.ValApps()) {
			out = append(out, Figure6Row{
				Application: g.Group,
				Platform:    m.Name,
				Count:       g.Count,
				ErrorRate:   g.MeanErr,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Application != out[j].Application {
			return out[i].Application < out[j].Application
		}
		return out[i].Platform < out[j].Platform
	})
	return out, nil
}

// RenderFigure6 prints Figure 6's data.
func (r *Runner) RenderFigure6(w io.Writer) error {
	rows, err := r.Figure6()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 6: Error rate per application\n")
	fmt.Fprintf(w, "%-32s %-22s %6s %10s\n", "Application", "Platform", "n", "err.rate")
	for _, row := range rows {
		fmt.Fprintf(w, "%-32s %-22s %6d %10.4f\n", row.Application, row.Platform, row.Count, row.ErrorRate)
	}
	return nil
}

// Figure7Series is one ablation level's training curve on MI50.
type Figure7Series struct {
	Level   string
	ValRMSE []float64
}

// Figure7 reproduces Figure 7: validation RMSE per epoch for Raw AST,
// Augmented AST and ParaGraph on the MI50 data. Expected shape: ParaGraph
// converges below Augmented AST below Raw AST.
func (r *Runner) Figure7() ([]Figure7Series, error) {
	var out []Figure7Series
	for _, level := range levels {
		tr, err := r.Trained(hw.MI50(), level)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure7Series{Level: level.String(), ValRMSE: tr.Hist.ValRMSE})
	}
	return out, nil
}

// RenderFigure7 prints Figure 7's data.
func (r *Runner) RenderFigure7(w io.Writer) error {
	series, err := r.Figure7()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 7: Validation RMSE during training on MI50 (ablation)\n")
	for _, s := range series {
		fmt.Fprintf(w, "%-14s:", s.Level)
		for _, v := range s.ValRMSE {
			fmt.Fprintf(w, " %.4f", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure8Result compares per-point errors of ParaGraph and COMPOFF on V100.
type Figure8Result struct {
	ParaGraphMeanErr float64
	CompoffMeanErr   float64
	// WinFraction is the fraction of validation points where ParaGraph's
	// absolute error is smaller.
	WinFraction float64
	// SmallKernelCompoffErr and SmallKernelParaGraphErr summarize the
	// bottom runtime quartile, where the paper observes COMPOFF degrading.
	SmallKernelParaGraphErr float64
	SmallKernelCompoffErr   float64
	N                       int
}

// Figure8 reproduces Figure 8: per-data-point prediction error of ParaGraph
// vs COMPOFF on the NVIDIA V100.
func (r *Runner) Figure8() (Figure8Result, error) {
	tr, err := r.Trained(hw.V100(), paragraph.LevelParaGraph)
	if err != nil {
		return Figure8Result{}, err
	}
	tc, err := r.Compoff(hw.V100())
	if err != nil {
		return Figure8Result{}, err
	}
	actual, pgPred := tr.ValActualPredMS()
	cActual, cPred := tc.valActualPredMS()
	if len(actual) != len(cActual) {
		return Figure8Result{}, fmt.Errorf("experiments: val split mismatch %d vs %d", len(actual), len(cActual))
	}
	pgErr := metrics.RelErrors(pgPred, actual)
	cErr := metrics.RelErrors(cPred, cActual)

	var res Figure8Result
	res.N = len(actual)
	res.ParaGraphMeanErr = metrics.Mean(pgErr)
	res.CompoffMeanErr = metrics.Mean(cErr)
	wins := 0
	for i := range pgErr {
		if pgErr[i] < cErr[i] {
			wins++
		}
	}
	res.WinFraction = float64(wins) / math.Max(float64(len(pgErr)), 1)

	// Bottom-quartile (small runtime) comparison.
	idx := make([]int, len(actual))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return actual[idx[a]] < actual[idx[b]] })
	q := len(idx) / 4
	if q > 0 {
		var pe, ce float64
		for _, i := range idx[:q] {
			pe += pgErr[i]
			ce += cErr[i]
		}
		res.SmallKernelParaGraphErr = pe / float64(q)
		res.SmallKernelCompoffErr = ce / float64(q)
	}
	return res, nil
}

// RenderFigure8 prints Figure 8's comparison.
func (r *Runner) RenderFigure8(w io.Writer) error {
	res, err := r.Figure8()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 8: ParaGraph vs COMPOFF per-point error on NVIDIA V100 (n=%d)\n", res.N)
	fmt.Fprintf(w, "  mean rel. error: ParaGraph %.4f, COMPOFF %.4f\n", res.ParaGraphMeanErr, res.CompoffMeanErr)
	fmt.Fprintf(w, "  ParaGraph wins on %.1f%% of points\n", 100*res.WinFraction)
	fmt.Fprintf(w, "  small kernels (bottom runtime quartile): ParaGraph %.4f, COMPOFF %.4f\n",
		res.SmallKernelParaGraphErr, res.SmallKernelCompoffErr)
	return nil
}

// Figure9Result is the predicted-vs-actual correlation comparison.
type Figure9Result struct {
	ParaGraphPearson float64
	CompoffPearson   float64
	// Sample scatter points (actualMS, paragraphMS, compoffMS), capped.
	Points [][3]float64
}

// Figure9 reproduces Figure 9: predicted vs actual runtimes on V100 for
// both models. Correlations are computed in log space, matching the
// figure's log-log axes.
func (r *Runner) Figure9(maxPoints int) (Figure9Result, error) {
	tr, err := r.Trained(hw.V100(), paragraph.LevelParaGraph)
	if err != nil {
		return Figure9Result{}, err
	}
	tc, err := r.Compoff(hw.V100())
	if err != nil {
		return Figure9Result{}, err
	}
	actual, pgPred := tr.ValActualPredMS()
	_, cPred := tc.valActualPredMS()

	logs := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, v := range xs {
			out[i] = math.Log(math.Max(v, 1e-9))
		}
		return out
	}
	res := Figure9Result{
		ParaGraphPearson: metrics.Pearson(logs(pgPred), logs(actual)),
		CompoffPearson:   metrics.Pearson(logs(cPred), logs(actual)),
	}
	n := len(actual)
	if maxPoints > 0 && n > maxPoints {
		n = maxPoints
	}
	for i := 0; i < n; i++ {
		res.Points = append(res.Points, [3]float64{actual[i], pgPred[i], cPred[i]})
	}
	return res, nil
}

// RenderFigure9 prints Figure 9's data.
func (r *Runner) RenderFigure9(w io.Writer) error {
	res, err := r.Figure9(12)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 9: Predicted vs actual on NVIDIA V100 (log-space Pearson)\n")
	fmt.Fprintf(w, "  ParaGraph r = %.4f, COMPOFF r = %.4f\n", res.ParaGraphPearson, res.CompoffPearson)
	fmt.Fprintf(w, "  %-14s %-14s %-14s\n", "actual(ms)", "paragraph(ms)", "compoff(ms)")
	for _, p := range res.Points {
		fmt.Fprintf(w, "  %-14.5g %-14.5g %-14.5g\n", p[0], p[1], p[2])
	}
	return nil
}

// RunAll renders every table and figure to w.
func (r *Runner) RunAll(w io.Writer) error {
	RenderTable1(w)
	fmt.Fprintln(w)
	steps := []func(io.Writer) error{
		r.RenderTable2, r.RenderTable3, r.RenderTable4,
		r.RenderFigure4, r.RenderFigure5, r.RenderFigure6,
		r.RenderFigure7, r.RenderFigure8, r.RenderFigure9,
	}
	for _, step := range steps {
		if err := step(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
