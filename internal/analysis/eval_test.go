package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"paragraph/internal/cast"
	"paragraph/internal/cparse"
)

// exprOf parses "v = <expr>;" inside a scaffold function and returns the
// expression's RHS node.
func exprOf(t *testing.T, expr string, params string) *cast.Node {
	t.Helper()
	src := "void f(" + params + ") { double v; v = " + expr + "; }"
	root, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	fn := cast.FindFunction(root, "f")
	body := fn.Body()
	asn := body.Children[len(body.Children)-1]
	return asn.Children[1]
}

func TestEvalConstants(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"42", 42},
		{"3.5", 3.5},
		{"0x10", 16},
		{"100UL", 100},
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 4", 2.5},
		{"10 % 3", 1},
		{"1 << 4", 16},
		{"256 >> 2", 64},
		{"-5", -5},
		{"+5", 5},
		{"!0", 1},
		{"!3", 0},
		{"1 < 2", 1},
		{"2 <= 1", 0},
		{"3 == 3", 1},
		{"3 != 3", 0},
		{"1 && 2", 1},
		{"0 || 0", 0},
		{"6 & 3", 2},
		{"6 | 1", 7},
		{"6 ^ 3", 5},
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
		{"'A'", 65},
		{"2.0e3", 2000},
	}
	for _, c := range cases {
		n := exprOf(t, c.expr, "")
		got, ok := Eval(n, nil)
		if !ok {
			t.Errorf("Eval(%q) not constant", c.expr)
			continue
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestEvalWithEnv(t *testing.T) {
	n := exprOf(t, "n * m + 1", "int n, int m")
	got, ok := Eval(n, Env{"n": 10, "m": 20})
	if !ok || got != 201 {
		t.Errorf("Eval = %v, %v; want 201, true", got, ok)
	}
	if _, ok := Eval(n, Env{"n": 10}); ok {
		t.Error("Eval with missing binding should fail")
	}
}

func TestEvalConstInitializerFallback(t *testing.T) {
	src := `void f(void) { int n = 64; int m; m = n * 2; }`
	root, err := cparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := cast.FindFunction(root, "f").Body()
	asn := body.Children[2]
	got, ok := Eval(asn.Children[1], nil)
	if !ok || got != 128 {
		t.Errorf("Eval via initializer = %v, %v; want 128", got, ok)
	}
}

func TestEvalDivisionByZero(t *testing.T) {
	n := exprOf(t, "1 / 0", "")
	if _, ok := Eval(n, nil); ok {
		t.Error("division by zero should not be constant")
	}
	n = exprOf(t, "1 % 0", "")
	if _, ok := Eval(n, nil); ok {
		t.Error("mod by zero should not be constant")
	}
}

func TestEvalSizeof(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"sizeof(double)", 8},
		{"sizeof(float)", 4},
		{"sizeof(int)", 4},
		{"sizeof(char)", 1},
		{"sizeof(short)", 2},
		{"sizeof(long)", 8},
		{"sizeof(double *)", 8},
	}
	for _, c := range cases {
		n := exprOf(t, c.expr, "")
		got, ok := Eval(n, nil)
		if !ok || got != c.want {
			t.Errorf("Eval(%q) = %v, %v; want %v", c.expr, got, ok, c.want)
		}
	}
}

func TestEvalNil(t *testing.T) {
	if _, ok := Eval(nil, nil); ok {
		t.Error("Eval(nil) should fail")
	}
}

// forOf parses a function containing a single loop and returns its ForStmt.
func forOf(t *testing.T, loop string, params string) *cast.Node {
	t.Helper()
	src := "void f(" + params + ") { " + loop + " }"
	root, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", loop, err)
	}
	fors := cast.FindAll(root, cast.KindForStmt)
	if len(fors) == 0 {
		t.Fatalf("no for in %q", loop)
	}
	return fors[0]
}

func TestForTripCanonical(t *testing.T) {
	cases := []struct {
		loop   string
		params string
		env    Env
		want   float64
	}{
		{"for (int i = 0; i < 50; i++) {}", "", nil, 50},
		{"for (int i = 0; i <= 50; i++) {}", "", nil, 51},
		{"for (int i = 1; i < 100; i += 2) {}", "", nil, 50},
		{"for (int i = 100; i > 0; i--) {}", "", nil, 100},
		{"for (int i = 100; i >= 0; i -= 10) {}", "", nil, 11},
		{"for (int i = 0; i < n; i++) {}", "int n", Env{"n": 1000}, 1000},
		{"for (int i = 0; i < n * m; i++) {}", "int n, int m", Env{"n": 10, "m": 7}, 70},
		{"for (int i = 0; n > i; i++) {}", "int n", Env{"n": 25}, 25},
		{"for (int i = 0; i != 10; i++) {}", "", nil, 10},
		{"int i; for (i = 5; i < 10; i++) {}", "", nil, 5},
		{"for (int i = 0; i < 10; i = i + 3) {}", "", nil, 4},
		{"for (int i = 0; i < 10; i = 2 + i) {}", "", nil, 5},
		{"for (int i = 10; i < 5; i++) {}", "", nil, 0},
		{"for (int i = 0; i > 5; i++) {}", "", nil, 0},
	}
	for _, c := range cases {
		fs := forOf(t, c.loop, c.params)
		info := ForTrip(fs, c.env, 99)
		if !info.Known {
			t.Errorf("ForTrip(%q) unknown", c.loop)
			continue
		}
		if info.Trip != c.want {
			t.Errorf("ForTrip(%q) = %v, want %v", c.loop, info.Trip, c.want)
		}
	}
}

func TestForTripUnknownFallsBack(t *testing.T) {
	cases := []struct {
		loop, params string
	}{
		{"for (;;) {}", ""},
		{"for (int i = 0; i < n; i++) {}", "int n"}, // n unbound
		{"for (int i = 0; cond(i); i++) {}", "int cond"},
		{"for (int i = 0; i < 10; i = next(i)) {}", "int next"},
	}
	for _, c := range cases {
		fs := forOf(t, c.loop, c.params)
		info := ForTrip(fs, nil, 77)
		if info.Known {
			t.Errorf("ForTrip(%q) should be unknown", c.loop)
		}
		if info.Trip != 77 {
			t.Errorf("ForTrip(%q) default = %v, want 77", c.loop, info.Trip)
		}
	}
}

func TestForTripNonFor(t *testing.T) {
	info := ForTrip(nil, nil, 5)
	if info.Known || info.Trip != 5 {
		t.Errorf("ForTrip(nil) = %+v", info)
	}
	n := cast.NewNode(cast.KindWhileStmt)
	info = ForTrip(n, nil, 5)
	if info.Known {
		t.Error("ForTrip on while should be unknown")
	}
}

// Property: for canonical loops, trip count equals the simulated iteration
// count of the loop.
func TestForTripMatchesSimulationProperty(t *testing.T) {
	f := func(startRaw, boundRaw uint8, stepRaw uint8) bool {
		start := int(startRaw % 50)
		bound := int(boundRaw)
		step := int(stepRaw%7) + 1
		fs := forOf(t, "for (int i = S; i < B; i += T) {}", "int S, int B, int T")
		env := Env{"S": float64(start), "B": float64(bound), "T": float64(step)}
		info := ForTrip(fs, env, -1)
		if !info.Known {
			return false
		}
		count := 0
		for i := start; i < bound; i += step {
			count++
		}
		return info.Trip == float64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSectionElems(t *testing.T) {
	env := Env{"n": 100, "m": 10}
	cases := []struct {
		arg  string
		want float64
	}{
		{"a[0:n]", 100},
		{"a[0:n*m]", 1000},
		{"a[0:(n+1)*m]", 1010},
		{"a[0:1024]", 1024},
		{"scalar", 1},
		{"a[0:unknown]", 1},
		{"a[n]", 100}, // single-extent section
	}
	for _, c := range cases {
		if got := sectionElems(c.arg, env); got != c.want {
			t.Errorf("sectionElems(%q) = %v, want %v", c.arg, got, c.want)
		}
	}
}

func TestEvalStringExpr(t *testing.T) {
	env := Env{"n": 6, "m": 7}
	cases := []struct {
		s    string
		want float64
		ok   bool
	}{
		{"n*m", 42, true},
		{"n + m * 2", 20, true},
		{"(n + m) * 2", 26, true},
		{"100", 100, true},
		{"n / 2", 3, true},
		{"2.5 * 2", 5, true},
		{"x", 0, false},
		{"n +", 0, false},
		{"(n", 0, false},
		{"n / 0", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := evalStringExpr(c.s, env)
		if ok != c.ok || (ok && math.Abs(got-c.want) > 1e-12) {
			t.Errorf("evalStringExpr(%q) = %v, %v; want %v, %v", c.s, got, ok, c.want, c.ok)
		}
	}
}
