package analysis

import (
	"strconv"
	"strings"

	"paragraph/internal/cast"
	"paragraph/internal/omp"
)

// KernelCost summarizes the statically estimated dynamic behaviour of one
// kernel under a concrete parameter binding. Counts are execution-weighted:
// an add inside a 1000-iteration loop contributes 1000.
type KernelCost struct {
	Flops     float64 // floating-point arithmetic operations
	IntOps    float64 // integer arithmetic operations
	Loads     float64 // array-element reads
	Stores    float64 // array-element writes
	Branches  float64 // if-statement evaluations
	Calls     float64 // function calls
	MathCalls float64 // transcendental calls (sqrt, exp, ...), also in Calls

	MaxLoopDepth  int     // deepest loop nest
	TotalIters    float64 // total loop iterations across the kernel
	ParallelIters float64 // iteration space distributed by the OMP directive
	CollapseDepth int     // collapse depth of the first loop directive (1 if none)
	IsOffload     bool    // kernel contains a target directive
	TransferBytes float64 // host<->device bytes from map clauses (8-byte elems; tofrom counts both directions)
	MappedArrays  int     // number of mapped array sections (transfer latency count)
	ReductionOps  int     // number of reduction clauses
}

// mathFunctions are calls costed as transcendental operations.
var mathFunctions = map[string]bool{
	"sqrt": true, "sqrtf": true, "exp": true, "expf": true, "log": true,
	"logf": true, "pow": true, "powf": true, "sin": true, "cos": true,
	"tan": true, "fabs": true, "fabsf": true, "floor": true, "ceil": true,
	"atan": true, "atan2": true, "fmod": true, "rsqrt": true,
}

// AnalyzeKernel statically analyzes the body of fn (a FunctionDecl) under
// env. Loops with unresolvable bounds are assumed to run defaultTrip
// iterations.
func AnalyzeKernel(fn *cast.Node, env Env, defaultTrip float64) KernelCost {
	var kc KernelCost
	kc.CollapseDepth = 1
	if fn == nil {
		return kc
	}
	body := fn.Body()
	if body == nil {
		body = fn // allow analyzing a bare statement tree
	}
	kc.MaxLoopDepth = cast.LoopDepth(body)
	a := &analyzer{env: env, defaultTrip: defaultTrip, kc: &kc}
	a.stmt(body, 1)
	return kc
}

type analyzer struct {
	env         Env
	defaultTrip float64
	kc          *KernelCost
}

// stmt walks statements, carrying the execution-count multiplier.
func (a *analyzer) stmt(n *cast.Node, mult float64) {
	if n == nil {
		return
	}
	switch n.Kind {
	case cast.KindCompoundStmt, cast.KindDeclStmt:
		for _, c := range n.Children {
			a.stmt(c, mult)
		}
	case cast.KindVarDecl:
		for _, c := range n.Children {
			a.expr(c, mult, false)
		}
	case cast.KindForStmt:
		init, cond, body, inc := n.ForParts()
		info := ForTrip(n, a.env, a.defaultTrip)
		a.stmt(init, mult)
		inner := mult * info.Trip
		a.kc.TotalIters += inner
		a.expr(cond, inner, false)
		a.stmt(body, inner)
		a.expr(inc, inner, false)
	case cast.KindWhileStmt:
		inner := mult * a.defaultTrip
		a.kc.TotalIters += inner
		a.expr(n.Children[0], inner, false)
		a.stmt(n.Children[1], inner)
	case cast.KindDoStmt:
		inner := mult * a.defaultTrip
		a.kc.TotalIters += inner
		a.stmt(n.Children[0], inner)
		a.expr(n.Children[1], inner, false)
	case cast.KindIfStmt:
		a.kc.Branches += mult
		cond, then, els := n.IfParts()
		a.expr(cond, mult, false)
		a.stmt(then, mult/2)
		a.stmt(els, mult/2)
	case cast.KindReturnStmt:
		for _, c := range n.Children {
			a.expr(c, mult, false)
		}
	case cast.KindOMPExecutableDirective:
		a.directive(n, mult)
	case cast.KindOMPClause:
		// Clause payloads are declarative, not executed per iteration;
		// their costs (transfer volume) are accounted from the directive's
		// clause list.
	case cast.KindBreakStmt, cast.KindContinueStmt, cast.KindNullStmt:
		// no cost
	default:
		// Expression statement.
		a.expr(n, mult, false)
	}
}

// directive records offload/transfer/parallel-iteration facts, then walks the
// associated statement. Multipliers are NOT divided by the parallelism here:
// KernelCost reports total dynamic work; the simulator divides by effective
// parallelism per machine model.
func (a *analyzer) directive(n *cast.Node, mult float64) {
	d := n.Dir
	if d != nil {
		if d.Kind.IsTarget() {
			a.kc.IsOffload = true
		}
		for _, c := range d.Clauses {
			switch c.Kind {
			case omp.ClauseMap:
				if c.MapDir != omp.MapAlloc {
					// tofrom crosses the link twice: host→device before the
					// region and device→host after it.
					factor := 1.0
					if c.MapDir == omp.MapToFrom {
						factor = 2
					}
					for _, arg := range c.Args {
						a.kc.TransferBytes += 8 * factor * sectionElems(arg, a.env)
						a.kc.MappedArrays++
					}
				}
			case omp.ClauseReduction:
				a.kc.ReductionOps++
			}
		}
		if loop := AssociatedStmt(n); loop != nil && d.Kind.IsLoopAssociated() {
			depth := d.CollapseDepth()
			a.kc.CollapseDepth = depth
			iters := 1.0
			for i := 0; i < depth && loop != nil && loop.Kind == cast.KindForStmt; i++ {
				iters *= ForTrip(loop, a.env, a.defaultTrip).Trip
				loop = firstLoopChild(loop)
			}
			if iters > a.kc.ParallelIters {
				a.kc.ParallelIters = iters
			}
		}
	}
	for _, c := range n.Children {
		a.stmt(c, mult)
	}
}

// AssociatedStmt returns the statement a directive binds to: the last
// non-clause child (clause payload nodes precede it), or nil for standalone
// directives.
func AssociatedStmt(n *cast.Node) *cast.Node {
	if n.Kind != cast.KindOMPExecutableDirective {
		return nil
	}
	for i := len(n.Children) - 1; i >= 0; i-- {
		if n.Children[i].Kind != cast.KindOMPClause {
			return n.Children[i]
		}
	}
	return nil
}

// firstLoopChild returns the first ForStmt nested directly in fs's body
// (possibly through a CompoundStmt), for walking collapsed nests.
func firstLoopChild(fs *cast.Node) *cast.Node {
	_, _, body, _ := fs.ForParts()
	if body == nil {
		return nil
	}
	if body.Kind == cast.KindForStmt {
		return body
	}
	if body.Kind == cast.KindCompoundStmt {
		for _, c := range body.Children {
			if c.Kind == cast.KindForStmt {
				return c
			}
		}
	}
	return nil
}

// expr accumulates operation counts for an expression subtree. store marks
// that the current node is a write target.
func (a *analyzer) expr(n *cast.Node, mult float64, store bool) {
	if n == nil {
		return
	}
	switch n.Kind {
	case cast.KindBinaryOperator, cast.KindCompoundAssignOperator:
		isAssign := n.Op == "=" || strings.HasSuffix(n.Op, "=") &&
			n.Op != "==" && n.Op != "!=" && n.Op != "<=" && n.Op != ">="
		if isAssign {
			a.expr(n.Children[0], mult, true)
			a.expr(n.Children[1], mult, false)
			if n.Kind == cast.KindCompoundAssignOperator {
				a.countArith(n, mult) // the implied read-modify-write op
			}
			return
		}
		a.countArith(n, mult)
		a.expr(n.Children[0], mult, false)
		a.expr(n.Children[1], mult, false)
	case cast.KindUnaryOperator:
		switch n.Op {
		case "pre++", "post++", "pre--", "post--":
			a.kc.IntOps += mult
		case "-", "~", "!":
			a.countArith(n, mult)
		}
		for _, c := range n.Children {
			a.expr(c, mult, store)
		}
	case cast.KindArraySubscriptExpr:
		if store {
			a.kc.Stores += mult
		} else {
			a.kc.Loads += mult
		}
		// Index arithmetic is integer work; the base is not a memory op
		// itself.
		a.kc.IntOps += mult // address computation
		a.expr(n.Children[1], mult, false)
	case cast.KindCallExpr:
		a.kc.Calls += mult
		if mathFunctions[n.Name] {
			a.kc.MathCalls += mult
		}
		for _, c := range n.Children[1:] {
			a.expr(c, mult, false)
		}
	case cast.KindConditionalOperator:
		a.kc.Branches += mult
		a.expr(n.Children[0], mult, false)
		a.expr(n.Children[1], mult/2, false)
		a.expr(n.Children[2], mult/2, false)
	case cast.KindImplicitCastExpr, cast.KindParenExpr:
		for _, c := range n.Children {
			a.expr(c, mult, store)
		}
	case cast.KindDeclStmt:
		a.stmt(n, mult)
	default:
		for _, c := range n.Children {
			a.expr(c, mult, store)
		}
	}
}

// countArith classifies an arithmetic operation as floating-point or integer
// from operand types.
func (a *analyzer) countArith(n *cast.Node, mult float64) {
	switch n.Op {
	case ",", "=":
		return
	}
	if isFloatExpr(n) {
		a.kc.Flops += mult
	} else {
		a.kc.IntOps += mult
	}
}

// isFloatExpr reports whether the expression subtree involves floating-point
// values, judged from literals and declared types.
func isFloatExpr(n *cast.Node) bool {
	found := false
	cast.Walk(n, func(m *cast.Node) bool {
		if found {
			return false
		}
		switch m.Kind {
		case cast.KindFloatingLiteral:
			found = true
		case cast.KindDeclRefExpr:
			if m.Ref != nil && isFloatType(m.Ref.TypeName) {
				found = true
			}
		case cast.KindImplicitCastExpr:
			if isFloatType(m.TypeName) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isFloatType(ty string) bool {
	return strings.Contains(ty, "double") || strings.Contains(ty, "float")
}

// sectionElems parses an OpenMP array-section argument like "a[0:n*m]" or a
// bare name and returns the element count under env (bare names count as 1
// scalar element).
func sectionElems(arg string, env Env) float64 {
	open := strings.IndexByte(arg, '[')
	if open < 0 {
		return 1
	}
	close := strings.LastIndexByte(arg, ']')
	if close < open {
		return 1
	}
	section := arg[open+1 : close]
	parts := strings.SplitN(section, ":", 2)
	lenExpr := parts[len(parts)-1]
	if v, ok := evalStringExpr(lenExpr, env); ok && v > 0 {
		return v
	}
	return 1
}

// evalStringExpr evaluates a tiny arithmetic expression grammar
// (ident | int | expr (*|/|+|-) expr | (expr)) used in array sections.
func evalStringExpr(s string, env Env) (float64, bool) {
	p := &sexprParser{s: strings.TrimSpace(s), env: env}
	v, ok := p.addSub()
	p.skip()
	if !ok || p.pos != len(p.s) {
		return 0, false
	}
	return v, true
}

type sexprParser struct {
	s   string
	pos int
	env Env
}

func (p *sexprParser) skip() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *sexprParser) addSub() (float64, bool) {
	v, ok := p.mulDiv()
	if !ok {
		return 0, false
	}
	for {
		p.skip()
		if p.pos >= len(p.s) {
			return v, true
		}
		op := p.s[p.pos]
		if op != '+' && op != '-' {
			return v, true
		}
		p.pos++
		rhs, ok := p.mulDiv()
		if !ok {
			return 0, false
		}
		if op == '+' {
			v += rhs
		} else {
			v -= rhs
		}
	}
}

func (p *sexprParser) mulDiv() (float64, bool) {
	v, ok := p.atom()
	if !ok {
		return 0, false
	}
	for {
		p.skip()
		if p.pos >= len(p.s) {
			return v, true
		}
		op := p.s[p.pos]
		if op != '*' && op != '/' {
			return v, true
		}
		p.pos++
		rhs, ok := p.atom()
		if !ok {
			return 0, false
		}
		if op == '*' {
			v *= rhs
		} else {
			if rhs == 0 {
				return 0, false
			}
			v /= rhs
		}
	}
}

func (p *sexprParser) atom() (float64, bool) {
	p.skip()
	if p.pos >= len(p.s) {
		return 0, false
	}
	c := p.s[p.pos]
	switch {
	case c == '(':
		p.pos++
		v, ok := p.addSub()
		p.skip()
		if !ok || p.pos >= len(p.s) || p.s[p.pos] != ')' {
			return 0, false
		}
		p.pos++
		return v, true
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.s) && (p.s[p.pos] >= '0' && p.s[p.pos] <= '9' || p.s[p.pos] == '.') {
			p.pos++
		}
		v, err := strconv.ParseFloat(p.s[start:p.pos], 64)
		return v, err == nil
	case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		start := p.pos
		for p.pos < len(p.s) && (p.s[p.pos] == '_' ||
			p.s[p.pos] >= 'a' && p.s[p.pos] <= 'z' ||
			p.s[p.pos] >= 'A' && p.s[p.pos] <= 'Z' ||
			p.s[p.pos] >= '0' && p.s[p.pos] <= '9') {
			p.pos++
		}
		v, ok := p.env[p.s[start:p.pos]]
		return v, ok
	}
	return 0, false
}
