// Package analysis provides static analyses over the C AST: constant
// expression evaluation under a parameter binding environment, loop
// trip-count extraction, and whole-kernel cost summaries (operation counts,
// memory traffic, transfer volumes). These feed three consumers: ParaGraph's
// Child-edge weights, the COMPOFF baseline's engineered features, and the
// runtime simulator.
package analysis

import (
	"math"
	"strconv"
	"strings"

	"paragraph/internal/cast"
)

// Env binds parameter/variable names to concrete numeric values, used to
// resolve symbolic loop bounds such as `for (i = 0; i < n; i++)` at dataset
// generation time.
type Env map[string]float64

// Eval statically evaluates an expression subtree. It returns the value and
// true when the expression is a compile-time constant under env, or 0 and
// false when it references unknown names or unsupported constructs.
func Eval(n *cast.Node, env Env) (float64, bool) {
	if n == nil {
		return 0, false
	}
	switch n.Kind {
	case cast.KindIntegerLiteral:
		return parseIntLiteral(n.Value)
	case cast.KindFloatingLiteral:
		v, err := strconv.ParseFloat(strings.TrimRight(n.Value, "fFlL"), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	case cast.KindCharacterLiteral:
		if len(n.Value) >= 3 {
			return float64(n.Value[1]), true
		}
		return 0, false
	case cast.KindDeclRefExpr:
		if v, ok := env[n.Name]; ok {
			return v, true
		}
		// Fall back to the declaration's constant initializer if any.
		if n.Ref != nil && n.Ref.Kind == cast.KindVarDecl && len(n.Ref.Children) == 1 {
			return Eval(n.Ref.Children[0], env)
		}
		return 0, false
	case cast.KindImplicitCastExpr, cast.KindParenExpr:
		if len(n.Children) == 1 {
			return Eval(n.Children[0], env)
		}
		return 0, false
	case cast.KindUnaryOperator:
		if len(n.Children) != 1 {
			return 0, false
		}
		if n.Op == "sizeof" {
			// sizeof's operand is a type reference, not an evaluable
			// expression; resolve it directly.
			return sizeofValue(n.Children[0]), true
		}
		v, ok := Eval(n.Children[0], env)
		if !ok {
			return 0, false
		}
		switch n.Op {
		case "-":
			return -v, true
		case "+":
			return v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		case "~":
			return float64(^int64(v)), true
		}
		return 0, false
	case cast.KindBinaryOperator:
		if len(n.Children) != 2 {
			return 0, false
		}
		a, okA := Eval(n.Children[0], env)
		b, okB := Eval(n.Children[1], env)
		if !okA || !okB {
			return 0, false
		}
		switch n.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case "%":
			if int64(b) == 0 {
				return 0, false
			}
			return float64(int64(a) % int64(b)), true
		case "<<":
			return float64(int64(a) << uint(int64(b))), true
		case ">>":
			return float64(int64(a) >> uint(int64(b))), true
		case "<":
			return boolVal(a < b), true
		case ">":
			return boolVal(a > b), true
		case "<=":
			return boolVal(a <= b), true
		case ">=":
			return boolVal(a >= b), true
		case "==":
			return boolVal(a == b), true
		case "!=":
			return boolVal(a != b), true
		case "&&":
			return boolVal(a != 0 && b != 0), true
		case "||":
			return boolVal(a != 0 || b != 0), true
		case "&":
			return float64(int64(a) & int64(b)), true
		case "|":
			return float64(int64(a) | int64(b)), true
		case "^":
			return float64(int64(a) ^ int64(b)), true
		}
		return 0, false
	case cast.KindConditionalOperator:
		if len(n.Children) != 3 {
			return 0, false
		}
		c, ok := Eval(n.Children[0], env)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return Eval(n.Children[1], env)
		}
		return Eval(n.Children[2], env)
	}
	return 0, false
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func parseIntLiteral(s string) (float64, bool) {
	s = strings.TrimRight(s, "uUlL")
	var v int64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseInt(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseInt(s, 10, 64)
	}
	if err != nil {
		return 0, false
	}
	return float64(v), true
}

// sizeofValue returns the byte size of the type named by a sizeof operand.
// Unknown types get 8 (the dominant double/pointer case in the kernels).
func sizeofValue(n *cast.Node) float64 {
	name := n.TypeName
	if name == "" {
		name = n.Name
	}
	switch {
	case strings.Contains(name, "*"):
		return 8
	case strings.Contains(name, "double"), strings.Contains(name, "long"), strings.Contains(name, "size_t"):
		return 8
	case strings.Contains(name, "float"), strings.Contains(name, "int"):
		return 4
	case strings.Contains(name, "short"):
		return 2
	case strings.Contains(name, "char"):
		return 1
	}
	return 8
}

// LoopInfo describes one for-loop's statically derived iteration behaviour.
type LoopInfo struct {
	Var   string  // loop counter name, "" when unrecognized
	Start float64 // initial counter value
	Bound float64 // loop bound from the condition
	Step  float64 // per-iteration counter delta (always positive magnitude)
	Trip  float64 // estimated iteration count
	Known bool    // whether Trip was derived (vs. defaulted)
}

// ForTrip derives the trip count of a ForStmt under env. When the loop does
// not match the canonical `for (i = a; i OP b; i±=s)` shapes, it returns
// Known=false with Trip=defaultTrip.
func ForTrip(fs *cast.Node, env Env, defaultTrip float64) LoopInfo {
	info := LoopInfo{Trip: defaultTrip}
	if fs == nil || fs.Kind != cast.KindForStmt {
		return info
	}
	init, cond, _, inc := fs.ForParts()
	if init == nil {
		return info
	}

	// Init: `int i = a` (DeclStmt>VarDecl with init) or `i = a`.
	var counter string
	var start float64
	var haveStart bool
	switch init.Kind {
	case cast.KindDeclStmt:
		if len(init.Children) == 1 && init.Children[0].Kind == cast.KindVarDecl &&
			len(init.Children[0].Children) == 1 {
			counter = init.Children[0].Name
			start, haveStart = Eval(init.Children[0].Children[0], env)
		}
	case cast.KindBinaryOperator:
		if init.Op == "=" && init.Children[0].Kind == cast.KindDeclRefExpr {
			counter = init.Children[0].Name
			start, haveStart = Eval(init.Children[1], env)
		}
	}
	if counter == "" || !haveStart {
		return info
	}
	info.Var = counter
	info.Start = start

	// Condition: `i OP bound` or `bound OP i`.
	if cond == nil || cond.Kind != cast.KindBinaryOperator {
		return info
	}
	lhsName := refName(cond.Children[0])
	rhsName := refName(cond.Children[1])
	var bound float64
	var haveBound bool
	op := cond.Op
	switch {
	case lhsName == counter:
		bound, haveBound = Eval(cond.Children[1], env)
	case rhsName == counter:
		bound, haveBound = Eval(cond.Children[0], env)
		op = flipCmp(op)
	}
	if !haveBound {
		return info
	}
	info.Bound = bound

	// Increment: i++/i--/i+=s/i-=s/i=i+s/i=i*s.
	step, increasing, ok := stepOf(inc, counter, env)
	if !ok || step == 0 {
		return info
	}
	info.Step = math.Abs(step)

	var trips float64
	switch op {
	case "<":
		trips = math.Ceil((bound - start) / math.Abs(step))
	case "<=":
		trips = math.Floor((bound-start)/math.Abs(step)) + 1
	case ">":
		trips = math.Ceil((start - bound) / math.Abs(step))
	case ">=":
		trips = math.Floor((start-bound)/math.Abs(step)) + 1
	case "!=":
		trips = math.Abs(bound-start) / math.Abs(step)
	default:
		return info
	}
	// Direction sanity: an increasing loop with a ">" bound never executes.
	if (op == "<" || op == "<=") && !increasing {
		trips = 0
	}
	if (op == ">" || op == ">=") && increasing {
		trips = 0
	}
	if trips < 0 {
		trips = 0
	}
	info.Trip = trips
	info.Known = true
	return info
}

func refName(n *cast.Node) string {
	for n != nil && (n.Kind == cast.KindImplicitCastExpr || n.Kind == cast.KindParenExpr) {
		if len(n.Children) != 1 {
			return ""
		}
		n = n.Children[0]
	}
	if n != nil && n.Kind == cast.KindDeclRefExpr {
		return n.Name
	}
	return ""
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	}
	return op
}

// stepOf extracts the counter step from the increment clause. The boolean
// results are (step magnitude sign-carrying, increasing?, recognized?).
func stepOf(inc *cast.Node, counter string, env Env) (float64, bool, bool) {
	if inc == nil {
		return 0, false, false
	}
	switch inc.Kind {
	case cast.KindUnaryOperator:
		if refName(inc.Children[0]) != counter {
			return 0, false, false
		}
		switch inc.Op {
		case "pre++", "post++":
			return 1, true, true
		case "pre--", "post--":
			return -1, false, true
		}
	case cast.KindCompoundAssignOperator:
		if refName(inc.Children[0]) != counter {
			return 0, false, false
		}
		s, ok := Eval(inc.Children[1], env)
		if !ok {
			return 0, false, false
		}
		switch inc.Op {
		case "+=":
			return s, s > 0, true
		case "-=":
			return -s, s < 0, true
		}
	case cast.KindBinaryOperator:
		// i = i + s or i = i - s.
		if inc.Op != "=" || refName(inc.Children[0]) != counter {
			return 0, false, false
		}
		rhs := inc.Children[1]
		for rhs.Kind == cast.KindImplicitCastExpr || rhs.Kind == cast.KindParenExpr {
			rhs = rhs.Children[0]
		}
		if rhs.Kind != cast.KindBinaryOperator {
			return 0, false, false
		}
		a, b := rhs.Children[0], rhs.Children[1]
		switch {
		case refName(a) == counter:
			s, ok := Eval(b, env)
			if !ok {
				return 0, false, false
			}
			if rhs.Op == "+" {
				return s, s > 0, true
			}
			if rhs.Op == "-" {
				return -s, s < 0, true
			}
		case refName(b) == counter && rhs.Op == "+":
			s, ok := Eval(a, env)
			if !ok {
				return 0, false, false
			}
			return s, s > 0, true
		}
	}
	return 0, false, false
}
