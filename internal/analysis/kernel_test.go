package analysis

import (
	"testing"

	"paragraph/internal/cast"
	"paragraph/internal/cparse"
)

func analyze(t *testing.T, src string, env Env) KernelCost {
	t.Helper()
	fn, err := cparse.ParseFunction(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return AnalyzeKernel(fn, env, 100)
}

func TestAnalyzeVectorAdd(t *testing.T) {
	kc := analyze(t, `
void vadd(double *a, double *b, double *c, int n) {
    for (int i = 0; i < n; i++) {
        c[i] = a[i] + b[i];
    }
}`, Env{"n": 1000})
	if kc.Flops != 1000 {
		t.Errorf("Flops = %v, want 1000", kc.Flops)
	}
	if kc.Loads != 2000 {
		t.Errorf("Loads = %v, want 2000", kc.Loads)
	}
	if kc.Stores != 1000 {
		t.Errorf("Stores = %v, want 1000", kc.Stores)
	}
	if kc.TotalIters != 1000 {
		t.Errorf("TotalIters = %v, want 1000", kc.TotalIters)
	}
	if kc.MaxLoopDepth != 1 {
		t.Errorf("MaxLoopDepth = %v, want 1", kc.MaxLoopDepth)
	}
	if kc.IsOffload {
		t.Error("plain loop should not be offload")
	}
}

func TestAnalyzeMatMulScaling(t *testing.T) {
	src := `
void mm(double *a, double *b, double *c, int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            double sum = 0.0;
            for (int k = 0; k < n; k++) {
                sum += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = sum;
        }
    }
}`
	small := analyze(t, src, Env{"n": 10})
	big := analyze(t, src, Env{"n": 20})
	// Flops scale as n^3: doubling n gives 8x.
	if ratio := big.Flops / small.Flops; ratio < 7.5 || ratio > 8.5 {
		t.Errorf("flop scaling ratio = %v, want ~8", ratio)
	}
	if small.MaxLoopDepth != 3 {
		t.Errorf("depth = %d, want 3", small.MaxLoopDepth)
	}
	// Two flops per inner iteration: multiply and add (+=).
	if small.Flops != 2*10*10*10 {
		t.Errorf("Flops = %v, want 2000", small.Flops)
	}
}

func TestAnalyzeOffloadDirective(t *testing.T) {
	kc := analyze(t, `
void k(double *a, int n) {
    #pragma omp target teams distribute parallel for map(tofrom: a[0:n])
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * 2.0;
    }
}`, Env{"n": 512})
	if !kc.IsOffload {
		t.Error("IsOffload = false")
	}
	// map(tofrom:) crosses the link twice: 2 × 8 bytes × 512 elements.
	if kc.TransferBytes != 2*8*512 {
		t.Errorf("TransferBytes = %v, want %v", kc.TransferBytes, 2*8*512)
	}
	if kc.MappedArrays != 1 {
		t.Errorf("MappedArrays = %v, want 1", kc.MappedArrays)
	}
	if kc.ParallelIters != 512 {
		t.Errorf("ParallelIters = %v, want 512", kc.ParallelIters)
	}
	if kc.CollapseDepth != 1 {
		t.Errorf("CollapseDepth = %v, want 1", kc.CollapseDepth)
	}
}

func TestAnalyzeCollapseParallelIters(t *testing.T) {
	kc := analyze(t, `
void k(double *a, int n, int m) {
    #pragma omp target teams distribute parallel for collapse(2)
    for (int i = 0; i < n; i++)
        for (int j = 0; j < m; j++)
            a[i * m + j] = 1.0;
}`, Env{"n": 100, "m": 50})
	if kc.ParallelIters != 5000 {
		t.Errorf("ParallelIters = %v, want 5000", kc.ParallelIters)
	}
	if kc.CollapseDepth != 2 {
		t.Errorf("CollapseDepth = %v, want 2", kc.CollapseDepth)
	}
}

func TestAnalyzeBranchHalving(t *testing.T) {
	kc := analyze(t, `
void k(double *a, int n) {
    for (int i = 0; i < n; i++) {
        if (a[i] > 0.0) {
            a[i] = a[i] * 2.0;
        } else {
            a[i] = 0.0;
        }
    }
}`, Env{"n": 100})
	if kc.Branches != 100 {
		t.Errorf("Branches = %v, want 100", kc.Branches)
	}
	// Then branch: 1 flop * 100/2 = 50 mults.
	if kc.Flops < 149 || kc.Flops > 151 {
		// comparison a[i] > 0.0 is also a flop: 100 + 50 = 150.
		t.Errorf("Flops = %v, want 150", kc.Flops)
	}
}

func TestAnalyzeMathCalls(t *testing.T) {
	kc := analyze(t, `
void k(double *a, int n) {
    for (int i = 0; i < n; i++) {
        a[i] = sqrt(a[i]) + exp(a[i]);
    }
}`, Env{"n": 10})
	if kc.Calls != 20 {
		t.Errorf("Calls = %v, want 20", kc.Calls)
	}
	if kc.MathCalls != 20 {
		t.Errorf("MathCalls = %v, want 20", kc.MathCalls)
	}
}

func TestAnalyzeReduction(t *testing.T) {
	kc := analyze(t, `
void k(double *a, int n, double s) {
    #pragma omp parallel for reduction(+: s)
    for (int i = 0; i < n; i++) {
        s += a[i];
    }
}`, Env{"n": 10})
	if kc.ReductionOps != 1 {
		t.Errorf("ReductionOps = %v, want 1", kc.ReductionOps)
	}
	if kc.IsOffload {
		t.Error("parallel for is not offload")
	}
}

func TestAnalyzeIntVsFloatOps(t *testing.T) {
	kc := analyze(t, `
void k(int *p, int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc + i;
    }
}`, Env{"n": 10})
	if kc.Flops != 0 {
		t.Errorf("Flops = %v, want 0 for integer kernel", kc.Flops)
	}
	if kc.IntOps < 10 {
		t.Errorf("IntOps = %v, want >= 10", kc.IntOps)
	}
}

func TestAnalyzeWhileUsesDefaultTrip(t *testing.T) {
	fn, err := cparse.ParseFunction(`
void k(double *a, int n) {
    int i = 0;
    while (i < n) {
        a[i] = 0.0;
        i++;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	kc := AnalyzeKernel(fn, nil, 42)
	if kc.Stores != 42 {
		t.Errorf("Stores = %v, want 42 (defaultTrip)", kc.Stores)
	}
	if kc.TotalIters != 42 {
		t.Errorf("TotalIters = %v, want 42", kc.TotalIters)
	}
}

func TestAnalyzeNilAndEmpty(t *testing.T) {
	kc := AnalyzeKernel(nil, nil, 10)
	if kc.Flops != 0 || kc.CollapseDepth != 1 {
		t.Errorf("nil kernel cost = %+v", kc)
	}
	fn, err := cparse.ParseFunction(`void empty(void) {}`)
	if err != nil {
		t.Fatal(err)
	}
	kc = AnalyzeKernel(fn, nil, 10)
	if kc.Flops != 0 || kc.Loads != 0 {
		t.Errorf("empty kernel cost = %+v", kc)
	}
}

func TestAnalyzeBareStatementTree(t *testing.T) {
	root, err := cparse.Parse(`void f(double *a) { a[0] = 1.0; }`)
	if err != nil {
		t.Fatal(err)
	}
	body := cast.FindFunction(root, "f").Body()
	kc := AnalyzeKernel(body, nil, 10)
	if kc.Stores != 1 {
		t.Errorf("Stores = %v, want 1", kc.Stores)
	}
}
