package admit

import (
	"sync"
	"time"
)

// JobState is an async job's lifecycle phase.
type JobState string

const (
	JobPending JobState = "pending" // submitted, not yet picked up
	JobRunning JobState = "running" // evaluation in progress
	JobDone    JobState = "done"    // finished, Result set
	JobFailed  JobState = "failed"  // finished, Error set
)

// Job is one async evaluation's record. Snapshots returned by Get are
// copies; Result is shared but treated as immutable once set.
type Job struct {
	ID       string
	State    JobState
	Created  time.Time
	Started  time.Time // zero until running
	Finished time.Time // zero until done/failed
	Error    string
	Result   any
}

// Store is a bounded, TTL-evicted job store backing the async advise
// path. Submit sheds with ReasonJobsFull at capacity (clients get an
// honest 503 instead of an unbounded backlog); finished jobs are garbage
// collected TTL after completion, by a background sweeper and lazily on
// Submit so a full store of expired jobs never wedges admission. Safe for
// concurrent use.
type Store struct {
	mu   sync.Mutex
	max  int
	ttl  time.Duration
	jobs map[string]*Job

	submitted uint64
	rejected  uint64
	expired   uint64

	quit      chan struct{}
	closeOnce sync.Once
	now       func() time.Time // test hook
}

// NewStore returns a store holding at most max jobs, evicting finished
// ones ttl after completion. max <= 0 defaults to 256; ttl <= 0 to 10
// minutes. Close releases the background sweeper.
func NewStore(max int, ttl time.Duration) *Store {
	if max <= 0 {
		max = 256
	}
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	st := &Store{
		max:  max,
		ttl:  ttl,
		jobs: map[string]*Job{},
		quit: make(chan struct{}),
		now:  time.Now,
	}
	every := ttl / 4
	if every < time.Second {
		every = time.Second
	}
	go st.sweep(every)
	return st
}

// Capacity reports the job bound; TTL the finished-job retention.
func (st *Store) Capacity() int      { return st.max }
func (st *Store) TTL() time.Duration { return st.ttl }

// Submit registers a new pending job and returns its id, or a *ShedError
// (ReasonJobsFull) when the store is at capacity even after evicting
// expired jobs.
func (st *Store) Submit() (string, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.jobs) >= st.max {
		st.gcLocked()
	}
	if len(st.jobs) >= st.max {
		st.rejected++
		return "", &ShedError{Reason: ReasonJobsFull, RetryAfter: st.ttl}
	}
	id := newID()
	for st.jobs[id] != nil { // vanishing collision odds, but ids must be unique
		id = newID()
	}
	st.jobs[id] = &Job{ID: id, State: JobPending, Created: st.now()}
	st.submitted++
	return id, nil
}

// Start marks a pending job running. It reports whether the job existed.
func (st *Store) Start(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return false
	}
	if j.State == JobPending {
		j.State = JobRunning
		j.Started = st.now()
	}
	return true
}

// Finish completes a job: with err nil it becomes done carrying result,
// otherwise failed carrying the error text. It reports whether the job
// existed (it may have been evicted under a very short TTL).
func (st *Store) Finish(id string, result any, err error) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return false
	}
	j.Finished = st.now()
	if err != nil {
		j.State = JobFailed
		j.Error = err.Error()
		j.Result = nil
	} else {
		j.State = JobDone
		j.Result = result
	}
	return true
}

// Get returns a snapshot of the job. The boolean is false for unknown or
// already-evicted ids.
func (st *Store) Get(id string) (Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// gcLocked evicts finished jobs whose TTL elapsed.
func (st *Store) gcLocked() {
	cutoff := st.now().Add(-st.ttl)
	for id, j := range st.jobs {
		if (j.State == JobDone || j.State == JobFailed) && j.Finished.Before(cutoff) {
			delete(st.jobs, id)
			st.expired++
		}
	}
}

// sweep is the background GC loop.
func (st *Store) sweep(every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-st.quit:
			return
		case <-tick.C:
			st.mu.Lock()
			st.gcLocked()
			st.mu.Unlock()
		}
	}
}

// Close stops the background sweeper. Idempotent; the store stays usable
// (GC continues lazily on Submit).
func (st *Store) Close() {
	st.closeOnce.Do(func() { close(st.quit) })
}

// StoreStats is the job store's /v1/stats section.
type StoreStats struct {
	Capacity   int     `json:"capacity"`
	TTLSeconds float64 `json:"ttl_seconds"`
	Pending    int     `json:"pending"`
	Running    int     `json:"running"`
	Done       int     `json:"done"`
	Failed     int     `json:"failed"`
	Submitted  uint64  `json:"submitted"`
	Rejected   uint64  `json:"rejected"`
	Expired    uint64  `json:"expired"`
}

// Stats snapshots the store's occupancy by state and cumulative counters.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := StoreStats{
		Capacity:   st.max,
		TTLSeconds: st.ttl.Seconds(),
		Submitted:  st.submitted,
		Rejected:   st.rejected,
		Expired:    st.expired,
	}
	for _, j := range st.jobs {
		switch j.State {
		case JobPending:
			s.Pending++
		case JobRunning:
			s.Running++
		case JobDone:
			s.Done++
		case JobFailed:
			s.Failed++
		}
	}
	return s
}
