package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// clientTotal sums one client's cumulative admissions and sheds plus its
// live lane depth — a monotone-under-dispatch progress measure used to
// detect when a submission has registered with the queue.
func clientTotal(q *Queue, client string) uint64 {
	st := q.Stats()
	var total uint64
	for _, c := range st.Clients {
		if c.Client == client {
			total += c.Admitted + c.Shed
		}
	}
	for _, l := range st.LaneStats {
		if l.Client == client {
			total += uint64(l.Queued)
		}
	}
	return total
}

// FuzzQueue interprets the fuzz input as a program over a small Queue:
// each byte encodes an operation (enqueue for one of 8 clients, cancel a
// pending waiter, release capacity by letting work finish). After the
// program runs and the queue drains, the scheduler's invariants must
// hold: bounds were respected, FIFO order within every lane, accounting
// balances, and nothing is left queued or running.
func FuzzQueue(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 9, 17, 3})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 15, 15})
	f.Add([]byte{0, 8, 16, 24, 32, 40, 48, 56, 1, 9, 17, 25})
	f.Add([]byte("adversarial arrivals"))

	f.Fuzz(func(t *testing.T, program []byte) {
		// Concurrency 1 so execution order observed inside fn equals
		// dispatch order — with more slots, two concurrently-granted
		// waiters would race to record and FIFO would be unobservable.
		const (
			concurrency  = 1
			maxQueued    = 8
			maxPerClient = 3
		)
		q := NewQueue(QueueConfig{
			Concurrency:  concurrency,
			MaxQueued:    maxQueued,
			MaxPerClient: maxPerClient,
			Weight: func(client string) int {
				return 1 + int(client[len(client)-1]-'0')%3
			},
		})

		// Admitted work blocks on gate until the program releases it, so
		// the fuzzer controls when capacity frees up.
		gate := make(chan struct{}, len(program)+8)
		var mu sync.Mutex
		granted := map[string][]int{} // client -> seq numbers in grant order
		seq := map[string]int{}
		var cancels []context.CancelFunc
		var wg sync.WaitGroup
		var expectDone int

		enqueue := func(client string, cancellable bool) {
			mu.Lock()
			n := seq[client]
			seq[client]++
			mu.Unlock()
			ctx := context.Background()
			var cancel context.CancelFunc
			if cancellable {
				ctx, cancel = context.WithCancel(ctx)
				mu.Lock()
				cancels = append(cancels, cancel)
				mu.Unlock()
			}
			before := clientTotal(q, client)
			wg.Add(1)
			expectDone++
			go func() {
				defer wg.Done()
				err := q.Run(ctx, client, func() error {
					mu.Lock()
					granted[client] = append(granted[client], n)
					mu.Unlock()
					<-gate
					return nil
				})
				var shed *ShedError
				if err != nil && !errors.As(err, &shed) && !errors.Is(err, context.Canceled) {
					t.Errorf("unexpected Run error: %v", err)
				}
			}()
			// Wait until this submission registered (admitted, queued, or
			// shed) so the program's op order is the queue's arrival order.
			// The per-client total is immune to concurrent async activity:
			// dispatch moves queued -> admitted (sum unchanged) and only a
			// new submission of the same client — ours — increments it. A
			// racing cancel can mask the increment, so a timeout backstops
			// the loop; by then the waiter is registered or gone either way.
			deadline := time.Now().Add(2 * time.Second)
			for clientTotal(q, client) <= before && !time.Now().After(deadline) {
				time.Sleep(20 * time.Microsecond)
			}
		}

		for _, op := range program {
			switch {
			case op < 64: // enqueue, client = op%8, cancellable on high bit of mid nibble
				enqueue(fmt.Sprintf("c%d", op%8), op&0x20 != 0)
			case op < 96: // cancel the oldest still-pending cancel handle
				mu.Lock()
				if len(cancels) > 0 {
					cancels[0]()
					cancels = cancels[1:]
				}
				mu.Unlock()
			default: // let one admitted unit of work finish
				gate <- struct{}{}
			}
			if st := q.Stats(); st.Queued > maxQueued {
				t.Fatalf("queued %d exceeded bound %d mid-program", st.Queued, maxQueued)
			}
		}

		// Drain: release everything, cancel leftovers, wait with a deadlock
		// budget.
		for i := 0; i < expectDone+8; i++ {
			gate <- struct{}{}
		}
		mu.Lock()
		for _, c := range cancels {
			c()
		}
		mu.Unlock()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatal("queue failed to drain: waiter stranded or dispatcher deadlocked")
		}

		st := q.Stats()
		if st.Queued != 0 || st.Running != 0 || st.Lanes != 0 {
			t.Errorf("after drain: queued %d running %d lanes %d, want all 0", st.Queued, st.Running, st.Lanes)
		}
		if st.PeakQueued > maxQueued {
			t.Errorf("peak queued %d exceeded bound %d", st.PeakQueued, maxQueued)
		}
		// FIFO within each lane: grant order must be a subsequence-ordered
		// (strictly increasing) view of submission order, cancellations
		// only ever removing elements.
		mu.Lock()
		defer mu.Unlock()
		var ran uint64
		for client, grants := range granted {
			ran += uint64(len(grants))
			for i := 1; i < len(grants); i++ {
				if grants[i] <= grants[i-1] {
					t.Errorf("lane %s violated FIFO: grant order %v", client, grants)
					break
				}
			}
		}
		// Accounting: every admission either ran or was cancelled between
		// dispatch and fn; admitted can exceed ran but never the reverse.
		if ran > st.Admitted {
			t.Errorf("%d executions exceed %d admissions", ran, st.Admitted)
		}
	})
}
