// Package admit is the serving tier's overload-robustness layer: the
// policy pieces that decide, before any expensive evaluation starts,
// whether a request should run now, wait its turn, or be rejected while
// the server is still healthy enough to say so.
//
// Three cooperating pieces:
//
//   - Queue (queue.go): per-client weighted fair queueing in front of the
//     evaluation pool. Each client gets a FIFO lane; a deficit-round-robin
//     dispatcher cycles the lanes, so one bulk client saturating the
//     server cannot starve interactive traffic. Totals and per-lane depth
//     are bounded; requests beyond the bounds are shed immediately.
//
//   - Deadline shedding (this file): a request carrying a deadline — the
//     X-Paragraph-Deadline header or a context deadline — is rejected up
//     front with a ShedError when the predicted queue-drain time exceeds
//     its remaining budget. The caller estimates drain from live latency
//     histograms (EstimateDrain); the shed response carries a Retry-After
//     hint so well-behaved clients back off instead of hammering.
//
//   - Store (jobs.go): a bounded, TTL-evicted async job store backing the
//     POST /v1/advise?async=1 path, so very large grids return a job id
//     immediately instead of holding a connection through minutes of
//     evaluation.
//
// The package is policy only — it never touches HTTP or the model — so
// the scheduler is property-testable in isolation (queue_test.go,
// queue_fuzz_test.go) and internal/serve stays the single place that maps
// ShedError to 503 + Retry-After.
package admit

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"
)

// ClientHeader names the request's client for fair queueing. Absent, the
// serving layer falls back to the remote address, so unlabeled traffic
// still gets per-source lanes.
const ClientHeader = "X-Paragraph-Client"

// DeadlineHeader carries the request's latency budget as a Go duration
// string ("250ms", "2s"). The serving layer turns it into a context
// deadline, sheds up front when the backlog cannot drain in time, and
// re-propagates the remaining budget on cluster forwards.
const DeadlineHeader = "X-Paragraph-Deadline"

// Reason classifies why a request was shed; it is the `reason` label of
// the serve_shed_total metric.
type Reason string

const (
	// ReasonQueueFull: the fair queue's total waiter bound was reached.
	ReasonQueueFull Reason = "queue_full"
	// ReasonLaneFull: the client's own lane was at its depth bound.
	ReasonLaneFull Reason = "lane_full"
	// ReasonDeadline: the predicted backlog drain exceeded the request's
	// remaining deadline budget, so running it would only waste capacity.
	ReasonDeadline Reason = "deadline"
	// ReasonExpired: the deadline had already passed (or the context was
	// cancelled) before or during the queue wait.
	ReasonExpired Reason = "expired"
	// ReasonJobsFull: the async job store was at capacity.
	ReasonJobsFull Reason = "jobs_full"
)

// Reasons lists every shed reason, in stable order, so the metrics layer
// can pre-register the full serve_shed_total family.
func Reasons() []Reason {
	return []Reason{ReasonQueueFull, ReasonLaneFull, ReasonDeadline, ReasonExpired, ReasonJobsFull}
}

// ShedError is a load-shedding rejection. The serving layer maps it to
// 503 Service Unavailable with a Retry-After header.
type ShedError struct {
	Reason Reason
	// RetryAfter is the suggested back-off: roughly when the condition
	// that caused the shed is predicted to clear. Zero means the thrower
	// had no estimate; the server substitutes its own before responding.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admit: shed (%s), retry after %s", e.Reason, e.RetryAfter)
}

// ParseDeadline parses a DeadlineHeader value: a positive Go duration.
func ParseDeadline(h string) (time.Duration, error) {
	d, err := time.ParseDuration(h)
	if err != nil {
		return 0, fmt.Errorf("admit: bad deadline %q: want a Go duration like \"250ms\"", h)
	}
	if d <= 0 {
		return 0, fmt.Errorf("admit: bad deadline %q: must be positive", h)
	}
	return d, nil
}

// FormatDeadline renders a remaining budget for DeadlineHeader. The
// output round-trips through ParseDeadline.
func FormatDeadline(d time.Duration) string { return d.String() }

// EstimateDrain predicts how long until a request admitted now finishes:
// the backlog ahead of it (queued waiters plus evaluations already
// running) drained `concurrency` at a time, plus one wave for the request
// itself, each wave costing `unit` — the caller's live per-evaluation
// cost estimate. A non-positive unit (no latency data yet) estimates
// zero: with nothing measured, admission never sheds on a guess.
func EstimateDrain(backlog, concurrency int, unit time.Duration) time.Duration {
	if unit <= 0 || backlog < 0 {
		return 0
	}
	if concurrency < 1 {
		concurrency = 1
	}
	waves := backlog/concurrency + 1
	return time.Duration(waves) * unit
}

// CheckDeadline decides whether a request with `remaining` budget should
// be admitted given a `drain` estimate. remaining <= 0 means the deadline
// already passed (ReasonExpired); drain beyond the budget sheds with
// ReasonDeadline and a Retry-After covering the excess — by then enough
// backlog will have drained that an identical retry fits its budget.
// A nil return admits.
func CheckDeadline(remaining, drain time.Duration) *ShedError {
	if remaining <= 0 {
		return &ShedError{Reason: ReasonExpired, RetryAfter: drain}
	}
	if drain > remaining {
		return &ShedError{Reason: ReasonDeadline, RetryAfter: drain - remaining}
	}
	return nil
}

// RetryAfterSeconds renders a back-off as whole Retry-After seconds:
// rounded up, never below 1 (a zero Retry-After would invite an
// immediate, equally doomed retry).
func RetryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// newID returns a random 96-bit hex id (job ids).
func newID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to
		// a time-derived id rather than take the serving path down.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
