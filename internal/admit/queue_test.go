package admit

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// collectOrder drives the queue with one worker slot and records the
// order in which waiters are granted.
type orderRecorder struct {
	mu    sync.Mutex
	order []string
}

func (r *orderRecorder) note(tag string) {
	r.mu.Lock()
	r.order = append(r.order, tag)
	r.mu.Unlock()
}

func (r *orderRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// TestQueueFIFOWithinLane: one client's requests must be granted in
// submission order, whatever the concurrency.
func TestQueueFIFOWithinLane(t *testing.T) {
	q := NewQueue(QueueConfig{Concurrency: 1})
	rec := &orderRecorder{}

	// Occupy the only slot so every submission below must queue.
	if err := q.Acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Serialize enqueue order: each goroutine signals once its
			// Acquire is registered as a waiter.
			if err := q.Run(context.Background(), "alice", func() error {
				rec.note(fmt.Sprintf("alice-%d", i))
				return nil
			}); err != nil {
				t.Errorf("alice-%d: %v", i, err)
			}
		}()
		// Wait until the waiter is queued before launching the next, so
		// submission order is deterministic.
		waitForQueued(t, q, i+1)
	}
	q.Release() // free the held slot; the lane drains in order
	wg.Wait()

	got := rec.snapshot()
	for i, tag := range got {
		if want := fmt.Sprintf("alice-%d", i); tag != want {
			t.Fatalf("lane order[%d] = %s, want %s (full order %v)", i, tag, want, got)
		}
	}
}

// waitForQueued spins until the queue holds exactly n waiters.
func waitForQueued(t *testing.T, q *Queue, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Queued != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters (at %d)", n, q.Stats().Queued)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestQueueRoundRobinNoStarvation: with a bulk client flooding the queue,
// an interactive client's lone request must be granted within one
// round-robin cycle — not after the whole bulk backlog.
func TestQueueRoundRobinNoStarvation(t *testing.T) {
	q := NewQueue(QueueConfig{Concurrency: 1})
	rec := &orderRecorder{}

	if err := q.Acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	const bulk = 20
	for i := 0; i < bulk; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = q.Run(context.Background(), "bulk", func() error {
				rec.note(fmt.Sprintf("bulk-%d", i))
				return nil
			})
		}()
		waitForQueued(t, q, i+1)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = q.Run(context.Background(), "interactive", func() error {
			rec.note("interactive")
			return nil
		})
	}()
	waitForQueued(t, q, bulk+1)

	q.Release()
	wg.Wait()

	got := rec.snapshot()
	pos := -1
	for i, tag := range got {
		if tag == "interactive" {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("interactive request never ran")
	}
	// Round-robin across two lanes: the interactive request is granted
	// first or second, never behind the 20-deep bulk lane.
	if pos > 1 {
		t.Errorf("interactive request ran at position %d of %d, want <= 1 (starved by bulk lane)", pos, len(got))
	}
}

// TestQueueWeightedShares: a client with weight 3 should receive ~3x the
// dispatches of a weight-1 client while both lanes stay saturated.
func TestQueueWeightedShares(t *testing.T) {
	q := NewQueue(QueueConfig{
		Concurrency: 1,
		Weight: func(client string) int {
			if client == "heavy" {
				return 3
			}
			return 1
		},
	})
	rec := &orderRecorder{}
	if err := q.Acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	enqueue := func(client string, n int) {
		for i := 0; i < n; i++ {
			i := i
			before := q.Stats().Queued
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = q.Run(context.Background(), client, func() error {
					rec.note(fmt.Sprintf("%s-%d", client, i))
					return nil
				})
			}()
			waitForQueued(t, q, before+1)
		}
	}
	enqueue("heavy", 9)
	enqueue("light", 3)

	q.Release()
	wg.Wait()

	// In the first 8 grants the 3:1 credit split must show: heavy gets
	// 6, light 2 (two full DRR cycles).
	got := rec.snapshot()[:8]
	heavy := 0
	for _, tag := range got {
		if tag[:5] == "heavy" {
			heavy++
		}
	}
	if heavy != 6 {
		t.Errorf("heavy got %d of first 8 grants, want 6 (weighted 3:1): %v", heavy, got)
	}
}

// TestQueueShedsAtBounds: total and per-lane bounds shed immediately with
// the right reasons, and other clients keep queueing past a full lane.
func TestQueueShedsAtBounds(t *testing.T) {
	q := NewQueue(QueueConfig{Concurrency: 1, MaxQueued: 4, MaxPerClient: 2})
	if err := q.Acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	// Two bulk waiters fill bulk's lane.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = q.Run(context.Background(), "bulk", func() error { return nil })
		}()
		waitForQueued(t, q, i+1)
	}
	var shed *ShedError
	if err := q.Acquire(context.Background(), "bulk"); !errors.As(err, &shed) || shed.Reason != ReasonLaneFull {
		t.Fatalf("third bulk acquire = %v, want ShedError(lane_full)", err)
	}
	// Another client still queues.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = q.Run(context.Background(), "other", func() error { return nil })
		}()
		waitForQueued(t, q, 3+i)
	}
	// Total bound reached: even a fresh client sheds queue_full.
	if err := q.Acquire(context.Background(), "fresh"); !errors.As(err, &shed) || shed.Reason != ReasonQueueFull {
		t.Fatalf("acquire past MaxQueued = %v, want ShedError(queue_full)", err)
	}
	st := q.Stats()
	if st.ShedLaneFull != 1 || st.ShedQueueFull != 1 {
		t.Errorf("shed counters = lane %d queue %d, want 1/1", st.ShedLaneFull, st.ShedQueueFull)
	}
	q.Release() // free holder so the waiters drain
	wg.Wait()
}

// TestQueueCancelUnlinksWaiter: a waiter whose context ends leaves the
// queue (no slot held, lane cleaned up) and returns the context error.
func TestQueueCancelUnlinksWaiter(t *testing.T) {
	q := NewQueue(QueueConfig{Concurrency: 1})
	if err := q.Acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- q.Acquire(ctx, "impatient") }()
	waitForQueued(t, q, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	st := q.Stats()
	if st.Queued != 0 || st.Lanes != 0 {
		t.Errorf("after cancel: queued %d lanes %d, want 0/0 (waiter must unlink)", st.Queued, st.Lanes)
	}
	q.Release()
	// The queue must still grant slots normally afterwards.
	if err := q.Run(context.Background(), "impatient", func() error { return nil }); err != nil {
		t.Fatalf("post-cancel run: %v", err)
	}
}

// TestQueueBoundedMemoryUnderLaneChurn: thousands of one-shot clients
// must not leave lanes or unbounded per-client state behind.
func TestQueueBoundedMemoryUnderLaneChurn(t *testing.T) {
	q := NewQueue(QueueConfig{Concurrency: 2, MaxQueued: 64})
	var wg sync.WaitGroup
	for i := 0; i < 2000; i++ {
		wg.Add(1)
		client := fmt.Sprintf("client-%d", i)
		go func() {
			defer wg.Done()
			_ = q.Run(context.Background(), client, func() error { return nil })
		}()
		if i%64 == 0 {
			wg.Wait() // periodic drain keeps the queue under MaxQueued
		}
	}
	wg.Wait()
	st := q.Stats()
	if st.Queued != 0 || st.Lanes != 0 || st.Running != 0 {
		t.Errorf("after churn: queued %d lanes %d running %d, want all 0", st.Queued, st.Lanes, st.Running)
	}
	// Cumulative per-client counters are bounded: 2000 distinct clients
	// fold into at most maxTrackedClients + the overflow bucket.
	if n := len(st.Clients); n > maxTrackedClients+1 {
		t.Errorf("tracked clients = %d, want <= %d (bounded-memory invariant)", n, maxTrackedClients+1)
	}
	var overflow bool
	var total uint64
	for _, c := range st.Clients {
		total += c.Admitted
		if c.Client == overflowClient {
			overflow = true
		}
	}
	if !overflow {
		t.Error("overflow bucket missing after exceeding the tracking bound")
	}
	if total != st.Admitted || st.Admitted != 2000 {
		t.Errorf("admitted = %d (per-client sum %d), want 2000", st.Admitted, total)
	}
}

// TestQueueAdversarialArrivals is a quick-style invariant check: random
// bursts from a skewed client population, random cancellations, and
// assertions that the scheduler neither exceeds its bounds nor strands
// waiters. Runs several seeded trials.
func TestQueueAdversarialArrivals(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			conc := 1 + rng.Intn(4)
			q := NewQueue(QueueConfig{Concurrency: conc, MaxQueued: 16, MaxPerClient: 8})

			var mu sync.Mutex
			maxRunning := 0
			running := 0
			var wg sync.WaitGroup
			for i := 0; i < 300; i++ {
				client := fmt.Sprintf("c%d", rng.Intn(1+rng.Intn(6))) // skewed population
				withCancel := rng.Intn(4) == 0
				// rng is not goroutine-safe: draw the timeout here, not
				// inside the worker.
				timeout := time.Duration(1 + rng.Int63n(int64(200*time.Microsecond)))
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx := context.Background()
					if withCancel {
						var cancel context.CancelFunc
						ctx, cancel = context.WithTimeout(ctx, timeout)
						defer cancel()
					}
					_ = q.Run(ctx, client, func() error {
						mu.Lock()
						running++
						if running > maxRunning {
							maxRunning = running
						}
						mu.Unlock()
						time.Sleep(50 * time.Microsecond)
						mu.Lock()
						running--
						mu.Unlock()
						return nil
					})
				}()
				if rng.Intn(8) == 0 {
					time.Sleep(time.Duration(rng.Int63n(int64(100 * time.Microsecond))))
				}
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("scheduler deadlocked under adversarial arrivals")
			}
			if maxRunning > conc {
				t.Errorf("observed %d concurrent runs, bound is %d", maxRunning, conc)
			}
			st := q.Stats()
			if st.Queued != 0 || st.Running != 0 || st.Lanes != 0 {
				t.Errorf("after drain: queued %d running %d lanes %d, want all 0", st.Queued, st.Running, st.Lanes)
			}
			if st.PeakQueued > 16 {
				t.Errorf("peak queued %d exceeded MaxQueued 16", st.PeakQueued)
			}
		})
	}
}
