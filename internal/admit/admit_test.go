package admit

import (
	"testing"
	"time"
)

func TestParseDeadline(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"250ms", 250 * time.Millisecond, true},
		{"2s", 2 * time.Second, true},
		{"1m30s", 90 * time.Second, true},
		{"", 0, false},
		{"soon", 0, false},
		{"-1s", 0, false},
		{"0s", 0, false},
	} {
		got, err := ParseDeadline(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseDeadline(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseDeadline(%q) accepted, want error", tc.in)
		}
	}
}

func TestFormatDeadlineRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{time.Millisecond, 250 * time.Millisecond, 90 * time.Second} {
		got, err := ParseDeadline(FormatDeadline(d))
		if err != nil || got != d {
			t.Errorf("round trip %v -> %q -> %v, %v", d, FormatDeadline(d), got, err)
		}
	}
}

func TestEstimateDrain(t *testing.T) {
	unit := 100 * time.Millisecond
	for _, tc := range []struct {
		backlog, conc int
		unit          time.Duration
		want          time.Duration
	}{
		{0, 4, unit, unit},                   // empty queue still costs one wave
		{4, 4, unit, 2 * unit},               // one full wave ahead, then ours
		{10, 4, unit, 3 * unit},              // 10/4 = 2 waves ahead
		{10, 0, unit, 11 * unit},             // degenerate concurrency clamps to 1
		{10, 4, 0, 0},                        // no latency data: never shed on a guess
		{-3, 4, unit, 0},                     // defensive: negative backlog
		{3, 1, time.Second, 4 * time.Second}, // serial drain
	} {
		got := EstimateDrain(tc.backlog, tc.conc, tc.unit)
		if got != tc.want {
			t.Errorf("EstimateDrain(%d, %d, %v) = %v, want %v", tc.backlog, tc.conc, tc.unit, got, tc.want)
		}
	}
}

func TestCheckDeadline(t *testing.T) {
	// Budget comfortably above drain: admit.
	if shed := CheckDeadline(time.Second, 100*time.Millisecond); shed != nil {
		t.Errorf("roomy budget shed: %v", shed)
	}
	// Exactly equal: admit (drain is an estimate, not a guarantee).
	if shed := CheckDeadline(time.Second, time.Second); shed != nil {
		t.Errorf("equal budget shed: %v", shed)
	}
	// Drain exceeds budget: shed with Retry-After covering the excess.
	shed := CheckDeadline(100*time.Millisecond, 350*time.Millisecond)
	if shed == nil || shed.Reason != ReasonDeadline || shed.RetryAfter != 250*time.Millisecond {
		t.Errorf("overloaded = %+v, want deadline shed with 250ms retry", shed)
	}
	// Already expired.
	shed = CheckDeadline(0, 500*time.Millisecond)
	if shed == nil || shed.Reason != ReasonExpired || shed.RetryAfter != 500*time.Millisecond {
		t.Errorf("expired = %+v, want expired shed carrying drain", shed)
	}
	if shed = CheckDeadline(-time.Second, 0); shed == nil || shed.Reason != ReasonExpired {
		t.Errorf("negative budget = %+v, want expired", shed)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		in   time.Duration
		want int
	}{
		{0, 1},                       // never invite an instant retry
		{-time.Second, 1},            // defensive
		{time.Millisecond, 1},        // rounds up
		{time.Second, 1},             // exact
		{1100 * time.Millisecond, 2}, // rounds up, not down
	} {
		if got := RetryAfterSeconds(tc.in); got != tc.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestShedErrorMessage(t *testing.T) {
	e := &ShedError{Reason: ReasonQueueFull, RetryAfter: 2 * time.Second}
	if got := e.Error(); got != "admit: shed (queue_full), retry after 2s" {
		t.Errorf("Error() = %q", got)
	}
}

func TestReasonsCoversAll(t *testing.T) {
	rs := Reasons()
	want := map[Reason]bool{
		ReasonQueueFull: true, ReasonLaneFull: true, ReasonDeadline: true,
		ReasonExpired: true, ReasonJobsFull: true,
	}
	if len(rs) != len(want) {
		t.Fatalf("Reasons() has %d entries, want %d", len(rs), len(want))
	}
	for _, r := range rs {
		if !want[r] {
			t.Errorf("unexpected reason %q", r)
		}
	}
}
