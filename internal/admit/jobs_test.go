package admit

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestJobLifecycle(t *testing.T) {
	st := NewStore(4, time.Minute)
	defer st.Close()

	id, err := st.Submit()
	if err != nil {
		t.Fatal(err)
	}
	j, ok := st.Get(id)
	if !ok || j.State != JobPending || j.Created.IsZero() {
		t.Fatalf("after submit: %+v ok=%v, want pending with Created set", j, ok)
	}
	if !st.Start(id) {
		t.Fatal("Start: job vanished")
	}
	if j, _ = st.Get(id); j.State != JobRunning || j.Started.IsZero() {
		t.Fatalf("after start: %+v, want running with Started set", j)
	}
	if !st.Finish(id, map[string]int{"answer": 42}, nil) {
		t.Fatal("Finish: job vanished")
	}
	j, _ = st.Get(id)
	if j.State != JobDone || j.Finished.IsZero() || j.Error != "" {
		t.Fatalf("after finish: %+v, want done", j)
	}
	if m, ok := j.Result.(map[string]int); !ok || m["answer"] != 42 {
		t.Fatalf("result = %#v, want the stored map", j.Result)
	}

	// Failure path replaces any result with the error text.
	id2, _ := st.Submit()
	st.Start(id2)
	st.Finish(id2, "partial", errors.New("boom"))
	if j, _ = st.Get(id2); j.State != JobFailed || j.Error != "boom" || j.Result != nil {
		t.Fatalf("failed job = %+v, want failed/boom/nil result", j)
	}

	if _, ok = st.Get("nope"); ok {
		t.Error("Get(unknown) reported a job")
	}

	s := st.Stats()
	if s.Submitted != 2 || s.Done != 1 || s.Failed != 1 {
		t.Errorf("stats = %+v, want submitted 2, done 1, failed 1", s)
	}
}

func TestJobStoreCapacityShed(t *testing.T) {
	st := NewStore(2, time.Hour)
	defer st.Close()

	if _, err := st.Submit(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit(); err != nil {
		t.Fatal(err)
	}
	_, err := st.Submit()
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonJobsFull {
		t.Fatalf("submit at capacity = %v, want ShedError(jobs_full)", err)
	}
	if shed.RetryAfter != time.Hour {
		t.Errorf("RetryAfter = %v, want the store TTL", shed.RetryAfter)
	}
	if s := st.Stats(); s.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", s.Rejected)
	}
}

func TestJobStoreTTLEviction(t *testing.T) {
	st := NewStore(2, time.Minute)
	defer st.Close()
	clock := time.Now()
	st.now = func() time.Time { return clock }

	done, _ := st.Submit()
	st.Start(done)
	st.Finish(done, "r", nil)
	stuck, _ := st.Submit() // pending forever: must never be evicted

	// Full store, TTL elapsed for the finished job: Submit's lazy GC
	// reclaims exactly that slot.
	clock = clock.Add(2 * time.Minute)
	id, err := st.Submit()
	if err != nil {
		t.Fatalf("submit after TTL = %v, want lazy GC to make room", err)
	}
	if _, ok := st.Get(done); ok {
		t.Error("finished job survived past its TTL")
	}
	if _, ok := st.Get(stuck); !ok {
		t.Error("pending job was evicted; only finished jobs may expire")
	}
	if _, ok := st.Get(id); !ok {
		t.Error("fresh job missing")
	}
	if s := st.Stats(); s.Expired != 1 {
		t.Errorf("expired = %d, want 1", s.Expired)
	}
}

func TestJobStoreBackgroundSweep(t *testing.T) {
	// Short real TTL: the background sweeper (ticking at >= 1s) must evict
	// without any Submit traffic.
	st := NewStore(4, 50*time.Millisecond)
	defer st.Close()
	id, _ := st.Submit()
	st.Start(id)
	st.Finish(id, nil, nil)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := st.Get(id); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background sweeper never evicted an expired job")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestJobIDsUnique(t *testing.T) {
	st := NewStore(128, time.Minute)
	defer st.Close()
	seen := map[string]bool{}
	for i := 0; i < 128; i++ {
		id, err := st.Submit()
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate job id %q", id)
		}
		if len(id) != 24 {
			t.Fatalf("id %q: want 24 hex chars", id)
		}
		seen[id] = true
	}
}

func TestJobStoreCloseIdempotent(t *testing.T) {
	st := NewStore(1, time.Minute)
	st.Close()
	st.Close() // must not panic
	// Store stays usable after Close (lazy GC still runs on Submit).
	if _, err := st.Submit(); err != nil {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestJobStoreDefaults(t *testing.T) {
	st := NewStore(0, 0)
	defer st.Close()
	if st.Capacity() != 256 || st.TTL() != 10*time.Minute {
		t.Errorf("defaults = %d/%v, want 256/10m", st.Capacity(), st.TTL())
	}
}

func TestJobStatsStateCounts(t *testing.T) {
	st := NewStore(16, time.Minute)
	defer st.Close()
	mk := func(phase int) {
		id, _ := st.Submit()
		if phase >= 1 {
			st.Start(id)
		}
		if phase == 2 {
			st.Finish(id, nil, nil)
		}
		if phase == 3 {
			st.Start(id)
			st.Finish(id, nil, fmt.Errorf("x"))
		}
	}
	mk(0)
	mk(0)
	mk(1)
	mk(2)
	mk(3)
	s := st.Stats()
	if s.Pending != 2 || s.Running != 1 || s.Done != 1 || s.Failed != 1 {
		t.Errorf("state counts = %+v, want 2/1/1/1", s)
	}
}
