package admit

import (
	"context"
	"sort"
	"sync"
)

// QueueConfig tunes a Queue. Zero values pick defaults.
type QueueConfig struct {
	// Concurrency is how many acquisitions may be outstanding at once
	// (the evaluation pool's size). Default 4.
	Concurrency int
	// MaxQueued bounds the total waiters across all lanes; beyond it new
	// arrivals are shed with ReasonQueueFull. Default 1024.
	MaxQueued int
	// MaxPerClient bounds one client's lane; beyond it that client's new
	// arrivals are shed with ReasonLaneFull while other clients keep
	// queueing. Default 256 (clamped to MaxQueued).
	MaxPerClient int
	// Weight returns a client's scheduling weight: how many consecutive
	// dispatches its lane gets per round-robin turn. nil or non-positive
	// values mean 1 (plain round-robin).
	Weight func(client string) int
}

func (c QueueConfig) withDefaults() QueueConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 1024
	}
	if c.MaxPerClient <= 0 {
		c.MaxPerClient = 256
	}
	if c.MaxPerClient > c.MaxQueued {
		c.MaxPerClient = c.MaxQueued
	}
	return c
}

// waiter is one blocked Acquire call.
type waiter struct {
	ready      chan struct{} // closed by the dispatcher when the slot is granted
	dispatched bool          // set (under the queue mutex) before ready closes
	cancelled  bool          // set (under the queue mutex) when the waiter gave up
}

// lane is one client's FIFO of waiters plus its round-robin credit.
type lane struct {
	client string
	fifo   []*waiter
	live   int // fifo entries not yet cancelled
	credit int // dispatches left before the round-robin cursor moves on
}

// maxTrackedClients bounds the cumulative per-client counter map; clients
// beyond it share the overflow bucket so an adversary minting client ids
// cannot grow the stats surface without bound (the lanes themselves are
// already bounded by MaxQueued live waiters).
const maxTrackedClients = 256

// overflowClient is the shared counter bucket once maxTrackedClients
// distinct ids have been seen.
const overflowClient = "_other"

type clientCount struct {
	admitted uint64
	shed     uint64
}

// Queue is a per-client weighted fair queue bounding concurrent work:
// Acquire blocks until a slot is granted (or sheds/cancels), Release
// frees the slot and dispatches the next waiter. Dispatch order is
// deficit round-robin across per-client FIFO lanes — FIFO within a
// client, fair across clients — so a client flooding the queue delays
// mostly itself. Lanes are created on first use and removed when they
// drain, keeping memory proportional to live waiters, not to the client
// population ever seen. Safe for concurrent use.
type Queue struct {
	mu  sync.Mutex
	cfg QueueConfig

	lanes map[string]*lane
	order []*lane // round-robin ring over lanes with queued waiters
	cur   int     // ring cursor

	running int
	queued  int // live waiters across all lanes

	admitted      uint64
	shedQueueFull uint64
	shedLaneFull  uint64
	peakQueued    int
	peakLanes     int
	clients       map[string]*clientCount
}

// NewQueue returns a queue over cfg.
func NewQueue(cfg QueueConfig) *Queue {
	return &Queue{
		cfg:     cfg.withDefaults(),
		lanes:   map[string]*lane{},
		clients: map[string]*clientCount{},
	}
}

// Concurrency reports the configured slot count.
func (q *Queue) Concurrency() int { return q.cfg.Concurrency }

// Acquire blocks until the caller holds one of the queue's slots, then
// returns nil; the caller must Release when done. It returns a *ShedError
// (ReasonQueueFull or ReasonLaneFull) without blocking when the queue's
// bounds reject the request, and ctx.Err() when the context ends first —
// the waiter is unlinked, so an abandoned wait holds no slot and leaks no
// goroutine.
func (q *Queue) Acquire(ctx context.Context, client string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	q.mu.Lock()
	// Fast path: a free slot and an empty queue. queued must be zero or
	// the new arrival would overtake waiters the dispatcher owes first.
	if q.running < q.cfg.Concurrency && q.queued == 0 {
		q.running++
		q.admitted++
		q.counter(client).admitted++
		q.mu.Unlock()
		return nil
	}
	if q.queued >= q.cfg.MaxQueued {
		q.shedQueueFull++
		q.counter(client).shed++
		q.mu.Unlock()
		return &ShedError{Reason: ReasonQueueFull}
	}
	l := q.lane(client)
	if l.live >= q.cfg.MaxPerClient {
		q.shedLaneFull++
		q.counter(client).shed++
		q.mu.Unlock()
		return &ShedError{Reason: ReasonLaneFull}
	}
	w := &waiter{ready: make(chan struct{})}
	l.fifo = append(l.fifo, w)
	l.live++
	q.queued++
	if q.queued > q.peakQueued {
		q.peakQueued = q.queued
	}
	if len(q.order) > q.peakLanes {
		q.peakLanes = len(q.order)
	}
	// Normally a no-op (the queue only holds waiters while slots are
	// full), but it makes admission self-healing if a transient state
	// left a free slot with waiters pending.
	q.dispatchLocked()
	q.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.dispatched {
			// Lost the race: the dispatcher granted the slot as the
			// context fired. The slot is held; the caller proceeds and
			// lets its own ctx checks cut the work short.
			q.mu.Unlock()
			return nil
		}
		w.cancelled = true
		l.live--
		q.queued--
		// Sweep the lane's cancelled prefix now so an idle queue does
		// not pin empty lanes until the next dispatch pass.
		for len(l.fifo) > 0 && l.fifo[0].cancelled {
			l.fifo = l.fifo[1:]
		}
		if l.live == 0 && len(l.fifo) == 0 {
			q.dropLaneLocked(l)
		}
		q.mu.Unlock()
		return ctx.Err()
	}
}

// Release frees a slot acquired by Acquire and hands it to the next
// waiter in fair order.
func (q *Queue) Release() {
	q.mu.Lock()
	q.running--
	q.dispatchLocked()
	q.mu.Unlock()
}

// Run executes fn while holding a slot: Acquire, run, Release. A context
// that ends after admission but before fn starts returns ctx.Err()
// without running fn.
func (q *Queue) Run(ctx context.Context, client string, fn func() error) error {
	if err := q.Acquire(ctx, client); err != nil {
		return err
	}
	defer q.Release()
	if err := ctx.Err(); err != nil {
		return err
	}
	return fn()
}

// lane returns (creating if needed) the client's lane, linked into the
// round-robin ring with a fresh credit.
func (q *Queue) lane(client string) *lane {
	l, ok := q.lanes[client]
	if !ok {
		l = &lane{client: client, credit: q.weight(client)}
		q.lanes[client] = l
		q.order = append(q.order, l)
	}
	return l
}

func (q *Queue) weight(client string) int {
	if q.cfg.Weight == nil {
		return 1
	}
	if w := q.cfg.Weight(client); w > 0 {
		return w
	}
	return 1
}

// counter returns the client's cumulative counters, folding clients
// beyond the tracking bound into the overflow bucket.
func (q *Queue) counter(client string) *clientCount {
	c, ok := q.clients[client]
	if ok {
		return c
	}
	if len(q.clients) >= maxTrackedClients {
		c, ok = q.clients[overflowClient]
		if !ok {
			c = &clientCount{}
			q.clients[overflowClient] = c
		}
		return c
	}
	c = &clientCount{}
	q.clients[client] = c
	return c
}

// dropLaneLocked unlinks an empty lane from the map and the ring,
// keeping the cursor on the lane that followed it.
func (q *Queue) dropLaneLocked(l *lane) {
	delete(q.lanes, l.client)
	for i, o := range q.order {
		if o == l {
			q.order = append(q.order[:i], q.order[i+1:]...)
			if i < q.cur {
				q.cur--
			}
			break
		}
	}
	if q.cur >= len(q.order) {
		q.cur = 0
	}
}

// dispatchLocked grants free slots to waiters in fair order.
func (q *Queue) dispatchLocked() {
	for q.running < q.cfg.Concurrency && q.queued > 0 {
		w, client := q.nextLocked()
		if w == nil {
			return
		}
		w.dispatched = true
		q.running++
		q.queued--
		q.admitted++
		q.counter(client).admitted++
		close(w.ready)
	}
}

// nextLocked pops the next live waiter under deficit round-robin: the
// cursor lane dispatches while it has credit, then its credit refills and
// the cursor advances. Lanes that drain (or hold only cancelled waiters)
// are removed as they are encountered. Returns nil only when no live
// waiter exists.
func (q *Queue) nextLocked() (*waiter, string) {
	// Each iteration either removes a lane, advances past a lane whose
	// credit ran out (at most once per lane per full cycle, since the
	// advance refills it), or dispatches. 3n+3 therefore always suffices
	// to find a live waiter when queued > 0.
	for guard := 3*len(q.order) + 3; guard > 0 && len(q.order) > 0; guard-- {
		if q.cur >= len(q.order) {
			q.cur = 0
		}
		l := q.order[q.cur]
		for len(l.fifo) > 0 && l.fifo[0].cancelled {
			l.fifo = l.fifo[1:]
		}
		if len(l.fifo) == 0 {
			q.dropLaneLocked(l)
			continue
		}
		if l.credit <= 0 {
			l.credit = q.weight(l.client)
			q.cur++
			continue
		}
		w := l.fifo[0]
		l.fifo = l.fifo[1:]
		l.live--
		l.credit--
		// Sweep trailing cancelled entries too: if this pop took the last
		// live waiter, no future dispatch pass would revisit the lane to
		// clean them up, and the empty lane would pin ring memory.
		for len(l.fifo) > 0 && l.fifo[0].cancelled {
			l.fifo = l.fifo[1:]
		}
		if l.live == 0 && len(l.fifo) == 0 {
			q.dropLaneLocked(l)
		}
		return w, l.client
	}
	return nil, ""
}

// LaneStat is one live lane's depth.
type LaneStat struct {
	Client string `json:"client"`
	Queued int    `json:"queued"`
}

// ClientStat is one client's cumulative admission counters. Clients
// beyond the tracking bound aggregate under "_other".
type ClientStat struct {
	Client   string `json:"client"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
}

// QueueStats is a point-in-time snapshot of the queue.
type QueueStats struct {
	Concurrency   int          `json:"concurrency"`
	Running       int          `json:"running"`
	Queued        int          `json:"queued"`
	Lanes         int          `json:"lanes"`
	PeakQueued    int          `json:"peak_queued"`
	PeakLanes     int          `json:"peak_lanes"`
	Admitted      uint64       `json:"admitted"`
	ShedQueueFull uint64       `json:"shed_queue_full"`
	ShedLaneFull  uint64       `json:"shed_lane_full"`
	LaneStats     []LaneStat   `json:"lane_stats,omitempty"`
	Clients       []ClientStat `json:"clients,omitempty"`
}

// Stats snapshots the queue's counters, lanes and per-client totals
// (both sorted by client for deterministic rendering).
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QueueStats{
		Concurrency:   q.cfg.Concurrency,
		Running:       q.running,
		Queued:        q.queued,
		Lanes:         len(q.order),
		PeakQueued:    q.peakQueued,
		PeakLanes:     q.peakLanes,
		Admitted:      q.admitted,
		ShedQueueFull: q.shedQueueFull,
		ShedLaneFull:  q.shedLaneFull,
	}
	for _, l := range q.order {
		st.LaneStats = append(st.LaneStats, LaneStat{Client: l.client, Queued: l.live})
	}
	sort.Slice(st.LaneStats, func(i, j int) bool { return st.LaneStats[i].Client < st.LaneStats[j].Client })
	for client, c := range q.clients {
		st.Clients = append(st.Clients, ClientStat{Client: client, Admitted: c.admitted, Shed: c.shed})
	}
	sort.Slice(st.Clients, func(i, j int) bool { return st.Clients[i].Client < st.Clients[j].Client })
	return st
}
