// Package cast defines a Clang-style abstract syntax tree for the C subset
// used by the ParaGraph benchmarks. Node kinds mirror Clang's AST node names
// (CompoundStmt, ForStmt, BinaryOperator, DeclRefExpr, ...), because the
// ParaGraph representation is defined in terms of that vocabulary: terminal
// nodes are "syntax tokens", non-terminals are "syntax nodes", and loop/if
// children follow Clang's ordering conventions.
package cast

import (
	"fmt"

	"paragraph/internal/clex"
	"paragraph/internal/omp"
)

// Kind identifies the AST node kind, following Clang naming.
type Kind int

// AST node kinds.
const (
	KindInvalid Kind = iota

	// Declarations.
	KindTranslationUnitDecl
	KindFunctionDecl
	KindParmVarDecl
	KindVarDecl

	// Statements.
	KindCompoundStmt
	KindDeclStmt
	KindForStmt
	KindWhileStmt
	KindDoStmt
	KindIfStmt
	KindReturnStmt
	KindBreakStmt
	KindContinueStmt
	KindNullStmt

	// Expressions.
	KindBinaryOperator
	KindCompoundAssignOperator
	KindUnaryOperator
	KindConditionalOperator
	KindParenExpr
	KindImplicitCastExpr
	KindIntegerLiteral
	KindFloatingLiteral
	KindStringLiteral
	KindCharacterLiteral
	KindDeclRefExpr
	KindArraySubscriptExpr
	KindCallExpr
	KindInitListExpr

	// OpenMP executable directives and their clauses. Clang represents
	// clause payloads (map'd array sections, collapse literals, reduction
	// variables) as expression children of the directive; KindOMPClause
	// groups each clause's payload so the graph sees gpu vs gpu_mem
	// variants as structurally different programs.
	KindOMPExecutableDirective
	KindOMPClause

	kindCount // sentinel, keep last
)

var kindNames = [...]string{
	KindInvalid:                "Invalid",
	KindTranslationUnitDecl:    "TranslationUnitDecl",
	KindFunctionDecl:           "FunctionDecl",
	KindParmVarDecl:            "ParmVarDecl",
	KindVarDecl:                "VarDecl",
	KindCompoundStmt:           "CompoundStmt",
	KindDeclStmt:               "DeclStmt",
	KindForStmt:                "ForStmt",
	KindWhileStmt:              "WhileStmt",
	KindDoStmt:                 "DoStmt",
	KindIfStmt:                 "IfStmt",
	KindReturnStmt:             "ReturnStmt",
	KindBreakStmt:              "BreakStmt",
	KindContinueStmt:           "ContinueStmt",
	KindNullStmt:               "NullStmt",
	KindBinaryOperator:         "BinaryOperator",
	KindCompoundAssignOperator: "CompoundAssignOperator",
	KindUnaryOperator:          "UnaryOperator",
	KindConditionalOperator:    "ConditionalOperator",
	KindParenExpr:              "ParenExpr",
	KindImplicitCastExpr:       "ImplicitCastExpr",
	KindIntegerLiteral:         "IntegerLiteral",
	KindFloatingLiteral:        "FloatingLiteral",
	KindStringLiteral:          "StringLiteral",
	KindCharacterLiteral:       "CharacterLiteral",
	KindDeclRefExpr:            "DeclRefExpr",
	KindArraySubscriptExpr:     "ArraySubscriptExpr",
	KindCallExpr:               "CallExpr",
	KindInitListExpr:           "InitListExpr",
	KindOMPExecutableDirective: "OMPExecutableDirective",
	KindOMPClause:              "OMPClause",
}

// NumKinds is the number of distinct node kinds; useful for one-hot or
// embedding feature encoders.
const NumKinds = int(kindCount)

// String returns the Clang-style name of the kind.
func (k Kind) String() string {
	if k > KindInvalid && int(k) < len(kindNames) {
		return kindNames[k]
	}
	if k == KindInvalid {
		return "Invalid"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is a single AST node. Children ordering follows Clang conventions:
//
//   - ForStmt: [init, cond, body, inc] — the order ParaGraph's ForExec and
//     ForNext edges are defined over (paper §III-A.2).
//   - IfStmt: [cond, then] or [cond, then, else].
//   - WhileStmt: [cond, body].
//   - BinaryOperator and CompoundAssignOperator: [lhs, rhs].
//   - FunctionDecl: [ParmVarDecl..., CompoundStmt body].
//   - OMPExecutableDirective: [associated statement (usually ForStmt)].
type Node struct {
	Kind     Kind
	Name     string         // declared or referenced identifier, function name
	Value    string         // literal spelling for literal kinds
	Op       string         // operator spelling for operator kinds
	TypeName string         // type spelling for decls and casts
	Pos      clex.Pos       // source position of the token that started the node
	Children []*Node        // ordered children
	Parent   *Node          // set by Finalize
	Ref      *Node          // DeclRefExpr: the VarDecl/ParmVarDecl it references
	Dir      *omp.Directive // OMPExecutableDirective payload
	Clause   omp.ClauseKind // OMPClause payload
	ID       int            // stable preorder index, set by Finalize
}

// NewNode returns a node of the given kind.
func NewNode(kind Kind) *Node { return &Node{Kind: kind} }

// AddChild appends children to the node and returns the node.
func (n *Node) AddChild(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// IsTerminal reports whether the node is a "syntax token" in the paper's
// sense: a leaf that corresponds to a concrete token (literals, DeclRefExpr,
// break/continue/null statements).
func (n *Node) IsTerminal() bool { return len(n.Children) == 0 }

// IsLoop reports whether the node is a loop construct.
func (n *Node) IsLoop() bool {
	return n.Kind == KindForStmt || n.Kind == KindWhileStmt || n.Kind == KindDoStmt
}

// ForParts returns the init, cond, body and inc children of a ForStmt.
// Missing parts (e.g. `for(;;)`) are NullStmt placeholders inserted by the
// parser, so all four are always non-nil for parser-produced trees.
func (n *Node) ForParts() (init, cond, body, inc *Node) {
	if n.Kind != KindForStmt || len(n.Children) != 4 {
		return nil, nil, nil, nil
	}
	return n.Children[0], n.Children[1], n.Children[2], n.Children[3]
}

// IfParts returns the cond, then and else children of an IfStmt. els is nil
// when there is no else branch.
func (n *Node) IfParts() (cond, then, els *Node) {
	if n.Kind != KindIfStmt || len(n.Children) < 2 {
		return nil, nil, nil
	}
	cond, then = n.Children[0], n.Children[1]
	if len(n.Children) >= 3 {
		els = n.Children[2]
	}
	return cond, then, els
}

// Body returns the CompoundStmt body of a FunctionDecl, or nil.
func (n *Node) Body() *Node {
	if n.Kind != KindFunctionDecl {
		return nil
	}
	for _, c := range n.Children {
		if c.Kind == KindCompoundStmt {
			return c
		}
	}
	return nil
}

// Params returns the ParmVarDecl children of a FunctionDecl.
func (n *Node) Params() []*Node {
	if n.Kind != KindFunctionDecl {
		return nil
	}
	var ps []*Node
	for _, c := range n.Children {
		if c.Kind == KindParmVarDecl {
			ps = append(ps, c)
		}
	}
	return ps
}

// String renders a one-line description of the node.
func (n *Node) String() string {
	s := n.Kind.String()
	switch {
	case n.Name != "" && n.TypeName != "":
		s += fmt.Sprintf(" %s %q", n.TypeName, n.Name)
	case n.Name != "":
		s += fmt.Sprintf(" %q", n.Name)
	case n.Value != "":
		s += fmt.Sprintf(" %s", n.Value)
	case n.Op != "":
		s += fmt.Sprintf(" '%s'", n.Op)
	}
	if n.Dir != nil {
		s += fmt.Sprintf(" [%s]", n.Dir.Kind)
	}
	return s
}

// Finalize assigns preorder IDs and parent pointers across the whole tree
// rooted at n. It must be called once after construction; the parser does
// this automatically.
func (n *Node) Finalize() {
	id := 0
	var walk func(node, parent *Node)
	walk = func(node, parent *Node) {
		node.Parent = parent
		node.ID = id
		id++
		for _, c := range node.Children {
			walk(c, node)
		}
	}
	walk(n, nil)
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	count := 0
	Walk(n, func(*Node) bool {
		count++
		return true
	})
	return count
}

// Walk traverses the subtree rooted at n in preorder, calling fn for each
// node. If fn returns false, the node's children are skipped.
func Walk(n *Node, fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		Walk(c, fn)
	}
}

// Terminals returns the terminal ("syntax token") nodes of the subtree in
// left-to-right source order — the order the NextToken edge chain follows.
func Terminals(root *Node) []*Node {
	var ts []*Node
	Walk(root, func(n *Node) bool {
		if n.IsTerminal() {
			ts = append(ts, n)
		}
		return true
	})
	return ts
}

// FindAll returns every node of the given kind in preorder.
func FindAll(root *Node, kind Kind) []*Node {
	var out []*Node
	Walk(root, func(n *Node) bool {
		if n.Kind == kind {
			out = append(out, n)
		}
		return true
	})
	return out
}

// FindFunction returns the FunctionDecl with the given name, or nil.
func FindFunction(root *Node, name string) *Node {
	for _, f := range FindAll(root, KindFunctionDecl) {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Directives returns every OMPExecutableDirective node in preorder.
func Directives(root *Node) []*Node {
	return FindAll(root, KindOMPExecutableDirective)
}

// LoopDepth returns the maximum loop-nest depth within the subtree (0 when
// the subtree contains no loops).
func LoopDepth(root *Node) int {
	var depth func(n *Node) int
	depth = func(n *Node) int {
		max := 0
		for _, c := range n.Children {
			if d := depth(c); d > max {
				max = d
			}
		}
		if n.IsLoop() {
			max++
		}
		return max
	}
	return depth(root)
}
