package cast

import (
	"strings"
	"testing"
	"testing/quick"

	"paragraph/internal/omp"
)

// buildTree constructs a small tree by hand:
//
//	CompoundStmt
//	├─ DeclStmt
//	│  └─ VarDecl x
//	└─ IfStmt
//	   ├─ BinaryOperator >
//	   ├─ CompoundStmt (then)
//	   └─ CompoundStmt (else)
func buildTree() *Node {
	vd := NewNode(KindVarDecl)
	vd.Name = "x"
	ds := NewNode(KindDeclStmt).AddChild(vd)
	cond := NewNode(KindBinaryOperator)
	cond.Op = ">"
	then := NewNode(KindCompoundStmt)
	els := NewNode(KindCompoundStmt)
	ifs := NewNode(KindIfStmt).AddChild(cond, then, els)
	root := NewNode(KindCompoundStmt).AddChild(ds, ifs)
	root.Finalize()
	return root
}

func TestKindString(t *testing.T) {
	if KindForStmt.String() != "ForStmt" {
		t.Errorf("ForStmt name = %q", KindForStmt.String())
	}
	if KindInvalid.String() != "Invalid" {
		t.Errorf("Invalid name = %q", KindInvalid.String())
	}
	if Kind(-1).String() != "Kind(-1)" {
		t.Errorf("negative kind = %q", Kind(-1).String())
	}
	if NumKinds <= int(KindOMPExecutableDirective) {
		t.Errorf("NumKinds = %d too small", NumKinds)
	}
}

func TestFinalizeAssignsPreorderIDs(t *testing.T) {
	root := buildTree()
	var ids []int
	Walk(root, func(n *Node) bool {
		ids = append(ids, n.ID)
		return true
	})
	for i, id := range ids {
		if id != i {
			t.Errorf("preorder position %d has ID %d", i, id)
		}
	}
}

func TestWalkSkipsChildrenOnFalse(t *testing.T) {
	root := buildTree()
	var visited int
	Walk(root, func(n *Node) bool {
		visited++
		return n.Kind != KindIfStmt // skip the if's children
	})
	// CompoundStmt, DeclStmt, VarDecl, IfStmt = 4.
	if visited != 4 {
		t.Errorf("visited %d nodes, want 4", visited)
	}
	Walk(nil, func(*Node) bool { t.Error("callback on nil walk"); return true })
}

func TestIfParts(t *testing.T) {
	root := buildTree()
	ifs := FindAll(root, KindIfStmt)[0]
	cond, then, els := ifs.IfParts()
	if cond == nil || then == nil || els == nil {
		t.Fatal("IfParts returned nil for three-child if")
	}
	if cond.Op != ">" {
		t.Errorf("cond op = %q", cond.Op)
	}
	// Two-child if has nil else.
	two := NewNode(KindIfStmt).AddChild(NewNode(KindBinaryOperator), NewNode(KindCompoundStmt))
	if _, _, e := two.IfParts(); e != nil {
		t.Error("two-child if should have nil else")
	}
	// Wrong kind returns nils.
	if c, _, _ := root.IfParts(); c != nil {
		t.Error("IfParts on non-if should return nil")
	}
}

func TestForPartsWrongShape(t *testing.T) {
	fs := NewNode(KindForStmt).AddChild(NewNode(KindNullStmt))
	if i, _, _, _ := fs.ForParts(); i != nil {
		t.Error("malformed ForStmt should yield nils")
	}
	ws := NewNode(KindWhileStmt)
	if i, _, _, _ := ws.ForParts(); i != nil {
		t.Error("non-for should yield nils")
	}
}

func TestIsLoopAndTerminal(t *testing.T) {
	for _, k := range []Kind{KindForStmt, KindWhileStmt, KindDoStmt} {
		if !NewNode(k).IsLoop() {
			t.Errorf("%v should be a loop", k)
		}
	}
	if NewNode(KindIfStmt).IsLoop() {
		t.Error("if is not a loop")
	}
	leaf := NewNode(KindIntegerLiteral)
	if !leaf.IsTerminal() {
		t.Error("literal leaf should be terminal")
	}
	if NewNode(KindCompoundStmt).AddChild(leaf).IsTerminal() {
		t.Error("node with children is not terminal")
	}
}

func TestTerminalsOrder(t *testing.T) {
	root := buildTree()
	terms := Terminals(root)
	// Leaves in preorder: VarDecl, BinaryOperator(leaf), then-CS, else-CS.
	if len(terms) != 4 {
		t.Fatalf("terminals = %d, want 4", len(terms))
	}
	if terms[0].Kind != KindVarDecl {
		t.Errorf("first terminal = %s", terms[0])
	}
}

func TestSizeMatchesWalk(t *testing.T) {
	root := buildTree()
	if root.Size() != 7 {
		t.Errorf("Size = %d, want 7", root.Size())
	}
}

func TestNodeString(t *testing.T) {
	vd := NewNode(KindVarDecl)
	vd.Name = "x"
	vd.TypeName = "int"
	if got := vd.String(); !strings.Contains(got, "int") || !strings.Contains(got, "x") {
		t.Errorf("String = %q", got)
	}
	lit := NewNode(KindIntegerLiteral)
	lit.Value = "42"
	if !strings.Contains(lit.String(), "42") {
		t.Errorf("String = %q", lit.String())
	}
	op := NewNode(KindBinaryOperator)
	op.Op = "+"
	if !strings.Contains(op.String(), "'+'") {
		t.Errorf("String = %q", op.String())
	}
	dir := NewNode(KindOMPExecutableDirective)
	dir.Dir = &omp.Directive{Kind: omp.DirParallelFor}
	if !strings.Contains(dir.String(), "parallel for") {
		t.Errorf("String = %q", dir.String())
	}
}

func TestLoopDepth(t *testing.T) {
	inner := NewNode(KindForStmt)
	mid := NewNode(KindCompoundStmt).AddChild(inner)
	outer := NewNode(KindForStmt).AddChild(mid)
	sibling := NewNode(KindForStmt)
	root := NewNode(KindCompoundStmt).AddChild(outer, sibling)
	if d := LoopDepth(root); d != 2 {
		t.Errorf("LoopDepth = %d, want 2", d)
	}
	if d := LoopDepth(NewNode(KindCompoundStmt)); d != 0 {
		t.Errorf("LoopDepth of empty = %d, want 0", d)
	}
}

func TestBodyAndParamsOnNonFunction(t *testing.T) {
	n := NewNode(KindCompoundStmt)
	if n.Body() != nil || n.Params() != nil {
		t.Error("Body/Params on non-function should be nil")
	}
}

// Property: Finalize assigns dense IDs 0..Size-1 for arbitrary random trees.
func TestFinalizeDenseIDsProperty(t *testing.T) {
	f := func(shape []byte) bool {
		root := NewNode(KindCompoundStmt)
		nodes := []*Node{root}
		for _, b := range shape {
			parent := nodes[int(b)%len(nodes)]
			child := NewNode(KindNullStmt)
			parent.AddChild(child)
			nodes = append(nodes, child)
		}
		root.Finalize()
		seen := make(map[int]bool)
		ok := true
		Walk(root, func(n *Node) bool {
			if n.ID < 0 || n.ID >= len(nodes) || seen[n.ID] {
				ok = false
			}
			seen[n.ID] = true
			if n != root && n.Parent == nil {
				ok = false
			}
			return true
		})
		return ok && len(seen) == len(nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
