package cast_test

// Round-trip tests live in an external test package so they can use the
// parser (cparse imports cast; importing cparse from cast's internal tests
// would cycle).

import (
	"strings"
	"testing"

	"paragraph/internal/apps"
	"paragraph/internal/cast"
	"paragraph/internal/cparse"
	"paragraph/internal/variants"
)

// normalize flattens a tree to a comparable signature, skipping the
// wrapper nodes (ParenExpr, LValueToRValue casts) that printing and
// re-parsing legitimately shuffle.
func normalize(root *cast.Node) []string {
	var sig []string
	var rec func(n *cast.Node)
	rec = func(n *cast.Node) {
		skip := n.Kind == cast.KindParenExpr ||
			(n.Kind == cast.KindImplicitCastExpr && (n.TypeName == "LValueToRValue" || n.TypeName == ""))
		if !skip {
			entry := n.Kind.String()
			if n.Name != "" {
				entry += ":" + n.Name
			}
			if n.Op != "" {
				entry += ":" + n.Op
			}
			if n.Value != "" {
				entry += ":" + n.Value
			}
			sig = append(sig, entry)
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(root)
	return sig
}

func roundTrip(t *testing.T, src string) {
	t.Helper()
	orig, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse original: %v\n%s", err, src)
	}
	printed := cast.PrintCString(orig)
	back, err := cparse.Parse(printed)
	if err != nil {
		t.Fatalf("re-parse printed source: %v\n--- printed ---\n%s", err, printed)
	}
	a, b := normalize(orig), normalize(back)
	if len(a) != len(b) {
		t.Fatalf("signature lengths differ: %d vs %d\n--- printed ---\n%s", len(a), len(b), printed)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("signature differs at %d: %q vs %q\n--- printed ---\n%s", i, a[i], b[i], printed)
		}
	}
}

func TestRoundTripBasicConstructs(t *testing.T) {
	cases := []string{
		`void f(void) { int x; x = 50; }`,
		`int add(int a, int b) { return a + b; }`,
		`void f(int n) { for (int i = 0; i < n; i++) { n += i; } }`,
		`void f(int n) { for (;;) { break; } }`,
		`void f(int n) { while (n > 0) { n--; } }`,
		`void f(int n) { do { n++; } while (n < 10); }`,
		`void f(int x) { if (x > 0) { x = 1; } else { x = 2; } }`,
		`void f(int x) { if (x) x++; }`,
		`void f(double *a, int i) { a[i] = a[i + 1] * 2.5; }`,
		`double g(double x); void f(double *a) { a[0] = g(a[1]); }`,
		`void f(int a, int b, int c) { a = b = c; }`,
		`void f(int a) { a = a > 0 ? a : -a; }`,
		`void f(int a) { a <<= 2; a >>= 1; a &= 3; a |= 4; a ^= 5; a %= 6; }`,
		`void f(int *p, int a) { p = &a; a = *p; }`,
		`void f(int a) { a = sizeof(double) + sizeof(int); }`,
		`void f(void) { int x = 1, y = 2, z; z = x + y; }`,
		`int g = 10; void f(void) { g++; }`,
		`void f(void) { double t[100]; t[0] = 1.0; }`,
		`void f(int n) { int i; for (i = 0, n = 0; i < 10; i++, n--) {} }`,
		`void f(double d, int n) { d = (double) n / 2; }`,
		`void f(int a) { ; }`,
		`void f(int a) { { int b; b = a; } }`,
		`void f(int a) { return; }`,
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRoundTripOpenMP(t *testing.T) {
	cases := []string{
		`void f(double *a, int n) {
			#pragma omp parallel for num_threads(8)
			for (int i = 0; i < n; i++) a[i] = 0.0;
		}`,
		`void f(double *a, int n, int m) {
			#pragma omp target teams distribute parallel for collapse(2) num_teams(16) map(tofrom: a[0:n*m])
			for (int i = 0; i < n; i++)
				for (int j = 0; j < m; j++)
					a[i * m + j] = 1.0;
		}`,
		`void f(double *a, double s, int n) {
			#pragma omp parallel for reduction(+: s)
			for (int i = 0; i < n; i++) s += a[i];
		}`,
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

// TestRoundTripWholeSuite is the strongest frontend property: every
// generated benchmark variant survives parse → print → parse with an
// identical normalized tree.
func TestRoundTripWholeSuite(t *testing.T) {
	for _, k := range apps.Kernels() {
		for _, kind := range variants.Kinds() {
			if kind.IsCollapse() && !k.Collapsible {
				continue
			}
			src, err := variants.Generate(k, kind, 32, 64)
			if err != nil {
				t.Fatalf("%s/%v: %v", k.Name, kind, err)
			}
			roundTrip(t, src)
		}
	}
}

func TestPrintedSourceIsPlausibleC(t *testing.T) {
	src := `
void k(double *a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
        if (a[i] > 0.0) a[i] = a[i] * 2.0;
    }
}`
	root, err := cparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := cast.PrintCString(root)
	for _, want := range []string{
		"void k(double * a, int n)",
		"#pragma omp parallel for",
		"for (int i = 0; i < n; i++)",
		"if (",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed source missing %q:\n%s", want, out)
		}
	}
}
