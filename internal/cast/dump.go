package cast

import (
	"fmt"
	"io"
	"strings"
)

// Dump writes a clang -ast-dump style rendering of the tree to w.
func Dump(w io.Writer, root *Node) {
	var rec func(n *Node, prefix string, last bool)
	rec = func(n *Node, prefix string, last bool) {
		connector := "|-"
		childPrefix := prefix + "| "
		if last {
			connector = "`-"
			childPrefix = prefix + "  "
		}
		if prefix == "" && !last {
			connector = ""
			childPrefix = ""
		}
		fmt.Fprintf(w, "%s%s%s\n", prefix, connector, n.String())
		for i, c := range n.Children {
			rec(c, childPrefix, i == len(n.Children)-1)
		}
	}
	rec(root, "", false)
}

// DumpString returns the Dump rendering as a string.
func DumpString(root *Node) string {
	var sb strings.Builder
	Dump(&sb, root)
	return sb.String()
}
