package cast

import (
	"fmt"
	"io"
	"strings"
)

// PrintC renders the AST back to compilable C source. The output is
// normalized (canonical whitespace, conservative parenthesization) rather
// than byte-identical to the original input; re-parsing it yields a tree
// with the same normalized shape, which the frontend's round-trip tests
// rely on.
func PrintC(w io.Writer, root *Node) error {
	p := &printer{w: w}
	p.node(root, 0)
	return p.err
}

// PrintCString renders the AST to a string.
func PrintCString(root *Node) string {
	var sb strings.Builder
	// strings.Builder never errors.
	_ = PrintC(&sb, root)
	return sb.String()
}

type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *printer) indent(depth int) {
	p.printf("%s", strings.Repeat("    ", depth))
}

// node prints a declaration or statement at the given indentation.
func (p *printer) node(n *Node, depth int) {
	switch n.Kind {
	case KindTranslationUnitDecl:
		for _, c := range n.Children {
			p.node(c, depth)
			p.printf("\n")
		}
	case KindFunctionDecl:
		p.printf("%s %s(", typeOrInt(n.TypeName), n.Name)
		params := n.Params()
		if len(params) == 0 {
			p.printf("void")
		}
		for i, parm := range params {
			if i > 0 {
				p.printf(", ")
			}
			p.printf("%s %s", typeOrInt(parm.TypeName), parm.Name)
		}
		p.printf(")")
		if body := n.Body(); body != nil {
			p.printf(" ")
			p.node(body, depth)
		} else {
			p.printf(";")
		}
	case KindCompoundStmt:
		p.printf("{\n")
		for _, c := range n.Children {
			p.indent(depth + 1)
			p.stmt(c, depth+1)
			p.printf("\n")
		}
		p.indent(depth)
		p.printf("}")
	case KindDeclStmt:
		p.declStmt(n)
	default:
		p.stmt(n, depth)
	}
}

// stmt prints a statement without leading indentation (the caller indents)
// but with its trailing terminator.
func (p *printer) stmt(n *Node, depth int) {
	switch n.Kind {
	case KindCompoundStmt:
		p.node(n, depth)
	case KindDeclStmt:
		p.declStmt(n)
	case KindNullStmt:
		p.printf(";")
	case KindBreakStmt:
		p.printf("break;")
	case KindContinueStmt:
		p.printf("continue;")
	case KindReturnStmt:
		if len(n.Children) == 0 {
			p.printf("return;")
			return
		}
		p.printf("return ")
		p.expr(n.Children[0])
		p.printf(";")
	case KindForStmt:
		init, cond, body, inc := n.ForParts()
		if init == nil {
			p.printf("/* malformed for */;")
			return
		}
		p.printf("for (")
		p.forClause(init)
		p.printf("; ")
		if cond.Kind != KindNullStmt {
			p.expr(cond)
		}
		p.printf("; ")
		if inc.Kind != KindNullStmt {
			p.expr(inc)
		}
		p.printf(") ")
		p.stmt(body, depth)
	case KindWhileStmt:
		p.printf("while (")
		p.expr(n.Children[0])
		p.printf(") ")
		p.stmt(n.Children[1], depth)
	case KindDoStmt:
		p.printf("do ")
		p.stmt(n.Children[0], depth)
		p.printf(" while (")
		p.expr(n.Children[1])
		p.printf(");")
	case KindIfStmt:
		cond, then, els := n.IfParts()
		p.printf("if (")
		p.expr(cond)
		p.printf(") ")
		p.stmt(then, depth)
		if els != nil {
			p.printf(" else ")
			p.stmt(els, depth)
		}
	case KindOMPExecutableDirective:
		if n.Dir != nil {
			p.printf("%s\n", n.Dir.String())
		}
		// Clause payload nodes regenerate from Dir.String(); print only the
		// associated statement (the last non-clause child).
		var assoc *Node
		for i := len(n.Children) - 1; i >= 0; i-- {
			if n.Children[i].Kind != KindOMPClause {
				assoc = n.Children[i]
				break
			}
		}
		if assoc != nil {
			p.indent(depth)
			p.stmt(assoc, depth)
		}
	default:
		// Expression statement.
		p.expr(n)
		p.printf(";")
	}
}

// forClause prints a for-init without its terminating semicolon.
func (p *printer) forClause(n *Node) {
	switch n.Kind {
	case KindNullStmt:
	case KindDeclStmt:
		p.varDecls(n)
	default:
		p.expr(n)
	}
}

func (p *printer) declStmt(n *Node) {
	p.varDecls(n)
	p.printf(";")
}

// varDecls prints the declarator list of a DeclStmt without the semicolon.
func (p *printer) varDecls(n *Node) {
	for i, vd := range n.Children {
		if i > 0 {
			p.printf(", ")
		}
		if i == 0 {
			p.printf("%s ", strings.TrimSuffix(typeOrInt(vd.TypeName), " []"))
		}
		p.printf("%s", vd.Name)
		// Array declarator sizes come before any initializer child; the
		// initializer, if present, is the last child of a non-array decl.
		if strings.HasSuffix(vd.TypeName, "[]") {
			for _, c := range vd.Children {
				p.printf("[")
				p.expr(c)
				p.printf("]")
			}
			continue
		}
		if len(vd.Children) == 1 {
			p.printf(" = ")
			p.expr(vd.Children[0])
		}
	}
}

// expr prints an expression with conservative parenthesization.
func (p *printer) expr(n *Node) {
	switch n.Kind {
	case KindIntegerLiteral, KindFloatingLiteral, KindStringLiteral, KindCharacterLiteral:
		p.printf("%s", n.Value)
	case KindDeclRefExpr:
		p.printf("%s", n.Name)
	case KindImplicitCastExpr:
		if n.TypeName != "" && n.TypeName != "LValueToRValue" {
			p.printf("(%s)", n.TypeName)
		}
		if len(n.Children) == 1 {
			p.expr(n.Children[0])
		}
	case KindParenExpr:
		p.printf("(")
		if len(n.Children) == 1 {
			p.expr(n.Children[0])
		}
		p.printf(")")
	case KindBinaryOperator, KindCompoundAssignOperator:
		p.exprParen(n.Children[0])
		p.printf(" %s ", n.Op)
		p.exprParen(n.Children[1])
	case KindUnaryOperator:
		switch n.Op {
		case "post++":
			p.exprParen(n.Children[0])
			p.printf("++")
		case "post--":
			p.exprParen(n.Children[0])
			p.printf("--")
		case "pre++":
			p.printf("++")
			p.exprParen(n.Children[0])
		case "pre--":
			p.printf("--")
			p.exprParen(n.Children[0])
		case "sizeof":
			p.printf("sizeof(")
			inner := n.Children[0]
			if inner.Kind == KindDeclRefExpr && inner.TypeName != "" {
				p.printf("%s", inner.TypeName)
			} else {
				p.expr(inner)
			}
			p.printf(")")
		default:
			p.printf("%s", n.Op)
			p.exprParen(n.Children[0])
		}
	case KindConditionalOperator:
		p.exprParen(n.Children[0])
		p.printf(" ? ")
		p.exprParen(n.Children[1])
		p.printf(" : ")
		p.exprParen(n.Children[2])
	case KindArraySubscriptExpr:
		p.exprParen(n.Children[0])
		p.printf("[")
		p.expr(n.Children[1])
		p.printf("]")
	case KindCallExpr:
		p.expr(n.Children[0])
		p.printf("(")
		for i, arg := range n.Children[1:] {
			if i > 0 {
				p.printf(", ")
			}
			p.expr(arg)
		}
		p.printf(")")
	default:
		p.printf("/* %s */", n.Kind)
	}
}

// exprParen prints a subexpression, wrapping composite expressions in
// parentheses so operator precedence survives the round trip without a
// precedence table.
func (p *printer) exprParen(n *Node) {
	switch n.Kind {
	case KindBinaryOperator, KindCompoundAssignOperator, KindConditionalOperator:
		p.printf("(")
		p.expr(n)
		p.printf(")")
	case KindImplicitCastExpr:
		if n.TypeName != "" && n.TypeName != "LValueToRValue" {
			p.printf("(")
			p.expr(n)
			p.printf(")")
			return
		}
		if len(n.Children) == 1 {
			p.exprParen(n.Children[0])
			return
		}
		p.expr(n)
	default:
		p.expr(n)
	}
}

func typeOrInt(ty string) string {
	if ty == "" {
		return "int"
	}
	return ty
}
