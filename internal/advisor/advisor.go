// Package advisor reassembles the paper's end-to-end use case: the role
// OpenMP Advisor (§II-D) plays with ParaGraph as its cost model. Given a
// serial benchmark kernel, it generates candidate OpenMP variants (code
// transformation), predicts each one's runtime statically with a trained
// cost model (kernel analysis + cost model), and returns them ranked — no
// execution required at inference time, the paper's key advantage over
// online autotuners (§II-E).
package advisor

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"paragraph/internal/analysis"
	"paragraph/internal/apps"
	"paragraph/internal/dataset"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/obs"
	"paragraph/internal/paragraph"
	"paragraph/internal/variants"
)

// Predictor is the cost-model interface: a scaled-runtime regressor over
// encoded samples. Advise fans its variant grid across goroutines (see
// SetWorkers), so implementations must be safe for concurrent Predict
// calls — or the advisor must be pinned to SetWorkers(1). *gnn.Model is
// safe (each call builds its own forward pass over read-only weights), as
// is the serving batcher (internal/serve), which coalesces concurrent
// Predict calls into batches.
type Predictor interface {
	Predict(*gnn.Sample) float64
}

// ContextPredictor is an optional Predictor extension: a predictor that
// threads the request context through, so a request-scoped trace
// (internal/obs) reaches the batching layer and its queue-wait and
// predict spans land on the right request — and so cancellation
// propagates: a predictor may return ctx.Err() instead of a value when
// the caller gave up, letting an advise grid abort mid-fan-out rather
// than evaluate work nobody is waiting for. Plain Predictors keep
// working untraced and uncancellable.
type ContextPredictor interface {
	PredictCtx(context.Context, *gnn.Sample) (float64, error)
}

// EncodeCache memoizes the parse→BuildKernel→Encode pipeline across Advise
// calls: Get returns a previously encoded graph for a content key, Add
// stores one. Implementations must be safe for concurrent use; cached
// graphs are treated as immutable (EncodeInstance copies the header before
// applying per-advisor scaling). internal/serve provides a sharded LRU
// implementation.
type EncodeCache interface {
	Get(key string) (*gnn.Graph, bool)
	Add(key string, g *gnn.Graph)
}

// Advisor ranks kernel variants by predicted runtime on one machine.
type Advisor struct {
	model    Predictor
	prep     *dataset.Prepared // training-time scalers
	machine  hw.Machine
	level    paragraph.Level
	workers  int         // grid-evaluation goroutines; 0 = GOMAXPROCS
	encCache EncodeCache // nil = no memoization
}

// New builds an advisor from a trained predictor and the Prepared dataset
// it was trained on (whose scalers must be reused at inference).
func New(model Predictor, prep *dataset.Prepared, machine hw.Machine) *Advisor {
	return &Advisor{model: model, prep: prep, machine: machine, level: paragraph.LevelParaGraph}
}

// SetLevel selects the representation level EncodeInstance builds graphs
// at. The default is LevelParaGraph; it must match the level the predictor
// was trained on (registry checkpoints record theirs in the manifest).
func (a *Advisor) SetLevel(l paragraph.Level) { a.level = l }

// SetWorkers bounds the goroutines Advise fans the variant grid across.
// n <= 0 restores the default (GOMAXPROCS); n == 1 recovers the serial
// evaluation order exactly.
func (a *Advisor) SetWorkers(n int) { a.workers = n }

// SetEncodeCache injects a cache for encoded graphs, letting repeated
// Advise calls (and grid points sharing a source) skip the expensive
// parse→build→encode pipeline. Pass nil to disable.
func (a *Advisor) SetEncodeCache(c EncodeCache) { a.encCache = c }

// SearchSpace is the variant/parallelism grid to rank.
type SearchSpace struct {
	CPUThreads []int // used on CPU machines
	GPUTeams   []int // used on GPU machines
	GPUThreads []int
}

// DefaultSearchSpace mirrors the dataset sweep.
func DefaultSearchSpace() SearchSpace {
	return SearchSpace{
		CPUThreads: []int{1, 2, 4, 8, 16, 22, 24},
		GPUTeams:   []int{16, 64, 128, 256},
		GPUThreads: []int{64, 128, 256},
	}
}

// Recommendation is one ranked candidate.
type Recommendation struct {
	Kind        variants.Kind
	Teams       int
	Threads     int
	PredictedUS float64
	Source      string // the transformed kernel, ready to drop in
}

// Advise enumerates the machine-compatible variants of kernel k under
// bindings, predicts each statically, and returns them sorted by predicted
// runtime (fastest first). Each grid point's generate→encode→predict chain
// is independent, so the grid is fanned out across SetWorkers goroutines;
// results keep the serial enumeration order before the stable sort, so the
// ranking is identical to a one-worker run.
func (a *Advisor) Advise(k apps.Kernel, bindings analysis.Env, space SearchSpace) ([]Recommendation, error) {
	return a.AdviseCtx(context.Background(), k, bindings, space)
}

// AdviseCtx is Advise with a request context: a trace attached to ctx
// (obs.WithTrace) receives per-stage spans — encode on pipeline runs,
// queue wait and predict from a batching ContextPredictor, rank around the
// final sort.
func (a *Advisor) AdviseCtx(ctx context.Context, k apps.Kernel, bindings analysis.Env, space SearchSpace) ([]Recommendation, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	type pt struct {
		kind           variants.Kind
		teams, threads int
	}
	var grid []pt
	for _, kind := range variants.Kinds() {
		if kind.IsGPU() != a.machine.IsGPU {
			continue
		}
		if kind.IsCollapse() && !k.Collapsible {
			continue
		}
		if kind.IsGPU() {
			for _, g := range space.GPUTeams {
				for _, t := range space.GPUThreads {
					grid = append(grid, pt{kind, g, t})
				}
			}
		} else {
			for _, t := range space.CPUThreads {
				grid = append(grid, pt{kind, 0, t})
			}
		}
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("advisor: no %s-compatible variants for kernel %q",
			machineClass(a.machine), k.Name)
	}

	recs := make([]Recommendation, len(grid))
	errs := make([]error, len(grid))
	eval := func(i int) {
		g := grid[i]
		src, err := variants.Generate(k, g.kind, g.teams, g.threads)
		if err != nil {
			errs[i] = err
			return
		}
		in := variants.Instance{
			Kernel: k, Kind: g.kind, Teams: g.teams, Threads: g.threads,
			Bindings: bindings, Source: src,
		}
		us, err := a.PredictInstanceUSCtx(ctx, in)
		if err != nil {
			errs[i] = err
			return
		}
		recs[i] = Recommendation{
			Kind: g.kind, Teams: g.teams, Threads: g.threads,
			PredictedUS: us, Source: src,
		}
	}

	workers := a.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(grid) {
		workers = len(grid)
	}
	if workers <= 1 {
		for i := range grid {
			eval(i)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range work {
					eval(i)
				}
			}()
		}
		for i := range grid {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("advisor: variant %s g%d t%d: %w",
				grid[i].kind, grid[i].teams, grid[i].threads, err)
		}
	}
	rank := obs.TraceFrom(ctx).StartSpan("rank")
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].PredictedUS < recs[j].PredictedUS })
	rank.End()
	return recs, nil
}

// Best returns the top recommendation.
func (a *Advisor) Best(k apps.Kernel, bindings analysis.Env, space SearchSpace) (Recommendation, error) {
	recs, err := a.Advise(k, bindings, space)
	if err != nil {
		return Recommendation{}, err
	}
	return recs[0], nil
}

// PredictInstanceUS statically predicts one instance's runtime in
// microseconds, applying the training-time feature and target scalers.
func (a *Advisor) PredictInstanceUS(in variants.Instance) (float64, error) {
	return a.PredictInstanceUSCtx(context.Background(), in)
}

// PredictInstanceUSCtx is PredictInstanceUS with a request context. A
// ContextPredictor receives the context (tracing the batch queue wait and
// forward pass); a plain Predictor is called as before.
func (a *Advisor) PredictInstanceUSCtx(ctx context.Context, in variants.Instance) (float64, error) {
	s, err := a.EncodeInstanceCtx(ctx, in)
	if err != nil {
		return 0, err
	}
	if cp, ok := a.model.(ContextPredictor); ok {
		v, err := cp.PredictCtx(ctx, s)
		if err != nil {
			return 0, err
		}
		return a.prep.DescaleUS(v), nil
	}
	return a.prep.DescaleUS(a.model.Predict(s)), nil
}

// EncodeInstance builds the model-ready sample for an unseen instance,
// consulting the encode cache (when injected) before running the
// parse→BuildKernel→Encode pipeline.
func (a *Advisor) EncodeInstance(in variants.Instance) (*gnn.Sample, error) {
	return a.EncodeInstanceCtx(context.Background(), in)
}

// EncodeInstanceCtx is EncodeInstance with a request context: a cache miss
// that runs the encode pipeline records an "encode" span on the context's
// trace (cache hits record nothing — they cost microseconds).
func (a *Advisor) EncodeInstanceCtx(ctx context.Context, in variants.Instance) (*gnn.Sample, error) {
	var key string
	var eg *gnn.Graph
	if a.encCache != nil {
		key = EncodeKey(in.Source, a.level, in.Threads, in.Bindings)
		if g, ok := a.encCache.Get(key); ok {
			eg = g
		}
	}
	if eg == nil {
		sp := obs.TraceFrom(ctx).StartSpan("encode")
		// Thread-count division matches dataset.Prepare (see the note there).
		g, err := paragraph.BuildKernel(in.Source, paragraph.Options{
			Level:    a.level,
			Threads:  in.Threads,
			Bindings: in.Bindings,
		})
		if err != nil {
			return nil, err
		}
		eg, err = gnn.Encode(g, int(paragraph.NumEdgeTypes))
		if err != nil {
			return nil, err
		}
		if a.encCache != nil {
			a.encCache.Add(key, eg)
		}
		sp.End()
	}
	// Copy the graph header before applying this advisor's weight scaling:
	// the cache may be shared between advisors trained with different
	// WScale, and cached entries must stay immutable. The edge/feature
	// slices are shared (read-only during prediction).
	scaled := *eg
	scaled.WScale = a.prep.WScale
	return &gnn.Sample{
		G: &scaled,
		Feats: [2]float64{
			a.prep.TeamScaler.Scale(float64(in.Teams)),
			a.prep.ThreadScaler.Scale(float64(in.Threads)),
		},
		Name: in.Name(),
	}, nil
}

// EncodeKey is the content-addressed cache key of one encode-pipeline
// result: a hash over everything BuildKernel+Encode read — the transformed
// source, the representation level, the weight-dividing thread count, and
// the size bindings (serialized in sorted order so the key is stable).
// Teams are deliberately absent: they feed the runtime-configuration
// features, not the graph.
func EncodeKey(source string, level paragraph.Level, threads int, bindings analysis.Env) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d\x00%d\x00%s\x00", level, threads, BindingsKey(bindings))
	b.WriteString(source)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// BindingsKey renders size bindings deterministically (sorted name=value
// pairs) for content-addressed cache keys. EncodeKey and the serving
// layer's response keys share it so the two cache levels cannot drift in
// how they canonicalize the same request.
func BindingsKey(bindings analysis.Env) string {
	names := make([]string, 0, len(bindings))
	for name := range bindings {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%g;", name, bindings[name])
	}
	return b.String()
}

func machineClass(m hw.Machine) string {
	if m.IsGPU {
		return "GPU"
	}
	return "CPU"
}
