// Package advisor reassembles the paper's end-to-end use case: the role
// OpenMP Advisor (§II-D) plays with ParaGraph as its cost model. Given a
// serial benchmark kernel, it generates candidate OpenMP variants (code
// transformation), predicts each one's runtime statically with a trained
// cost model (kernel analysis + cost model), and returns them ranked — no
// execution required at inference time, the paper's key advantage over
// online autotuners (§II-E).
package advisor

import (
	"fmt"
	"sort"

	"paragraph/internal/analysis"
	"paragraph/internal/apps"
	"paragraph/internal/dataset"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
	"paragraph/internal/variants"
)

// Predictor is the cost-model interface: a scaled-runtime regressor over
// encoded samples. *gnn.Model satisfies it.
type Predictor interface {
	Predict(*gnn.Sample) float64
}

// Advisor ranks kernel variants by predicted runtime on one machine.
type Advisor struct {
	model   Predictor
	prep    *dataset.Prepared // training-time scalers
	machine hw.Machine
	level   paragraph.Level
}

// New builds an advisor from a trained predictor and the Prepared dataset
// it was trained on (whose scalers must be reused at inference).
func New(model Predictor, prep *dataset.Prepared, machine hw.Machine) *Advisor {
	return &Advisor{model: model, prep: prep, machine: machine, level: paragraph.LevelParaGraph}
}

// SearchSpace is the variant/parallelism grid to rank.
type SearchSpace struct {
	CPUThreads []int // used on CPU machines
	GPUTeams   []int // used on GPU machines
	GPUThreads []int
}

// DefaultSearchSpace mirrors the dataset sweep.
func DefaultSearchSpace() SearchSpace {
	return SearchSpace{
		CPUThreads: []int{1, 2, 4, 8, 16, 22, 24},
		GPUTeams:   []int{16, 64, 128, 256},
		GPUThreads: []int{64, 128, 256},
	}
}

// Recommendation is one ranked candidate.
type Recommendation struct {
	Kind        variants.Kind
	Teams       int
	Threads     int
	PredictedUS float64
	Source      string // the transformed kernel, ready to drop in
}

// Advise enumerates the machine-compatible variants of kernel k under
// bindings, predicts each statically, and returns them sorted by predicted
// runtime (fastest first).
func (a *Advisor) Advise(k apps.Kernel, bindings analysis.Env, space SearchSpace) ([]Recommendation, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	var recs []Recommendation
	for _, kind := range variants.Kinds() {
		if kind.IsGPU() != a.machine.IsGPU {
			continue
		}
		if kind.IsCollapse() && !k.Collapsible {
			continue
		}
		type pt struct{ teams, threads int }
		var grid []pt
		if kind.IsGPU() {
			for _, g := range space.GPUTeams {
				for _, t := range space.GPUThreads {
					grid = append(grid, pt{g, t})
				}
			}
		} else {
			for _, t := range space.CPUThreads {
				grid = append(grid, pt{0, t})
			}
		}
		for _, g := range grid {
			src, err := variants.Generate(k, kind, g.teams, g.threads)
			if err != nil {
				return nil, err
			}
			in := variants.Instance{
				Kernel: k, Kind: kind, Teams: g.teams, Threads: g.threads,
				Bindings: bindings, Source: src,
			}
			us, err := a.PredictInstanceUS(in)
			if err != nil {
				return nil, err
			}
			recs = append(recs, Recommendation{
				Kind: kind, Teams: g.teams, Threads: g.threads,
				PredictedUS: us, Source: src,
			})
		}
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("advisor: no %s-compatible variants for kernel %q",
			machineClass(a.machine), k.Name)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].PredictedUS < recs[j].PredictedUS })
	return recs, nil
}

// Best returns the top recommendation.
func (a *Advisor) Best(k apps.Kernel, bindings analysis.Env, space SearchSpace) (Recommendation, error) {
	recs, err := a.Advise(k, bindings, space)
	if err != nil {
		return Recommendation{}, err
	}
	return recs[0], nil
}

// PredictInstanceUS statically predicts one instance's runtime in
// microseconds, applying the training-time feature and target scalers.
func (a *Advisor) PredictInstanceUS(in variants.Instance) (float64, error) {
	s, err := a.EncodeInstance(in)
	if err != nil {
		return 0, err
	}
	return a.prep.DescaleUS(a.model.Predict(s)), nil
}

// EncodeInstance builds the model-ready sample for an unseen instance.
func (a *Advisor) EncodeInstance(in variants.Instance) (*gnn.Sample, error) {
	// Thread-count division matches dataset.Prepare (see the note there).
	g, err := paragraph.BuildKernel(in.Source, paragraph.Options{
		Level:    a.level,
		Threads:  in.Threads,
		Bindings: in.Bindings,
	})
	if err != nil {
		return nil, err
	}
	eg, err := gnn.Encode(g, int(paragraph.NumEdgeTypes))
	if err != nil {
		return nil, err
	}
	eg.WScale = a.prep.WScale
	return &gnn.Sample{
		G: eg,
		Feats: [2]float64{
			a.prep.TeamScaler.Scale(float64(in.Teams)),
			a.prep.ThreadScaler.Scale(float64(in.Threads)),
		},
		Name: in.Name(),
	}, nil
}

func machineClass(m hw.Machine) string {
	if m.IsGPU {
		return "GPU"
	}
	return "CPU"
}
