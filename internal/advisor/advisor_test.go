package advisor

import (
	"math"
	"testing"

	"paragraph/internal/apps"
	"paragraph/internal/dataset"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/variants"
)

// weightOracle is a stub cost model: it "predicts" from the graph's total
// log-weight and the scaled thread feature, so rankings are deterministic
// and interpretable without training a network.
type weightOracle struct{}

func (weightOracle) Predict(s *gnn.Sample) float64 {
	var total float64
	for _, rel := range s.G.Rels {
		for _, w := range rel.LogW {
			total += w
		}
	}
	// More per-worker weight → slower; more threads → faster.
	return total/1e4 - 0.1*s.Feats[1]
}

// testPrep builds a Prepared carrying plausible scalers without running the
// full pipeline.
func testPrep() *dataset.Prepared {
	return &dataset.Prepared{
		TargetScaler: dataset.Scaler{Min: math.Log(10), Max: math.Log(1e6)},
		TeamScaler:   dataset.Scaler{Min: 0, Max: 256},
		ThreadScaler: dataset.Scaler{Min: 1, Max: 256},
		WScale:       10,
	}
}

func TestAdviseRanksAndFilters(t *testing.T) {
	k, _ := apps.ByName("matmul")
	a := New(weightOracle{}, testPrep(), hw.V100())
	recs, err := a.Advise(k, map[string]float64{"n": 256}, SearchSpace{
		GPUTeams:   []int{64, 256},
		GPUThreads: []int{64, 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 GPU kinds × 4 grid points.
	if len(recs) != 16 {
		t.Fatalf("recommendations = %d, want 16", len(recs))
	}
	for i, r := range recs {
		if r.Kind.IsGPU() != true {
			t.Errorf("rec %d: CPU variant on GPU advisor", i)
		}
		if i > 0 && recs[i-1].PredictedUS > r.PredictedUS {
			t.Errorf("recs not sorted at %d: %v > %v", i, recs[i-1].PredictedUS, r.PredictedUS)
		}
		if r.Source == "" {
			t.Errorf("rec %d: missing source", i)
		}
	}
}

func TestAdviseCPUMachineUsesCPUVariants(t *testing.T) {
	k, _ := apps.ByName("transpose")
	a := New(weightOracle{}, testPrep(), hw.Power9())
	recs, err := a.Advise(k, map[string]float64{"n": 512, "m": 512}, SearchSpace{
		CPUThreads: []int{1, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// transpose is collapsible: cpu + cpu_collapse × 2 thread counts.
	if len(recs) != 4 {
		t.Fatalf("recommendations = %d, want 4", len(recs))
	}
	for _, r := range recs {
		if r.Kind.IsGPU() {
			t.Errorf("GPU variant recommended for CPU machine")
		}
	}
}

func TestAdviseSkipsCollapseForNonCollapsible(t *testing.T) {
	k, _ := apps.ByName("correlation_pearson")
	a := New(weightOracle{}, testPrep(), hw.MI50())
	recs, err := a.Advise(k, map[string]float64{"n": 4096}, SearchSpace{
		GPUTeams: []int{64}, GPUThreads: []int{128},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Kind.IsCollapse() {
			t.Errorf("collapse variant for non-collapsible kernel")
		}
	}
	if len(recs) != 2 { // gpu, gpu_mem
		t.Errorf("recommendations = %d, want 2", len(recs))
	}
}

func TestBestMatchesFirstRecommendation(t *testing.T) {
	k, _ := apps.ByName("matvec")
	a := New(weightOracle{}, testPrep(), hw.V100())
	space := SearchSpace{GPUTeams: []int{64, 128}, GPUThreads: []int{64}}
	bindings := map[string]float64{"n": 1024, "m": 512}
	recs, err := a.Advise(k, bindings, space)
	if err != nil {
		t.Fatal(err)
	}
	best, err := a.Best(k, bindings, space)
	if err != nil {
		t.Fatal(err)
	}
	if best != recs[0] {
		t.Error("Best != first recommendation")
	}
}

func TestAdviseErrors(t *testing.T) {
	a := New(weightOracle{}, testPrep(), hw.V100())
	if _, err := a.Advise(apps.Kernel{}, nil, DefaultSearchSpace()); err == nil {
		t.Error("invalid kernel accepted")
	}
	k, _ := apps.ByName("matmul")
	// Empty search space for this machine class.
	if _, err := a.Advise(k, nil, SearchSpace{CPUThreads: []int{4}}); err == nil {
		t.Error("empty GPU grid accepted")
	}
}

func TestPredictInstanceUSAppliesScalers(t *testing.T) {
	k, _ := apps.ByName("pf_motion")
	src, err := variants.Generate(k, variants.GPU, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	in := variants.Instance{
		Kernel: k, Kind: variants.GPU, Teams: 64, Threads: 128,
		Bindings: map[string]float64{"n": 4096}, Source: src,
	}
	prep := testPrep()
	a := New(weightOracle{}, prep, hw.V100())
	us, err := a.PredictInstanceUS(in)
	if err != nil {
		t.Fatal(err)
	}
	if us <= 0 || math.IsNaN(us) {
		t.Errorf("predicted us = %v", us)
	}
	// The sample must carry the training scalers.
	s, err := a.EncodeInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.G.WScale != prep.WScale {
		t.Error("WScale not applied")
	}
	if s.Feats[0] != prep.TeamScaler.Scale(64) || s.Feats[1] != prep.ThreadScaler.Scale(128) {
		t.Error("feature scalers not applied")
	}
}

func TestDefaultSearchSpaceNonEmpty(t *testing.T) {
	sp := DefaultSearchSpace()
	if len(sp.CPUThreads) == 0 || len(sp.GPUTeams) == 0 || len(sp.GPUThreads) == 0 {
		t.Error("default search space incomplete")
	}
}

// TestEndToEndWithTrainedModel wires a real (tiny) trained GNN through the
// advisor, checking the integration seam the examples rely on.
func TestEndToEndWithTrainedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	k, _ := apps.ByName("matmul")
	// Build a micro-dataset directly from instances on V100.
	m := gnn.NewModel(gnn.Config{Seed: 1, Hidden: 8, Layers: 1, Relations: 8})
	prep := testPrep()
	a := New(m, prep, hw.V100())
	recs, err := a.Advise(k, map[string]float64{"n": 128}, SearchSpace{
		GPUTeams: []int{64}, GPUThreads: []int{64, 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("recs = %d, want 8", len(recs))
	}
	for _, r := range recs {
		if r.PredictedUS <= 0 {
			t.Errorf("non-positive prediction %v", r.PredictedUS)
		}
	}
}
