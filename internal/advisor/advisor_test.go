package advisor

import (
	"math"
	"sync"
	"testing"

	"paragraph/internal/apps"
	"paragraph/internal/dataset"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/variants"
)

// weightOracle is a stub cost model: it "predicts" from the graph's total
// log-weight and the scaled thread feature, so rankings are deterministic
// and interpretable without training a network.
type weightOracle struct{}

func (weightOracle) Predict(s *gnn.Sample) float64 {
	var total float64
	for _, rel := range s.G.Rels {
		for _, w := range rel.LogW {
			total += w
		}
	}
	// More per-worker weight → slower; more threads → faster.
	return total/1e4 - 0.1*s.Feats[1]
}

// testPrep builds a Prepared carrying plausible scalers without running the
// full pipeline.
func testPrep() *dataset.Prepared {
	return &dataset.Prepared{
		TargetScaler: dataset.Scaler{Min: math.Log(10), Max: math.Log(1e6)},
		TeamScaler:   dataset.Scaler{Min: 0, Max: 256},
		ThreadScaler: dataset.Scaler{Min: 1, Max: 256},
		WScale:       10,
	}
}

func TestAdviseRanksAndFilters(t *testing.T) {
	k, _ := apps.ByName("matmul")
	a := New(weightOracle{}, testPrep(), hw.V100())
	recs, err := a.Advise(k, map[string]float64{"n": 256}, SearchSpace{
		GPUTeams:   []int{64, 256},
		GPUThreads: []int{64, 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 GPU kinds × 4 grid points.
	if len(recs) != 16 {
		t.Fatalf("recommendations = %d, want 16", len(recs))
	}
	for i, r := range recs {
		if r.Kind.IsGPU() != true {
			t.Errorf("rec %d: CPU variant on GPU advisor", i)
		}
		if i > 0 && recs[i-1].PredictedUS > r.PredictedUS {
			t.Errorf("recs not sorted at %d: %v > %v", i, recs[i-1].PredictedUS, r.PredictedUS)
		}
		if r.Source == "" {
			t.Errorf("rec %d: missing source", i)
		}
	}
}

func TestAdviseCPUMachineUsesCPUVariants(t *testing.T) {
	k, _ := apps.ByName("transpose")
	a := New(weightOracle{}, testPrep(), hw.Power9())
	recs, err := a.Advise(k, map[string]float64{"n": 512, "m": 512}, SearchSpace{
		CPUThreads: []int{1, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// transpose is collapsible: cpu + cpu_collapse × 2 thread counts.
	if len(recs) != 4 {
		t.Fatalf("recommendations = %d, want 4", len(recs))
	}
	for _, r := range recs {
		if r.Kind.IsGPU() {
			t.Errorf("GPU variant recommended for CPU machine")
		}
	}
}

func TestAdviseSkipsCollapseForNonCollapsible(t *testing.T) {
	k, _ := apps.ByName("correlation_pearson")
	a := New(weightOracle{}, testPrep(), hw.MI50())
	recs, err := a.Advise(k, map[string]float64{"n": 4096}, SearchSpace{
		GPUTeams: []int{64}, GPUThreads: []int{128},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Kind.IsCollapse() {
			t.Errorf("collapse variant for non-collapsible kernel")
		}
	}
	if len(recs) != 2 { // gpu, gpu_mem
		t.Errorf("recommendations = %d, want 2", len(recs))
	}
}

func TestBestMatchesFirstRecommendation(t *testing.T) {
	k, _ := apps.ByName("matvec")
	a := New(weightOracle{}, testPrep(), hw.V100())
	space := SearchSpace{GPUTeams: []int{64, 128}, GPUThreads: []int{64}}
	bindings := map[string]float64{"n": 1024, "m": 512}
	recs, err := a.Advise(k, bindings, space)
	if err != nil {
		t.Fatal(err)
	}
	best, err := a.Best(k, bindings, space)
	if err != nil {
		t.Fatal(err)
	}
	if best != recs[0] {
		t.Error("Best != first recommendation")
	}
}

func TestAdviseErrors(t *testing.T) {
	a := New(weightOracle{}, testPrep(), hw.V100())
	if _, err := a.Advise(apps.Kernel{}, nil, DefaultSearchSpace()); err == nil {
		t.Error("invalid kernel accepted")
	}
	k, _ := apps.ByName("matmul")
	// Empty search space for this machine class.
	if _, err := a.Advise(k, nil, SearchSpace{CPUThreads: []int{4}}); err == nil {
		t.Error("empty GPU grid accepted")
	}
}

func TestPredictInstanceUSAppliesScalers(t *testing.T) {
	k, _ := apps.ByName("pf_motion")
	src, err := variants.Generate(k, variants.GPU, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	in := variants.Instance{
		Kernel: k, Kind: variants.GPU, Teams: 64, Threads: 128,
		Bindings: map[string]float64{"n": 4096}, Source: src,
	}
	prep := testPrep()
	a := New(weightOracle{}, prep, hw.V100())
	us, err := a.PredictInstanceUS(in)
	if err != nil {
		t.Fatal(err)
	}
	if us <= 0 || math.IsNaN(us) {
		t.Errorf("predicted us = %v", us)
	}
	// The sample must carry the training scalers.
	s, err := a.EncodeInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.G.WScale != prep.WScale {
		t.Error("WScale not applied")
	}
	if s.Feats[0] != prep.TeamScaler.Scale(64) || s.Feats[1] != prep.ThreadScaler.Scale(128) {
		t.Error("feature scalers not applied")
	}
}

func TestDefaultSearchSpaceNonEmpty(t *testing.T) {
	sp := DefaultSearchSpace()
	if len(sp.CPUThreads) == 0 || len(sp.GPUTeams) == 0 || len(sp.GPUThreads) == 0 {
		t.Error("default search space incomplete")
	}
}

// TestConcurrentAdviseMatchesSerial pins the service contract: fanning the
// grid across workers must reproduce the serial ranking exactly.
func TestConcurrentAdviseMatchesSerial(t *testing.T) {
	k, _ := apps.ByName("matmul")
	bindings := map[string]float64{"n": 256}
	space := SearchSpace{GPUTeams: []int{16, 64, 128, 256}, GPUThreads: []int{64, 128, 256}}

	serial := New(weightOracle{}, testPrep(), hw.V100())
	serial.SetWorkers(1)
	want, err := serial.Advise(k, bindings, space)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		conc := New(weightOracle{}, testPrep(), hw.V100())
		conc.SetWorkers(workers)
		got, err := conc.Advise(k, bindings, space)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d recs, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: rec %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// countingCache is a trivial EncodeCache recording traffic.
type countingCache struct {
	mu         sync.Mutex
	m          map[string]*gnn.Graph
	hits, adds int
}

func newCountingCache() *countingCache { return &countingCache{m: map[string]*gnn.Graph{}} }

func (c *countingCache) Get(key string) (*gnn.Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.m[key]
	if ok {
		c.hits++
	}
	return g, ok
}

func (c *countingCache) Add(key string, g *gnn.Graph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = g
	c.adds++
}

func TestEncodeCacheMemoizesAndStaysImmutable(t *testing.T) {
	k, _ := apps.ByName("matmul")
	bindings := map[string]float64{"n": 256}
	space := SearchSpace{GPUTeams: []int{16, 64}, GPUThreads: []int{128}}
	cache := newCountingCache()

	a := New(weightOracle{}, testPrep(), hw.V100())
	a.SetEncodeCache(cache)
	a.SetWorkers(1)
	first, err := a.Advise(k, bindings, space)
	if err != nil {
		t.Fatal(err)
	}
	if cache.adds == 0 {
		t.Fatal("cache never populated")
	}
	coldAdds := cache.adds
	second, err := a.Advise(k, bindings, space)
	if err != nil {
		t.Fatal(err)
	}
	if cache.adds != coldAdds {
		t.Errorf("warm Advise re-encoded: adds %d → %d", coldAdds, cache.adds)
	}
	if cache.hits == 0 {
		t.Error("warm Advise never hit the cache")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("cached rec %d differs: %+v vs %+v", i, second[i], first[i])
		}
	}
	// A second advisor with a different WScale sharing the cache must not
	// see (or cause) scaled entries.
	prep2 := testPrep()
	prep2.WScale = 99
	b := New(weightOracle{}, prep2, hw.V100())
	b.SetEncodeCache(cache)
	src, err := variants.Generate(k, variants.GPU, 16, 128)
	if err != nil {
		t.Fatal(err)
	}
	in := variants.Instance{Kernel: k, Kind: variants.GPU, Teams: 16, Threads: 128,
		Bindings: bindings, Source: src}
	sb, err := b.EncodeInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if sb.G.WScale != 99 {
		t.Errorf("advisor b sample WScale = %v, want 99", sb.G.WScale)
	}
	sa, err := a.EncodeInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if sa.G.WScale != testPrep().WScale {
		t.Errorf("shared cache leaked WScale across advisors: got %v", sa.G.WScale)
	}
}

func TestEncodeKeyDiscriminates(t *testing.T) {
	base := EncodeKey("void f(){}", 2, 8, map[string]float64{"n": 64, "m": 32})
	if base != EncodeKey("void f(){}", 2, 8, map[string]float64{"m": 32, "n": 64}) {
		t.Error("key depends on bindings map order")
	}
	for name, other := range map[string]string{
		"source":   EncodeKey("void g(){}", 2, 8, map[string]float64{"n": 64, "m": 32}),
		"level":    EncodeKey("void f(){}", 1, 8, map[string]float64{"n": 64, "m": 32}),
		"threads":  EncodeKey("void f(){}", 2, 4, map[string]float64{"n": 64, "m": 32}),
		"bindings": EncodeKey("void f(){}", 2, 8, map[string]float64{"n": 64, "m": 33}),
	} {
		if other == base {
			t.Errorf("key ignores %s", name)
		}
	}
}

// TestEndToEndWithTrainedModel wires a real (tiny) trained GNN through the
// advisor, checking the integration seam the examples rely on.
func TestEndToEndWithTrainedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	k, _ := apps.ByName("matmul")
	// Build a micro-dataset directly from instances on V100.
	m := gnn.NewModel(gnn.Config{Seed: 1, Hidden: 8, Layers: 1, Relations: 8})
	prep := testPrep()
	a := New(m, prep, hw.V100())
	recs, err := a.Advise(k, map[string]float64{"n": 128}, SearchSpace{
		GPUTeams: []int{64}, GPUThreads: []int{64, 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("recs = %d, want 8", len(recs))
	}
	for _, r := range recs {
		if r.PredictedUS <= 0 {
			t.Errorf("non-positive prediction %v", r.PredictedUS)
		}
	}
}
