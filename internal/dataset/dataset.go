// Package dataset assembles the training data of Figure 3: kernel variants
// (package variants) are "executed" on the modeled accelerators through the
// cluster substrate (packages sim and cluster), runtimes are recorded per
// platform (Table II), ParaGraphs are built and encoded, and finally
// targets, edge weights and the (teams, threads) features are normalized
// with a MinMax scaler and split 9:1 into train/validation — matching
// §IV-B.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"paragraph/internal/cluster"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/metrics"
	"paragraph/internal/paragraph"
	"paragraph/internal/sim"
	"paragraph/internal/variants"
)

// Point is one measured data point: a kernel instance with its runtime on
// one platform.
type Point struct {
	Instance  variants.Instance
	Machine   string
	RuntimeUS float64
}

// Platform is the per-accelerator dataset slice (one row of Table II).
type Platform struct {
	Machine hw.Machine
	Points  []Point
	Failed  int // measurements lost to simulated node failures
}

// Stats summarizes a platform slice as Table II reports it.
type Stats struct {
	NumPoints    int
	MinRuntimeMS float64
	MaxRuntimeMS float64
	StdDevMS     float64
}

// Stats computes the Table II row for the platform.
func (p *Platform) Stats() Stats {
	ms := make([]float64, len(p.Points))
	for i, pt := range p.Points {
		ms[i] = pt.RuntimeUS / 1000
	}
	s := Stats{NumPoints: len(ms)}
	if len(ms) == 0 {
		return s
	}
	s.MinRuntimeMS = ms[0]
	s.MaxRuntimeMS = ms[0]
	for _, v := range ms {
		if v < s.MinRuntimeMS {
			s.MinRuntimeMS = v
		}
		if v > s.MaxRuntimeMS {
			s.MaxRuntimeMS = v
		}
	}
	s.StdDevMS = metrics.StdDev(ms)
	return s
}

// Config controls collection.
type Config struct {
	Sweep   variants.SweepConfig
	Sim     sim.Config
	Cluster cluster.Config
	// MaxPerPlatform subsamples the instance list per platform (0 = all);
	// used to keep test/bench runs fast.
	MaxPerPlatform int
	Seed           int64
}

// DefaultConfig mirrors the paper's collection at reduced scale.
func DefaultConfig() Config {
	return Config{
		Sweep:   variants.DefaultSweep(),
		Sim:     sim.Config{Seed: 1},
		Cluster: cluster.Config{Nodes: runtime.GOMAXPROCS(0), FailureRate: 0.01, MaxRetries: 3, Seed: 1},
		Seed:    1,
	}
}

// Collect generates the dataset slice for one platform: CPU machines
// measure the cpu/cpu_collapse variants, GPU machines the four gpu
// variants, as in the paper's Summit/Corona runs. Measurements go through
// the cluster substrate, so a small fraction is lost to simulated node
// failures (and excluded, like the paper's corrupted Laplace data on MI50).
func Collect(m hw.Machine, cfg Config) (*Platform, error) {
	all, err := variants.SweepAll(cfg.Sweep)
	if err != nil {
		return nil, err
	}
	var mine []variants.Instance
	for _, in := range all {
		if in.Kind.IsGPU() == m.IsGPU {
			mine = append(mine, in)
		}
	}
	if cfg.MaxPerPlatform > 0 && len(mine) > cfg.MaxPerPlatform {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(len(m.Name))))
		rng.Shuffle(len(mine), func(i, j int) { mine[i], mine[j] = mine[j], mine[i] })
		mine = mine[:cfg.MaxPerPlatform]
		sort.Slice(mine, func(i, j int) bool { return mine[i].Name() < mine[j].Name() })
	}

	jobs := make([]cluster.Job, len(mine))
	for i, in := range mine {
		in := in
		jobs[i] = cluster.Job{
			ID: in.Name(),
			Run: func() (float64, error) {
				r, err := sim.Simulate(in, m, cfg.Sim)
				if err != nil {
					return 0, err
				}
				return r.MicroSec, nil
			},
		}
	}
	cl := cluster.New(cfg.Cluster)
	results, stats := cl.Submit(jobs)

	p := &Platform{Machine: m, Failed: stats.Failed}
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		p.Points = append(p.Points, Point{
			Instance:  mine[i],
			Machine:   m.Name,
			RuntimeUS: r.Value,
		})
	}
	if len(p.Points) == 0 {
		return nil, fmt.Errorf("dataset: no successful measurements on %s", m.Name)
	}
	return p, nil
}

// CollectAll builds all four platform slices (Table II).
func CollectAll(cfg Config) ([]*Platform, error) {
	var out []*Platform
	for _, m := range hw.All() {
		p, err := Collect(m, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Scaler is the MinMax scaler of §IV-B, mapping [min,max] to [0,1].
type Scaler struct {
	Min, Max float64
}

// FitScaler learns the bounds of xs.
func FitScaler(xs []float64) Scaler {
	if len(xs) == 0 {
		return Scaler{0, 1}
	}
	s := Scaler{Min: xs[0], Max: xs[0]}
	for _, v := range xs[1:] {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	return s
}

// Scale maps v into [0,1] (clamping outside the fitted range).
func (s Scaler) Scale(v float64) float64 {
	if s.Max <= s.Min {
		return 0
	}
	x := (v - s.Min) / (s.Max - s.Min)
	return math.Max(0, math.Min(1, x))
}

// Unscale inverts Scale (without clamping).
func (s Scaler) Unscale(x float64) float64 { return s.Min + x*(s.Max-s.Min) }

// Prepared is a platform dataset ready for training.
type Prepared struct {
	Train []*gnn.Sample
	Val   []*gnn.Sample
	// TargetScaler maps log(runtime µs) to [0,1]; DescaleUS inverts a
	// scaled prediction back to microseconds.
	TargetScaler Scaler
	TeamScaler   Scaler
	ThreadScaler Scaler
	WScale       float64
}

// DescaleUS converts a scaled model output back to microseconds.
func (p *Prepared) DescaleUS(scaled float64) float64 {
	return math.Exp(p.TargetScaler.Unscale(scaled))
}

// PrepConfig controls sample preparation.
type PrepConfig struct {
	Level       paragraph.Level
	ValFraction float64 // default 0.1 (paper: 9:1 split)
	Seed        int64
	Workers     int // graph-building workers; default GOMAXPROCS
	DefaultTrip float64
}

func (c PrepConfig) withDefaults() PrepConfig {
	if c.ValFraction <= 0 || c.ValFraction >= 1 {
		c.ValFraction = 0.1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Prepare builds graph samples for every point at the requested
// representation level, fits the scalers on the whole slice, and splits
// train/validation.
func Prepare(points []Point, cfg PrepConfig) (*Prepared, error) {
	cfg = cfg.withDefaults()
	if len(points) == 0 {
		return nil, fmt.Errorf("dataset: no points to prepare")
	}

	samples := make([]*gnn.Sample, len(points))
	errs := make([]error, len(points))
	var wg sync.WaitGroup
	work := make(chan int)
	workers := cfg.Workers
	if workers > len(points) {
		workers = len(points)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				samples[i], errs[i] = buildSample(points[i], cfg)
			}
		}()
	}
	for i := range points {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dataset: point %d (%s): %w", i, points[i].Instance.Name(), err)
		}
	}

	// Fit scalers over the full slice (targets in log-space: runtimes span
	// orders of magnitude, as Table II's ranges show).
	logT := make([]float64, len(samples))
	teams := make([]float64, len(samples))
	threads := make([]float64, len(samples))
	var wmax float64
	for i, s := range samples {
		logT[i] = math.Log(math.Max(s.RawUS, 1e-3))
		teams[i] = float64(points[i].Instance.Teams)
		threads[i] = float64(points[i].Instance.Threads)
		if w := s.G.MaxLogWeight(); w > wmax {
			wmax = w
		}
	}
	prep := &Prepared{
		TargetScaler: FitScaler(logT),
		TeamScaler:   FitScaler(teams),
		ThreadScaler: FitScaler(threads),
		WScale:       math.Max(wmax, 1),
	}
	for i, s := range samples {
		s.Target = prep.TargetScaler.Scale(logT[i])
		s.Feats = [2]float64{prep.TeamScaler.Scale(teams[i]), prep.ThreadScaler.Scale(threads[i])}
		s.G.WScale = prep.WScale
	}

	// 9:1 shuffle split.
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(samples))
	nVal := int(float64(len(samples)) * cfg.ValFraction)
	if nVal < 1 {
		nVal = 1
	}
	for i, idx := range order {
		if i < nVal {
			prep.Val = append(prep.Val, samples[idx])
		} else {
			prep.Train = append(prep.Train, samples[idx])
		}
	}
	return prep, nil
}

// buildSample parses and encodes one point's ParaGraph.
func buildSample(pt Point, cfg PrepConfig) (*gnn.Sample, error) {
	in := pt.Instance
	// Weight division uses the thread count, not teams×threads: the paper
	// divides iterations "by the number of threads" (§III-A.3), and using
	// total GPU parallelism would clamp most annotated-loop weights to 1,
	// collapsing different problem sizes onto identical graphs.
	g, err := paragraph.BuildKernel(in.Source, paragraph.Options{
		Level:       cfg.Level,
		Threads:     in.Threads,
		Bindings:    in.Bindings,
		DefaultTrip: cfg.DefaultTrip,
	})
	if err != nil {
		return nil, err
	}
	eg, err := gnn.Encode(g, int(paragraph.NumEdgeTypes))
	if err != nil {
		return nil, err
	}
	return &gnn.Sample{
		G:     eg,
		RawUS: pt.RuntimeUS,
		App:   in.Kernel.App,
		Name:  in.Name(),
	}, nil
}
