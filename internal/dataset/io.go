package dataset

import (
	"encoding/json"
	"fmt"
	"io"

	"paragraph/internal/analysis"
	"paragraph/internal/apps"
	"paragraph/internal/variants"
)

// record is the compact on-disk form of a Point: the kernel template is
// reconstructed from the suite by name, so files stay small and the source
// of truth for kernels stays in code.
type record struct {
	Kernel    string             `json:"kernel"`
	Kind      string             `json:"kind"`
	Teams     int                `json:"teams"`
	Threads   int                `json:"threads"`
	Bindings  map[string]float64 `json:"bindings"`
	Machine   string             `json:"machine"`
	RuntimeUS float64            `json:"runtime_us"`
}

// file is the on-disk dataset envelope.
type file struct {
	Version int      `json:"version"`
	Points  []record `json:"points"`
}

// SavePoints writes points as JSON.
func SavePoints(w io.Writer, points []Point) error {
	f := file{Version: 1, Points: make([]record, len(points))}
	for i, p := range points {
		f.Points[i] = record{
			Kernel:    p.Instance.Kernel.Name,
			Kind:      p.Instance.Kind.String(),
			Teams:     p.Instance.Teams,
			Threads:   p.Instance.Threads,
			Bindings:  p.Instance.Bindings,
			Machine:   p.Machine,
			RuntimeUS: p.RuntimeUS,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// kindByName maps the paper's variant names back to kinds.
var kindByName = func() map[string]variants.Kind {
	m := map[string]variants.Kind{}
	for _, k := range variants.Kinds() {
		m[k.String()] = k
	}
	return m
}()

// LoadPoints reads a JSON dataset, regenerating each instance's transformed
// source from the kernel suite.
func LoadPoints(r io.Reader) ([]Point, error) {
	var f file
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("dataset: decoding: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("dataset: unsupported version %d", f.Version)
	}
	points := make([]Point, len(f.Points))
	for i, rec := range f.Points {
		k, ok := apps.ByName(rec.Kernel)
		if !ok {
			return nil, fmt.Errorf("dataset: unknown kernel %q", rec.Kernel)
		}
		kind, ok := kindByName[rec.Kind]
		if !ok {
			return nil, fmt.Errorf("dataset: unknown variant kind %q", rec.Kind)
		}
		src, err := variants.Generate(k, kind, rec.Teams, rec.Threads)
		if err != nil {
			return nil, fmt.Errorf("dataset: regenerating %s/%s: %w", rec.Kernel, rec.Kind, err)
		}
		points[i] = Point{
			Instance: variants.Instance{
				Kernel:   k,
				Kind:     kind,
				Teams:    rec.Teams,
				Threads:  rec.Threads,
				Bindings: analysis.Env(rec.Bindings),
				Source:   src,
			},
			Machine:   rec.Machine,
			RuntimeUS: rec.RuntimeUS,
		}
	}
	return points, nil
}
