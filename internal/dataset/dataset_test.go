package dataset

import (
	"math"
	"testing"

	"paragraph/internal/cluster"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
	"paragraph/internal/sim"
	"paragraph/internal/variants"
)

// tinyConfig keeps collection fast for tests.
func tinyConfig() Config {
	return Config{
		Sweep: variants.SweepConfig{
			// One parallelism level per side so the cpu:gpu point ratio is
			// driven purely by the 2-vs-4 variant-kind split, as in Table II.
			CPUThreads:        []int{8},
			GPUTeams:          []int{64},
			GPUThreads:        []int{128},
			MaxSizesPerKernel: 1,
		},
		Sim:     sim.Config{Seed: 1},
		Cluster: cluster.Config{Nodes: 4, FailureRate: 0, Seed: 1},
		Seed:    1,
	}
}

func collect(t *testing.T, m hw.Machine) *Platform {
	t.Helper()
	p, err := Collect(m, tinyConfig())
	if err != nil {
		t.Fatalf("Collect(%s): %v", m.Name, err)
	}
	return p
}

func TestCollectSplitsVariantsByPlatform(t *testing.T) {
	cpu := collect(t, hw.Power9())
	gpu := collect(t, hw.V100())
	for _, pt := range cpu.Points {
		if pt.Instance.Kind.IsGPU() {
			t.Errorf("GPU variant %v on CPU platform", pt.Instance.Kind)
		}
	}
	for _, pt := range gpu.Points {
		if !pt.Instance.Kind.IsGPU() {
			t.Errorf("CPU variant %v on GPU platform", pt.Instance.Kind)
		}
	}
	// GPU platforms see 4 of 6 kinds, CPUs 2 of 6 → roughly 2x the points
	// for the same sweep (Table II shows the same ratio).
	if gpu.Stats().NumPoints <= cpu.Stats().NumPoints {
		t.Errorf("gpu points %d should exceed cpu points %d",
			gpu.Stats().NumPoints, cpu.Stats().NumPoints)
	}
}

func TestCollectStats(t *testing.T) {
	p := collect(t, hw.V100())
	s := p.Stats()
	if s.NumPoints != len(p.Points) {
		t.Errorf("NumPoints = %d", s.NumPoints)
	}
	if s.MinRuntimeMS <= 0 || s.MaxRuntimeMS <= s.MinRuntimeMS {
		t.Errorf("runtime range [%v, %v] implausible", s.MinRuntimeMS, s.MaxRuntimeMS)
	}
	if s.StdDevMS <= 0 {
		t.Errorf("stddev = %v", s.StdDevMS)
	}
	// Table II: ranges span orders of magnitude.
	if s.MaxRuntimeMS/s.MinRuntimeMS < 10 {
		t.Errorf("dynamic range %v too narrow", s.MaxRuntimeMS/s.MinRuntimeMS)
	}
}

func TestCollectWithFailures(t *testing.T) {
	cfg := tinyConfig()
	cfg.Cluster.FailureRate = 0.5
	cfg.Cluster.MaxRetries = 1
	p, err := Collect(hw.MI50(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Failed == 0 {
		t.Error("expected some lost measurements at 50% failure rate")
	}
	if len(p.Points) == 0 {
		t.Error("all measurements lost")
	}
}

func TestCollectMaxPerPlatform(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxPerPlatform = 10
	p, err := Collect(hw.EPYC7401(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Points) > 10 {
		t.Errorf("points = %d, want <= 10", len(p.Points))
	}
}

func TestCollectAllFourPlatforms(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxPerPlatform = 8
	ps, err := CollectAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("platforms = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Machine.Name] = true
	}
	if len(names) != 4 {
		t.Errorf("platform names = %v", names)
	}
}

func TestScaler(t *testing.T) {
	s := FitScaler([]float64{10, 20, 30})
	if s.Min != 10 || s.Max != 30 {
		t.Errorf("scaler = %+v", s)
	}
	if got := s.Scale(20); got != 0.5 {
		t.Errorf("Scale(20) = %v", got)
	}
	if got := s.Scale(-100); got != 0 {
		t.Errorf("clamp low = %v", got)
	}
	if got := s.Scale(100); got != 1 {
		t.Errorf("clamp high = %v", got)
	}
	if got := s.Unscale(0.5); got != 20 {
		t.Errorf("Unscale = %v", got)
	}
	deg := FitScaler([]float64{5, 5})
	if deg.Scale(5) != 0 {
		t.Error("degenerate scaler should return 0")
	}
	empty := FitScaler(nil)
	if empty.Scale(0.3) != 0.3 {
		t.Errorf("empty scaler Scale(0.3) = %v", empty.Scale(0.3))
	}
}

func TestPrepareBuildsScaledSamples(t *testing.T) {
	p := collect(t, hw.V100())
	prep, err := Prepare(p.Points, PrepConfig{Level: paragraph.LevelParaGraph, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := len(prep.Train) + len(prep.Val)
	if total != len(p.Points) {
		t.Errorf("samples = %d, points = %d", total, len(p.Points))
	}
	// 9:1 split.
	wantVal := int(float64(total) * 0.1)
	if len(prep.Val) != wantVal {
		t.Errorf("val = %d, want %d", len(prep.Val), wantVal)
	}
	for _, s := range prep.Train {
		if s.Target < 0 || s.Target > 1 {
			t.Errorf("target %v outside [0,1]", s.Target)
		}
		if s.Feats[0] < 0 || s.Feats[0] > 1 || s.Feats[1] < 0 || s.Feats[1] > 1 {
			t.Errorf("feats %v outside [0,1]", s.Feats)
		}
		if s.G.WScale != prep.WScale {
			t.Error("WScale not propagated")
		}
		if s.App == "" || s.Name == "" {
			t.Error("sample metadata missing")
		}
	}
	// Descale inverts the target transform.
	for _, s := range prep.Val[:min(5, len(prep.Val))] {
		back := prep.DescaleUS(s.Target)
		if math.Abs(math.Log(back)-math.Log(s.RawUS)) > 1e-6 {
			t.Errorf("descale(%v) = %v, want %v", s.Target, back, s.RawUS)
		}
	}
}

func TestPrepareLevelsDiffer(t *testing.T) {
	p := collect(t, hw.Power9())
	raw, err := Prepare(p.Points[:10], PrepConfig{Level: paragraph.LevelRawAST, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Prepare(p.Points[:10], PrepConfig{Level: paragraph.LevelParaGraph, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rawEdges := raw.Train[0].G.NumEdges()
	fullEdges := full.Train[0].G.NumEdges()
	if fullEdges <= rawEdges {
		t.Errorf("ParaGraph edges %d should exceed RawAST edges %d", fullEdges, rawEdges)
	}
}

func TestPrepareEmpty(t *testing.T) {
	if _, err := Prepare(nil, PrepConfig{}); err == nil {
		t.Error("empty Prepare accepted")
	}
}

func TestPrepareDeterministic(t *testing.T) {
	p := collect(t, hw.MI50())
	pts := p.Points[:12]
	p1, err := Prepare(pts, PrepConfig{Level: paragraph.LevelParaGraph, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Prepare(pts, PrepConfig{Level: paragraph.LevelParaGraph, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Train) != len(p2.Train) {
		t.Fatal("split sizes differ")
	}
	for i := range p1.Train {
		if p1.Train[i].Name != p2.Train[i].Name || p1.Train[i].Target != p2.Train[i].Target {
			t.Errorf("sample %d differs", i)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
