package dataset

import (
	"bytes"
	"strings"
	"testing"

	"paragraph/internal/hw"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p := collect(t, hw.V100())
	var buf bytes.Buffer
	if err := SavePoints(&buf, p.Points); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(p.Points) {
		t.Fatalf("loaded %d, want %d", len(loaded), len(p.Points))
	}
	for i := range loaded {
		a, b := p.Points[i], loaded[i]
		if a.Instance.Name() != b.Instance.Name() {
			t.Errorf("point %d name: %q vs %q", i, a.Instance.Name(), b.Instance.Name())
		}
		if a.RuntimeUS != b.RuntimeUS || a.Machine != b.Machine {
			t.Errorf("point %d payload differs", i)
		}
		if a.Instance.Source != b.Instance.Source {
			t.Errorf("point %d source not regenerated identically", i)
		}
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := []string{
		"{not json",
		`{"version": 2, "points": []}`,
		`{"version": 1, "points": [{"kernel": "nope", "kind": "cpu"}]}`,
		`{"version": 1, "points": [{"kernel": "matmul", "kind": "sideways"}]}`,
		`{"version": 1, "points": [{"kernel": "correlation_pearson", "kind": "cpu_collapse"}]}`,
	}
	for _, c := range cases {
		if _, err := LoadPoints(strings.NewReader(c)); err == nil {
			t.Errorf("LoadPoints(%q) succeeded", c)
		}
	}
}
