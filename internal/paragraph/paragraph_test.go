package paragraph

import (
	"math"
	"testing"

	"paragraph/internal/cast"
	"paragraph/internal/graph"
)

func build(t *testing.T, src string, opts Options) *graph.Graph {
	t.Helper()
	g, err := BuildKernel(src, opts)
	if err != nil {
		t.Fatalf("BuildKernel: %v", err)
	}
	return g
}

// edgeWeights returns the weights of Child edges from nodes whose label
// matches src to nodes whose label matches dst.
func childWeight(g *graph.Graph, srcLabel, dstLabel string) (float64, bool) {
	for _, e := range g.Edges {
		if e.Type != int(Child) {
			continue
		}
		if g.Nodes[e.Src].Label == srcLabel && g.Nodes[e.Dst].Label == dstLabel {
			return e.Weight, true
		}
	}
	return 0, false
}

func TestRawASTHasOnlyChildEdges(t *testing.T) {
	g := build(t, `void f(int n) { for (int i = 0; i < n; i++) { n = n + 1; } }`,
		Options{Level: LevelRawAST})
	counts := g.CountByType()
	for ty := 1; ty < int(NumEdgeTypes); ty++ {
		if counts[ty] != 0 {
			t.Errorf("RawAST has %d edges of type %v", counts[ty], EdgeType(ty))
		}
	}
	if counts[int(Child)] == 0 {
		t.Error("RawAST has no Child edges")
	}
	// All weights are 1 at this level.
	for _, e := range g.Edges {
		if e.Weight != 1 {
			t.Errorf("RawAST edge weight = %v, want 1", e.Weight)
		}
	}
	// Child edge count is nodes-1 for a tree.
	if counts[int(Child)] != g.NumNodes()-1 {
		t.Errorf("child edges = %d, nodes = %d; tree property violated", counts[int(Child)], g.NumNodes())
	}
}

func TestAugmentedASTHasAllEdgeTypes(t *testing.T) {
	src := `
void f(int n, double *a) {
    for (int i = 0; i < n; i++) {
        if (a[i] > 0.0) {
            a[i] = a[i] * 2.0;
        } else {
            a[i] = 0.0;
        }
    }
}`
	g := build(t, src, Options{Level: LevelAugmentedAST})
	counts := g.CountByType()
	for _, ty := range []EdgeType{Child, NextToken, NextSib, Ref, ForExec, ForNext, ConTrue, ConFalse} {
		if counts[int(ty)] == 0 {
			t.Errorf("AugmentedAST missing %v edges", ty)
		}
	}
	// Augmented level leaves Child weights at 1 and others at 0.
	for _, e := range g.Edges {
		if e.Type == int(Child) && e.Weight != 1 {
			t.Errorf("child weight = %v, want 1", e.Weight)
		}
		if e.Type != int(Child) && e.Weight != 0 {
			t.Errorf("%v weight = %v, want 0", EdgeType(e.Type), e.Weight)
		}
	}
}

func TestForEdgeTopology(t *testing.T) {
	// Paper Figure 2 right: ForExec init→cond, cond→body; ForNext body→inc,
	// inc→cond.
	g := build(t, `void f(void) { for (int i = 0; i < 50; i++) { int x; } }`,
		Options{Level: LevelAugmentedAST})
	var forNode graph.Node
	for _, n := range g.Nodes {
		if n.Kind == int(cast.KindForStmt) {
			forNode = n
		}
	}
	// Children of ForStmt in order: init(DeclStmt), cond(BinaryOperator),
	// body(CompoundStmt), inc(UnaryOperator).
	var kids []int
	for _, e := range g.Edges {
		if e.Type == int(Child) && e.Src == forNode.ID {
			kids = append(kids, e.Dst)
		}
	}
	if len(kids) != 4 {
		t.Fatalf("ForStmt has %d children, want 4", len(kids))
	}
	init, cond, body, inc := kids[0], kids[1], kids[2], kids[3]
	wantExec := map[[2]int]bool{{init, cond}: true, {cond, body}: true}
	wantNext := map[[2]int]bool{{body, inc}: true, {inc, cond}: true}
	for _, e := range g.Edges {
		switch EdgeType(e.Type) {
		case ForExec:
			if !wantExec[[2]int{e.Src, e.Dst}] {
				t.Errorf("unexpected ForExec %d->%d", e.Src, e.Dst)
			}
			delete(wantExec, [2]int{e.Src, e.Dst})
		case ForNext:
			if !wantNext[[2]int{e.Src, e.Dst}] {
				t.Errorf("unexpected ForNext %d->%d", e.Src, e.Dst)
			}
			delete(wantNext, [2]int{e.Src, e.Dst})
		}
	}
	if len(wantExec) != 0 || len(wantNext) != 0 {
		t.Errorf("missing edges: exec=%v next=%v", wantExec, wantNext)
	}
}

func TestLoopWeights(t *testing.T) {
	// Figure 2: for (int i = 0; i < 50; i++) — init edge weight 1; cond,
	// body, inc edges weight 50.
	g := build(t, `void f(void) { for (int i = 0; i < 50; i++) { int x; } }`,
		Options{Level: LevelParaGraph})
	var forID int
	for _, n := range g.Nodes {
		if n.Kind == int(cast.KindForStmt) {
			forID = n.ID
		}
	}
	var ws []float64
	for _, e := range g.Edges {
		if e.Type == int(Child) && e.Src == forID {
			ws = append(ws, e.Weight)
		}
	}
	want := []float64{1, 50, 50, 50}
	if len(ws) != 4 {
		t.Fatalf("for children = %d", len(ws))
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("for child %d weight = %v, want %v", i, ws[i], want[i])
		}
	}
}

func TestIfWeightsInsideLoop(t *testing.T) {
	// Figure 2 middle: an if inside a region executing 50 times: cond edge
	// 50, branch edges 25.
	src := `
void f(double *a) {
    for (int i = 0; i < 50; i++) {
        if (a[i] > 50.0) {
            a[i] = 1.0;
        } else {
            a[i] = 2.0;
        }
    }
}`
	g := build(t, src, Options{Level: LevelParaGraph})
	var ifID int
	for _, n := range g.Nodes {
		if n.Kind == int(cast.KindIfStmt) {
			ifID = n.ID
		}
	}
	var ws []float64
	for _, e := range g.Edges {
		if e.Type == int(Child) && e.Src == ifID {
			ws = append(ws, e.Weight)
		}
	}
	want := []float64{50, 25, 25}
	if len(ws) != 3 {
		t.Fatalf("if children = %d", len(ws))
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("if child %d weight = %v, want %v", i, ws[i], want[i])
		}
	}
}

func TestThreadDivision(t *testing.T) {
	// Paper: 100 iterations statically scheduled over 4 threads → weight 25
	// inside the loop body.
	src := `
void f(double *a) {
    #pragma omp parallel for
    for (int i = 0; i < 100; i++) {
        a[i] = 0.0;
    }
}`
	g := build(t, src, Options{Level: LevelParaGraph, Threads: 4})
	var forID int
	for _, n := range g.Nodes {
		if n.Kind == int(cast.KindForStmt) {
			forID = n.ID
		}
	}
	var bodyW float64
	for _, e := range g.Edges {
		if e.Type == int(Child) && e.Src == forID &&
			g.Nodes[e.Dst].Kind == int(cast.KindCompoundStmt) {
			bodyW = e.Weight
		}
	}
	if bodyW != 25 {
		t.Errorf("body edge weight = %v, want 25", bodyW)
	}
}

func TestThreadDivisionOnlyOutermostLoop(t *testing.T) {
	src := `
void f(double *a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < 100; i++) {
        for (int j = 0; j < 10; j++) {
            a[i * 10 + j] = 0.0;
        }
    }
}`
	g := build(t, src, Options{Level: LevelParaGraph, Threads: 4})
	// Inner loop body executes (100/4) * 10 = 250 times.
	var innerForID = -1
	for _, e := range g.Edges {
		if e.Type != int(Child) {
			continue
		}
		if g.Nodes[e.Src].Kind == int(cast.KindForStmt) && g.Nodes[e.Dst].Kind == int(cast.KindForStmt) {
			t.Fatal("directly nested for without compound?")
		}
	}
	for _, n := range g.Nodes {
		if n.Kind == int(cast.KindForStmt) {
			innerForID = n.ID // preorder: the last ForStmt is the inner one
		}
	}
	var bodyW float64
	for _, e := range g.Edges {
		if e.Type == int(Child) && e.Src == innerForID &&
			g.Nodes[e.Dst].Kind == int(cast.KindCompoundStmt) {
			bodyW = e.Weight
		}
	}
	if bodyW != 250 {
		t.Errorf("inner body weight = %v, want 250", bodyW)
	}
}

func TestParallelismFromClauses(t *testing.T) {
	src := `
void f(double *a) {
    #pragma omp target teams distribute parallel for num_teams(2) num_threads(5)
    for (int i = 0; i < 100; i++) {
        a[i] = 0.0;
    }
}`
	g := build(t, src, Options{Level: LevelParaGraph})
	var forID int
	for _, n := range g.Nodes {
		if n.Kind == int(cast.KindForStmt) {
			forID = n.ID
		}
	}
	var bodyW float64
	for _, e := range g.Edges {
		if e.Type == int(Child) && e.Src == forID &&
			g.Nodes[e.Dst].Kind == int(cast.KindCompoundStmt) {
			bodyW = e.Weight
		}
	}
	if bodyW != 10 { // 100 / (2*5)
		t.Errorf("body weight = %v, want 10", bodyW)
	}
}

func TestBindingsResolveSymbolicBounds(t *testing.T) {
	src := `
void f(double *a, int n) {
    for (int i = 0; i < n; i++) {
        a[i] = 0.0;
    }
}`
	g := build(t, src, Options{Level: LevelParaGraph, Bindings: map[string]float64{"n": 640}})
	found := false
	for _, e := range g.Edges {
		if e.Type == int(Child) && e.Weight == 640 {
			found = true
		}
	}
	if !found {
		t.Error("no edge with weight 640; bindings not applied")
	}
}

func TestRefEdges(t *testing.T) {
	src := `
void f(int n) {
    int x;
    x = n + 1;
}`
	g := build(t, src, Options{Level: LevelAugmentedAST})
	refs := g.EdgesOfType(int(Ref))
	// Two refs: x -> VarDecl x, n -> ParmVarDecl n.
	if len(refs) != 2 {
		t.Fatalf("ref edges = %d, want 2", len(refs))
	}
	for _, e := range refs {
		dstKind := cast.Kind(g.Nodes[e.Dst].Kind)
		if dstKind != cast.KindVarDecl && dstKind != cast.KindParmVarDecl {
			t.Errorf("ref edge dst kind = %v", dstKind)
		}
	}
}

func TestNextTokenChain(t *testing.T) {
	g := build(t, `void f(void) { int x; x = 50; }`, Options{Level: LevelAugmentedAST})
	nts := g.EdgesOfType(int(NextToken))
	// Terminals: VarDecl(x), DeclRefExpr(x), IntegerLiteral(50) → 2 edges.
	if len(nts) != 2 {
		t.Fatalf("NextToken edges = %d, want 2", len(nts))
	}
	// Chain property: each edge's dst is the next edge's src.
	if nts[0].Dst != nts[1].Src {
		t.Error("NextToken edges do not chain")
	}
}

func TestNextSibEdges(t *testing.T) {
	g := build(t, `void f(int a, int b, int c) { }`, Options{Level: LevelAugmentedAST})
	sibs := g.EdgesOfType(int(NextSib))
	// FunctionDecl has 4 children (3 parms + body) → 3 NextSib edges.
	if len(sibs) != 3 {
		t.Fatalf("NextSib edges = %d, want 3", len(sibs))
	}
}

func TestConTrueConFalse(t *testing.T) {
	g := build(t, `void f(int x) { if (x > 0) { x = 1; } else { x = 2; } }`,
		Options{Level: LevelAugmentedAST})
	ct := g.EdgesOfType(int(ConTrue))
	cf := g.EdgesOfType(int(ConFalse))
	if len(ct) != 1 || len(cf) != 1 {
		t.Fatalf("ConTrue/ConFalse = %d/%d, want 1/1", len(ct), len(cf))
	}
	// Both originate at the condition.
	if ct[0].Src != cf[0].Src {
		t.Error("ConTrue and ConFalse should share the condition source")
	}
	// If without else: no ConFalse.
	g2 := build(t, `void f(int x) { if (x > 0) { x = 1; } }`, Options{Level: LevelAugmentedAST})
	if len(g2.EdgesOfType(int(ConFalse))) != 0 {
		t.Error("if-without-else should have no ConFalse edge")
	}
	if len(g2.EdgesOfType(int(ConTrue))) != 1 {
		t.Error("if-without-else should have a ConTrue edge")
	}
}

func TestWhileAndDoControlFlow(t *testing.T) {
	g := build(t, `void f(int n) { while (n > 0) { n--; } do { n++; } while (n < 10); }`,
		Options{Level: LevelAugmentedAST})
	if len(g.EdgesOfType(int(ForExec))) != 2 {
		t.Errorf("ForExec edges = %d, want 2 (one per loop)", len(g.EdgesOfType(int(ForExec))))
	}
	if len(g.EdgesOfType(int(ForNext))) != 2 {
		t.Errorf("ForNext edges = %d, want 2", len(g.EdgesOfType(int(ForNext))))
	}
}

func TestNestedLoopWeightsMultiply(t *testing.T) {
	src := `
void f(double *a) {
    for (int i = 0; i < 10; i++) {
        for (int j = 0; j < 20; j++) {
            a[i * 20 + j] = 0.0;
        }
    }
}`
	g := build(t, src, Options{Level: LevelParaGraph})
	// The innermost assignment's Child edge weight should be 10*20 = 200.
	var maxW float64
	for _, e := range g.Edges {
		if e.Type == int(Child) && e.Weight > maxW {
			maxW = e.Weight
		}
	}
	if maxW != 200 {
		t.Errorf("max child weight = %v, want 200", maxW)
	}
}

func TestMaxWeightCap(t *testing.T) {
	src := `
void f(double *a) {
    for (int i = 0; i < 100000; i++)
        for (int j = 0; j < 100000; j++)
            for (int k = 0; k < 100000; k++)
                a[0] = 1.0;
}`
	g := build(t, src, Options{Level: LevelParaGraph, MaxWeight: 1e6})
	for _, e := range g.Edges {
		if e.Weight > 1e6 {
			t.Errorf("weight %v exceeds cap", e.Weight)
		}
	}
}

func TestDefaultTripUsedForUnknownBounds(t *testing.T) {
	src := `
void f(double *a, int n) {
    for (int i = 0; i < n; i++) { a[i] = 0.0; }
}`
	g := build(t, src, Options{Level: LevelParaGraph, DefaultTrip: 7})
	found := false
	for _, e := range g.Edges {
		if e.Type == int(Child) && e.Weight == 7 {
			found = true
		}
	}
	if !found {
		t.Error("default trip 7 not used for unbound n")
	}
}

func TestNodeFeaturesAndSubKinds(t *testing.T) {
	g := build(t, `void f(int x) { x = x + 50; }`, Options{Level: LevelParaGraph})
	var plusSeen, assignSeen, litFeature bool
	for _, n := range g.Nodes {
		if n.Kind == int(cast.KindBinaryOperator) {
			if n.SubKind == opCodes["+"] {
				plusSeen = true
			}
			if n.SubKind == opCodes["="] {
				assignSeen = true
			}
		}
		if n.Kind == int(cast.KindIntegerLiteral) {
			want := math.Log1p(50)
			if math.Abs(n.Feature-want) < 1e-9 {
				litFeature = true
			}
		}
	}
	if !plusSeen || !assignSeen {
		t.Error("operator subkinds missing")
	}
	if !litFeature {
		t.Error("literal feature missing")
	}
}

func TestDirectiveNodeInGraph(t *testing.T) {
	src := `
void f(double *a) {
    #pragma omp target teams distribute parallel for collapse(2)
    for (int i = 0; i < 10; i++)
        for (int j = 0; j < 10; j++)
            a[i * 10 + j] = 0.0;
}`
	g := build(t, src, Options{Level: LevelParaGraph})
	var found bool
	for _, n := range g.Nodes {
		if n.Kind == int(cast.KindOMPExecutableDirective) {
			found = true
			if n.Feature != 2 {
				t.Errorf("directive feature (collapse) = %v, want 2", n.Feature)
			}
		}
	}
	if !found {
		t.Error("no OMP directive node in graph")
	}
}

func TestTransferVariantsProduceDistinctGraphs(t *testing.T) {
	// The gpu and gpu_mem variants of a kernel differ only in map clauses;
	// the representation must expose that difference (otherwise a cost
	// model cannot charge for data transfer).
	resident := `
void k(double *a, int n) {
    #pragma omp target teams distribute parallel for num_teams(8) num_threads(64)
    for (int i = 0; i < n; i++) a[i] = a[i] * 2.0;
}`
	withMem := `
void k(double *a, int n) {
    #pragma omp target teams distribute parallel for num_teams(8) num_threads(64) map(tofrom: a[0:n])
    for (int i = 0; i < n; i++) a[i] = a[i] * 2.0;
}`
	opts := Options{Level: LevelParaGraph, Bindings: map[string]float64{"n": 1024}}
	g1 := build(t, resident, opts)
	g2 := build(t, withMem, opts)
	if g2.NumNodes() <= g1.NumNodes() {
		t.Errorf("map clause added no nodes: %d vs %d", g1.NumNodes(), g2.NumNodes())
	}
	var clauseNodes int
	for _, n := range g2.Nodes {
		if n.Kind == int(cast.KindOMPClause) {
			clauseNodes++
		}
	}
	// num_teams, num_threads (thread_limit too) and map clauses all appear.
	if clauseNodes < 3 {
		t.Errorf("clause nodes = %d, want >= 3", clauseNodes)
	}
	// The mapped array's DeclRefExpr inside the clause links back to the
	// parameter via a Ref edge.
	refs := g2.EdgesOfType(int(Ref))
	if len(refs) <= len(g1.EdgesOfType(int(Ref))) {
		t.Error("map clause added no Ref edges")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("Build(nil) should fail")
	}
	if _, err := BuildKernel("void f( {", Options{}); err == nil {
		t.Error("BuildKernel on bad source should fail")
	}
}

func TestLevelAndEdgeTypeStrings(t *testing.T) {
	if LevelRawAST.String() != "Raw AST" || LevelParaGraph.String() != "ParaGraph" {
		t.Error("level names wrong")
	}
	if Level(9).String() != "Level(9)" {
		t.Error("out-of-range level name wrong")
	}
	if Child.String() != "Child" || ConFalse.String() != "ConFalse" {
		t.Error("edge type names wrong")
	}
	if EdgeType(99).String() != "EdgeType(99)" {
		t.Error("out-of-range edge type name wrong")
	}
	names := EdgeTypeNames()
	if len(names) != int(NumEdgeTypes) || names[int(Ref)] != "Ref" {
		t.Errorf("EdgeTypeNames = %v", names)
	}
	kinds := KindNames()
	if kinds[int(cast.KindForStmt)] != "ForStmt" {
		t.Errorf("KindNames broken: %v", kinds[int(cast.KindForStmt)])
	}
}

func TestGraphValidatesOnAllLevels(t *testing.T) {
	src := `
void k(double *a, double *b, int n, int m) {
    #pragma omp target teams distribute parallel for collapse(2) map(tofrom: a[0:n*m]) map(to: b[0:n*m])
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < m; j++) {
            double acc = 0.0;
            if (i > j) {
                acc = a[i * m + j] * 2.0;
            } else {
                acc = b[i * m + j] + 1.0;
            }
            a[i * m + j] = sqrt(acc);
        }
    }
}`
	for _, level := range []Level{LevelRawAST, LevelAugmentedAST, LevelParaGraph} {
		g := build(t, src, Options{Level: level, Bindings: map[string]float64{"n": 100, "m": 100}, Threads: 8})
		if err := g.Validate(); err != nil {
			t.Errorf("level %v: %v", level, err)
		}
		if g.NumNodes() == 0 {
			t.Errorf("level %v: empty graph", level)
		}
	}
}
