// Package paragraph implements the paper's core contribution: the ParaGraph
// weighted graph representation of HPC kernels (§III).
//
// A ParaGraph is built from a Clang-style AST in three cumulative levels,
// matching the paper's ablation study (§V-C):
//
//   - LevelRawAST: nodes plus Child edges only.
//   - LevelAugmentedAST: adds NextToken, NextSib, Ref, ForExec, ForNext,
//     ConTrue and ConFalse edges.
//   - LevelParaGraph: additionally weights Child edges with static
//     execution-count estimates — loop bodies multiplied by trip counts
//     (divided by the thread count under static scheduling), if-branches
//     divided by two. Non-Child edges carry weight zero, matching the
//     formalization ParaGraph = (V, E, T, W) with W zero off the Child type.
package paragraph

import (
	"fmt"
	"math"
	"strings"

	"paragraph/internal/analysis"
	"paragraph/internal/cast"
	"paragraph/internal/cparse"
	"paragraph/internal/graph"
)

// EdgeType enumerates ParaGraph's edge types (paper §III-A.2). Child is the
// plain AST parent-child edge and is the only weighted type.
type EdgeType int

// ParaGraph edge types.
const (
	Child EdgeType = iota
	NextToken
	NextSib
	Ref
	ForExec
	ForNext
	ConTrue
	ConFalse

	NumEdgeTypes // sentinel
)

var edgeTypeNames = [NumEdgeTypes]string{
	Child:     "Child",
	NextToken: "NextToken",
	NextSib:   "NextSib",
	Ref:       "Ref",
	ForExec:   "ForExec",
	ForNext:   "ForNext",
	ConTrue:   "ConTrue",
	ConFalse:  "ConFalse",
}

// String returns the edge type name.
func (t EdgeType) String() string {
	if t >= 0 && t < NumEdgeTypes {
		return edgeTypeNames[t]
	}
	return fmt.Sprintf("EdgeType(%d)", int(t))
}

// EdgeTypeNames returns the edge-type name table in EdgeType order.
func EdgeTypeNames() []string {
	names := make([]string, NumEdgeTypes)
	for i := range names {
		names[i] = EdgeType(i).String()
	}
	return names
}

// KindNames returns the node-kind name table in cast.Kind order.
func KindNames() []string {
	names := make([]string, cast.NumKinds)
	for i := range names {
		names[i] = cast.Kind(i).String()
	}
	return names
}

// Level selects how much of the ParaGraph construction to apply; the three
// levels are the paper's ablation treatments (Table IV).
type Level int

// Construction levels.
const (
	LevelRawAST Level = iota
	LevelAugmentedAST
	LevelParaGraph
)

// String names the level as in the paper's tables.
func (l Level) String() string {
	switch l {
	case LevelRawAST:
		return "Raw AST"
	case LevelAugmentedAST:
		return "Augmented AST"
	case LevelParaGraph:
		return "ParaGraph"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Options configures graph construction.
type Options struct {
	// Level selects the construction level; the zero value is LevelRawAST,
	// so most callers set LevelParaGraph explicitly.
	Level Level

	// Threads is the effective parallelism the annotated loop's iterations
	// are statically divided across (paper: "dividing the number of
	// iterations by the number of threads"). For offloaded kernels pass
	// teams*threads. Zero or one means no division.
	Threads int

	// Bindings resolves symbolic loop bounds (parameter values).
	Bindings analysis.Env

	// DefaultTrip is assumed for loops whose trip count cannot be derived.
	// Zero selects the package default of 100.
	DefaultTrip float64

	// MaxWeight caps Child-edge weights to keep extreme nests numerically
	// tame. Zero selects the package default of 1e9.
	MaxWeight float64
}

const (
	defaultTrip      = 100
	defaultMaxWeight = 1e9
)

// Build constructs the graph representation of the AST subtree rooted at
// root (typically a FunctionDecl) at the requested level.
func Build(root *cast.Node, opts Options) (*graph.Graph, error) {
	if root == nil {
		return nil, fmt.Errorf("paragraph: nil AST root")
	}
	if opts.DefaultTrip <= 0 {
		opts.DefaultTrip = defaultTrip
	}
	if opts.MaxWeight <= 0 {
		opts.MaxWeight = defaultMaxWeight
	}
	b := &builder{
		opts: opts,
		g:    graph.New(EdgeTypeNames()),
		id:   make(map[*cast.Node]int),
	}
	b.g.KindNames = KindNames()
	b.addNodes(root)
	b.addChildEdges(root, 1)
	if opts.Level >= LevelAugmentedAST {
		b.addNextToken(root)
		b.addNextSib(root)
		b.addRef(root)
		b.addControlFlow(root)
	}
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("paragraph: built invalid graph: %w", err)
	}
	return b.g, nil
}

// BuildKernel parses C source and builds the graph of its first function.
func BuildKernel(src string, opts Options) (*graph.Graph, error) {
	fn, err := cparse.ParseFunction(src)
	if err != nil {
		return nil, err
	}
	return Build(fn, opts)
}

type builder struct {
	opts Options
	g    *graph.Graph
	id   map[*cast.Node]int
}

// addNodes creates one graph node per AST node, in preorder.
func (b *builder) addNodes(root *cast.Node) {
	cast.Walk(root, func(n *cast.Node) bool {
		gn := graph.Node{
			Kind:    int(n.Kind),
			SubKind: subKind(n),
			Feature: nodeFeature(n),
			Label:   nodeLabel(n),
		}
		b.id[n] = b.g.AddNode(gn)
		return true
	})
}

// addChildEdges walks the tree adding weighted Child edges. scale is the
// static execution-count estimate for the current region.
func (b *builder) addChildEdges(n *cast.Node, scale float64) {
	weighted := b.opts.Level >= LevelParaGraph
	// parallelism pending division: applied to the outermost loop associated
	// with an OMP loop directive.
	b.childEdgesRec(n, scale, 0, weighted)
}

// childEdgesRec descends the AST. pendingPar > 1 means the next ForStmt
// encountered is the directive-associated loop whose iterations are divided
// across pendingPar workers.
func (b *builder) childEdgesRec(n *cast.Node, scale float64, pendingPar float64, weighted bool) {
	emit := func(child *cast.Node, w float64) {
		if !weighted {
			w = 1
		}
		b.g.AddEdge(b.id[n], b.id[child], int(Child), math.Min(w, b.opts.MaxWeight))
	}
	switch n.Kind {
	case cast.KindForStmt:
		init, cond, body, inc := n.ForParts()
		if init == nil {
			// Malformed ForStmt: fall through to the generic case.
			for _, c := range n.Children {
				emit(c, scale)
				b.childEdgesRec(c, scale, 0, weighted)
			}
			return
		}
		trip := analysis.ForTrip(n, b.opts.Bindings, b.opts.DefaultTrip).Trip
		if trip < 1 {
			trip = 1
		}
		if pendingPar > 1 {
			// Static scheduling: each worker executes ~trip/P iterations.
			trip /= pendingPar
			if trip < 1 {
				trip = 1
			}
		}
		inner := scale * trip
		// Figure 2: init keeps the enclosing weight; cond, body and inc run
		// once per iteration.
		emit(init, scale)
		b.childEdgesRec(init, scale, 0, weighted)
		emit(cond, inner)
		b.childEdgesRec(cond, inner, 0, weighted)
		emit(body, inner)
		b.childEdgesRec(body, inner, 0, weighted)
		emit(inc, inner)
		b.childEdgesRec(inc, inner, 0, weighted)
	case cast.KindWhileStmt, cast.KindDoStmt:
		trip := b.opts.DefaultTrip
		inner := scale * trip
		for _, c := range n.Children {
			emit(c, inner)
			b.childEdgesRec(c, inner, 0, weighted)
		}
	case cast.KindIfStmt:
		cond, then, els := n.IfParts()
		if cond == nil {
			for _, c := range n.Children {
				emit(c, scale)
				b.childEdgesRec(c, scale, 0, weighted)
			}
			return
		}
		// Paper §III-A.3: each branch taken with probability 1/2.
		emit(cond, scale)
		b.childEdgesRec(cond, scale, 0, weighted)
		emit(then, scale/2)
		b.childEdgesRec(then, scale/2, 0, weighted)
		if els != nil {
			emit(els, scale/2)
			b.childEdgesRec(els, scale/2, 0, weighted)
		}
	case cast.KindOMPExecutableDirective:
		par := b.parallelism(n)
		for _, c := range n.Children {
			emit(c, scale)
			b.childEdgesRec(c, scale, par, weighted)
		}
	default:
		for _, c := range n.Children {
			emit(c, scale)
			b.childEdgesRec(c, scale, pendingPar, weighted)
		}
	}
}

// parallelism derives the worker count dividing the associated loop's
// iterations: Options.Threads when set, else the directive's literal
// num_teams*num_threads clauses.
func (b *builder) parallelism(n *cast.Node) float64 {
	if b.opts.Threads > 1 {
		return float64(b.opts.Threads)
	}
	d := n.Dir
	if d == nil || !d.Kind.IsLoopAssociated() {
		return 0
	}
	teams, threads := d.NumTeams(), d.NumThreads()
	switch {
	case teams > 0 && threads > 0:
		return float64(teams * threads)
	case threads > 0:
		return float64(threads)
	case teams > 0:
		return float64(teams)
	}
	return 0
}

// addNextToken chains terminal nodes (syntax tokens) left to right.
func (b *builder) addNextToken(root *cast.Node) {
	terms := cast.Terminals(root)
	for i := 0; i+1 < len(terms); i++ {
		b.g.AddEdge(b.id[terms[i]], b.id[terms[i+1]], int(NextToken), 0)
	}
}

// addNextSib connects each node to its next sibling.
func (b *builder) addNextSib(root *cast.Node) {
	cast.Walk(root, func(n *cast.Node) bool {
		for i := 0; i+1 < len(n.Children); i++ {
			b.g.AddEdge(b.id[n.Children[i]], b.id[n.Children[i+1]], int(NextSib), 0)
		}
		return true
	})
}

// addRef connects DeclRefExpr nodes to their declarations (paper: "Ref edges
// connecting a DeclRefExpr node to where the corresponding variable is
// defined"). References to declarations outside the built subtree are
// skipped.
func (b *builder) addRef(root *cast.Node) {
	cast.Walk(root, func(n *cast.Node) bool {
		if n.Kind == cast.KindDeclRefExpr && n.Ref != nil {
			if declID, ok := b.id[n.Ref]; ok {
				b.g.AddEdge(b.id[n], declID, int(Ref), 0)
			}
		}
		return true
	})
}

// addControlFlow adds ForExec/ForNext edges on loops and ConTrue/ConFalse on
// if statements.
func (b *builder) addControlFlow(root *cast.Node) {
	cast.Walk(root, func(n *cast.Node) bool {
		switch n.Kind {
		case cast.KindForStmt:
			init, cond, body, inc := n.ForParts()
			if init == nil {
				return true
			}
			// ForExec: flow into the next iteration's execution
			// (init→cond, cond→body); ForNext: deciding/advancing the next
			// iteration (body→inc, inc→cond). Paper §III-A.2.
			b.g.AddEdge(b.id[init], b.id[cond], int(ForExec), 0)
			b.g.AddEdge(b.id[cond], b.id[body], int(ForExec), 0)
			b.g.AddEdge(b.id[body], b.id[inc], int(ForNext), 0)
			b.g.AddEdge(b.id[inc], b.id[cond], int(ForNext), 0)
		case cast.KindWhileStmt:
			// Natural extension of the paper's scheme to while loops:
			// cond→body executes an iteration, body→cond re-checks.
			if len(n.Children) == 2 {
				b.g.AddEdge(b.id[n.Children[0]], b.id[n.Children[1]], int(ForExec), 0)
				b.g.AddEdge(b.id[n.Children[1]], b.id[n.Children[0]], int(ForNext), 0)
			}
		case cast.KindDoStmt:
			if len(n.Children) == 2 {
				// children are [body, cond].
				b.g.AddEdge(b.id[n.Children[1]], b.id[n.Children[0]], int(ForExec), 0)
				b.g.AddEdge(b.id[n.Children[0]], b.id[n.Children[1]], int(ForNext), 0)
			}
		case cast.KindIfStmt:
			cond, then, els := n.IfParts()
			if cond == nil {
				return true
			}
			b.g.AddEdge(b.id[cond], b.id[then], int(ConTrue), 0)
			if els != nil {
				b.g.AddEdge(b.id[cond], b.id[els], int(ConFalse), 0)
			}
		}
		return true
	})
}

// operator and directive sub-kind codes give the GNN a within-kind signal
// (which operator, which OpenMP construct) without exploding the kind space.
var opCodes = map[string]int{
	"=": 1, "+": 2, "-": 3, "*": 4, "/": 5, "%": 6,
	"<": 7, ">": 8, "<=": 9, ">=": 10, "==": 11, "!=": 12,
	"&&": 13, "||": 14, "&": 15, "|": 16, "^": 17, "<<": 18, ">>": 19,
	"+=": 20, "-=": 21, "*=": 22, "/=": 23, "%=": 24,
	"&=": 25, "|=": 26, "^=": 27, "<<=": 28, ">>=": 29,
	"pre++": 30, "post++": 31, "pre--": 32, "post--": 33,
	"!": 34, "~": 35, "sizeof": 36, ",": 37,
}

func subKind(n *cast.Node) int {
	switch n.Kind {
	case cast.KindBinaryOperator, cast.KindCompoundAssignOperator, cast.KindUnaryOperator:
		return opCodes[n.Op]
	case cast.KindOMPExecutableDirective:
		if n.Dir != nil {
			return int(n.Dir.Kind)
		}
	case cast.KindOMPClause:
		return int(n.Clause)
	}
	return 0
}

// nodeFeature encodes a scalar per-node signal: log1p of literal magnitudes,
// and collapse depth for OMP directives.
func nodeFeature(n *cast.Node) float64 {
	switch n.Kind {
	case cast.KindIntegerLiteral, cast.KindFloatingLiteral:
		if v, ok := analysis.Eval(n, nil); ok {
			return math.Log1p(math.Abs(v))
		}
	case cast.KindOMPExecutableDirective:
		if n.Dir != nil {
			return float64(n.Dir.CollapseDepth())
		}
	}
	return 0
}

func nodeLabel(n *cast.Node) string {
	switch {
	case n.Name != "":
		return n.Kind.String() + ":" + n.Name
	case n.Value != "":
		return n.Kind.String() + ":" + n.Value
	case n.Op != "":
		return n.Kind.String() + ":" + n.Op
	case n.Dir != nil:
		return "OMP:" + strings.ReplaceAll(n.Dir.Kind.String(), " ", "_")
	}
	return n.Kind.String()
}
