// Package variants implements the code-transformation module of the paper's
// pipeline (the role OpenMP Advisor played): given a serial benchmark kernel
// it generates the six OpenMP variants evaluated in §IV-A.1 —
//
//	cpu               omp parallel for
//	cpu_collapse      omp parallel for collapse(2)
//	gpu               omp target teams distribute parallel for (data resident)
//	gpu_collapse      ... collapse(2) (data resident)
//	gpu_mem           gpu + map clauses (host<->device transfer)
//	gpu_collapse_mem  gpu_collapse + map clauses
//
// and sweeps parallelism levels (teams, threads) and problem sizes to build
// the dataset's kernel instances.
package variants

import (
	"fmt"
	"strings"

	"paragraph/internal/analysis"
	"paragraph/internal/apps"
)

// Kind enumerates the six transformations.
type Kind int

// Variant kinds, in the paper's order.
const (
	CPU Kind = iota
	CPUCollapse
	GPU
	GPUCollapse
	GPUMem
	GPUCollapseMem

	NumKinds // sentinel
)

var kindNames = [NumKinds]string{
	CPU:            "cpu",
	CPUCollapse:    "cpu_collapse",
	GPU:            "gpu",
	GPUCollapse:    "gpu_collapse",
	GPUMem:         "gpu_mem",
	GPUCollapseMem: "gpu_collapse_mem",
}

// String returns the paper's variant name.
func (k Kind) String() string {
	if k >= 0 && k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsGPU reports whether the variant offloads to a device.
func (k Kind) IsGPU() bool { return k >= GPU }

// IsCollapse reports whether the variant collapses the outer loop nest.
func (k Kind) IsCollapse() bool {
	return k == CPUCollapse || k == GPUCollapse || k == GPUCollapseMem
}

// HasTransfer reports whether the variant pays host<->device data movement.
func (k Kind) HasTransfer() bool { return k == GPUMem || k == GPUCollapseMem }

// Kinds returns all six variant kinds.
func Kinds() []Kind {
	ks := make([]Kind, NumKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Instance is one concrete kernel variant: a transformation applied to a
// kernel template with bound sizes and parallelism. It is the unit the
// dataset is built from (one Instance × one platform = one data point).
type Instance struct {
	Kernel   apps.Kernel
	Kind     Kind
	Teams    int // OpenMP teams (GPU variants; 0 for CPU)
	Threads  int // threads per team (GPU) or total threads (CPU)
	Bindings analysis.Env
	Source   string // transformed C source
}

// Name returns a stable, human-readable instance identifier.
func (in Instance) Name() string {
	var parts []string
	parts = append(parts, in.Kernel.Name, in.Kind.String())
	for _, p := range in.Kernel.Params {
		parts = append(parts, fmt.Sprintf("%s%v", p.Name, in.Bindings[p.Name]))
	}
	parts = append(parts, fmt.Sprintf("g%d", in.Teams), fmt.Sprintf("t%d", in.Threads))
	return strings.Join(parts, "_")
}

// Parallelism returns the total worker count the variant's associated loop
// is divided across: threads for CPU variants, teams*threads for GPU ones.
func (in Instance) Parallelism() int {
	if in.Kind.IsGPU() {
		if in.Teams > 0 {
			return in.Teams * in.Threads
		}
		return in.Threads
	}
	return in.Threads
}

// Generate applies the transformation to the kernel template, producing the
// transformed source. It fails when a collapse variant is requested for a
// non-collapsible kernel.
func Generate(k apps.Kernel, kind Kind, teams, threads int) (string, error) {
	if err := k.Validate(); err != nil {
		return "", err
	}
	if kind.IsCollapse() && !k.Collapsible {
		return "", fmt.Errorf("variants: kernel %q is not collapsible", k.Name)
	}
	if kind < 0 || kind >= NumKinds {
		return "", fmt.Errorf("variants: unknown variant kind %d", int(kind))
	}
	dir := directiveFor(k, kind, teams, threads)
	return strings.Replace(k.Source, apps.PragmaMarker, dir, 1), nil
}

// directiveFor builds the pragma text for the variant.
func directiveFor(k apps.Kernel, kind Kind, teams, threads int) string {
	var sb strings.Builder
	sb.WriteString("#pragma omp ")
	if kind.IsGPU() {
		sb.WriteString("target teams distribute parallel for")
	} else {
		sb.WriteString("parallel for")
	}
	if kind.IsCollapse() {
		sb.WriteString(" collapse(2)")
	}
	if kind.IsGPU() {
		if teams > 0 {
			fmt.Fprintf(&sb, " num_teams(%d)", teams)
		}
		if threads > 0 {
			fmt.Fprintf(&sb, " thread_limit(%d) num_threads(%d)", threads, threads)
		}
	} else if threads > 0 {
		fmt.Fprintf(&sb, " num_threads(%d)", threads)
	}
	if kind.HasTransfer() {
		for _, a := range k.Arrays {
			fmt.Fprintf(&sb, " map(tofrom: %s[0:%s])", a.Name, a.SizeExpr)
		}
	}
	return sb.String()
}

// SweepConfig controls instance generation.
type SweepConfig struct {
	// CPUThreads are the thread counts swept for cpu variants.
	CPUThreads []int
	// GPUTeams and GPUThreads are swept jointly for gpu variants.
	GPUTeams   []int
	GPUThreads []int
	// MaxSizesPerKernel truncates each parameter's sweep to bound dataset
	// size; zero keeps everything.
	MaxSizesPerKernel int
}

// DefaultSweep mirrors the paper's setup at reduced scale: it reaches a few
// thousand instances per application when fully enumerated.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		CPUThreads: []int{1, 2, 4, 8, 16, 22, 24},
		GPUTeams:   []int{16, 64, 128, 256},
		GPUThreads: []int{64, 128, 256},
	}
}

// Sweep enumerates all instances of one kernel under the config: every
// variant kind × parameter combination × parallelism level.
func Sweep(k apps.Kernel, cfg SweepConfig) ([]Instance, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	bindingSets := enumerateBindings(k.Params, cfg.MaxSizesPerKernel)
	var out []Instance
	for _, kind := range Kinds() {
		if kind.IsCollapse() && !k.Collapsible {
			continue
		}
		type pt struct{ teams, threads int }
		var levels []pt
		if kind.IsGPU() {
			for _, g := range cfg.GPUTeams {
				for _, t := range cfg.GPUThreads {
					levels = append(levels, pt{g, t})
				}
			}
		} else {
			for _, t := range cfg.CPUThreads {
				levels = append(levels, pt{0, t})
			}
		}
		for _, b := range bindingSets {
			for _, lv := range levels {
				src, err := Generate(k, kind, lv.teams, lv.threads)
				if err != nil {
					return nil, err
				}
				out = append(out, Instance{
					Kernel:   k,
					Kind:     kind,
					Teams:    lv.teams,
					Threads:  lv.threads,
					Bindings: b,
					Source:   src,
				})
			}
		}
	}
	return out, nil
}

// SweepAll enumerates instances for every kernel in the suite.
func SweepAll(cfg SweepConfig) ([]Instance, error) {
	var out []Instance
	for _, k := range apps.Kernels() {
		ins, err := Sweep(k, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ins...)
	}
	return out, nil
}

// enumerateBindings produces the cross product of parameter sweeps.
func enumerateBindings(params []apps.Param, maxPerParam int) []analysis.Env {
	sets := []analysis.Env{{}}
	for _, p := range params {
		values := p.Values
		if maxPerParam > 0 && len(values) > maxPerParam {
			values = values[:maxPerParam]
		}
		var next []analysis.Env
		for _, base := range sets {
			for _, v := range values {
				env := analysis.Env{}
				for k, x := range base {
					env[k] = x
				}
				env[p.Name] = float64(v)
				next = append(next, env)
			}
		}
		sets = next
	}
	return sets
}
