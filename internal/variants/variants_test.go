package variants

import (
	"strings"
	"testing"

	"paragraph/internal/apps"
	"paragraph/internal/cast"
	"paragraph/internal/cparse"
	"paragraph/internal/omp"
)

func kernel(t *testing.T, name string) apps.Kernel {
	t.Helper()
	k, ok := apps.ByName(name)
	if !ok {
		t.Fatalf("kernel %q not found", name)
	}
	return k
}

func TestKindProperties(t *testing.T) {
	cases := []struct {
		kind     Kind
		gpu      bool
		collapse bool
		transfer bool
		name     string
	}{
		{CPU, false, false, false, "cpu"},
		{CPUCollapse, false, true, false, "cpu_collapse"},
		{GPU, true, false, false, "gpu"},
		{GPUCollapse, true, true, false, "gpu_collapse"},
		{GPUMem, true, false, true, "gpu_mem"},
		{GPUCollapseMem, true, true, true, "gpu_collapse_mem"},
	}
	for _, c := range cases {
		if c.kind.IsGPU() != c.gpu {
			t.Errorf("%v IsGPU = %v", c.kind, c.kind.IsGPU())
		}
		if c.kind.IsCollapse() != c.collapse {
			t.Errorf("%v IsCollapse = %v", c.kind, c.kind.IsCollapse())
		}
		if c.kind.HasTransfer() != c.transfer {
			t.Errorf("%v HasTransfer = %v", c.kind, c.kind.HasTransfer())
		}
		if c.kind.String() != c.name {
			t.Errorf("%v String = %q, want %q", c.kind, c.kind.String(), c.name)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("out-of-range kind name")
	}
	if len(Kinds()) != int(NumKinds) {
		t.Errorf("Kinds() = %d", len(Kinds()))
	}
}

func TestGenerateCPU(t *testing.T) {
	src, err := Generate(kernel(t, "matmul"), CPU, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "#pragma omp parallel for num_threads(8)") {
		t.Errorf("missing cpu pragma:\n%s", src)
	}
	if strings.Contains(src, "target") {
		t.Error("cpu variant mentions target")
	}
	if strings.Contains(src, apps.PragmaMarker) {
		t.Error("marker not replaced")
	}
}

func TestGenerateGPUVariants(t *testing.T) {
	k := kernel(t, "matmul")
	src, err := Generate(k, GPUCollapseMem, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"target teams distribute parallel for",
		"collapse(2)",
		"num_teams(128)",
		"num_threads(64)",
		"map(tofrom: a[0:n*n])",
		"map(tofrom: b[0:n*n])",
		"map(tofrom: c[0:n*n])",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q:\n%s", want, src)
		}
	}
	// gpu (resident) variant has no map clauses.
	src2, err := Generate(k, GPU, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(src2, "map(") {
		t.Error("gpu (resident) variant should have no map clauses")
	}
}

func TestGeneratedSourcesParse(t *testing.T) {
	for _, k := range apps.Kernels() {
		for _, kind := range Kinds() {
			if kind.IsCollapse() && !k.Collapsible {
				continue
			}
			src, err := Generate(k, kind, 64, 128)
			if err != nil {
				t.Errorf("%s/%v: %v", k.Name, kind, err)
				continue
			}
			fn, err := cparse.ParseFunction(src)
			if err != nil {
				t.Errorf("%s/%v: parse: %v\n%s", k.Name, kind, err, src)
				continue
			}
			dirs := cast.Directives(fn)
			if len(dirs) != 1 {
				t.Errorf("%s/%v: %d directives, want 1", k.Name, kind, len(dirs))
				continue
			}
			d := dirs[0].Dir
			if kind.IsGPU() != d.Kind.IsTarget() {
				t.Errorf("%s/%v: directive %v target mismatch", k.Name, kind, d.Kind)
			}
			if kind.IsCollapse() && d.CollapseDepth() != 2 {
				t.Errorf("%s/%v: collapse depth %d", k.Name, kind, d.CollapseDepth())
			}
			if kind.HasTransfer() != d.HasDataTransfer() {
				t.Errorf("%s/%v: transfer mismatch", k.Name, kind)
			}
			if kind.IsGPU() {
				if d.Kind != omp.DirTargetTeamsDistributeParallelFor {
					t.Errorf("%s/%v: directive = %v", k.Name, kind, d.Kind)
				}
			}
		}
	}
}

func TestGenerateCollapseRejectedForNonCollapsible(t *testing.T) {
	k := kernel(t, "correlation_pearson")
	if _, err := Generate(k, CPUCollapse, 0, 4); err == nil {
		t.Error("collapse on non-collapsible kernel accepted")
	}
}

func TestGenerateRejectsBadInputs(t *testing.T) {
	if _, err := Generate(apps.Kernel{}, CPU, 0, 4); err == nil {
		t.Error("invalid kernel accepted")
	}
	if _, err := Generate(kernel(t, "matmul"), Kind(42), 0, 4); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSweepCounts(t *testing.T) {
	k := kernel(t, "matmul") // collapsible, 1 param with 5 values
	cfg := SweepConfig{
		CPUThreads: []int{2, 4},
		GPUTeams:   []int{16},
		GPUThreads: []int{64, 128},
	}
	ins, err := Sweep(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// cpu kinds: 2 kinds × 5 sizes × 2 threads = 20.
	// gpu kinds: 4 kinds × 5 sizes × 2 (1 team × 2 threads) = 40.
	if len(ins) != 60 {
		t.Errorf("instances = %d, want 60", len(ins))
	}
	// Non-collapsible kernel drops the 2 collapse kinds.
	k2 := kernel(t, "pf_sum_weights") // 6 sizes
	ins2, err := Sweep(k2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// cpu: 1 × 6 × 2 = 12; gpu: 2 × 6 × 2 = 24.
	if len(ins2) != 36 {
		t.Errorf("instances = %d, want 36", len(ins2))
	}
}

func TestSweepMaxSizes(t *testing.T) {
	k := kernel(t, "matmul")
	cfg := SweepConfig{
		CPUThreads:        []int{4},
		GPUTeams:          []int{16},
		GPUThreads:        []int{64},
		MaxSizesPerKernel: 2,
	}
	ins, err := Sweep(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizesSeen := map[float64]bool{}
	for _, in := range ins {
		sizesSeen[in.Bindings["n"]] = true
	}
	if len(sizesSeen) != 2 {
		t.Errorf("sizes seen = %v, want 2", sizesSeen)
	}
}

func TestSweepAllProducesDiverseInstances(t *testing.T) {
	cfg := SweepConfig{
		CPUThreads:        []int{4},
		GPUTeams:          []int{64},
		GPUThreads:        []int{128},
		MaxSizesPerKernel: 1,
	}
	ins, err := SweepAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	apps17 := map[string]bool{}
	kinds := map[Kind]bool{}
	for _, in := range ins {
		apps17[in.Kernel.Name] = true
		kinds[in.Kind] = true
	}
	if len(apps17) != 17 {
		t.Errorf("kernels covered = %d, want 17", len(apps17))
	}
	if len(kinds) != int(NumKinds) {
		t.Errorf("kinds covered = %d, want %d", len(kinds), NumKinds)
	}
}

func TestInstanceNameUniqueAndStable(t *testing.T) {
	cfg := SweepConfig{
		CPUThreads: []int{2, 4},
		GPUTeams:   []int{16, 32},
		GPUThreads: []int{64},
	}
	ins, err := Sweep(kernel(t, "transpose"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, in := range ins {
		name := in.Name()
		if seen[name] {
			t.Errorf("duplicate instance name %q", name)
		}
		seen[name] = true
	}
}

func TestInstanceParallelism(t *testing.T) {
	in := Instance{Kind: CPU, Threads: 8}
	if in.Parallelism() != 8 {
		t.Errorf("cpu parallelism = %d", in.Parallelism())
	}
	in = Instance{Kind: GPU, Teams: 16, Threads: 64}
	if in.Parallelism() != 1024 {
		t.Errorf("gpu parallelism = %d", in.Parallelism())
	}
	in = Instance{Kind: GPUMem, Teams: 0, Threads: 64}
	if in.Parallelism() != 64 {
		t.Errorf("teamless gpu parallelism = %d", in.Parallelism())
	}
}

func TestDefaultSweepIsSubstantial(t *testing.T) {
	ins, err := SweepAll(DefaultSweep())
	if err != nil {
		t.Fatal(err)
	}
	// The paper collected ~26k points per pair of platforms; our default
	// sweep must generate thousands of instances to be comparable.
	if len(ins) < 2000 {
		t.Errorf("default sweep = %d instances, want >= 2000", len(ins))
	}
}
