// Package cluster simulates the batch-scheduled data collection the paper
// describes in §IV-A.3: jobs submitted to HPC cluster nodes, sporadic node
// failures and time limits forcing resubmission, and bookkeeping of which
// measurements succeeded. The dataset generator runs every simulated
// measurement through this substrate, exercising the same
// submit/fail/retry/collect control flow the authors had on Summit and
// Corona — with deterministic, seeded failures.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
)

// Job is one unit of work (in this repository: one runtime measurement).
type Job struct {
	ID  string
	Run func() (float64, error)
}

// Result is the outcome of a job after retries.
type Result struct {
	JobID    string
	Value    float64
	Err      error   // non-nil when the job exhausted its retries
	Attempts int     // total attempts, including the successful one
	Node     int     // node that ran the final attempt
	WaitTime float64 // simulated queue wait, arbitrary units
}

// Config describes the simulated cluster.
type Config struct {
	// Nodes is the worker count (compute nodes). Zero selects 4.
	Nodes int
	// FailureRate is the per-attempt probability of a simulated node
	// failure (the paper: "our job would not run for long due to node
	// failure or time constraints"). Deterministic per job ID and attempt.
	FailureRate float64
	// MaxRetries is how many times a failed job is resubmitted. Zero
	// selects 3.
	MaxRetries int
	// Seed makes failures reproducible.
	Seed int64
}

func (c Config) nodes() int {
	if c.Nodes <= 0 {
		return 4
	}
	return c.Nodes
}

func (c Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 3
	}
	return c.MaxRetries
}

// ErrNodeFailure is the simulated infrastructure failure injected by the
// cluster; it is retryable.
var ErrNodeFailure = errors.New("cluster: node failure")

// Stats aggregates a submission campaign.
type Stats struct {
	Submitted int
	Succeeded int
	Failed    int // exhausted retries
	Retries   int // attempts beyond the first, summed over jobs
}

// Cluster runs jobs on simulated nodes.
type Cluster struct {
	cfg Config
}

// New returns a cluster with the given configuration.
func New(cfg Config) *Cluster { return &Cluster{cfg: cfg} }

// Submit runs all jobs across the cluster's nodes and returns their results
// in job order, plus campaign statistics. Jobs run concurrently (one worker
// per node); each failed attempt is retried up to MaxRetries times.
// Injected node failures and real job errors are distinguished: a job whose
// Run returns an error is NOT retried (a broken kernel stays broken), while
// node failures are.
func (c *Cluster) Submit(jobs []Job) ([]Result, Stats) {
	nodes := c.cfg.nodes()
	results := make([]Result, len(jobs))
	var wg sync.WaitGroup
	work := make(chan int)

	worker := func(node int) {
		defer wg.Done()
		for idx := range work {
			results[idx] = c.runJob(jobs[idx], node)
		}
	}
	wg.Add(nodes)
	for n := 0; n < nodes; n++ {
		go worker(n)
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()

	var st Stats
	st.Submitted = len(jobs)
	for _, r := range results {
		if r.Err == nil {
			st.Succeeded++
		} else {
			st.Failed++
		}
		st.Retries += r.Attempts - 1
	}
	return results, st
}

// runJob attempts one job with retries on injected node failures.
func (c *Cluster) runJob(j Job, node int) Result {
	res := Result{JobID: j.ID, Node: node}
	maxAttempts := c.cfg.maxRetries() + 1
	for attempt := 0; attempt < maxAttempts; attempt++ {
		res.Attempts = attempt + 1
		res.WaitTime += c.queueWait(j.ID, attempt)
		if c.injectFailure(j.ID, attempt) {
			res.Err = fmt.Errorf("%w (job %s, attempt %d)", ErrNodeFailure, j.ID, attempt+1)
			continue
		}
		v, err := j.Run()
		if err != nil {
			// Real job error: no point resubmitting.
			res.Err = err
			return res
		}
		res.Value = v
		res.Err = nil
		return res
	}
	return res
}

// injectFailure decides deterministically whether attempt k of job id hits a
// simulated node failure.
func (c *Cluster) injectFailure(id string, attempt int) bool {
	if c.cfg.FailureRate <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{byte(attempt)})
	rng := rand.New(rand.NewSource(int64(h.Sum64()) ^ c.cfg.Seed))
	return rng.Float64() < c.cfg.FailureRate
}

// queueWait produces a small deterministic queue-wait figure so campaign
// statistics have a realistic texture.
func (c *Cluster) queueWait(id string, attempt int) float64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{0xff, byte(attempt)})
	rng := rand.New(rand.NewSource(int64(h.Sum64()) ^ c.cfg.Seed))
	return rng.Float64() * 10
}

// FailedJobs extracts the IDs of jobs that exhausted retries, sorted.
func FailedJobs(results []Result) []string {
	var ids []string
	for _, r := range results {
		if r.Err != nil {
			ids = append(ids, r.JobID)
		}
	}
	sort.Strings(ids)
	return ids
}
