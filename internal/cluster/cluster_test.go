package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func makeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		v := float64(i)
		jobs[i] = Job{
			ID:  fmt.Sprintf("job-%04d", i),
			Run: func() (float64, error) { return v, nil },
		}
	}
	return jobs
}

func TestSubmitAllSucceedWithoutFailures(t *testing.T) {
	c := New(Config{Nodes: 8, FailureRate: 0})
	jobs := makeJobs(100)
	results, st := c.Submit(jobs)
	if st.Succeeded != 100 || st.Failed != 0 || st.Retries != 0 {
		t.Errorf("stats = %+v", st)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("job %d failed: %v", i, r.Err)
		}
		if r.Value != float64(i) {
			t.Errorf("job %d value = %v (results out of order?)", i, r.Value)
		}
		if r.Attempts != 1 {
			t.Errorf("job %d attempts = %d", i, r.Attempts)
		}
	}
}

func TestSubmitRunsConcurrently(t *testing.T) {
	// Two jobs rendezvous: each waits until the other has started, which
	// only completes if the pool really runs jobs in parallel. A timeout
	// converts a (buggy) serial pool into a test failure, not a deadlock.
	c := New(Config{Nodes: 4})
	var arrived int32
	release := make(chan struct{})
	var once sync.Once
	var timedOut int32
	rendezvous := func() (float64, error) {
		if atomic.AddInt32(&arrived, 1) >= 2 {
			once.Do(func() { close(release) })
		}
		select {
		case <-release:
		case <-time.After(5 * time.Second):
			atomic.StoreInt32(&timedOut, 1)
		}
		return 0, nil
	}
	jobs := []Job{
		{ID: "a", Run: rendezvous},
		{ID: "b", Run: rendezvous},
	}
	c.Submit(jobs)
	if timedOut != 0 {
		t.Error("jobs never overlapped: pool appears serial")
	}
}

func TestFailureInjectionAndRetry(t *testing.T) {
	c := New(Config{Nodes: 4, FailureRate: 0.3, MaxRetries: 5, Seed: 42})
	jobs := makeJobs(500)
	results, st := c.Submit(jobs)
	if st.Retries == 0 {
		t.Error("30% failure rate should force retries")
	}
	// With 5 retries at 30%, nearly everything eventually succeeds.
	if st.Succeeded < 490 {
		t.Errorf("succeeded = %d, want >= 490", st.Succeeded)
	}
	for _, r := range results {
		if r.Err == nil && r.Value < 0 {
			t.Errorf("bad value %v", r.Value)
		}
	}
}

func TestFailureExhaustion(t *testing.T) {
	// FailureRate 1.0: every attempt fails, all jobs exhaust retries.
	c := New(Config{Nodes: 2, FailureRate: 1.0, MaxRetries: 2, Seed: 7})
	jobs := makeJobs(10)
	results, st := c.Submit(jobs)
	if st.Failed != 10 || st.Succeeded != 0 {
		t.Errorf("stats = %+v", st)
	}
	for _, r := range results {
		if !errors.Is(r.Err, ErrNodeFailure) {
			t.Errorf("error = %v, want ErrNodeFailure", r.Err)
		}
		if r.Attempts != 3 { // 1 + 2 retries
			t.Errorf("attempts = %d, want 3", r.Attempts)
		}
	}
	failed := FailedJobs(results)
	if len(failed) != 10 {
		t.Errorf("FailedJobs = %d", len(failed))
	}
	// Sorted.
	for i := 1; i < len(failed); i++ {
		if failed[i] < failed[i-1] {
			t.Error("FailedJobs not sorted")
		}
	}
}

func TestRealErrorsNotRetried(t *testing.T) {
	bad := errors.New("kernel does not build")
	calls := int32(0)
	c := New(Config{Nodes: 1, FailureRate: 0, MaxRetries: 5})
	jobs := []Job{{
		ID: "broken",
		Run: func() (float64, error) {
			atomic.AddInt32(&calls, 1)
			return 0, bad
		},
	}}
	results, st := c.Submit(jobs)
	if calls != 1 {
		t.Errorf("broken job ran %d times, want 1", calls)
	}
	if !errors.Is(results[0].Err, bad) {
		t.Errorf("err = %v", results[0].Err)
	}
	if st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]Result, Stats) {
		c := New(Config{Nodes: 4, FailureRate: 0.4, MaxRetries: 3, Seed: 123})
		return c.Submit(makeJobs(200))
	}
	r1, s1 := run()
	r2, s2 := run()
	if s1 != s2 {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
	for i := range r1 {
		if (r1[i].Err == nil) != (r2[i].Err == nil) || r1[i].Attempts != r2[i].Attempts {
			t.Errorf("job %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestSeedChangesFailures(t *testing.T) {
	submit := func(seed int64) Stats {
		c := New(Config{Nodes: 4, FailureRate: 0.5, MaxRetries: 1, Seed: seed})
		_, st := c.Submit(makeJobs(300))
		return st
	}
	if submit(1) == submit(2) {
		t.Error("different seeds gave identical campaign stats (suspicious)")
	}
}

func TestDefaults(t *testing.T) {
	c := New(Config{})
	results, st := c.Submit(makeJobs(10))
	if st.Succeeded != 10 {
		t.Errorf("stats = %+v", st)
	}
	if len(results) != 10 {
		t.Errorf("results = %d", len(results))
	}
}

func TestEmptySubmit(t *testing.T) {
	c := New(Config{Nodes: 3})
	results, st := c.Submit(nil)
	if len(results) != 0 || st.Submitted != 0 {
		t.Errorf("empty submit: %v %+v", results, st)
	}
}

func TestWaitTimesPopulated(t *testing.T) {
	c := New(Config{Nodes: 2, Seed: 5})
	results, _ := c.Submit(makeJobs(20))
	var positive int
	for _, r := range results {
		if r.WaitTime > 0 {
			positive++
		}
	}
	if positive < 15 {
		t.Errorf("only %d/20 jobs have queue wait", positive)
	}
}
