// Package apps defines the benchmark suite of Table I: nine applications
// with seventeen kernels spanning statistics, probability theory, linear
// algebra, data mining, numerical analysis and medical imaging. Each kernel
// is a serial C function template with a __PRAGMA__ marker line where the
// variant generator (package variants) inserts an OpenMP directive.
//
// The paper built these kernels with the OpenMP Advisor's code
// transformation module and ran them on Summit and Corona; here the same
// sources drive the ParaGraph builder, the COMPOFF feature extractor and the
// runtime simulator.
package apps

import (
	"fmt"
	"strings"
)

// PragmaMarker is the placeholder line replaced by variant directives.
const PragmaMarker = "__PRAGMA__"

// Param is a kernel size parameter with its sweep values.
type Param struct {
	Name   string
	Values []int
}

// Array describes a data array the kernel touches, with its element count as
// an expression over the kernel's parameters (used for map clauses and
// transfer-volume estimates).
type Array struct {
	Name     string
	SizeExpr string // e.g. "n*m"
}

// Kernel is one benchmark kernel template.
type Kernel struct {
	App         string  // application name (Table I)
	Name        string  // kernel identifier, unique across the suite
	Domain      string  // Table I domain
	FuncName    string  // C function name inside Source
	Source      string  // serial C source with a __PRAGMA__ marker
	Collapsible bool    // outer two loops perfectly nested (collapse(2) legal)
	Params      []Param // size parameters and their sweeps
	Arrays      []Array // mapped arrays
}

// Validate performs basic structural checks on the kernel template.
func (k Kernel) Validate() error {
	if k.App == "" || k.Name == "" || k.FuncName == "" {
		return fmt.Errorf("apps: kernel %q: missing identity fields", k.Name)
	}
	if strings.Count(k.Source, PragmaMarker) != 1 {
		return fmt.Errorf("apps: kernel %q: source must contain exactly one %s marker", k.Name, PragmaMarker)
	}
	if len(k.Params) == 0 {
		return fmt.Errorf("apps: kernel %q: no parameters", k.Name)
	}
	for _, p := range k.Params {
		if len(p.Values) == 0 {
			return fmt.Errorf("apps: kernel %q: parameter %q has no sweep values", k.Name, p.Name)
		}
	}
	return nil
}

// SerialSource returns the kernel source with the pragma marker removed,
// i.e. the plain serial version.
func (k Kernel) SerialSource() string {
	return strings.Replace(k.Source, PragmaMarker+"\n", "", 1)
}

// AppInfo summarizes one application for Table I.
type AppInfo struct {
	Name       string
	NumKernels int
	Domain     string
}

// Apps returns the Table I application inventory derived from Kernels().
func Apps() []AppInfo {
	var infos []AppInfo
	index := map[string]int{}
	for _, k := range Kernels() {
		if i, ok := index[k.App]; ok {
			infos[i].NumKernels++
			continue
		}
		index[k.App] = len(infos)
		infos = append(infos, AppInfo{Name: k.App, NumKernels: 1, Domain: k.Domain})
	}
	return infos
}

// ByName returns the kernel with the given Name.
func ByName(name string) (Kernel, bool) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// sizes is a shorthand constructor for sweep values.
func sizes(vs ...int) []int { return vs }

// Kernels returns the seventeen benchmark kernels (Table I).
func Kernels() []Kernel {
	return []Kernel{
		correlationKernel(),
		covarianceMeanKernel(),
		covarianceMatrixKernel(),
		gaussSeidelKernel(),
		knnKernel(),
		laplaceJacobiKernel(),
		laplaceResidualKernel(),
		matmulKernel(),
		matvecKernel(),
		transposeKernel(),
		pfLikelihoodKernel(),
		pfNormalizeKernel(),
		pfSumWeightsKernel(),
		pfMotionKernel(),
		pfCDFKernel(),
		pfResampleKernel(),
		pfMaxIndexKernel(),
	}
}

// --- Statistics / probability ---

func correlationKernel() Kernel {
	return Kernel{
		App:      "Correlation",
		Name:     "correlation_pearson",
		Domain:   "Statistics",
		FuncName: "correlation",
		Source: `
void correlation(double *x, double *y, double *out, int n) {
    double sx = 0.0;
    double sy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    double sxy = 0.0;
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        syy += y[i] * y[i];
        sxy += x[i] * y[i];
    }
    out[0] = (n * sxy - sx * sy) / sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
}
`,
		Collapsible: false,
		Params:      []Param{{Name: "n", Values: sizes(1<<12, 1<<14, 1<<16, 1<<18, 1<<20, 1<<22)}},
		Arrays:      []Array{{Name: "x", SizeExpr: "n"}, {Name: "y", SizeExpr: "n"}, {Name: "out", SizeExpr: "1"}},
	}
}

func covarianceMeanKernel() Kernel {
	return Kernel{
		App:      "Covariance",
		Name:     "covariance_mean",
		Domain:   "Probability Theory",
		FuncName: "cov_mean",
		Source: `
void cov_mean(double *data, double *mean, int n, int m) {
    __PRAGMA__
    for (int j = 0; j < m; j++) {
        double acc = 0.0;
        for (int i = 0; i < n; i++) {
            acc += data[i * m + j];
        }
        mean[j] = acc / n;
    }
}
`,
		Collapsible: false,
		Params: []Param{
			{Name: "n", Values: sizes(256, 512, 1024, 2048, 4096)},
			{Name: "m", Values: sizes(64, 128, 256)},
		},
		Arrays: []Array{{Name: "data", SizeExpr: "n*m"}, {Name: "mean", SizeExpr: "m"}},
	}
}

func covarianceMatrixKernel() Kernel {
	return Kernel{
		App:      "Covariance",
		Name:     "covariance_matrix",
		Domain:   "Probability Theory",
		FuncName: "cov_matrix",
		Source: `
void cov_matrix(double *data, double *mean, double *cov, int n, int m) {
    __PRAGMA__
    for (int j = 0; j < m; j++) {
        for (int k = 0; k < m; k++) {
            double acc = 0.0;
            for (int i = 0; i < n; i++) {
                acc += (data[i * m + j] - mean[j]) * (data[i * m + k] - mean[k]);
            }
            cov[j * m + k] = acc / (n - 1);
        }
    }
}
`,
		Collapsible: true,
		Params: []Param{
			{Name: "n", Values: sizes(256, 512, 1024, 2048)},
			{Name: "m", Values: sizes(64, 128, 256)},
		},
		Arrays: []Array{
			{Name: "data", SizeExpr: "n*m"},
			{Name: "mean", SizeExpr: "m"},
			{Name: "cov", SizeExpr: "m*m"},
		},
	}
}

// --- Linear algebra ---

func gaussSeidelKernel() Kernel {
	// Red-black ordered sweep: the classic parallelizable Gauss-Seidel form.
	return Kernel{
		App:      "Gauss Seidel",
		Name:     "gauss_seidel_sweep",
		Domain:   "Linear Algebra",
		FuncName: "gs_sweep",
		Source: `
void gs_sweep(double *u, double *f, int n) {
    __PRAGMA__
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            if ((i + j) % 2 == 0) {
                u[i * n + j] = 0.25 * (u[(i - 1) * n + j] + u[(i + 1) * n + j]
                    + u[i * n + j - 1] + u[i * n + j + 1] - f[i * n + j]);
            }
        }
    }
}
`,
		Collapsible: true,
		Params:      []Param{{Name: "n", Values: sizes(128, 256, 512, 1024, 2048)}},
		Arrays:      []Array{{Name: "u", SizeExpr: "n*n"}, {Name: "f", SizeExpr: "n*n"}},
	}
}

func matmulKernel() Kernel {
	return Kernel{
		App:      "Matrix-Matrix Multiplication",
		Name:     "matmul",
		Domain:   "Linear Algebra",
		FuncName: "matmul",
		Source: `
void matmul(double *a, double *b, double *c, int n) {
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            double sum = 0.0;
            for (int k = 0; k < n; k++) {
                sum += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = sum;
        }
    }
}
`,
		Collapsible: true,
		Params:      []Param{{Name: "n", Values: sizes(64, 128, 256, 512, 1024)}},
		Arrays: []Array{
			{Name: "a", SizeExpr: "n*n"},
			{Name: "b", SizeExpr: "n*n"},
			{Name: "c", SizeExpr: "n*n"},
		},
	}
}

func matvecKernel() Kernel {
	return Kernel{
		App:      "Matrix-Vector Multiplication",
		Name:     "matvec",
		Domain:   "Linear Algebra",
		FuncName: "matvec",
		Source: `
void matvec(double *a, double *x, double *y, int n, int m) {
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        double acc = 0.0;
        for (int j = 0; j < m; j++) {
            acc += a[i * m + j] * x[j];
        }
        y[i] = acc;
    }
}
`,
		Collapsible: false,
		Params: []Param{
			{Name: "n", Values: sizes(512, 1024, 2048, 4096, 8192)},
			{Name: "m", Values: sizes(512, 1024, 2048)},
		},
		Arrays: []Array{
			{Name: "a", SizeExpr: "n*m"},
			{Name: "x", SizeExpr: "m"},
			{Name: "y", SizeExpr: "n"},
		},
	}
}

func transposeKernel() Kernel {
	return Kernel{
		App:      "Matrix Transpose",
		Name:     "transpose",
		Domain:   "Linear Algebra",
		FuncName: "transpose",
		Source: `
void transpose(double *a, double *b, int n, int m) {
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < m; j++) {
            b[j * n + i] = a[i * m + j];
        }
    }
}
`,
		Collapsible: true,
		Params: []Param{
			{Name: "n", Values: sizes(256, 512, 1024, 2048, 4096)},
			{Name: "m", Values: sizes(256, 512, 1024, 2048)},
		},
		Arrays: []Array{{Name: "a", SizeExpr: "n*m"}, {Name: "b", SizeExpr: "n*m"}},
	}
}

// --- Data mining ---

func knnKernel() Kernel {
	return Kernel{
		App:      "K-nearest neighbors",
		Name:     "knn_distances",
		Domain:   "Data Mining",
		FuncName: "knn_dist",
		Source: `
void knn_dist(double *points, double *query, double *dist, int n, int d) {
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        double acc = 0.0;
        for (int k = 0; k < d; k++) {
            double diff = points[i * d + k] - query[k];
            acc += diff * diff;
        }
        dist[i] = sqrt(acc);
    }
}
`,
		Collapsible: false,
		Params: []Param{
			{Name: "n", Values: sizes(1<<12, 1<<14, 1<<16, 1<<18, 1<<20)},
			{Name: "d", Values: sizes(2, 8, 32)},
		},
		Arrays: []Array{
			{Name: "points", SizeExpr: "n*d"},
			{Name: "query", SizeExpr: "d"},
			{Name: "dist", SizeExpr: "n"},
		},
	}
}

// --- Numerical analysis ---

func laplaceJacobiKernel() Kernel {
	return Kernel{
		App:      "Laplace",
		Name:     "laplace_jacobi",
		Domain:   "Numerical Analysis",
		FuncName: "laplace_step",
		Source: `
void laplace_step(double *u, double *unew, int n) {
    __PRAGMA__
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            unew[i * n + j] = 0.25 * (u[(i - 1) * n + j] + u[(i + 1) * n + j]
                + u[i * n + j - 1] + u[i * n + j + 1]);
        }
    }
}
`,
		Collapsible: true,
		Params:      []Param{{Name: "n", Values: sizes(128, 256, 512, 1024, 2048, 4096)}},
		Arrays:      []Array{{Name: "u", SizeExpr: "n*n"}, {Name: "unew", SizeExpr: "n*n"}},
	}
}

func laplaceResidualKernel() Kernel {
	return Kernel{
		App:      "Laplace",
		Name:     "laplace_residual",
		Domain:   "Numerical Analysis",
		FuncName: "laplace_residual",
		Source: `
void laplace_residual(double *u, double *unew, double *res, int n) {
    double acc = 0.0;
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            double diff = unew[i * n + j] - u[i * n + j];
            acc += diff * diff;
            u[i * n + j] = unew[i * n + j];
        }
    }
    res[0] = sqrt(acc);
}
`,
		Collapsible: true,
		Params:      []Param{{Name: "n", Values: sizes(128, 256, 512, 1024, 2048, 4096)}},
		Arrays: []Array{
			{Name: "u", SizeExpr: "n*n"},
			{Name: "unew", SizeExpr: "n*n"},
			{Name: "res", SizeExpr: "1"},
		},
	}
}

// --- Medical imaging: particle filter (7 kernels, after Rodinia) ---

func pfLikelihoodKernel() Kernel {
	return Kernel{
		App:      "Particle Filter",
		Name:     "pf_likelihood",
		Domain:   "Medical Imaging",
		FuncName: "pf_likelihood",
		Source: `
void pf_likelihood(double *arrayX, double *arrayY, double *likelihood, double *objxy, int n, int numOnes) {
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        double acc = 0.0;
        for (int k = 0; k < numOnes; k++) {
            double dx = arrayX[i] - objxy[k * 2];
            double dy = arrayY[i] - objxy[k * 2 + 1];
            acc += (dx * dx + dy * dy) / 50.0;
        }
        likelihood[i] = acc / numOnes;
    }
}
`,
		Collapsible: false,
		Params: []Param{
			{Name: "n", Values: sizes(1<<12, 1<<14, 1<<16, 1<<18, 1<<20)},
			{Name: "numOnes", Values: sizes(16, 64, 256)},
		},
		Arrays: []Array{
			{Name: "arrayX", SizeExpr: "n"},
			{Name: "arrayY", SizeExpr: "n"},
			{Name: "likelihood", SizeExpr: "n"},
			{Name: "objxy", SizeExpr: "numOnes*2"},
		},
	}
}

func pfNormalizeKernel() Kernel {
	return Kernel{
		App:      "Particle Filter",
		Name:     "pf_normalize",
		Domain:   "Medical Imaging",
		FuncName: "pf_normalize",
		Source: `
void pf_normalize(double *weights, double *likelihood, double *sum, int n) {
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        weights[i] = weights[i] * exp(likelihood[i]);
    }
    sum[0] = 0.0;
}
`,
		Collapsible: false,
		Params:      []Param{{Name: "n", Values: sizes(1<<12, 1<<14, 1<<16, 1<<18, 1<<20, 1<<22)}},
		Arrays: []Array{
			{Name: "weights", SizeExpr: "n"},
			{Name: "likelihood", SizeExpr: "n"},
			{Name: "sum", SizeExpr: "1"},
		},
	}
}

func pfSumWeightsKernel() Kernel {
	return Kernel{
		App:      "Particle Filter",
		Name:     "pf_sum_weights",
		Domain:   "Medical Imaging",
		FuncName: "pf_sum",
		Source: `
void pf_sum(double *weights, double *sum, int n) {
    double acc = 0.0;
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        acc += weights[i];
    }
    sum[0] = acc;
}
`,
		Collapsible: false,
		Params:      []Param{{Name: "n", Values: sizes(1<<12, 1<<14, 1<<16, 1<<18, 1<<20, 1<<22)}},
		Arrays:      []Array{{Name: "weights", SizeExpr: "n"}, {Name: "sum", SizeExpr: "1"}},
	}
}

func pfMotionKernel() Kernel {
	return Kernel{
		App:      "Particle Filter",
		Name:     "pf_motion",
		Domain:   "Medical Imaging",
		FuncName: "pf_motion",
		Source: `
void pf_motion(double *arrayX, double *arrayY, double *noiseX, double *noiseY, int n) {
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        arrayX[i] += 1.0 + 5.0 * noiseX[i];
        arrayY[i] += -2.0 + 2.0 * noiseY[i];
    }
}
`,
		Collapsible: false,
		Params:      []Param{{Name: "n", Values: sizes(1<<12, 1<<14, 1<<16, 1<<18, 1<<20, 1<<22)}},
		Arrays: []Array{
			{Name: "arrayX", SizeExpr: "n"},
			{Name: "arrayY", SizeExpr: "n"},
			{Name: "noiseX", SizeExpr: "n"},
			{Name: "noiseY", SizeExpr: "n"},
		},
	}
}

func pfCDFKernel() Kernel {
	// Prefix-sum style loop: sequential dependence, still offloadable as a
	// single-team kernel; its poor GPU fit is exactly the kind of contrast
	// the cost model must learn.
	return Kernel{
		App:      "Particle Filter",
		Name:     "pf_cdf",
		Domain:   "Medical Imaging",
		FuncName: "pf_cdf",
		Source: `
void pf_cdf(double *cdf, double *weights, int n) {
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        double acc = 0.0;
        for (int j = 0; j <= i; j++) {
            acc += weights[j];
        }
        cdf[i] = acc;
    }
}
`,
		Collapsible: false,
		Params:      []Param{{Name: "n", Values: sizes(1<<10, 1<<12, 1<<14)}},
		Arrays:      []Array{{Name: "cdf", SizeExpr: "n"}, {Name: "weights", SizeExpr: "n"}},
	}
}

func pfResampleKernel() Kernel {
	return Kernel{
		App:      "Particle Filter",
		Name:     "pf_resample",
		Domain:   "Medical Imaging",
		FuncName: "pf_resample",
		Source: `
void pf_resample(double *cdf, double *u, double *xj, double *yj, double *arrayX, double *arrayY, int n) {
    __PRAGMA__
    for (int j = 0; j < n; j++) {
        int idx = 0;
        for (int i = 0; i < n; i++) {
            if (cdf[i] >= u[j]) {
                idx = i;
                break;
            }
        }
        xj[j] = arrayX[idx];
        yj[j] = arrayY[idx];
    }
}
`,
		Collapsible: false,
		Params:      []Param{{Name: "n", Values: sizes(1<<10, 1<<12, 1<<14)}},
		Arrays: []Array{
			{Name: "cdf", SizeExpr: "n"},
			{Name: "u", SizeExpr: "n"},
			{Name: "xj", SizeExpr: "n"},
			{Name: "yj", SizeExpr: "n"},
			{Name: "arrayX", SizeExpr: "n"},
			{Name: "arrayY", SizeExpr: "n"},
		},
	}
}

func pfMaxIndexKernel() Kernel {
	return Kernel{
		App:      "Particle Filter",
		Name:     "pf_max_index",
		Domain:   "Medical Imaging",
		FuncName: "pf_max_index",
		Source: `
void pf_max_index(double *weights, double *best, int n) {
    double maxw = 0.0;
    __PRAGMA__
    for (int i = 0; i < n; i++) {
        if (weights[i] > maxw) {
            maxw = weights[i];
        }
    }
    best[0] = maxw;
}
`,
		Collapsible: false,
		Params:      []Param{{Name: "n", Values: sizes(1<<12, 1<<14, 1<<16, 1<<18, 1<<20, 1<<22)}},
		Arrays:      []Array{{Name: "weights", SizeExpr: "n"}, {Name: "best", SizeExpr: "1"}},
	}
}
