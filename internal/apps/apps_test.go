package apps

import (
	"strings"
	"testing"

	"paragraph/internal/analysis"
	"paragraph/internal/cast"
	"paragraph/internal/cparse"
)

func TestSuiteShapeMatchesTableI(t *testing.T) {
	ks := Kernels()
	if len(ks) != 17 {
		t.Errorf("kernel count = %d, want 17 (Table I)", len(ks))
	}
	infos := Apps()
	if len(infos) != 9 {
		t.Errorf("application count = %d, want 9 (Table I)", len(infos))
	}
	wantKernels := map[string]int{
		"Correlation":                  1,
		"Covariance":                   2,
		"Gauss Seidel":                 1,
		"K-nearest neighbors":          1,
		"Laplace":                      2,
		"Matrix-Matrix Multiplication": 1,
		"Matrix-Vector Multiplication": 1,
		"Matrix Transpose":             1,
		"Particle Filter":              7,
	}
	for _, info := range infos {
		if want, ok := wantKernels[info.Name]; !ok {
			t.Errorf("unexpected application %q", info.Name)
		} else if info.NumKernels != want {
			t.Errorf("%s: %d kernels, want %d", info.Name, info.NumKernels, want)
		}
	}
}

func TestAllKernelsValidate(t *testing.T) {
	for _, k := range Kernels() {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestAllKernelSourcesParse(t *testing.T) {
	for _, k := range Kernels() {
		src := k.SerialSource()
		fn, err := cparse.ParseFunction(src)
		if err != nil {
			t.Errorf("%s: parse: %v", k.Name, err)
			continue
		}
		if fn.Name != k.FuncName {
			t.Errorf("%s: first function is %q, want %q", k.Name, fn.Name, k.FuncName)
		}
		if cast.LoopDepth(fn) < 1 {
			t.Errorf("%s: kernel has no loops", k.Name)
		}
	}
}

func TestKernelNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kernels() {
		if seen[k.Name] {
			t.Errorf("duplicate kernel name %q", k.Name)
		}
		seen[k.Name] = true
	}
}

func TestCollapsibleKernelsHaveNestedLoops(t *testing.T) {
	for _, k := range Kernels() {
		if !k.Collapsible {
			continue
		}
		fn, err := cparse.ParseFunction(k.SerialSource())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if d := cast.LoopDepth(fn); d < 2 {
			t.Errorf("%s: collapsible but loop depth %d", k.Name, d)
		}
	}
}

func TestKernelParamsCoverArraySizes(t *testing.T) {
	// Every array size expression must evaluate under a binding of the
	// kernel's declared parameters.
	for _, k := range Kernels() {
		env := analysis.Env{}
		for _, p := range k.Params {
			env[p.Name] = float64(p.Values[0])
		}
		for _, a := range k.Arrays {
			fn, err := cparse.ParseFunction("void f(void) { double v; v = " + a.SizeExpr + "; }")
			if err != nil {
				t.Errorf("%s/%s: size expr %q does not parse: %v", k.Name, a.Name, a.SizeExpr, err)
				continue
			}
			body := fn.Body()
			asn := body.Children[len(body.Children)-1]
			if _, ok := analysis.Eval(asn.Children[1], env); !ok {
				t.Errorf("%s/%s: size expr %q not evaluable under params", k.Name, a.Name, a.SizeExpr)
			}
		}
	}
}

func TestAnalysisSeesWorkInEveryKernel(t *testing.T) {
	for _, k := range Kernels() {
		fn, err := cparse.ParseFunction(k.SerialSource())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		env := analysis.Env{}
		for _, p := range k.Params {
			env[p.Name] = float64(p.Values[0])
		}
		kc := analysis.AnalyzeKernel(fn, env, 100)
		if kc.Flops+kc.IntOps == 0 {
			t.Errorf("%s: analyzer sees no arithmetic", k.Name)
		}
		if kc.Loads+kc.Stores == 0 {
			t.Errorf("%s: analyzer sees no memory traffic", k.Name)
		}
	}
}

func TestByName(t *testing.T) {
	k, ok := ByName("matmul")
	if !ok || k.App != "Matrix-Matrix Multiplication" {
		t.Errorf("ByName(matmul) = %+v, %v", k.Name, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

func TestSerialSourceRemovesMarker(t *testing.T) {
	for _, k := range Kernels() {
		if strings.Contains(k.SerialSource(), PragmaMarker) {
			t.Errorf("%s: marker not removed", k.Name)
		}
	}
}

func TestValidateCatchesBadKernels(t *testing.T) {
	good := Kernels()[0]
	bad := good
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("missing name accepted")
	}
	bad = good
	bad.Source = "void f(void) {}"
	if err := bad.Validate(); err == nil {
		t.Error("missing marker accepted")
	}
	bad = good
	bad.Source = PragmaMarker + "\n" + PragmaMarker + "\n"
	if err := bad.Validate(); err == nil {
		t.Error("double marker accepted")
	}
	bad = good
	bad.Params = nil
	if err := bad.Validate(); err == nil {
		t.Error("no params accepted")
	}
	bad = good
	bad.Params = []Param{{Name: "n"}}
	if err := bad.Validate(); err == nil {
		t.Error("empty sweep accepted")
	}
}
