// Package progen generates random — but always well-formed — C kernels in
// the subset the frontend supports. It drives property-based tests across
// the pipeline: every generated program must lex, parse, print,
// re-parse to the same shape, build a valid ParaGraph at every level,
// and analyze to finite costs.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated programs.
type Config struct {
	MaxDepth    int  // statement nesting depth (default 3)
	MaxStmts    int  // statements per block (default 4)
	MaxExprTerm int  // terms per expression (default 3)
	WithOMP     bool // emit an OpenMP pragma on one loop
}

func (c Config) withDefaults() Config {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.MaxStmts <= 0 {
		c.MaxStmts = 4
	}
	if c.MaxExprTerm <= 0 {
		c.MaxExprTerm = 3
	}
	return c
}

// Generate returns a random kernel function in C.
func Generate(rng *rand.Rand, cfg Config) string {
	cfg = cfg.withDefaults()
	g := &gen{rng: rng, cfg: cfg}
	return g.function()
}

type gen struct {
	rng     *rand.Rand
	cfg     Config
	scalars []string // declared int/double scalars usable in expressions
	arrays  []string // declared double* arrays
	counter int
	pragma  bool // whether the OMP pragma has been emitted
}

func (g *gen) fresh(prefix string) string {
	g.counter++
	return fmt.Sprintf("%s%d", prefix, g.counter)
}

func (g *gen) pick(names []string) string {
	return names[g.rng.Intn(len(names))]
}

func (g *gen) function() string {
	g.scalars = []string{"n", "m"}
	g.arrays = []string{"a", "b"}
	var sb strings.Builder
	sb.WriteString("void kernel(double *a, double *b, int n, int m) {\n")
	g.block(&sb, 1, g.cfg.MaxDepth)
	sb.WriteString("}\n")
	return sb.String()
}

func (g *gen) indent(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("    ", depth))
}

func (g *gen) block(sb *strings.Builder, depth, budget int) {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(sb, depth, budget)
	}
}

func (g *gen) stmt(sb *strings.Builder, depth, budget int) {
	choice := g.rng.Intn(10)
	if budget <= 0 && choice >= 4 {
		choice = g.rng.Intn(4) // only flat statements when out of depth
	}
	switch choice {
	case 0: // scalar declaration
		name := g.fresh("t")
		g.indent(sb, depth)
		fmt.Fprintf(sb, "double %s = %s;\n", name, g.expr(1))
		g.scalars = append(g.scalars, name)
	case 1, 2: // scalar assignment
		g.indent(sb, depth)
		fmt.Fprintf(sb, "%s = %s;\n", g.pick(g.scalars), g.expr(g.cfg.MaxExprTerm))
	case 3: // array store
		g.indent(sb, depth)
		fmt.Fprintf(sb, "%s[%s] = %s;\n", g.pick(g.arrays), g.index(), g.expr(g.cfg.MaxExprTerm))
	case 4, 5, 6: // for loop (canonical, so trip counts derive)
		iv := g.fresh("i")
		bound := g.loopBound()
		if g.cfg.WithOMP && !g.pragma && depth == 1 {
			g.pragma = true
			g.indent(sb, depth)
			sb.WriteString("#pragma omp parallel for\n")
		}
		g.indent(sb, depth)
		fmt.Fprintf(sb, "for (int %s = 0; %s < %s; %s++) {\n", iv, iv, bound, iv)
		g.scalars = append(g.scalars, iv)
		g.block(sb, depth+1, budget-1)
		g.scalars = g.scalars[:len(g.scalars)-1]
		g.indent(sb, depth)
		sb.WriteString("}\n")
	case 7, 8: // if / if-else
		g.indent(sb, depth)
		fmt.Fprintf(sb, "if (%s > %s) {\n", g.pick(g.scalars), g.expr(1))
		g.block(sb, depth+1, budget-1)
		g.indent(sb, depth)
		if g.rng.Intn(2) == 0 {
			sb.WriteString("} else {\n")
			g.block(sb, depth+1, budget-1)
			g.indent(sb, depth)
		}
		sb.WriteString("}\n")
	case 9: // while with a bounded-looking condition
		cond := g.pick(g.scalars)
		g.indent(sb, depth)
		fmt.Fprintf(sb, "while (%s > 0) {\n", cond)
		g.indent(sb, depth+1)
		fmt.Fprintf(sb, "%s = %s - 1;\n", cond, cond)
		g.indent(sb, depth)
		sb.WriteString("}\n")
	}
}

// loopBound yields a parseable trip-count source: literal or size parameter.
func (g *gen) loopBound() string {
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%d", 2+g.rng.Intn(100))
	case 1:
		return "n"
	default:
		return "m"
	}
}

func (g *gen) index() string {
	// Index expressions stay non-negative: scalars or scaled sums.
	switch g.rng.Intn(3) {
	case 0:
		return g.pick(g.scalars)
	case 1:
		return fmt.Sprintf("%s + %d", g.pick(g.scalars), g.rng.Intn(8))
	default:
		return fmt.Sprintf("%s * %d", g.pick(g.scalars), 1+g.rng.Intn(4))
	}
}

func (g *gen) expr(terms int) string {
	if terms <= 1 {
		return g.atom()
	}
	ops := []string{"+", "-", "*"}
	var sb strings.Builder
	sb.WriteString(g.atom())
	n := 1 + g.rng.Intn(terms)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, " %s %s", ops[g.rng.Intn(len(ops))], g.atom())
	}
	return sb.String()
}

func (g *gen) atom() string {
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("%d.%d", g.rng.Intn(10), g.rng.Intn(100))
	case 1:
		return g.pick(g.scalars)
	case 2:
		return fmt.Sprintf("%s[%s]", g.pick(g.arrays), g.index())
	case 3:
		return fmt.Sprintf("sqrt(%s)", g.pick(g.scalars))
	default:
		return fmt.Sprintf("(%s + %d)", g.pick(g.scalars), g.rng.Intn(16))
	}
}
