// Property tests driving randomly generated programs through the whole
// static pipeline: lexer → parser → printer → parser, ParaGraph at all
// three levels, static analysis, and GNN encoding. Any crash, parse error,
// invalid graph, or non-finite cost is a bug in one of those layers.
package progen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"paragraph/internal/analysis"
	"paragraph/internal/cast"
	"paragraph/internal/cparse"
	"paragraph/internal/gnn"
	"paragraph/internal/paragraph"
)

const trials = 120

func TestGeneratedProgramsParse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < trials; i++ {
		src := Generate(rng, Config{WithOMP: i%2 == 0})
		if _, err := cparse.Parse(src); err != nil {
			t.Fatalf("trial %d: parse error: %v\n%s", i, err, src)
		}
	}
}

func TestGeneratedProgramsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < trials; i++ {
		src := Generate(rng, Config{WithOMP: i%3 == 0})
		root, err := cparse.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		printed := cast.PrintCString(root)
		back, err := cparse.Parse(printed)
		if err != nil {
			t.Fatalf("trial %d: printed source does not re-parse: %v\n--- original ---\n%s\n--- printed ---\n%s",
				i, err, src, printed)
		}
		if a, b := shape(root), shape(back); a != b {
			t.Fatalf("trial %d: round-trip shape changed\n--- original ---\n%s\n--- printed ---\n%s", i, src, printed)
		}
	}
}

// shape summarizes a tree, ignoring wrapper nodes.
func shape(root *cast.Node) string {
	var sb strings.Builder
	cast.Walk(root, func(n *cast.Node) bool {
		switch n.Kind {
		case cast.KindParenExpr:
			return true
		case cast.KindImplicitCastExpr:
			if n.TypeName == "LValueToRValue" || n.TypeName == "" {
				return true
			}
		}
		sb.WriteString(n.Kind.String())
		sb.WriteByte(':')
		sb.WriteString(n.Name)
		sb.WriteString(n.Op)
		sb.WriteString(n.Value)
		sb.WriteByte(';')
		return true
	})
	return sb.String()
}

func TestGeneratedParaGraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	env := analysis.Env{"n": 64, "m": 32}
	for i := 0; i < trials; i++ {
		src := Generate(rng, Config{WithOMP: i%2 == 0})
		for _, level := range []paragraph.Level{
			paragraph.LevelRawAST, paragraph.LevelAugmentedAST, paragraph.LevelParaGraph,
		} {
			g, err := paragraph.BuildKernel(src, paragraph.Options{
				Level: level, Threads: 4, Bindings: env,
			})
			if err != nil {
				t.Fatalf("trial %d level %v: %v\n%s", i, level, err, src)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("trial %d level %v: invalid graph: %v", i, level, err)
			}
			counts := g.CountByType()
			// The Child edges always form a spanning tree.
			if counts[int(paragraph.Child)] != g.NumNodes()-1 {
				t.Fatalf("trial %d level %v: child edges %d != nodes-1 %d",
					i, level, counts[int(paragraph.Child)], g.NumNodes()-1)
			}
			switch level {
			case paragraph.LevelRawAST:
				if g.NumEdges() != g.NumNodes()-1 {
					t.Fatalf("trial %d: RawAST has non-child edges", i)
				}
				for _, e := range g.Edges {
					if e.Weight != 1 {
						t.Fatalf("trial %d: RawAST weight %v", i, e.Weight)
					}
				}
			case paragraph.LevelAugmentedAST:
				// NextToken chains terminals: exactly terminals-1 edges.
				terms := 0
				inDeg := make([]int, g.NumNodes())
				for _, e := range g.Edges {
					if e.Type == int(paragraph.NextToken) {
						terms++
						inDeg[e.Dst]++
					}
				}
				for v, d := range inDeg {
					if d > 1 {
						t.Fatalf("trial %d: node %d has %d NextToken in-edges", i, v, d)
					}
				}
			case paragraph.LevelParaGraph:
				for _, e := range g.Edges {
					if e.Type == int(paragraph.Child) && e.Weight <= 0 {
						t.Fatalf("trial %d: non-positive child weight %v", i, e.Weight)
					}
					if e.Type != int(paragraph.Child) && e.Weight != 0 {
						t.Fatalf("trial %d: weighted non-child edge", i)
					}
				}
			}
		}
	}
}

func TestGeneratedAnalysisIsFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	env := analysis.Env{"n": 128, "m": 16}
	for i := 0; i < trials; i++ {
		src := Generate(rng, Config{WithOMP: true})
		fn, err := cparse.ParseFunction(src)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		kc := analysis.AnalyzeKernel(fn, env, 50)
		for name, v := range map[string]float64{
			"flops": kc.Flops, "intops": kc.IntOps, "loads": kc.Loads,
			"stores": kc.Stores, "branches": kc.Branches,
			"iters": kc.TotalIters, "transfer": kc.TransferBytes,
		} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: %s = %v\n%s", i, name, v, src)
			}
		}
	}
}

func TestGeneratedGraphsEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < trials/2; i++ {
		src := Generate(rng, Config{WithOMP: true})
		g, err := paragraph.BuildKernel(src, paragraph.Options{
			Level: paragraph.LevelParaGraph, Threads: 8,
			Bindings: analysis.Env{"n": 64, "m": 64},
		})
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		eg, err := gnn.Encode(g, int(paragraph.NumEdgeTypes))
		if err != nil {
			t.Fatalf("trial %d: encode: %v", i, err)
		}
		if eg.NumNodes != g.NumNodes() || eg.NumEdges() != g.NumEdges() {
			t.Fatalf("trial %d: encode changed counts", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(7)), Config{WithOMP: true})
	b := Generate(rand.New(rand.NewSource(7)), Config{WithOMP: true})
	if a != b {
		t.Error("same seed produced different programs")
	}
	c := Generate(rand.New(rand.NewSource(8)), Config{WithOMP: true})
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratorRespectsOMPFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sawPragma := false
	for i := 0; i < 50; i++ {
		src := Generate(rng, Config{WithOMP: true})
		if strings.Contains(src, "#pragma omp") {
			sawPragma = true
			break
		}
	}
	if !sawPragma {
		t.Error("WithOMP never produced a pragma in 50 programs")
	}
	for i := 0; i < 20; i++ {
		src := Generate(rng, Config{WithOMP: false})
		if strings.Contains(src, "#pragma") {
			t.Error("pragma without WithOMP")
		}
	}
}
