package nn

import (
	"math"
	"math/rand"
	"testing"

	"paragraph/internal/tensor"
)

func TestParameterLifecycle(t *testing.T) {
	p := NewParameter("w", 2, 3)
	if p.Value.Rows != 2 || p.Grad.Cols != 3 {
		t.Fatal("shapes wrong")
	}
	p.Grad.Fill(1)
	p.ZeroGrad()
	if p.Grad.Sum() != 0 {
		t.Error("ZeroGrad failed")
	}
	g := GlorotParameter("g", 4, 4, rand.New(rand.NewSource(1)))
	if g.Value.Norm2() == 0 {
		t.Error("Glorot left zeros")
	}
}

func TestForwardBindCaching(t *testing.T) {
	p := NewParameter("w", 1, 1)
	f := NewForward()
	v1 := f.Bind(p)
	v2 := f.Bind(p)
	if v1 != v2 {
		t.Error("Bind should cache per parameter")
	}
	if !v1.RequiresGrad() {
		t.Error("training bind should require grad")
	}
	inf := NewInference()
	if inf.Bind(p).RequiresGrad() {
		t.Error("inference bind should not require grad")
	}
}

func TestLinearApply(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear("l", 3, 2, rng)
	l.W.Value = tensor.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	l.B.Value = tensor.FromRows([][]float64{{10, 20}})
	f := NewForward()
	x := f.Tape.Const(tensor.FromRows([][]float64{{1, 2, 3}}))
	y := l.Apply(f, x)
	if y.Value.At(0, 0) != 1+3+10 || y.Value.At(0, 1) != 2+3+20 {
		t.Errorf("Linear output = %v", y.Value)
	}
	if len(l.Params()) != 2 {
		t.Error("Linear params count")
	}
}

func TestLinearGradientDescentConverges(t *testing.T) {
	// Fit y = 2x - 1 with a single linear unit.
	rng := rand.New(rand.NewSource(3))
	l := NewLinear("fit", 1, 1, rng)
	opt := NewAdam(0.05)
	params := l.Params()
	var loss float64
	for step := 0; step < 300; step++ {
		x := rng.Float64()*4 - 2
		target := 2*x - 1
		f := NewForward()
		xv := f.Tape.Const(tensor.Scalar(x))
		pred := l.Apply(f, xv)
		lv := f.Tape.MSE(pred, tensor.Scalar(target))
		f.Backward(lv)
		f.Accumulate(1)
		opt.Step(params)
		loss = lv.Value.At(0, 0)
	}
	if loss > 1e-3 {
		t.Errorf("final loss %v, want < 1e-3", loss)
	}
	if math.Abs(l.W.Value.At(0, 0)-2) > 0.1 || math.Abs(l.B.Value.At(0, 0)+1) > 0.1 {
		t.Errorf("learned w=%v b=%v, want 2/-1", l.W.Value.At(0, 0), l.B.Value.At(0, 0))
	}
	if opt.StepCount() != 300 {
		t.Errorf("StepCount = %d", opt.StepCount())
	}
}

func TestEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := NewEmbedding("e", 5, 3, rng)
	f := NewForward()
	out := e.Apply(f, []int{0, 4, 0})
	if out.Value.Rows != 3 || out.Value.Cols != 3 {
		t.Fatalf("shape %dx%d", out.Value.Rows, out.Value.Cols)
	}
	for j := 0; j < 3; j++ {
		if out.Value.At(0, j) != out.Value.At(2, j) {
			t.Error("same id different rows")
		}
	}
	if len(e.Params()) != 1 {
		t.Error("Embedding params count")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range embedding id did not panic")
		}
	}()
	e.Apply(f, []int{5})
}

func TestAccumulateScaling(t *testing.T) {
	p := NewParameter("p", 1, 1)
	p.Value.Set(0, 0, 3)
	f := NewForward()
	v := f.Bind(p)
	sq := f.Tape.Hadamard(v, v) // d/dp p² = 2p = 6
	loss := f.Tape.Sum(sq)
	f.Backward(loss)
	f.Accumulate(0.5)
	if got := p.Grad.At(0, 0); math.Abs(got-3) > 1e-12 {
		t.Errorf("scaled grad = %v, want 3", got)
	}
	grads := f.Gradients()
	if g, ok := grads[p]; !ok || math.Abs(g.At(0, 0)-6) > 1e-12 {
		t.Errorf("Gradients() = %v", grads)
	}
}

func TestClipGradNorm(t *testing.T) {
	p1 := NewParameter("a", 1, 1)
	p2 := NewParameter("b", 1, 1)
	p1.Grad.Set(0, 0, 3)
	p2.Grad.Set(0, 0, 4) // global norm 5
	params := []*Parameter{p1, p2}
	norm := ClipGradNorm(params, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v", norm)
	}
	after := math.Sqrt(p1.Grad.At(0, 0)*p1.Grad.At(0, 0) + p2.Grad.At(0, 0)*p2.Grad.At(0, 0))
	if math.Abs(after-1) > 1e-9 {
		t.Errorf("post-clip norm = %v", after)
	}
	// Below threshold: untouched.
	p1.Grad.Set(0, 0, 0.1)
	p2.Grad.Set(0, 0, 0)
	ClipGradNorm(params, 1)
	if p1.Grad.At(0, 0) != 0.1 {
		t.Error("clip changed small gradients")
	}
	ZeroGrads(params)
	if p1.Grad.Sum() != 0 || p2.Grad.Sum() != 0 {
		t.Error("ZeroGrads failed")
	}
}

func TestAdamMovesAgainstGradient(t *testing.T) {
	p := NewParameter("p", 1, 1)
	p.Value.Set(0, 0, 1)
	p.Grad.Set(0, 0, 1) // positive gradient → value must decrease
	opt := NewAdam(0.1)
	opt.Step([]*Parameter{p})
	if p.Value.At(0, 0) >= 1 {
		t.Errorf("Adam moved wrong way: %v", p.Value.At(0, 0))
	}
	if p.Grad.Sum() != 0 {
		t.Error("Step should zero gradients")
	}
}
