// Package nn provides the neural-network building blocks above autodiff:
// named parameters, forward-pass parameter binding, linear and embedding
// layers, gradient clipping and the Adam optimizer. Together with package
// gnn it substitutes for the paper's PyTorch(-Geometric) stack.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"paragraph/internal/autodiff"
	"paragraph/internal/tensor"
)

// Parameter is a trainable matrix with an accumulated gradient.
type Parameter struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParameter allocates a zeroed parameter.
func NewParameter(name string, rows, cols int) *Parameter {
	return &Parameter{
		Name:  name,
		Value: tensor.New(rows, cols),
		Grad:  tensor.New(rows, cols),
	}
}

// GlorotParameter allocates a Glorot-initialized parameter.
func GlorotParameter(name string, rows, cols int, rng *rand.Rand) *Parameter {
	p := NewParameter(name, rows, cols)
	p.Value.Glorot(rng)
	return p
}

// ZeroGrad clears the accumulated gradient.
func (p *Parameter) ZeroGrad() { p.Grad.Zero() }

// Forward is one forward/backward pass: a tape plus the parameter→variable
// bindings made during it. Each training worker owns its Forward, so passes
// can run concurrently against shared (read-only) parameter values; the
// trainer merges the per-pass gradients afterwards.
type Forward struct {
	Tape     *autodiff.Tape
	bindings map[*Parameter]*autodiff.Var
	train    bool
}

// NewForward returns a pass that records gradients.
func NewForward() *Forward {
	return &Forward{Tape: autodiff.NewTape(), bindings: map[*Parameter]*autodiff.Var{}, train: true}
}

// NewInference returns a pass that skips gradient bookkeeping: its tape
// records no backward closures, so prediction allocates only values. The
// gnn model's serving predictions no longer route through here — its fused
// inference engine (gnn.Model.Predict) avoids per-op value allocation too —
// but NewInference remains the reference path (gnn.Model.PredictTape) the
// engine is verified against.
func NewInference() *Forward {
	return &Forward{Tape: autodiff.NewInferenceTape(), bindings: map[*Parameter]*autodiff.Var{}, train: false}
}

// Bind returns the tape variable for a parameter, creating it on first use.
func (f *Forward) Bind(p *Parameter) *autodiff.Var {
	if v, ok := f.bindings[p]; ok {
		return v
	}
	v := f.Tape.Var(p.Value, f.train)
	f.bindings[p] = v
	return v
}

// Backward runs reverse-mode differentiation from loss.
func (f *Forward) Backward(loss *autodiff.Var) { f.Tape.Backward(loss) }

// Gradients returns the per-parameter gradients accumulated in this pass.
// Call after Backward.
func (f *Forward) Gradients() map[*Parameter]*tensor.Matrix {
	out := make(map[*Parameter]*tensor.Matrix, len(f.bindings))
	for p, v := range f.bindings {
		out[p] = v.Grad()
	}
	return out
}

// Accumulate adds this pass's gradients into the parameters' Grad buffers,
// scaled by s (typically 1/batchSize). Not safe for concurrent use on the
// same parameters; the trainer serializes merges.
func (f *Forward) Accumulate(s float64) {
	for p, v := range f.bindings {
		p.Grad.AxpyInPlace(s, v.Grad())
	}
}

// Linear is a dense layer y = xW + b.
type Linear struct {
	W *Parameter
	B *Parameter
}

// NewLinear returns a Glorot-initialized dense layer mapping in→out.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		W: GlorotParameter(name+".W", in, out, rng),
		B: NewParameter(name+".b", 1, out),
	}
}

// Apply computes x·W + b.
func (l *Linear) Apply(f *Forward, x *autodiff.Var) *autodiff.Var {
	return f.Tape.AddBias(f.Tape.MatMul(x, f.Bind(l.W)), f.Bind(l.B))
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*Parameter { return []*Parameter{l.W, l.B} }

// Embedding is a lookup table mapping small integer ids to dense rows.
type Embedding struct {
	Table *Parameter
}

// NewEmbedding returns an embedding with num rows of dimension dim,
// initialized N(0, 0.1).
func NewEmbedding(name string, num, dim int, rng *rand.Rand) *Embedding {
	p := NewParameter(name+".emb", num, dim)
	p.Value.RandN(rng, 0.1)
	return &Embedding{Table: p}
}

// Apply gathers the rows for ids. Out-of-range ids panic (caller bug).
func (e *Embedding) Apply(f *Forward, ids []int) *autodiff.Var {
	for _, id := range ids {
		if id < 0 || id >= e.Table.Value.Rows {
			panic(fmt.Sprintf("nn: embedding id %d out of range [0,%d)", id, e.Table.Value.Rows))
		}
	}
	return f.Tape.GatherRows(f.Bind(e.Table), ids)
}

// Params returns the embedding's parameters.
func (e *Embedding) Params() []*Parameter { return []*Parameter{e.Table} }

// ZeroGrads clears all gradients.
func ZeroGrads(params []*Parameter) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales gradients so their global L2 norm is at most max.
// It returns the pre-clip norm.
func ClipGradNorm(params []*Parameter, max float64) float64 {
	var total float64
	for _, p := range params {
		n := p.Grad.Norm2()
		total += n * n
	}
	norm := math.Sqrt(total)
	if max > 0 && norm > max {
		scale := max / (norm + 1e-12)
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}

// Adam is the Adam optimizer (Kingma & Ba), the paper's optimizer choice.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	step int
	m    map[*Parameter]*tensor.Matrix
	v    map[*Parameter]*tensor.Matrix
}

// NewAdam returns Adam with the standard betas and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     map[*Parameter]*tensor.Matrix{},
		v:     map[*Parameter]*tensor.Matrix{},
	}
}

// Step applies one Adam update from the parameters' accumulated gradients
// and zeroes them.
func (a *Adam) Step(params []*Parameter) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Rows, p.Value.Cols)
		}
		v := a.v[p]
		for i, g := range p.Grad.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			p.Value.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }
