package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"paragraph/internal/tensor"
)

func paramSet(t *testing.T) []*Parameter {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	return []*Parameter{
		GlorotParameter("layer1.W", 4, 8, rng),
		GlorotParameter("layer1.b", 1, 8, rng),
		GlorotParameter("out.W", 8, 1, rng),
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := paramSet(t)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := paramSet(t)
	// Perturb destination so we can tell loading worked.
	for _, p := range dst {
		p.Value.Fill(99)
	}
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		for j, v := range src[i].Value.Data {
			if dst[i].Value.Data[j] != v {
				t.Fatalf("param %s elem %d: %v vs %v", src[i].Name, j, dst[i].Value.Data[j], v)
			}
		}
	}
}

func TestLoadedValuesAreIndependent(t *testing.T) {
	src := paramSet(t)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := paramSet(t)
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	dst[0].Value.Set(0, 0, 12345)
	if src[0].Value.At(0, 0) == 12345 {
		t.Error("loaded parameters alias the source buffers")
	}
}

func TestSaveRejectsBadNames(t *testing.T) {
	anon := NewParameter("", 1, 1)
	if err := SaveParams(&bytes.Buffer{}, []*Parameter{anon}); err == nil {
		t.Error("anonymous parameter accepted")
	}
	a := NewParameter("dup", 1, 1)
	b := NewParameter("dup", 1, 1)
	if err := SaveParams(&bytes.Buffer{}, []*Parameter{a, b}); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestLoadRejectsMismatches(t *testing.T) {
	src := paramSet(t)
	save := func() *bytes.Buffer {
		var buf bytes.Buffer
		if err := SaveParams(&buf, src); err != nil {
			t.Fatal(err)
		}
		return &buf
	}

	// Missing parameter in checkpoint.
	extra := append(paramSet(t), NewParameter("new.W", 2, 2))
	if err := LoadParams(save(), extra); err == nil {
		t.Error("missing checkpoint entry accepted")
	}
	// Shape mismatch.
	reshaped := paramSet(t)
	reshaped[0] = NewParameter("layer1.W", 5, 5)
	if err := LoadParams(save(), reshaped); err == nil {
		t.Error("shape mismatch accepted")
	}
	// Extra checkpoint entry (model smaller than checkpoint).
	smaller := paramSet(t)[:2]
	if err := LoadParams(save(), smaller); err == nil {
		t.Error("extra checkpoint entry accepted")
	}
	// Garbage input.
	if err := LoadParams(strings.NewReader("{bad"), paramSet(t)); err == nil {
		t.Error("garbage accepted")
	}
	// Wrong version.
	if err := LoadParams(strings.NewReader(`{"version":9,"params":[]}`), nil); err == nil {
		t.Error("future version accepted")
	}
}

func TestCheckpointPreservesPredictions(t *testing.T) {
	// A trained linear layer must predict identically after save/load into
	// a fresh instance.
	rng := rand.New(rand.NewSource(5))
	l := NewLinear("fit", 3, 1, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, l.Params()); err != nil {
		t.Fatal(err)
	}
	l2 := NewLinear("fit", 3, 1, rand.New(rand.NewSource(99)))
	if err := LoadParams(&buf, l2.Params()); err != nil {
		t.Fatal(err)
	}
	f1 := NewInference()
	f2 := NewInference()
	x1 := f1.Tape.Const(tensorFromRow(1, 2, 3))
	x2 := f2.Tape.Const(tensorFromRow(1, 2, 3))
	if got, want := l2.Apply(f2, x2).Value.At(0, 0), l.Apply(f1, x1).Value.At(0, 0); got != want {
		t.Errorf("prediction after load = %v, want %v", got, want)
	}
}

// tensorFromRow builds a 1×n matrix from values.
func tensorFromRow(vs ...float64) *tensor.Matrix {
	return tensor.FromData(1, len(vs), vs)
}
