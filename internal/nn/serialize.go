package nn

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"paragraph/internal/tensor"
)

// paramRecord is the on-disk form of one parameter.
type paramRecord struct {
	Name string    `json:"name"`
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// checkpoint is the on-disk envelope for a parameter set.
type checkpoint struct {
	Version int           `json:"version"`
	Params  []paramRecord `json:"params"`
}

// SaveParams writes the parameters' values as JSON. Parameter names must be
// unique (they are the load-time join key).
func SaveParams(w io.Writer, params []*Parameter) error {
	seen := map[string]bool{}
	cp := checkpoint{Version: 1, Params: make([]paramRecord, len(params))}
	for i, p := range params {
		if p.Name == "" {
			return fmt.Errorf("nn: parameter %d has no name", i)
		}
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		cp.Params[i] = paramRecord{
			Name: p.Name,
			Rows: p.Value.Rows,
			Cols: p.Value.Cols,
			Data: p.Value.Data,
		}
	}
	return json.NewEncoder(w).Encode(cp)
}

// ChecksumParams fingerprints a parameter set: a hex SHA-256 over every
// parameter's name, shape and exact bit pattern, in order. Registry
// manifests store it next to the weights file so a checkpoint that was
// corrupted or swapped after training is rejected at load time rather than
// silently served.
func ChecksumParams(params []*Parameter) string {
	h := sha256.New()
	var buf [8]byte
	for _, p := range params {
		fmt.Fprintf(h, "%s:%dx%d:", p.Name, p.Value.Rows, p.Value.Cols)
		for _, v := range p.Value.Data {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LoadParams reads a checkpoint into the given parameters, matching by
// name. Every parameter must be present with matching shape; extra
// checkpoint entries are an error (they signal a model-architecture
// mismatch).
func LoadParams(r io.Reader, params []*Parameter) error {
	var cp checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if cp.Version != 1 {
		return fmt.Errorf("nn: unsupported checkpoint version %d", cp.Version)
	}
	byName := make(map[string]paramRecord, len(cp.Params))
	for _, rec := range cp.Params {
		byName[rec.Name] = rec
	}
	if len(byName) != len(cp.Params) {
		return fmt.Errorf("nn: checkpoint has duplicate parameter names")
	}
	for _, p := range params {
		rec, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing parameter %q", p.Name)
		}
		if rec.Rows != p.Value.Rows || rec.Cols != p.Value.Cols {
			return fmt.Errorf("nn: parameter %q shape %dx%d, checkpoint has %dx%d",
				p.Name, p.Value.Rows, p.Value.Cols, rec.Rows, rec.Cols)
		}
		if len(rec.Data) != rec.Rows*rec.Cols {
			return fmt.Errorf("nn: parameter %q data length %d != %d", p.Name, len(rec.Data), rec.Rows*rec.Cols)
		}
		p.Value = tensor.FromData(rec.Rows, rec.Cols, append([]float64(nil), rec.Data...))
		delete(byName, p.Name)
	}
	if len(byName) != 0 {
		for name := range byName {
			return fmt.Errorf("nn: checkpoint parameter %q does not exist in the model", name)
		}
	}
	return nil
}
