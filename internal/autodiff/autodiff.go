// Package autodiff implements tape-based reverse-mode automatic
// differentiation over dense matrices (package tensor). It provides exactly
// the operator set a relational graph attention network needs: dense
// products, broadcasts, activations, row gather/scatter for message passing,
// and segment softmax for per-node attention normalization.
//
// A Tape is single-goroutine; data-parallel training gives each worker its
// own tape and merges parameter gradients afterwards (package nn).
//
// The tape is the training path and the reference semantics for inference:
// gnn's fused engine (gnn/infer.go) reproduces each op's forward arithmetic
// — loop body and accumulation order — without tape or per-op allocation,
// and an equivalence fuzz pins the two together. Changing a forward formula
// here therefore requires the matching engine change (the gnn tests fail
// loudly if they drift).
package autodiff

import (
	"fmt"
	"math"

	"paragraph/internal/tensor"
)

// Var is a node in the computation graph: a matrix value and, after
// Backward, its gradient.
type Var struct {
	Value        *tensor.Matrix
	grad         *tensor.Matrix
	requiresGrad bool
	tape         *Tape
}

// RequiresGrad reports whether gradients flow into this variable.
func (v *Var) RequiresGrad() bool { return v.requiresGrad }

// Grad returns the accumulated gradient, allocating a zero matrix on first
// use.
func (v *Var) Grad() *tensor.Matrix {
	if v.grad == nil {
		v.grad = tensor.New(v.Value.Rows, v.Value.Cols)
	}
	return v.grad
}

// Tape records operations for reverse-mode differentiation.
type Tape struct {
	backward  []func()
	inference bool
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// NewInferenceTape returns a tape that skips backward bookkeeping entirely:
// values are computed as usual but no closures are recorded, so a
// forward-only pass allocates no gradient machinery. Backward on such a
// tape is a no-op; use it only for prediction (nn.NewInference does).
func NewInferenceTape() *Tape { return &Tape{inference: true} }

// Var registers a matrix as a graph input. Pass requiresGrad=true for
// parameters and false for constants.
func (t *Tape) Var(m *tensor.Matrix, requiresGrad bool) *Var {
	return &Var{Value: m, requiresGrad: requiresGrad, tape: t}
}

// Const registers a non-differentiable input.
func (t *Tape) Const(m *tensor.Matrix) *Var { return t.Var(m, false) }

func (t *Tape) output(m *tensor.Matrix, inputs ...*Var) *Var {
	req := false
	for _, in := range inputs {
		if in.requiresGrad {
			req = true
			break
		}
	}
	return &Var{Value: m, requiresGrad: req, tape: t}
}

func (t *Tape) record(fn func()) {
	if t.inference {
		return
	}
	t.backward = append(t.backward, fn)
}

// Backward seeds the loss gradient with 1 and propagates through the tape in
// reverse. loss must be a 1×1 variable produced by this tape.
func (t *Tape) Backward(loss *Var) {
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward on non-scalar %dx%d", loss.Value.Rows, loss.Value.Cols))
	}
	loss.Grad().Set(0, 0, 1)
	for i := len(t.backward) - 1; i >= 0; i-- {
		t.backward[i]()
	}
}

// Ops returns the number of recorded operations (diagnostics).
func (t *Tape) Ops() int { return len(t.backward) }

// --- dense ops ---

// MatMul returns a×b.
func (t *Tape) MatMul(a, b *Var) *Var {
	out := t.output(tensor.MatMul(a.Value, b.Value), a, b)
	t.record(func() {
		if !out.requiresGrad {
			return
		}
		g := out.Grad()
		if a.requiresGrad {
			a.Grad().AddInPlace(tensor.MatMul(g, tensor.Transpose(b.Value)))
		}
		if b.requiresGrad {
			b.Grad().AddInPlace(tensor.MatMul(tensor.Transpose(a.Value), g))
		}
	})
	return out
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Var) *Var {
	out := t.output(tensor.Add(a.Value, b.Value), a, b)
	t.record(func() {
		if !out.requiresGrad {
			return
		}
		g := out.Grad()
		if a.requiresGrad {
			a.Grad().AddInPlace(g)
		}
		if b.requiresGrad {
			b.Grad().AddInPlace(g)
		}
	})
	return out
}

// AddBias returns a + bias, broadcasting the 1×C bias over a's rows.
func (t *Tape) AddBias(a, bias *Var) *Var {
	if bias.Value.Rows != 1 || bias.Value.Cols != a.Value.Cols {
		panic(fmt.Sprintf("autodiff: AddBias %dx%d + %dx%d",
			a.Value.Rows, a.Value.Cols, bias.Value.Rows, bias.Value.Cols))
	}
	m := a.Value.Clone()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range bias.Value.Row(0) {
			row[j] += v
		}
	}
	out := t.output(m, a, bias)
	t.record(func() {
		if !out.requiresGrad {
			return
		}
		g := out.Grad()
		if a.requiresGrad {
			a.Grad().AddInPlace(g)
		}
		if bias.requiresGrad {
			bg := bias.Grad()
			for i := 0; i < g.Rows; i++ {
				for j, v := range g.Row(i) {
					bg.Data[j] += v
				}
			}
		}
	})
	return out
}

// Scale returns s*a for a constant s.
func (t *Tape) Scale(a *Var, s float64) *Var {
	m := a.Value.Clone()
	m.ScaleInPlace(s)
	out := t.output(m, a)
	t.record(func() {
		if out.requiresGrad && a.requiresGrad {
			a.Grad().AxpyInPlace(s, out.Grad())
		}
	})
	return out
}

// Hadamard returns the element-wise product a⊙b.
func (t *Tape) Hadamard(a, b *Var) *Var {
	out := t.output(tensor.Hadamard(a.Value, b.Value), a, b)
	t.record(func() {
		if !out.requiresGrad {
			return
		}
		g := out.Grad()
		if a.requiresGrad {
			a.Grad().AddInPlace(tensor.Hadamard(g, b.Value))
		}
		if b.requiresGrad {
			b.Grad().AddInPlace(tensor.Hadamard(g, a.Value))
		}
	})
	return out
}

// --- activations ---

// LeakyReLU returns max(x, alpha*x) element-wise.
func (t *Tape) LeakyReLU(a *Var, alpha float64) *Var {
	m := a.Value.Clone()
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = alpha * v
		}
	}
	out := t.output(m, a)
	t.record(func() {
		if !out.requiresGrad || !a.requiresGrad {
			return
		}
		g := out.Grad()
		ag := a.Grad()
		for i, v := range a.Value.Data {
			if v >= 0 {
				ag.Data[i] += g.Data[i]
			} else {
				ag.Data[i] += alpha * g.Data[i]
			}
		}
	})
	return out
}

// ReLU returns max(x, 0) element-wise.
func (t *Tape) ReLU(a *Var) *Var { return t.LeakyReLU(a, 0) }

// Tanh returns tanh(x) element-wise.
func (t *Tape) Tanh(a *Var) *Var {
	m := a.Value.Clone()
	for i, v := range m.Data {
		m.Data[i] = math.Tanh(v)
	}
	out := t.output(m, a)
	t.record(func() {
		if !out.requiresGrad || !a.requiresGrad {
			return
		}
		g := out.Grad()
		ag := a.Grad()
		for i, y := range out.Value.Data {
			ag.Data[i] += (1 - y*y) * g.Data[i]
		}
	})
	return out
}

// --- structural ops ---

// ConcatCols returns [a | b], concatenating along columns.
func (t *Tape) ConcatCols(a, b *Var) *Var {
	if a.Value.Rows != b.Value.Rows {
		panic(fmt.Sprintf("autodiff: ConcatCols rows %d vs %d", a.Value.Rows, b.Value.Rows))
	}
	m := tensor.New(a.Value.Rows, a.Value.Cols+b.Value.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i)[:a.Value.Cols], a.Value.Row(i))
		copy(m.Row(i)[a.Value.Cols:], b.Value.Row(i))
	}
	out := t.output(m, a, b)
	t.record(func() {
		if !out.requiresGrad {
			return
		}
		g := out.Grad()
		if a.requiresGrad {
			ag := a.Grad()
			for i := 0; i < g.Rows; i++ {
				row := g.Row(i)[:a.Value.Cols]
				arow := ag.Row(i)
				for j, v := range row {
					arow[j] += v
				}
			}
		}
		if b.requiresGrad {
			bg := b.Grad()
			for i := 0; i < g.Rows; i++ {
				row := g.Row(i)[a.Value.Cols:]
				brow := bg.Row(i)
				for j, v := range row {
					brow[j] += v
				}
			}
		}
	})
	return out
}

// GatherRows returns out[i] = a[idx[i]] (used to fetch per-edge endpoint
// features).
func (t *Tape) GatherRows(a *Var, idx []int) *Var {
	m := tensor.New(len(idx), a.Value.Cols)
	for i, src := range idx {
		copy(m.Row(i), a.Value.Row(src))
	}
	out := t.output(m, a)
	t.record(func() {
		if !out.requiresGrad || !a.requiresGrad {
			return
		}
		g := out.Grad()
		ag := a.Grad()
		for i, src := range idx {
			dst := ag.Row(src)
			for j, v := range g.Row(i) {
				dst[j] += v
			}
		}
	})
	return out
}

// ScatterAddRows returns a numRows×C matrix with out[idx[i]] += a[i] (used
// to aggregate edge messages at destination nodes).
func (t *Tape) ScatterAddRows(a *Var, idx []int, numRows int) *Var {
	if len(idx) != a.Value.Rows {
		panic(fmt.Sprintf("autodiff: ScatterAddRows idx %d vs rows %d", len(idx), a.Value.Rows))
	}
	m := tensor.New(numRows, a.Value.Cols)
	for i, dst := range idx {
		row := m.Row(dst)
		for j, v := range a.Value.Row(i) {
			row[j] += v
		}
	}
	out := t.output(m, a)
	t.record(func() {
		if !out.requiresGrad || !a.requiresGrad {
			return
		}
		g := out.Grad()
		ag := a.Grad()
		for i, dst := range idx {
			src := g.Row(dst)
			row := ag.Row(i)
			for j, v := range src {
				row[j] += v
			}
		}
	})
	return out
}

// MulColBroadcast returns out[i] = a[i] * c[i][0], scaling each row of a by
// the corresponding entry of the column vector c (E×1).
func (t *Tape) MulColBroadcast(a, c *Var) *Var {
	if c.Value.Cols != 1 || c.Value.Rows != a.Value.Rows {
		panic(fmt.Sprintf("autodiff: MulColBroadcast %dx%d × %dx%d",
			a.Value.Rows, a.Value.Cols, c.Value.Rows, c.Value.Cols))
	}
	m := a.Value.Clone()
	for i := 0; i < m.Rows; i++ {
		f := c.Value.Data[i]
		row := m.Row(i)
		for j := range row {
			row[j] *= f
		}
	}
	out := t.output(m, a, c)
	t.record(func() {
		if !out.requiresGrad {
			return
		}
		g := out.Grad()
		if a.requiresGrad {
			ag := a.Grad()
			for i := 0; i < g.Rows; i++ {
				f := c.Value.Data[i]
				row := ag.Row(i)
				for j, v := range g.Row(i) {
					row[j] += f * v
				}
			}
		}
		if c.requiresGrad {
			cg := c.Grad()
			for i := 0; i < g.Rows; i++ {
				var acc float64
				arow := a.Value.Row(i)
				for j, v := range g.Row(i) {
					acc += v * arow[j]
				}
				cg.Data[i] += acc
			}
		}
	})
	return out
}

// SegmentSoftmax normalizes the E×1 logits within each segment:
// out[e] = exp(x[e]) / Σ_{f in segment(e)} exp(x[f]). segments assigns each
// row a segment ID in [0, numSegments). Empty segments are fine. The usual
// max-subtraction keeps it numerically stable.
func (t *Tape) SegmentSoftmax(logits *Var, segments []int, numSegments int) *Var {
	if logits.Value.Cols != 1 || len(segments) != logits.Value.Rows {
		panic(fmt.Sprintf("autodiff: SegmentSoftmax %dx%d with %d segments",
			logits.Value.Rows, logits.Value.Cols, len(segments)))
	}
	maxes := make([]float64, numSegments)
	for i := range maxes {
		maxes[i] = math.Inf(-1)
	}
	for e, s := range segments {
		if v := logits.Value.Data[e]; v > maxes[s] {
			maxes[s] = v
		}
	}
	sums := make([]float64, numSegments)
	m := tensor.New(logits.Value.Rows, 1)
	for e, s := range segments {
		v := math.Exp(logits.Value.Data[e] - maxes[s])
		m.Data[e] = v
		sums[s] += v
	}
	for e, s := range segments {
		if sums[s] > 0 {
			m.Data[e] /= sums[s]
		}
	}
	out := t.output(m, logits)
	t.record(func() {
		if !out.requiresGrad || !logits.requiresGrad {
			return
		}
		g := out.Grad()
		// dL/dx_e = α_e (g_e - Σ_f α_f g_f) within the segment.
		dots := make([]float64, numSegments)
		for e, s := range segments {
			dots[s] += out.Value.Data[e] * g.Data[e]
		}
		lg := logits.Grad()
		for e, s := range segments {
			lg.Data[e] += out.Value.Data[e] * (g.Data[e] - dots[s])
		}
	})
	return out
}

// --- reductions and losses ---

// MeanRows returns the 1×C mean over rows.
func (t *Tape) MeanRows(a *Var) *Var {
	if a.Value.Rows == 0 {
		panic("autodiff: MeanRows of empty matrix")
	}
	m := tensor.New(1, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		for j, v := range a.Value.Row(i) {
			m.Data[j] += v
		}
	}
	inv := 1 / float64(a.Value.Rows)
	m.ScaleInPlace(inv)
	out := t.output(m, a)
	t.record(func() {
		if !out.requiresGrad || !a.requiresGrad {
			return
		}
		g := out.Grad()
		ag := a.Grad()
		for i := 0; i < ag.Rows; i++ {
			row := ag.Row(i)
			for j := range row {
				row[j] += g.Data[j] * inv
			}
		}
	})
	return out
}

// Sum returns the 1×1 sum of all elements.
func (t *Tape) Sum(a *Var) *Var {
	out := t.output(tensor.Scalar(a.Value.Sum()), a)
	t.record(func() {
		if !out.requiresGrad || !a.requiresGrad {
			return
		}
		g := out.Grad().At(0, 0)
		ag := a.Grad()
		for i := range ag.Data {
			ag.Data[i] += g
		}
	})
	return out
}

// MSE returns the 1×1 mean squared error between pred and the constant
// target (same shape).
func (t *Tape) MSE(pred *Var, target *tensor.Matrix) *Var {
	if !pred.Value.SameShape(target) {
		panic(fmt.Sprintf("autodiff: MSE %dx%d vs %dx%d",
			pred.Value.Rows, pred.Value.Cols, target.Rows, target.Cols))
	}
	n := float64(len(target.Data))
	var acc float64
	for i, v := range pred.Value.Data {
		d := v - target.Data[i]
		acc += d * d
	}
	out := t.output(tensor.Scalar(acc/n), pred)
	t.record(func() {
		if !out.requiresGrad || !pred.requiresGrad {
			return
		}
		g := out.Grad().At(0, 0)
		pg := pred.Grad()
		for i, v := range pred.Value.Data {
			pg.Data[i] += g * 2 * (v - target.Data[i]) / n
		}
	})
	return out
}
