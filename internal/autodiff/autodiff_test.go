package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"paragraph/internal/tensor"
)

// gradCheck numerically verifies d loss / d input for every input matrix.
// build must construct the loss from the given tape and input vars.
func gradCheck(t *testing.T, name string, inputs []*tensor.Matrix, build func(tp *Tape, vars []*Var) *Var) {
	t.Helper()
	const eps = 1e-5
	const tol = 1e-3

	// Analytic gradients.
	tp := NewTape()
	vars := make([]*Var, len(inputs))
	for i, m := range inputs {
		vars[i] = tp.Var(m, true)
	}
	loss := build(tp, vars)
	tp.Backward(loss)

	lossAt := func() float64 {
		tp2 := NewTape()
		vars2 := make([]*Var, len(inputs))
		for i, m := range inputs {
			vars2[i] = tp2.Var(m, true)
		}
		return build(tp2, vars2).Value.At(0, 0)
	}

	for vi, m := range inputs {
		analytic := vars[vi].Grad()
		for i := range m.Data {
			orig := m.Data[i]
			m.Data[i] = orig + eps
			up := lossAt()
			m.Data[i] = orig - eps
			down := lossAt()
			m.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			got := analytic.Data[i]
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(got)))
			if math.Abs(numeric-got)/scale > tol {
				t.Errorf("%s: input %d elem %d: analytic %v vs numeric %v",
					name, vi, i, got, numeric)
			}
		}
	}
}

func randMat(rng *rand.Rand, r, c int) *tensor.Matrix {
	m := tensor.New(r, c)
	m.RandN(rng, 1)
	return m
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gradCheck(t, "matmul", []*tensor.Matrix{randMat(rng, 3, 4), randMat(rng, 4, 2)},
		func(tp *Tape, vs []*Var) *Var {
			return tp.Sum(tp.MatMul(vs[0], vs[1]))
		})
}

func TestGradAddAndBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gradCheck(t, "add", []*tensor.Matrix{randMat(rng, 2, 3), randMat(rng, 2, 3)},
		func(tp *Tape, vs []*Var) *Var {
			return tp.Sum(tp.Add(vs[0], vs[1]))
		})
	gradCheck(t, "addbias", []*tensor.Matrix{randMat(rng, 4, 3), randMat(rng, 1, 3)},
		func(tp *Tape, vs []*Var) *Var {
			// Square to make bias gradient non-trivial.
			s := tp.AddBias(vs[0], vs[1])
			return tp.Sum(tp.Hadamard(s, s))
		})
}

func TestGradScaleHadamard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gradCheck(t, "scale", []*tensor.Matrix{randMat(rng, 2, 2)},
		func(tp *Tape, vs []*Var) *Var {
			return tp.Sum(tp.Scale(vs[0], -2.5))
		})
	gradCheck(t, "hadamard", []*tensor.Matrix{randMat(rng, 3, 2), randMat(rng, 3, 2)},
		func(tp *Tape, vs []*Var) *Var {
			return tp.Sum(tp.Hadamard(vs[0], vs[1]))
		})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gradCheck(t, "leakyrelu", []*tensor.Matrix{randMat(rng, 4, 3)},
		func(tp *Tape, vs []*Var) *Var {
			return tp.Sum(tp.LeakyReLU(vs[0], 0.2))
		})
	gradCheck(t, "relu-squared", []*tensor.Matrix{randMat(rng, 4, 3)},
		func(tp *Tape, vs []*Var) *Var {
			r := tp.ReLU(vs[0])
			return tp.Sum(tp.Hadamard(r, r))
		})
	gradCheck(t, "tanh", []*tensor.Matrix{randMat(rng, 3, 3)},
		func(tp *Tape, vs []*Var) *Var {
			return tp.Sum(tp.Tanh(vs[0]))
		})
}

func TestGradConcatGatherScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gradCheck(t, "concat", []*tensor.Matrix{randMat(rng, 3, 2), randMat(rng, 3, 4)},
		func(tp *Tape, vs []*Var) *Var {
			c := tp.ConcatCols(vs[0], vs[1])
			return tp.Sum(tp.Hadamard(c, c))
		})
	idx := []int{2, 0, 0, 1}
	gradCheck(t, "gather", []*tensor.Matrix{randMat(rng, 3, 2)},
		func(tp *Tape, vs []*Var) *Var {
			g := tp.GatherRows(vs[0], idx)
			return tp.Sum(tp.Hadamard(g, g))
		})
	gradCheck(t, "scatter", []*tensor.Matrix{randMat(rng, 4, 2)},
		func(tp *Tape, vs []*Var) *Var {
			s := tp.ScatterAddRows(vs[0], idx, 3)
			return tp.Sum(tp.Hadamard(s, s))
		})
}

func TestGradMulColBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	gradCheck(t, "mulcol", []*tensor.Matrix{randMat(rng, 4, 3), randMat(rng, 4, 1)},
		func(tp *Tape, vs []*Var) *Var {
			m := tp.MulColBroadcast(vs[0], vs[1])
			return tp.Sum(tp.Hadamard(m, m))
		})
}

func TestGradSegmentSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	segments := []int{0, 0, 1, 1, 1, 3} // segment 2 empty
	gradCheck(t, "segsoftmax", []*tensor.Matrix{randMat(rng, 6, 1)},
		func(tp *Tape, vs []*Var) *Var {
			sm := tp.SegmentSoftmax(vs[0], segments, 4)
			// Weighted sum to give distinct upstream gradients.
			w := tensor.FromData(6, 1, []float64{1, 2, 3, 4, 5, 6})
			return tp.Sum(tp.Hadamard(sm, tp.Const(w)))
		})
}

func TestSegmentSoftmaxNormalizes(t *testing.T) {
	tp := NewTape()
	logits := tp.Const(tensor.FromData(5, 1, []float64{1, 2, 3, -1, 100}))
	segments := []int{0, 0, 0, 1, 1}
	sm := tp.SegmentSoftmax(logits, segments, 2)
	s0 := sm.Value.Data[0] + sm.Value.Data[1] + sm.Value.Data[2]
	s1 := sm.Value.Data[3] + sm.Value.Data[4]
	if math.Abs(s0-1) > 1e-12 || math.Abs(s1-1) > 1e-12 {
		t.Errorf("segment sums = %v, %v; want 1", s0, s1)
	}
	// Large logit should dominate without overflow.
	if sm.Value.Data[4] < 0.999 {
		t.Errorf("dominant logit prob = %v", sm.Value.Data[4])
	}
	if sm.Value.HasNaN() {
		t.Error("softmax produced NaN")
	}
}

func TestGradMeanRowsAndMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	gradCheck(t, "meanrows", []*tensor.Matrix{randMat(rng, 5, 3)},
		func(tp *Tape, vs []*Var) *Var {
			m := tp.MeanRows(vs[0])
			return tp.Sum(tp.Hadamard(m, m))
		})
	target := randMat(rng, 4, 1)
	gradCheck(t, "mse", []*tensor.Matrix{randMat(rng, 4, 1)},
		func(tp *Tape, vs []*Var) *Var {
			return tp.MSE(vs[0], target)
		})
}

func TestGradComposite(t *testing.T) {
	// A miniature attention computation end to end.
	rng := rand.New(rand.NewSource(9))
	h := randMat(rng, 4, 3)   // node features
	w := randMat(rng, 3, 3)   // projection
	att := randMat(rng, 6, 1) // attention params per edge
	src := []int{0, 1, 2, 3, 0, 2}
	dst := []int{1, 2, 3, 0, 2, 1}
	gradCheck(t, "composite", []*tensor.Matrix{h, w, att},
		func(tp *Tape, vs []*Var) *Var {
			proj := tp.MatMul(vs[0], vs[1])
			msgs := tp.GatherRows(proj, src)
			logits := tp.LeakyReLU(vs[2], 0.2)
			alpha := tp.SegmentSoftmax(logits, dst, 4)
			weighted := tp.MulColBroadcast(msgs, alpha)
			agg := tp.ScatterAddRows(weighted, dst, 4)
			pooled := tp.MeanRows(agg)
			return tp.Sum(tp.Hadamard(pooled, pooled))
		})
}

func TestNoGradForConstants(t *testing.T) {
	tp := NewTape()
	a := tp.Const(tensor.Scalar(2))
	b := tp.Const(tensor.Scalar(3))
	c := tp.Hadamard(a, b)
	if c.RequiresGrad() {
		t.Error("product of constants requires grad")
	}
	loss := tp.Sum(c)
	tp.Backward(loss)
	if a.Grad().Sum() != 0 {
		t.Error("constant accumulated gradient")
	}
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	tp := NewTape()
	v := tp.Var(tensor.New(2, 2), true)
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-scalar Backward")
		}
	}()
	tp.Backward(v)
}

func TestOpsPanicOnBadShapes(t *testing.T) {
	cases := []func(tp *Tape){
		func(tp *Tape) { tp.AddBias(tp.Const(tensor.New(2, 3)), tp.Const(tensor.New(1, 4))) },
		func(tp *Tape) { tp.ConcatCols(tp.Const(tensor.New(2, 3)), tp.Const(tensor.New(3, 3))) },
		func(tp *Tape) { tp.ScatterAddRows(tp.Const(tensor.New(2, 3)), []int{0}, 4) },
		func(tp *Tape) { tp.MulColBroadcast(tp.Const(tensor.New(2, 3)), tp.Const(tensor.New(2, 2))) },
		func(tp *Tape) { tp.SegmentSoftmax(tp.Const(tensor.New(2, 2)), []int{0, 0}, 1) },
		func(tp *Tape) { tp.MSE(tp.Const(tensor.New(2, 1)), tensor.New(3, 1)) },
		func(tp *Tape) { tp.MeanRows(tp.Const(tensor.New(0, 2))) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn(NewTape())
		}()
	}
}

func TestTapeOpsCount(t *testing.T) {
	tp := NewTape()
	a := tp.Var(tensor.Scalar(1), true)
	b := tp.Hadamard(a, a)
	_ = tp.Sum(b)
	if tp.Ops() != 2 {
		t.Errorf("Ops = %d, want 2", tp.Ops())
	}
}

func TestGradAccumulatesAcrossUses(t *testing.T) {
	// f(x) = x*x + x → f'(x) = 2x + 1 at x=3 → 7.
	tp := NewTape()
	x := tp.Var(tensor.Scalar(3), true)
	sq := tp.Hadamard(x, x)
	sum := tp.Add(sq, x)
	loss := tp.Sum(sum)
	tp.Backward(loss)
	if got := x.Grad().At(0, 0); math.Abs(got-7) > 1e-12 {
		t.Errorf("grad = %v, want 7", got)
	}
}

func TestInferenceTapeMatchesValuesWithoutRecording(t *testing.T) {
	compute := func(tp *Tape) float64 {
		x := tp.Var(tensor.FromData(2, 2, []float64{1, -2, 3, 4}), true)
		y := tp.MatMul(x, x)
		y = tp.ReLU(y)
		return tp.Sum(y).Value.At(0, 0)
	}
	train := NewTape()
	infer := NewInferenceTape()
	want := compute(train)
	if got := compute(infer); got != want {
		t.Errorf("inference value %v, training value %v", got, want)
	}
	if train.Ops() == 0 {
		t.Error("training tape recorded nothing")
	}
	if infer.Ops() != 0 {
		t.Errorf("inference tape recorded %d ops", infer.Ops())
	}
}
