package shard

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"paragraph/internal/admit"
	"paragraph/internal/obs"
)

// ForwardedByHeader marks a request that was already forwarded once by the
// named peer. A receiving server must answer such a request locally, never
// re-forward it: during a membership change two peers' rings can briefly
// disagree about a key's owner, and the guard turns what would be a
// forwarding loop into at most one extra hop. Async (replication) posts
// carry it too, so their receiver treats them as peer traffic and never
// fans them back out.
const ForwardedByHeader = "X-Paragraph-Forwarded-By"

// ForwardOptions tunes the peer-forwarding clients. Zero values pick
// defaults.
type ForwardOptions struct {
	// Timeout bounds one forwarded request end to end (connect, send,
	// owner's evaluation, response). Default 15s — an advise miss on the
	// owner pays a full grid evaluation, which dwarfs the network hop.
	Timeout time.Duration
	// MaxConnsPerPeer caps concurrent connections to one peer; idle
	// connections up to the cap are kept for reuse. Default 8.
	MaxConnsPerPeer int
	// AsyncQueue bounds the fire-and-forget post queue (ForwardAsync).
	// When it is full new posts are dropped, never blocked on — async
	// traffic is best-effort by contract. Default 256.
	AsyncQueue int
	// AsyncWorkers is how many goroutines drain the async queue. Default 2.
	AsyncWorkers int
}

func (o ForwardOptions) withDefaults() ForwardOptions {
	if o.Timeout <= 0 {
		o.Timeout = 15 * time.Second
	}
	if o.MaxConnsPerPeer <= 0 {
		o.MaxConnsPerPeer = 8
	}
	if o.AsyncQueue <= 0 {
		o.AsyncQueue = 256
	}
	if o.AsyncWorkers <= 0 {
		o.AsyncWorkers = 2
	}
	return o
}

// peerClient is one peer's bounded HTTP client plus its traffic counters.
type peerClient struct {
	client   *http.Client
	forwards atomic.Uint64 // requests successfully answered by this peer
	errors   atomic.Uint64 // transport failures (caller fell back to local)
}

// asyncPost is one queued fire-and-forget POST (a replication write). It
// carries the originating request's trace id so a write-through is
// attributable to the request that produced the entry.
type asyncPost struct {
	peer, path string
	body       []byte
	traceID    string
}

// Forwarder carries requests to their owning peer over HTTP. Each peer
// gets its own client with a bounded connection pool, so a slow or dead
// peer can exhaust only its own connections, never another peer's. Safe
// for concurrent use.
//
// Besides the synchronous Forward path it offers ForwardAsync: a bounded
// fire-and-forget queue drained by background workers, used by the serving
// tier to write cache entries through to replica peers without adding
// latency to the request that produced them.
type Forwarder struct {
	self string
	opts ForwardOptions

	mu    sync.Mutex
	peers map[string]*peerClient

	queue      chan asyncPost
	quit       chan struct{}
	startOnce  sync.Once
	closeOnce  sync.Once
	asyncSent  atomic.Uint64 // async posts answered with a 2xx status
	asyncDrops atomic.Uint64 // async posts dropped because the queue was full
	asyncErrs  atomic.Uint64 // async posts that reached no peer
}

// NewForwarder returns a Forwarder that identifies itself as self (the
// value written into ForwardedByHeader).
func NewForwarder(self string, opts ForwardOptions) *Forwarder {
	opts = opts.withDefaults()
	return &Forwarder{
		self:  self,
		opts:  opts,
		peers: map[string]*peerClient{},
		queue: make(chan asyncPost, opts.AsyncQueue),
		quit:  make(chan struct{}),
	}
}

func (f *Forwarder) peer(name string) *peerClient {
	f.mu.Lock()
	defer f.mu.Unlock()
	pc, ok := f.peers[name]
	if !ok {
		pc = &peerClient{client: &http.Client{
			Timeout: f.opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: f.opts.MaxConnsPerPeer,
				MaxConnsPerHost:     f.opts.MaxConnsPerPeer,
				IdleConnTimeout:     90 * time.Second,
			},
		}}
		f.peers[name] = pc
	}
	return pc
}

// Meta is the request context a forward carries across the wire: the
// originating request's trace id (so the answering peer's trace joins
// it), and its remaining deadline budget (so the peer applies the same
// admission policy the origin would — a forwarded request must not
// outlive its caller's patience on someone else's queue).
type Meta struct {
	// TraceID propagates the originating request's trace ("" = untraced).
	TraceID string
	// Deadline is the originating request's remaining budget; when
	// positive it rides the deadline header and the receiving peer treats
	// it exactly like a client-set deadline. Zero propagates nothing.
	Deadline time.Duration
}

// post performs one loop-guarded JSON POST to peer+path on the peer's
// bounded client. Shared by the synchronous and async paths; counting is
// the caller's job because the two paths have different counters. meta's
// trace id and deadline ride along in their headers; ctx bounds the hop
// in addition to the client's own timeout.
func (f *Forwarder) post(ctx context.Context, pc *peerClient, peer, path string, body []byte, meta Meta) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, fmt.Errorf("shard: building forward to %s: %w", peer, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedByHeader, f.self)
	if meta.TraceID != "" {
		req.Header.Set(obs.TraceHeader, meta.TraceID)
	}
	if meta.Deadline > 0 {
		req.Header.Set(admit.DeadlineHeader, admit.FormatDeadline(meta.Deadline))
	}
	resp, err := pc.client.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("shard: forwarding to %s: %w", peer, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("shard: reading forward response from %s: %w", peer, err)
	}
	return resp.StatusCode, out, nil
}

// Control performs one request to peer+path on the peer's bounded client
// without touching the per-peer forwarding counters: membership gossip,
// anti-entropy key exchange and read-repair fetches are control-plane
// chatter that must not inflate the request-forwarding stats operators
// read off /v1/ring. The loop-guard header still rides along as the
// sender's identity (receivers gate peer-only endpoints on it). body may
// be nil for GETs. The caller owns error counting.
func (f *Forwarder) Control(ctx context.Context, method, peer, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, peer+path, rd)
	if err != nil {
		return 0, nil, fmt.Errorf("shard: building control request to %s: %w", peer, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(ForwardedByHeader, f.self)
	resp, err := f.peer(peer).client.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("shard: control request to %s: %w", peer, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("shard: reading control response from %s: %w", peer, err)
	}
	return resp.StatusCode, out, nil
}

// Prune drops the clients of peers not in keep, closing their idle
// connections, and returns how many were dropped. Peer clients are created
// lazily and were never removed, so a long-lived process whose membership
// shrank kept a connection pool (and its idle sockets) per departed peer
// forever; the serving tier calls Prune on every ring rebuild. Dropping a
// client also drops its forward/error counters — a departed peer's rows
// disappear from /v1/ring. In-flight requests on a pruned client finish
// normally (they hold their own reference; only idle connections close),
// and a later request to the same peer just recreates the client.
func (f *Forwarder) Prune(keep []string) int {
	keepSet := make(map[string]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	f.mu.Lock()
	var victims []*peerClient
	for name, pc := range f.peers {
		if !keepSet[name] {
			victims = append(victims, pc)
			delete(f.peers, name)
		}
	}
	f.mu.Unlock()
	for _, pc := range victims {
		if tr, ok := pc.client.Transport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
	}
	return len(victims)
}

// Forward POSTs body (JSON) to peer+path with the loop-guard header set and
// returns the peer's status code and response body. Any HTTP response —
// including an error status — counts as a successful forward: the owner
// answered, and its answer (even "unknown kernel") is authoritative. A
// non-nil error means the peer was unreachable (dial failure, timeout,
// truncated response); the caller should fall back to serving locally.
// ctx cancellation aborts the hop (counted as an error); meta carries the
// originating request's trace id and remaining deadline budget.
func (f *Forwarder) Forward(ctx context.Context, peer, path string, body []byte, meta Meta) (int, []byte, error) {
	pc := f.peer(peer)
	status, out, err := f.post(ctx, pc, peer, path, body, meta)
	if err != nil {
		pc.errors.Add(1)
		return 0, nil, err
	}
	pc.forwards.Add(1)
	return status, out, nil
}

// ForwardAsync enqueues a fire-and-forget POST to peer+path and returns
// immediately. The post is carried by a background worker on the peer's
// bounded client; nothing is retried and no result is reported back. When
// the queue is full the post is dropped (counted in AsyncStats.Dropped)
// rather than blocking the caller — async traffic exists to shed work off
// the request path, so backpressure must never travel back up it. The
// return value reports whether the post was accepted into the queue.
// traceID ("" = untraced) propagates the originating request's trace.
func (f *Forwarder) ForwardAsync(peer, path string, body []byte, traceID string) bool {
	f.startOnce.Do(func() {
		for i := 0; i < f.opts.AsyncWorkers; i++ {
			go f.drainAsync()
		}
	})
	select {
	case f.queue <- asyncPost{peer: peer, path: path, body: body, traceID: traceID}:
		return true
	default:
		f.asyncDrops.Add(1)
		return false
	}
}

// drainAsync is one async worker: it posts queued jobs until Close.
func (f *Forwarder) drainAsync() {
	for {
		select {
		case <-f.quit:
			return
		case job := <-f.queue:
			pc := f.peer(job.peer)
			status, _, err := f.post(context.Background(), pc, job.peer, job.path, job.body, Meta{TraceID: job.traceID})
			if err != nil || status/100 != 2 {
				f.asyncErrs.Add(1)
			} else {
				f.asyncSent.Add(1)
			}
		}
	}
}

// Close stops the async workers. Queued posts that have not been picked up
// are abandoned (they were fire-and-forget). Synchronous Forward keeps
// working; Close exists so a shutting-down server does not leak workers.
func (f *Forwarder) Close() {
	f.closeOnce.Do(func() { close(f.quit) })
}

// PeerStats is one peer's forwarding counters.
type PeerStats struct {
	Peer     string `json:"peer"`
	Forwards uint64 `json:"forwards"`
	Errors   uint64 `json:"errors"`
}

// Stats snapshots the per-peer counters, sorted by peer name. Peers appear
// once the first request is forwarded to them.
func (f *Forwarder) Stats() []PeerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]PeerStats, 0, len(f.peers))
	for name, pc := range f.peers {
		out = append(out, PeerStats{
			Peer:     name,
			Forwards: pc.forwards.Load(),
			Errors:   pc.errors.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// AsyncStats snapshots the fire-and-forget queue's counters.
type AsyncStats struct {
	// Sent counts posts a peer answered with a 2xx status.
	Sent uint64
	// Dropped counts posts rejected because the queue was full.
	Dropped uint64
	// Errors counts posts that reached no peer or got a non-2xx answer.
	Errors uint64
	// Queued is the queue's current depth.
	Queued int
}

// Async snapshots the async-path counters.
func (f *Forwarder) Async() AsyncStats {
	return AsyncStats{
		Sent:    f.asyncSent.Load(),
		Dropped: f.asyncDrops.Load(),
		Errors:  f.asyncErrs.Load(),
		Queued:  len(f.queue),
	}
}
