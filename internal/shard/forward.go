package shard

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ForwardedByHeader marks a request that was already forwarded once by the
// named peer. A receiving server must answer such a request locally, never
// re-forward it: during a membership change two peers' rings can briefly
// disagree about a key's owner, and the guard turns what would be a
// forwarding loop into at most one extra hop.
const ForwardedByHeader = "X-Paragraph-Forwarded-By"

// ForwardOptions tunes the peer-forwarding clients. Zero values pick
// defaults.
type ForwardOptions struct {
	// Timeout bounds one forwarded request end to end (connect, send,
	// owner's evaluation, response). Default 15s — an advise miss on the
	// owner pays a full grid evaluation, which dwarfs the network hop.
	Timeout time.Duration
	// MaxConnsPerPeer caps concurrent connections to one peer; idle
	// connections up to the cap are kept for reuse. Default 8.
	MaxConnsPerPeer int
}

func (o ForwardOptions) withDefaults() ForwardOptions {
	if o.Timeout <= 0 {
		o.Timeout = 15 * time.Second
	}
	if o.MaxConnsPerPeer <= 0 {
		o.MaxConnsPerPeer = 8
	}
	return o
}

// peerClient is one peer's bounded HTTP client plus its traffic counters.
type peerClient struct {
	client   *http.Client
	forwards atomic.Uint64 // requests successfully answered by this peer
	errors   atomic.Uint64 // transport failures (caller fell back to local)
}

// Forwarder carries requests to their owning peer over HTTP. Each peer
// gets its own client with a bounded connection pool, so a slow or dead
// peer can exhaust only its own connections, never another peer's. Safe
// for concurrent use.
type Forwarder struct {
	self string
	opts ForwardOptions

	mu    sync.Mutex
	peers map[string]*peerClient
}

// NewForwarder returns a Forwarder that identifies itself as self (the
// value written into ForwardedByHeader).
func NewForwarder(self string, opts ForwardOptions) *Forwarder {
	return &Forwarder{self: self, opts: opts.withDefaults(), peers: map[string]*peerClient{}}
}

func (f *Forwarder) peer(name string) *peerClient {
	f.mu.Lock()
	defer f.mu.Unlock()
	pc, ok := f.peers[name]
	if !ok {
		pc = &peerClient{client: &http.Client{
			Timeout: f.opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: f.opts.MaxConnsPerPeer,
				MaxConnsPerHost:     f.opts.MaxConnsPerPeer,
				IdleConnTimeout:     90 * time.Second,
			},
		}}
		f.peers[name] = pc
	}
	return pc
}

// Forward POSTs body (JSON) to peer+path with the loop-guard header set and
// returns the peer's status code and response body. Any HTTP response —
// including an error status — counts as a successful forward: the owner
// answered, and its answer (even "unknown kernel") is authoritative. A
// non-nil error means the peer was unreachable (dial failure, timeout,
// truncated response); the caller should fall back to serving locally.
func (f *Forwarder) Forward(peer, path string, body []byte) (int, []byte, error) {
	pc := f.peer(peer)
	req, err := http.NewRequest(http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		pc.errors.Add(1)
		return 0, nil, fmt.Errorf("shard: building forward to %s: %w", peer, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedByHeader, f.self)
	resp, err := pc.client.Do(req)
	if err != nil {
		pc.errors.Add(1)
		return 0, nil, fmt.Errorf("shard: forwarding to %s: %w", peer, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		pc.errors.Add(1)
		return 0, nil, fmt.Errorf("shard: reading forward response from %s: %w", peer, err)
	}
	pc.forwards.Add(1)
	return resp.StatusCode, out, nil
}

// PeerStats is one peer's forwarding counters.
type PeerStats struct {
	Peer     string `json:"peer"`
	Forwards uint64 `json:"forwards"`
	Errors   uint64 `json:"errors"`
}

// Stats snapshots the per-peer counters, sorted by peer name. Peers appear
// once the first request is forwarded to them.
func (f *Forwarder) Stats() []PeerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]PeerStats, 0, len(f.peers))
	for name, pc := range f.peers {
		out = append(out, PeerStats{
			Peer:     name,
			Forwards: pc.forwards.Load(),
			Errors:   pc.errors.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
