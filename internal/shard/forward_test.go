package shard

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"paragraph/internal/admit"
	"paragraph/internal/obs"
)

// TestForwardRoundTrip: a forwarded request reaches the peer with the
// loop-guard header, trace header and JSON content type, and the peer's
// status and body come back verbatim.
func TestForwardRoundTrip(t *testing.T) {
	var gotHeader, gotCT, gotBody, gotTrace string
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get(ForwardedByHeader)
		gotCT = r.Header.Get("Content-Type")
		gotTrace = r.Header.Get(obs.TraceHeader)
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer peer.Close()

	f := NewForwarder("http://self:1", ForwardOptions{})
	status, body, err := f.Forward(context.Background(), peer.URL, "/v1/advise", []byte(`{"kernel":"matmul"}`), Meta{TraceID: "trace-42"})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTeapot || string(body) != `{"ok":true}` {
		t.Errorf("forward returned %d %q", status, body)
	}
	if gotHeader != "http://self:1" {
		t.Errorf("%s = %q, want the forwarder's self", ForwardedByHeader, gotHeader)
	}
	if gotCT != "application/json" {
		t.Errorf("forwarded Content-Type = %q", gotCT)
	}
	if gotTrace != "trace-42" {
		t.Errorf("%s = %q, want the caller's trace id", obs.TraceHeader, gotTrace)
	}
	if gotBody != `{"kernel":"matmul"}` {
		t.Errorf("forwarded body = %q", gotBody)
	}

	st := f.Stats()
	if len(st) != 1 || st[0].Forwards != 1 || st[0].Errors != 0 {
		t.Errorf("stats after one forward = %+v", st)
	}
}

// TestForwardUnreachablePeer: a dead peer yields an error (the caller's cue
// to fall back to local serving) and an error counter, not a hang.
func TestForwardUnreachablePeer(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	peer.Close() // nothing listens anymore

	f := NewForwarder("http://self:1", ForwardOptions{Timeout: 2 * time.Second})
	if _, _, err := f.Forward(context.Background(), peer.URL, "/v1/advise", nil, Meta{}); err == nil {
		t.Fatal("forward to a closed peer succeeded")
	}
	st := f.Stats()
	if len(st) != 1 || st[0].Errors != 1 || st[0].Forwards != 0 {
		t.Errorf("stats after failed forward = %+v", st)
	}
}

// TestForwardPropagatesDeadline: a forward carrying a remaining-budget
// Meta sets the deadline header so the receiving peer applies the same
// admission policy the origin would; a zero budget propagates nothing.
func TestForwardPropagatesDeadline(t *testing.T) {
	var gotDeadline string
	var sawHeader bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotDeadline = r.Header.Get(admit.DeadlineHeader)
		_, sawHeader = r.Header[admit.DeadlineHeader]
	}))
	defer peer.Close()

	f := NewForwarder("http://self:1", ForwardOptions{})
	if _, _, err := f.Forward(context.Background(), peer.URL, "/v1/advise", nil,
		Meta{Deadline: 1500 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	d, err := admit.ParseDeadline(gotDeadline)
	if err != nil {
		t.Fatalf("peer received unparseable deadline %q: %v", gotDeadline, err)
	}
	if d != 1500*time.Millisecond {
		t.Errorf("propagated deadline = %v, want 1.5s", d)
	}

	if _, _, err := f.Forward(context.Background(), peer.URL, "/v1/advise", nil, Meta{}); err != nil {
		t.Fatal(err)
	}
	if sawHeader {
		t.Error("a budget-less forward must not carry the deadline header")
	}
}

// TestForwardHonorsContext: a cancelled context aborts the hop with an
// error (counted), instead of waiting out the client timeout.
func TestForwardHonorsContext(t *testing.T) {
	release := make(chan struct{})
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	// Unwedge the handler before Close (defers run LIFO), or Close waits
	// on the in-flight request forever.
	defer peer.Close()
	defer close(release)

	f := NewForwarder("http://self:1", ForwardOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, _, err := f.Forward(ctx, peer.URL, "/v1/advise", nil, Meta{}); err == nil {
		t.Fatal("forward on an expired context succeeded")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("cancelled forward took %v, context not honored", took)
	}
	if st := f.Stats(); st[0].Errors != 1 {
		t.Errorf("stats = %+v, want the aborted hop counted as an error", st)
	}
}

// TestForwardAsyncDelivers: an async post reaches the peer with the
// loop-guard and trace headers set, and a 2xx answer lands in the Sent
// counter.
func TestForwardAsyncDelivers(t *testing.T) {
	got := make(chan string, 1)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got <- r.Header.Get(ForwardedByHeader) + "|" + r.Header.Get(obs.TraceHeader) + "|" + string(b)
	}))
	defer peer.Close()

	f := NewForwarder("http://self:1", ForwardOptions{})
	defer f.Close()
	if !f.ForwardAsync(peer.URL, "/v1/replicate", []byte(`{"version":1}`), "trace-7") {
		t.Fatal("async post rejected by an empty queue")
	}
	select {
	case msg := <-got:
		if msg != `http://self:1|trace-7|{"version":1}` {
			t.Errorf("async post arrived as %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("async post never reached the peer")
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.Async().Sent == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("async stats after delivery = %+v", f.Async())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestForwardAsyncDropsUnderBackpressure: with the queue full (workers
// wedged on a stalled peer), further posts are dropped and counted, never
// blocked on — replication backpressure must not reach the request path.
func TestForwardAsyncDropsUnderBackpressure(t *testing.T) {
	release := make(chan struct{})
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer peer.Close()
	defer close(release)

	f := NewForwarder("http://self:1", ForwardOptions{AsyncQueue: 1, AsyncWorkers: 1})
	defer f.Close()
	// First post occupies the worker; the queue (cap 1) fills behind it.
	// Enqueueing is racy against the worker draining, so keep posting until
	// a drop is recorded — with the worker wedged, at most two posts are
	// absorbed (one in flight, one queued) before drops must appear.
	deadline := time.Now().Add(5 * time.Second)
	for f.Async().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never overflowed while the worker was wedged")
		}
		f.ForwardAsync(peer.URL, "/v1/replicate", nil, "")
	}
	if f.Async().Dropped == 0 {
		t.Errorf("async stats = %+v, want drops counted", f.Async())
	}
}

// TestForwardErrorStatusIsNotAnError: HTTP-level errors from the owner are
// authoritative answers, relayed rather than falling back.
func TestForwardErrorStatusIsNotAnError(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown kernel"}`, http.StatusBadRequest)
	}))
	defer peer.Close()

	f := NewForwarder("http://self:1", ForwardOptions{})
	status, _, err := f.Forward(context.Background(), peer.URL, "/v1/advise", []byte(`{}`), Meta{})
	if err != nil {
		t.Fatalf("HTTP 400 from the owner reported as transport error: %v", err)
	}
	if status != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", status)
	}
	if st := f.Stats(); st[0].Forwards != 1 || st[0].Errors != 0 {
		t.Errorf("stats = %+v; an answered forward must not count as an error", st)
	}
}
