package shard

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestForwardRoundTrip: a forwarded request reaches the peer with the
// loop-guard header and JSON content type, and the peer's status and body
// come back verbatim.
func TestForwardRoundTrip(t *testing.T) {
	var gotHeader, gotCT, gotBody string
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get(ForwardedByHeader)
		gotCT = r.Header.Get("Content-Type")
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer peer.Close()

	f := NewForwarder("http://self:1", ForwardOptions{})
	status, body, err := f.Forward(peer.URL, "/v1/advise", []byte(`{"kernel":"matmul"}`))
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTeapot || string(body) != `{"ok":true}` {
		t.Errorf("forward returned %d %q", status, body)
	}
	if gotHeader != "http://self:1" {
		t.Errorf("%s = %q, want the forwarder's self", ForwardedByHeader, gotHeader)
	}
	if gotCT != "application/json" {
		t.Errorf("forwarded Content-Type = %q", gotCT)
	}
	if gotBody != `{"kernel":"matmul"}` {
		t.Errorf("forwarded body = %q", gotBody)
	}

	st := f.Stats()
	if len(st) != 1 || st[0].Forwards != 1 || st[0].Errors != 0 {
		t.Errorf("stats after one forward = %+v", st)
	}
}

// TestForwardUnreachablePeer: a dead peer yields an error (the caller's cue
// to fall back to local serving) and an error counter, not a hang.
func TestForwardUnreachablePeer(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	peer.Close() // nothing listens anymore

	f := NewForwarder("http://self:1", ForwardOptions{Timeout: 2 * time.Second})
	if _, _, err := f.Forward(peer.URL, "/v1/advise", nil); err == nil {
		t.Fatal("forward to a closed peer succeeded")
	}
	st := f.Stats()
	if len(st) != 1 || st[0].Errors != 1 || st[0].Forwards != 0 {
		t.Errorf("stats after failed forward = %+v", st)
	}
}

// TestForwardErrorStatusIsNotAnError: HTTP-level errors from the owner are
// authoritative answers, relayed rather than falling back.
func TestForwardErrorStatusIsNotAnError(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown kernel"}`, http.StatusBadRequest)
	}))
	defer peer.Close()

	f := NewForwarder("http://self:1", ForwardOptions{})
	status, _, err := f.Forward(peer.URL, "/v1/advise", []byte(`{}`))
	if err != nil {
		t.Fatalf("HTTP 400 from the owner reported as transport error: %v", err)
	}
	if status != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", status)
	}
	if st := f.Stats(); st[0].Forwards != 1 || st[0].Errors != 0 {
		t.Errorf("stats = %+v; an answered forward must not count as an error", st)
	}
}
