package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for deterministic sweeps.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }
func mustMembership(t *testing.T, cfg MembershipConfig) *Membership {
	t.Helper()
	m, err := NewMembership(cfg)
	if err != nil {
		t.Fatalf("NewMembership: %v", err)
	}
	return m
}

func TestMembershipStaticBootstrap(t *testing.T) {
	m := mustMembership(t, MembershipConfig{Self: "a", Peers: []string{"b", "c", "a"}})
	ring := m.Ring()
	if got := ring.Members(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("members = %v", got)
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", m.Epoch())
	}
	for _, name := range []string{"a", "b", "c"} {
		if !m.Knows(name) {
			t.Fatalf("Knows(%s) = false", name)
		}
	}
	if m.Knows("d") {
		t.Fatal("Knows(d) = true for a stranger")
	}
}

func TestMembershipJoinAndMergeConverge(t *testing.T) {
	seed := mustMembership(t, MembershipConfig{Self: "a"})
	joiner := mustMembership(t, MembershipConfig{Self: "b"})

	// b joins via a: a admits it and hands back the merged view.
	view := seed.Join("b")
	if got := seed.Ring().Members(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("seed members after join = %v", got)
	}
	if seed.Epoch() != 2 {
		t.Fatalf("seed epoch = %d, want 2 after one membership change", seed.Epoch())
	}
	joiner.Merge(view)
	if !reflect.DeepEqual(joiner.Ring().Members(), seed.Ring().Members()) {
		t.Fatalf("joiner ring %v != seed ring %v", joiner.Ring().Members(), seed.Ring().Members())
	}
	if !ringsEqual(joiner.Ring(), seed.Ring()) {
		t.Fatal("converged rings are not byte-identical")
	}
}

func TestMembershipLeaveTombstoneWins(t *testing.T) {
	a := mustMembership(t, MembershipConfig{Self: "a", Peers: []string{"b"}})
	b := mustMembership(t, MembershipConfig{Self: "b", Peers: []string{"a"}})

	b.Leave("b")
	if !b.Left() {
		t.Fatal("b.Left() = false after Leave(self)")
	}
	if got := b.Ring().Members(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("b's ring after leaving = %v", got)
	}
	a.Merge(b.View())
	if got := a.Ring().Members(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("a's ring after b left = %v", got)
	}
	if !a.Knows("b") {
		t.Fatal("tombstone for b vanished")
	}
	// A stale echo of b's pre-departure alive record must not resurrect it.
	a.Merge(View{From: "c", Members: []Member{{Name: "b", Incarnation: 1, Heartbeat: 1, Status: StatusAlive}}})
	if got := a.Ring().Members(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("stale alive echo resurrected b: %v", got)
	}
}

func TestMembershipRejoinBeatsTombstone(t *testing.T) {
	a := mustMembership(t, MembershipConfig{Self: "a", Peers: []string{"b"}})
	a.Leave("b")
	if a.Ring().Contains("b") {
		t.Fatal("b still in ring after leave")
	}
	// b restarts and joins again: the new incarnation supersedes the
	// tombstone.
	view := a.Join("b")
	if !a.Ring().Contains("b") {
		t.Fatal("b not re-admitted")
	}
	// The join response lets the rejoined b adopt a record above its own
	// bootstrap incarnation.
	b := mustMembership(t, MembershipConfig{Self: "b"})
	b.Merge(view)
	if !reflect.DeepEqual(b.Ring().Members(), a.Ring().Members()) {
		t.Fatalf("rejoined b ring %v != a ring %v", b.Ring().Members(), a.Ring().Members())
	}
}

func TestMembershipSweepEvictsSilentMember(t *testing.T) {
	clock := newFakeClock()
	var swaps []uint64
	a := mustMembership(t, MembershipConfig{
		Self: "a", Peers: []string{"b"},
		EvictAfter: 10 * time.Second,
		Clock:      clock.Now,
		OnChange:   func(_ *Ring, epoch uint64) { swaps = append(swaps, epoch) },
	})
	if ev := a.Sweep(); len(ev) != 0 {
		t.Fatalf("fresh member evicted: %v", ev)
	}
	clock.Advance(11 * time.Second)
	a.Beat() // self keeps beating; b stays silent
	if ev := a.Sweep(); !reflect.DeepEqual(ev, []string{"b"}) {
		t.Fatalf("Sweep = %v, want [b]", ev)
	}
	if a.Ring().Contains("b") {
		t.Fatal("b still in ring after eviction")
	}
	if a.Counters().Evictions != 1 {
		t.Fatalf("evictions = %d", a.Counters().Evictions)
	}
	if !reflect.DeepEqual(swaps, []uint64{2}) {
		t.Fatalf("OnChange epochs = %v, want [2]", swaps)
	}
	// A second sweep changes nothing: the tombstone is not alive.
	if ev := a.Sweep(); len(ev) != 0 {
		t.Fatalf("second sweep evicted again: %v", ev)
	}
}

func TestMembershipRefutesOwnDeath(t *testing.T) {
	b := mustMembership(t, MembershipConfig{Self: "b", Peers: []string{"a"}})
	// a declared b dead at b's current incarnation.
	b.Merge(View{From: "a", Members: []Member{{Name: "b", Incarnation: 1, Heartbeat: 5, Status: StatusDead}}})
	if !b.Ring().Contains("b") {
		t.Fatal("b dropped itself on a refutable tombstone")
	}
	view := b.View()
	var rec Member
	for _, r := range view.Members {
		if r.Name == "b" {
			rec = r
		}
	}
	if rec.Status != StatusAlive || rec.Incarnation != 2 {
		t.Fatalf("self record after refutation = %+v, want alive incarnation 2", rec)
	}
	if b.Counters().Refutations != 1 {
		t.Fatalf("refutations = %d", b.Counters().Refutations)
	}
	// The refutation wins at the peer that issued the tombstone.
	a := mustMembership(t, MembershipConfig{Self: "a", Peers: []string{"b"}})
	a.Merge(View{From: "x", Members: []Member{{Name: "b", Incarnation: 1, Heartbeat: 5, Status: StatusDead}}})
	if a.Ring().Contains("b") {
		t.Fatal("tombstone did not take at a")
	}
	a.Merge(b.View())
	if !a.Ring().Contains("b") {
		t.Fatal("refutation did not take at a")
	}
}

func TestMembershipHealthSuspect(t *testing.T) {
	clock := newFakeClock()
	a := mustMembership(t, MembershipConfig{
		Self: "a", Peers: []string{"b"},
		SuspectAfter: 3 * time.Second, EvictAfter: 10 * time.Second,
		Clock: clock.Now,
	})
	clock.Advance(5 * time.Second)
	a.Beat()
	health := a.Health()
	byName := map[string]MemberHealth{}
	for _, h := range health {
		byName[h.Name] = h
	}
	if !byName["b"].Suspect {
		t.Fatal("silent b not suspect")
	}
	if byName["a"].Suspect {
		t.Fatal("self reported suspect")
	}
	if byName["b"].AgeSeconds < 4.9 {
		t.Fatalf("b age = %v", byName["b"].AgeSeconds)
	}
}

// ringsEqual reports whether two rings are byte-identical: same members,
// same vnodes, same points in the same order.
func ringsEqual(a, b *Ring) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.vnodes == b.vnodes &&
		reflect.DeepEqual(a.members, b.members) &&
		reflect.DeepEqual(a.points, b.points)
}

// TestMembershipChurnProperty drives random join/leave/crash sequences
// through a fleet of Membership instances and asserts the three churn
// invariants: (1) no key is ever owner-less while any member is alive,
// (2) ownership moves per epoch are minimal — a key's owner list changes
// only when a member it involves joined or departed, never a reshuffle
// among survivors — and (3) after full gossip exchange every live peer
// converges to a byte-identical ring.
func TestMembershipChurnProperty(t *testing.T) {
	const (
		fleetSize = 5
		rounds    = 40
		keys      = 200
		rf        = 2
	)
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clock := newFakeClock()
			names := make([]string, fleetSize)
			for i := range names {
				names[i] = fmt.Sprintf("http://peer-%c:80", 'a'+i)
			}
			// crashed peers stop gossiping but issue no tombstone; left
			// peers announce departure. members[name] == nil means the
			// process is down.
			members := map[string]*Membership{}
			crashed := map[string]bool{}
			for _, n := range names {
				members[n] = mustMembership(t, MembershipConfig{
					Self: n, Peers: names,
					EvictAfter: 10 * time.Second, Clock: clock.Now,
				})
			}
			sampleKeys := make([]string, keys)
			for i := range sampleKeys {
				sampleKeys[i] = fmt.Sprintf("key-%d", i)
			}

			// exchange performs one full gossip round: every live peer
			// beats, sweeps, and merges every other live peer's view twice
			// (push and pull) so the fleet reaches the semilattice fixpoint.
			exchange := func() {
				for _, n := range names {
					if members[n] == nil || crashed[n] {
						continue
					}
					members[n].Sweep()
					members[n].Beat()
				}
				for pass := 0; pass < 2; pass++ {
					for _, a := range names {
						if members[a] == nil || crashed[a] {
							continue
						}
						va := members[a].View()
						for _, b := range names {
							if b == a || members[b] == nil || crashed[b] {
								continue
							}
							members[b].Merge(va)
						}
					}
				}
			}

			ownersBefore := func(m *Membership) map[string][]string {
				out := make(map[string][]string, keys)
				r := m.Ring()
				if r == nil {
					return out
				}
				for _, k := range sampleKeys {
					out[k] = r.Owners(k, rf)
				}
				return out
			}

			observer := names[0] // never killed; the invariant witness
			for round := 0; round < rounds; round++ {
				before := ownersBefore(members[observer])
				beforeMembers := map[string]bool{}
				for _, m := range members[observer].Ring().Members() {
					beforeMembers[m] = true
				}

				// One random churn event.
				victim := names[1+rng.Intn(fleetSize-1)]
				switch op := rng.Intn(3); {
				case op == 0 && members[victim] != nil && !crashed[victim]:
					// Planned departure.
					members[victim].Leave(victim)
					v := members[victim].View()
					for _, n := range names {
						if n != victim && members[n] != nil && !crashed[n] {
							members[n].Merge(v)
						}
					}
					members[victim] = nil
				case op == 1 && members[victim] != nil && !crashed[victim]:
					// Crash: silent death, eviction must find it.
					crashed[victim] = true
					clock.Advance(11 * time.Second)
				default:
					// (Re)join through a random live seed.
					if members[victim] != nil && !crashed[victim] {
						break // already up: no-op round
					}
					var seedPeer *Membership
					for _, n := range names {
						if n != victim && members[n] != nil && !crashed[n] {
							seedPeer = members[n]
							break
						}
					}
					if seedPeer == nil {
						break
					}
					crashed[victim] = false
					members[victim] = mustMembership(t, MembershipConfig{
						Self: victim, EvictAfter: 10 * time.Second, Clock: clock.Now,
					})
					members[victim].Merge(seedPeer.Join(victim))
				}
				clock.Advance(time.Second)
				exchange()
				exchange() // second round lets eviction verdicts propagate

				// Invariant 1: no key owner-less.
				obsRing := members[observer].Ring()
				if obsRing == nil {
					t.Fatalf("round %d: observer lost its ring", round)
				}
				for _, k := range sampleKeys {
					if len(obsRing.Owners(k, rf)) == 0 {
						t.Fatalf("round %d: key %s owner-less", round, k)
					}
				}

				// Invariant 2: minimal moves. A key's owner list may change
				// only if it involved a departed member or a newly joined
				// member; survivors never reshuffle among themselves.
				afterMembers := map[string]bool{}
				for _, m := range obsRing.Members() {
					afterMembers[m] = true
				}
				for _, k := range sampleKeys {
					after := obsRing.Owners(k, rf)
					if reflect.DeepEqual(before[k], after) {
						continue
					}
					involved := false
					for _, o := range before[k] {
						if !afterMembers[o] {
							involved = true // an old owner departed
						}
					}
					for _, o := range after {
						if !beforeMembers[o] {
							involved = true // a new member took it
						}
					}
					if !involved {
						t.Fatalf("round %d: key %s reshuffled among survivors: %v -> %v",
							round, k, before[k], after)
					}
				}

				// Invariant 3: every live peer's ring is byte-identical.
				for _, n := range names {
					if members[n] == nil || crashed[n] || n == observer {
						continue
					}
					if !ringsEqual(members[n].Ring(), obsRing) {
						t.Fatalf("round %d: %s ring %v diverged from observer %v",
							round, n, members[n].Ring().Members(), obsRing.Members())
					}
					if members[n].Epoch() == 0 {
						t.Fatalf("round %d: %s epoch 0", round, n)
					}
				}
			}
		})
	}
}
