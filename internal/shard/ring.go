// Package shard partitions the advisor serving tier across processes with
// a consistent-hash ring. The serving layer's cache keys are already
// content-addressed (internal/serve.Key hashes everything a response
// depends on), so they are stable across processes by construction: hashing
// a key onto a ring of peers gives every request exactly one owner, and N
// independent servers become one cache-coherent tier — each key's cache
// entry lives (and its singleflight collapses) on one peer instead of being
// re-earned N times. Virtual nodes smooth the partition, and consistent
// hashing keeps membership changes cheap: adding or removing a peer moves
// only ~1/N of the key space (see TestRingMinimalDisruption).
//
// The package has two halves: Ring answers "who owns this key" with
// deterministic, membership-order-independent results, and Forwarder
// carries a request to its owner over HTTP with bounded per-peer
// connection reuse and a loop-guard header so disagreeing rings can never
// forward a request in circles.
package shard

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count used when a Ring is built with
// vnodes <= 0. 128 points per member keeps the largest/smallest ownership
// ratio within a few tens of percent for small clusters while the ring
// stays tiny (a few KB per member).
const DefaultVNodes = 128

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash   uint64
	member int32
}

// Ring is an immutable consistent-hash ring over a set of member names
// (in the serving tier: peer base URLs). Build one with NewRing; all
// methods are safe for concurrent use because the ring never mutates —
// membership changes build a new Ring.
type Ring struct {
	members []string // sorted, deduped
	vnodes  int
	points  []point // sorted by (hash, member)
}

// NewRing builds a ring over members with vnodes virtual nodes each
// (vnodes <= 0 picks DefaultVNodes). Members are deduped and sorted, so
// rings built from the same set in any order are identical — every peer of
// a cluster computes the same ownership from the same -peers list.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	var uniq []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("shard: empty ring member")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		vnodes:  vnodes,
		points:  make([]point, 0, len(uniq)*vnodes),
	}
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			// The vnode label joins member and index with NUL so
			// ("ab", 1) and ("a", "b1") cannot collide.
			h := Hash64(m + "\x00" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, member: int32(mi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Hash64 is the ring's hash: FNV-1a over s, then a Murmur3-style avalanche
// finalizer. Raw FNV-1a is too weakly mixed for ring positions — peer URLs
// differ in a few characters and vnode labels in a trailing integer, which
// left virtual nodes clustered (one member of a four-peer ring owned 6% of
// the key space) — so the finalizer spreads every output bit before the
// value becomes a position.
func Hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner returns the member owning key: the first virtual node at or after
// the key's hash, wrapping past the top of the ring. The result depends
// only on the member set, vnodes, and key. Owner(k) == Owners(k, 1)[0].
func (r *Ring) Owner(key string) string {
	h := Hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// Owners returns the key's successor list: the first rf distinct members
// whose virtual nodes follow the key's hash clockwise around the ring.
// Owners[0] is the primary owner (identical to Owner); the rest are the
// key's replicas in failover order. rf is clamped to [1, len(members)].
//
// Like Owner, the result depends only on the member set, vnodes, and key,
// so every peer of a cluster computes the same list. Successor lists keep
// the consistent-hashing disruption bound: removing a member changes only
// the lists that contained it (each loses that member and gains the next
// distinct successor), and adding one only inserts it into the lists of
// keys it now serves — no key's list ever reshuffles among survivors (see
// TestRingOwnersMinimalDisruption).
func (r *Ring) Owners(key string, rf int) []string {
	if rf < 1 {
		rf = 1
	}
	if rf > len(r.members) {
		rf = len(r.members)
	}
	h := Hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, rf)
	seen := make(map[int32]bool, rf)
	for j := 0; len(owners) < rf; j++ {
		p := r.points[(i+j)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		owners = append(owners, r.members[p.member])
	}
	return owners
}

// Members returns the ring's member names, sorted. The slice is shared;
// callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Contains reports whether name is a ring member.
func (r *Ring) Contains(name string) bool {
	i := sort.SearchStrings(r.members, name)
	return i < len(r.members) && r.members[i] == name
}

// Ownership returns each member's exact fraction of the key space: the
// summed widths of the hash arcs its virtual nodes own, over 2^64. The
// fractions sum to 1 (up to float rounding) and quantify how evenly the
// virtual nodes smoothed the partition.
func (r *Ring) Ownership() map[string]float64 {
	frac := make(map[string]float64, len(r.members))
	for _, m := range r.members {
		frac[m] = 0
	}
	if len(r.points) == 1 {
		frac[r.members[r.points[0].member]] = 1
		return frac
	}
	// A point owns the arc from its predecessor (exclusive) to itself
	// (inclusive). uint64 subtraction is mod 2^64, so the wrap arc from the
	// last point to the first needs no special case.
	for i, p := range r.points {
		prev := r.points[(i+len(r.points)-1)%len(r.points)]
		arc := p.hash - prev.hash
		frac[r.members[p.member]] += float64(arc) / (1 << 64)
	}
	return frac
}
