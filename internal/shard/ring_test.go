package shard

import (
	"fmt"
	"math"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Content-addressed serve keys are hex digests; hex-ish key material
		// keeps the test honest about the narrow alphabet the ring sees.
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

// TestRingDeterministic: rings built from the same member set in any order
// agree on every owner and on the ownership fractions — the property that
// lets each peer compute routing independently from the shared -peers list.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://c:3", "http://a:1", "http://b:2", "http://a:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(2000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner(%s) differs across member orderings: %s vs %s", k, ao, bo)
		}
	}
	ao, bo := a.Ownership(), b.Ownership()
	for m, f := range ao {
		if bo[m] != f {
			t.Errorf("ownership(%s) = %v vs %v", m, f, bo[m])
		}
	}
}

// TestRingOwnershipBalance: virtual nodes must smooth the partition so no
// member owns a wildly disproportionate share, and the exact arc fractions
// must agree with an empirical key sample.
func TestRingOwnershipBalance(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r, err := NewRing(members, 0) // DefaultVNodes
	if err != nil {
		t.Fatal(err)
	}
	frac := r.Ownership()
	sum := 0.0
	for m, f := range frac {
		sum += f
		if f < 0.10 || f > 0.45 {
			t.Errorf("member %s owns %.3f of the ring; want within [0.10, 0.45] of ideal 0.25", m, f)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ownership fractions sum to %v, want 1", sum)
	}

	counts := map[string]int{}
	sample := keys(20000)
	for _, k := range sample {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		got := float64(counts[m]) / float64(len(sample))
		if math.Abs(got-frac[m]) > 0.02 {
			t.Errorf("member %s: sampled share %.3f vs arc share %.3f", m, got, frac[m])
		}
	}
}

// TestRingMinimalDisruption is the consistent-hashing contract: removing a
// member moves only that member's keys (every other key keeps its owner),
// and the moved share is ~1/N. Adding is checked as the mirror image.
func TestRingMinimalDisruption(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	full, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := members[1]
	reduced, err := NewRing([]string{members[0], members[2], members[3]}, 0)
	if err != nil {
		t.Fatal(err)
	}

	sample := keys(20000)
	moved := 0
	for _, k := range sample {
		before, after := full.Owner(k), reduced.Owner(k)
		if before != removed {
			if after != before {
				t.Fatalf("key %s moved %s -> %s although %s was the member removed",
					k, before, after, removed)
			}
			continue
		}
		moved++
	}
	frac := float64(moved) / float64(len(sample))
	want := full.Ownership()[removed]
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("removal moved %.3f of keys; removed member owned %.3f", frac, want)
	}
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("removal moved %.3f of keys; want ~1/4 for a 4-member ring", frac)
	}

	// Mirror image: growing the reduced ring back only pulls keys onto the
	// re-added member; no key moves between surviving members.
	for _, k := range sample {
		before, after := reduced.Owner(k), full.Owner(k)
		if after != removed && after != before {
			t.Fatalf("adding %s moved key %s between survivors %s -> %s",
				removed, k, before, after)
		}
	}
}

func TestRingSingleMember(t *testing.T) {
	r, err := NewRing([]string{"http://solo:1"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(100) {
		if r.Owner(k) != "http://solo:1" {
			t.Fatal("single-member ring routed a key elsewhere")
		}
	}
	if f := r.Ownership()["http://solo:1"]; math.Abs(f-1) > 1e-9 {
		t.Errorf("single member owns %v, want 1", f)
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty member set accepted")
	}
	if _, err := NewRing([]string{"http://a:1", ""}, 8); err == nil {
		t.Error("empty member name accepted")
	}
}

func TestRingContains(t *testing.T) {
	r, err := NewRing([]string{"http://b:2", "http://a:1"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains("http://a:1") || !r.Contains("http://b:2") {
		t.Error("Contains misses a member")
	}
	if r.Contains("http://c:3") {
		t.Error("Contains reports a non-member")
	}
	if got := r.Members(); len(got) != 2 || got[0] != "http://a:1" {
		t.Errorf("Members() = %v, want sorted pair", got)
	}
}

// TestRingOwnersBasics: the successor list has exactly rf distinct
// members, starts with the primary owner, clamps rf to the member count,
// and is identical across rings built from any ordering of the same
// member set — every peer of a cluster computes the same failover order.
func TestRingOwnersBasics(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := NewRing([]string{members[2], members[0], members[3], members[1]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(2000) {
		owners := r.Owners(k, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("Owners(%s, 2) = %v, want 2 distinct members", k, owners)
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners(%s, 2)[0] = %s, Owner = %s", k, owners[0], r.Owner(k))
		}
		other := shuffled.Owners(k, 2)
		if owners[0] != other[0] || owners[1] != other[1] {
			t.Fatalf("owner list differs across member orderings: %v vs %v", owners, other)
		}
	}
	if got := r.Owners("k", 0); len(got) != 1 {
		t.Errorf("Owners(k, 0) = %v, want clamped to 1", got)
	}
	all := r.Owners("k", 99)
	if len(all) != len(members) {
		t.Fatalf("Owners(k, 99) = %v, want clamped to %d members", all, len(members))
	}
	seen := map[string]bool{}
	for _, o := range all {
		if seen[o] {
			t.Fatalf("Owners(k, 99) repeats %s: %v", o, all)
		}
		seen[o] = true
	}
}

// TestRingOwnersSlotBalance: each successor slot must be balanced on its
// own — every member should be the primary for ~1/N of keys AND the first
// replica for ~1/N of keys, with the sampled primary share agreeing with
// the exact arc fractions. A ring that smooths slot 0 but clumps slot 1
// would concentrate replica traffic (and failover load) on few peers.
func TestRingOwnersSlotBalance(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	sample := keys(20000)
	perSlot := [2]map[string]int{{}, {}}
	for _, k := range sample {
		for slot, m := range r.Owners(k, 2) {
			perSlot[slot][m]++
		}
	}
	frac := r.Ownership()
	for slot := range perSlot {
		for _, m := range members {
			got := float64(perSlot[slot][m]) / float64(len(sample))
			if got < 0.10 || got > 0.45 {
				t.Errorf("member %s holds %.3f of slot %d; want within [0.10, 0.45] of ideal 0.25", m, got, slot)
			}
			if slot == 0 {
				if diff := math.Abs(got - frac[m]); diff > 0.02 {
					t.Errorf("member %s: sampled primary share %.3f vs arc share %.3f", m, got, frac[m])
				}
			}
		}
	}
}

// TestRingOwnersMinimalDisruption is the replicated consistent-hashing
// contract: removing a member changes only the owner lists that contained
// it — every key whose list did not include the removed member keeps an
// identical list, and every key whose list did keeps its surviving owners
// (in order) and gains exactly one new member at the end of the walk.
func TestRingOwnersMinimalDisruption(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	full, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := members[2]
	reduced, err := NewRing([]string{members[0], members[1], members[3]}, 0)
	if err != nil {
		t.Fatal(err)
	}

	const rf = 2
	changed := 0
	for _, k := range keys(20000) {
		before, after := full.Owners(k, rf), reduced.Owners(k, rf)
		had := false
		for _, o := range before {
			if o == removed {
				had = true
			}
		}
		if !had {
			for i := range before {
				if after[i] != before[i] {
					t.Fatalf("key %s owner list changed %v -> %v although %s was not in it",
						k, before, after, removed)
				}
			}
			continue
		}
		changed++
		// Survivors keep their relative order; the freed slot is filled by
		// a new member, never by reshuffling existing owners.
		survivors := make([]string, 0, rf)
		for _, o := range before {
			if o != removed {
				survivors = append(survivors, o)
			}
		}
		for i, sv := range survivors {
			if after[i] != sv {
				t.Fatalf("key %s: surviving owner order broke %v -> %v", k, before, after)
			}
		}
	}
	// A member appears in roughly rf/N of the owner lists, so its removal
	// should disturb about that share and no more.
	frac := float64(changed) / 20000
	if frac < 0.25 || frac > 0.75 {
		t.Errorf("removal changed %.3f of rf=2 owner lists; want ~%.2f", frac, float64(rf)/float64(len(members)))
	}
}

func BenchmarkRingOwner(b *testing.B) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("http://peer-%d:8080", i)
	}
	r, err := NewRing(members, 0)
	if err != nil {
		b.Fatal(err)
	}
	ks := keys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(ks[i%len(ks)])
	}
}

// BenchmarkRingOwners prices the successor-list walk against the single
// Owner lookup above — the per-request routing cost of replication.
func BenchmarkRingOwners(b *testing.B) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("http://peer-%d:8080", i)
	}
	r, err := NewRing(members, 0)
	if err != nil {
		b.Fatal(err)
	}
	ks := keys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owners(ks[i%len(ks)], 2)
	}
}
