package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Dynamic membership: Membership turns the static member list a Ring is
// built from into a gossiped, self-healing view. Each peer's state travels
// as a Member record — an (incarnation, heartbeat) version vector plus a
// status — and views merge per record with a deterministic supersedes rule,
// so the merge is a join-semilattice: commutative, associative and
// idempotent. Any two peers that exchange views therefore converge on the
// same record set, and because rings are built from the sorted alive-member
// names alone, they converge on byte-identical rings (the churn property
// test asserts this).
//
// Failure detection is local and refutable: every peer tracks when it last
// saw each member's record advance; a member silent past EvictAfter is
// declared dead with a tombstone at its current incarnation, which gossip
// then spreads. A falsely-declared peer sees its own death in an incoming
// view and refutes it by re-announcing itself at a higher incarnation —
// higher incarnations always win, so the refutation overtakes the
// tombstone everywhere. Planned departures skip suspicion entirely: Leave
// writes a "left" tombstone that supersedes the member's alive record at
// the same incarnation.
//
// Every ring-membership change swaps in a freshly built Ring under a new
// epoch. The (ring, epoch) pair is published atomically, so the serving
// path reads a consistent snapshot without locks while gossip mutates the
// record set underneath.

// Status is a member record's lifecycle state as it travels in gossip.
// Suspicion is deliberately not a wire status: it is a local, per-observer
// judgment (see MemberHealth) that either resolves back to alive or
// hardens into a dead tombstone.
type Status string

const (
	// StatusAlive is a serving ring member.
	StatusAlive Status = "alive"
	// StatusLeft is a planned departure: the member drained its keys and
	// announced it is gone. Left tombstones keep a rejoin honest (the
	// member must come back at a higher incarnation).
	StatusLeft Status = "left"
	// StatusDead is a failure verdict: some observer stopped seeing the
	// member's record advance and declared it. A live member refutes a
	// dead record about itself by bumping its incarnation.
	StatusDead Status = "dead"
)

// statusRank orders statuses for records at the same incarnation: a
// tombstone beats the alive record it was issued against, and dead beats
// left so a crash during a drain is reported as the crash it was.
func statusRank(s Status) int {
	switch s {
	case StatusDead:
		return 2
	case StatusLeft:
		return 1
	default:
		return 0
	}
}

// Member is one peer's gossip record. Incarnation is bumped only by the
// member itself (at join and when refuting its own death), Heartbeat on
// every gossip round; together they version the record. Status travels
// with the version so tombstones are just records like any other.
type Member struct {
	Name        string `json:"name"`
	Incarnation uint64 `json:"incarnation"`
	Heartbeat   uint64 `json:"heartbeat"`
	Status      Status `json:"status"`
}

// supersedes reports whether record b should replace record a (same
// member). Higher incarnation always wins; at equal incarnation a
// tombstone beats the record it was issued against; at equal status the
// fresher heartbeat wins.
func supersedes(b, a Member) bool {
	if b.Incarnation != a.Incarnation {
		return b.Incarnation > a.Incarnation
	}
	if br, ar := statusRank(b.Status), statusRank(a.Status); br != ar {
		return br > ar
	}
	return b.Heartbeat > a.Heartbeat
}

// View is the epoch-stamped membership view peers exchange: the sender's
// full record set, sorted by name so the wire form is deterministic. Epoch
// is the sender's local ring version — it is observability, not merge
// input (records carry their own versions).
type View struct {
	From    string   `json:"from"`
	Epoch   uint64   `json:"epoch"`
	Members []Member `json:"members"`
}

// MembershipConfig configures a Membership. Self is required and is always
// a record; Peers seed the initial alive set (the static -peers list, may
// be empty when joining via a seed node).
type MembershipConfig struct {
	Self   string
	Peers  []string
	VNodes int
	// SuspectAfter is how long a member's record may sit still before the
	// local health view reports it suspect (default 3s). Purely
	// informational — suspects stay in the ring.
	SuspectAfter time.Duration
	// EvictAfter is how long before a silent member is declared dead and
	// dropped from the ring (default 10s). Must exceed the gossip interval
	// by a comfortable multiple or healthy peers will evict each other.
	EvictAfter time.Duration
	// Clock substitutes a time source for tests; nil means time.Now.
	Clock func() time.Time
	// OnChange, when set, is called after every ring swap with the new
	// ring (nil when no alive members remain) and its epoch. It runs
	// outside the membership lock; implementations must not call back
	// into mutating Membership methods.
	OnChange func(ring *Ring, epoch uint64)
}

// ringState is the atomically published (ring, epoch) pair. ring is nil
// when the alive set is empty (a fully departed peer).
type ringState struct {
	ring  *Ring
	epoch uint64
}

// MembershipCounters are the state machine's lifetime counters.
type MembershipCounters struct {
	// Joins counts members admitted (or re-admitted) through Join.
	Joins uint64 `json:"joins"`
	// Evictions counts dead declarations this peer issued itself.
	Evictions uint64 `json:"evictions"`
	// Refutations counts times this peer overrode a tombstone about
	// itself from an incoming view.
	Refutations uint64 `json:"refutations"`
}

// MemberHealth is one member's row in the local health view: the gossip
// record plus this observer's staleness judgment.
type MemberHealth struct {
	Member
	// Suspect reports an alive record that has not advanced within
	// SuspectAfter — still in the ring, but late.
	Suspect bool `json:"suspect,omitempty"`
	// AgeSeconds is how long ago this observer last saw the record
	// advance.
	AgeSeconds float64 `json:"age_seconds"`
}

// Membership is the dynamic-membership state machine. All methods are safe
// for concurrent use; Ring and Epoch are lock-free reads.
type Membership struct {
	cfg MembershipConfig
	cur atomic.Pointer[ringState]

	mu   sync.Mutex
	recs map[string]Member
	seen map[string]time.Time // when each record last advanced, by this observer's clock
	left bool                 // self issued a planned departure

	joins     atomic.Uint64
	evictions atomic.Uint64
	refutes   atomic.Uint64
}

// NewMembership builds a Membership with Self alive (incarnation 1) and
// every Peer seeded alive at incarnation 1, heartbeat 0 — the static-list
// bootstrap. Peers that never actually start are evicted by the sweep like
// any other silent member.
func NewMembership(cfg MembershipConfig) (*Membership, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("shard: membership needs a self name")
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * time.Second
	}
	if cfg.EvictAfter <= 0 {
		cfg.EvictAfter = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	m := &Membership{
		cfg:  cfg,
		recs: map[string]Member{},
		seen: map[string]time.Time{},
	}
	now := cfg.Clock()
	m.recs[cfg.Self] = Member{Name: cfg.Self, Incarnation: 1, Heartbeat: 1, Status: StatusAlive}
	m.seen[cfg.Self] = now
	for _, p := range cfg.Peers {
		if p == "" {
			return nil, fmt.Errorf("shard: empty membership peer")
		}
		if p == cfg.Self {
			continue
		}
		m.recs[p] = Member{Name: p, Incarnation: 1, Heartbeat: 0, Status: StatusAlive}
		m.seen[p] = now
	}
	ring, err := NewRing(m.aliveLocked(), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	m.cur.Store(&ringState{ring: ring, epoch: 1})
	return m, nil
}

// Ring returns the current ring snapshot — nil only after Self departed a
// single-member cluster. The ring is immutable; hold the returned pointer
// for a consistent multi-call view.
func (m *Membership) Ring() *Ring { return m.cur.Load().ring }

// Epoch returns the current ring version. It increments exactly when the
// ring-member set changes.
func (m *Membership) Epoch() uint64 { return m.cur.Load().epoch }

// Left reports whether Self issued a planned departure.
func (m *Membership) Left() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.left
}

// Knows reports whether name has any record — alive, left or dead. The
// serving tier uses it to gate peer-only endpoints: a draining peer's
// final writes must still be accepted after its tombstone arrives.
func (m *Membership) Knows(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.recs[name]
	return ok
}

// aliveLocked returns the sorted alive-member names (the ring member set).
func (m *Membership) aliveLocked() []string {
	var names []string
	for name, rec := range m.recs {
		if rec.Status == StatusAlive {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// rebuildLocked swaps in a new ring if the alive set changed, returning
// the change and the state to hand to OnChange. Callers fire OnChange
// after releasing the lock.
func (m *Membership) rebuildLocked() (changed bool, st *ringState) {
	alive := m.aliveLocked()
	cur := m.cur.Load()
	var curMembers []string
	if cur.ring != nil {
		curMembers = cur.ring.Members()
	}
	if len(alive) == len(curMembers) {
		same := true
		for i := range alive {
			if alive[i] != curMembers[i] {
				same = false
				break
			}
		}
		if same {
			return false, cur
		}
	}
	next := &ringState{epoch: cur.epoch + 1}
	if len(alive) > 0 {
		ring, err := NewRing(alive, m.cfg.VNodes)
		if err != nil {
			// Unreachable: alive names are non-empty and non-blank by
			// construction. Keep the old ring rather than serve a nil one.
			return false, cur
		}
		next.ring = ring
	}
	m.cur.Store(next)
	return true, next
}

// fireChange invokes OnChange for a rebuild outside the lock.
func (m *Membership) fireChange(changed bool, st *ringState) {
	if changed && m.cfg.OnChange != nil {
		m.cfg.OnChange(st.ring, st.epoch)
	}
}

// viewLocked renders the record set as a wire view, sorted by name.
func (m *Membership) viewLocked() View {
	v := View{From: m.cfg.Self, Epoch: m.cur.Load().epoch}
	v.Members = make([]Member, 0, len(m.recs))
	for _, rec := range m.recs {
		v.Members = append(v.Members, rec)
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].Name < v.Members[j].Name })
	return v
}

// View snapshots the full record set for a join response or an on-demand
// exchange.
func (m *Membership) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked()
}

// Beat advances Self's heartbeat and returns the view to gossip this
// round. After a planned departure the heartbeat freezes — a left record
// must not look live.
func (m *Membership) Beat() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.left {
		rec := m.recs[m.cfg.Self]
		rec.Heartbeat++
		m.recs[m.cfg.Self] = rec
		m.seen[m.cfg.Self] = m.cfg.Clock()
	}
	return m.viewLocked()
}

// Observe records direct proof of life for name — an incoming gossip or
// join from it — independent of whether its record advanced.
func (m *Membership) Observe(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec, ok := m.recs[name]; ok && rec.Status == StatusAlive {
		m.seen[name] = m.cfg.Clock()
	}
}

// Merge folds a remote view into the local record set: per member, the
// superseding record wins (see supersedes). Adopting an advanced alive
// record refreshes the member's last-seen clock. A tombstone about Self is
// refuted on the spot — unless Self really did leave. Returns whether the
// ring changed.
func (m *Membership) Merge(v View) bool {
	m.mu.Lock()
	now := m.cfg.Clock()
	for _, rec := range v.Members {
		if rec.Name == "" {
			continue
		}
		local, ok := m.recs[rec.Name]
		if ok && !supersedes(rec, local) {
			continue
		}
		m.recs[rec.Name] = rec
		if rec.Status == StatusAlive {
			m.seen[rec.Name] = now
		}
	}
	m.fixSelfLocked(now)
	changed, st := m.rebuildLocked()
	m.mu.Unlock()
	m.fireChange(changed, st)
	return changed
}

// fixSelfLocked re-establishes Self's record after a merge. A live peer
// that finds itself tombstoned re-announces at a higher incarnation (the
// refutation overtakes the tombstone everywhere); a departed peer lets its
// tombstone stand.
func (m *Membership) fixSelfLocked(now time.Time) {
	rec := m.recs[m.cfg.Self]
	if m.left {
		if rec.Status == StatusAlive {
			// A stale echo of our pre-departure record came back; re-issue
			// the left tombstone over it.
			rec.Status = StatusLeft
			rec.Heartbeat++
			m.recs[m.cfg.Self] = rec
		}
		return
	}
	if rec.Status != StatusAlive {
		m.recs[m.cfg.Self] = Member{
			Name:        m.cfg.Self,
			Incarnation: rec.Incarnation + 1,
			Heartbeat:   rec.Heartbeat + 1,
			Status:      StatusAlive,
		}
		m.seen[m.cfg.Self] = now
		m.refutes.Add(1)
	}
}

// Join admits (or re-admits) name as an alive member at an incarnation
// above any record already held for it, so a rejoin after a crash or drain
// beats its own tombstone. Returns the post-join view — the joiner merges
// it to adopt the cluster's record set. Self-joins are a no-op view read.
func (m *Membership) Join(name string) View {
	m.mu.Lock()
	if name != m.cfg.Self {
		inc := uint64(1)
		if rec, ok := m.recs[name]; ok {
			inc = rec.Incarnation + 1
		}
		m.recs[name] = Member{Name: name, Incarnation: inc, Heartbeat: 1, Status: StatusAlive}
		m.seen[name] = m.cfg.Clock()
		m.joins.Add(1)
	}
	view := m.viewLocked()
	changed, st := m.rebuildLocked()
	if changed {
		view.Epoch = st.epoch
	}
	m.mu.Unlock()
	m.fireChange(changed, st)
	return view
}

// Leave writes a planned-departure tombstone for name at its current
// incarnation (superseding its alive record everywhere). Leaving Self also
// freezes the heartbeat and pins the tombstone against stale echoes.
func (m *Membership) Leave(name string) {
	m.mu.Lock()
	rec, ok := m.recs[name]
	if !ok {
		m.mu.Unlock()
		return
	}
	if name == m.cfg.Self {
		m.left = true
	}
	if rec.Status == StatusAlive {
		rec.Status = StatusLeft
		rec.Heartbeat++
		m.recs[name] = rec
	}
	changed, st := m.rebuildLocked()
	m.mu.Unlock()
	m.fireChange(changed, st)
}

// Sweep applies the failure detector: every alive member (except Self)
// whose record has not advanced within EvictAfter is declared dead — a
// tombstone at its current incarnation, spread by the next gossip round
// and refutable by the member itself. Returns the names evicted this
// sweep.
func (m *Membership) Sweep() []string {
	m.mu.Lock()
	now := m.cfg.Clock()
	var evicted []string
	for name, rec := range m.recs {
		if name == m.cfg.Self || rec.Status != StatusAlive {
			continue
		}
		if now.Sub(m.seen[name]) > m.cfg.EvictAfter {
			rec.Status = StatusDead
			m.recs[name] = rec
			evicted = append(evicted, name)
			m.evictions.Add(1)
		}
	}
	sort.Strings(evicted)
	changed, st := m.rebuildLocked()
	m.mu.Unlock()
	m.fireChange(changed, st)
	return evicted
}

// Health snapshots every record with this observer's staleness judgment,
// sorted by name. Tombstoned members are included — operators reading
// /v1/ring want to see who left and who was evicted.
func (m *Membership) Health() []MemberHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Clock()
	out := make([]MemberHealth, 0, len(m.recs))
	for name, rec := range m.recs {
		age := now.Sub(m.seen[name])
		out = append(out, MemberHealth{
			Member:     rec,
			Suspect:    rec.Status == StatusAlive && name != m.cfg.Self && age > m.cfg.SuspectAfter,
			AgeSeconds: age.Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counters snapshots the lifetime counters.
func (m *Membership) Counters() MembershipCounters {
	return MembershipCounters{
		Joins:       m.joins.Load(),
		Evictions:   m.evictions.Load(),
		Refutations: m.refutes.Load(),
	}
}
