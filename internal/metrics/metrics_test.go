package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("perfect RMSE = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); !almost(got, math.Sqrt(12.5)) {
		t.Errorf("RMSE = %v", got)
	}
	if got := RMSE(nil, nil); got != 0 {
		t.Errorf("empty RMSE = %v", got)
	}
}

func TestRangeAndNormRMSE(t *testing.T) {
	if got := Range([]float64{5, 1, 9, 3}); got != 8 {
		t.Errorf("Range = %v", got)
	}
	if got := Range(nil); got != 0 {
		t.Errorf("empty Range = %v", got)
	}
	pred := []float64{10, 20}
	actual := []float64{0, 100}
	want := RMSE(pred, actual) / 100
	if got := NormRMSE(pred, actual); !almost(got, want) {
		t.Errorf("NormRMSE = %v, want %v", got, want)
	}
	if got := NormRMSE([]float64{1}, []float64{5}); got != 0 {
		t.Errorf("constant actual NormRMSE = %v", got)
	}
}

func TestRelErrors(t *testing.T) {
	rel := RelErrors([]float64{10, 30}, []float64{0, 100})
	if !almost(rel[0], 0.1) || !almost(rel[1], 0.7) {
		t.Errorf("RelErrors = %v", rel)
	}
	zero := RelErrors([]float64{1, 2}, []float64{5, 5})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("zero-range RelErrors = %v", zero)
	}
}

func TestMeanStdDev(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant StdDev = %v", got)
	}
	if got := StdDev([]float64{0, 2}); got != 1 {
		t.Errorf("StdDev = %v", got)
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Errorf("single StdDev = %v", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Pearson(xs, xs); !almost(got, 1) {
		t.Errorf("self correlation = %v", got)
	}
	neg := []float64{4, 3, 2, 1}
	if got := Pearson(xs, neg); !almost(got, -1) {
		t.Errorf("anti correlation = %v", got)
	}
	if got := Pearson(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant correlation = %v", got)
	}
	if got := Pearson([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("single-point correlation = %v", got)
	}
}

func TestPearsonScaleInvariance(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		xs := raw
		ys := make([]float64, len(xs))
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
			ys[i] = 3*v + 7 // positive affine map
		}
		r := Pearson(xs, ys)
		return r == 0 || math.Abs(r-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBinnedRelError(t *testing.T) {
	// Actual values 5 and 15 and 205: bins 0-10, 10-20, overflow.
	pred := []float64{6, 10, 230}
	actual := []float64{5, 15, 205}
	bins := BinnedRelError(pred, actual, 10, 10)
	if len(bins) != 11 {
		t.Fatalf("bins = %d, want 11", len(bins))
	}
	if bins[0].Count != 1 || bins[1].Count != 1 || bins[10].Count != 1 {
		t.Errorf("counts = %v %v %v", bins[0].Count, bins[1].Count, bins[10].Count)
	}
	if bins[0].Label != "0-10" || bins[10].Label != "100 <" {
		t.Errorf("labels = %q / %q", bins[0].Label, bins[10].Label)
	}
	// rel error of point 0: |6-5|/200 = 0.005.
	if !almost(bins[0].MeanErr, 1.0/200) {
		t.Errorf("bin 0 err = %v", bins[0].MeanErr)
	}
	// Empty bins report zero error.
	if bins[5].Count != 0 || bins[5].MeanErr != 0 {
		t.Errorf("bin 5 = %+v", bins[5])
	}
	if !math.IsInf(bins[10].Hi, 1) {
		t.Error("overflow bin not open-ended")
	}
}

func TestGroupedRelError(t *testing.T) {
	pred := []float64{10, 20, 110}
	actual := []float64{0, 40, 100}
	groups := []string{"mm", "mm", "nn"}
	ge := GroupedRelError(pred, actual, groups)
	if len(ge) != 2 {
		t.Fatalf("groups = %d", len(ge))
	}
	// Sorted: mm before nn.
	if ge[0].Group != "mm" || ge[1].Group != "nn" {
		t.Errorf("order = %v", ge)
	}
	if ge[0].Count != 2 || ge[1].Count != 1 {
		t.Errorf("counts = %v", ge)
	}
	// mm: (10/100 + 20/100)/2 = 0.15; nn: 10/100 = 0.1.
	if !almost(ge[0].MeanErr, 0.15) || !almost(ge[1].MeanErr, 0.1) {
		t.Errorf("errors = %v", ge)
	}
}

func TestPanicsOnLengthMismatch(t *testing.T) {
	cases := []func(){
		func() { RMSE([]float64{1}, []float64{1, 2}) },
		func() { RelErrors([]float64{1}, nil) },
		func() { Pearson([]float64{1, 2}, []float64{1}) },
		func() { GroupedRelError([]float64{1}, []float64{1}, nil) },
		func() { BinnedRelError(nil, nil, 0, 5) },
		func() { BinnedRelError(nil, nil, 10, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSpearman(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
		want   float64
	}{
		{"perfect monotone", []float64{1, 2, 3, 4, 5}, []float64{10, 20, 30, 40, 50}, 1},
		{"nonlinear monotone", []float64{1, 2, 3, 4}, []float64{1, 100, 1e4, 1e6}, 1},
		{"reversed", []float64{1, 2, 3, 4, 5}, []float64{50, 40, 30, 20, 10}, -1},
		// ranks(xs) = {1, 2.5, 2.5, 4}, ranks(ys) = {1, 3, 2, 4};
		// Pearson over those ranks = 4.5/sqrt(4.5*5) = sqrt(0.9).
		{"ties", []float64{1, 2, 2, 4}, []float64{1, 3, 2, 4}, math.Sqrt(0.9)},
		{"one swap", []float64{1, 2, 3, 4}, []float64{1, 3, 2, 4}, 0.8},
	}
	for _, tc := range cases {
		if got := Spearman(tc.xs, tc.ys); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Spearman = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if got := Spearman([]float64{5, 5, 5, 5}, []float64{1, 2, 3, 4}); !math.IsNaN(got) {
		t.Errorf("constant xs: Spearman = %v, want NaN", got)
	}
	if got := Spearman([]float64{1, 2, 3}, []float64{7, 7, 7}); !math.IsNaN(got) {
		t.Errorf("constant ys: Spearman = %v, want NaN", got)
	}
	for n := 0; n < 3; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
		}
		if got := Spearman(xs, xs); !math.IsNaN(got) {
			t.Errorf("n=%d: Spearman = %v, want NaN", n, got)
		}
	}
}

func TestSpearmanProperties(t *testing.T) {
	// Symmetric, and invariant under strictly monotone transforms of either
	// series (that is the whole point of using ranks).
	f := func(raw []float64) bool {
		var xs []float64
		seen := map[float64]bool{}
		for _, v := range raw {
			v = math.Mod(v, 1e6)
			if !seen[v] && !math.IsNaN(v) {
				seen[v] = true
				xs = append(xs, v)
			}
		}
		if len(xs) < 3 {
			return true
		}
		cube := make([]float64, len(xs)) // x*|x| is strictly monotone on all reals
		for i, v := range xs {
			cube[i] = v * math.Abs(v)
		}
		if got := Spearman(xs, cube); math.Abs(got-1) > 1e-9 {
			return false
		}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = xs[(i+1)%len(xs)]
		}
		return math.Abs(Spearman(xs, ys)-Spearman(ys, xs)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
